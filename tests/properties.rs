//! Property-based tests of the library's core invariants, across random
//! machine sizes, grid splits, matrix shapes and distribution rules.
//!
//! Integer element types make the algebraic identities exact (no float
//! tolerance hides a transposed index).

// Proptest sweeps are far too slow under Miri's interpreter; the
// dedicated Miri CI job covers the library's unsafe/aliasing surface
// via the unit tests instead (see .github/workflows/ci.yml).
#![cfg(not(miri))]

use proptest::prelude::*;

use four_vmp::algos::{simplex, workloads};
use four_vmp::core::elem::{Max, Min, Sum};
use four_vmp::core::{primitives, remap};
use four_vmp::hypercube::Cube;
use four_vmp::prelude::*;

fn kind_strategy() -> impl Strategy<Value = Dist> {
    prop_oneof![Just(Dist::Block), Just(Dist::Cyclic)]
}

/// (cube dim, grid row dims, rows, cols, kinds)
fn layout_strategy() -> impl Strategy<Value = (u32, u32, usize, usize, Dist, Dist)> {
    (0u32..=5).prop_flat_map(|dim| {
        (Just(dim), 0..=dim, 1usize..=17, 1usize..=17, kind_strategy(), kind_strategy())
    })
}

fn make_matrix(
    dim: u32,
    dr: u32,
    rows: usize,
    cols: usize,
    rk: Dist,
    ck: Dist,
) -> (Hypercube, DistMatrix<i64>) {
    let grid = ProcGrid::new(Cube::new(dim), dr);
    let layout = MatrixLayout::new(MatShape::new(rows, cols), grid, rk, ck);
    let m = DistMatrix::from_fn(layout, |i, j| ((i * 31 + j * 7) % 41) as i64 - 20);
    (Hypercube::cm2(dim), m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reduce_matches_serial_fold((dim, dr, rows, cols, rk, ck) in layout_strategy()) {
        let (mut hc, m) = make_matrix(dim, dr, rows, cols, rk, ck);
        let dense = m.to_dense();

        let v = primitives::reduce(&mut hc, &m, Axis::Row, Sum);
        v.assert_consistent();
        for j in 0..cols {
            let expect: i64 = dense.iter().map(|r| r[j]).sum();
            prop_assert_eq!(v.get(j), expect);
        }

        let w = primitives::reduce(&mut hc, &m, Axis::Col, Max);
        for i in 0..rows {
            let expect = dense[i].iter().copied().max().expect("nonempty");
            prop_assert_eq!(w.get(i), expect);
        }
    }

    #[test]
    fn reduce_to_agrees_with_reduce(
        (dim, dr, rows, cols, rk, ck) in layout_strategy(),
        line_pick in 0usize..64,
    ) {
        let (mut hc, m) = make_matrix(dim, dr, rows, cols, rk, ck);
        let pr = m.layout().grid().pr();
        let line = line_pick % pr;
        let a = primitives::reduce(&mut hc, &m, Axis::Row, Min);
        let b = primitives::reduce_to(&mut hc, &m, Axis::Row, Min, line);
        b.assert_consistent();
        prop_assert_eq!(a.to_dense(), b.to_dense());
    }

    #[test]
    fn extract_insert_roundtrip(
        (dim, dr, rows, cols, rk, ck) in layout_strategy(),
        idx_pick in 0usize..64,
    ) {
        let (mut hc, m) = make_matrix(dim, dr, rows, cols, rk, ck);
        let i = idx_pick % rows;
        let v = primitives::extract(&mut hc, &m, Axis::Row, i);
        prop_assert_eq!(v.to_dense(), m.to_dense()[i].clone());
        // Insert it into a different row of a copy; that row becomes row i.
        let tgt = (i + 1) % rows;
        let mut m2 = m.clone();
        primitives::insert(&mut hc, &mut m2, Axis::Row, tgt, &v);
        m2.assert_consistent();
        let dense = m.to_dense();
        let dense2 = m2.to_dense();
        for r in 0..rows {
            if r == tgt {
                prop_assert_eq!(&dense2[r], &dense[i]);
            } else {
                prop_assert_eq!(&dense2[r], &dense[r]);
            }
        }
    }

    #[test]
    fn distribute_then_reduce_scales(
        (dim, dr, _rows, cols, rk, ck) in layout_strategy(),
        count in 1usize..12,
    ) {
        let grid = ProcGrid::new(Cube::new(dim), dr);
        let vl = VectorLayout::aligned(cols, grid, Axis::Row, Placement::Replicated, ck);
        let v = DistVector::from_fn(vl, |j| (j as i64) - 3);
        let mut hc = Hypercube::cm2(dim);
        let m = primitives::distribute(&mut hc, &v, count, rk);
        m.assert_consistent();
        prop_assert_eq!(m.shape(), MatShape::new(count, cols));
        let s = primitives::reduce(&mut hc, &m, Axis::Row, Sum);
        for j in 0..cols {
            prop_assert_eq!(s.get(j), (count as i64) * ((j as i64) - 3));
        }
    }

    #[test]
    fn transpose_is_an_involution((dim, dr, rows, cols, rk, ck) in layout_strategy()) {
        let (mut hc, m) = make_matrix(dim, dr, rows, cols, rk, ck);
        let t = remap::transpose(&mut hc, &m);
        t.assert_consistent();
        let dense = m.to_dense();
        for i in 0..cols {
            for j in 0..rows {
                prop_assert_eq!(t.get(i, j), dense[j][i]);
            }
        }
        let tt = remap::transpose(&mut hc, &t);
        prop_assert_eq!(tt.to_dense(), dense);
    }

    #[test]
    fn redistribution_preserves_content(
        (dim, dr, rows, cols, rk, ck) in layout_strategy(),
        dr2 in 0u32..=5,
        rk2 in kind_strategy(),
        ck2 in kind_strategy(),
    ) {
        let (mut hc, m) = make_matrix(dim, dr, rows, cols, rk, ck);
        let grid2 = ProcGrid::new(Cube::new(dim), dr2.min(dim));
        let new_layout = MatrixLayout::new(MatShape::new(rows, cols), grid2, rk2, ck2);
        let r = remap::redistribute(&mut hc, &m, new_layout);
        r.assert_consistent();
        prop_assert_eq!(r.to_dense(), m.to_dense());
    }

    #[test]
    fn vector_remap_preserves_content_across_embeddings(
        dim in 0u32..=5,
        dr_pick in 0u32..=5,
        n in 1usize..=23,
        src_kind in kind_strategy(),
        dst_kind in kind_strategy(),
        src_sel in 0usize..6,
        dst_sel in 0usize..6,
        line_pick in 0usize..64,
    ) {
        let dr = dr_pick.min(dim);
        let grid = ProcGrid::new(Cube::new(dim), dr);
        let pick = |sel: usize, kind: Dist, line: usize| -> VectorLayout {
            match sel % 3 {
                0 => VectorLayout::aligned(n, grid.clone(), Axis::Row,
                        if sel % 2 == 0 { Placement::Replicated } else { Placement::Concentrated(line % grid.pr()) }, kind),
                1 => VectorLayout::aligned(n, grid.clone(), Axis::Col,
                        if sel % 2 == 0 { Placement::Replicated } else { Placement::Concentrated(line % grid.pc()) }, kind),
                _ => VectorLayout::linear(n, grid.clone(), kind),
            }
        };
        let src = pick(src_sel, src_kind, line_pick);
        let dst = pick(dst_sel, dst_kind, line_pick / 7);
        let v = DistVector::from_fn(src, |i| (i as i64) * 3 - 7);
        let mut hc = Hypercube::cm2(dim);
        let w = remap::remap_vector(&mut hc, &v, dst);
        w.assert_consistent();
        prop_assert_eq!(w.to_dense(), v.to_dense());
    }

    #[test]
    fn vecmat_matches_serial_exactly_on_integers(
        (dim, dr, rows, cols, rk, ck) in layout_strategy(),
    ) {
        let grid = ProcGrid::new(Cube::new(dim), dr);
        let layout = MatrixLayout::new(MatShape::new(rows, cols), grid.clone(), rk, ck);
        let a = DistMatrix::from_fn(layout, |i, j| ((i + 2 * j) % 9) as i64 - 4);
        let x = DistVector::from_fn(
            VectorLayout::aligned(rows, grid, Axis::Col, Placement::Replicated, rk),
            |i| (i % 5) as i64 - 2,
        );
        let mut hc = Hypercube::cm2(dim);
        let y = four_vmp::algos::vecmat(&mut hc, &x, &a);
        let dense = a.to_dense();
        let xd = x.to_dense();
        for j in 0..cols {
            let expect: i64 = (0..rows).map(|i| xd[i] * dense[i][j]).sum();
            prop_assert_eq!(y.get(j), expect);
        }
    }

    #[test]
    fn parallel_simplex_always_matches_serial(
        m_rows in 2usize..8,
        n_vars in 2usize..8,
        seed in 0u64..200,
        dim in 0u32..=4,
    ) {
        let lp = workloads::random_dense_lp(m_rows, n_vars, seed);
        let serial = four_vmp::algos::serial::simplex_solve(&lp, 500);
        let mut hc = Hypercube::cm2(dim);
        let par = simplex::solve_parallel(&mut hc, &lp, ProcGrid::square(Cube::new(dim)), 500);
        prop_assert_eq!(par.status, serial.status);
        prop_assert_eq!(par.objective, serial.objective);
        prop_assert_eq!(par.x, serial.x);
    }

    #[test]
    fn scan_matches_serial_prefix(
        n in 1usize..40,
        dim in 0u32..=5,
        sel in 0usize..3,
    ) {
        use four_vmp::core::scan::{scan_exclusive, scan_inclusive};
        let grid = ProcGrid::square(Cube::new(dim));
        let layout = match sel {
            0 => VectorLayout::linear(n, grid, Dist::Block),
            1 => VectorLayout::aligned(n, grid, Axis::Row, Placement::Replicated, Dist::Block),
            _ => VectorLayout::aligned(n, grid, Axis::Col, Placement::Replicated, Dist::Block),
        };
        let vals: Vec<i64> = (0..n).map(|i| ((i * 37 + 11) % 23) as i64 - 11).collect();
        let v = DistVector::from_fn(layout, |i| vals[i]);
        let mut hc = Hypercube::cm2(dim);
        let inc = scan_inclusive(&mut hc, &v, Sum);
        let exc = scan_exclusive(&mut hc, &v, Sum);
        inc.assert_consistent();
        exc.assert_consistent();
        let mut run = 0i64;
        for i in 0..n {
            prop_assert_eq!(exc.get(i), run);
            run += vals[i];
            prop_assert_eq!(inc.get(i), run);
        }
    }

    #[test]
    fn segmented_reduce_matches_per_segment_folds(
        n in 1usize..32,
        dim in 0u32..=4,
        flag_mask in 0u64..u64::MAX,
    ) {
        use four_vmp::core::scan::segmented_reduce;
        let grid = ProcGrid::square(Cube::new(dim));
        let layout = VectorLayout::linear(n, grid, Dist::Block);
        let flag_at = move |i: usize| i == 0 || (flag_mask >> (i % 64)) & 1 == 1;
        let vals: Vec<i64> = (0..n).map(|i| (i as i64) * 3 - 7).collect();
        let v = DistVector::from_fn(layout.clone(), |i| vals[i]);
        let f = DistVector::from_fn(layout, flag_at);
        let mut hc = Hypercube::cm2(dim);
        let r = segmented_reduce(&mut hc, &v, &f, Sum);
        // Brute-force per-segment totals.
        let mut seg_total = vec![0i64; n];
        let mut start = 0usize;
        for i in 0..=n {
            if i == n || (i > 0 && flag_at(i)) {
                let total: i64 = vals[start..i].iter().sum();
                for t in seg_total.iter_mut().take(i).skip(start) {
                    *t = total;
                }
                start = i;
            }
        }
        for i in 0..n {
            prop_assert_eq!(r.get(i), seg_total[i], "i = {}", i);
        }
    }

    #[test]
    fn wrap_shifts_rotate_indices(
        rows in 1usize..14,
        cols in 1usize..14,
        dim in 0u32..=4,
        offset in -20isize..20,
        horizontal in proptest::bool::ANY,
        kind in kind_strategy(),
    ) {
        use four_vmp::core::shift::{shift, Boundary};
        let grid = ProcGrid::square(Cube::new(dim));
        let layout = MatrixLayout::new(MatShape::new(rows, cols), grid, kind, kind);
        let m = DistMatrix::from_fn(layout, |i, j| (i * 1000 + j) as i64);
        let mut hc = Hypercube::cm2(dim);
        let axis = if horizontal { Axis::Row } else { Axis::Col };
        let s = shift(&mut hc, &m, axis, offset, Boundary::Wrap);
        s.assert_consistent();
        let extent = if horizontal { cols } else { rows } as isize;
        for i in 0..rows {
            for j in 0..cols {
                let (si, sj) = if horizontal {
                    (i, ((j as isize - offset).rem_euclid(extent)) as usize)
                } else {
                    (((i as isize - offset).rem_euclid(extent)) as usize, j)
                };
                prop_assert_eq!(s.get(i, j), (si * 1000 + sj) as i64);
            }
        }
    }

    #[test]
    fn dimension_permutations_relabel_addresses(
        dim in 0u32..=6,
        seed in 0u64..1000,
    ) {
        use four_vmp::hypercube::dimperm::{dimension_permute, permute_address};
        use four_vmp::hypercube::Hypercube as Hc;
        // Build a pseudo-random permutation of 0..dim from the seed.
        let mut delta: Vec<u32> = (0..dim).collect();
        let mut s = seed;
        for i in (1..delta.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            delta.swap(i, j);
        }
        let mut hc = Hc::cm2(dim);
        let mut locals = hc.locals_from_fn(|n| vec![n as u64]);
        dimension_permute(&mut hc, &mut locals, &delta);
        for node in 0..hc.p() {
            prop_assert_eq!(&locals[node], &vec![permute_address(node, &delta) as u64]);
        }
    }

    #[test]
    fn matmul_matches_serial_exactly_on_integers(
        m in 1usize..10,
        k in 1usize..10,
        n in 1usize..10,
        dim in 0u32..=4,
    ) {
        use four_vmp::algos::matmul;
        let grid = ProcGrid::square(Cube::new(dim));
        let a = DistMatrix::from_fn(
            MatrixLayout::cyclic(MatShape::new(m, k), grid.clone()),
            |i, j| ((i * 5 + j * 3) % 7) as i64 - 3,
        );
        let b = DistMatrix::from_fn(
            MatrixLayout::cyclic(MatShape::new(k, n), grid),
            |i, j| ((i * 2 + j * 11) % 9) as i64 - 4,
        );
        let mut hc = Hypercube::cm2(dim);
        let c = matmul(&mut hc, &a, &b);
        let da = a.to_dense();
        let db = b.to_dense();
        for i in 0..m {
            for j in 0..n {
                let expect: i64 = (0..k).map(|t| da[i][t] * db[t][j]).sum();
                prop_assert_eq!(c.get(i, j), expect);
            }
        }
    }

    #[test]
    fn fft_roundtrips_and_matches_dft(
        log_n in 2u32..=7,
        dim in 0u32..=4,
        seed in 0u64..500,
    ) {
        use four_vmp::algos::fft::{dft_serial, fft, ifft, Cplx};
        let n = 1usize << log_n.max(dim); // need n >= p
        let grid = ProcGrid::square(Cube::new(dim));
        let layout = VectorLayout::linear(n, grid, Dist::Block);
        let x: Vec<Cplx> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(seed.wrapping_add(1)).wrapping_mul(0x9E3779B97F4A7C15);
                Cplx::new(((h >> 40) as f64) / 1e7 - 0.8, ((h >> 20 & 0xFFFFF) as f64) / 1e5 - 5.0)
            })
            .collect();
        let v = DistVector::from_slice(layout, &x);
        let mut hc = Hypercube::cm2(dim);
        let spec = fft(&mut hc, &v);
        // Round trip.
        let back = ifft(&mut hc, &spec).to_dense();
        for (a, b) in back.iter().zip(&x) {
            prop_assert!(a.sub(*b).abs() < 1e-8, "roundtrip");
        }
        // Against the naive DFT for small sizes.
        if n <= 64 {
            let naive = dft_serial(&x, false);
            for (a, b) in spec.to_dense().iter().zip(&naive) {
                prop_assert!(a.sub(*b).abs() < 1e-7, "dft agreement");
            }
        }
    }

    #[test]
    fn bitonic_sort_sorts_and_permutes(
        log_n in 1u32..=8,
        dim in 0u32..=4,
        seed in 0u64..500,
    ) {
        use four_vmp::algos::sort::sort_ascending;
        let n = 1usize << log_n.max(dim);
        let grid = ProcGrid::square(Cube::new(dim));
        let layout = VectorLayout::linear(n, grid, Dist::Block);
        let x: Vec<i64> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(seed.wrapping_add(7)).wrapping_mul(0xC2B2AE3D27D4EB4F);
                ((h >> 48) as i64) - 32768
            })
            .collect();
        let v = DistVector::from_slice(layout, &x);
        let mut hc = Hypercube::cm2(dim);
        let sorted = sort_ascending(&mut hc, &v).to_dense();
        let mut expect = x.clone();
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
    }

    #[test]
    fn pcr_tridiagonal_matches_thomas(
        n in 1usize..60,
        seed in 0u64..200,
        dim in 0u32..=4,
    ) {
        use four_vmp::algos::tridiag::{random_tridiag, thomas_solve, DistTridiag};
        let (a, b, c, d, _) = random_tridiag(n, seed);
        let serial = thomas_solve(&a, &b, &c, &d);
        let mut hc = Hypercube::cm2(dim);
        let sys = DistTridiag::from_diagonals(ProcGrid::square(Cube::new(dim)), &a, &b, &c, &d);
        let x = sys.solve_pcr(&mut hc).to_dense();
        for i in 0..n {
            prop_assert!((x[i] - serial[i]).abs() < 1e-8, "i = {}", i);
        }
    }

    #[test]
    fn histograms_match_serial_both_ways(
        n in 1usize..80,
        bins_log in 1u32..=8,
        spread in 1usize..40,
        dim in 0u32..=4,
        seed in 0u64..500,
    ) {
        use four_vmp::algos::histogram::{histogram_dense, histogram_serial, histogram_sparse};
        let bins = 1usize << bins_log;
        let vals: Vec<usize> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(seed.wrapping_add(3)).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as usize
                % spread.min(bins))
            .collect();
        let expect = histogram_serial(&vals, bins);
        let grid = ProcGrid::square(Cube::new(dim));
        let layout = VectorLayout::linear(n, grid, Dist::Block);
        let v = DistVector::from_slice(layout, &vals);
        let mut h1 = Hypercube::cm2(dim);
        prop_assert_eq!(histogram_dense(&mut h1, &v, bins), expect.clone());
        let mut h2 = Hypercube::cm2(dim);
        prop_assert_eq!(histogram_sparse(&mut h2, &v, bins), expect);
    }

    #[test]
    fn component_labels_match_serial_on_random_images(
        rows in 1usize..10,
        cols in 1usize..10,
        colours in 1usize..4,
        seed in 0u64..500,
        dim in 0u32..=4,
    ) {
        use four_vmp::algos::components::{label_components, label_components_serial};
        let img: Vec<Vec<i64>> = (0..rows)
            .map(|i| {
                (0..cols)
                    .map(|j| {
                        let h = ((i * 31 + j) as u64)
                            .wrapping_mul(seed.wrapping_add(11))
                            .wrapping_mul(0xC2B2AE3D27D4EB4F);
                        ((h >> 45) as usize % colours) as i64
                    })
                    .collect()
            })
            .collect();
        let serial = label_components_serial(&img);
        let grid = ProcGrid::square(Cube::new(dim));
        let m = DistMatrix::from_fn(
            MatrixLayout::block(MatShape::new(rows, cols), grid),
            |i, j| img[i][j],
        );
        let mut hc = Hypercube::cm2(dim);
        let (labels, _) = label_components(&mut hc, &m);
        prop_assert_eq!(labels.to_dense(), serial);
    }

    #[test]
    fn ge_solves_random_dominant_systems(n in 2usize..20, seed in 0u64..100, dim in 0u32..=4) {
        let (a, b, x_true) = workloads::diag_dominant_system(n, seed);
        let mut hc = Hypercube::cm2(dim);
        let (x, _) = four_vmp::algos::ge_solve(&mut hc, &a, &b, ProcGrid::square(Cube::new(dim)))
            .expect("diagonally dominant");
        for i in 0..n {
            prop_assert!((x[i] - x_true[i]).abs() < 1e-7, "i = {}: {} vs {}", i, x[i], x_true[i]);
        }
    }
}
