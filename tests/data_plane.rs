//! Differential property tests for the flat-slab data plane.
//!
//! The collective layer and the elementwise kernels were rewritten from
//! per-node `Vec<Vec<T>>` buffers to arena-backed slabs with tiled local
//! loops. The seed implementations are preserved verbatim under
//! `collective::reference`; these tests assert the new path is
//! **bit-identical** to the seed path — payloads, simulated clock, and
//! event counters — across random machine sizes, buffer shapes, and
//! fault plans. Bitwise equality (no float tolerance) is the point: the
//! data plane may change host speed only, never a single result bit.

// Proptest sweeps are far too slow under Miri's interpreter; the
// dedicated Miri CI job covers the library's unsafe/aliasing surface
// via the unit tests instead (see .github/workflows/ci.yml).
#![cfg(not(miri))]

use proptest::prelude::*;

use four_vmp::core::elem::Sum;
use four_vmp::core::primitives;
use four_vmp::hypercube::collective::{self, reference};
use four_vmp::hypercube::slab::{NodeSlab, SegSlab};
use four_vmp::hypercube::{Cube, FaultPlan, ResilientConfig};
use four_vmp::prelude::*;

/// A cheap deterministic pseudo-random f64 in roughly `[-1, 1]`.
fn val(i: usize, j: usize) -> f64 {
    let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Two identically configured machines (same cost model, same fault
/// plan) — one drives the seed path, one the slab path.
fn machine_pair(dim: u32, fault: Option<(u64, f64)>) -> (Hypercube, Hypercube) {
    let make = || {
        let mut hc = Hypercube::cm2(dim);
        if let Some((seed, rate)) = fault {
            let plan = FaultPlan::none(seed).with_drops(rate, 0, u64::MAX);
            hc.install_faults(plan, ResilientConfig::default());
        }
        hc
    };
    (make(), make())
}

/// Per-node buffers with node-dependent lengths (some empty).
fn ragged_locals(dim: u32, max_len: usize, salt: usize) -> Vec<Vec<f64>> {
    let p = 1usize << dim;
    (0..p)
        .map(|n| {
            let len = (n * 7 + salt) % (max_len + 1);
            (0..len).map(|i| val(n + salt, i)).collect()
        })
        .collect()
}

/// Per-node buffers with one uniform length (the combine collectives
/// require equal lengths within a subcube).
fn uniform_locals(dim: u32, len: usize, salt: usize) -> Vec<Vec<f64>> {
    let p = 1usize << dim;
    (0..p).map(|n| (0..len).map(|i| val(n + salt, i)).collect()).collect()
}

fn assert_machines_identical(seed: &Hypercube, slab: &Hypercube, what: &str) {
    assert_eq!(seed.elapsed_us(), slab.elapsed_us(), "{what}: simulated clock diverged");
    assert_eq!(seed.counters(), slab.counters(), "{what}: event counters diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Move collectives (exchange / allgather / gather) on ragged buffers.
    #[test]
    fn move_collectives_match_reference(
        dim in 0u32..=4,
        max_len in 0usize..=9,
        salt in 0usize..=100,
        drops in prop_oneof![Just(None), (1u64..=50, Just(0.2f64)).prop_map(Some)],
    ) {
        let nested = ragged_locals(dim, max_len, salt);
        let dims: Vec<u32> = Cube::new(dim).iter_dims().collect();

        // exchange along each dimension in turn
        for d in 0..dim {
            let (mut hc_seed, mut hc_slab) = machine_pair(dim, drops);
            let want = reference::exchange(&mut hc_seed, &nested, d);
            let got = collective::exchange(&mut hc_slab, &nested, d);
            prop_assert_eq!(&want, &got, "exchange dim {} payload", d);
            assert_machines_identical(&hc_seed, &hc_slab, "exchange");
        }

        // allgather over the whole cube
        let (mut hc_seed, mut hc_slab) = machine_pair(dim, drops);
        let mut want = nested.clone();
        reference::allgather(&mut hc_seed, &mut want, &dims);
        let mut got = nested.clone();
        collective::allgather(&mut hc_slab, &mut got, &dims);
        prop_assert_eq!(&want, &got, "allgather payload");
        assert_machines_identical(&hc_seed, &hc_slab, "allgather");

        // gather to coordinate 0
        let (mut hc_seed, mut hc_slab) = machine_pair(dim, drops);
        let mut want = nested.clone();
        reference::gather(&mut hc_seed, &mut want, &dims);
        let mut got = nested.clone();
        collective::gather(&mut hc_slab, &mut got, &dims);
        prop_assert_eq!(&want, &got, "gather payload");
        assert_machines_identical(&hc_seed, &hc_slab, "gather");
    }

    /// Combine collectives (reduce / allreduce / scans) on uniform buffers.
    #[test]
    fn combine_collectives_match_reference(
        dim in 0u32..=4,
        len in 0usize..=9,
        salt in 0usize..=100,
        root in 0usize..=15,
        drops in prop_oneof![Just(None), (1u64..=50, Just(0.2f64)).prop_map(Some)],
    ) {
        let nested = uniform_locals(dim, len, salt);
        let dims: Vec<u32> = Cube::new(dim).iter_dims().collect();
        let root = root & ((1usize << dims.len()) - 1);

        let (mut hc_seed, mut hc_slab) = machine_pair(dim, drops);
        let mut want = nested.clone();
        reference::allreduce(&mut hc_seed, &mut want, &dims, |a, b| a + b);
        let mut got = nested.clone();
        collective::allreduce(&mut hc_slab, &mut got, &dims, |a, b| a + b);
        prop_assert_eq!(&want, &got, "allreduce payload");
        assert_machines_identical(&hc_seed, &hc_slab, "allreduce");

        let (mut hc_seed, mut hc_slab) = machine_pair(dim, drops);
        let mut want = nested.clone();
        reference::reduce(&mut hc_seed, &mut want, &dims, root, |a, b| a + b);
        let mut got = nested.clone();
        collective::reduce(&mut hc_slab, &mut got, &dims, root, |a, b| a + b);
        prop_assert_eq!(&want, &got, "reduce payload");
        assert_machines_identical(&hc_seed, &hc_slab, "reduce");

        let (mut hc_seed, mut hc_slab) = machine_pair(dim, drops);
        let mut want = nested.clone();
        reference::scan_inclusive(&mut hc_seed, &mut want, &dims, |a, b| a + b);
        let mut got = nested.clone();
        collective::scan_inclusive(&mut hc_slab, &mut got, &dims, |a, b| a + b);
        prop_assert_eq!(&want, &got, "scan_inclusive payload");
        assert_machines_identical(&hc_seed, &hc_slab, "scan_inclusive");

        let (mut hc_seed, mut hc_slab) = machine_pair(dim, drops);
        let mut want = nested.clone();
        reference::scan_exclusive(&mut hc_seed, &mut want, &dims, 0.0, |a, b| a + b);
        let mut got = nested.clone();
        collective::scan_exclusive(&mut hc_slab, &mut got, &dims, 0.0, |a, b| a + b);
        prop_assert_eq!(&want, &got, "scan_exclusive payload");
        assert_machines_identical(&hc_seed, &hc_slab, "scan_exclusive");
    }

    /// Broadcast and all-to-all (the redistribution collectives).
    #[test]
    fn redistribution_collectives_match_reference(
        dim in 0u32..=4,
        len in 0usize..=6,
        salt in 0usize..=100,
        root in 0usize..=15,
        drops in prop_oneof![Just(None), (1u64..=50, Just(0.2f64)).prop_map(Some)],
    ) {
        let p = 1usize << dim;
        let dims: Vec<u32> = Cube::new(dim).iter_dims().collect();
        let root = root & (p - 1);

        let nested = uniform_locals(dim, len, salt);
        let (mut hc_seed, mut hc_slab) = machine_pair(dim, drops);
        let mut want = nested.clone();
        reference::broadcast(&mut hc_seed, &mut want, &dims, root);
        let mut got = nested.clone();
        collective::broadcast(&mut hc_slab, &mut got, &dims, root);
        prop_assert_eq!(&want, &got, "broadcast payload");
        assert_machines_identical(&hc_seed, &hc_slab, "broadcast");

        let send: Vec<Vec<Vec<f64>>> = (0..p)
            .map(|src| (0..p).map(|c| (0..len).map(|i| val(src * p + c, i + salt)).collect()).collect())
            .collect();
        let (mut hc_seed, mut hc_slab) = machine_pair(dim, drops);
        let want = reference::alltoall(&mut hc_seed, send.clone(), &dims);
        let got_slab = collective::alltoall_slab(&mut hc_slab, &SegSlab::from_nested(&send, p), &dims);
        prop_assert_eq!(&want, &got_slab.to_nested(), "alltoall payload");
        assert_machines_identical(&hc_seed, &hc_slab, "alltoall");
    }

    /// The tiled `reduce` local fold + slab butterfly is bit-identical to
    /// the seed per-node fold + hop-by-hop butterfly (f64: combine order
    /// matters, so this checks order, not just algebra).
    #[test]
    fn tiled_reduce_matches_seed_fold(
        dim in 0u32..=4,
        dr_frac in 0u32..=4,
        rows in 1usize..=17,
        cols in 1usize..=17,
    ) {
        let dr = dr_frac.min(dim);
        let grid = ProcGrid::new(Cube::new(dim), dr);
        let layout = MatrixLayout::cyclic(MatShape::new(rows, cols), grid);
        let m = DistMatrix::from_fn(layout.clone(), val);

        // Seed oracle: nested locals, offset-order fold, reference butterfly.
        let p = layout.grid().p();
        let nested: Vec<Vec<f64>> = (0..p)
            .map(|node| layout.local_elements(node).map(|(i, j, _)| val(i, j)).collect())
            .collect();
        let mut hc_seed = Hypercube::cm2(dim);
        let mut partials: Vec<Vec<f64>> = Vec::with_capacity(p);
        for node in 0..p {
            let (_, lc) = layout.local_shape(node);
            let mut acc = vec![0.0f64; lc];
            for (_, _, off) in layout.local_elements(node) {
                acc[off % lc.max(1)] += nested[node][off];
            }
            partials.push(acc);
        }
        hc_seed.charge_flops(layout.max_local_len());
        reference::allreduce(&mut hc_seed, &mut partials, layout.grid().row_dims(), |a, b| a + b);

        let mut hc_slab = Hypercube::cm2(dim);
        let v = primitives::reduce(&mut hc_slab, &m, Axis::Row, Sum);
        prop_assert_eq!(v.chunks().to_nested(), partials, "reduce payload");
        assert_machines_identical(&hc_seed, &hc_slab, "reduce primitive");
    }

    /// The tiled rank-1 kernel is bit-identical to the seed per-element
    /// offset walk (`off / lc`, `off % lc`) on random shapes.
    #[test]
    fn tiled_rank1_matches_seed_walk(
        dim in 0u32..=4,
        dr_frac in 0u32..=4,
        rows in 1usize..=17,
        cols in 1usize..=17,
        kind in prop_oneof![Just(Dist::Block), Just(Dist::Cyclic)],
    ) {
        let dr = dr_frac.min(dim);
        let grid = ProcGrid::new(Cube::new(dim), dr);
        let layout = MatrixLayout::new(MatShape::new(rows, cols), grid, kind, kind);
        let mut m = DistMatrix::from_fn(layout.clone(), val);

        let mk_vec = |axis: Axis, salt: usize| {
            let vl = VectorLayout::aligned(
                layout.shape().vector_len(axis),
                layout.grid().clone(),
                axis,
                Placement::Replicated,
                layout.vector_dist(axis).kind(),
            );
            DistVector::from_fn(vl, move |i| val(i, salt))
        };
        let col = mk_vec(Axis::Col, 5);
        let row = mk_vec(Axis::Row, 11);

        // Seed oracle on nested buffers.
        let p = layout.grid().p();
        let mut nested: Vec<Vec<f64>> = (0..p)
            .map(|node| layout.local_elements(node).map(|(i, j, _)| val(i, j)).collect())
            .collect();
        let col_chunks = col.chunks().to_nested();
        let row_chunks = row.chunks().to_nested();
        for node in 0..p {
            let lc = layout.local_shape(node).1;
            for (_, _, off) in layout.local_elements(node) {
                let li = off / lc.max(1);
                let lj = off % lc.max(1);
                nested[node][off] -= col_chunks[node][li] * row_chunks[node][lj];
            }
        }

        let mut hc = Hypercube::cm2(dim);
        m.rank1_update(&mut hc, &col, &row, |_, _, a, c, r| a - c * r);
        let dense = m.to_dense();
        for (i, drow) in dense.iter().enumerate() {
            for (j, &d) in drow.iter().enumerate() {
                let node = layout.owner(i, j);
                let off = layout.local_offset(i, j);
                prop_assert_eq!(d, nested[node][off], "divergence at ({}, {})", i, j);
            }
        }
    }
}

/// Fault plans beyond drops: a dead link forces detours; both paths must
/// retry and reroute identically because they issue identical exchange
/// supersteps.
#[test]
fn collectives_match_reference_under_link_fault() {
    let dim = 3u32;
    let dims: Vec<u32> = Cube::new(dim).iter_dims().collect();
    let nested = uniform_locals(dim, 5, 9);
    let mut fault_events = 0u64;
    for plan_seed in [3u64, 17, 99] {
        let make = || {
            let mut hc = Hypercube::cm2(dim);
            hc.install_faults(
                FaultPlan::none(plan_seed).with_drops(0.25, 0, u64::MAX).with_link_fault(0, 4, 0),
                ResilientConfig::default(),
            );
            hc
        };
        let mut hc_seed = make();
        let mut want = nested.clone();
        reference::allreduce(&mut hc_seed, &mut want, &dims, |a, b| a + b);

        let mut hc_slab = make();
        let mut got = NodeSlab::from_nested(&nested);
        collective::allreduce_slab(&mut hc_slab, &mut got, &dims, |a, b| a + b);

        assert_eq!(want, got.to_nested(), "payload under faults");
        assert_machines_identical(&hc_seed, &hc_slab, "allreduce under faults");
        let c = hc_seed.counters();
        fault_events += c.transient_drops + c.retries + c.reroutes + c.detour_hops;
    }
    assert!(fault_events > 0, "the plans actually injected faults");
}
