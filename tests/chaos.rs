//! Chaos tests: every recoverable fault plan must be invisible in the
//! *results* — retries, detours and degradation change only the modeled
//! cost. Each test runs a workload twice, fault-free and under
//! injection, and compares outputs bit-for-bit while asserting the
//! recovery counters prove the faults actually fired.

// Proptest sweeps are far too slow under Miri's interpreter; the
// dedicated Miri CI job covers the library's unsafe/aliasing surface
// via the unit tests instead (see .github/workflows/ci.yml).
#![cfg(not(miri))]

use proptest::prelude::*;

use four_vmp::algos::serial::simplex::PivotRule;
use four_vmp::algos::{checkpoint, forward_eliminate, ge_solve, simplex, workloads, GeCheckpoint};
use four_vmp::core::degrade::apply_degradation;
use four_vmp::core::elem::Sum;
use four_vmp::core::primitives;
use four_vmp::hypercube::{Cube, FaultPlan, ResilientConfig};
use four_vmp::prelude::*;

/// The primitive chain whose outputs must survive any recoverable plan.
fn primitive_workload(hc: &mut Hypercube, rows: usize, cols: usize) -> Vec<Vec<f64>> {
    let grid = ProcGrid::square(hc.cube());
    let layout = MatrixLayout::cyclic(MatShape::new(rows, cols), grid);
    let m = DistMatrix::from_fn(layout, |i, j| ((i * 37 + j * 13) as f64).cos());
    let colsum = primitives::reduce(hc, &m, Axis::Row, Sum);
    let r = primitives::extract(hc, &m, Axis::Row, rows / 2);
    let mut m2 = m.clone();
    primitives::insert(hc, &mut m2, Axis::Row, 0, &r);
    let stacked = primitives::distribute(hc, &r, 3, Dist::Cyclic);
    let mut out = vec![colsum.to_dense(), r.to_dense()];
    out.extend(m2.to_dense());
    out.extend(stacked.to_dense());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite invariant: the resilient layer with an empty plan is
    /// bit-identical to the plain machine — same results, same modeled
    /// clock, same counters. Zero faults must cost exactly zero.
    #[test]
    fn zero_fault_resilient_layer_is_bitwise_free(
        dim in 0u32..=5,
        rows in 1usize..=17,
        cols in 1usize..=17,
        seed in 0u64..=1_000_000,
    ) {
        let mut plain = Hypercube::cm2(dim);
        let want = primitive_workload(&mut plain, rows, cols);

        let mut resilient = Hypercube::cm2(dim);
        resilient.install_faults(FaultPlan::none(seed), ResilientConfig::default());
        let got = primitive_workload(&mut resilient, rows, cols);

        prop_assert_eq!(got, want);
        prop_assert_eq!(resilient.elapsed_us().to_bits(), plain.elapsed_us().to_bits());
        prop_assert_eq!(*resilient.counters(), *plain.counters());
    }

    /// Any transient-drop plan is recoverable: results never change.
    #[test]
    fn transient_drops_never_change_results(
        dim in 1u32..=5,
        rows in 2usize..=13,
        cols in 1usize..=13,
        rate_pct in 0u32..=40,
        seed in 0u64..=1_000_000,
    ) {
        let mut plain = Hypercube::cm2(dim);
        let want = primitive_workload(&mut plain, rows, cols);

        let mut faulty = Hypercube::cm2(dim);
        let plan = FaultPlan::none(seed).with_drops(f64::from(rate_pct) / 100.0, 0, u64::MAX);
        faulty.install_faults(plan, ResilientConfig::default());
        let got = primitive_workload(&mut faulty, rows, cols);

        prop_assert_eq!(got, want);
        // Drops may only make the modeled run slower, never faster.
        prop_assert!(faulty.elapsed_us() >= plain.elapsed_us());
    }

    /// A dead link (and a dead node absorbed by degradation) is
    /// recoverable: detours and concentration change cost only.
    #[test]
    fn dead_links_and_nodes_never_change_results(
        dim in 2u32..=5,
        rows in 2usize..=13,
        link_bit in 0u32..=4,
        dead_node in 1usize..=7,
        seed in 0u64..=1_000_000,
    ) {
        let cols = rows;
        let mut plain = Hypercube::cm2(dim);
        let want = primitive_workload(&mut plain, rows, cols);

        let bit = link_bit % dim;
        let mut faulty = Hypercube::cm2(dim);
        faulty.install_faults(
            FaultPlan::none(seed).with_link_fault(0, 1 << bit, 0),
            ResilientConfig::default(),
        );
        let node = dead_node % (1 << dim);
        if node != 0 {
            let resident = vec![1usize; faulty.p()];
            let _ = apply_degradation(&mut faulty, &[node], &resident);
        }
        let got = primitive_workload(&mut faulty, rows, cols);
        prop_assert_eq!(got, want);
    }
}

#[test]
fn ge_solve_is_bit_identical_under_heavy_chaos() {
    let n = 18;
    let a = workloads::pivot_stress_matrix(n, 7);
    let x_true: Vec<f64> = (0..n).map(|i| 0.5 + i as f64).collect();
    let b = a.matvec(&x_true);

    let mut plain = Hypercube::cm2(4);
    let (x0, stats0) =
        ge_solve(&mut plain, &a, &b, ProcGrid::square(Cube::new(4))).expect("nonsingular");

    let mut faulty = Hypercube::cm2(4);
    faulty.install_faults(
        FaultPlan::none(42).with_drops(0.25, 0, u64::MAX).with_link_fault(2, 3, 100),
        ResilientConfig::default(),
    );
    let (x, stats) =
        ge_solve(&mut faulty, &a, &b, ProcGrid::square(Cube::new(4))).expect("nonsingular");

    assert_eq!(x, x0, "chaos must not change the solution bits");
    assert_eq!(stats, stats0);
    let c = faulty.counters();
    assert!(c.transient_drops > 0, "the drop schedule must actually fire");
    assert!(c.retries > 0, "drops must be retried");
    assert!(c.reroutes > 0, "the dead link must force detours");
    assert!(faulty.elapsed_us() > plain.elapsed_us(), "recovery costs modeled time");
}

#[test]
fn simplex_is_bit_identical_under_heavy_chaos() {
    let lp = workloads::random_dense_lp(8, 6, 11);
    let mut plain = Hypercube::cm2(4);
    let want = simplex::solve_parallel(&mut plain, &lp, ProcGrid::square(Cube::new(4)), 500);

    let mut faulty = Hypercube::cm2(4);
    faulty.install_faults(
        FaultPlan::none(7).with_drops(0.3, 0, u64::MAX),
        ResilientConfig::default(),
    );
    let got = simplex::solve_parallel(&mut faulty, &lp, ProcGrid::square(Cube::new(4)), 500);

    assert_eq!(got.status, want.status);
    assert_eq!(got.iterations, want.iterations);
    assert_eq!(got.objective, want.objective, "bit-identical objective under chaos");
    assert_eq!(got.x, want.x, "bit-identical solution under chaos");
    assert!(faulty.counters().retries > 0, "faults must have fired");
}

#[test]
fn checkpointed_restart_under_chaos_matches_clean_run() {
    // A run is interrupted mid-elimination on a faulty machine; the
    // checkpoint crosses the byte codec and resumes on a *different*
    // faulty machine. The final matrix must match the clean run's bits.
    let n = 15;
    let (a, b, _) = workloads::diag_dominant_system(n, 23);
    let grid = || ProcGrid::square(Cube::new(4));

    let mut clean = Hypercube::cm2(4);
    let mut aug_clean = four_vmp::algos::build_augmented(&a, &b, grid());
    let stats_clean = forward_eliminate(&mut clean, &mut aug_clean).expect("nonsingular");

    let mut cks: Vec<Vec<u8>> = Vec::new();
    let mut hc1 = Hypercube::cm2(4);
    hc1.install_faults(FaultPlan::none(5).with_drops(0.2, 0, u64::MAX), ResilientConfig::default());
    let mut aug1 = four_vmp::algos::build_augmented(&a, &b, grid());
    checkpoint::forward_eliminate_checkpointed(&mut hc1, &mut aug1, 4, |ck| {
        cks.push(ck.to_bytes());
    })
    .expect("nonsingular");
    assert!(!cks.is_empty());

    let ck = GeCheckpoint::from_bytes(&cks[0]).expect("round trip");
    let mut hc2 = Hypercube::cm2(4);
    hc2.install_faults(
        FaultPlan::none(999).with_drops(0.2, 0, u64::MAX).with_link_fault(0, 4, 0),
        ResilientConfig::default(),
    );
    let (aug2, stats2) =
        checkpoint::resume_forward_eliminate(&mut hc2, &ck, grid()).expect("nonsingular");

    assert_eq!(aug2.to_dense(), aug_clean.to_dense(), "restart under chaos is bit-exact");
    assert_eq!(stats2, stats_clean);
    assert!(
        hc2.counters().transient_drops > 0 || hc2.counters().reroutes > 0,
        "the resumed run really ran under faults"
    );
}

#[test]
fn resumed_simplex_under_chaos_matches_clean_run() {
    let lp = workloads::random_dense_lp(7, 5, 3);
    let grid = || ProcGrid::square(Cube::new(3));

    let mut clean = Hypercube::cm2(3);
    let want = simplex::solve_parallel(&mut clean, &lp, grid(), 500);

    let mut cks = Vec::new();
    let mut hc1 = Hypercube::cm2(3);
    hc1.install_faults(FaultPlan::none(1).with_drops(0.2, 0, u64::MAX), ResilientConfig::default());
    let _ = checkpoint::solve_parallel_checkpointed(
        &mut hc1,
        &lp,
        grid(),
        500,
        PivotRule::Dantzig,
        |ck| cks.push(ck.clone()),
    );
    assert!(!cks.is_empty(), "LP must pivot at least once");

    let mid = &cks[cks.len() / 2];
    let mut hc2 = Hypercube::cm2(3);
    hc2.install_faults(
        FaultPlan::none(77).with_drops(0.3, 0, u64::MAX),
        ResilientConfig::default(),
    );
    let got = checkpoint::resume_solve_parallel(&mut hc2, &lp, grid(), mid, 500);

    assert_eq!(got.status, want.status);
    assert_eq!(got.iterations, want.iterations);
    assert_eq!(got.objective, want.objective);
    assert_eq!(got.x, want.x);
}
