//! Edge cases and failure injection across the public API: degenerate
//! shapes, single-processor machines, singular/infeasible inputs, and
//! misuse that must panic loudly rather than corrupt.

use four_vmp::algos::serial::{simplex::GeneralLp, Dense, SimplexStatus};
use four_vmp::algos::{gauss, simplex, vecmat};
use four_vmp::core::elem::{Max, Min, Sum};
use four_vmp::core::{primitives, remap};
use four_vmp::hypercube::Cube;
use four_vmp::prelude::*;

fn machine(dim: u32) -> Hypercube {
    Hypercube::cm2(dim)
}

fn grid(dim: u32) -> ProcGrid {
    ProcGrid::square(Cube::new(dim))
}

#[test]
fn one_by_one_matrix_supports_every_primitive() {
    let mut hc = machine(4);
    let layout = MatrixLayout::cyclic(MatShape::new(1, 1), grid(4));
    let m = DistMatrix::from_fn(layout, |_, _| 42.0f64);
    let r = primitives::reduce(&mut hc, &m, Axis::Row, Sum);
    assert_eq!(r.to_dense(), vec![42.0]);
    let e = primitives::extract(&mut hc, &m, Axis::Col, 0);
    assert_eq!(e.to_dense(), vec![42.0]);
    let er = primitives::extract_replicated(&mut hc, &m, Axis::Row, 0);
    let d = primitives::distribute(&mut hc, &er, 1, Dist::Cyclic);
    assert_eq!(d.to_dense(), vec![vec![42.0]]);
    let mut m2 = m.clone();
    primitives::insert(&mut hc, &mut m2, Axis::Row, 0, &er);
    assert_eq!(m2.to_dense(), m.to_dense());
    let t = remap::transpose(&mut hc, &m);
    assert_eq!(t.to_dense(), vec![vec![42.0]]);
}

#[test]
fn single_row_and_single_column_matrices() {
    let mut hc = machine(4);
    let row =
        DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(1, 9), grid(4)), |_, j| j as i64);
    let col_sum = primitives::reduce(&mut hc, &row, Axis::Row, Sum);
    assert_eq!(col_sum.to_dense(), (0..9).collect::<Vec<i64>>());
    let row_min = primitives::reduce(&mut hc, &row, Axis::Col, Min);
    assert_eq!(row_min.to_dense(), vec![0]);

    let col =
        DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(9, 1), grid(4)), |i, _| i as i64);
    let m = primitives::reduce(&mut hc, &col, Axis::Row, Max);
    assert_eq!(m.to_dense(), vec![8]);
}

#[test]
fn single_processor_machine_runs_the_whole_stack() {
    // p = 1: every collective degenerates to a no-op; everything must
    // still be correct.
    let mut hc = machine(0);
    let g = grid(0);
    let a = four_vmp::algos::workloads::random_matrix(10, 10, 1);
    let b = four_vmp::algos::workloads::random_vector(10, 2);
    let (x, _) = gauss::ge_solve(&mut hc, &a, &b, g.clone()).expect("nonsingular");
    let serial = four_vmp::algos::serial::lu_solve(&a, &b).expect("nonsingular");
    for (u, v) in x.iter().zip(&serial) {
        assert!((u - v).abs() < 1e-9);
    }
    let lp = four_vmp::algos::workloads::random_dense_lp(5, 5, 3);
    let r = simplex::solve_parallel(&mut hc, &lp, g, 500);
    assert_eq!(r.status, SimplexStatus::Optimal);
    assert_eq!(hc.counters().elements_transferred, 0, "p = 1 moves nothing");
}

#[test]
fn empty_and_tiny_vectors() {
    let mut hc = machine(3);
    let empty = DistVector::<f64>::from_fn(
        VectorLayout::linear(0, grid(3), Dist::Block),
        |_| unreachable!(),
    );
    assert_eq!(empty.reduce_all(&mut hc, Sum), 0.0);
    assert_eq!(empty.to_dense(), Vec::<f64>::new());

    let one = DistVector::from_slice(VectorLayout::linear(1, grid(3), Dist::Block), &[7i64]);
    assert_eq!(one.reduce_all(&mut hc, Max), 7);
    let rev = four_vmp::core::scan::reverse(&mut hc, &one);
    assert_eq!(rev.to_dense(), vec![7]);
}

#[test]
fn vecmat_on_degenerate_shapes() {
    let mut hc = machine(4);
    // 1 x n and n x 1 multiplies.
    let a = DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(1, 6), grid(4)), |_, j| {
        (j + 1) as f64
    });
    let x = DistVector::from_slice(
        VectorLayout::aligned(1, grid(4), Axis::Col, Placement::Replicated, Dist::Cyclic),
        &[2.0],
    );
    let y = vecmat(&mut hc, &x, &a);
    assert_eq!(y.to_dense(), vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0]);
}

#[test]
fn singular_and_infeasible_inputs_report_errors_not_garbage() {
    let mut hc = machine(2);
    // Singular: rank-1 matrix.
    let a = Dense::from_fn(4, 4, |i, j| ((i + 1) * (j + 1)) as f64);
    assert_eq!(
        gauss::ge_solve(&mut hc, &a, &[1.0; 4], grid(2)).unwrap_err(),
        gauss::GeError::Singular
    );
    // Infeasible LP.
    let lp = GeneralLp::new(Dense::from_rows(&[vec![1.0], vec![-1.0]]), vec![0.5, -2.0], vec![1.0]);
    let r = simplex::solve_general_parallel(&mut hc, &lp, grid(2), 100);
    assert_eq!(r.status, SimplexStatus::Infeasible);
}

#[test]
fn zero_iteration_caps_terminate_immediately() {
    let mut hc = machine(2);
    let lp = four_vmp::algos::workloads::random_dense_lp(4, 4, 1);
    let r = simplex::solve_parallel(&mut hc, &lp, grid(2), 0);
    assert_eq!(r.status, SimplexStatus::MaxIterations);
    assert_eq!(r.iterations, 0);
}

#[test]
fn more_processors_than_elements() {
    // p = 64 for a 3x3 matrix: most nodes own nothing; everything still
    // works and the empties carry no data.
    let mut hc = machine(6);
    let layout = MatrixLayout::cyclic(MatShape::new(3, 3), grid(6));
    let m = DistMatrix::from_fn(layout, |i, j| (i * 3 + j) as i64);
    m.assert_consistent();
    let s = primitives::reduce(&mut hc, &m, Axis::Row, Sum);
    assert_eq!(s.to_dense(), vec![9, 12, 15]);
    let t = remap::transpose(&mut hc, &m);
    assert_eq!(t.get(2, 0), 2);
    let (x, _) = gauss::ge_solve(
        &mut hc,
        &Dense::from_rows(&[vec![2.0, 0.0], vec![0.0, 4.0]]),
        &[2.0, 8.0],
        grid(6),
    )
    .expect("diagonal");
    assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
}

#[test]
fn extreme_grid_aspect_ratios() {
    // All-rows and all-columns grids must behave like the square one.
    let mut results = Vec::new();
    for dr in [0u32, 2, 4] {
        let g = ProcGrid::new(Cube::new(4), dr);
        let layout = MatrixLayout::cyclic(MatShape::new(8, 8), g);
        let m = DistMatrix::from_fn(layout, |i, j| ((i * 13 + j) % 7) as i64);
        let mut hc = machine(4);
        results.push(primitives::reduce(&mut hc, &m, Axis::Row, Sum).to_dense());
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
}

#[test]
#[should_panic(expected = "out of range")]
fn extract_past_the_end_panics() {
    let mut hc = machine(2);
    let m = DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(3, 3), grid(2)), |_, _| 0.0f64);
    let _ = primitives::extract(&mut hc, &m, Axis::Col, 3);
}

#[test]
#[should_panic(expected = "share a layout")]
fn zipping_mismatched_layouts_panics() {
    let mut hc = machine(2);
    let a = DistVector::from_fn(VectorLayout::linear(8, grid(2), Dist::Block), |i| i as i64);
    let b = DistVector::from_fn(VectorLayout::linear(8, grid(2), Dist::Cyclic), |i| i as i64);
    let _ = a.zip(&mut hc, &b, |_, x, y| x + y);
}
