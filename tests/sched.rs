//! Scheduler invariants: the buddy allocator under random operation
//! sequences, and the bit-identity of scheduled runs against standalone
//! runs — including under recoverable fault plans, machine-level node
//! failures, and graceful degradation.

// Proptest sweeps are far too slow under Miri's interpreter; the
// dedicated Miri CI job covers the library's unsafe/aliasing surface
// via the unit tests instead (see .github/workflows/ci.yml).
#![cfg(not(miri))]

use proptest::prelude::*;
use proptest::TestRng;

use four_vmp::hypercube::CostModel;
use four_vmp::sched::{
    run_fcfs, run_trace, BuddyAllocator, DeadImpact, JobKind, JobSpec, Policy, SimConfig, Subcube,
    Trace, TraceParams,
};

/// Vec-of-strategy combinator (the vendored proptest stand-in has no
/// `prop::collection`): a length drawn from `len`, then that many
/// element samples.
struct VecOf<S> {
    elem: S,
    len: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.clone().sample(rng);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

/// A random allocator workload: allocate, release a live block, or kill
/// a node. Encoded as (op selector, operand) pairs.
fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u8)>> {
    VecOf { elem: (0u8..=2, 0u8..=255), len: 1..120 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the operation sequence, the allocator's free, dead and
    /// allocated sets always partition the machine: no node is ever in
    /// two subcubes, lost, or handed out twice.
    #[test]
    fn allocator_never_double_allocates(ops in ops_strategy()) {
        let dim = 5u32;
        let mut a = BuddyAllocator::new(dim);
        let mut live: Vec<Subcube> = Vec::new();
        for (op, arg) in ops {
            match op {
                0 => {
                    let order = u32::from(arg) % (dim + 1);
                    if let Some(sub) = a.allocate(order) {
                        prop_assert_eq!(sub.order(), order);
                        prop_assert!(sub.nodes().all(|n| !a.is_dead(n)));
                        // Disjoint from every other outstanding block.
                        prop_assert!(live.iter().all(|s| !s.overlaps(sub)));
                        live.push(sub);
                    }
                }
                1 => {
                    if !live.is_empty() {
                        let sub = live.remove(usize::from(arg) % live.len());
                        a.release(sub);
                    }
                }
                _ => {
                    let node = usize::from(arg) % (1usize << dim);
                    if let DeadImpact::Allocated(sub) = a.mark_dead(node) {
                        // A casualty inside a tenant: the scheduler's
                        // abort path releases the block.
                        live.retain(|s| *s != sub);
                        a.release(sub);
                    }
                }
            }
            a.assert_consistent();
        }
    }

    /// Releasing everything coalesces all healthy space back into
    /// maximal blocks: with no casualties, the whole machine re-forms.
    #[test]
    fn frees_fully_coalesce(orders in VecOf { elem: 0u32..=4, len: 1..24 }) {
        let dim = 5u32;
        let mut a = BuddyAllocator::new(dim);
        let mut live = Vec::new();
        for order in orders {
            if let Some(sub) = a.allocate(order) {
                live.push(sub);
            }
        }
        for sub in live {
            a.release(sub);
        }
        a.assert_consistent();
        let whole = a.allocate(dim);
        prop_assert!(whole.is_some(), "all frees must coalesce back to the full cube");
    }

    /// The allocator is a pure function of its call sequence: replaying
    /// the same operations yields the same subcubes.
    #[test]
    fn allocator_is_deterministic(ops in ops_strategy()) {
        let replay = |ops: &[(u8, u8)]| -> Vec<Option<(usize, u32)>> {
            let mut a = BuddyAllocator::new(5);
            let mut live = Vec::new();
            let mut log = Vec::new();
            for &(op, arg) in ops {
                match op {
                    0 => {
                        let got = a.allocate(u32::from(arg) % 6);
                        log.push(got.map(|s| (s.base(), s.order())));
                        if let Some(s) = got {
                            live.push(s);
                        }
                    }
                    1 => {
                        if !live.is_empty() {
                            a.release(live.remove(usize::from(arg) % live.len()));
                        }
                    }
                    _ => {
                        if let DeadImpact::Allocated(sub) = a.mark_dead(usize::from(arg) % 32) {
                            live.retain(|s| *s != sub);
                            a.release(sub);
                        }
                    }
                }
            }
            log
        };
        prop_assert_eq!(replay(&ops), replay(&ops));
    }
}

/// Every job scheduled on a subcube — FIFO and SPJF, across a trace
/// that includes jobs with recoverable transient-drop fault plans and a
/// machine-level node failure that forces an abort/re-plan — produces
/// exactly the bytes of its standalone run.
#[test]
fn scheduled_results_are_bit_identical_to_standalone() {
    let cost = CostModel::cm2();
    for seed in [3u64, 1989] {
        let trace = Trace::generate(TraceParams::smoke(), seed);
        assert!(!trace.failures.is_empty(), "the smoke trace must inject a failure");
        for policy in [Policy::Fifo, Policy::Spjf] {
            let out = run_trace(&trace, SimConfig { dim: 6, cost, policy });
            assert_eq!(
                out.metrics.completed + out.metrics.skipped,
                trace.jobs.len(),
                "no job may be lost"
            );
            for r in &out.records {
                let standalone = trace.jobs[r.id].run_standalone(cost);
                assert_eq!(
                    r.words, standalone.words,
                    "job {} ({}) under {policy:?}, seed {seed}",
                    r.id, r.kind
                );
            }
        }
    }
}

/// A trace whose only order-`dim` block carries a casualty before any
/// job arrives: the scheduler must fall back to a degraded allocation
/// and the degraded run must still match the standalone bits.
#[test]
fn degraded_fallback_is_bit_identical() {
    let cost = CostModel::cm2();
    let job = JobSpec {
        id: 0,
        kind: JobKind::Gauss { n: 10 },
        order: 3,
        seed: 77,
        arrival_us: 10.0,
        drop_rate: 0.0,
    };
    let trace = Trace {
        jobs: vec![job.clone()],
        failures: vec![four_vmp::sched::FailureEvent { at_us: 0.0, node: 6 }],
    };
    let out = run_trace(&trace, SimConfig { dim: 3, cost, policy: Policy::Fifo });
    assert_eq!(out.metrics.completed, 1);
    let r = &out.records[0];
    assert!(r.degraded, "the whole machine has a casualty: only a degraded block fits");
    assert_eq!(r.words, job.run_standalone(cost).words, "degraded bits must match");
    assert!(r.service_us > job.run_standalone(cost).service_us, "degradation costs time");
}

/// A job aborted by a mid-run node failure completes on a healthy
/// subcube with unchanged result bytes and `attempts > 1`.
#[test]
fn failure_abort_replans_without_changing_bits() {
    let cost = CostModel::cm2();
    let job = JobSpec {
        id: 0,
        kind: JobKind::Matvec { n: 64 },
        order: 4,
        seed: 5,
        arrival_us: 0.0,
        drop_rate: 0.02,
    };
    let service = job.run_standalone(cost).service_us;
    let trace = Trace {
        jobs: vec![job.clone()],
        // The allocator packs from base 0, so node 3 is inside the
        // first allocation; fail it mid-service.
        failures: vec![four_vmp::sched::FailureEvent { at_us: service * 0.5, node: 3 }],
    };
    let out = run_trace(&trace, SimConfig { dim: 5, cost, policy: Policy::Fifo });
    assert_eq!(out.metrics.completed, 1);
    assert_eq!(out.metrics.aborts, 1);
    let r = &out.records[0];
    assert_eq!(r.attempts, 2, "one abort, one successful re-plan");
    assert_eq!(r.words, job.run_standalone(cost).words);
}

/// The FCFS baseline shares the bit-identity contract (it runs the
/// standalone path), so the experiment's comparison is apples to apples.
#[test]
fn fcfs_baseline_matches_standalone_bits_too() {
    let cost = CostModel::cm2();
    let trace = Trace::generate(TraceParams::smoke(), 11);
    let out = run_fcfs(&trace, 6, cost);
    assert_eq!(out.metrics.completed, trace.jobs.len());
    for r in &out.records {
        assert_eq!(r.words, trace.jobs[r.id].run_standalone(cost).words);
    }
}
