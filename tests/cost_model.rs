//! Cost-model invariants across the stack: simulated time must be
//! monotone in problem size, never cheaper than its lower bound, and the
//! naive baseline must never win.

// Proptest sweeps are far too slow under Miri's interpreter; the
// dedicated Miri CI job covers the library's unsafe/aliasing surface
// via the unit tests instead (see .github/workflows/ci.yml).
#![cfg(not(miri))]

use four_vmp::algos::workloads;
use four_vmp::core::analysis;
use four_vmp::core::elem::Sum;
use four_vmp::core::{naive, primitives};
use four_vmp::hypercube::Cube;
use four_vmp::prelude::*;
use proptest::prelude::*;

fn matrix(n: usize, dim: u32) -> DistMatrix<f64> {
    let grid = ProcGrid::square(Cube::new(dim));
    DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(n, n), grid), |i, j| (i + j) as f64)
}

fn reduce_time(n: usize, dim: u32) -> f64 {
    let m = matrix(n, dim);
    let mut hc = Hypercube::cm2(dim);
    let _ = primitives::reduce(&mut hc, &m, Axis::Row, Sum);
    hc.elapsed_us()
}

#[test]
fn time_is_monotone_in_matrix_size() {
    let mut last = 0.0;
    for n in [8usize, 16, 32, 64, 128, 256] {
        let t = reduce_time(n, 6);
        assert!(t >= last, "n = {n}: {t} < {last}");
        last = t;
    }
}

#[test]
fn local_term_shrinks_with_machine_size() {
    // At large m/p, doubling p should cut reduce time substantially.
    let t4 = reduce_time(256, 4);
    let t8 = reduce_time(256, 8);
    assert!(t8 < t4 / 2.0, "p x16 should cut the local term: {t4} -> {t8}");
}

#[test]
fn simulated_time_respects_the_lower_bound() {
    let cost = CostModel::cm2();
    for dim in [0u32, 2, 4, 6, 8] {
        for n in [16usize, 64, 256] {
            let t = reduce_time(n, dim);
            let grid = ProcGrid::square(Cube::new(dim));
            let lb = analysis::lower_bound_dims(n * n, 1 << dim, grid.dr(), &cost);
            assert!(t >= lb * 0.999, "dim {dim} n {n}: simulated {t} below bound {lb}");
        }
    }
}

#[test]
fn naive_never_beats_primitives() {
    for dim in [2u32, 4, 6] {
        for n in [16usize, 64, 128] {
            let m = matrix(n, dim);
            let mut hn = Hypercube::cm2(dim);
            let _ = naive::naive_reduce(&mut hn, &m, Axis::Row, Sum);
            let mut ho = Hypercube::cm2(dim);
            let _ = primitives::reduce(&mut ho, &m, Axis::Row, Sum);
            assert!(
                hn.elapsed_us() >= ho.elapsed_us(),
                "dim {dim} n {n}: naive {} < primitives {}",
                hn.elapsed_us(),
                ho.elapsed_us()
            );
        }
    }
}

#[test]
fn the_naive_gap_grows_with_vp_ratio() {
    let ratio = |n: usize| {
        let m = matrix(n, 6);
        let mut hn = Hypercube::cm2(6);
        let _ = naive::naive_reduce(&mut hn, &m, Axis::Row, Sum);
        let mut ho = Hypercube::cm2(6);
        let _ = primitives::reduce(&mut ho, &m, Axis::Row, Sum);
        hn.elapsed_us() / ho.elapsed_us()
    };
    assert!(ratio(256) > ratio(16), "blocking amortises better at higher m/p");
}

#[test]
fn ge_cost_grows_cubically_in_the_serial_model_but_flatter_in_parallel() {
    let time = |n: usize| {
        let (a, b, _) = workloads::diag_dominant_system(n, 1);
        let mut hc = Hypercube::cm2(8);
        let grid = ProcGrid::square(Cube::new(8));
        four_vmp::algos::ge_solve(&mut hc, &a, &b, grid).expect("dominant");
        hc.elapsed_us()
    };
    let t64 = time(64);
    let t128 = time(128);
    // Serial doubling would cost 8x; the parallel version with fixed p
    // and growing m/p should sit well under that at these sizes.
    let growth = t128 / t64;
    assert!(growth < 6.0, "parallel growth {growth:.2} should be sub-cubic here");
    assert!(growth > 1.5, "but still supra-linear");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn widening_a_matrix_never_reduces_time(
        n in 4usize..32,
        extra in 1usize..32,
        dim in 0u32..=6,
    ) {
        let grid = ProcGrid::square(Cube::new(dim));
        let narrow = DistMatrix::from_fn(
            MatrixLayout::cyclic(MatShape::new(n, n), grid.clone()), |i, j| (i + j) as f64);
        let wide = DistMatrix::from_fn(
            MatrixLayout::cyclic(MatShape::new(n, n + extra), grid), |i, j| (i + j) as f64);
        let mut h1 = Hypercube::cm2(dim);
        let _ = primitives::reduce(&mut h1, &narrow, Axis::Row, Sum);
        let mut h2 = Hypercube::cm2(dim);
        let _ = primitives::reduce(&mut h2, &wide, Axis::Row, Sum);
        prop_assert!(h2.elapsed_us() >= h1.elapsed_us());
    }

    #[test]
    fn every_primitive_charges_nonnegative_time(
        n in 1usize..24,
        dim in 0u32..=5,
        idx in 0usize..64,
    ) {
        let grid = ProcGrid::square(Cube::new(dim));
        let m = DistMatrix::from_fn(
            MatrixLayout::cyclic(MatShape::new(n, n), grid), |i, j| (i * n + j) as f64);
        let mut hc = Hypercube::cm2(dim);
        let t0 = hc.elapsed_us();
        let v = primitives::reduce(&mut hc, &m, Axis::Row, Sum);
        let t1 = hc.elapsed_us();
        prop_assert!(t1 >= t0);
        let _ = primitives::distribute(&mut hc, &v, n, Dist::Cyclic);
        let t2 = hc.elapsed_us();
        prop_assert!(t2 >= t1);
        let r = primitives::extract_replicated(&mut hc, &m, Axis::Row, idx % n);
        let t3 = hc.elapsed_us();
        prop_assert!(t3 >= t2);
        let mut m2 = m.clone();
        primitives::insert(&mut hc, &mut m2, Axis::Row, (idx / 2) % n, &r);
        prop_assert!(hc.elapsed_us() >= t3);
    }
}
