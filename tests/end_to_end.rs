//! Cross-crate integration tests: full pipelines from workload
//! generation through the primitives to verified results.

use four_vmp::algos::serial::{self, simplex_solve, SimplexStatus};
use four_vmp::algos::{gauss, simplex, vecmat, workloads};
use four_vmp::core::elem::{Max, Sum};
use four_vmp::core::{naive, primitives};
use four_vmp::prelude::*;

fn machine(dim: u32) -> Hypercube {
    Hypercube::cm2(dim)
}

fn grid(dim: u32) -> ProcGrid {
    ProcGrid::square(Cube::new(dim))
}

use four_vmp::hypercube::{Counters, Cube};

#[test]
fn full_linear_solve_pipeline() {
    // Generate -> distribute -> eliminate -> back-substitute -> verify
    // against both the ground truth and the serial oracle.
    for dim in [0u32, 3, 5] {
        let n = 24;
        let (a, b, x_true) = workloads::diag_dominant_system(n, 2024);
        let mut hc = machine(dim);
        let (x, _) = gauss::ge_solve(&mut hc, &a, &b, grid(dim)).expect("nonsingular");
        let serial_x = serial::lu_solve(&a, &b).expect("nonsingular");
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-8, "truth, dim {dim}");
            assert!((x[i] - serial_x[i]).abs() < 1e-8, "oracle, dim {dim}");
        }
        assert!(hc.elapsed_us() > 0.0, "work was charged");
    }
}

#[test]
fn full_lp_pipeline_bit_matches_serial() {
    for seed in [1u64, 2, 3] {
        let lp = workloads::random_dense_lp(10, 8, seed);
        let mut hc = machine(4);
        let par = simplex::solve_parallel(&mut hc, &lp, grid(4), 1000);
        let ser = simplex_solve(&lp, 1000);
        assert_eq!(par.status, SimplexStatus::Optimal);
        assert_eq!(par.objective, ser.objective, "seed {seed}");
        assert_eq!(par.x, ser.x, "seed {seed}");
        assert!(lp.is_feasible(&par.x, 1e-7));
    }
}

#[test]
fn matvec_pipeline_with_embedding_changes() {
    // A vector arriving in the "wrong" (linear) embedding flows through
    // an automatic remap into the multiply.
    let n = 40;
    let d = workloads::random_matrix(n, n, 9);
    let xh = workloads::random_vector(n, 10);
    let g = grid(4);
    let a = DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(n, n), g.clone()), |i, j| {
        d.get(i, j)
    });
    let x = DistVector::from_slice(VectorLayout::linear(n, g, Dist::Block), &xh);
    let mut hc = machine(4);
    let y = vecmat(&mut hc, &x, &a);
    let expect = d.vecmat(&xh);
    for (u, v) in y.to_dense().iter().zip(&expect) {
        assert!((u - v).abs() < 1e-10);
    }
}

#[test]
fn primitives_compose_into_power_iteration() {
    // A fourth application, composed only from the public API: a few
    // steps of power iteration y <- normalise(A y) on a symmetric
    // positive matrix.
    let n = 16;
    let g = grid(4);
    let a = DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(n, n), g.clone()), |i, j| {
        1.0 / ((i + j + 1) as f64) + if i == j { 2.0 } else { 0.0 }
    });
    let mut hc = machine(4);
    let mut y = DistVector::constant(
        VectorLayout::aligned(n, g, Axis::Row, Placement::Replicated, Dist::Cyclic),
        1.0f64,
    );
    let mut lambda = 0.0;
    for _ in 0..30 {
        let ay = four_vmp::algos::matvec(&mut hc, &a, &y); // col-aligned
        lambda = ay.reduce_all(&mut hc, Max);
        // Normalise and re-orient for the next multiply.
        let normalised = ay.map(&mut hc, |_, v| v / lambda);
        y = four_vmp::core::remap::remap_vector(&mut hc, &normalised, y.layout().clone());
    }
    // Rayleigh-quotient check: A y ~= lambda y.
    let ay = four_vmp::algos::matvec(&mut hc, &a, &y);
    let yd = y.to_dense();
    let ayd = ay.to_dense();
    for i in 0..n {
        assert!((ayd[i] - lambda * yd[i]).abs() < 1e-6 * lambda, "eigenpair residual at {i}");
    }
    assert!(lambda > 2.0, "dominant eigenvalue exceeds the diagonal shift");
}

#[test]
fn naive_and_primitive_implementations_agree_end_to_end() {
    let n = 20;
    let g = grid(4);
    let a = DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(n, n), g), |i, j| {
        ((i * 7 + j * 11) % 13) as f64
    });
    let mut h1 = machine(4);
    let mut h2 = machine(4);
    let r1 = naive::naive_reduce(&mut h1, &a, Axis::Col, Sum);
    let r2 = primitives::reduce(&mut h2, &a, Axis::Col, Sum);
    assert_eq!(r1.to_dense(), r2.to_dense());
    assert!(h1.elapsed_us() > h2.elapsed_us(), "and the naive one is slower");
}

#[test]
fn counters_tell_a_consistent_story() {
    // Cross-checks between the clock and the counters: zero counters
    // imply zero time; message steps imply alpha charges.
    let n = 32;
    let g = grid(6);
    let a =
        DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(n, n), g), |i, j| (i + j) as f64);
    let mut hc = machine(6);
    let (_, extract_delta) =
        Counters::scoped(&mut hc, |hc| primitives::extract(hc, &a, Axis::Row, 3));
    assert_eq!(extract_delta.message_steps, 0, "extract is local");
    assert!(extract_delta.local_moves > 0);

    let cost = *hc.cost();
    let t0 = hc.elapsed_us();
    let (_, reduce_delta) =
        Counters::scoped(&mut hc, |hc| primitives::reduce(hc, &a, Axis::Row, Sum));
    let dt = hc.elapsed_us() - t0;
    let steps = reduce_delta.message_steps;
    assert!(dt >= cost.alpha * steps as f64, "every superstep pays at least alpha");
}
