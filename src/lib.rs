//! # four-vmp — *Four Vector-Matrix Primitives* in Rust
//!
//! A full reproduction of Agrawal, Blelloch, Krawitz & Phillips, *Four
//! Vector-Matrix Primitives* (SPAA 1989): four APL-like primitives —
//! `reduce`, `distribute`, `extract`, `insert` — for dense matrices and
//! vectors, specified independently of machine size and implemented over
//! load-balanced embeddings on a (simulated) Connection-Machine-style
//! hypercube multiprocessor, plus the paper's three applications
//! (vector-matrix multiply, Gaussian elimination, simplex) and the
//! "naive" general-router baseline they beat.
//!
//! This crate is the facade: it re-exports the workspace members.
//!
//! | crate | contents |
//! |---|---|
//! | [`hypercube`] | the machine: topology, cost model, collectives, routers |
//! | [`layout`] | load-balanced matrix/vector embeddings on processor grids |
//! | [`core`] | the four primitives, elementwise combinators, embedding changes, naive baseline, cost analysis |
//! | [`algos`] | matvec / Gaussian elimination / simplex, serial oracles, workload generators |
//! | [`sched`] | multi-tenant subcube scheduler: buddy allocation, FIFO/SPJF admission, fault re-planning |
//!
//! ## Quickstart
//!
//! ```
//! use four_vmp::prelude::*;
//!
//! // A 64-processor simulated machine and an 8x8 matrix on it.
//! let hc = &mut Hypercube::cm2(6);
//! let grid = ProcGrid::square(hc.cube());
//! let a = DistMatrix::from_fn(
//!     MatrixLayout::cyclic(MatShape::new(8, 8), grid),
//!     |i, j| (i * 8 + j) as f64,
//! );
//!
//! // The four primitives.
//! let col_sums = reduce(hc, &a, Axis::Row, Sum);       // all rows -> one row
//! let spread   = distribute(hc, &col_sums, 8, Dist::Cyclic);
//! let row3     = extract(hc, &a, Axis::Row, 3);
//! let row3_rep = replicate(hc, &row3);
//! let mut b = spread.clone();
//! insert(hc, &mut b, Axis::Row, 0, &row3_rep);
//!
//! assert_eq!(col_sums.get(2), (0..8).map(|i| (i * 8 + 2) as f64).sum());
//! assert_eq!(b.get(0, 5), a.get(3, 5));
//! println!("simulated CM time: {:.1} us", hc.elapsed_us());
//! ```

#![warn(missing_docs)]

pub use vmp_algos as algos;
pub use vmp_core as core;
pub use vmp_hypercube as hypercube;
pub use vmp_layout as layout;
pub use vmp_sched as sched;

/// Everything an application needs, in one import.
pub mod prelude {
    pub use vmp_algos::{ge_solve, matvec, solve_parallel, vecmat};
    pub use vmp_core::prelude::*;
}
