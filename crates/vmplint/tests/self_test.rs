//! The linter's own regression suite: every rule must fire on its
//! fixture, the waiver machinery must suppress exactly what it claims
//! to, the live workspace must be clean, and the binary must keep the
//! `reproduce`-style exit-code conventions (0 clean / 2 violations).

use std::path::{Path, PathBuf};
use std::process::Command;

use vmplint::report::Report;
use vmplint::rules::RuleId;
use vmplint::{find_workspace_root, run, Mode};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture_report() -> Report {
    run(&fixtures_dir(), Mode::Fixtures).expect("fixture corpus readable")
}

fn of_file<'r>(r: &'r Report, file: &str) -> Vec<&'r vmplint::report::Violation> {
    r.violations.iter().filter(|v| v.path == file).collect()
}

#[test]
fn every_rule_fires_on_the_fixture_corpus() {
    let r = fixture_report();
    assert!(r.count(RuleId::D1) >= 1, "D1 never fired: {:#?}", r.violations);
    assert!(r.count(RuleId::D2) >= 1, "D2 never fired: {:#?}", r.violations);
    assert!(r.count(RuleId::S1) >= 1, "S1 never fired: {:#?}", r.violations);
    assert!(r.count(RuleId::P1) >= 1, "P1 never fired: {:#?}", r.violations);
    assert!(r.count(RuleId::W1) >= 1, "W1 never fired: {:#?}", r.violations);
    assert!(!r.clean());
}

#[test]
fn fixture_findings_are_exactly_as_documented() {
    let r = fixture_report();

    let d1 = of_file(&r, "d1_hash_collections.rs");
    assert_eq!(d1.len(), 5, "{d1:#?}");
    assert!(d1.iter().all(|v| v.rule == RuleId::D1));

    let d2 = of_file(&r, "d2_host_entropy.rs");
    assert_eq!(d2.len(), 4, "{d2:#?}");
    assert!(d2.iter().all(|v| v.rule == RuleId::D2));

    let s1 = of_file(&r, "s1_slab_aliasing.rs");
    assert_eq!(s1.len(), 3, "{s1:#?}");
    assert!(s1.iter().all(|v| v.rule == RuleId::S1));

    let p1 = of_file(&r, "p1_panic_surface.rs");
    assert_eq!(p1.len(), 3, "{p1:#?}");
    assert!(p1.iter().all(|v| v.rule == RuleId::P1));

    // Unjustified / unknown-rule waivers: W1 twice, plus the P1 the
    // malformed waiver fails to suppress.
    let bad = of_file(&r, "bad_waiver.rs");
    assert_eq!(bad.iter().filter(|v| v.rule == RuleId::W1).count(), 2, "{bad:#?}");
    assert_eq!(bad.iter().filter(|v| v.rule == RuleId::P1).count(), 1, "{bad:#?}");

    // Clean fixtures contribute nothing.
    assert!(of_file(&r, "waived_ok.rs").is_empty());
    assert!(of_file(&r, "test_gated_ok.rs").is_empty());
}

#[test]
fn waived_fixture_lands_in_the_census_with_its_justification() {
    let r = fixture_report();
    let waivers: Vec<_> = r.waivers.iter().filter(|w| w.path == "waived_ok.rs").collect();
    assert_eq!(waivers.len(), 2, "{waivers:#?}");
    assert!(waivers
        .iter()
        .any(|w| w.rule == RuleId::P1 && w.justification.contains("asserted non-empty")));
    assert!(waivers
        .iter()
        .any(|w| w.rule == RuleId::S1 && w.justification.contains("host-side scratch Vec")));
}

#[test]
fn live_workspace_is_clean_and_every_waiver_is_justified() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    let r = run(&root, Mode::Workspace).expect("workspace readable");
    assert!(r.clean(), "the workspace must lint clean; fix or waive:\n{}", r.render());
    assert!(r.files_scanned > 40, "sweep looks truncated: {} files", r.files_scanned);
    for w in &r.waivers {
        assert!(!w.justification.is_empty(), "{}:{} has an empty justification", w.path, w.line);
    }
    // The swept crates carry real waivers today (seed-reference bodies,
    // protocol-invariant expects); losing them all silently would mean
    // the sweep stopped seeing the files.
    assert!(!r.waivers.is_empty(), "expected a non-empty waiver census");
}

#[test]
fn binary_exit_codes_follow_the_reproduce_convention() {
    // Clean workspace → 0.
    let ok =
        Command::new(env!("CARGO_BIN_EXE_vmplint")).arg("--quiet").output().expect("binary runs");
    assert_eq!(ok.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&ok.stderr));

    // Bad-fixture corpus → 2.
    let bad = Command::new(env!("CARGO_BIN_EXE_vmplint"))
        .args(["--fixtures", fixtures_dir().to_str().expect("utf-8 path"), "--quiet"])
        .output()
        .expect("binary runs");
    assert_eq!(bad.status.code(), Some(2));

    // Bad usage → 2, with usage text.
    let usage = Command::new(env!("CARGO_BIN_EXE_vmplint"))
        .arg("--no-such-flag")
        .output()
        .expect("binary runs");
    assert_eq!(usage.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&usage.stderr).contains("usage:"));

    // --list → 0 and documents every rule id.
    let list =
        Command::new(env!("CARGO_BIN_EXE_vmplint")).arg("--list").output().expect("binary runs");
    assert_eq!(list.status.code(), Some(0));
    let text = String::from_utf8_lossy(&list.stdout);
    for rule in RuleId::ALL {
        assert!(text.contains(rule.id()), "--list must describe {}", rule.id());
    }
}

#[test]
fn json_report_is_written_and_carries_the_census() {
    let out = std::env::temp_dir().join("vmplint_selftest_report.json");
    let _ = std::fs::remove_file(&out);
    let status = Command::new(env!("CARGO_BIN_EXE_vmplint"))
        .args(["--quiet", "--json", out.to_str().expect("utf-8 path")])
        .status()
        .expect("binary runs");
    assert_eq!(status.code(), Some(0));
    let json = std::fs::read_to_string(&out).expect("report written");
    assert!(json.contains("\"waivers\""));
    assert!(json.contains("\"violation_count\": 0"));
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    let _ = std::fs::remove_file(&out);
}
