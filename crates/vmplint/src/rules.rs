//! The repository-specific rules and their file scoping.
//!
//! Every rule protects an invariant the test suite asserts dynamically
//! (bit-identical payloads, clocks and counters — see DESIGN.md
//! § Static analysis & invariants); the pass makes the invariant
//! machine-checked at the source level so a violation is caught before
//! it can perturb a single run.

use crate::scan::{has_token, FileView};

/// A rule identifier, as written in waiver comments (`d1` … `p1`, plus
/// the meta-rule `w1` for malformed waivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No `HashMap`/`HashSet` in simulator/primitive/layout code.
    D1,
    /// No host clocks or unseeded entropy outside `crates/bench`.
    D2,
    /// Slab storage is touched only through the `slab.rs` accessors.
    S1,
    /// No `unwrap`/`expect`/`todo!`/`unimplemented!` in hot paths.
    P1,
    /// Waiver hygiene: every waiver names a rule and a justification.
    W1,
}

impl RuleId {
    /// All enforceable rules, in report order.
    pub const ALL: [RuleId; 5] = [RuleId::D1, RuleId::D2, RuleId::S1, RuleId::P1, RuleId::W1];

    /// The short id used in waiver comments and reports.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            RuleId::D1 => "d1",
            RuleId::D2 => "d2",
            RuleId::S1 => "s1",
            RuleId::P1 => "p1",
            RuleId::W1 => "w1",
        }
    }

    /// Parse a waiver rule id (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim().to_ascii_lowercase().as_str() {
            "d1" => Some(RuleId::D1),
            "d2" => Some(RuleId::D2),
            "s1" => Some(RuleId::S1),
            "p1" => Some(RuleId::P1),
            "w1" => Some(RuleId::W1),
            _ => None,
        }
    }

    /// One-line description shown by `--list`.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "no std HashMap/HashSet in simulator, primitive or layout code \
                 (iteration-order nondeterminism; use BTreeMap or index tables)"
            }
            RuleId::D2 => {
                "no host clocks (Instant::now, SystemTime) or unseeded entropy \
                 (thread_rng, from_entropy) outside crates/bench and #[cfg(test)]"
            }
            RuleId::S1 => {
                "no direct offset-table indexing or manual split_at_mut on slab \
                 storage outside slab.rs (use pair_mut/push_seg_with/row accessors)"
            }
            RuleId::P1 => {
                "no unwrap()/expect()/todo!/unimplemented! in collective and \
                 primitive hot paths without a justified waiver"
            }
            RuleId::W1 => {
                "waiver hygiene: `// vmplint: allow(<rule>) — <justification>` \
                 must name a known rule and a non-empty justification"
            }
        }
    }
}

/// Which rules apply to a file. Produced by [`classify`] for workspace
/// scans; fixture scans use [`Scope::all`] so every rule can fire.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// D1/D2 apply (true for every scanned file).
    pub determinism: bool,
    /// S1 applies (everywhere except `slab.rs` itself).
    pub slab: bool,
    /// P1 applies (the curated hot-path set).
    pub panic_surface: bool,
}

impl Scope {
    /// Every rule armed — used for the fixture corpus.
    #[must_use]
    pub fn all() -> Self {
        Scope { determinism: true, slab: true, panic_surface: true }
    }
}

/// The crates swept by a workspace scan, relative to the root.
pub const SCANNED_CRATES: [&str; 5] = [
    "crates/hypercube/src",
    "crates/vmp/src",
    "crates/layout/src",
    "crates/algos/src",
    "crates/sched/src",
];

/// The hot-path files where the panic-surface rule (P1) is armed: the
/// collective layer, the slab arena, the routing layer, the four
/// primitives and their per-node drivers, the long-running solver
/// paths that the checkpoint/restart machinery protects, and the whole
/// multi-tenant scheduler (its event loop must never unwind mid-trace).
const P1_HOT_PATHS: [&str; 15] = [
    "crates/hypercube/src/collective/",
    "crates/hypercube/src/slab.rs",
    "crates/hypercube/src/spanning.rs",
    "crates/hypercube/src/route.rs",
    "crates/hypercube/src/router.rs",
    "crates/vmp/src/primitives/",
    "crates/vmp/src/scan.rs",
    "crates/vmp/src/shift.rs",
    "crates/vmp/src/remap.rs",
    "crates/vmp/src/indexing.rs",
    "crates/vmp/src/elementwise.rs",
    "crates/algos/src/checkpoint.rs",
    "crates/algos/src/gauss.rs",
    "crates/algos/src/lu.rs",
    "crates/sched/src/",
];

/// Rule scoping for a workspace-relative path; `None` when the file is
/// outside the swept crates.
#[must_use]
pub fn classify(rel: &str) -> Option<Scope> {
    let rel = rel.replace('\\', "/");
    if !SCANNED_CRATES.iter().any(|c| rel.starts_with(c)) {
        return None;
    }
    Some(Scope {
        determinism: true,
        slab: rel != "crates/hypercube/src/slab.rs",
        panic_surface: P1_HOT_PATHS.iter().any(|p| rel.starts_with(p)),
    })
}

/// One raw (pre-waiver) finding on a line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: RuleId,
    pub line: usize,
    pub what: String,
}

/// D1 patterns: hash collections whose iteration order is seeded per
/// process.
const D1_TOKENS: [&str; 2] = ["HashMap", "HashSet"];

/// D2 patterns: host clocks and unseeded entropy sources.
const D2_TOKENS: [&str; 6] =
    ["Instant::now", "SystemTime", "UNIX_EPOCH", "thread_rng", "from_entropy", "from_os_rng"];

/// S1 patterns: reaching around the slab accessors. `.offsets[` is the
/// private field (reachable within `vmp-hypercube`), `offsets()[` is
/// indexing the read-only table instead of using `seg`/`len_of`, and a
/// manual `split_at_mut` re-derives the aliasing argument `pair_mut`
/// already encapsulates.
const S1_TOKENS: [&str; 3] = [".offsets[", "offsets()[", "split_at_mut"];

/// P1 patterns: panics that would take down a whole collective from one
/// malformed element. Slice-index panics need type information a
/// lexical pass does not have; they are covered by the Miri job and the
/// slab accessors' own bounds discipline instead (DESIGN.md).
const P1_TOKENS: [&str; 4] = [".unwrap()", ".expect(", "todo!(", "unimplemented!("];

/// Run every armed rule over one file's lexical view. Test-span lines
/// are exempt (the rules protect production determinism; tests assert
/// it dynamically and may unwrap freely).
#[must_use]
pub fn check_file(view: &FileView, scope: Scope) -> Vec<Finding> {
    let mut findings = Vec::new();
    for line in 0..view.lines() {
        if view.is_test[line] {
            continue;
        }
        let code = &view.code[line];
        if code.is_empty() {
            continue;
        }
        if scope.determinism {
            for t in D1_TOKENS {
                if has_token(code, t) {
                    findings.push(Finding {
                        rule: RuleId::D1,
                        line,
                        what: format!("hash collection `{t}`"),
                    });
                }
            }
            for t in D2_TOKENS {
                if has_token(code, t) {
                    findings.push(Finding {
                        rule: RuleId::D2,
                        line,
                        what: format!("host clock / unseeded entropy `{t}`"),
                    });
                }
            }
        }
        if scope.slab {
            for t in S1_TOKENS {
                if has_token(code, t) {
                    findings.push(Finding {
                        rule: RuleId::S1,
                        line,
                        what: format!("slab storage reached around its accessors (`{t}`)"),
                    });
                }
            }
        }
        if scope.panic_surface {
            for t in P1_TOKENS {
                if has_token(code, t) {
                    findings.push(Finding {
                        rule: RuleId::P1,
                        line,
                        what: format!("panicking call `{t}` in a hot path"),
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes_the_sweep() {
        assert!(classify("crates/bench/src/lib.rs").is_none());
        assert!(classify("vendor/rand/src/lib.rs").is_none());
        let slab = classify("crates/hypercube/src/slab.rs").unwrap();
        assert!(!slab.slab, "slab.rs is exempt from S1");
        assert!(slab.panic_surface, "slab.rs is a P1 hot path");
        let layout = classify("crates/layout/src/grid.rs").unwrap();
        assert!(layout.determinism);
        assert!(layout.slab);
        assert!(!layout.panic_surface);
        assert!(classify("crates/vmp/src/primitives/reduce.rs").unwrap().panic_surface);
        let sched = classify("crates/sched/src/sched.rs").unwrap();
        assert!(sched.determinism && sched.slab);
        assert!(sched.panic_surface, "the whole scheduler crate is a P1 hot path");
        // The all-port collective engine rides the collective/ prefix
        // and the spanning-tree entry: P1 and S1 both armed.
        for file in
            ["crates/hypercube/src/collective/allport.rs", "crates/hypercube/src/spanning.rs"]
        {
            let scope = classify(file).unwrap();
            assert!(scope.panic_surface, "{file} must be a P1 hot path");
            assert!(scope.slab, "{file} must keep S1 armed");
        }
    }

    #[test]
    fn rules_fire_on_their_patterns() {
        let view = FileView::parse(
            "use std::collections::HashMap;\n\
             let t = Instant::now();\n\
             let o = slab.offsets()[3];\n\
             let v = x.unwrap();\n",
        );
        let findings = check_file(&view, Scope::all());
        let rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec![RuleId::D1, RuleId::D2, RuleId::S1, RuleId::P1]);
    }

    #[test]
    fn strings_comments_and_tests_do_not_fire() {
        let view = FileView::parse(
            "// HashMap in prose, x.unwrap() too\n\
             let s = \"Instant::now()\";\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { x.unwrap(); }\n\
             }\n",
        );
        assert!(check_file(&view, Scope::all()).is_empty());
    }
}
