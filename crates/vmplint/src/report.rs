//! Report model, human rendering and JSON serialisation.
//!
//! The JSON writer is hand-rolled: the workspace's offline `serde_json`
//! stand-in emits a debug rendering rather than strict JSON, and the CI
//! waiver-census artifact should be parseable by real tooling.

use std::fmt::Write as _;
use std::path::Path;

use crate::rules::RuleId;

/// One rule violation (fails the run).
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: RuleId,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// What fired.
    pub what: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// One waived finding (reported in the census, does not fail the run).
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rule: RuleId,
    pub path: String,
    pub line: usize,
    pub justification: String,
    pub snippet: String,
}

/// The outcome of one scan.
#[derive(Debug)]
pub struct Report {
    pub root: String,
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    pub waivers: Vec<Waiver>,
}

impl Report {
    /// An empty report over `root`.
    #[must_use]
    pub fn new(root: &Path) -> Self {
        Report {
            root: root.to_string_lossy().into_owned(),
            files_scanned: 0,
            violations: Vec::new(),
            waivers: Vec::new(),
        }
    }

    /// Deterministic ordering: path, then line, then rule.
    pub fn sort(&mut self) {
        self.violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        self.waivers.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    /// `true` when the scan found no violations.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of one rule.
    #[must_use]
    pub fn count(&self, rule: RuleId) -> usize {
        self.violations.iter().filter(|v| v.rule == rule).count()
    }

    /// Human-readable rendering (what the CLI prints).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(
                out,
                "{}:{}: [{}] {}\n    {}",
                v.path,
                v.line,
                v.rule.id(),
                v.what,
                v.snippet
            );
        }
        let _ = writeln!(
            out,
            "vmplint: {} files, {} violations, {} waivers",
            self.files_scanned,
            self.violations.len(),
            self.waivers.len()
        );
        if !self.waivers.is_empty() {
            let _ = writeln!(out, "waiver census:");
            for w in &self.waivers {
                let _ =
                    writeln!(out, "  {}:{}: [{}] {}", w.path, w.line, w.rule.id(), w.justification);
            }
        }
        out
    }

    /// Strict-JSON rendering (the CI artifact).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"root\": {},", json_str(&self.root));
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"violation_count\": {},", self.violations.len());
        let _ = writeln!(out, "  \"waiver_count\": {},", self.waivers.len());
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"what\": {}, \"snippet\": {}}}",
                json_str(v.rule.id()),
                json_str(&v.path),
                v.line,
                json_str(&v.what),
                json_str(&v.snippet)
            );
            out.push_str(if i + 1 < self.violations.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"waivers\": [\n");
        for (i, w) in self.waivers.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"justification\": {}, \"snippet\": {}}}",
                json_str(w.rule.id()),
                json_str(&w.path),
                w.line,
                json_str(&w.justification),
                json_str(&w.snippet)
            );
            out.push_str(if i + 1 < self.waivers.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escape a string as a JSON literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_for_tricky_strings() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_renders_and_serialises() {
        let r = Report::new(Path::new("/tmp/x"));
        assert!(r.clean());
        assert!(r.render().contains("0 violations"));
        let j = r.to_json();
        assert!(j.contains("\"violations\": [\n  ]"));
        assert!(j.ends_with("}\n"));
    }
}
