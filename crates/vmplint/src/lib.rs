//! `vmplint` — the workspace's own static-analysis pass.
//!
//! Walks every `.rs` file in the swept crates (`hypercube`, `vmp`,
//! `layout`, `algos`) and enforces the repository-specific invariants
//! that the dynamic test suite can only spot after the fact:
//!
//! * **D1** — no `HashMap`/`HashSet` (iteration-order nondeterminism
//!   breaks the bit-identity guarantees);
//! * **D2** — no host clocks or unseeded entropy outside `crates/bench`;
//! * **S1** — slab storage is only touched through the `slab.rs`
//!   accessors (`pair_mut`, `push_seg_with`, row indexing);
//! * **P1** — no `unwrap()`/`expect()`/`todo!`/`unimplemented!` in the
//!   collective/primitive hot paths.
//!
//! A violation can be waived in place with
//! `// vmplint: allow(<rule>) — <justification>` (trailing on the line,
//! or on the line directly above); every waiver is collected into a
//! census so growth of the waived surface is visible per PR. See
//! DESIGN.md § Static analysis & invariants.

pub mod report;
pub mod rules;
pub mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use report::{Report, Violation, Waiver};
use rules::{check_file, classify, RuleId, Scope};
use scan::FileView;

/// How a scan chooses files and arms rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Sweep the workspace's scanned crates with per-file scoping.
    Workspace,
    /// Sweep every `.rs` under the root with every rule armed (the
    /// known-bad fixture corpus).
    Fixtures,
}

/// Scan `root` in the given mode.
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree.
pub fn run(root: &Path, mode: Mode) -> io::Result<Report> {
    let mut files = Vec::new();
    match mode {
        Mode::Workspace => {
            for sub in rules::SCANNED_CRATES {
                collect_rs(&root.join(sub), &mut files)?;
            }
        }
        Mode::Fixtures => collect_rs(root, &mut files)?,
    }
    files.sort();

    let mut report = Report::new(root);
    for path in files {
        let rel = rel_path(root, &path);
        let scope = match mode {
            Mode::Workspace => match classify(&rel) {
                Some(s) => s,
                None => continue,
            },
            Mode::Fixtures => Scope::all(),
        };
        let src = fs::read_to_string(&path)?;
        lint_one(&rel, &src, scope, &mut report);
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// Lint a single file's source into `report` (exposed for self-tests).
pub fn lint_one(rel: &str, src: &str, scope: Scope, report: &mut Report) {
    let view = FileView::parse(src);
    let waivers = parse_waivers(&view);

    // Waiver hygiene first: malformed waivers are themselves findings.
    for w in &waivers {
        if let Some(problem) = &w.problem {
            report.violations.push(Violation {
                rule: RuleId::W1,
                path: rel.to_string(),
                line: w.comment_line + 1,
                what: problem.clone(),
                snippet: snippet(&view, w.comment_line),
            });
        }
    }

    for f in check_file(&view, scope) {
        let waived = waivers.iter().find(|w| w.problem.is_none() && w.covers(f.line, f.rule));
        match waived {
            Some(w) => report.waivers.push(Waiver {
                rule: f.rule,
                path: rel.to_string(),
                line: f.line + 1,
                justification: w.justification.clone(),
                snippet: snippet(&view, f.line),
            }),
            None => report.violations.push(Violation {
                rule: f.rule,
                path: rel.to_string(),
                line: f.line + 1,
                what: f.what,
                snippet: snippet(&view, f.line),
            }),
        }
    }
}

fn snippet(view: &FileView, line: usize) -> String {
    view.raw.get(line).map(|s| s.trim().to_string()).unwrap_or_default()
}

/// A parsed waiver comment.
#[derive(Debug)]
struct ParsedWaiver {
    /// Line the comment sits on (0-based).
    comment_line: usize,
    /// Line the waiver covers (same line for trailing comments, next
    /// non-blank code line for standalone ones).
    covers_line: usize,
    rules: Vec<RuleId>,
    justification: String,
    /// `Some(reason)` when the waiver is malformed (W1).
    problem: Option<String>,
}

impl ParsedWaiver {
    fn covers(&self, line: usize, rule: RuleId) -> bool {
        self.covers_line == line && self.rules.contains(&rule)
    }
}

const WAIVER_TAG: &str = "vmplint:";

fn parse_waivers(view: &FileView) -> Vec<ParsedWaiver> {
    let mut out = Vec::new();
    for line in 0..view.lines() {
        let comment = view.comment[line].trim();
        let Some(tag_pos) = comment.find(WAIVER_TAG) else { continue };
        let body = comment[tag_pos + WAIVER_TAG.len()..].trim();

        let mut problem = None;
        let mut rules = Vec::new();
        let mut justification = String::new();
        if let Some(args) = body.strip_prefix("allow(").and_then(|r| r.split_once(')')) {
            let (list, rest) = args;
            for part in list.split(',') {
                match RuleId::parse(part) {
                    Some(r) => rules.push(r),
                    None => {
                        problem = Some(format!("waiver names unknown rule `{}`", part.trim()));
                    }
                }
            }
            justification = rest
                .trim_start_matches([' ', '\t'])
                .trim_start_matches(['—', '-', '–', ':'])
                .trim()
                .to_string();
            if justification.is_empty() && problem.is_none() {
                problem = Some("waiver has no justification".to_string());
            }
        } else {
            problem =
                Some("waiver is not of the form `vmplint: allow(<rule>) — <why>`".to_string());
        }

        // Trailing waivers cover their own line; standalone comment
        // lines cover the next non-blank code line.
        let covers_line = if view.code[line].trim().is_empty() {
            (line + 1..view.lines()).find(|&l| !view.code[l].trim().is_empty()).unwrap_or(line)
        } else {
            line
        };
        out.push(ParsedWaiver { comment_line: line, covers_line, rules, justification, problem });
    }
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::path);
    for e in entries {
        let path = e.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Locate the workspace root: walk up from `start` looking for a
/// `Cargo.toml` that declares `[workspace]`, falling back to the
/// compile-time manifest location (two levels above this crate).
#[must_use]
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return d;
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    // Compile-time fallback; a missing root is reported as an I/O error
    // by the scan itself.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(src: &str) -> Report {
        let mut r = Report::new(Path::new("."));
        lint_one("crates/hypercube/src/collective/x.rs", src, Scope::all(), &mut r);
        r
    }

    #[test]
    fn trailing_waiver_suppresses_and_is_censused() {
        let r = lint_src("let v = x.unwrap(); // vmplint: allow(p1) — length checked above\n");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.waivers.len(), 1);
        assert_eq!(r.waivers[0].rule, RuleId::P1);
        assert_eq!(r.waivers[0].justification, "length checked above");
    }

    #[test]
    fn standalone_waiver_covers_next_code_line() {
        let r = lint_src(
            "// vmplint: allow(s1) — host-side nested Vec, not slab storage\n\
             let (a, b) = locals.split_at_mut(k);\n",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.waivers.len(), 1);
        assert_eq!(r.waivers[0].line, 2);
    }

    #[test]
    fn waiver_for_the_wrong_rule_does_not_suppress() {
        let r = lint_src("let v = x.unwrap(); // vmplint: allow(d1) — wrong rule\n");
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, RuleId::P1);
    }

    #[test]
    fn unjustified_waiver_is_a_w1_violation() {
        let r = lint_src("let v = x.unwrap(); // vmplint: allow(p1)\n");
        let rules: Vec<RuleId> = r.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&RuleId::W1), "{rules:?}");
        assert!(rules.contains(&RuleId::P1), "an unjustified waiver must not suppress");
    }

    #[test]
    fn unknown_rule_waiver_is_w1() {
        let r = lint_src("// vmplint: allow(q9) — no such rule\nlet a = 1;\n");
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, RuleId::W1);
    }

    #[test]
    fn workspace_root_is_found_from_nested_dirs() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates/hypercube/src/slab.rs").exists());
    }
}
