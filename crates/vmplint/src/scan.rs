//! A minimal lexical view of a Rust source file.
//!
//! The build container has no route to crates.io, so this pass cannot
//! lean on `syn`; instead it derives everything the rules need from a
//! small hand-rolled scan that is exact about the only three things
//! that matter for pattern soundness:
//!
//! * **comments vs code** — `//` line comments and (nested) `/* */`
//!   block comments are split out per line, so rule patterns never
//!   match prose and waiver comments are parsed from the comment
//!   channel only;
//! * **string/char literals** — contents are blanked from the code
//!   channel, so a doc example or an `expect("…unwrap()…")` message
//!   cannot trigger a rule;
//! * **`#[cfg(test)]` spans** — the brace span of every item annotated
//!   `#[cfg(test)]` is marked, so test-only code is exempt from the
//!   production-invariant rules.

/// Per-line lexical channels of one source file.
#[derive(Debug, Default)]
pub struct FileView {
    /// The raw line, as written (for diagnostics).
    pub raw: Vec<String>,
    /// Code channel: comments stripped, literal contents blanked.
    pub code: Vec<String>,
    /// Comment channel: the text of any comment on the line.
    pub comment: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]` item's brace span.
    pub is_test: Vec<bool>,
}

impl FileView {
    /// Lex `src` into per-line code/comment channels.
    #[must_use]
    pub fn parse(src: &str) -> Self {
        let mut view = lex(src);
        mark_cfg_test_spans(&mut view);
        view
    }

    /// Number of lines.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.raw.len()
    }
}

/// Lexer state: what the current character is inside of.
enum State {
    Code,
    LineComment,
    /// Nesting depth (Rust block comments nest).
    BlockComment(u32),
    /// Inside `"…"`; tracks a pending backslash escape.
    Str {
        escaped: bool,
    },
    /// Inside `r##"…"##` with the given hash count.
    RawStr {
        hashes: usize,
    },
}

fn lex(src: &str) -> FileView {
    let chars: Vec<char> = src.chars().collect();
    let mut view = FileView::default();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {{
            view.code.push(std::mem::take(&mut code));
            view.comment.push(std::mem::take(&mut comment));
        }};
    }

    // Collect raw lines up front (the lexer below only appends to the
    // code/comment channels).
    for line in src.split('\n') {
        view.raw.push(line.to_string());
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str { escaped: false };
                    i += 1;
                } else if let Some(hashes) = raw_string_open(&chars, i) {
                    // `r"`, `r#"`, `br##"` … — blank the contents.
                    code.push('"');
                    state = State::RawStr { hashes };
                    // Skip past the prefix and the opening quote.
                    while chars[i] != '"' {
                        i += 1;
                    }
                    i += 1;
                } else if c == '\'' {
                    if let Some(end) = char_literal_end(&chars, i) {
                        code.push('\'');
                        code.push('\'');
                        i = end + 1;
                    } else {
                        // A lifetime tick.
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str { escaped } => {
                if escaped {
                    state = State::Str { escaped: false };
                } else if c == '\\' {
                    state = State::Str { escaped: true };
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                }
                i += 1;
            }
            State::RawStr { hashes } => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    code.push('"');
                    i += 1 + hashes;
                    state = State::Code;
                } else {
                    i += 1;
                }
            }
        }
    }
    flush_line!();
    // `split('\n')` yields one more entry than trailing-newline flushes.
    while view.code.len() < view.raw.len() {
        view.code.push(String::new());
        view.comment.push(String::new());
    }
    view.code.truncate(view.raw.len());
    view.comment.truncate(view.raw.len());
    view.is_test = vec![false; view.raw.len()];
    view
}

/// Is `chars[i..]` the start of a raw-string literal (`r"`, `r#"` …,
/// optionally `b`-prefixed)? Returns the hash count.
fn raw_string_open(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    // An identifier character before the prefix means this `r` is just
    // part of a name (e.g. `var"` cannot occur, but `for r in …` could
    // put a bare `r` before something else).
    if i > 0 && is_ident_char(chars[i - 1]) {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Does the `"` at `i` close a raw string opened with `hashes` hashes?
fn closes_raw_string(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If `chars[i] == '\''` starts a char literal, the index of its closing
/// quote; `None` if it is a lifetime tick.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escape: scan to the closing quote.
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                j += 1;
            }
            (chars.get(j) == Some(&'\'')).then_some(j)
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 2),
        _ => None,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Mark the brace spans of `#[cfg(test)]` items in `view.is_test`.
///
/// The attribute in this workspace always sits directly on a `mod` (the
/// universal unit-test idiom), so span detection is: from the attribute
/// line, find the next `{` in the code channel and match braces.
fn mark_cfg_test_spans(view: &mut FileView) {
    let n = view.lines();
    let mut line = 0usize;
    while line < n {
        if view.code[line].contains("#[cfg(test)]") || view.code[line].contains("#[cfg(all(test") {
            if let Some((start, end)) = brace_span(view, line) {
                for l in view.is_test.iter_mut().take(end + 1).skip(start) {
                    *l = true;
                }
                line = end + 1;
                continue;
            }
        }
        line += 1;
    }
}

/// The `(first_line, last_line)` of the brace block opened at or after
/// `from` in the code channel.
fn brace_span(view: &FileView, from: usize) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    let mut opened = false;
    for line in from..view.lines() {
        for c in view.code[line].chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
            if opened && depth == 0 {
                return Some((from, line));
            }
        }
    }
    None
}

/// Does `code` contain `pattern` at an identifier boundary (so `HashMap`
/// does not match `MyHashMapLike`)? Patterns may themselves contain
/// punctuation (`Instant::now`, `.unwrap()`); boundaries are only
/// checked where the pattern edge is an identifier character.
#[must_use]
pub fn has_token(code: &str, pattern: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(pattern) {
        let at = start + pos;
        let before_ok = !pattern.starts_with(|c: char| is_ident_char(c))
            || code[..at].chars().next_back().is_none_or(|c| !is_ident_char(c));
        let after = at + pattern.len();
        let after_ok = !pattern.ends_with(|c: char| is_ident_char(c))
            || code[after..].chars().next().is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_leave_the_code_channel() {
        let v = FileView::parse(
            "let a = \"HashMap inside a string\"; // HashMap in a comment\n\
             let b = 1; /* block HashMap */ let c = 2;\n",
        );
        assert!(!v.code[0].contains("HashMap"));
        assert!(v.comment[0].contains("HashMap"));
        assert!(!v.code[1].contains("HashMap"));
        assert!(v.code[1].contains("let c = 2;"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let v = FileView::parse("let s = r#\"un\"wrap()\"#; let c = '\\''; let l: &'static str;\n");
        assert!(!v.code[0].contains("wrap"));
        assert!(v.code[0].contains("'static"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let v = FileView::parse("/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(v.code[0].contains("let x = 1;"));
        assert!(!v.code[0].contains("still"));
    }

    #[test]
    fn cfg_test_span_is_marked() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let v = FileView::parse(src);
        assert!(!v.is_test[0]);
        assert!(v.is_test[1] || v.is_test[2], "attribute/mod lines are in the span");
        assert!(v.is_test[3]);
        assert!(v.is_test[4]);
        assert!(!v.is_test[5]);
    }

    #[test]
    fn token_boundaries_are_respected() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("struct MyHashMapLike;", "HashMap"));
        assert!(has_token("let t = Instant::now();", "Instant::now"));
        assert!(!has_token("let t = MyInstant::nowish();", "Instant::now"));
        assert!(has_token("v.unwrap()", ".unwrap()"));
        assert!(!has_token("v.unwrap_or(0)", ".unwrap()"));
    }
}
