//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p vmplint                       # sweep the workspace
//! cargo run -p vmplint -- --list             # describe each rule
//! cargo run -p vmplint -- --json PATH        # also write the JSON report
//! cargo run -p vmplint -- --fixtures [DIR]   # sweep a known-bad corpus
//! cargo run -p vmplint -- --root PATH        # sweep another checkout
//! ```
//!
//! Exit codes follow the `reproduce` convention: **0** clean, **2** on
//! violations or bad usage, **1** on I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

use vmplint::rules::RuleId;
use vmplint::{find_workspace_root, run, Mode};

fn usage() -> String {
    "usage: vmplint [--list] [--json PATH] [--root PATH] [--fixtures [DIR]] [--quiet]\n\
     sweeps crates/{hypercube,vmp,layout,algos,sched} for determinism (d1/d2),\n\
     slab-aliasing (s1) and panic-surface (p1) violations; exits 0 when\n\
     clean, 2 on violations, 1 on I/O errors"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut fixtures = false;
    let mut fixtures_dir: Option<PathBuf> = None;
    let mut quiet = false;

    let mut it = args.into_iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                println!("vmplint rules (waive with `// vmplint: allow(<rule>) — <why>`):");
                for rule in RuleId::ALL {
                    println!("{:4} {}", rule.id(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--json" => match it.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("--json requires a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--fixtures" => {
                fixtures = true;
                if let Some(next) = it.peek() {
                    if !next.starts_with('-') {
                        fixtures_dir = Some(PathBuf::from(it.next().expect("peeked")));
                    }
                }
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                eprintln!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let (scan_root, mode) = if fixtures {
        let dir = fixtures_dir
            .unwrap_or_else(|| find_workspace_root(&cwd).join("crates/vmplint/fixtures"));
        (dir, Mode::Fixtures)
    } else {
        (root.unwrap_or_else(|| find_workspace_root(&cwd)), Mode::Workspace)
    };

    let report = match run(&scan_root, mode) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vmplint: cannot scan {}: {e}", scan_root.display());
            return ExitCode::from(1);
        }
    };

    if !quiet {
        print!("{}", report.render());
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("vmplint: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        if !quiet {
            println!("wrote {path}");
        }
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
