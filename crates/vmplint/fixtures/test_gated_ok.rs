// Fixture: zero violations, zero waivers. Patterns inside strings,
// comments and #[cfg(test)] spans must never fire.

pub fn clean() -> &'static str {
    // A HashMap in prose, x.unwrap() in prose, Instant::now in prose.
    "use std::collections::HashMap; x.unwrap(); Instant::now()"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_unwrap_and_hash() {
        let mut m = HashMap::new();
        m.insert(1, std::time::Instant::now());
        let _ = m.get(&1).unwrap();
    }
}
