// Fixture: zero violations, two census entries — a trailing waiver and
// a standalone one on the line above its finding.

pub fn checked(v: &[u64], k: usize) -> u64 {
    assert!(k < v.len());
    let head = v.iter().next().unwrap(); // vmplint: allow(p1) — asserted non-empty above
    // vmplint: allow(s1) — splits a host-side scratch Vec, not slab storage
    let (lo, _hi) = v.to_vec().split_at_mut(k);
    *head + lo.len() as u64
}
