// Fixture: S1 must fire three times (accessor-table indexing via
// `offsets()[`, private-field indexing via `.offsets[`, and a manual
// `split_at_mut`).
// Re-deriving segment bounds by hand bypasses the aliasing argument the
// slab accessors (`pair_mut`, `seg_mut`, `push_seg_with`) encapsulate.

pub fn manual_pair(slab: &mut NodeSlab<u64>, a: usize, b: usize) -> (u64, u64) {
    let start = slab.offsets()[a];
    let end = self.offsets[b];
    let (lo, hi) = slab.data_mut().split_at_mut(end);
    (lo[start], hi[0])
}
