// Fixture: three violations — a W1 for the missing justification, the
// P1 it fails to suppress, and a W1 for an unknown rule id.

pub fn sloppy(v: Vec<u64>) -> u64 {
    let x = v.first().unwrap(); // vmplint: allow(p1)
    // vmplint: allow(zz) — no such rule exists
    *x
}
