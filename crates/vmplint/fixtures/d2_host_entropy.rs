// Fixture: D2 must fire four times (Instant::now, SystemTime import,
// SystemTime::now call — one finding per line — and thread_rng).
// Host clocks and unseeded entropy make the simulated run depend on the
// machine it happens to execute on.

use std::time::SystemTime;

pub fn stamp() -> u128 {
    let t0 = std::time::Instant::now();
    let wall = SystemTime::now();
    let _ = wall;
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    t0.elapsed().as_nanos()
}
