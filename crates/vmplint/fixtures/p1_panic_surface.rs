// Fixture: P1 must fire three times (unwrap, expect, todo!).
// One malformed element would take down the whole collective instead of
// surfacing a typed error.

pub fn combine(blocks: Vec<Option<Vec<f64>>>) -> Vec<f64> {
    let first = blocks.first().unwrap().clone();
    let block = first.expect("block present");
    if block.is_empty() {
        todo!("decide what an empty block means");
    }
    block
}
