// Fixture: D1 must fire five times (two on the import line, then one
// per use of HashMap / HashSet / HashMap).
// Hash iteration order is seeded per process; a collective driven by it
// would produce run-dependent payload orders.

use std::collections::{HashMap, HashSet};

pub fn route_table(p: usize) -> HashMap<usize, usize> {
    let mut seen: HashSet<usize> = HashSet::new();
    let mut table = HashMap::new();
    for node in 0..p {
        if seen.insert(node) {
            table.insert(node, node ^ 1);
        }
    }
    table
}
