//! Vector embeddings — and the changes between them.
//!
//! The abstract: *"The primitives may indicate a change from one embedding
//! to another."* A vector in this system is embedded one of three ways:
//!
//! * **aligned + replicated** — a row vector (length `n_c`) is chunked
//!   over the grid *columns* exactly like the matrix columns, and every
//!   grid row holds a copy of its column's chunk. This is the embedding
//!   `reduce` naturally produces (via all-reduce) and the one `distribute`
//!   consumes for free (purely local replication).
//! * **aligned + concentrated** — same chunking but only the nodes of one
//!   grid row (resp. column) hold data. This is what `extract` naturally
//!   produces: row `i` of the matrix lives on grid row `owner(i)`.
//! * **linear** — chunked over all `p` nodes in node order; the balanced
//!   embedding for standalone vectors entering/leaving the matrix world.
//!
//! Column vectors are symmetric (chunks over grid rows). Embedding
//! changes are data movements costed by the machine; `vmp-core`
//! implements them (`remap`), this module describes who-holds-what.

use serde::{Deserialize, Serialize};
use vmp_hypercube::topology::NodeId;

use crate::dist::{AxisDist, Dist};
use crate::grid::ProcGrid;
use crate::shape::Axis;

/// Where an axis-aligned vector's chunks physically sit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Every grid line orthogonal to the alignment holds a copy.
    Replicated,
    /// Only one grid line (given by its grid index) holds the data.
    Concentrated(usize),
}

/// The embedding of a length-`n` vector on the grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VecEmbedding {
    /// Aligned with a matrix axis: a `Row` vector is chunked over grid
    /// columns (like matrix columns), a `Col` vector over grid rows.
    Aligned {
        /// Orientation of the vector.
        axis: Axis,
        /// Physical placement of the chunks.
        placement: Placement,
    },
    /// Balanced over all `p` nodes, in node-id order.
    Linear,
}

/// A vector layout: length, embedding, grid, and the chunking rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorLayout {
    n: usize,
    grid: ProcGrid,
    embedding: VecEmbedding,
    dist: AxisDist,
}

impl VectorLayout {
    /// An axis-aligned layout with the given chunking rule (`kind` must
    /// match the matrix distribution along the same direction for aligned
    /// arithmetic to be local).
    #[must_use]
    pub fn aligned(n: usize, grid: ProcGrid, axis: Axis, placement: Placement, kind: Dist) -> Self {
        let parts_log2 = match axis {
            Axis::Row => grid.dc(),
            Axis::Col => grid.dr(),
        };
        if let Placement::Concentrated(line) = placement {
            let lines = match axis {
                Axis::Row => grid.pr(),
                Axis::Col => grid.pc(),
            };
            assert!(line < lines, "concentration line {line} out of range");
        }
        let dist = AxisDist::new(n, parts_log2, kind);
        VectorLayout { n, grid, embedding: VecEmbedding::Aligned { axis, placement }, dist }
    }

    /// A linear (balanced, node-order) layout.
    #[must_use]
    pub fn linear(n: usize, grid: ProcGrid, kind: Dist) -> Self {
        let dist = AxisDist::new(n, grid.cube().dim(), kind);
        VectorLayout { n, grid, embedding: VecEmbedding::Linear, dist }
    }

    /// Vector length.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The grid.
    #[must_use]
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// The embedding descriptor.
    #[must_use]
    pub fn embedding(&self) -> &VecEmbedding {
        &self.embedding
    }

    /// The chunking of global indices over parts.
    #[must_use]
    pub fn dist(&self) -> &AxisDist {
        &self.dist
    }

    /// The chunk *part* a node is associated with (its grid column for
    /// row vectors, grid row for column vectors, node id for linear) —
    /// regardless of whether the node currently holds data.
    #[must_use]
    pub fn part_of(&self, node: NodeId) -> usize {
        match &self.embedding {
            VecEmbedding::Aligned { axis, .. } => {
                let (gr, gc) = self.grid.grid_coords(node);
                match axis {
                    Axis::Row => gc,
                    Axis::Col => gr,
                }
            }
            VecEmbedding::Linear => node,
        }
    }

    /// Whether `node` holds its chunk under this embedding.
    #[must_use]
    pub fn holds(&self, node: NodeId) -> bool {
        match &self.embedding {
            VecEmbedding::Aligned { axis, placement } => {
                let (gr, gc) = self.grid.grid_coords(node);
                match placement {
                    Placement::Replicated => true,
                    Placement::Concentrated(line) => match axis {
                        Axis::Row => gr == *line,
                        Axis::Col => gc == *line,
                    },
                }
            }
            VecEmbedding::Linear => true,
        }
    }

    /// Expected local chunk length at `node` (0 where the node holds
    /// nothing).
    #[must_use]
    pub fn local_len(&self, node: NodeId) -> usize {
        if self.holds(node) {
            self.dist.count(self.part_of(node))
        } else {
            0
        }
    }

    /// The nodes holding the chunk of global element `i`, in grid order.
    #[must_use]
    pub fn holders_of(&self, i: usize) -> Vec<NodeId> {
        let part = self.dist.owner(i);
        match &self.embedding {
            VecEmbedding::Aligned { axis, placement } => match (axis, placement) {
                (Axis::Row, Placement::Replicated) => self.grid.col_nodes(part).collect(),
                (Axis::Row, Placement::Concentrated(gr)) => vec![self.grid.node_at(*gr, part)],
                (Axis::Col, Placement::Replicated) => self.grid.row_nodes(part).collect(),
                (Axis::Col, Placement::Concentrated(gc)) => vec![self.grid.node_at(part, *gc)],
            },
            VecEmbedding::Linear => vec![part],
        }
    }

    /// The canonical (first) holder of element `i`.
    #[must_use]
    pub fn primary_holder(&self, i: usize) -> NodeId {
        self.holders_of(i)[0]
    }

    /// Total elements stored machine-wide (counts replicas).
    #[must_use]
    pub fn stored_elements(&self) -> usize {
        (0..self.grid.p()).map(|n| self.local_len(n)).sum()
    }

    /// A copy of this layout with a different placement (aligned only).
    ///
    /// # Panics
    /// Panics on linear layouts.
    #[must_use]
    pub fn with_placement(&self, placement: Placement) -> VectorLayout {
        match &self.embedding {
            VecEmbedding::Aligned { axis, .. } => {
                VectorLayout::aligned(self.n, self.grid.clone(), *axis, placement, self.dist.kind())
            }
            VecEmbedding::Linear => panic!("linear layouts have no placement"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::topology::Cube;

    fn grid() -> ProcGrid {
        ProcGrid::new(Cube::new(4), 2) // 4x4
    }

    #[test]
    fn replicated_row_vector_is_held_by_every_row() {
        let l = VectorLayout::aligned(10, grid(), Axis::Row, Placement::Replicated, Dist::Block);
        assert_eq!(l.dist().parts(), 4);
        for node in 0..16 {
            assert!(l.holds(node));
        }
        assert_eq!(l.stored_elements(), 40, "4 replicas of 10 elements");
        for i in 0..10 {
            assert_eq!(l.holders_of(i).len(), 4);
        }
    }

    #[test]
    fn concentrated_row_vector_lives_on_one_grid_row() {
        let l =
            VectorLayout::aligned(10, grid(), Axis::Row, Placement::Concentrated(2), Dist::Block);
        let held: Vec<NodeId> = (0..16).filter(|&n| l.holds(n)).collect();
        assert_eq!(held.len(), 4);
        for &n in &held {
            assert_eq!(l.grid().grid_coords(n).0, 2);
        }
        assert_eq!(l.stored_elements(), 10);
        for i in 0..10 {
            assert_eq!(l.holders_of(i).len(), 1);
            assert!(held.contains(&l.primary_holder(i)));
        }
    }

    #[test]
    fn col_vector_chunks_over_grid_rows() {
        let l = VectorLayout::aligned(12, grid(), Axis::Col, Placement::Replicated, Dist::Cyclic);
        assert_eq!(l.dist().parts(), 4);
        // Element 5 (cyclic) belongs to part 1 = grid row 1; holders are
        // all 4 nodes of grid row 1.
        let holders = l.holders_of(5);
        assert_eq!(holders.len(), 4);
        for &n in &holders {
            assert_eq!(l.grid().grid_coords(n).0, 1);
        }
    }

    #[test]
    fn linear_layout_spreads_over_all_nodes() {
        let l = VectorLayout::linear(33, grid(), Dist::Block);
        assert_eq!(l.dist().parts(), 16);
        assert_eq!(l.stored_elements(), 33);
        let lens: Vec<usize> = (0..16).map(|n| l.local_len(n)).collect();
        assert!(lens.iter().all(|&c| c == 2 || c == 3));
        for i in 0..33 {
            assert_eq!(l.holders_of(i).len(), 1);
        }
    }

    #[test]
    fn local_len_agrees_with_holders() {
        let layouts = [
            VectorLayout::aligned(9, grid(), Axis::Row, Placement::Replicated, Dist::Cyclic),
            VectorLayout::aligned(9, grid(), Axis::Col, Placement::Concentrated(3), Dist::Block),
            VectorLayout::linear(9, grid(), Dist::Cyclic),
        ];
        for layout in layouts {
            let mut per_node = [0usize; 16];
            for i in 0..9 {
                let slot = layout.dist().local_index(i);
                for n in layout.holders_of(i) {
                    per_node[n] += 1;
                    assert!(slot < layout.local_len(n));
                }
            }
            for n in 0..16 {
                assert_eq!(per_node[n], layout.local_len(n), "node {n}");
            }
        }
    }

    #[test]
    fn with_placement_switches_concentration() {
        let l = VectorLayout::aligned(8, grid(), Axis::Row, Placement::Replicated, Dist::Block);
        let c = l.with_placement(Placement::Concentrated(1));
        assert_eq!(c.stored_elements(), 8);
        assert_eq!(c.dist(), l.dist(), "chunking unchanged");
    }

    #[test]
    #[should_panic(expected = "concentration line")]
    fn bad_concentration_line_panics() {
        let _ =
            VectorLayout::aligned(8, grid(), Axis::Row, Placement::Concentrated(4), Dist::Block);
    }
}
