//! # vmp-layout — load-balanced embeddings of matrices and vectors
//!
//! The paper's primitives are specified independently of machine size;
//! what makes them efficient is the *embedding*: how an `n_r x n_c`
//! matrix and its row/column vectors map onto the `2^{d_r} x 2^{d_c}`
//! processor grid that a Boolean cube is configured as. This crate is
//! pure address arithmetic over those embeddings:
//!
//! * [`shape`] — axes ([`Axis`]) and matrix shapes;
//! * [`dist`] — block and cyclic load-balanced index distributions;
//! * [`grid`] — Gray-coded 2-D processor grids over the cube;
//! * [`matrix`] — the matrix embedding ([`MatrixLayout`]);
//! * [`vector`] — vector embeddings ([`VectorLayout`]): axis-aligned
//!   (replicated or concentrated) and linear, the states between which
//!   the paper's primitives move vectors;
//! * [`degrade`] — graceful-degradation host maps ([`DegradedMap`])
//!   concentrating dead nodes' blocks onto healthy subcube neighbours.

#![warn(missing_docs)]

pub mod degrade;
pub mod dist;
pub mod grid;
pub mod matrix;
pub mod shape;
pub mod vector;

pub use degrade::DegradedMap;
pub use dist::{AxisDist, Dist};
pub use grid::{GridEncoding, ProcGrid};
pub use matrix::MatrixLayout;
pub use shape::{Axis, MatShape};
pub use vector::{Placement, VecEmbedding, VectorLayout};
