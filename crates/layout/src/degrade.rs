//! Graceful-degradation embeddings: concentrating dead nodes' blocks
//! onto healthy subcube neighbours.
//!
//! When a node fails, the machine keeps running at reduced capacity by
//! *re-embedding*: the failed node's block of every distributed object
//! moves one hop to a healthy neighbour, which thereafter simulates
//! both logical nodes (time-multiplexed, so local compute serializes by
//! the host's multiplicity). This is the same idea as the paper's
//! embeddings being machine-size independent — the logical cube the
//! primitives address never changes; only the logical→physical host map
//! does. [`DegradedMap`] is that map, as pure address arithmetic; the
//! `vmp-core` degradation module applies it to a machine and charges
//! the migration.

use serde::{Deserialize, Serialize};
use vmp_hypercube::topology::{Cube, NodeId};

/// A logical→physical host map concentrating each dead node onto a
/// healthy cube neighbour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedMap {
    dim: u32,
    /// `host[logical] = physical`; identity for healthy nodes.
    host: Vec<NodeId>,
    /// Dead nodes, ascending.
    dead: Vec<NodeId>,
}

impl DegradedMap {
    /// Build the map for `dead` nodes on `cube`: each dead node is
    /// hosted by the healthy neighbour with the lightest load so far
    /// (ties broken toward the lowest cube dimension), scanning dead
    /// nodes in ascending order — a deterministic embedding.
    ///
    /// # Panics
    /// Panics if a dead node has no healthy neighbour (the plan is not
    /// recoverable by single-hop concentration), if every node is dead,
    /// or if a dead node id is out of range.
    #[must_use]
    pub fn concentrate(cube: Cube, dead: &[NodeId]) -> Self {
        let p = cube.nodes();
        let mut is_dead = vec![false; p];
        for &n in dead {
            assert!(cube.contains(n), "dead node {n} out of range");
            is_dead[n] = true;
        }
        let mut dead_sorted: Vec<NodeId> = dead.to_vec();
        dead_sorted.sort_unstable();
        dead_sorted.dedup();
        assert!(dead_sorted.len() < p, "every node is dead");

        let mut host: Vec<NodeId> = (0..p).collect();
        let mut mult = vec![1usize; p];
        for &n in &dead_sorted {
            mult[n] = 0;
        }
        for &n in &dead_sorted {
            let chosen = cube
                .iter_dims()
                .map(|d| cube.neighbor(n, d))
                .filter(|&nb| !is_dead[nb])
                .min_by_key(|&nb| mult[nb])
                .unwrap_or_else(|| panic!("dead node {n} has no healthy neighbour"));
            host[n] = chosen;
            mult[chosen] += 1;
        }
        DegradedMap { dim: cube.dim(), host, dead: dead_sorted }
    }

    /// The identity map (no dead nodes) on `cube`.
    #[must_use]
    pub fn identity(cube: Cube) -> Self {
        DegradedMap { dim: cube.dim(), host: (0..cube.nodes()).collect(), dead: Vec::new() }
    }

    /// The cube this map is over.
    #[must_use]
    pub fn cube(&self) -> Cube {
        Cube::new(self.dim)
    }

    /// Physical host of `logical`.
    ///
    /// # Panics
    /// Panics if `logical` is out of range.
    #[must_use]
    pub fn host_of(&self, logical: NodeId) -> NodeId {
        self.host[logical]
    }

    /// Is `node` dead under this map?
    #[must_use]
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead.binary_search(&node).is_ok()
    }

    /// The dead nodes, ascending.
    #[must_use]
    pub fn dead(&self) -> &[NodeId] {
        &self.dead
    }

    /// `(dead, host)` migration pairs, in ascending dead-node order.
    #[must_use]
    pub fn migration_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.dead.iter().map(|&n| (n, self.host[n])).collect()
    }

    /// Max logical nodes per physical host (1 = healthy machine).
    #[must_use]
    pub fn load_factor(&self) -> usize {
        let mut mult = vec![0usize; self.host.len()];
        for &h in &self.host {
            mult[h] += 1;
        }
        mult.into_iter().max().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_map_is_clean() {
        let m = DegradedMap::identity(Cube::new(3));
        assert_eq!(m.load_factor(), 1);
        assert!(m.migration_pairs().is_empty());
        assert!(!m.is_dead(5));
        assert_eq!(m.host_of(5), 5);
    }

    #[test]
    fn single_dead_node_concentrates_on_a_neighbour() {
        let cube = Cube::new(4);
        let m = DegradedMap::concentrate(cube, &[6]);
        assert!(m.is_dead(6));
        let h = m.host_of(6);
        assert_ne!(h, 6);
        assert_eq!(cube.distance(6, h), 1, "host is a cube neighbour");
        assert_eq!(m.load_factor(), 2);
        assert_eq!(m.migration_pairs(), vec![(6, h)]);
        // Healthy nodes keep their identity.
        for n in 0..16 {
            if n != 6 {
                assert_eq!(m.host_of(n), n);
            }
        }
    }

    #[test]
    fn hosts_balance_across_neighbours() {
        // Two dead nodes sharing neighbours must not pile onto one host
        // when a lighter one is available.
        let cube = Cube::new(3);
        let m = DegradedMap::concentrate(cube, &[0, 3]);
        assert_eq!(m.load_factor(), 2, "no host takes two dead nodes here");
        assert_ne!(m.host_of(0), m.host_of(3));
    }

    #[test]
    fn dead_neighbours_are_skipped() {
        // 0's dim-0 neighbour (1) is dead too; 0 must pick a live host.
        let cube = Cube::new(3);
        let m = DegradedMap::concentrate(cube, &[0, 1]);
        assert!(!m.is_dead(m.host_of(0)));
        assert!(!m.is_dead(m.host_of(1)));
        assert_eq!(cube.distance(0, m.host_of(0)), 1);
    }

    #[test]
    fn deterministic_regardless_of_input_order() {
        let cube = Cube::new(4);
        let a = DegradedMap::concentrate(cube, &[3, 9, 12]);
        let b = DegradedMap::concentrate(cube, &[12, 3, 9]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "no healthy neighbour")]
    fn isolated_dead_node_panics() {
        // Node 0's neighbours on a 2-cube are 1 and 2 — both dead, so
        // single-hop concentration cannot recover.
        let cube = Cube::new(2);
        let _ = DegradedMap::concentrate(cube, &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "every node is dead")]
    fn fully_dead_cube_panics() {
        let cube = Cube::new(1);
        let _ = DegradedMap::concentrate(cube, &[0, 1]);
    }
}
