//! The embedding of a dense matrix onto the processor grid.

use serde::{Deserialize, Serialize};
use vmp_hypercube::topology::NodeId;

use crate::dist::{AxisDist, Dist};
use crate::grid::ProcGrid;
use crate::shape::{Axis, MatShape};

/// A load-balanced embedding of an `n_r x n_c` matrix on a grid: rows are
/// distributed over grid rows, columns over grid columns, each by a
/// [`Dist`] rule. Every node stores its local elements as a dense
/// row-major `local_rows x local_cols` block (in slot order along both
/// axes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixLayout {
    shape: MatShape,
    grid: ProcGrid,
    rows: AxisDist,
    cols: AxisDist,
}

impl MatrixLayout {
    /// Embed `shape` on `grid` with the given row/column partitioning
    /// rules.
    #[must_use]
    pub fn new(shape: MatShape, grid: ProcGrid, row_kind: Dist, col_kind: Dist) -> Self {
        let rows = AxisDist::new(shape.rows, grid.dr(), row_kind);
        let cols = AxisDist::new(shape.cols, grid.dc(), col_kind);
        MatrixLayout { shape, grid, rows, cols }
    }

    /// Both axes cyclic — the layout Gaussian elimination and simplex
    /// want (the active submatrix stays balanced as it shrinks).
    #[must_use]
    pub fn cyclic(shape: MatShape, grid: ProcGrid) -> Self {
        Self::new(shape, grid, Dist::Cyclic, Dist::Cyclic)
    }

    /// Both axes blocked.
    #[must_use]
    pub fn block(shape: MatShape, grid: ProcGrid) -> Self {
        Self::new(shape, grid, Dist::Block, Dist::Block)
    }

    /// Matrix shape.
    #[must_use]
    pub fn shape(&self) -> MatShape {
        self.shape
    }

    /// The processor grid.
    #[must_use]
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// Row distribution (over grid rows).
    #[must_use]
    pub fn rows(&self) -> &AxisDist {
        &self.rows
    }

    /// Column distribution (over grid columns).
    #[must_use]
    pub fn cols(&self) -> &AxisDist {
        &self.cols
    }

    /// The distribution along `axis`' vector direction: `Row` vectors are
    /// indexed by matrix column, so this returns the column distribution
    /// for `Axis::Row`.
    #[must_use]
    pub fn vector_dist(&self, axis: Axis) -> &AxisDist {
        match axis {
            Axis::Row => &self.cols,
            Axis::Col => &self.rows,
        }
    }

    /// The node owning element `(i, j)`.
    #[must_use]
    pub fn owner(&self, i: usize, j: usize) -> NodeId {
        self.grid.node_at(self.rows.owner(i), self.cols.owner(j))
    }

    /// Local block dimensions `(local_rows, local_cols)` at `node`.
    #[must_use]
    pub fn local_shape(&self, node: NodeId) -> (usize, usize) {
        let (gr, gc) = self.grid.grid_coords(node);
        (self.rows.count(gr), self.cols.count(gc))
    }

    /// Number of local elements at `node`.
    #[must_use]
    pub fn local_len(&self, node: NodeId) -> usize {
        let (lr, lc) = self.local_shape(node);
        lr * lc
    }

    /// The largest local element count over all nodes — the per-processor
    /// work bound `ceil(n_r/p_r) * ceil(n_c/p_c)`.
    #[must_use]
    pub fn max_local_len(&self) -> usize {
        self.rows.max_count() * self.cols.max_count()
    }

    /// Virtual-processing ratio `m / p` (may round to zero for tiny
    /// matrices).
    #[must_use]
    pub fn vp_ratio(&self) -> usize {
        self.shape.elements() / self.grid.p()
    }

    /// Local offset (row-major within the node's block) of element
    /// `(i, j)`; only meaningful on `self.owner(i, j)`.
    #[must_use]
    pub fn local_offset(&self, i: usize, j: usize) -> usize {
        let (_, gc) = (self.rows.owner(i), self.cols.owner(j));
        let lc = self.cols.count(gc);
        self.rows.local_index(i) * lc + self.cols.local_index(j)
    }

    /// Global `(i, j)` of the element at local `(li, lj)` on `node`.
    #[must_use]
    pub fn global_at(&self, node: NodeId, li: usize, lj: usize) -> (usize, usize) {
        let (gr, gc) = self.grid.grid_coords(node);
        (self.rows.global_index(gr, li), self.cols.global_index(gc, lj))
    }

    /// Iterate `(global_i, global_j, local_offset)` for every element
    /// stored at `node`, in local row-major order.
    pub fn local_elements(&self, node: NodeId) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (gr, gc) = self.grid.grid_coords(node);
        let lr = self.rows.count(gr);
        let lc = self.cols.count(gc);
        (0..lr).flat_map(move |li| {
            (0..lc).map(move |lj| {
                (self.rows.global_index(gr, li), self.cols.global_index(gc, lj), li * lc + lj)
            })
        })
    }

    /// The layout of the transposed matrix on the transposed grid: grid
    /// rows and columns swap roles, as do the axis distributions.
    #[must_use]
    pub fn transposed(&self) -> MatrixLayout {
        let grid_t =
            ProcGrid::with_encoding(self.grid.cube(), self.grid.dc(), self.grid.encoding());
        MatrixLayout {
            shape: self.shape.transpose(),
            grid: grid_t,
            rows: AxisDist::new(self.shape.cols, self.grid.dc(), self.cols.kind()),
            cols: AxisDist::new(self.shape.rows, self.grid.dr(), self.rows.kind()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::topology::Cube;

    fn layout(rows: usize, cols: usize, dim: u32, dr: u32, kind: Dist) -> MatrixLayout {
        MatrixLayout::new(MatShape::new(rows, cols), ProcGrid::new(Cube::new(dim), dr), kind, kind)
    }

    #[test]
    fn every_element_has_exactly_one_home() {
        for kind in [Dist::Block, Dist::Cyclic] {
            for (r, c, dim, dr) in
                [(8usize, 8usize, 4u32, 2u32), (7, 13, 4, 1), (5, 3, 3, 2), (16, 4, 2, 2)]
            {
                let l = layout(r, c, dim, dr, kind);
                let mut hit = vec![vec![false; l.local_len(0).max(64)]; l.grid().p()];
                for (node, flags) in hit.iter_mut().enumerate() {
                    flags.truncate(l.local_len(node).max(1));
                }
                let mut total = 0usize;
                for i in 0..r {
                    for j in 0..c {
                        let node = l.owner(i, j);
                        let off = l.local_offset(i, j);
                        assert!(off < l.local_len(node), "offset in range");
                        total += 1;
                        // Roundtrip through global_at.
                        let (lr, lc) = l.local_shape(node);
                        let li = off / lc.max(1);
                        let lj = off % lc.max(1);
                        assert!(li < lr && lj < lc);
                        assert_eq!(l.global_at(node, li, lj), (i, j));
                    }
                }
                assert_eq!(total, l.shape().elements());
            }
        }
    }

    #[test]
    fn local_elements_enumerates_the_whole_matrix_once() {
        let l = layout(9, 6, 4, 2, Dist::Cyclic);
        let mut seen = vec![vec![false; 6]; 9];
        for node in 0..l.grid().p() {
            let mut count = 0;
            for (i, j, off) in l.local_elements(node) {
                assert!(!seen[i][j], "({i},{j}) duplicated");
                seen[i][j] = true;
                assert_eq!(l.owner(i, j), node);
                assert_eq!(l.local_offset(i, j), off);
                count += 1;
            }
            assert_eq!(count, l.local_len(node));
        }
        assert!(seen.iter().flatten().all(|&b| b));
    }

    #[test]
    fn load_balance_bound_holds() {
        for kind in [Dist::Block, Dist::Cyclic] {
            let l = layout(100, 37, 6, 3, kind);
            let bound = l.max_local_len();
            for node in 0..l.grid().p() {
                assert!(l.local_len(node) <= bound);
            }
            // The bound is ceil(100/8) * ceil(37/8) = 13 * 5.
            assert_eq!(bound, 13 * 5);
        }
    }

    #[test]
    fn vector_dist_matches_axis_orientation() {
        let l = layout(8, 16, 4, 2, Dist::Block);
        assert_eq!(l.vector_dist(Axis::Row).n(), 16, "row vectors indexed by column");
        assert_eq!(l.vector_dist(Axis::Col).n(), 8);
    }

    #[test]
    fn transposed_layout_swaps_roles() {
        let l = layout(8, 4, 4, 3, Dist::Cyclic);
        let t = l.transposed();
        assert_eq!(t.shape(), MatShape::new(4, 8));
        assert_eq!(t.grid().dr(), 1);
        assert_eq!(t.grid().dc(), 3);
        assert_eq!(t.rows().n(), 4);
        assert_eq!(t.cols().n(), 8);
    }

    #[test]
    fn vp_ratio_is_elements_over_p() {
        let l = layout(32, 32, 4, 2, Dist::Block);
        assert_eq!(l.vp_ratio(), 64);
    }

    #[test]
    fn single_node_grid_owns_everything() {
        let l = layout(5, 7, 0, 0, Dist::Block);
        assert_eq!(l.grid().p(), 1);
        assert_eq!(l.local_len(0), 35);
        assert_eq!(l.owner(4, 6), 0);
        assert_eq!(l.local_offset(2, 3), 2 * 7 + 3);
    }
}
