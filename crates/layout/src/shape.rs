//! Axes and shapes for dense matrices and vectors.

use serde::{Deserialize, Serialize};

/// Which way a vector-matrix primitive is oriented.
///
/// The convention follows the operand/result: `Axis::Row` means the
/// vector involved is a *row vector* (length = number of matrix columns) —
/// `extract(M, Row, i)` pulls out row `i`, `reduce(M, Row, +)` adds all
/// rows together into one row, `distribute(v, Row, r)` stacks `r` copies
/// of the row `v`. `Axis::Col` is the transposed family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Row-vector orientation (vectors have length `cols`).
    Row,
    /// Column-vector orientation (vectors have length `rows`).
    Col,
}

impl Axis {
    /// The other axis.
    #[must_use]
    pub fn transpose(self) -> Axis {
        match self {
            Axis::Row => Axis::Col,
            Axis::Col => Axis::Row,
        }
    }
}

/// The shape of a dense matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatShape {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl MatShape {
    /// Construct a shape.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        MatShape { rows, cols }
    }

    /// Total element count `m = rows * cols` — the paper's `m`.
    #[must_use]
    pub fn elements(self) -> usize {
        self.rows * self.cols
    }

    /// Length of a vector oriented along `axis` with respect to this shape.
    #[must_use]
    pub fn vector_len(self, axis: Axis) -> usize {
        match axis {
            Axis::Row => self.cols,
            Axis::Col => self.rows,
        }
    }

    /// Number of vectors stacked along `axis` (rows for `Row`, cols for
    /// `Col`).
    #[must_use]
    pub fn vector_count(self, axis: Axis) -> usize {
        match axis {
            Axis::Row => self.rows,
            Axis::Col => self.cols,
        }
    }

    /// The transposed shape.
    #[must_use]
    pub fn transpose(self) -> MatShape {
        MatShape { rows: self.cols, cols: self.rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_transpose_is_involution() {
        assert_eq!(Axis::Row.transpose(), Axis::Col);
        assert_eq!(Axis::Col.transpose(), Axis::Row);
        assert_eq!(Axis::Row.transpose().transpose(), Axis::Row);
    }

    #[test]
    fn shape_accessors() {
        let s = MatShape::new(3, 5);
        assert_eq!(s.elements(), 15);
        assert_eq!(s.vector_len(Axis::Row), 5);
        assert_eq!(s.vector_len(Axis::Col), 3);
        assert_eq!(s.vector_count(Axis::Row), 3);
        assert_eq!(s.vector_count(Axis::Col), 5);
        assert_eq!(s.transpose(), MatShape::new(5, 3));
    }
}
