//! Load-balanced one-dimensional index distributions.
//!
//! A matrix axis of `n` global indices is distributed over `2^k` grid
//! parts either in contiguous **blocks** (*consecutive* partitioning, in
//! the terminology of Johnsson & Ho's matrix-transposition report) or
//! **cyclically**. Both keep every part within one element of the
//! average — the "load-balanced embeddings" the abstract assumes — so the
//! per-processor work bound `ceil(n_r/2^{d_r}) * ceil(n_c/2^{d_c})` holds
//! for every primitive.
//!
//! Cyclic layout is what the paper's Gaussian elimination and simplex
//! want: as elimination shrinks the active submatrix, contiguous blocks
//! would idle the processors owning eliminated rows, while cyclic spreads
//! the active region over everyone.

use serde::{Deserialize, Serialize};

/// The partitioning rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dist {
    /// Consecutive runs: part `t` owns a contiguous range.
    Block,
    /// Round-robin: index `i` belongs to part `i mod parts`.
    Cyclic,
}

/// A distribution of `n` global indices over `2^k` parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AxisDist {
    n: usize,
    parts_log2: u32,
    kind: Dist,
}

impl AxisDist {
    /// Distribute `n` indices over `2^parts_log2` parts.
    #[must_use]
    pub fn new(n: usize, parts_log2: u32, kind: Dist) -> Self {
        assert!(parts_log2 < usize::BITS, "part count overflows usize");
        AxisDist { n, parts_log2, kind }
    }

    /// Number of global indices.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of parts `2^k`.
    #[inline]
    #[must_use]
    pub fn parts(&self) -> usize {
        1usize << self.parts_log2
    }

    /// `k = lg(parts)`.
    #[inline]
    #[must_use]
    pub fn parts_log2(&self) -> u32 {
        self.parts_log2
    }

    /// The partitioning rule.
    #[inline]
    #[must_use]
    pub fn kind(&self) -> Dist {
        self.kind
    }

    /// The part owning global index `i`.
    #[inline]
    #[must_use]
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.n, "index {i} out of range 0..{}", self.n);
        match self.kind {
            Dist::Cyclic => i & (self.parts() - 1),
            Dist::Block => {
                let p = self.parts();
                let q = self.n / p;
                let r = self.n % p;
                // First r parts have q+1 elements, the rest q.
                let cut = r * (q + 1);
                if i < cut {
                    i / (q + 1)
                } else {
                    // q == 0 cannot happen here: it would mean i >= cut = n.
                    r + (i - cut).checked_div(q).expect("index beyond block cut with q = 0")
                }
            }
        }
    }

    /// The local slot of global index `i` within its owner part.
    #[inline]
    #[must_use]
    pub fn local_index(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        match self.kind {
            Dist::Cyclic => i >> self.parts_log2,
            Dist::Block => i - self.part_start(self.owner(i)),
        }
    }

    /// The global index at `(part, slot)`.
    #[inline]
    #[must_use]
    pub fn global_index(&self, part: usize, slot: usize) -> usize {
        debug_assert!(part < self.parts());
        debug_assert!(slot < self.count(part), "slot {slot} out of range for part {part}");
        match self.kind {
            Dist::Cyclic => (slot << self.parts_log2) | part,
            Dist::Block => self.part_start(part) + slot,
        }
    }

    /// Number of indices owned by `part`.
    #[inline]
    #[must_use]
    pub fn count(&self, part: usize) -> usize {
        debug_assert!(part < self.parts());
        // Identical for both rules: the first `n mod p` parts get one
        // extra element.
        let p = self.parts();
        self.n / p + usize::from(part < self.n % p)
    }

    /// The largest per-part count — the virtual-processing ratio along
    /// this axis.
    #[inline]
    #[must_use]
    pub fn max_count(&self) -> usize {
        self.n.div_ceil(self.parts())
    }

    /// First global index of a block part (Block only).
    fn part_start(&self, part: usize) -> usize {
        debug_assert_eq!(self.kind, Dist::Block);
        let p = self.parts();
        let q = self.n / p;
        let r = self.n % p;
        part * q + part.min(r)
    }

    /// Iterate the global indices owned by `part`, in slot order.
    pub fn part_indices(&self, part: usize) -> impl Iterator<Item = usize> + '_ {
        let count = self.count(part);
        (0..count).map(move |slot| self.global_index(part, slot))
    }

    /// The **contiguous** range of local slots at `part` whose global
    /// indices fall in `[lo, hi)`. For both rules the owned indices are
    /// increasing in slot order, so the intersection is a slot interval —
    /// which is what lets an algorithm like Gaussian elimination touch
    /// (and be charged for) only the active trailing submatrix.
    #[must_use]
    pub fn local_slot_range(&self, part: usize, lo: usize, hi: usize) -> std::ops::Range<usize> {
        debug_assert!(part < self.parts());
        let cnt = self.count(part);
        if lo >= hi || cnt == 0 {
            return 0..0;
        }
        match self.kind {
            Dist::Block => {
                let s0 = self.part_start(part);
                let glo = lo.max(s0);
                let ghi = hi.min(s0 + cnt);
                if glo >= ghi {
                    0..0
                } else {
                    (glo - s0)..(ghi - s0)
                }
            }
            Dist::Cyclic => {
                let p = self.parts();
                // Smallest slot s with s*p + part >= bound.
                let first_at_least = |bound: usize| -> usize {
                    if bound > part {
                        (bound - part).div_ceil(p)
                    } else {
                        0
                    }
                };
                let s_lo = first_at_least(lo).min(cnt);
                let s_hi = first_at_least(hi).min(cnt);
                s_lo..s_hi
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_consistency(d: AxisDist) {
        // Every index has exactly one (owner, slot) and it round-trips.
        let mut counts = vec![0usize; d.parts()];
        for i in 0..d.n() {
            let part = d.owner(i);
            let slot = d.local_index(i);
            assert_eq!(d.global_index(part, slot), i, "roundtrip for {i}");
            counts[part] += 1;
        }
        for part in 0..d.parts() {
            assert_eq!(counts[part], d.count(part), "count of part {part}");
            assert!(d.count(part) <= d.max_count());
        }
        // Load balance: max - min <= 1.
        let max = counts.iter().max().copied().unwrap_or(0);
        let min = counts.iter().min().copied().unwrap_or(0);
        assert!(max - min <= 1, "imbalance: max {max} min {min}");
        assert_eq!(counts.iter().sum::<usize>(), d.n());
    }

    #[test]
    fn block_divisible() {
        let d = AxisDist::new(16, 2, Dist::Block);
        check_consistency(d);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(3), 0);
        assert_eq!(d.owner(4), 1);
        assert_eq!(d.owner(15), 3);
        assert_eq!(d.local_index(5), 1);
        assert_eq!(d.count(2), 4);
    }

    #[test]
    fn block_ragged() {
        for n in [1usize, 5, 7, 9, 13, 17, 100] {
            for k in 0..5u32 {
                check_consistency(AxisDist::new(n, k, Dist::Block));
            }
        }
    }

    #[test]
    fn block_keeps_ranges_contiguous() {
        let d = AxisDist::new(13, 2, Dist::Block);
        for part in 0..4 {
            let idx: Vec<usize> = d.part_indices(part).collect();
            for w in idx.windows(2) {
                assert_eq!(w[1], w[0] + 1, "contiguous within part {part}");
            }
        }
    }

    #[test]
    fn cyclic_divisible() {
        let d = AxisDist::new(16, 2, Dist::Cyclic);
        check_consistency(d);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(1), 1);
        assert_eq!(d.owner(4), 0);
        assert_eq!(d.local_index(4), 1);
        assert_eq!(d.global_index(2, 3), 14);
    }

    #[test]
    fn cyclic_ragged() {
        for n in [1usize, 5, 7, 9, 13, 17, 100] {
            for k in 0..5u32 {
                check_consistency(AxisDist::new(n, k, Dist::Cyclic));
            }
        }
    }

    #[test]
    fn cyclic_spreads_prefixes() {
        // The point of cyclic layout: any contiguous prefix of the axis is
        // spread over (almost) all parts.
        let d = AxisDist::new(64, 3, Dist::Cyclic);
        let prefix = 16usize; // active region after some eliminations
        let mut per_part = vec![0usize; 8];
        for i in 48..64 {
            per_part[d.owner(i)] += 1;
        }
        assert!(per_part.iter().all(|&c| c == prefix / 8), "suffix spread evenly: {per_part:?}");
    }

    #[test]
    fn block_concentrates_prefixes() {
        let d = AxisDist::new(64, 3, Dist::Block);
        let mut per_part = vec![0usize; 8];
        for i in 48..64 {
            per_part[d.owner(i)] += 1;
        }
        assert_eq!(per_part, vec![0, 0, 0, 0, 0, 0, 8, 8]);
    }

    #[test]
    fn single_part_owns_everything() {
        for kind in [Dist::Block, Dist::Cyclic] {
            let d = AxisDist::new(10, 0, kind);
            check_consistency(d);
            for i in 0..10 {
                assert_eq!(d.owner(i), 0);
                assert_eq!(d.local_index(i), i);
            }
        }
    }

    #[test]
    fn more_parts_than_indices() {
        for kind in [Dist::Block, Dist::Cyclic] {
            let d = AxisDist::new(3, 3, kind);
            check_consistency(d);
            assert_eq!(d.max_count(), 1);
            let empty = (0..8).filter(|&t| d.count(t) == 0).count();
            assert_eq!(empty, 5);
        }
    }

    #[test]
    fn local_slot_range_matches_brute_force() {
        for kind in [Dist::Block, Dist::Cyclic] {
            for n in [0usize, 1, 7, 16, 33] {
                for k in 0..4u32 {
                    let d = AxisDist::new(n, k, kind);
                    for part in 0..d.parts() {
                        for lo in 0..=n {
                            for hi in lo..=n {
                                let range = d.local_slot_range(part, lo, hi);
                                let expect: Vec<usize> = (0..d.count(part))
                                    .filter(|&s| {
                                        let g = d.global_index(part, s);
                                        g >= lo && g < hi
                                    })
                                    .collect();
                                let got: Vec<usize> = range.collect();
                                assert_eq!(
                                    got, expect,
                                    "{kind:?} n={n} k={k} part={part} [{lo},{hi})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_axis() {
        for kind in [Dist::Block, Dist::Cyclic] {
            let d = AxisDist::new(0, 2, kind);
            check_consistency(d);
            assert_eq!(d.max_count(), 0);
        }
    }
}
