//! Two-dimensional processor grids embedded in the cube.
//!
//! Matrices live on a `2^{d_r} x 2^{d_c}` grid of processors with
//! `d_r + d_c = d`. The grid-row index is encoded (via a binary-reflected
//! Gray code, so grid neighbours are cube neighbours) into one subset of
//! the cube's address bits and the grid-column index into the complement.
//! Row-wise collectives then run on the row-index dims, column-wise
//! collectives on the column-index dims, all subgrids in parallel — the
//! standard CM matrix configuration (cf. Johnsson, *Communication
//! Efficient Basic Linear Algebra Computations on Hypercube
//! Architectures*).

use serde::{Deserialize, Serialize};
use vmp_hypercube::gray::{gray, gray_inverse};
use vmp_hypercube::topology::{Cube, NodeId};

/// How grid coordinates map to cube address bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GridEncoding {
    /// Plain binary: grid coordinate = packed address bits.
    Binary,
    /// Binary-reflected Gray code: grid neighbours are cube neighbours
    /// (dilation-1 embedding). The default, faithful to the paper.
    Gray,
}

/// A `2^{d_r} x 2^{d_c}` processor grid over a Boolean cube.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcGrid {
    dim: u32,
    /// Cube dims encoding the grid-*column* index (low dims by convention).
    col_dims: Vec<u32>,
    /// Cube dims encoding the grid-*row* index (high dims).
    row_dims: Vec<u32>,
    encoding: GridEncoding,
}

impl ProcGrid {
    /// A grid with `2^dr` rows and `2^{d-dr}` columns on a `d`-cube,
    /// Gray-encoded.
    ///
    /// # Panics
    /// Panics if `dr > cube.dim()`.
    #[must_use]
    pub fn new(cube: Cube, dr: u32) -> Self {
        Self::with_encoding(cube, dr, GridEncoding::Gray)
    }

    /// As [`ProcGrid::new`] with an explicit coordinate encoding.
    #[must_use]
    pub fn with_encoding(cube: Cube, dr: u32, encoding: GridEncoding) -> Self {
        let d = cube.dim();
        assert!(dr <= d, "row dimension {dr} exceeds cube dimension {d}");
        let dc = d - dr;
        ProcGrid { dim: d, col_dims: (0..dc).collect(), row_dims: (dc..d).collect(), encoding }
    }

    /// The squarest grid on `cube`: `ceil(d/2)` row dims.
    #[must_use]
    pub fn square(cube: Cube) -> Self {
        Self::new(cube, cube.dim().div_ceil(2))
    }

    /// The underlying cube.
    #[must_use]
    pub fn cube(&self) -> Cube {
        Cube::new(self.dim)
    }

    /// Number of grid rows `2^{d_r}`.
    #[must_use]
    pub fn pr(&self) -> usize {
        1usize << self.row_dims.len()
    }

    /// Number of grid columns `2^{d_c}`.
    #[must_use]
    pub fn pc(&self) -> usize {
        1usize << self.col_dims.len()
    }

    /// `d_r`.
    #[must_use]
    pub fn dr(&self) -> u32 {
        self.row_dims.len() as u32
    }

    /// `d_c`.
    #[must_use]
    pub fn dc(&self) -> u32 {
        self.col_dims.len() as u32
    }

    /// Total processors `p`.
    #[must_use]
    pub fn p(&self) -> usize {
        1usize << self.dim
    }

    /// Cube dims encoding the grid-row index. Collectives **along a grid
    /// column** (combining different grid rows) run over these dims.
    #[must_use]
    pub fn row_dims(&self) -> &[u32] {
        &self.row_dims
    }

    /// Cube dims encoding the grid-column index. Collectives **along a
    /// grid row** (combining different grid columns) run over these dims.
    #[must_use]
    pub fn col_dims(&self) -> &[u32] {
        &self.col_dims
    }

    /// The coordinate encoding in force.
    #[must_use]
    pub fn encoding(&self) -> GridEncoding {
        self.encoding
    }

    fn encode(&self, x: usize) -> usize {
        match self.encoding {
            GridEncoding::Binary => x,
            GridEncoding::Gray => gray(x),
        }
    }

    fn decode(&self, x: usize) -> usize {
        match self.encoding {
            GridEncoding::Binary => x,
            GridEncoding::Gray => gray_inverse(x),
        }
    }

    /// The node at grid position `(gr, gc)`.
    #[must_use]
    pub fn node_at(&self, gr: usize, gc: usize) -> NodeId {
        debug_assert!(gr < self.pr(), "grid row {gr} out of range");
        debug_assert!(gc < self.pc(), "grid col {gc} out of range");
        let cube = self.cube();
        cube.deposit_coords(self.encode(gr), &self.row_dims)
            | cube.deposit_coords(self.encode(gc), &self.col_dims)
    }

    /// The grid position `(gr, gc)` of `node`.
    #[must_use]
    pub fn grid_coords(&self, node: NodeId) -> (usize, usize) {
        let cube = self.cube();
        let gr = self.decode(cube.extract_coords(node, &self.row_dims));
        let gc = self.decode(cube.extract_coords(node, &self.col_dims));
        (gr, gc)
    }

    /// The *subcube coordinate* (packed address bits at `row_dims`) of
    /// grid row `gr` — what collectives take as a root coordinate.
    #[must_use]
    pub fn row_coord(&self, gr: usize) -> usize {
        debug_assert!(gr < self.pr());
        self.encode(gr)
    }

    /// The subcube coordinate of grid column `gc`.
    #[must_use]
    pub fn col_coord(&self, gc: usize) -> usize {
        debug_assert!(gc < self.pc());
        self.encode(gc)
    }

    /// Iterate the nodes of grid row `gr` in grid-column order.
    pub fn row_nodes(&self, gr: usize) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.pc()).map(move |gc| self.node_at(gr, gc))
    }

    /// Iterate the nodes of grid column `gc` in grid-row order.
    pub fn col_nodes(&self, gc: usize) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.pr()).map(move |gr| self.node_at(gr, gc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coords_roundtrip() {
        for dim in 0..7u32 {
            for dr in 0..=dim {
                for enc in [GridEncoding::Binary, GridEncoding::Gray] {
                    let g = ProcGrid::with_encoding(Cube::new(dim), dr, enc);
                    assert_eq!(g.pr() * g.pc(), g.p());
                    let mut seen = vec![false; g.p()];
                    for gr in 0..g.pr() {
                        for gc in 0..g.pc() {
                            let node = g.node_at(gr, gc);
                            assert!(!seen[node], "node {node} double-assigned");
                            seen[node] = true;
                            assert_eq!(g.grid_coords(node), (gr, gc));
                        }
                    }
                    assert!(seen.into_iter().all(|b| b), "grid covers the cube");
                }
            }
        }
    }

    #[test]
    fn gray_grid_has_dilation_one() {
        let g = ProcGrid::new(Cube::new(6), 3);
        let cube = g.cube();
        for gr in 0..g.pr() {
            for gc in 0..g.pc() {
                let here = g.node_at(gr, gc);
                if gr + 1 < g.pr() {
                    assert_eq!(cube.distance(here, g.node_at(gr + 1, gc)), 1);
                }
                if gc + 1 < g.pc() {
                    assert_eq!(cube.distance(here, g.node_at(gr, gc + 1)), 1);
                }
            }
        }
    }

    #[test]
    fn binary_grid_neighbors_can_be_far() {
        let g = ProcGrid::with_encoding(Cube::new(4), 2, GridEncoding::Binary);
        let cube = g.cube();
        // Grid rows 1 -> 2 differ in two bits under binary encoding.
        assert_eq!(cube.distance(g.node_at(1, 0), g.node_at(2, 0)), 2);
    }

    #[test]
    fn row_and_col_dims_partition_the_cube() {
        let g = ProcGrid::new(Cube::new(5), 2);
        let mut all: Vec<u32> = g.row_dims().iter().chain(g.col_dims()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        assert_eq!(g.dr(), 2);
        assert_eq!(g.dc(), 3);
    }

    #[test]
    fn row_nodes_share_row_coordinate() {
        let g = ProcGrid::new(Cube::new(4), 2);
        let cube = g.cube();
        for gr in 0..g.pr() {
            let coord = g.row_coord(gr);
            for node in g.row_nodes(gr) {
                assert_eq!(cube.extract_coords(node, g.row_dims()), coord);
            }
        }
    }

    #[test]
    fn degenerate_grids() {
        // All rows (column count 1) and all cols (row count 1).
        let rows_only = ProcGrid::new(Cube::new(3), 3);
        assert_eq!(rows_only.pr(), 8);
        assert_eq!(rows_only.pc(), 1);
        let cols_only = ProcGrid::new(Cube::new(3), 0);
        assert_eq!(cols_only.pr(), 1);
        assert_eq!(cols_only.pc(), 8);
        let single = ProcGrid::new(Cube::new(0), 0);
        assert_eq!(single.p(), 1);
        assert_eq!(single.node_at(0, 0), 0);
    }

    #[test]
    fn square_splits_dims_evenly() {
        assert_eq!(ProcGrid::square(Cube::new(6)).dr(), 3);
        assert_eq!(ProcGrid::square(Cube::new(5)).dr(), 3);
        assert_eq!(ProcGrid::square(Cube::new(0)).dr(), 0);
    }
}
