//! Analytic cost model for the primitives — the paper's complexity
//! claims, as executable formulas.
//!
//! The abstract's asymptotic claims:
//!
//! 1. *"The implementations are efficient in the frequently occurring
//!    case where there are fewer processors than matrix elements."*
//! 2. *"If there are `m > p lg p` matrix elements ... the implementations
//!    of some of the primitives are asymptotically optimal in that the
//!    processor-time product is no more than a constant factor higher
//!    than the running time of the best serial algorithm."*
//! 3. *"Furthermore, the parallel time required is optimal to within a
//!    constant factor"* (i.e. matches `Omega(m/p + lg p)`).
//!
//! The formulas below express the implemented schedules' costs under the
//! [`CostModel`]; tests in this module and bench F1/F2 verify that the
//! *simulated* machine agrees with the formulas, and that the optimality
//! predicates behave as claimed across the `m = p lg p` threshold.

use vmp_hypercube::cost::{AlgoSelect, Collective, CostModel};
use vmp_layout::MatrixLayout;

/// Per-processor block bound `ceil(n_r/p_r) * ceil(n_c/p_c)` — the local
/// work unit of every primitive.
#[must_use]
pub fn local_block(layout: &MatrixLayout) -> usize {
    layout.max_local_len()
}

/// Predicted time of one collective of `kind` over `k` dimensions with
/// critical-path segment length `len`, under the **default** schedule
/// selector and a healthy machine — exactly what a default-configured
/// [`vmp_hypercube::machine::Hypercube`] with this cost model charges.
/// One-port cost models make this the classic single-port formula; an
/// all-port model prices the same ported schedule the machine runs, so
/// predictions track charges under either port model.
#[must_use]
pub fn collective_cost(cost: &CostModel, kind: Collective, k: usize, len: usize) -> f64 {
    let algo = AlgoSelect::default().choose(cost, kind, k, len, false);
    cost.collective_time(kind, k, len, algo)
}

/// Predicted time of `reduce` along rows (the `Axis::Row` case; swap the
/// grid factors for columns): local fold over the block plus an
/// allreduce over the `d_r` row dimensions on chunks of `ceil(n_c/p_c)`
/// elements (a `d_r`-step butterfly single-port; the staggered
/// piece-butterflies under an all-port model).
#[must_use]
pub fn predicted_reduce(layout: &MatrixLayout, cost: &CostModel) -> f64 {
    let block = local_block(layout) as f64;
    let chunk = layout.cols().max_count();
    let dr = layout.grid().dr() as usize;
    cost.gamma * block + collective_cost(cost, Collective::Allreduce, dr, chunk)
}

/// Predicted time of `distribute` from a replicated row vector: pure
/// local replication of the chunk into every local row.
#[must_use]
pub fn predicted_distribute_replicated(layout: &MatrixLayout, cost: &CostModel) -> f64 {
    cost.moves(local_block(layout))
}

/// Predicted time of `distribute` from a concentrated row vector: a
/// broadcast of the chunk over the `d_r` row dimensions, then local
/// replication.
#[must_use]
pub fn predicted_distribute_concentrated(layout: &MatrixLayout, cost: &CostModel) -> f64 {
    let chunk = layout.cols().max_count();
    let dr = layout.grid().dr() as usize;
    collective_cost(cost, Collective::Broadcast, dr, chunk) + cost.moves(local_block(layout))
}

/// Predicted time of `extract` (concentrated result): one local chunk
/// copy on the owning grid line.
#[must_use]
pub fn predicted_extract(layout: &MatrixLayout, cost: &CostModel) -> f64 {
    cost.moves(layout.cols().max_count())
}

/// Predicted time of `extract` + replication: the local copy plus a
/// broadcast over the `d_r` row dimensions.
#[must_use]
pub fn predicted_extract_replicated(layout: &MatrixLayout, cost: &CostModel) -> f64 {
    let chunk = layout.cols().max_count();
    let dr = layout.grid().dr() as usize;
    cost.moves(chunk) + collective_cost(cost, Collective::Broadcast, dr, chunk)
}

/// Predicted time of `insert` from a replicated vector: one local chunk
/// write.
#[must_use]
pub fn predicted_insert(layout: &MatrixLayout, cost: &CostModel) -> f64 {
    cost.moves(layout.cols().max_count())
}

/// Predicted time of `reduce` along rows on a machine degraded by
/// single-hop concentration with the given `load_factor` (the largest
/// number of logical nodes co-hosted on one physical node; `1` means
/// healthy and the formula collapses to [`predicted_reduce`]).
///
/// Degradation changes exactly one thing in the machine's charging: a
/// host running `load_factor` logical nodes serializes their *compute*,
/// so every `charge_flops` superstep scales by the load factor — the
/// local fold and the per-step combines here. Message supersteps do
/// **not** scale: each butterfly step is still one blocked superstep as
/// long as at least one of its exchange pairs crosses physical hosts,
/// which holds whenever the dead set is small relative to the row
/// dimension (every dead node has `d_r - 1` other row partners besides
/// the one it may share a host with). Intra-host pairs within a step
/// simply stop being channel traffic.
///
/// Deliberately single-port: a machine with `load_factor > 1` reports
/// live faults, and the schedule selector falls back to the single-port
/// butterfly regardless of the cost model's port capability — so the
/// degraded prediction never prices an all-port schedule.
#[must_use]
pub fn predicted_reduce_degraded(
    layout: &MatrixLayout,
    cost: &CostModel,
    load_factor: usize,
) -> f64 {
    let block = local_block(layout);
    let chunk = layout.cols().max_count();
    let dr = layout.grid().dr() as f64;
    cost.flops(load_factor * block) + dr * (cost.message(chunk) + cost.flops(load_factor * chunk))
}

/// The generic lower bound for a primitive that must touch all `m`
/// elements and combine information across the machine:
/// `Omega(gamma * m/p + alpha * lg p)`.
#[must_use]
pub fn lower_bound(m: usize, p: usize, cost: &CostModel) -> f64 {
    let lg_p = (usize::BITS - p.leading_zeros() - 1) as f64; // floor(lg p), p a power of 2
    cost.gamma * (m as f64 / p as f64) + cost.alpha * lg_p
}

/// Lower bound with an explicit latency diameter: a row-wise reduce only
/// combines information across the `2^{lat_dims}` grid rows, so its
/// latency term is `alpha * lat_dims` rather than `alpha * lg p`.
#[must_use]
pub fn lower_bound_dims(m: usize, p: usize, lat_dims: u32, cost: &CostModel) -> f64 {
    cost.gamma * (m as f64 / p as f64) + cost.alpha * f64::from(lat_dims)
}

/// The paper's optimality threshold: `m > p lg p`.
#[must_use]
pub fn in_optimal_regime(m: usize, p: usize) -> bool {
    let lg_p = (usize::BITS - p.leading_zeros() - 1) as usize;
    m > p * lg_p
}

/// Parallel efficiency `T_serial / (p * T_parallel)` — the processor-time
/// product comparison behind claim 2. `serial_us` should be the best
/// serial algorithm's (modelled) time, typically `gamma * m` for a
/// reduction.
#[must_use]
pub fn efficiency(serial_us: f64, p: usize, parallel_us: f64) -> f64 {
    serial_us / (p as f64 * parallel_us)
}

/// Modelled serial time of a full-matrix reduction: `gamma * m`.
#[must_use]
pub fn serial_reduce_us(m: usize, cost: &CostModel) -> f64 {
    cost.gamma * m as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elem::Sum;
    use crate::matrix::DistMatrix;
    use crate::primitives;
    use vmp_hypercube::machine::Hypercube;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::{Axis, Dist, MatShape, ProcGrid};

    fn layout(n: usize, dim: u32) -> MatrixLayout {
        MatrixLayout::new(
            MatShape::new(n, n),
            ProcGrid::square(Cube::new(dim)),
            Dist::Cyclic,
            Dist::Cyclic,
        )
    }

    #[test]
    fn simulated_reduce_matches_formula_exactly_under_unit_model() {
        let cost = CostModel::unit();
        for (n, dim) in [(16usize, 4u32), (32, 6), (24, 4)] {
            let l = layout(n, dim);
            let m = DistMatrix::from_fn(l.clone(), |i, j| (i + j) as f64);
            let mut hc = Hypercube::new(dim, cost);
            let _ = primitives::reduce(&mut hc, &m, Axis::Row, Sum);
            let predicted = predicted_reduce(&l, &cost);
            assert!(
                (hc.elapsed_us() - predicted).abs() < 1e-9,
                "n={n} dim={dim}: simulated {} vs predicted {predicted}",
                hc.elapsed_us()
            );
        }
    }

    #[test]
    fn simulated_reduce_matches_formula_under_allport_model() {
        // The prediction routes its communication term through the same
        // schedule selector the machine uses, so it stays exact when the
        // cost model advertises all ports and the machine actually runs
        // the ported schedule.
        let cost = CostModel::cm2_allport();
        for (n, dim) in [(16usize, 4u32), (64, 6), (24, 4)] {
            let l = layout(n, dim);
            let m = DistMatrix::from_fn(l.clone(), |i, j| (i + j) as f64);
            let mut hc = Hypercube::new(dim, cost);
            let _ = primitives::reduce(&mut hc, &m, Axis::Row, Sum);
            let predicted = predicted_reduce(&l, &cost);
            assert!(
                (hc.elapsed_us() - predicted).abs() < 1e-9,
                "n={n} dim={dim}: simulated {} vs predicted {predicted}",
                hc.elapsed_us()
            );
        }
    }

    #[test]
    fn simulated_extract_matches_formula() {
        let cost = CostModel::cm2();
        let l = layout(32, 6);
        let m = DistMatrix::from_fn(l.clone(), |i, j| (i * j) as f64);
        let mut hc = Hypercube::new(6, cost);
        let _ = primitives::extract(&mut hc, &m, Axis::Row, 5);
        assert!((hc.elapsed_us() - predicted_extract(&l, &cost)).abs() < 1e-9);

        let mut hc2 = Hypercube::new(6, cost);
        let _ = primitives::extract_replicated(&mut hc2, &m, Axis::Row, 5);
        assert!((hc2.elapsed_us() - predicted_extract_replicated(&l, &cost)).abs() < 1e-9);
    }

    #[test]
    fn simulated_distribute_matches_formula() {
        let cost = CostModel::cm2();
        let l = layout(32, 6);
        let m = DistMatrix::from_fn(l.clone(), |i, j| (i * j) as f64);
        let mut hc = Hypercube::new(6, cost);
        let v = primitives::extract(&mut hc, &m, Axis::Row, 0);
        hc.reset();
        let _ = primitives::distribute(&mut hc, &v, 32, Dist::Cyclic);
        assert!(
            (hc.elapsed_us() - predicted_distribute_concentrated(&l, &cost)).abs() < 1e-9,
            "simulated {} predicted {}",
            hc.elapsed_us(),
            predicted_distribute_concentrated(&l, &cost)
        );
    }

    #[test]
    fn degraded_formula_collapses_to_healthy_at_load_factor_one() {
        for cost in [CostModel::unit(), CostModel::cm2()] {
            for (n, dim) in [(16usize, 4u32), (32, 6), (24, 4)] {
                let l = layout(n, dim);
                assert_eq!(
                    predicted_reduce_degraded(&l, &cost, 1),
                    predicted_reduce(&l, &cost),
                    "lf = 1 must be the healthy formula (n={n} dim={dim})"
                );
            }
        }
    }

    #[test]
    fn degraded_reduce_matches_formula_and_stays_bit_identical() {
        let cost = CostModel::unit();
        for (dead, dim, n) in [(vec![5usize], 4u32, 16usize), (vec![2, 6], 4, 24), (vec![1], 6, 32)]
        {
            let l = layout(n, dim);
            let gen = |i: usize, j: usize| ((i * 31 + j * 17) as f64).sin();

            let mut healthy = Hypercube::new(dim, cost);
            let m_h = DistMatrix::from_fn(l.clone(), gen);
            let want = primitives::reduce(&mut healthy, &m_h, Axis::Row, Sum).to_dense();

            let mut hc = Hypercube::new(dim, cost);
            let m_d = DistMatrix::from_fn(l.clone(), gen);
            let map = crate::degrade::apply_degradation(
                &mut hc,
                &dead,
                &crate::degrade::resident_sizes(m_d.locals()),
            );
            assert!(map.load_factor() >= 2, "dead set must actually concentrate");
            // Drop the one-off migration charge; the host map and load
            // factor survive reset, so what remains is the steady-state
            // degraded cost of the primitive itself.
            hc.reset();
            let got = primitives::reduce(&mut hc, &m_d, Axis::Row, Sum).to_dense();
            assert_eq!(got, want, "degraded reduce must stay bit-identical");

            let predicted = predicted_reduce_degraded(&l, &cost, map.load_factor());
            assert!(
                (hc.elapsed_us() - predicted).abs() < 1e-9,
                "dead={dead:?} dim={dim} n={n}: simulated {} vs predicted {predicted}",
                hc.elapsed_us()
            );
        }
    }

    #[test]
    fn degraded_reduce_slowdown_is_compute_only() {
        // Degradation serializes co-hosted *compute*; the butterfly's
        // message supersteps are unchanged while every step keeps at
        // least one physical link. The formula therefore predicts a gap
        // of exactly (lf - 1) * (flops(block) + d_r * flops(chunk)).
        let cost = CostModel::cm2();
        let l = layout(32, 6);
        let block = local_block(&l);
        let chunk = l.cols().max_count();
        let dr = l.grid().dr() as f64;
        for lf in [2usize, 3, 4] {
            let gap = predicted_reduce_degraded(&l, &cost, lf) - predicted_reduce(&l, &cost);
            let expect = (lf - 1) as f64 * (cost.flops(block) + dr * cost.flops(chunk));
            assert!((gap - expect).abs() < 1e-9, "lf={lf}: gap {gap} expected {expect}");
        }
    }

    #[test]
    fn optimal_regime_threshold() {
        assert!(in_optimal_regime(1025 * 10, 1024)); // m = 10250 > 1024*10
        assert!(!in_optimal_regime(1024 * 10, 1024)); // equality excluded
        assert!(in_optimal_regime(100, 1)); // lg 1 = 0
    }

    #[test]
    fn efficiency_approaches_constant_above_threshold() {
        // Claim 2: in the m > p lg p regime, p * T_par = O(T_serial).
        let cost = CostModel::cm2();
        let dim = 6u32;
        let p = 1usize << dim;
        let mut effs = Vec::new();
        for n in [8usize, 16, 32, 64, 128, 256, 512] {
            let l = layout(n, dim);
            let m = DistMatrix::from_fn(l.clone(), |i, j| (i + j) as f64);
            let mut hc = Hypercube::new(dim, cost);
            let _ = primitives::reduce(&mut hc, &m, Axis::Row, Sum);
            effs.push((n * n, efficiency(serial_reduce_us(n * n, &cost), p, hc.elapsed_us())));
        }
        // Efficiency grows with m and exceeds a healthy constant once
        // m > p lg p (= 384 for p = 64).
        for w in effs.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.99, "efficiency non-decreasing: {effs:?}");
        }
        // Deep in the optimal regime (m >> p lg p) efficiency reaches a
        // healthy constant; the CM-2 alpha/gamma ratio (~86) means the
        // crossover constant is large, so we check saturation at the top
        // of the sweep rather than right at the threshold.
        let (m_top, e_top) = *effs.last().expect("non-empty sweep");
        assert!(in_optimal_regime(m_top, p));
        assert!(e_top > 0.5, "constant-factor efficiency at m = {m_top}: {effs:?}");
    }

    #[test]
    fn parallel_time_tracks_lower_bound() {
        // Claim 3: T_par = O(m/p + lg p) — compare simulated time to the
        // lower bound across machine sizes at fixed m.
        let cost = CostModel::cm2();
        let n = 64usize;
        for dim in [2u32, 4, 6, 8] {
            let l = layout(n, dim);
            let m = DistMatrix::from_fn(l.clone(), |i, j| (i + j) as f64);
            let mut hc = Hypercube::new(dim, cost);
            let _ = primitives::reduce(&mut hc, &m, Axis::Row, Sum);
            let lb = lower_bound(n * n, 1 << dim, &cost);
            let ratio = hc.elapsed_us() / lb;
            assert!(
                ratio < 12.0,
                "dim {dim}: simulated {} vs lower bound {lb} (ratio {ratio:.1})",
                hc.elapsed_us()
            );
        }
    }
}
