//! `insert`: overwrite one row (or column) of a matrix with a vector.

use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::route::{route_blocks, Block};
use vmp_layout::{Axis, Placement, VecEmbedding};

use crate::elem::Scalar;
use crate::matrix::DistMatrix;
use crate::vector::DistVector;

/// Overwrite row `index` (`Axis::Row`) or column `index` (`Axis::Col`) of
/// `m` with `v`.
///
/// `v` must be aligned along `axis` with the same chunking as the matrix.
/// If the target grid line already holds `v` (replicated vector, or
/// concentrated on exactly the owning line) the write is **purely
/// local**; a vector concentrated elsewhere is moved by one blocked
/// routed step per differing cube dimension.
///
/// # Panics
/// Panics on linear vectors (remap first), chunking mismatches, or an
/// out-of-range `index`.
pub fn insert<T: Scalar>(
    hc: &mut Hypercube,
    m: &mut DistMatrix<T>,
    axis: Axis,
    index: usize,
    v: &DistVector<T>,
) {
    let layout = m.layout().clone();
    let grid = layout.grid().clone();
    let shape = layout.shape();
    assert!(
        index < shape.vector_count(axis),
        "{axis:?} index {index} out of range 0..{}",
        shape.vector_count(axis)
    );
    let (vaxis, placement) = match v.layout().embedding() {
        VecEmbedding::Aligned { axis: a, placement } => (*a, *placement),
        VecEmbedding::Linear => {
            panic!("insert requires an axis-aligned vector; remap the linear embedding first")
        }
    };
    assert_eq!(vaxis, axis, "vector orientation must match the insertion axis");
    assert_eq!(
        v.layout().dist(),
        layout.vector_dist(axis),
        "vector chunking must match the matrix's {axis:?} distribution"
    );

    // The grid line owning the target row/column.
    let target_line = match axis {
        Axis::Row => layout.rows().owner(index),
        Axis::Col => layout.cols().owner(index),
    };

    // Chunks available on the target line? (replicated, or concentrated
    // exactly there)
    let chunks_on_target: Vec<Vec<T>> = match placement {
        Placement::Replicated => target_line_chunks(v, axis, target_line),
        Placement::Concentrated(line) if line == target_line => {
            target_line_chunks(v, axis, target_line)
        }
        Placement::Concentrated(src_line) => {
            // Route each chunk from the source line to the target line.
            let p = grid.p();
            let mut outgoing: Vec<Vec<Block<T>>> = vec![Vec::new(); p];
            let parts = match axis {
                Axis::Row => grid.pc(),
                Axis::Col => grid.pr(),
            };
            for part in 0..parts {
                let (src, dst) = match axis {
                    Axis::Row => (grid.node_at(src_line, part), grid.node_at(target_line, part)),
                    Axis::Col => (grid.node_at(part, src_line), grid.node_at(part, target_line)),
                };
                outgoing[src].push(Block::new(dst, part as u64, v.locals()[src].to_vec()));
            }
            let arrived = route_blocks(hc, outgoing);
            let mut chunks = vec![Vec::new(); parts];
            for (node, blocks) in arrived.into_iter().enumerate() {
                for b in blocks {
                    let (gr, gc) = grid.grid_coords(node);
                    let part = match axis {
                        Axis::Row => gc,
                        Axis::Col => gr,
                    };
                    debug_assert_eq!(b.tag as usize, part);
                    chunks[part] = b.data;
                }
            }
            chunks
        }
    };

    // Local write on the target line.
    match axis {
        Axis::Row => {
            let li = layout.rows().local_index(index);
            for gc in 0..grid.pc() {
                let node = grid.node_at(target_line, gc);
                let (_, lc) = layout.local_shape(node);
                let chunk = &chunks_on_target[gc];
                debug_assert_eq!(chunk.len(), lc);
                m.locals_mut()[node][li * lc..(li + 1) * lc].copy_from_slice(chunk);
            }
            hc.charge_moves(layout.cols().max_count());
        }
        Axis::Col => {
            let lj = layout.cols().local_index(index);
            for gr in 0..grid.pr() {
                let node = grid.node_at(gr, target_line);
                let (lr, lc) = layout.local_shape(node);
                let chunk = &chunks_on_target[gr];
                debug_assert_eq!(chunk.len(), lr);
                for li in 0..lr {
                    m.locals_mut()[node][li * lc + lj] = chunk[li];
                }
            }
            hc.charge_moves(layout.rows().max_count());
        }
    }
}

/// The per-part chunks as seen on `line` (indexed by part).
fn target_line_chunks<T: Scalar>(v: &DistVector<T>, axis: Axis, line: usize) -> Vec<Vec<T>> {
    let grid = v.layout().grid();
    let parts = match axis {
        Axis::Row => grid.pc(),
        Axis::Col => grid.pr(),
    };
    (0..parts)
        .map(|part| {
            let node = match axis {
                Axis::Row => grid.node_at(line, part),
                Axis::Col => grid.node_at(part, line),
            };
            v.locals()[node].to_vec()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::{Dist, MatShape, MatrixLayout, ProcGrid, VectorLayout};

    fn setup(rows: usize, cols: usize, kind: Dist) -> (Hypercube, DistMatrix<f64>) {
        let layout = MatrixLayout::new(
            MatShape::new(rows, cols),
            ProcGrid::new(Cube::new(4), 2),
            kind,
            kind,
        );
        let m = DistMatrix::from_fn(layout, |i, j| (i * 100 + j) as f64);
        (Hypercube::new(4, CostModel::unit()), m)
    }

    fn row_vec(
        m: &DistMatrix<f64>,
        placement: Placement,
        f: impl FnMut(usize) -> f64,
    ) -> DistVector<f64> {
        let vl = VectorLayout::aligned(
            m.shape().cols,
            m.layout().grid().clone(),
            Axis::Row,
            placement,
            m.layout().cols().kind(),
        );
        DistVector::from_fn(vl, f)
    }

    #[test]
    fn insert_replicated_row_is_local() {
        let (mut hc, mut m) = setup(8, 6, Dist::Cyclic);
        let v = row_vec(&m, Placement::Replicated, |j| -(j as f64));
        insert(&mut hc, &mut m, Axis::Row, 3, &v);
        m.assert_consistent();
        for j in 0..6 {
            assert_eq!(m.get(3, j), -(j as f64));
        }
        for i in (0..8).filter(|&i| i != 3) {
            for j in 0..6 {
                assert_eq!(m.get(i, j), (i * 100 + j) as f64, "other rows untouched");
            }
        }
        assert_eq!(hc.counters().message_steps, 0);
    }

    #[test]
    fn insert_concentrated_on_owner_is_local() {
        let (mut hc, mut m) = setup(8, 6, Dist::Cyclic);
        let owner = m.layout().rows().owner(5);
        let v = row_vec(&m, Placement::Concentrated(owner), |j| 1000.0 + j as f64);
        insert(&mut hc, &mut m, Axis::Row, 5, &v);
        assert_eq!(hc.counters().message_steps, 0);
        for j in 0..6 {
            assert_eq!(m.get(5, j), 1000.0 + j as f64);
        }
    }

    #[test]
    fn insert_concentrated_elsewhere_routes_once() {
        let (mut hc, mut m) = setup(8, 6, Dist::Cyclic);
        let owner = m.layout().rows().owner(2);
        let other = (owner + 1) % m.layout().grid().pr();
        let v = row_vec(&m, Placement::Concentrated(other), |j| 7.0 * j as f64);
        insert(&mut hc, &mut m, Axis::Row, 2, &v);
        for j in 0..6 {
            assert_eq!(m.get(2, j), 7.0 * j as f64);
        }
        assert!(hc.counters().message_steps >= 1, "a routed move happened");
    }

    #[test]
    fn insert_column() {
        let (mut hc, mut m) = setup(7, 9, Dist::Block);
        let vl = VectorLayout::aligned(
            7,
            m.layout().grid().clone(),
            Axis::Col,
            Placement::Replicated,
            m.layout().rows().kind(),
        );
        let v = DistVector::from_fn(vl, |i| (i as f64).powi(2));
        insert(&mut hc, &mut m, Axis::Col, 4, &v);
        m.assert_consistent();
        for i in 0..7 {
            assert_eq!(m.get(i, 4), (i as f64).powi(2));
            assert_eq!(m.get(i, 3), (i * 100 + 3) as f64);
        }
    }

    #[test]
    fn row_swap_via_extract_insert() {
        // The composite Gaussian elimination uses for pivoting.
        use crate::primitives::extract;
        let (mut hc, mut m) = setup(8, 8, Dist::Cyclic);
        let r2 = extract(&mut hc, &m, Axis::Row, 2);
        let r6 = extract(&mut hc, &m, Axis::Row, 6);
        insert(&mut hc, &mut m, Axis::Row, 6, &r2);
        insert(&mut hc, &mut m, Axis::Row, 2, &r6);
        for j in 0..8 {
            assert_eq!(m.get(2, j), (600 + j) as f64);
            assert_eq!(m.get(6, j), (200 + j) as f64);
        }
    }

    #[test]
    #[should_panic(expected = "orientation must match")]
    fn insert_rejects_wrong_axis() {
        let (mut hc, mut m) = setup(6, 6, Dist::Cyclic);
        let vl = VectorLayout::aligned(
            6,
            m.layout().grid().clone(),
            Axis::Col,
            Placement::Replicated,
            Dist::Cyclic,
        );
        let v = DistVector::from_fn(vl, |_| 0.0);
        insert(&mut hc, &mut m, Axis::Row, 0, &v);
    }

    #[test]
    #[should_panic(expected = "chunking must match")]
    fn insert_rejects_mismatched_dist() {
        let (mut hc, mut m) = setup(6, 6, Dist::Cyclic);
        let vl = VectorLayout::aligned(
            6,
            m.layout().grid().clone(),
            Axis::Row,
            Placement::Replicated,
            Dist::Block,
        );
        let v = DistVector::from_fn(vl, |_| 0.0);
        insert(&mut hc, &mut m, Axis::Row, 0, &v);
    }
}
