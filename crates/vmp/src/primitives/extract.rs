//! `extract`: pull one row (or column) of a matrix out as a vector.

use vmp_hypercube::machine::Hypercube;
use vmp_layout::{Axis, Placement, VectorLayout};

use crate::elem::Scalar;
use crate::matrix::DistMatrix;
use crate::vector::DistVector;

/// Extract row `index` (`Axis::Row`) or column `index` (`Axis::Col`) of
/// `m` as a vector.
///
/// The row physically lives on one grid row — the one owning matrix row
/// `index` — so extraction is a **local copy** on those nodes and the
/// result comes back **concentrated** on that grid line. That embedding
/// is exactly what the data placement dictates; replicating it (to feed
/// `distribute` or an elementwise combinator) is an explicit embedding
/// change: call [`extract_replicated`] or [`crate::remap::replicate`].
pub fn extract<T: Scalar>(
    hc: &mut Hypercube,
    m: &DistMatrix<T>,
    axis: Axis,
    index: usize,
) -> DistVector<T> {
    let layout = m.layout();
    let grid = layout.grid().clone();
    let shape = layout.shape();
    let p = grid.p();
    let mut locals: Vec<Vec<T>> = vec![Vec::new(); p];

    match axis {
        Axis::Row => {
            assert!(index < shape.rows, "row {index} out of range 0..{}", shape.rows);
            let gr = layout.rows().owner(index);
            let li = layout.rows().local_index(index);
            for gc in 0..grid.pc() {
                let node = grid.node_at(gr, gc);
                let (_, lc) = layout.local_shape(node);
                locals[node] = m.locals()[node][li * lc..(li + 1) * lc].to_vec();
            }
            hc.charge_moves(layout.cols().max_count());
            let vl = VectorLayout::aligned(
                shape.cols,
                grid,
                Axis::Row,
                Placement::Concentrated(gr),
                layout.cols().kind(),
            );
            DistVector::from_parts(vl, locals)
        }
        Axis::Col => {
            assert!(index < shape.cols, "column {index} out of range 0..{}", shape.cols);
            let gc = layout.cols().owner(index);
            let lj = layout.cols().local_index(index);
            for gr in 0..grid.pr() {
                let node = grid.node_at(gr, gc);
                let (lr, lc) = layout.local_shape(node);
                locals[node] = (0..lr).map(|li| m.locals()[node][li * lc + lj]).collect();
            }
            hc.charge_moves(layout.rows().max_count());
            let vl = VectorLayout::aligned(
                shape.rows,
                grid,
                Axis::Col,
                Placement::Concentrated(gc),
                layout.rows().kind(),
            );
            DistVector::from_parts(vl, locals)
        }
    }
}

/// [`extract`] followed by replication across the orthogonal grid dims —
/// the common composite when the extracted line immediately feeds an
/// elementwise combination (Gaussian elimination's pivot row, simplex's
/// pivot column). One local copy + `d_r` (resp. `d_c`) broadcast steps.
pub fn extract_replicated<T: Scalar>(
    hc: &mut Hypercube,
    m: &DistMatrix<T>,
    axis: Axis,
    index: usize,
) -> DistVector<T> {
    let v = extract(hc, m, axis, index);
    crate::remap::replicate(hc, &v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::{Dist, MatShape, MatrixLayout, ProcGrid, VecEmbedding};

    fn setup(rows: usize, cols: usize, kind: Dist) -> (Hypercube, DistMatrix<f64>) {
        let layout = MatrixLayout::new(
            MatShape::new(rows, cols),
            ProcGrid::new(Cube::new(4), 2),
            kind,
            kind,
        );
        let m = DistMatrix::from_fn(layout, |i, j| (i * 100 + j) as f64);
        (Hypercube::new(4, CostModel::unit()), m)
    }

    #[test]
    fn extract_row_returns_the_row_concentrated() {
        for kind in [Dist::Block, Dist::Cyclic] {
            let (mut hc, m) = setup(9, 7, kind);
            for index in [0usize, 4, 8] {
                let v = extract(&mut hc, &m, Axis::Row, index);
                v.assert_consistent();
                assert_eq!(v.n(), 7);
                assert_eq!(
                    v.to_dense(),
                    (0..7).map(|j| (index * 100 + j) as f64).collect::<Vec<_>>()
                );
                let expected_line = m.layout().rows().owner(index);
                match v.layout().embedding() {
                    VecEmbedding::Aligned {
                        axis: Axis::Row,
                        placement: Placement::Concentrated(l),
                    } => {
                        assert_eq!(*l, expected_line);
                    }
                    other => panic!("unexpected embedding {other:?}"),
                }
                assert_eq!(v.layout().stored_elements(), 7, "single copy");
            }
        }
    }

    #[test]
    fn extract_col_returns_the_column() {
        let (mut hc, m) = setup(8, 6, Dist::Cyclic);
        let v = extract(&mut hc, &m, Axis::Col, 3);
        v.assert_consistent();
        assert_eq!(v.n(), 8);
        assert_eq!(v.to_dense(), (0..8).map(|i| (i * 100 + 3) as f64).collect::<Vec<_>>());
    }

    #[test]
    fn extract_is_communication_free() {
        let (mut hc, m) = setup(8, 8, Dist::Block);
        let _ = extract(&mut hc, &m, Axis::Row, 5);
        assert_eq!(hc.counters().message_steps, 0);
        assert_eq!(hc.counters().elements_transferred, 0);
        assert!(hc.counters().local_moves > 0);
    }

    #[test]
    fn extract_replicated_broadcasts_dr_steps() {
        let (mut hc, m) = setup(8, 8, Dist::Cyclic);
        let v = extract_replicated(&mut hc, &m, Axis::Row, 2);
        v.assert_consistent();
        assert_eq!(hc.counters().message_steps, 2, "d_r = 2 broadcast steps");
        assert_eq!(v.layout().stored_elements(), 8 * 4, "replicated on every grid row");
        assert_eq!(v.to_dense(), (0..8).map(|j| (200 + j) as f64).collect::<Vec<_>>());
    }

    #[test]
    fn insert_of_extract_is_identity() {
        use crate::primitives::insert;
        let (mut hc, m) = setup(6, 6, Dist::Cyclic);
        let mut m2 = m.clone();
        let v = extract(&mut hc, &m, Axis::Row, 4);
        insert(&mut hc, &mut m2, Axis::Row, 4, &v);
        assert_eq!(m2.to_dense(), m.to_dense());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn extract_checks_bounds() {
        let (mut hc, m) = setup(4, 4, Dist::Block);
        let _ = extract(&mut hc, &m, Axis::Row, 4);
    }
}
