//! `distribute`: replicate a vector across all rows (or columns) of a new
//! matrix — the APL-style broadcast, and the inverse of `reduce`.

use vmp_hypercube::collective;
use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::slab::NodeSlab;
use vmp_layout::{Axis, Dist, MatShape, MatrixLayout, Placement, VecEmbedding};

use crate::elem::Scalar;
use crate::matrix::DistMatrix;
use crate::vector::DistVector;

/// Build the `count x n` (Row) or `n x count` (Col) matrix whose every
/// row (column) is `v`.
///
/// `v` must be axis-aligned. A **replicated** vector distributes with no
/// communication at all: each node already holds the chunk its block
/// needs and just replicates it locally — this zero-communication path is
/// the payoff of the replicated embedding `reduce` returns. A
/// **concentrated** vector first broadcasts its chunks along the
/// orthogonal grid dims (`d_r` tree steps). Linear vectors must be
/// remapped first ([`crate::remap::remap_vector`]) — the explicit
/// embedding change the paper describes.
///
/// `stack_kind` chooses the distribution of the *new* axis (the `count`
/// rows for `Axis::Row`).
///
/// # Panics
/// Panics if `v` is linear-embedded.
pub fn distribute<T: Scalar>(
    hc: &mut Hypercube,
    v: &DistVector<T>,
    count: usize,
    stack_kind: Dist,
) -> DistMatrix<T> {
    let vl = v.layout().clone();
    let (axis, placement) = match vl.embedding() {
        VecEmbedding::Aligned { axis, placement } => (*axis, *placement),
        VecEmbedding::Linear => {
            panic!("distribute requires an axis-aligned vector; remap the linear embedding first")
        }
    };
    let grid = vl.grid().clone();

    // Get every node a copy of its chunk (one arena clone, no per-node
    // allocations).
    let mut chunks: NodeSlab<T> = v.locals().clone();
    if let Placement::Concentrated(line) = placement {
        let (dims, root) = match axis {
            Axis::Row => (grid.row_dims().to_vec(), grid.row_coord(line)),
            Axis::Col => (grid.col_dims().to_vec(), grid.col_coord(line)),
        };
        collective::broadcast_slab(hc, &mut chunks, &dims, root);
    }

    // Local replication into the block.
    let shape = match axis {
        Axis::Row => MatShape::new(count, vl.n()),
        Axis::Col => MatShape::new(vl.n(), count),
    };
    let layout = match axis {
        Axis::Row => MatrixLayout::new(shape, grid.clone(), stack_kind, vl.dist().kind()),
        Axis::Col => MatrixLayout::new(shape, grid.clone(), vl.dist().kind(), stack_kind),
    };
    let p = grid.p();
    let total: usize = (0..p).map(|node| layout.local_len(node)).sum();
    let mut locals = NodeSlab::with_capacity(p, total);
    for node in 0..p {
        let (lr, lc) = layout.local_shape(node);
        let chunk = &chunks[node];
        locals.push_seg_with(|buf| match axis {
            Axis::Row => {
                debug_assert_eq!(chunk.len(), lc, "node {node} chunk/column mismatch");
                for _ in 0..lr {
                    buf.extend_from_slice(chunk);
                }
            }
            Axis::Col => {
                debug_assert_eq!(chunk.len(), lr, "node {node} chunk/row mismatch");
                for &x in chunk {
                    buf.extend(std::iter::repeat_n(x, lc));
                }
            }
        });
    }
    hc.charge_moves(layout.max_local_len());
    DistMatrix::from_slab(layout, locals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::{ProcGrid, VectorLayout};

    fn machine(dim: u32) -> Hypercube {
        Hypercube::new(dim, CostModel::unit())
    }

    fn grid(dim: u32, dr: u32) -> ProcGrid {
        ProcGrid::new(Cube::new(dim), dr)
    }

    #[test]
    fn distribute_replicated_row_vector_is_communication_free() {
        let mut hc = machine(4);
        let vl =
            VectorLayout::aligned(9, grid(4, 2), Axis::Row, Placement::Replicated, Dist::Cyclic);
        let v = DistVector::from_fn(vl, |j| j as f64 * 1.5);
        let m = distribute(&mut hc, &v, 6, Dist::Cyclic);
        m.assert_consistent();
        assert_eq!(m.shape(), MatShape::new(6, 9));
        for i in 0..6 {
            for j in 0..9 {
                assert_eq!(m.get(i, j), j as f64 * 1.5);
            }
        }
        assert_eq!(hc.counters().message_steps, 0, "no communication");
        assert!(hc.counters().local_moves > 0, "local replication is charged");
    }

    #[test]
    fn distribute_concentrated_broadcasts_first() {
        let mut hc = machine(4);
        let vl = VectorLayout::aligned(
            8,
            grid(4, 2),
            Axis::Row,
            Placement::Concentrated(3),
            Dist::Block,
        );
        let v = DistVector::from_fn(vl, |j| (j * j) as i64);
        let m = distribute(&mut hc, &v, 5, Dist::Block);
        m.assert_consistent();
        for i in 0..5 {
            for j in 0..8 {
                assert_eq!(m.get(i, j), (j * j) as i64);
            }
        }
        assert_eq!(hc.counters().message_steps, 2, "d_r broadcast steps");
    }

    #[test]
    fn distribute_col_vector_stacks_columns() {
        let mut hc = machine(4);
        let vl =
            VectorLayout::aligned(7, grid(4, 2), Axis::Col, Placement::Replicated, Dist::Cyclic);
        let v = DistVector::from_fn(vl, |i| i as i64 - 3);
        let m = distribute(&mut hc, &v, 4, Dist::Block);
        m.assert_consistent();
        assert_eq!(m.shape(), MatShape::new(7, 4));
        for i in 0..7 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), i as i64 - 3);
            }
        }
    }

    #[test]
    fn reduce_of_distribute_scales_by_count() {
        // reduce(distribute(v, r), +) == r * v — the paper's algebraic
        // identity connecting the two primitives.
        use crate::elem::Sum;
        use crate::primitives::reduce;
        let mut hc = machine(4);
        let vl =
            VectorLayout::aligned(10, grid(4, 2), Axis::Row, Placement::Replicated, Dist::Cyclic);
        let v = DistVector::from_fn(vl, |j| (j + 1) as f64);
        let m = distribute(&mut hc, &v, 8, Dist::Cyclic);
        let w = reduce(&mut hc, &m, Axis::Row, Sum);
        for j in 0..10 {
            assert!((w.get(j) - 8.0 * (j + 1) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn distribute_on_single_node() {
        let mut hc = machine(0);
        let vl =
            VectorLayout::aligned(3, grid(0, 0), Axis::Row, Placement::Replicated, Dist::Block);
        let v = DistVector::from_fn(vl, |j| j as i32);
        let m = distribute(&mut hc, &v, 2, Dist::Block);
        assert_eq!(m.to_dense(), vec![vec![0, 1, 2], vec![0, 1, 2]]);
    }

    #[test]
    #[should_panic(expected = "axis-aligned")]
    fn distribute_rejects_linear_vectors() {
        let mut hc = machine(2);
        let vl = VectorLayout::linear(4, grid(2, 1), Dist::Block);
        let v = DistVector::from_fn(vl, |j| j as i32);
        let _ = distribute(&mut hc, &v, 2, Dist::Block);
    }
}
