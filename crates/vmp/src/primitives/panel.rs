//! Panel (multi-row / multi-column) extensions of `extract`.
//!
//! The four primitives operate on single rows and columns; level-3
//! computations (blocked matrix multiply, blocked elimination) want
//! `b`-wide *panels* so that one tree of start-ups carries `b` lines.
//! These are the natural extension of `extract_replicated` — the same
//! communication structure, wider payloads — and the building block of
//! [`panel_gemm`], the local `C += A_panel * B_panel` kernel.

use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::route::{route_blocks, Block};

use crate::elem::{Numeric, Scalar};
use crate::matrix::DistMatrix;

/// A replicated column panel: columns `[t0, t0+width)` of a matrix, held
/// at every node as a row-major `local_rows x width` slab aligned with
/// the node's local rows.
#[derive(Debug, Clone)]
pub struct ColPanel<T> {
    /// First global column of the panel.
    pub t0: usize,
    /// Panel width.
    pub width: usize,
    slabs: Vec<Vec<T>>,
}

impl<T: Scalar> ColPanel<T> {
    /// The node's slab (row-major `local_rows x width`).
    #[must_use]
    pub fn slab(&self, node: usize) -> &[T] {
        &self.slabs[node]
    }
}

/// A replicated row panel: rows `[t0, t0+width)`, held at every node as
/// a row-major `width x local_cols` slab aligned with local columns.
#[derive(Debug, Clone)]
pub struct RowPanel<T> {
    /// First global row of the panel.
    pub t0: usize,
    /// Panel height.
    pub width: usize,
    slabs: Vec<Vec<T>>,
}

impl<T: Scalar> RowPanel<T> {
    /// The node's slab (row-major `width x local_cols`).
    #[must_use]
    pub fn slab(&self, node: usize) -> &[T] {
        &self.slabs[node]
    }
}

/// Extract columns `[t0, t0+width)` of `m`, replicated across grid
/// columns: one blocked routed fan-out carrying the whole panel.
///
/// # Panics
/// Panics if the column range exceeds the matrix.
pub fn extract_col_panel_replicated<T: Numeric>(
    hc: &mut Hypercube,
    m: &DistMatrix<T>,
    t0: usize,
    width: usize,
) -> ColPanel<T> {
    let layout = m.layout().clone();
    assert!(t0 + width <= layout.shape().cols, "column panel out of range");
    let grid = layout.grid().clone();
    let p = grid.p();
    let mut outgoing: Vec<Vec<Block<T>>> = vec![Vec::new(); p];
    let mut max_packed = 0usize;
    for dt in 0..width {
        let j = t0 + dt;
        let gc = layout.cols().owner(j);
        let lj = layout.cols().local_index(j);
        for gr in 0..grid.pr() {
            let src = grid.node_at(gr, gc);
            let (lr, lc) = layout.local_shape(src);
            let chunk: Vec<T> = (0..lr).map(|li| m.locals()[src][li * lc + lj]).collect();
            max_packed = max_packed.max(chunk.len() * width);
            for dst_gc in 0..grid.pc() {
                let dst = grid.node_at(gr, dst_gc);
                outgoing[src].push(Block::new(dst, dt as u64, chunk.clone()));
            }
        }
    }
    hc.charge_moves(max_packed);
    let arrived = route_blocks(hc, outgoing);
    let slabs = (0..p)
        .map(|node| {
            let lr = layout.local_shape(node).0;
            let mut slab = vec![T::ZERO; lr * width];
            for bl in &arrived[node] {
                let dt = bl.tag as usize;
                for (li, &v) in bl.data.iter().enumerate() {
                    slab[li * width + dt] = v;
                }
            }
            slab
        })
        .collect();
    ColPanel { t0, width, slabs }
}

/// Extract rows `[t0, t0+width)` of `m`, replicated across grid rows.
///
/// # Panics
/// Panics if the row range exceeds the matrix.
pub fn extract_row_panel_replicated<T: Numeric>(
    hc: &mut Hypercube,
    m: &DistMatrix<T>,
    t0: usize,
    width: usize,
) -> RowPanel<T> {
    let layout = m.layout().clone();
    assert!(t0 + width <= layout.shape().rows, "row panel out of range");
    let grid = layout.grid().clone();
    let p = grid.p();
    let mut outgoing: Vec<Vec<Block<T>>> = vec![Vec::new(); p];
    let mut max_packed = 0usize;
    for dt in 0..width {
        let i = t0 + dt;
        let gr = layout.rows().owner(i);
        let li = layout.rows().local_index(i);
        for gc in 0..grid.pc() {
            let src = grid.node_at(gr, gc);
            let lc = layout.local_shape(src).1;
            let chunk: Vec<T> = m.locals()[src][li * lc..(li + 1) * lc].to_vec();
            max_packed = max_packed.max(chunk.len() * width);
            for dst_gr in 0..grid.pr() {
                let dst = grid.node_at(dst_gr, gc);
                outgoing[src].push(Block::new(dst, dt as u64, chunk.clone()));
            }
        }
    }
    hc.charge_moves(max_packed);
    let arrived = route_blocks(hc, outgoing);
    let slabs = (0..p)
        .map(|node| {
            let lc = layout.local_shape(node).1;
            let mut slab = vec![T::ZERO; width * lc];
            for bl in &arrived[node] {
                let dt = bl.tag as usize;
                slab[dt * lc..(dt + 1) * lc].copy_from_slice(&bl.data);
            }
            slab
        })
        .collect();
    RowPanel { t0, width, slabs }
}

/// Local blocked GEMM: `c += col_panel * row_panel` at every node. Both
/// panels must come from matrices whose row/column distributions match
/// `c`'s — which [`extract_col_panel_replicated`] /
/// [`extract_row_panel_replicated`] guarantee when the operands share a
/// grid and distribution rules.
///
/// # Panics
/// Panics if the panel widths differ or slab shapes do not match `c`'s
/// local blocks.
pub fn panel_gemm<T: Numeric>(
    hc: &mut Hypercube,
    c: &mut DistMatrix<T>,
    col_panel: &ColPanel<T>,
    row_panel: &RowPanel<T>,
) {
    assert_eq!(col_panel.width, row_panel.width, "panel widths must agree");
    let width = col_panel.width;
    let layout = c.layout().clone();
    let mut critical = 0usize;
    for node in 0..layout.grid().p() {
        let (lr, lc) = layout.local_shape(node);
        let a_slab = col_panel.slab(node);
        let b_slab = row_panel.slab(node);
        assert_eq!(a_slab.len(), lr * width, "column-panel slab shape at node {node}");
        assert_eq!(b_slab.len(), width * lc, "row-panel slab shape at node {node}");
        critical = critical.max(lr * lc * width);
    }
    let work = critical.saturating_mul(layout.grid().p());
    crate::par::for_each_node(c.locals_mut(), work, |node, buf| {
        let (lr, lc) = layout.local_shape(node);
        let a_slab = col_panel.slab(node);
        let b_slab = row_panel.slab(node);
        for li in 0..lr {
            for t in 0..width {
                let aval = a_slab[li * width + t];
                let brow = &b_slab[t * lc..(t + 1) * lc];
                let crow = &mut buf[li * lc..(li + 1) * lc];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv = *cv + aval * bv;
                }
            }
        }
    });
    hc.charge_flops(2 * critical);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::{Dist, MatShape, MatrixLayout, ProcGrid};

    fn setup(rows: usize, cols: usize, dim: u32) -> (Hypercube, DistMatrix<f64>) {
        let layout =
            MatrixLayout::cyclic(MatShape::new(rows, cols), ProcGrid::square(Cube::new(dim)));
        let m = DistMatrix::from_fn(layout, |i, j| (i * 100 + j) as f64);
        (Hypercube::new(dim, CostModel::cm2()), m)
    }

    #[test]
    fn col_panel_contains_the_columns() {
        let (mut hc, m) = setup(9, 11, 4);
        let panel = extract_col_panel_replicated(&mut hc, &m, 3, 4);
        let layout = m.layout();
        for node in 0..layout.grid().p() {
            let (lr, _) = layout.local_shape(node);
            let slab = panel.slab(node);
            assert_eq!(slab.len(), lr * 4);
            let (gr, _) = layout.grid().grid_coords(node);
            for li in 0..lr {
                let i = layout.rows().global_index(gr, li);
                for dt in 0..4 {
                    assert_eq!(slab[li * 4 + dt], (i * 100 + 3 + dt) as f64, "node {node}");
                }
            }
        }
    }

    #[test]
    fn row_panel_contains_the_rows() {
        let (mut hc, m) = setup(10, 7, 4);
        let panel = extract_row_panel_replicated(&mut hc, &m, 5, 3);
        let layout = m.layout();
        for node in 0..layout.grid().p() {
            let (_, lc) = layout.local_shape(node);
            let slab = panel.slab(node);
            assert_eq!(slab.len(), 3 * lc);
            let (_, gc) = layout.grid().grid_coords(node);
            for dt in 0..3 {
                for lj in 0..lc {
                    let j = layout.cols().global_index(gc, lj);
                    assert_eq!(slab[dt * lc + lj], ((5 + dt) * 100 + j) as f64);
                }
            }
        }
    }

    #[test]
    fn panel_gemm_accumulates_outer_products() {
        // c += A[:, 2..5] * B[2..5, :] checked against the dense formula.
        let (mut hc, a) = setup(6, 8, 2);
        let b_layout = MatrixLayout::cyclic(MatShape::new(8, 5), ProcGrid::square(Cube::new(2)));
        let b = DistMatrix::from_fn(b_layout, |i, j| (i + 2 * j) as f64);
        let c_layout = MatrixLayout::new(
            MatShape::new(6, 5),
            a.layout().grid().clone(),
            Dist::Cyclic,
            Dist::Cyclic,
        );
        let mut c = DistMatrix::constant(c_layout, 0.0f64);
        let cp = extract_col_panel_replicated(&mut hc, &a, 2, 3);
        let rp = extract_row_panel_replicated(&mut hc, &b, 2, 3);
        panel_gemm(&mut hc, &mut c, &cp, &rp);
        for i in 0..6 {
            for j in 0..5 {
                let expect: f64 = (2..5).map(|t| a.get(i, t) * b.get(t, j)).sum();
                assert!((c.get(i, j) - expect).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn width_one_panel_matches_extract_replicated() {
        use crate::primitives::extract_replicated;
        use vmp_layout::Axis;
        let (mut hc, m) = setup(8, 8, 4);
        let panel = extract_col_panel_replicated(&mut hc, &m, 5, 1);
        let col = extract_replicated(&mut hc, &m, Axis::Col, 5);
        for node in 0..m.layout().grid().p() {
            assert_eq!(panel.slab(node), &col_chunk(&col, node)[..]);
        }
    }

    fn col_chunk(v: &crate::vector::DistVector<f64>, node: usize) -> Vec<f64> {
        // Reconstruct the node's chunk via the public API.
        let layout = v.layout();
        let part = layout.part_of(node);
        (0..layout.local_len(node))
            .map(|slot| v.get(layout.dist().global_index(part, slot)))
            .collect()
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_panel_panics() {
        let (mut hc, m) = setup(4, 4, 2);
        let _ = extract_col_panel_replicated(&mut hc, &m, 2, 3);
    }
}
