//! The four vector-matrix primitives.
//!
//! The paper's contribution: four APL-like operations connecting dense
//! matrices and vectors, specified independently of machine size and
//! implemented over load-balanced embeddings on the hypercube:
//!
//! | primitive | here | communication structure |
//! |---|---|---|
//! | `reduce` | [`reduce`] / [`reduce_to`] | local fold + `d_r`-step (all)reduce over the grid-row dims |
//! | `distribute` | [`distribute`] | (optional `d_r`-step broadcast) + local replication |
//! | `extract` | [`extract`] / [`extract_replicated`] | local copy on the owning grid line (+ optional broadcast) |
//! | `insert` | [`insert`] | local write, or a blocked route between two grid lines |
//!
//! All four are `O(m/p)` local work plus `O(lg p)` blocked messages of
//! `O(ceil(n/p_c))` elements — which is why, for `m > p lg p`, the
//! processor-time product is within a constant of the serial cost (the
//! abstract's optimality claim; see `analysis` for the formulas and bench
//! F1/F2 for the measurements).
//!
//! Conventions: `Axis::Row` primitives relate a matrix to *row vectors*
//! (length = `cols`); `Axis::Col` to column vectors. Results come back in
//! the embedding the operation naturally produces (see each function);
//! embedding changes are explicit via [`crate::remap`] — the paper:
//! *"The primitives may indicate a change from one embedding to another."*

mod distribute;
mod extract;
mod insert;
mod panel;
mod reduce;

pub use distribute::distribute;
pub use extract::{extract, extract_replicated};
pub use insert::insert;
pub use panel::{
    extract_col_panel_replicated, extract_row_panel_replicated, panel_gemm, ColPanel, RowPanel,
};
pub use reduce::{reduce, reduce_to};
