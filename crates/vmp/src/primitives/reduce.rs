//! `reduce`: combine all rows (or columns) of a matrix into one vector.

use vmp_hypercube::collective;
use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::slab::NodeSlab;
use vmp_layout::{Axis, Placement, VectorLayout};

use crate::elem::{ReduceOp, Scalar};
use crate::matrix::DistMatrix;
use crate::vector::DistVector;

/// Fold every node's local block along `axis` into a partial vector:
/// for `Axis::Row`, partial `[lj] = op-fold over li`; for `Axis::Col`,
/// partial `[li] = op-fold over lj`. Returns the per-node partials (one
/// arena) and charges the local flops. The fold streams the block with
/// `chunks_exact` — contiguous row slices, same combine order as the
/// naive offset walk.
fn local_fold<T: Scalar, O: ReduceOp<T>>(
    hc: &mut Hypercube,
    m: &DistMatrix<T>,
    axis: Axis,
    op: O,
) -> NodeSlab<T> {
    let layout = m.layout();
    let p = layout.grid().p();
    let work = layout.max_local_len().saturating_mul(p);
    let locals = m.locals();
    let total_hint: usize = (0..p)
        .map(|node| {
            let (lr, lc) = layout.local_shape(node);
            match axis {
                Axis::Row => lc,
                Axis::Col => lr,
            }
        })
        .sum();
    let partials = crate::par::build_nodes(p, work, total_hint, |node, out| {
        let (lr, lc) = layout.local_shape(node);
        let buf = &locals[node];
        match axis {
            Axis::Row => {
                // `out` may already hold earlier nodes' segments (the
                // builder hands one shared buffer); fold into this
                // node's freshly appended suffix only.
                let start = out.len();
                out.extend(std::iter::repeat_with(|| op.identity()).take(lc));
                if lc > 0 {
                    let acc = &mut out[start..];
                    for row in buf.chunks_exact(lc) {
                        for (a, &v) in acc.iter_mut().zip(row) {
                            *a = op.combine(*a, v);
                        }
                    }
                }
            }
            Axis::Col => {
                if lc == 0 {
                    out.extend(std::iter::repeat_with(|| op.identity()).take(lr));
                } else {
                    out.reserve(lr);
                    for row in buf.chunks_exact(lc) {
                        let mut a = op.identity();
                        for &v in row {
                            a = op.combine(a, v);
                        }
                        out.push(a);
                    }
                }
            }
        }
    });
    hc.charge_flops(layout.max_local_len());
    partials
}

/// The dims the partials must be combined over, and the result layout
/// factory.
fn comm_dims(m_layout: &vmp_layout::MatrixLayout, axis: Axis) -> Vec<u32> {
    match axis {
        // Combining all matrix rows means combining across grid rows,
        // i.e. over the cube dims that encode the grid-row index.
        Axis::Row => m_layout.grid().row_dims().to_vec(),
        Axis::Col => m_layout.grid().col_dims().to_vec(),
    }
}

fn result_layout(
    m_layout: &vmp_layout::MatrixLayout,
    axis: Axis,
    placement: Placement,
) -> VectorLayout {
    let n = m_layout.shape().vector_len(axis);
    let kind = m_layout.vector_dist(axis).kind();
    VectorLayout::aligned(n, m_layout.grid().clone(), axis, placement, kind)
}

/// Reduce all rows (`Axis::Row`) or columns (`Axis::Col`) of `m` into one
/// vector with the commutative associative operator `op`.
///
/// The result comes back **aligned and replicated** — the embedding an
/// all-reduce produces for free, and the one `distribute` and the
/// elementwise `zip_axis` combinators consume without further
/// communication.
///
/// Cost: `gamma * ceil(n_r/p_r) * ceil(n_c/p_c)` local fold +
/// `d_r * (alpha + (beta + gamma) * ceil(n_c/p_c))` butterfly (Row case).
pub fn reduce<T: Scalar, O: ReduceOp<T>>(
    hc: &mut Hypercube,
    m: &DistMatrix<T>,
    axis: Axis,
    op: O,
) -> DistVector<T> {
    let mut partials = local_fold(hc, m, axis, op);
    let dims = comm_dims(m.layout(), axis);
    collective::allreduce_slab(hc, &mut partials, &dims, |a, b| op.combine(a, b));
    DistVector::from_slab(result_layout(m.layout(), axis, Placement::Replicated), partials)
}

/// As [`reduce`], but the result is **concentrated** on one grid line
/// (`line` = a grid-row index for `Axis::Row`, a grid-column index for
/// `Axis::Col`), using a binomial-tree reduction instead of a butterfly.
/// Same asymptotic cost; the non-replicated embedding is what you want
/// when the vector immediately leaves the matrix world.
pub fn reduce_to<T: Scalar, O: ReduceOp<T>>(
    hc: &mut Hypercube,
    m: &DistMatrix<T>,
    axis: Axis,
    op: O,
    line: usize,
) -> DistVector<T> {
    let mut partials = local_fold(hc, m, axis, op);
    let dims = comm_dims(m.layout(), axis);
    let grid = m.layout().grid();
    let root_coord = match axis {
        Axis::Row => grid.row_coord(line),
        Axis::Col => grid.col_coord(line),
    };
    collective::reduce_slab(hc, &mut partials, &dims, root_coord, |a, b| op.combine(a, b));
    DistVector::from_slab(result_layout(m.layout(), axis, Placement::Concentrated(line)), partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elem::{Max, Min, Sum};
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::{Dist, MatShape, MatrixLayout, ProcGrid};

    fn setup(
        rows: usize,
        cols: usize,
        dim: u32,
        dr: u32,
        kind: Dist,
    ) -> (Hypercube, DistMatrix<f64>) {
        let layout = MatrixLayout::new(
            MatShape::new(rows, cols),
            ProcGrid::new(Cube::new(dim), dr),
            kind,
            kind,
        );
        let m = DistMatrix::from_fn(layout, |i, j| ((i * 31 + j * 17) % 23) as f64 - 11.0);
        (Hypercube::new(dim, CostModel::unit()), m)
    }

    fn dense_reduce(
        m: &DistMatrix<f64>,
        axis: Axis,
        f: impl Fn(f64, f64) -> f64,
        id: f64,
    ) -> Vec<f64> {
        let d = m.to_dense();
        match axis {
            Axis::Row => {
                (0..m.shape().cols).map(|j| d.iter().fold(id, |acc, row| f(acc, row[j]))).collect()
            }
            Axis::Col => d.iter().map(|row| row.iter().fold(id, |acc, &v| f(acc, v))).collect(),
        }
    }

    #[test]
    fn reduce_rows_sums_columns() {
        for kind in [Dist::Block, Dist::Cyclic] {
            let (mut hc, m) = setup(12, 9, 4, 2, kind);
            let v = reduce(&mut hc, &m, Axis::Row, Sum);
            v.assert_consistent();
            assert_eq!(v.n(), 9);
            let expect = dense_reduce(&m, Axis::Row, |a, b| a + b, 0.0);
            for (a, b) in v.to_dense().iter().zip(&expect) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn reduce_cols_sums_rows() {
        let (mut hc, m) = setup(7, 13, 4, 1, Dist::Cyclic);
        let v = reduce(&mut hc, &m, Axis::Col, Sum);
        v.assert_consistent();
        assert_eq!(v.n(), 7);
        let expect = dense_reduce(&m, Axis::Col, |a, b| a + b, 0.0);
        for (a, b) in v.to_dense().iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn reduce_with_min_and_max() {
        let (mut hc, m) = setup(10, 10, 4, 2, Dist::Block);
        let vmax = reduce(&mut hc, &m, Axis::Row, Max);
        let vmin = reduce(&mut hc, &m, Axis::Col, Min);
        assert_eq!(vmax.to_dense(), dense_reduce(&m, Axis::Row, f64::max, f64::NEG_INFINITY));
        assert_eq!(vmin.to_dense(), dense_reduce(&m, Axis::Col, f64::min, f64::INFINITY));
    }

    #[test]
    fn reduce_to_concentrates_on_requested_line() {
        let (mut hc, m) = setup(8, 8, 4, 2, Dist::Cyclic);
        let v = reduce_to(&mut hc, &m, Axis::Row, Sum, 2);
        v.assert_consistent();
        match v.layout().embedding() {
            vmp_layout::VecEmbedding::Aligned { placement: Placement::Concentrated(2), .. } => {}
            other => panic!("unexpected embedding {other:?}"),
        }
        let expect = dense_reduce(&m, Axis::Row, |a, b| a + b, 0.0);
        for (a, b) in v.to_dense().iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(v.layout().stored_elements(), 8, "exactly one copy");
    }

    #[test]
    fn reduce_charges_dr_message_steps() {
        let (mut hc, m) = setup(16, 16, 4, 3, Dist::Block);
        let _ = reduce(&mut hc, &m, Axis::Row, Sum);
        assert_eq!(hc.counters().message_steps, 3, "d_r butterfly steps");
        let (mut hc2, m2) = setup(16, 16, 4, 3, Dist::Block);
        let _ = reduce(&mut hc2, &m2, Axis::Col, Sum);
        assert_eq!(hc2.counters().message_steps, 1, "d_c butterfly steps");
    }

    #[test]
    fn reduce_on_single_node_machine() {
        let (mut hc, m) = setup(5, 4, 0, 0, Dist::Block);
        let v = reduce(&mut hc, &m, Axis::Row, Sum);
        let expect = dense_reduce(&m, Axis::Row, |a, b| a + b, 0.0);
        assert_eq!(v.to_dense(), expect);
        assert_eq!(hc.counters().message_steps, 0, "no communication on p = 1");
    }

    #[test]
    fn reduce_tall_skinny_and_wide_flat() {
        let (mut hc, m) = setup(64, 2, 4, 2, Dist::Cyclic);
        let v = reduce(&mut hc, &m, Axis::Row, Sum);
        let expect = dense_reduce(&m, Axis::Row, |a, b| a + b, 0.0);
        for (a, b) in v.to_dense().iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
        let (mut hc2, m2) = setup(2, 64, 4, 2, Dist::Cyclic);
        let w = reduce(&mut hc2, &m2, Axis::Col, Sum);
        let expect2 = dense_reduce(&m2, Axis::Col, |a, b| a + b, 0.0);
        for (a, b) in w.to_dense().iter().zip(&expect2) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
