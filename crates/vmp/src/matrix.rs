//! The distributed dense matrix.

use vmp_hypercube::slab::NodeSlab;
use vmp_layout::{MatShape, MatrixLayout};

use crate::elem::Scalar;

/// A dense matrix distributed over the simulated machine according to a
/// [`MatrixLayout`]. Each node stores its block row-major in local slot
/// order; the container really holds all the data (the simulation is
/// functional), and host-side accessors (`get`, `to_dense`) exist for
/// tests and I/O — they charge nothing and model nothing.
///
/// Storage is a single arena-backed [`NodeSlab`] — one contiguous
/// allocation for all nodes' blocks — so local kernels stream over
/// contiguous memory and constructing a matrix costs one allocation, not
/// `p`. See DESIGN.md § Data plane.
#[derive(Debug, Clone, PartialEq)]
pub struct DistMatrix<T> {
    layout: MatrixLayout,
    locals: NodeSlab<T>,
}

impl<T: Scalar> DistMatrix<T> {
    /// Materialise a matrix from `f(i, j)` (host-side initialisation; no
    /// machine charge — loading data onto the machine is outside the
    /// paper's measurements).
    #[must_use]
    pub fn from_fn(layout: MatrixLayout, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let p = layout.grid().p();
        let total: usize = (0..p).map(|node| layout.local_len(node)).sum();
        let mut locals = NodeSlab::with_capacity(p, total);
        for node in 0..p {
            locals.push_seg_with(|buf| {
                for (i, j, off) in layout.local_elements(node) {
                    let _ = off;
                    buf.push(f(i, j));
                }
            });
        }
        DistMatrix { layout, locals }
    }

    /// A matrix with every element `value`.
    #[must_use]
    pub fn constant(layout: MatrixLayout, value: T) -> Self {
        Self::from_fn(layout, |_, _| value)
    }

    /// Materialise from a dense row-major `rows x cols` host matrix.
    ///
    /// # Panics
    /// Panics if `dense` does not match the layout's shape.
    #[must_use]
    pub fn from_dense(layout: MatrixLayout, dense: &[Vec<T>]) -> Self {
        let shape = layout.shape();
        assert_eq!(dense.len(), shape.rows, "row count mismatch");
        for row in dense {
            assert_eq!(row.len(), shape.cols, "column count mismatch");
        }
        Self::from_fn(layout, |i, j| dense[i][j])
    }

    /// The embedding.
    #[must_use]
    pub fn layout(&self) -> &MatrixLayout {
        &self.layout
    }

    /// Matrix shape.
    #[must_use]
    pub fn shape(&self) -> MatShape {
        self.layout.shape()
    }

    /// Host-side read of element `(i, j)` (tests / output only).
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> T {
        let node = self.layout.owner(i, j);
        self.locals[node][self.layout.local_offset(i, j)]
    }

    /// Host-side copy to a dense row-major matrix (tests / output only).
    #[must_use]
    pub fn to_dense(&self) -> Vec<Vec<T>> {
        let shape = self.shape();
        let mut dense: Vec<Vec<Option<T>>> = vec![vec![None; shape.cols]; shape.rows];
        for (node, buf) in self.locals.iter_segs().enumerate() {
            for (i, j, off) in self.layout.local_elements(node) {
                dense[i][j] = Some(buf[off]);
            }
        }
        dense
            .into_iter()
            .map(|row| row.into_iter().map(|v| v.expect("layout covers all elements")).collect())
            .collect()
    }

    /// Per-node local blocks (crate-internal: the primitives operate on
    /// these; applications go through the primitives). Node `n`'s block
    /// is the slice `locals()[n]`.
    pub(crate) fn locals(&self) -> &NodeSlab<T> {
        &self.locals
    }

    /// Mutable per-node local blocks (crate-internal).
    pub(crate) fn locals_mut(&mut self) -> &mut NodeSlab<T> {
        &mut self.locals
    }

    /// Assemble from nested per-node buffers (crate-internal).
    pub(crate) fn from_parts(layout: MatrixLayout, locals: Vec<Vec<T>>) -> Self {
        debug_assert_eq!(locals.len(), layout.grid().p());
        for (node, buf) in locals.iter().enumerate() {
            debug_assert_eq!(buf.len(), layout.local_len(node), "node {node} buffer length");
        }
        DistMatrix { layout, locals: NodeSlab::from_nested_owned(locals) }
    }

    /// Assemble directly from an arena (crate-internal; the hot path —
    /// no per-node allocations).
    pub(crate) fn from_slab(layout: MatrixLayout, locals: NodeSlab<T>) -> Self {
        debug_assert_eq!(locals.p(), layout.grid().p());
        for node in 0..locals.p() {
            debug_assert_eq!(
                locals.len_of(node),
                layout.local_len(node),
                "node {node} buffer length"
            );
        }
        DistMatrix { layout, locals }
    }

    /// Validate the invariant that every node holds exactly its layout's
    /// local elements. Cheap; used liberally by tests.
    pub fn assert_consistent(&self) {
        assert_eq!(self.locals.p(), self.layout.grid().p());
        for node in 0..self.locals.p() {
            assert_eq!(
                self.locals.len_of(node),
                self.layout.local_len(node),
                "node {node} buffer length"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::{Dist, ProcGrid};

    fn layout(rows: usize, cols: usize, dim: u32, dr: u32, kind: Dist) -> MatrixLayout {
        MatrixLayout::new(MatShape::new(rows, cols), ProcGrid::new(Cube::new(dim), dr), kind, kind)
    }

    #[test]
    fn from_fn_get_roundtrip() {
        for kind in [Dist::Block, Dist::Cyclic] {
            let m = DistMatrix::from_fn(layout(7, 9, 4, 2, kind), |i, j| (i * 100 + j) as i64);
            m.assert_consistent();
            for i in 0..7 {
                for j in 0..9 {
                    assert_eq!(m.get(i, j), (i * 100 + j) as i64);
                }
            }
        }
    }

    #[test]
    fn to_dense_matches_from_dense() {
        let dense: Vec<Vec<f64>> =
            (0..5).map(|i| (0..6).map(|j| (i as f64) * 2.5 - j as f64).collect()).collect();
        let m = DistMatrix::from_dense(layout(5, 6, 3, 1, Dist::Cyclic), &dense);
        assert_eq!(m.to_dense(), dense);
    }

    #[test]
    fn constant_fills_everything() {
        let m = DistMatrix::constant(layout(4, 4, 2, 1, Dist::Block), 7i32);
        assert!(m.to_dense().into_iter().flatten().all(|v| v == 7));
    }

    #[test]
    fn single_node_layout_works() {
        let m = DistMatrix::from_fn(layout(3, 3, 0, 0, Dist::Block), |i, j| (i + j) as i32);
        assert_eq!(m.get(2, 1), 3);
        m.assert_consistent();
    }

    #[test]
    fn storage_is_one_contiguous_arena() {
        let m = DistMatrix::from_fn(layout(8, 8, 3, 2, Dist::Cyclic), |i, j| (i * 8 + j) as i64);
        assert_eq!(m.locals().total_len(), 64, "all elements in one allocation");
        assert_eq!(m.locals().offsets().len(), m.layout().grid().p() + 1);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn from_dense_checks_shape() {
        let rows = vec![vec![1.0f64; 3]; 2];
        let _ = DistMatrix::from_dense(layout(3, 3, 1, 1, Dist::Block), &rows);
    }
}
