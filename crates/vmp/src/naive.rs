//! Naive implementations of the four primitives — the paper's baseline.
//!
//! The abstract's engineering headline: the primitive-based
//! implementation *"improved the running time of some of our applications
//! by almost an order of magnitude over a naive implementation."* The
//! naive implementation is the one every first CM program wrote: give
//! each element to a virtual processor and move data with the **general
//! router, one element per message**. Semantically these functions are
//! identical to [`crate::primitives`] (tests assert bit-equality); the
//! difference is purely *how* the data moves:
//!
//! | | optimized | naive |
//! |---|---|---|
//! | start-ups | `O(lg p)` blocked messages | one router injection **per element** |
//! | combining | tree/butterfly, `lg p` depth | serial fold at the destination |
//! | hot spots | none (balanced trees) | everyone hits the owning line's nodes |
//!
//! Bench T3/F3 measure the resulting gap under the CM-2 cost preset.

use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::router::{route_elements, ElemMsg};
use vmp_layout::{Axis, Dist, MatShape, MatrixLayout, Placement, VecEmbedding, VectorLayout};

use crate::elem::{ReduceOp, Scalar};
use crate::matrix::DistMatrix;
use crate::vector::DistVector;

/// Naive `reduce`: every node routes each element of its local partial
/// vector **individually** to the primary holder of the result chunk,
/// which folds arrivals serially. Result embedding matches
/// [`crate::primitives::reduce`] (replicated), with the replication also
/// done element-by-element through the router.
pub fn naive_reduce<T: Scalar, O: ReduceOp<T>>(
    hc: &mut Hypercube,
    m: &DistMatrix<T>,
    axis: Axis,
    op: O,
) -> DistVector<T> {
    let layout = m.layout().clone();
    let grid = layout.grid().clone();
    let p = grid.p();
    let n = layout.shape().vector_len(axis);
    let result_layout = VectorLayout::aligned(
        n,
        grid.clone(),
        axis,
        Placement::Replicated,
        layout.vector_dist(axis).kind(),
    );

    // Local fold (same as optimized: the obvious code is local here).
    let mut partials: Vec<Vec<T>> = Vec::with_capacity(p);
    for node in 0..p {
        let (lr, lc) = layout.local_shape(node);
        let buf = &m.locals()[node];
        let out_len = match axis {
            Axis::Row => lc,
            Axis::Col => lr,
        };
        let mut acc = vec![op.identity(); out_len];
        for li in 0..lr {
            for lj in 0..lc {
                let v = buf[li * lc + lj];
                let slot = match axis {
                    Axis::Row => lj,
                    Axis::Col => li,
                };
                acc[slot] = op.combine(acc[slot], v);
            }
        }
        partials.push(acc);
    }
    hc.charge_flops(layout.max_local_len());

    // Route every partial element individually to the primary holder of
    // its result index (grid line 0 of the orthogonal direction).
    let dist = result_layout.dist();
    let mut outgoing: Vec<Vec<ElemMsg<T>>> = vec![Vec::new(); p];
    for node in 0..p {
        let (gr, gc) = grid.grid_coords(node);
        let part = match axis {
            Axis::Row => gc,
            Axis::Col => gr,
        };
        let is_primary = match axis {
            Axis::Row => gr == 0,
            Axis::Col => gc == 0,
        };
        if is_primary {
            continue; // already home; folds locally below
        }
        for (slot, &v) in partials[node].iter().enumerate() {
            let i = dist.global_index(part, slot);
            let dst = result_layout.primary_holder(i);
            outgoing[node].push(ElemMsg::new(dst, (i * p + node) as u64, v));
        }
    }
    let (arrived, _) = route_elements(hc, outgoing);

    // Serial fold of arrivals at each primary node.
    let mut result: Vec<Vec<T>> = vec![Vec::new(); p];
    let mut max_folds = 0usize;
    for node in 0..p {
        let (gr, gc) = grid.grid_coords(node);
        let is_primary = match axis {
            Axis::Row => gr == 0,
            Axis::Col => gc == 0,
        };
        if !is_primary {
            continue;
        }
        let part = match axis {
            Axis::Row => gc,
            Axis::Col => gr,
        };
        let mut acc = std::mem::take(&mut partials[node]);
        max_folds = max_folds.max(arrived[node].len());
        for msg in &arrived[node] {
            let i = msg.tag as usize / p;
            let slot = dist.local_index(i);
            acc[slot] = op.combine(acc[slot], msg.val);
        }
        let _ = part;
        result[node] = acc;
    }
    hc.charge_flops(max_folds);

    // Replicate element-by-element through the router, too.
    naive_replicate_from_primary(hc, &result_layout, &mut result);
    DistVector::from_parts(result_layout, result)
}

/// Naive `distribute`: every node fetches each element of its chunk
/// individually from the vector's holders (hot spot on a concentrated
/// source), then replicates locally.
pub fn naive_distribute<T: Scalar>(
    hc: &mut Hypercube,
    v: &DistVector<T>,
    count: usize,
    stack_kind: Dist,
) -> DistMatrix<T> {
    let vl = v.layout().clone();
    let (axis, placement) = match vl.embedding() {
        VecEmbedding::Aligned { axis, placement } => (*axis, *placement),
        VecEmbedding::Linear => panic!("distribute requires an axis-aligned vector"),
    };
    let grid = vl.grid().clone();
    let p = grid.p();

    // Everyone needs a copy of its chunk; a naive program pulls each
    // element individually from the (single) holder.
    let mut chunks: Vec<Vec<T>> = v.locals().to_nested();
    if let Placement::Concentrated(line) = placement {
        let mut outgoing: Vec<Vec<ElemMsg<T>>> = vec![Vec::new(); p];
        for node in 0..p {
            let (gr, gc) = grid.grid_coords(node);
            let (src_ok, part) = match axis {
                Axis::Row => (gr == line, gc),
                Axis::Col => (gc == line, gr),
            };
            if !src_ok {
                continue;
            }
            // The holder pushes each element to every other node of its
            // grid line (orthogonal direction).
            let lines = match axis {
                Axis::Row => grid.pr(),
                Axis::Col => grid.pc(),
            };
            for other in (0..lines).filter(|&l| l != line) {
                let dst = match axis {
                    Axis::Row => grid.node_at(other, part),
                    Axis::Col => grid.node_at(part, other),
                };
                for (slot, &x) in v.locals()[node].iter().enumerate() {
                    outgoing[node].push(ElemMsg::new(dst, slot as u64, x));
                }
            }
        }
        let (arrived, _) = route_elements(hc, outgoing);
        for node in 0..p {
            if !arrived[node].is_empty() {
                chunks[node] = arrived[node].iter().map(|m| m.val).collect();
            }
        }
    }

    // Local replication (same as optimized).
    let shape = match axis {
        Axis::Row => MatShape::new(count, vl.n()),
        Axis::Col => MatShape::new(vl.n(), count),
    };
    let layout = match axis {
        Axis::Row => MatrixLayout::new(shape, grid.clone(), stack_kind, vl.dist().kind()),
        Axis::Col => MatrixLayout::new(shape, grid.clone(), vl.dist().kind(), stack_kind),
    };
    let mut locals: Vec<Vec<T>> = Vec::with_capacity(p);
    for node in 0..p {
        let (lr, lc) = layout.local_shape(node);
        let chunk = &chunks[node];
        let mut buf = Vec::with_capacity(lr * lc);
        match axis {
            Axis::Row => {
                for _ in 0..lr {
                    buf.extend_from_slice(chunk);
                }
            }
            Axis::Col => {
                for &x in chunk {
                    for _ in 0..lc {
                        buf.push(x);
                    }
                }
            }
        }
        locals.push(buf);
    }
    hc.charge_moves(layout.max_local_len());
    DistMatrix::from_parts(layout, locals)
}

/// Naive `extract` + replication: the owning grid line's nodes send each
/// element of the row individually to every other grid line — the "pivot
/// row fan-out" hot spot that motivated the blocked primitives.
pub fn naive_extract_replicated<T: Scalar>(
    hc: &mut Hypercube,
    m: &DistMatrix<T>,
    axis: Axis,
    index: usize,
) -> DistVector<T> {
    // Local pull of the line (same as optimized extract)...
    let v = crate::primitives::extract(hc, m, axis, index);
    let layout = v.layout().clone();
    let grid = layout.grid().clone();
    let p = grid.p();
    let line = match layout.embedding() {
        VecEmbedding::Aligned { placement: Placement::Concentrated(l), .. } => *l,
        _ => unreachable!("extract returns a concentrated vector"),
    };
    // ...then element-granular fan-out instead of a tree broadcast.
    let mut chunks = v.locals().to_nested();
    let mut outgoing: Vec<Vec<ElemMsg<T>>> = vec![Vec::new(); p];
    for node in 0..p {
        let (gr, gc) = grid.grid_coords(node);
        let (src_ok, part) = match axis {
            Axis::Row => (gr == line, gc),
            Axis::Col => (gc == line, gr),
        };
        if !src_ok {
            continue;
        }
        let lines = match axis {
            Axis::Row => grid.pr(),
            Axis::Col => grid.pc(),
        };
        for other in (0..lines).filter(|&l| l != line) {
            let dst = match axis {
                Axis::Row => grid.node_at(other, part),
                Axis::Col => grid.node_at(part, other),
            };
            for (slot, &x) in v.locals()[node].iter().enumerate() {
                outgoing[node].push(ElemMsg::new(dst, slot as u64, x));
            }
        }
    }
    let (arrived, _) = route_elements(hc, outgoing);
    for node in 0..p {
        if !arrived[node].is_empty() {
            chunks[node] = arrived[node].iter().map(|msg| msg.val).collect();
        }
    }
    DistVector::from_parts(layout.with_placement(Placement::Replicated), chunks)
}

/// Naive `insert`: each holder of the vector sends each element
/// individually to the matrix element's owner.
pub fn naive_insert<T: Scalar>(
    hc: &mut Hypercube,
    m: &mut DistMatrix<T>,
    axis: Axis,
    index: usize,
    v: &DistVector<T>,
) {
    let layout = m.layout().clone();
    let grid = layout.grid().clone();
    let p = grid.p();
    assert_eq!(
        v.layout().dist(),
        layout.vector_dist(axis),
        "vector chunking must match the matrix's {axis:?} distribution"
    );
    // Primary holders push each element to the owning matrix node.
    let mut outgoing: Vec<Vec<ElemMsg<T>>> = vec![Vec::new(); p];
    for src in 0..p {
        if v.locals()[src].is_empty() {
            continue;
        }
        let part = v.layout().part_of(src);
        let i0 = v.layout().dist().global_index(part, 0);
        if v.layout().primary_holder(i0) != src {
            continue;
        }
        for (slot, &x) in v.locals()[src].iter().enumerate() {
            let gi = v.layout().dist().global_index(part, slot);
            let (i, j) = match axis {
                Axis::Row => (index, gi),
                Axis::Col => (gi, index),
            };
            let dst = layout.owner(i, j);
            outgoing[src].push(ElemMsg::new(dst, layout.local_offset(i, j) as u64, x));
        }
    }
    let (arrived, _) = route_elements(hc, outgoing);
    for node in 0..p {
        for msg in &arrived[node] {
            m.locals_mut()[node][msg.tag as usize] = msg.val;
        }
    }
}

/// Element-granular replication of a vector from its primary line to all
/// lines (helper for [`naive_reduce`]).
fn naive_replicate_from_primary<T: Scalar>(
    hc: &mut Hypercube,
    layout: &VectorLayout,
    locals: &mut [Vec<T>],
) {
    let (axis, _) = match layout.embedding() {
        VecEmbedding::Aligned { axis, placement } => (*axis, *placement),
        VecEmbedding::Linear => return,
    };
    let grid = layout.grid().clone();
    let p = grid.p();
    let mut outgoing: Vec<Vec<ElemMsg<T>>> = vec![Vec::new(); p];
    for node in 0..p {
        let (gr, gc) = grid.grid_coords(node);
        let (is_primary, part) = match axis {
            Axis::Row => (gr == 0, gc),
            Axis::Col => (gc == 0, gr),
        };
        if !is_primary {
            continue;
        }
        let lines = match axis {
            Axis::Row => grid.pr(),
            Axis::Col => grid.pc(),
        };
        for other in 1..lines {
            let dst = match axis {
                Axis::Row => grid.node_at(other, part),
                Axis::Col => grid.node_at(part, other),
            };
            for (slot, &x) in locals[node].iter().enumerate() {
                outgoing[node].push(ElemMsg::new(dst, slot as u64, x));
            }
        }
    }
    let (arrived, _) = route_elements(hc, outgoing);
    for node in 0..p {
        if !arrived[node].is_empty() {
            locals[node] = arrived[node].iter().map(|m| m.val).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elem::Sum;
    use crate::primitives;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::ProcGrid;

    fn setup(rows: usize, cols: usize) -> (Hypercube, DistMatrix<f64>) {
        let layout = MatrixLayout::new(
            MatShape::new(rows, cols),
            ProcGrid::new(Cube::new(4), 2),
            Dist::Cyclic,
            Dist::Cyclic,
        );
        let m = DistMatrix::from_fn(layout, |i, j| ((i * 13 + j * 7) % 19) as f64 - 9.0);
        (Hypercube::new(4, CostModel::cm2()), m)
    }

    #[test]
    fn naive_reduce_matches_optimized() {
        let (mut hc_n, m) = setup(12, 10);
        let naive = naive_reduce(&mut hc_n, &m, Axis::Row, Sum);
        let mut hc_o = Hypercube::new(4, CostModel::cm2());
        let opt = primitives::reduce(&mut hc_o, &m, Axis::Row, Sum);
        naive.assert_consistent();
        assert_eq!(naive.layout(), opt.layout());
        for (a, b) in naive.to_dense().iter().zip(opt.to_dense()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(
            hc_n.elapsed_us() > hc_o.elapsed_us(),
            "naive {} should exceed optimized {}",
            hc_n.elapsed_us(),
            hc_o.elapsed_us()
        );
    }

    #[test]
    fn naive_reduce_col_axis() {
        let (mut hc, m) = setup(9, 11);
        let naive = naive_reduce(&mut hc, &m, Axis::Col, Sum);
        let mut hc_o = Hypercube::new(4, CostModel::cm2());
        let opt = primitives::reduce(&mut hc_o, &m, Axis::Col, Sum);
        for (a, b) in naive.to_dense().iter().zip(opt.to_dense()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn naive_distribute_matches_optimized() {
        let (mut hc, m) = setup(8, 8);
        let v = primitives::extract(&mut hc, &m, Axis::Row, 3);
        let mut hc_n = Hypercube::new(4, CostModel::cm2());
        let naive = naive_distribute(&mut hc_n, &v, 6, Dist::Cyclic);
        let mut hc_o = Hypercube::new(4, CostModel::cm2());
        let opt = primitives::distribute(&mut hc_o, &v, 6, Dist::Cyclic);
        naive.assert_consistent();
        assert_eq!(naive.to_dense(), opt.to_dense());
        assert!(hc_n.elapsed_us() > hc_o.elapsed_us());
    }

    #[test]
    fn naive_extract_replicated_matches_optimized() {
        let (mut hc_n, m) = setup(10, 10);
        let naive = naive_extract_replicated(&mut hc_n, &m, Axis::Row, 7);
        let mut hc_o = Hypercube::new(4, CostModel::cm2());
        let opt = primitives::extract_replicated(&mut hc_o, &m, Axis::Row, 7);
        naive.assert_consistent();
        assert_eq!(naive.layout(), opt.layout());
        assert_eq!(naive.to_dense(), opt.to_dense());
    }

    #[test]
    fn naive_insert_matches_optimized() {
        let (mut hc, m) = setup(8, 8);
        let v = primitives::extract_replicated(&mut hc, &m, Axis::Row, 1);
        let mut m_n = m.clone();
        let mut m_o = m.clone();
        let mut hc_n = Hypercube::new(4, CostModel::cm2());
        naive_insert(&mut hc_n, &mut m_n, Axis::Row, 6, &v);
        let mut hc_o = Hypercube::new(4, CostModel::cm2());
        primitives::insert(&mut hc_o, &mut m_o, Axis::Row, 6, &v);
        assert_eq!(m_n.to_dense(), m_o.to_dense());
    }

    #[test]
    fn the_gap_grows_with_problem_size() {
        // The headline: with more elements per processor, the per-element
        // router overhead piles up while blocked messages amortise.
        let ratio = |n: usize| {
            let layout = MatrixLayout::new(
                MatShape::new(n, n),
                ProcGrid::new(Cube::new(4), 2),
                Dist::Cyclic,
                Dist::Cyclic,
            );
            let m = DistMatrix::from_fn(layout, |i, j| (i + j) as f64);
            let mut hc_n = Hypercube::new(4, CostModel::cm2());
            let _ = naive_reduce(&mut hc_n, &m, Axis::Row, Sum);
            let mut hc_o = Hypercube::new(4, CostModel::cm2());
            let _ = primitives::reduce(&mut hc_o, &m, Axis::Row, Sum);
            hc_n.elapsed_us() / hc_o.elapsed_us()
        };
        let small = ratio(8);
        let large = ratio(64);
        assert!(large > small, "gap should grow: small {small:.1}x, large {large:.1}x");
        assert!(large > 3.0, "large problems should show a clear gap, got {large:.1}x");
    }
}
