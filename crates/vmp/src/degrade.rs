//! Applying graceful degradation to a machine.
//!
//! [`vmp_layout::DegradedMap`] is the address arithmetic (which healthy
//! neighbour hosts each dead node); this module performs the remap on a
//! [`Hypercube`]: it charges the one-hop migration of every dead node's
//! resident elements to its host, records the migrated volume, and
//! installs the host map so that subsequent traffic between co-hosted
//! logical nodes is local and local compute serializes by the host
//! multiplicity. The logical cube the primitives address never changes,
//! so every primitive keeps producing bit-identical results at reduced
//! physical capacity — the tests below assert exactly that.

use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::NodeId;
use vmp_layout::DegradedMap;

/// Apply single-hop concentration for `dead` nodes on `hc`.
///
/// `resident_elements[n]` is the number of elements currently resident
/// on logical node `n` across all live distributed objects (sum of
/// their local buffer lengths) — the volume that must physically move
/// to the host. All migrations travel disjoint neighbour links, so the
/// move is charged as one blocked message superstep of the largest
/// block, and the volume is recorded under the `migrated_elements`
/// counter.
///
/// Returns the map so callers can reason about the new embedding.
///
/// # Panics
/// Panics if `resident_elements.len() != hc.p()` or the dead set is not
/// recoverable by single-hop concentration (see
/// [`DegradedMap::concentrate`]).
pub fn apply_degradation(
    hc: &mut Hypercube,
    dead: &[NodeId],
    resident_elements: &[usize],
) -> DegradedMap {
    assert_eq!(resident_elements.len(), hc.p(), "one resident size per node expected");
    let map = DegradedMap::concentrate(hc.cube(), dead);
    let pairs = map.migration_pairs();

    let mut max_block = 0usize;
    let mut total: u64 = 0;
    for &(dead_node, _host) in &pairs {
        let len = resident_elements[dead_node];
        max_block = max_block.max(len);
        total += len as u64;
    }
    if total > 0 {
        // One hop each, disjoint links, all in parallel.
        hc.charge_message_step(max_block, total);
    }
    hc.note_migration(total);
    for &(dead_node, host) in &pairs {
        hc.remap_node(dead_node, host);
    }
    map
}

/// Per-node resident element counts of one buffer set; add several
/// calls together to cover all live objects.
#[must_use]
pub fn resident_sizes<T>(locals: &vmp_hypercube::slab::NodeSlab<T>) -> Vec<usize> {
    (0..locals.p()).map(|node| locals.len_of(node)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elem::Sum;
    use crate::matrix::DistMatrix;
    use crate::primitives::{distribute, extract, insert, reduce};
    use vmp_hypercube::cost::CostModel;
    use vmp_layout::{Axis, Dist, MatShape, MatrixLayout, ProcGrid};

    type Results = (Vec<f64>, Vec<f64>, Vec<Vec<f64>>, Vec<Vec<f64>>);

    fn machine(dim: u32) -> Hypercube {
        Hypercube::new(dim, CostModel::unit())
    }

    fn sample_matrix(hc: &Hypercube) -> DistMatrix<f64> {
        let layout = MatrixLayout::new(
            MatShape::new(9, 7),
            ProcGrid::square(hc.cube()),
            Dist::Cyclic,
            Dist::Cyclic,
        );
        DistMatrix::from_fn(layout, |i, j| ((i * 31 + j * 17) as f64).sin())
    }

    /// The workload whose results must survive degradation bit-exactly:
    /// all four primitives, chained.
    fn run_primitives(hc: &mut Hypercube, m: &DistMatrix<f64>) -> Results {
        let colsum = reduce(hc, m, Axis::Row, Sum);
        let row3 = extract(hc, m, Axis::Row, 3);
        let mut m2 = m.clone();
        insert(hc, &mut m2, Axis::Row, 1, &row3);
        let stacked = distribute(hc, &row3, 4, Dist::Cyclic);
        (colsum.to_dense(), row3.to_dense(), m2.to_dense(), stacked.to_dense())
    }

    #[test]
    fn primitives_bit_identical_under_degradation() {
        let mut healthy = machine(4);
        let m_h = sample_matrix(&healthy);
        let want = run_primitives(&mut healthy, &m_h);

        let mut degraded = machine(4);
        let m_d = sample_matrix(&degraded);
        let map = apply_degradation(&mut degraded, &[5], &resident_sizes(m_d.locals()));
        assert_eq!(map.load_factor(), 2);
        let got = run_primitives(&mut degraded, &m_d);

        assert_eq!(want, got, "degraded run must be bit-identical");
        assert_eq!(degraded.counters().node_remaps, 1);
        assert!(degraded.counters().migrated_elements > 0, "node 5 held data");
        // The doubled-up host serializes compute: strictly slower.
        assert!(degraded.elapsed_us() > healthy.elapsed_us());
    }

    #[test]
    fn degradation_with_empty_node_is_free_traffic() {
        let mut hc = machine(2);
        // No resident data anywhere: remap alone, no migration charge.
        let map = apply_degradation(&mut hc, &[3], &[0, 0, 0, 0]);
        assert_eq!(hc.counters().migrated_elements, 0);
        assert_eq!(hc.counters().message_steps, 0);
        assert_eq!(hc.counters().node_remaps, 1);
        assert_eq!(hc.host_of(3), map.host_of(3));
    }

    #[test]
    fn migration_volume_matches_dead_nodes_blocks() {
        let mut hc = machine(3);
        let m = sample_matrix(&hc);
        let sizes = resident_sizes(m.locals());
        let expect: u64 = (sizes[2] + sizes[6]) as u64;
        apply_degradation(&mut hc, &[2, 6], &sizes);
        assert_eq!(hc.counters().migrated_elements, expect);
        assert_eq!(hc.counters().node_remaps, 2);
    }
}
