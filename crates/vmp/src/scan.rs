//! Vector scans (parallel prefix) and segmented operations.
//!
//! Scans are the Connection Machine's signature operation (Blelloch's
//! scan model — the same authors' framework), and the natural extension
//! of the four primitives' vocabulary: `reduce` collapses a vector,
//! `scan` keeps every prefix. Segmented variants run many independent
//! scans in one pass, driven by a flag vector, via the classical
//! operator transform (the segmented operator on `(flag, value)` pairs
//! is associative whenever the base operator is).
//!
//! Scans are defined in **global index order**, which requires the
//! block (consecutive) distribution: each node's chunk is a contiguous
//! run, so a scan is a local pass, an exclusive scan of per-node totals
//! across the chunked direction, and a local fix-up. (A cyclic chunk
//! interleaves elements from everywhere, so no local pass can respect
//! index order — constructors assert block chunking.)

use vmp_hypercube::collective;
use vmp_hypercube::machine::Hypercube;
use vmp_layout::{Axis, Dist, Placement, VecEmbedding, VectorLayout};

use crate::elem::{ReduceOp, Scalar};
use crate::vector::DistVector;

/// Inclusive scan in global index order: `out[i] = v[0] op ... op v[i]`.
///
/// Works on linear and axis-aligned embeddings (replicated aligned
/// vectors scan every replica consistently). Cost: one local pass,
/// `O(lg p)` combine supersteps on single totals, one local fix-up.
///
/// # Panics
/// Panics if the vector's chunking is not `Dist::Block` (see module
/// docs), or the op is applied to a concentrated embedding whose line
/// does not hold data.
pub fn scan_inclusive<T: Scalar, O: ReduceOp<T>>(
    hc: &mut Hypercube,
    v: &DistVector<T>,
    op: O,
) -> DistVector<T> {
    scan_impl(hc, v, op, true)
}

/// Exclusive scan in global index order: `out[i] = v[0] op ... op
/// v[i-1]`, with `out[0] = op.identity()`.
pub fn scan_exclusive<T: Scalar, O: ReduceOp<T>>(
    hc: &mut Hypercube,
    v: &DistVector<T>,
    op: O,
) -> DistVector<T> {
    scan_impl(hc, v, op, false)
}

fn scan_impl<T: Scalar, O: ReduceOp<T>>(
    hc: &mut Hypercube,
    v: &DistVector<T>,
    op: O,
    inclusive: bool,
) -> DistVector<T> {
    let layout = v.layout().clone();
    assert_eq!(
        layout.dist().kind(),
        Dist::Block,
        "index-order scans require the block (consecutive) distribution"
    );
    let grid = layout.grid().clone();
    let p = grid.p();

    // The cube dims along which the chunks are laid out, and the
    // coordinate (within those dims) of each node's part. For aligned
    // embeddings all orthogonal lines perform the same scan in parallel
    // (replicas stay consistent); concentrated lines only have data on
    // one line, and the subcube scan on the others operates on
    // identities, which is harmless.
    let chunk_dims: Vec<u32> = match layout.embedding() {
        VecEmbedding::Linear => grid.cube().iter_dims().collect(),
        VecEmbedding::Aligned { axis, .. } => match axis {
            Axis::Row => grid.col_dims().to_vec(),
            Axis::Col => grid.row_dims().to_vec(),
        },
    };

    // 1. Local pass: per-chunk inclusive scan, remembering the total.
    let mut locals: Vec<Vec<T>> = Vec::with_capacity(p);
    let mut totals: Vec<Vec<T>> = Vec::with_capacity(p);
    let mut max_chunk = 0usize;
    for node in 0..p {
        let chunk = &v.locals()[node];
        max_chunk = max_chunk.max(chunk.len());
        let mut acc = op.identity();
        let mut out = Vec::with_capacity(chunk.len());
        for &x in chunk {
            if inclusive {
                acc = op.combine(acc, x);
                out.push(acc);
            } else {
                out.push(acc);
                acc = op.combine(acc, x);
            }
        }
        locals.push(out);
        totals.push(vec![acc]);
    }
    hc.charge_flops(max_chunk);

    // 2. Exclusive scan of chunk totals across the chunk coordinate.
    //
    // Subcube coordinate order equals part order only under the Binary
    // grid encoding; under Gray encoding part `t` sits at coordinate
    // `gray(t)`. The hypercube scan is coordinate-ordered, so for Gray
    // grids we route totals through a coordinate-ordered arrangement:
    // simplest correct scheme — allgather the (part, total) pairs and
    // fold locally in part order. `2^k` tiny elements per node; the
    // extra bandwidth is `p_c` scalars, well below one chunk.
    let mut tagged: Vec<Vec<(usize, T)>> = (0..p)
        .map(|node| {
            let part = layout.part_of(node);
            vec![(part, totals[node][0])]
        })
        .collect();
    collective::allgather(hc, &mut tagged, &chunk_dims);
    let parts = 1usize << chunk_dims.len();
    let mut offsets: Vec<Vec<T>> = Vec::with_capacity(p);
    for node in 0..p {
        let my_part = layout.part_of(node);
        let mut sorted: Vec<Option<T>> = vec![None; parts];
        for &(part, t) in &tagged[node] {
            sorted[part] = Some(t);
        }
        let mut acc = op.identity();
        for (part, entry) in sorted.into_iter().enumerate() {
            if part == my_part {
                break;
            }
            if let Some(t) = entry {
                acc = op.combine(acc, t);
            }
        }
        offsets.push(vec![acc]);
    }
    hc.charge_flops(parts);

    // 3. Local fix-up.
    for node in 0..p {
        let off = offsets[node][0];
        for x in &mut locals[node] {
            *x = op.combine(off, *x);
        }
    }
    hc.charge_flops(max_chunk);

    DistVector::from_parts(layout, locals)
}

/// A segment-boundary flag: `true` starts a new segment at that index.
pub type SegFlag = bool;

/// Segmented inclusive scan: an independent inclusive scan restarts at
/// every index whose flag is `true` (index 0 always starts a segment).
///
/// Implemented with the classical segmented-operator transform on
/// `(flag, value)` pairs — one ordinary scan, no extra communication.
///
/// # Panics
/// As [`scan_inclusive`], plus the flag vector must share the value
/// vector's layout.
pub fn segmented_scan_inclusive<T: Scalar, O: ReduceOp<T>>(
    hc: &mut Hypercube,
    v: &DistVector<T>,
    flags: &DistVector<SegFlag>,
    op: O,
) -> DistVector<T> {
    assert_eq!(v.layout(), flags.layout(), "flags must share the value vector's layout");
    let paired = v.zip(hc, flags, |_, x, f| (f, x));
    let scanned = scan_inclusive(hc, &paired, Segmented { op });
    scanned.map(hc, |_, (_, x)| x)
}

/// Segmented reduce: the total of each segment, delivered to **every**
/// position of that segment (a "segmented all-reduce"). Composing with
/// `extract`-style reads gives per-segment scalars.
pub fn segmented_reduce<T: Scalar, O: ReduceOp<T>>(
    hc: &mut Hypercube,
    v: &DistVector<T>,
    flags: &DistVector<SegFlag>,
    op: O,
) -> DistVector<T> {
    // Forward segmented scan gives each position the fold of its segment
    // prefix; the segment total is the value at the segment's LAST
    // position. Spread it over the whole segment with a backward
    // copy-scan: reverse, segmented-scan with a first-wins operator
    // (sound monoid over Option<T>), reverse back.
    let fwd = segmented_scan_inclusive(hc, v, flags, op);
    let rev_vals = reverse(hc, &fwd);
    let rev_some = rev_vals.map(hc, |_, x| Some(x));
    // In reversed coordinates a segment starts right after the mirror of
    // an original segment start: rev_flag[i] = (i == 0) || flag[n - i].
    // Built as a routed shift of the original flags, then a reverse.
    let shifted =
        route_permutation(hc, flags, |i| if i > 0 { Some(i - 1) } else { None }, Some(true));
    let rev_flags = reverse(hc, &shifted);
    let copied = segmented_scan_inclusive(hc, &rev_some, &rev_flags, FirstSome);
    // vmplint: allow(p1) — rev_flags marks position 0 a segment start, so the segmented scan covers every index
    let rev_out = copied.map(hc, |_, o| o.expect("every position is in a segment"));
    reverse(hc, &rev_out)
}

/// Reverse a vector (index `i` -> `n-1-i`) via one blocked routed phase.
pub fn reverse<T: Scalar>(hc: &mut Hypercube, v: &DistVector<T>) -> DistVector<T> {
    let n = v.n();
    route_permutation(hc, v, |i| Some(n - 1 - i), None)
}

/// Route each element `i` to position `dest(i)` (a partial injection);
/// positions not hit by any source are filled with `fill`. One blocked
/// dimension-ordered routed phase, plus a broadcast for replicated
/// embeddings.
///
/// # Panics
/// Panics if some position receives no element and `fill` is `None`.
pub fn route_permutation<T: Scalar>(
    hc: &mut Hypercube,
    v: &DistVector<T>,
    dest: impl Fn(usize) -> Option<usize>,
    fill: Option<T>,
) -> DistVector<T> {
    use vmp_hypercube::route::{route_blocks, Block};
    let layout = v.layout().clone();
    let p = layout.grid().p();
    let mut outgoing: Vec<Vec<Block<T>>> = vec![Vec::new(); p];
    let mut max_packed = 0usize;
    for src in 0..p {
        if v.locals()[src].is_empty() {
            continue;
        }
        let part = layout.part_of(src);
        if layout.primary_holder(layout.dist().global_index(part, 0)) != src {
            continue; // only primary replicas send
        }
        max_packed = max_packed.max(v.locals()[src].len());
        for (slot, &x) in v.locals()[src].iter().enumerate() {
            let i = layout.dist().global_index(part, slot);
            let Some(j) = dest(i) else { continue };
            debug_assert!(j < layout.n(), "destination index out of range");
            let dst = layout.primary_holder(j);
            outgoing[src].push(Block::new(dst, j as u64, vec![x]));
        }
    }
    hc.charge_moves(max_packed);
    let arrived = route_blocks(hc, outgoing);
    let mut locals: Vec<Vec<T>> = vec![Vec::new(); p];
    for dst in 0..p {
        let part = layout.part_of(dst);
        let len = layout.dist().count(part);
        if len == 0 {
            continue;
        }
        let i0 = layout.dist().global_index(part, 0);
        if layout.primary_holder(i0) != dst {
            continue;
        }
        let mut chunk: Vec<Option<T>> = vec![None; len];
        for b in &arrived[dst] {
            let j = b.tag as usize;
            chunk[layout.dist().local_index(j)] = Some(b.data[0]);
        }
        locals[dst] = chunk
            .into_iter()
            // vmplint: allow(p1) — documented contract: callers without a fill value must cover every position
            .map(|slot| slot.or(fill).expect("uncovered position with no fill value"))
            .collect();
    }
    // Replicated targets: broadcast along orthogonal dims.
    if let VecEmbedding::Aligned { axis, placement: Placement::Replicated } = layout.embedding() {
        let grid = layout.grid().clone();
        let dims = match axis {
            Axis::Row => grid.row_dims().to_vec(),
            Axis::Col => grid.col_dims().to_vec(),
        };
        collective::broadcast(hc, &mut locals, &dims, 0);
    }
    DistVector::from_parts(layout, locals)
}

/// Exclusive count of `true`s before each position — Blelloch's
/// `enumerate`, the index-computation half of stream compaction.
pub fn enumerate(hc: &mut Hypercube, mask: &DistVector<bool>) -> DistVector<usize> {
    let ints = mask.map(hc, |_, b| usize::from(b));
    scan_exclusive(hc, &ints, crate::elem::Sum)
}

/// Stream compaction — Blelloch's `pack`: keep the elements whose mask
/// is `true`, in order, as a new (shorter) block-distributed vector on
/// the same grid. One `enumerate` (scan) plus one blocked routed phase.
///
/// # Panics
/// Panics if mask and values differ in layout, or on non-block chunking.
pub fn pack<T: Scalar>(
    hc: &mut Hypercube,
    v: &DistVector<T>,
    mask: &DistVector<bool>,
) -> DistVector<T> {
    use vmp_hypercube::route::{route_blocks, Block};
    assert_eq!(v.layout(), mask.layout(), "mask must share the value vector's layout");
    let old = v.layout().clone();
    let positions = enumerate(hc, mask);
    let kept: usize = mask.reduce_lifted(hc, crate::elem::Sum, |_, b| usize::from(b));

    let grid = old.grid().clone();
    let new_layout = VectorLayout::linear(kept, grid, Dist::Block);
    let p = old.grid().p();
    let mut outgoing: Vec<Vec<Block<T>>> = vec![Vec::new(); p];
    for src in 0..p {
        if v.locals()[src].is_empty() {
            continue;
        }
        let part = old.part_of(src);
        if old.primary_holder(old.dist().global_index(part, 0)) != src {
            continue;
        }
        for (slot, &x) in v.locals()[src].iter().enumerate() {
            let i = old.dist().global_index(part, slot);
            if !mask.get(i) {
                continue;
            }
            let target = positions.get(i);
            let dst = new_layout.primary_holder(target);
            outgoing[src].push(Block::new(dst, target as u64, vec![x]));
        }
    }
    let arrived = route_blocks(hc, outgoing);
    let mut locals: Vec<Vec<T>> = vec![Vec::new(); p];
    for (dst, local) in locals.iter_mut().enumerate() {
        let len = new_layout.local_len(dst);
        if len == 0 {
            continue;
        }
        let mut chunk: Vec<Option<T>> = vec![None; len];
        for b in &arrived[dst] {
            let t = b.tag as usize;
            chunk[new_layout.dist().local_index(t)] = Some(b.data[0]);
        }
        // vmplint: allow(p1) — pack ranks are a permutation of 0..len, so the chunk is dense by construction
        *local = chunk.into_iter().map(|s| s.expect("dense packing")).collect();
    }
    DistVector::from_parts(new_layout, locals)
}

/// The segmented-operator transform: associative on `(flag, value)`
/// whenever `op` is associative.
#[derive(Clone, Copy)]
struct Segmented<O> {
    op: O,
}

impl<T: Scalar, O: ReduceOp<T>> ReduceOp<(bool, T)> for Segmented<O> {
    fn identity(&self) -> (bool, T) {
        (false, self.op.identity())
    }
    fn combine(&self, a: (bool, T), b: (bool, T)) -> (bool, T) {
        if b.0 {
            b
        } else {
            (a.0, self.op.combine(a.1, b.1))
        }
    }
}

/// "Keep the first present value" — a sound monoid over `Option<T>`
/// (identity `None`, combine = left-biased `or`), used to spread a
/// segment's total backward over the segment.
#[derive(Clone, Copy)]
struct FirstSome;

impl<T: Scalar> ReduceOp<Option<T>> for FirstSome {
    fn identity(&self) -> Option<T> {
        None
    }
    fn combine(&self, a: Option<T>, b: Option<T>) -> Option<T> {
        a.or(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elem::{Max, Sum};
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::{ProcGrid, VectorLayout};

    fn machine(dim: u32) -> Hypercube {
        Hypercube::new(dim, CostModel::unit())
    }

    fn layouts(n: usize, dim: u32) -> Vec<VectorLayout> {
        let g = ProcGrid::square(Cube::new(dim));
        vec![
            VectorLayout::linear(n, g.clone(), Dist::Block),
            VectorLayout::aligned(n, g.clone(), Axis::Row, Placement::Replicated, Dist::Block),
            VectorLayout::aligned(n, g, Axis::Col, Placement::Replicated, Dist::Block),
        ]
    }

    #[test]
    fn inclusive_scan_matches_serial_prefix() {
        for n in [1usize, 7, 16, 33] {
            for dim in [0u32, 2, 4] {
                for layout in layouts(n, dim) {
                    let v = DistVector::from_fn(layout, |i| (i as i64) - 5);
                    let mut hc = machine(dim);
                    let s = scan_inclusive(&mut hc, &v, Sum);
                    s.assert_consistent();
                    let mut run = 0i64;
                    for i in 0..n {
                        run += i as i64 - 5;
                        assert_eq!(s.get(i), run, "n={n} dim={dim} i={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn exclusive_scan_is_shifted_inclusive() {
        let n = 21;
        for layout in layouts(n, 4) {
            let v = DistVector::from_fn(layout, |i| (i * i) as i64);
            let mut hc = machine(4);
            let e = scan_exclusive(&mut hc, &v, Sum);
            let mut run = 0i64;
            for i in 0..n {
                assert_eq!(e.get(i), run, "i = {i}");
                run += (i * i) as i64;
            }
        }
    }

    #[test]
    fn max_scan_gives_running_maximum() {
        let vals: Vec<i64> = (0..25).map(|i| ((i * 7919) % 37) as i64 - 18).collect();
        for layout in layouts(25, 4) {
            let v = DistVector::from_fn(layout, |i| vals[i]);
            let mut hc = machine(4);
            let s = scan_inclusive(&mut hc, &v, Max);
            let mut run = i64::MIN;
            for i in 0..25 {
                run = run.max(vals[i]);
                assert_eq!(s.get(i), run);
            }
        }
    }

    #[test]
    fn segmented_scan_restarts_at_flags() {
        let n = 20;
        let flag_at = |i: usize| i == 0 || i == 5 || i == 6 || i == 13;
        for layout in layouts(n, 4) {
            let v = DistVector::from_fn(layout.clone(), |i| (i + 1) as i64);
            let f = DistVector::from_fn(layout, flag_at);
            let mut hc = machine(4);
            let s = segmented_scan_inclusive(&mut hc, &v, &f, Sum);
            s.assert_consistent();
            let mut run = 0i64;
            for i in 0..n {
                if flag_at(i) {
                    run = 0;
                }
                run += (i + 1) as i64;
                assert_eq!(s.get(i), run, "i = {i}");
            }
        }
    }

    #[test]
    fn segmented_scan_with_single_segment_equals_plain_scan() {
        let n = 17;
        for layout in layouts(n, 2) {
            let v = DistVector::from_fn(layout.clone(), |i| i as i64 * 2 - 9);
            let f = DistVector::from_fn(layout, |i| i == 0);
            let mut hc = machine(2);
            let seg = segmented_scan_inclusive(&mut hc, &v, &f, Sum);
            let plain = scan_inclusive(&mut hc, &v, Sum);
            assert_eq!(seg.to_dense(), plain.to_dense());
        }
    }

    #[test]
    fn segmented_reduce_spreads_segment_totals() {
        let n = 15;
        let flag_at = |i: usize| i == 0 || i == 4 || i == 9;
        for layout in layouts(n, 4) {
            let v = DistVector::from_fn(layout.clone(), |i| (i + 1) as i64);
            let f = DistVector::from_fn(layout, flag_at);
            let mut hc = machine(4);
            let r = segmented_reduce(&mut hc, &v, &f, Sum);
            r.assert_consistent();
            // Segments: [0,4), [4,9), [9,15). Totals: 1+2+3+4=10;
            // 5..=9 sum 35; 10..=15 sum 75.
            let expect = |i: usize| -> i64 {
                if i < 4 {
                    10
                } else if i < 9 {
                    35
                } else {
                    75
                }
            };
            for i in 0..n {
                assert_eq!(r.get(i), expect(i), "i = {i}");
            }
        }
    }

    #[test]
    fn enumerate_counts_preceding_trues() {
        let n = 17;
        let keep = |i: usize| i % 3 == 0 || i == 5;
        for layout in layouts(n, 4) {
            let mask = DistVector::from_fn(layout, keep);
            let mut hc = machine(4);
            let e = enumerate(&mut hc, &mask);
            let mut count = 0usize;
            for i in 0..n {
                assert_eq!(e.get(i), count, "i = {i}");
                if keep(i) {
                    count += 1;
                }
            }
        }
    }

    #[test]
    fn pack_compresses_in_order() {
        let n = 23;
        let keep = |i: usize| i % 4 != 1;
        let g = ProcGrid::square(Cube::new(4));
        let layout = VectorLayout::linear(n, g, Dist::Block);
        let v = DistVector::from_fn(layout.clone(), |i| (i * 10) as i64);
        let mask = DistVector::from_fn(layout, keep);
        let mut hc = machine(4);
        let packed = pack(&mut hc, &v, &mask);
        packed.assert_consistent();
        let expect: Vec<i64> = (0..n).filter(|&i| keep(i)).map(|i| (i * 10) as i64).collect();
        assert_eq!(packed.to_dense(), expect);
        assert_eq!(packed.n(), expect.len());
    }

    #[test]
    fn pack_everything_and_nothing() {
        let n = 12;
        let g = ProcGrid::square(Cube::new(2));
        let layout = VectorLayout::linear(n, g, Dist::Block);
        let v = DistVector::from_fn(layout.clone(), |i| i as i64);
        let mut hc = machine(2);
        let all = pack(&mut hc, &v, &DistVector::constant(layout.clone(), true));
        assert_eq!(all.to_dense(), (0..n as i64).collect::<Vec<_>>());
        let none = pack(&mut hc, &v, &DistVector::constant(layout, false));
        assert_eq!(none.n(), 0);
        assert!(none.to_dense().is_empty());
    }

    #[test]
    fn reverse_reverses() {
        for layout in layouts(13, 4) {
            let v = DistVector::from_fn(layout, |i| i as i64);
            let mut hc = machine(4);
            let r = reverse(&mut hc, &v);
            r.assert_consistent();
            assert_eq!(r.to_dense(), (0..13).rev().collect::<Vec<i64>>());
        }
    }

    #[test]
    #[should_panic(expected = "block (consecutive) distribution")]
    fn cyclic_scan_is_rejected() {
        let g = ProcGrid::square(Cube::new(2));
        let v = DistVector::from_fn(VectorLayout::linear(8, g, Dist::Cyclic), |i| i as i64);
        let mut hc = machine(2);
        let _ = scan_inclusive(&mut hc, &v, Sum);
    }
}
