//! Host-side parallel execution of per-node local phases.
//!
//! Each simulated processor's local phase is independent of every
//! other's — the definition of the SPMD local step — so the host can run
//! them with rayon. This has no effect on results (bit-identical: the
//! per-node computation is unchanged, only which host thread runs it)
//! nor on the simulated clock; it makes the *wall-clock* benches reflect
//! real parallel execution of the local work.

use rayon::prelude::*;

/// Run `f(node, buffer)` for every node, in parallel when the estimated
/// machine-wide work is large enough to amortise the fork/join.
pub(crate) fn for_each_node<T: Send>(
    bufs: &mut [Vec<T>],
    work_hint: usize,
    f: impl Fn(usize, &mut Vec<T>) + Sync,
) {
    const PAR_THRESHOLD: usize = 1 << 15;
    if work_hint >= PAR_THRESHOLD && bufs.len() > 1 {
        bufs.par_iter_mut().enumerate().for_each(|(node, buf)| f(node, buf));
    } else {
        for (node, buf) in bufs.iter_mut().enumerate() {
            f(node, buf);
        }
    }
}

/// Produce one output buffer per node, in parallel for large work.
pub(crate) fn map_nodes<T, U: Send>(
    count: usize,
    work_hint: usize,
    f: impl Fn(usize) -> Vec<U> + Sync + Send,
) -> Vec<Vec<U>> {
    const PAR_THRESHOLD: usize = 1 << 15;
    let _ = std::marker::PhantomData::<T>;
    if work_hint >= PAR_THRESHOLD && count > 1 {
        (0..count).into_par_iter().map(f).collect()
    } else {
        (0..count).map(f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_paths_agree() {
        let mut small: Vec<Vec<u64>> = (0..8).map(|n| vec![n as u64; 4]).collect();
        let mut large: Vec<Vec<u64>> = (0..8).map(|n| vec![n as u64; 4]).collect();
        let f = |node: usize, buf: &mut Vec<u64>| {
            for v in buf.iter_mut() {
                *v = v.wrapping_mul(7).wrapping_add(node as u64);
            }
        };
        for_each_node(&mut small, 1, f); // serial path
        for_each_node(&mut large, 1 << 20, f); // parallel path
        assert_eq!(small, large);
    }

    #[test]
    fn map_nodes_produces_per_node_buffers() {
        let out = map_nodes::<(), usize>(5, 1 << 20, |n| vec![n; n]);
        for (n, buf) in out.iter().enumerate() {
            assert_eq!(buf, &vec![n; n]);
        }
    }
}
