//! Host-side parallel execution of per-node local phases.
//!
//! Each simulated processor's local phase is independent of every
//! other's — the definition of the SPMD local step — so the host can run
//! them with rayon. This has no effect on results (bit-identical: the
//! per-node computation is unchanged, only which host thread runs it)
//! nor on the simulated clock; it makes the *wall-clock* benches reflect
//! real parallel execution of the local work.
//!
//! The fan-out gate is the shared tunable [`vmp_hypercube::par`]
//! (`VMP_PAR_THRESHOLD`, default `1 << 15` total elements) — the same
//! threshold the machine's own `local_compute` uses.

use rayon::prelude::*;
use vmp_hypercube::par::should_parallelise;
use vmp_hypercube::slab::NodeSlab;

/// Run `f(node, segment)` for every node's slab segment, in parallel
/// when the estimated machine-wide work is large enough to amortise the
/// fork/join.
pub(crate) fn for_each_node<T: Send>(
    slab: &mut NodeSlab<T>,
    work_hint: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    if should_parallelise(work_hint) && slab.p() > 1 {
        slab.segs_mut().into_par_iter().enumerate().for_each(|(node, seg)| f(node, seg));
    } else {
        for node in 0..slab.p() {
            f(node, slab.seg_mut(node));
        }
    }
}

/// Build one output segment per node into a fresh arena.
///
/// `f(node, buf)` appends node `node`'s output to `buf`. On the serial
/// path the slab is built directly — one allocation for the whole
/// machine, zero intermediate copies. On the parallel path (work at or
/// above the threshold) each node's buffer is produced independently and
/// the results are stitched into the arena afterwards.
///
/// **Contract:** `buf` may already contain earlier nodes' segments
/// (it is the arena's shared backing store on the serial path), so `f`
/// must only append; any in-place fix-up must be confined to the suffix
/// `buf[start..]` where `start` is `buf.len()` at entry.
pub(crate) fn build_nodes<U: Send>(
    p: usize,
    work_hint: usize,
    total_hint: usize,
    f: impl Fn(usize, &mut Vec<U>) + Sync,
) -> NodeSlab<U> {
    if should_parallelise(work_hint) && p > 1 {
        let nested: Vec<Vec<U>> = (0..p)
            .into_par_iter()
            .map(|node| {
                let mut buf = Vec::new();
                f(node, &mut buf);
                buf
            })
            .collect();
        NodeSlab::from_nested_owned(nested)
    } else {
        let mut slab = NodeSlab::with_capacity(p, total_hint);
        for node in 0..p {
            slab.push_seg_with(|buf| f(node, buf));
        }
        slab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labelled(p: usize, len: usize) -> NodeSlab<u64> {
        NodeSlab::from_nested_owned((0..p).map(|n| vec![n as u64; len]).collect::<Vec<_>>())
    }

    #[test]
    fn serial_and_parallel_paths_agree() {
        let mut small = labelled(8, 4);
        let mut large = labelled(8, 4);
        let f = |node: usize, seg: &mut [u64]| {
            for v in seg.iter_mut() {
                *v = v.wrapping_mul(7).wrapping_add(node as u64);
            }
        };
        for_each_node(&mut small, 1, f); // serial path
        for_each_node(&mut large, 1 << 20, f); // parallel path
        assert_eq!(small, large);
    }

    #[test]
    fn build_nodes_produces_per_node_segments_on_both_paths() {
        let f = |n: usize, buf: &mut Vec<usize>| buf.extend(std::iter::repeat_n(n, n));
        let serial = build_nodes(5, 1, 0, f);
        let parallel = build_nodes(5, 1 << 20, 0, f);
        assert_eq!(serial, parallel);
        for n in 0..5 {
            assert_eq!(serial.seg(n), vec![n; n].as_slice());
        }
        assert_eq!(serial.total_len(), 10);
    }
}
