//! Host-side parallel execution of per-node local phases.
//!
//! Each simulated processor's local phase is independent of every
//! other's — the definition of the SPMD local step — so the host can run
//! them with rayon. This has no effect on results (bit-identical: the
//! per-node computation is unchanged, only which host thread runs it)
//! nor on the simulated clock; it makes the *wall-clock* benches reflect
//! real parallel execution of the local work.
//!
//! Both the fan-out gate **and** the helpers that act on it live in
//! [`vmp_hypercube::par`] — one shared module, re-exported here, so the
//! threshold semantics (`VMP_PAR_THRESHOLD`, default `1 << 15` total
//! elements) cannot drift between the machine's `local_compute` drivers
//! and this crate's kernel drivers.

pub(crate) use vmp_hypercube::par::{build_nodes, for_each_node};
