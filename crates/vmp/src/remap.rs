//! Embedding changes — *"the primitives may indicate a change from one
//! embedding to another"*.
//!
//! `extract` returns a vector concentrated on the grid line where the row
//! physically lives; `distribute` and the elementwise combinators want it
//! replicated; a vector leaving the matrix world wants the balanced
//! linear embedding; a transposed algorithm wants the whole matrix
//! re-embedded. This module implements those moves, each charged with
//! its true communication structure:
//!
//! * [`replicate`] — concentrated → replicated: a `d`-step tree broadcast;
//! * [`concentrate`] — replicated → concentrated: free (drop copies), or
//!   a blocked routed move between two grid lines;
//! * [`remap_vector`] — the general vector embedding change (any aligned
//!   or linear source to any aligned or linear target, including axis
//!   flips), via blocked dimension-ordered routing to the target's
//!   primary holders plus a final broadcast if the target is replicated;
//! * [`transpose`] / [`redistribute`] — whole-matrix re-embeddings.

use vmp_hypercube::collective;
use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::route::{route_blocks, Block};
use vmp_layout::{Axis, MatrixLayout, Placement, VecEmbedding, VectorLayout};

use crate::elem::Scalar;
use crate::matrix::DistMatrix;
use crate::vector::DistVector;

/// Is `node` the primary (first) holder of its chunk under `layout`?
fn is_primary_holder(layout: &VectorLayout, node: usize) -> bool {
    if layout.local_len(node) == 0 {
        return false;
    }
    let part = layout.part_of(node);
    let i0 = layout.dist().global_index(part, 0);
    layout.primary_holder(i0) == node
}

/// Replicate an axis-aligned vector across its orthogonal grid dims.
/// Already-replicated vectors are returned unchanged (no charge).
///
/// # Panics
/// Panics on linear vectors.
pub fn replicate<T: Scalar>(hc: &mut Hypercube, v: &DistVector<T>) -> DistVector<T> {
    let (axis, placement) = match v.layout().embedding() {
        VecEmbedding::Aligned { axis, placement } => (*axis, *placement),
        VecEmbedding::Linear => panic!("replicate applies to axis-aligned vectors only"),
    };
    match placement {
        Placement::Replicated => v.clone(),
        Placement::Concentrated(line) => {
            let grid = v.layout().grid().clone();
            let (dims, root) = match axis {
                Axis::Row => (grid.row_dims().to_vec(), grid.row_coord(line)),
                Axis::Col => (grid.col_dims().to_vec(), grid.col_coord(line)),
            };
            let mut chunks = v.locals().clone();
            collective::broadcast_slab(hc, &mut chunks, &dims, root);
            DistVector::from_slab(v.layout().with_placement(Placement::Replicated), chunks)
        }
    }
}

/// Concentrate an axis-aligned vector onto grid line `line`. From a
/// replicated embedding this is free — the copies are simply dropped.
/// From another concentrated line it is one blocked routed move.
///
/// # Panics
/// Panics on linear vectors.
pub fn concentrate<T: Scalar>(hc: &mut Hypercube, v: &DistVector<T>, line: usize) -> DistVector<T> {
    let (axis, placement) = match v.layout().embedding() {
        VecEmbedding::Aligned { axis, placement } => (*axis, *placement),
        VecEmbedding::Linear => panic!("concentrate applies to axis-aligned vectors only"),
    };
    let new_layout = v.layout().with_placement(Placement::Concentrated(line));
    match placement {
        Placement::Concentrated(src) if src == line => v.clone(),
        Placement::Replicated => {
            // Free: keep only the target line's copies.
            let locals =
                (0..v.locals().p())
                    .map(|node| {
                        if new_layout.holds(node) {
                            v.locals()[node].to_vec()
                        } else {
                            Vec::new()
                        }
                    })
                    .collect();
            DistVector::from_parts(new_layout, locals)
        }
        Placement::Concentrated(src_line) => {
            let grid = v.layout().grid().clone();
            let parts = match axis {
                Axis::Row => grid.pc(),
                Axis::Col => grid.pr(),
            };
            let mut outgoing: Vec<Vec<Block<T>>> = vec![Vec::new(); grid.p()];
            for part in 0..parts {
                let (src, dst) = match axis {
                    Axis::Row => (grid.node_at(src_line, part), grid.node_at(line, part)),
                    Axis::Col => (grid.node_at(part, src_line), grid.node_at(part, line)),
                };
                outgoing[src].push(Block::new(dst, part as u64, v.locals()[src].to_vec()));
            }
            let arrived = route_blocks(hc, outgoing);
            let locals = arrived
                .into_iter()
                .map(
                    |mut blocks| {
                        if blocks.is_empty() {
                            Vec::new()
                        } else {
                            blocks.swap_remove(0).data
                        }
                    },
                )
                .collect();
            DistVector::from_parts(new_layout, locals)
        }
    }
}

/// Change a vector's embedding to `new_layout` (same grid, same length;
/// anything else about the embedding — axis, placement, chunking rule,
/// linear vs aligned — may differ).
///
/// Elements are routed in blocks from the old embedding's primary holders
/// to the new embedding's primary holders (dimension-ordered, so at most
/// `d` blocked supersteps), then broadcast across the orthogonal dims if
/// the target is replicated. Delivery order is reconstructed on the
/// receiving side from the layouts — no per-element indices travel.
pub fn remap_vector<T: Scalar>(
    hc: &mut Hypercube,
    v: &DistVector<T>,
    new_layout: VectorLayout,
) -> DistVector<T> {
    let old = v.layout();
    assert_eq!(old.n(), new_layout.n(), "length mismatch");
    assert_eq!(old.grid().cube(), new_layout.grid().cube(), "grid cube mismatch");
    let p = old.grid().p();

    // Pack: every old-primary node buckets its chunk by new-primary
    // destination, in ascending global index order (= slot order).
    let mut outgoing: Vec<Vec<Block<T>>> = vec![Vec::new(); p];
    let mut max_packed = 0usize;
    for src in 0..p {
        if !is_primary_holder(old, src) {
            continue;
        }
        let part = old.part_of(src);
        let chunk = &v.locals()[src];
        max_packed = max_packed.max(chunk.len());
        // dst -> data, filled in ascending slot order.
        let mut buckets: Vec<(usize, Vec<T>)> = Vec::new();
        for (slot, &x) in chunk.iter().enumerate() {
            let i = old.dist().global_index(part, slot);
            let dst = new_layout.primary_holder(i);
            match buckets.iter_mut().find(|(d, _)| *d == dst) {
                Some((_, data)) => data.push(x),
                None => buckets.push((dst, vec![x])),
            }
        }
        for (dst, data) in buckets {
            outgoing[src].push(Block::new(dst, src as u64, data));
        }
    }
    hc.charge_moves(max_packed);

    let arrived = route_blocks(hc, outgoing);

    // Unpack: each new-primary node walks its new chunk in slot order,
    // recomputes each element's old primary holder, and pulls the next
    // element from that source's block.
    let mut locals: Vec<Vec<T>> = vec![Vec::new(); p];
    let mut max_unpacked = 0usize;
    for dst in 0..p {
        if !is_primary_holder(&new_layout, dst) {
            continue;
        }
        let part = new_layout.part_of(dst);
        let len = new_layout.dist().count(part);
        max_unpacked = max_unpacked.max(len);
        let mut cursors: Vec<(u64, usize)> = arrived[dst].iter().map(|b| (b.tag, 0usize)).collect();
        let mut chunk = Vec::with_capacity(len);
        for slot in 0..len {
            let i = new_layout.dist().global_index(part, slot);
            let src = old.primary_holder(i) as u64;
            let bi = arrived[dst]
                .iter()
                .position(|b| b.tag == src)
                // vmplint: allow(p1) — the send phase computed the same owner arithmetic, so the block is present
                .expect("block from the predicted source");
            let cursor = &mut cursors[bi].1;
            chunk.push(arrived[dst][bi].data[*cursor]);
            *cursor += 1;
        }
        locals[dst] = chunk;
    }
    hc.charge_moves(max_unpacked);

    // Replicated target: broadcast from the primary line.
    if let VecEmbedding::Aligned { axis, placement: Placement::Replicated } = new_layout.embedding()
    {
        let grid = new_layout.grid().clone();
        let dims = match axis {
            Axis::Row => grid.row_dims().to_vec(),
            Axis::Col => grid.col_dims().to_vec(),
        };
        // Primary holders sit on grid line 0, whose subcube coordinate is
        // encoding(0) == 0 for both encodings.
        collective::broadcast(hc, &mut locals, &dims, 0);
    }

    DistVector::from_parts(new_layout, locals)
}

/// Transpose a matrix: the result has the transposed shape on the
/// transposed grid (grid rows and columns swap roles), with
/// `out[i][j] = m[j][i]`. One blocked routed phase (at most `d`
/// supersteps) regardless of matrix size — the dimension-permutation view
/// of transposition from Johnsson & Ho's transposition report.
pub fn transpose<T: Scalar>(hc: &mut Hypercube, m: &DistMatrix<T>) -> DistMatrix<T> {
    let new_layout = m.layout().transposed();
    remap_matrix(hc, m, new_layout, |i, j| (j, i), |i, j| (j, i))
}

/// Re-embed a matrix into `new_layout` (same shape, same cube; the grid
/// split and the distribution rules may differ). Contents are preserved:
/// `out[i][j] = m[i][j]`.
pub fn redistribute<T: Scalar>(
    hc: &mut Hypercube,
    m: &DistMatrix<T>,
    new_layout: MatrixLayout,
) -> DistMatrix<T> {
    assert_eq!(m.shape(), new_layout.shape(), "shape mismatch");
    remap_matrix(hc, m, new_layout, |i, j| (i, j), |i, j| (i, j))
}

/// General bijective matrix re-embedding: `out[fwd(i, j)] = m[i][j]`
/// under `new_layout`. `fwd` must be a bijection on index pairs with
/// inverse `inv` — transpose, redistribution, and torus shifts
/// ([`crate::shift`]) are all instances. One blocked routed phase.
pub fn remap_with<T: Scalar>(
    hc: &mut Hypercube,
    m: &DistMatrix<T>,
    new_layout: MatrixLayout,
    fwd: impl Fn(usize, usize) -> (usize, usize),
    inv: impl Fn(usize, usize) -> (usize, usize),
) -> DistMatrix<T> {
    remap_matrix(hc, m, new_layout, fwd, inv)
}

/// Shared machinery for matrix re-embeddings. `fwd` maps an old element's
/// global position to its new position; `inv` is its inverse.
fn remap_matrix<T: Scalar>(
    hc: &mut Hypercube,
    m: &DistMatrix<T>,
    new_layout: MatrixLayout,
    fwd: impl Fn(usize, usize) -> (usize, usize),
    inv: impl Fn(usize, usize) -> (usize, usize),
) -> DistMatrix<T> {
    let old = m.layout();
    assert_eq!(old.grid().cube(), new_layout.grid().cube(), "grid cube mismatch");
    let p = old.grid().p();

    // Pack: bucket local elements by destination node, ordered by the
    // destination's local offset so the receiver can unpack positionally.
    let mut outgoing: Vec<Vec<Block<T>>> = vec![Vec::new(); p];
    let mut max_packed = 0usize;
    for src in 0..p {
        let buf = &m.locals()[src];
        if buf.is_empty() {
            continue;
        }
        max_packed = max_packed.max(buf.len());
        let mut staged: Vec<(usize, usize, T)> = Vec::with_capacity(buf.len()); // (dst, new_off, value)
        for (i, j, off) in old.local_elements(src) {
            let (ni, nj) = fwd(i, j);
            let dst = new_layout.owner(ni, nj);
            staged.push((dst, new_layout.local_offset(ni, nj), buf[off]));
        }
        staged.sort_unstable_by_key(|&(dst, noff, _)| (dst, noff));
        let mut iter = staged.into_iter().peekable();
        while let Some(&(dst, _, _)) = iter.peek() {
            let mut data = Vec::new();
            while matches!(iter.peek(), Some(&(d, _, _)) if d == dst) {
                // vmplint: allow(p1) — peek just returned Some for this destination
                data.push(iter.next().expect("peeked").2);
            }
            outgoing[src].push(Block::new(dst, src as u64, data));
        }
    }
    hc.charge_moves(max_packed);

    let arrived = route_blocks(hc, outgoing);

    // Unpack: walk new local offsets in order; each element's source node
    // is recomputed via `inv`, and elements from one source arrive in
    // new-offset order.
    let mut locals: Vec<Vec<T>> = Vec::with_capacity(p);
    let mut max_unpacked = 0usize;
    for dst in 0..p {
        let len = new_layout.local_len(dst);
        max_unpacked = max_unpacked.max(len);
        let mut cursors = vec![0usize; arrived[dst].len()];
        let mut buf = Vec::with_capacity(len);
        for (ni, nj, _off) in new_layout.local_elements(dst) {
            let (i, j) = inv(ni, nj);
            let src = old.owner(i, j) as u64;
            let bi = arrived[dst]
                .iter()
                .position(|b| b.tag == src)
                // vmplint: allow(p1) — the send phase computed the same owner arithmetic, so the block is present
                .expect("block from the predicted source");
            buf.push(arrived[dst][bi].data[cursors[bi]]);
            cursors[bi] += 1;
        }
        locals.push(buf);
    }
    hc.charge_moves(max_unpacked);

    DistMatrix::from_parts(new_layout, locals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::{Dist, MatShape, ProcGrid};

    fn machine(dim: u32) -> Hypercube {
        Hypercube::new(dim, CostModel::unit())
    }

    fn grid(dim: u32, dr: u32) -> ProcGrid {
        ProcGrid::new(Cube::new(dim), dr)
    }

    #[test]
    fn replicate_then_concentrate_roundtrips() {
        let mut hc = machine(4);
        let vl = VectorLayout::aligned(
            9,
            grid(4, 2),
            Axis::Row,
            Placement::Concentrated(1),
            Dist::Cyclic,
        );
        let v = DistVector::from_fn(vl, |i| i as f64 * 2.0);
        let r = replicate(&mut hc, &v);
        r.assert_consistent();
        assert_eq!(r.layout().stored_elements(), 9 * 4);
        assert_eq!(r.to_dense(), v.to_dense());
        let c = concentrate(&mut hc, &r, 1);
        c.assert_consistent();
        assert_eq!(c.to_dense(), v.to_dense());
        assert_eq!(c.layout(), v.layout());
    }

    #[test]
    fn concentrate_between_lines_routes() {
        let mut hc = machine(4);
        let vl = VectorLayout::aligned(
            8,
            grid(4, 2),
            Axis::Col,
            Placement::Concentrated(0),
            Dist::Block,
        );
        let v = DistVector::from_fn(vl, |i| i as i64);
        let moved = concentrate(&mut hc, &v, 3);
        moved.assert_consistent();
        assert_eq!(moved.to_dense(), v.to_dense());
        assert!(hc.counters().message_steps >= 1);
    }

    #[test]
    fn remap_aligned_to_linear_and_back() {
        let mut hc = machine(4);
        let g = grid(4, 2);
        let vl =
            VectorLayout::aligned(13, g.clone(), Axis::Row, Placement::Replicated, Dist::Cyclic);
        let v = DistVector::from_fn(vl, |i| (i * i) as f64);
        let lin = remap_vector(&mut hc, &v, VectorLayout::linear(13, g.clone(), Dist::Block));
        lin.assert_consistent();
        assert_eq!(lin.to_dense(), v.to_dense());
        let back = remap_vector(
            &mut hc,
            &lin,
            VectorLayout::aligned(13, g, Axis::Row, Placement::Replicated, Dist::Cyclic),
        );
        back.assert_consistent();
        assert_eq!(back.to_dense(), v.to_dense());
    }

    #[test]
    fn remap_axis_flip() {
        // Row-aligned -> Col-aligned: the embedding change a transposed
        // algorithm asks for.
        let mut hc = machine(4);
        let g = grid(4, 2);
        let vl = VectorLayout::aligned(
            10,
            g.clone(),
            Axis::Row,
            Placement::Concentrated(2),
            Dist::Block,
        );
        let v = DistVector::from_fn(vl, |i| i as f64 - 4.5);
        let flipped = remap_vector(
            &mut hc,
            &v,
            VectorLayout::aligned(10, g, Axis::Col, Placement::Replicated, Dist::Cyclic),
        );
        flipped.assert_consistent();
        assert_eq!(flipped.to_dense(), v.to_dense());
    }

    #[test]
    fn remap_identity_is_cheap() {
        let mut hc = machine(4);
        let g = grid(4, 2);
        let vl = VectorLayout::linear(16, g, Dist::Block);
        let v = DistVector::from_fn(vl.clone(), |i| i as i64);
        let w = remap_vector(&mut hc, &v, vl);
        assert_eq!(w.to_dense(), v.to_dense());
        assert_eq!(hc.counters().message_steps, 0, "nothing moves between nodes");
    }

    #[test]
    fn transpose_transposes() {
        let mut hc = machine(4);
        let layout = MatrixLayout::new(MatShape::new(6, 10), grid(4, 2), Dist::Cyclic, Dist::Block);
        let m = DistMatrix::from_fn(layout, |i, j| (i * 100 + j) as f64);
        let t = transpose(&mut hc, &m);
        t.assert_consistent();
        assert_eq!(t.shape(), MatShape::new(10, 6));
        for i in 0..10 {
            for j in 0..6 {
                assert_eq!(t.get(i, j), (j * 100 + i) as f64);
            }
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let mut hc = machine(5);
        let layout = MatrixLayout::new(MatShape::new(7, 9), grid(5, 2), Dist::Cyclic, Dist::Cyclic);
        let m = DistMatrix::from_fn(layout, |i, j| (i as f64).sin() + (j as f64).cos());
        let t = transpose(&mut hc, &m);
        let tt = transpose(&mut hc, &t);
        assert_eq!(tt.shape(), m.shape());
        assert_eq!(tt.to_dense(), m.to_dense());
    }

    #[test]
    fn redistribute_changes_dist_rule() {
        let mut hc = machine(4);
        let g = grid(4, 2);
        let block = MatrixLayout::new(MatShape::new(9, 9), g.clone(), Dist::Block, Dist::Block);
        let cyclic = MatrixLayout::new(MatShape::new(9, 9), g, Dist::Cyclic, Dist::Cyclic);
        let m = DistMatrix::from_fn(block, |i, j| (i * 9 + j) as i64);
        let r = redistribute(&mut hc, &m, cyclic);
        r.assert_consistent();
        assert_eq!(r.to_dense(), m.to_dense());
        assert!(hc.counters().message_steps >= 1);
    }

    #[test]
    fn redistribute_changes_grid_shape() {
        let mut hc = machine(4);
        let wide = MatrixLayout::new(MatShape::new(8, 8), grid(4, 1), Dist::Cyclic, Dist::Cyclic);
        let tall = MatrixLayout::new(MatShape::new(8, 8), grid(4, 3), Dist::Cyclic, Dist::Cyclic);
        let m = DistMatrix::from_fn(wide, |i, j| (i * 8 + j) as f64);
        let r = redistribute(&mut hc, &m, tall);
        r.assert_consistent();
        assert_eq!(r.to_dense(), m.to_dense());
    }
}
