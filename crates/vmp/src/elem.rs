//! Element types and reduction operators.
//!
//! The primitives are generic over the element type (the CM implementation
//! handled fixed- and floating-point fields of any width) and over the
//! combining operator of `reduce`. Operators are small `Copy` structs
//! implementing [`ReduceOp`]; the indexed variants ([`ArgMax`],
//! [`ArgMin`], [`ArgMaxAbs`]) reduce `(value, index)` pairs and are what
//! Gaussian elimination (pivot search) and simplex (entering-variable and
//! ratio test) consume.

/// Element types storable in distributed matrices and vectors.
pub trait Scalar: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {}

impl<T: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static> Scalar for T {}

/// Numeric scalars with the arithmetic the primitives and algorithms use.
pub trait Numeric:
    Scalar
    + PartialOrd
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Least value (identity of max).
    const MIN_VALUE: Self;
    /// Greatest value (identity of min).
    const MAX_VALUE: Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Lossy conversion from f64 (for generic test/workload code).
    fn from_f64(x: f64) -> Self;
    /// Lossy conversion to f64.
    fn to_f64(self) -> f64;
}

macro_rules! impl_numeric_float {
    ($t:ty) => {
        impl Numeric for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const MIN_VALUE: Self = <$t>::NEG_INFINITY;
            const MAX_VALUE: Self = <$t>::INFINITY;
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    };
}

macro_rules! impl_numeric_int {
    ($t:ty) => {
        impl Numeric for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    };
}

impl_numeric_float!(f32);
impl_numeric_float!(f64);
impl_numeric_int!(i32);
impl_numeric_int!(i64);

/// A commutative, associative combining operator with identity, as
/// required by `reduce`.
pub trait ReduceOp<T>: Copy + Sync {
    /// The identity element (`combine(identity, x) == x`).
    fn identity(&self) -> T;
    /// Combine two values.
    fn combine(&self, a: T, b: T) -> T;
}

/// Elementwise sum.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sum;

impl<T: Numeric> ReduceOp<T> for Sum {
    fn identity(&self) -> T {
        T::ZERO
    }
    fn combine(&self, a: T, b: T) -> T {
        a + b
    }
}

// Counting (enumerate/pack) sums `usize` indices, which is not a
// `Numeric` (no signed ops); give `Sum` a direct instance.
impl ReduceOp<usize> for Sum {
    fn identity(&self) -> usize {
        0
    }
    fn combine(&self, a: usize, b: usize) -> usize {
        a + b
    }
}

/// Elementwise product.
#[derive(Debug, Clone, Copy, Default)]
pub struct Prod;

impl<T: Numeric> ReduceOp<T> for Prod {
    fn identity(&self) -> T {
        T::ONE
    }
    fn combine(&self, a: T, b: T) -> T {
        a * b
    }
}

/// Elementwise maximum.
#[derive(Debug, Clone, Copy, Default)]
pub struct Max;

impl<T: Numeric> ReduceOp<T> for Max {
    fn identity(&self) -> T {
        T::MIN_VALUE
    }
    fn combine(&self, a: T, b: T) -> T {
        if b > a {
            b
        } else {
            a
        }
    }
}

/// Elementwise minimum.
#[derive(Debug, Clone, Copy, Default)]
pub struct Min;

impl<T: Numeric> ReduceOp<T> for Min {
    fn identity(&self) -> T {
        T::MAX_VALUE
    }
    fn combine(&self, a: T, b: T) -> T {
        if b < a {
            b
        } else {
            a
        }
    }
}

/// A value paired with the global index it came from, for indexed
/// (location-returning) reductions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Loc<T> {
    /// The value.
    pub value: T,
    /// Its global index (row or column number).
    pub index: usize,
}

impl<T> Loc<T> {
    /// Pair a value with its index.
    pub fn new(value: T, index: usize) -> Self {
        Loc { value, index }
    }
}

/// Arg-max: largest value, ties broken toward the smallest index.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArgMax;

impl<T: Numeric> ReduceOp<Loc<T>> for ArgMax {
    fn identity(&self) -> Loc<T> {
        Loc::new(T::MIN_VALUE, usize::MAX)
    }
    fn combine(&self, a: Loc<T>, b: Loc<T>) -> Loc<T> {
        if b.value > a.value || (b.value == a.value && b.index < a.index) {
            b
        } else {
            a
        }
    }
}

/// Arg-min: smallest value, ties broken toward the smallest index.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArgMin;

impl<T: Numeric> ReduceOp<Loc<T>> for ArgMin {
    fn identity(&self) -> Loc<T> {
        Loc::new(T::MAX_VALUE, usize::MAX)
    }
    fn combine(&self, a: Loc<T>, b: Loc<T>) -> Loc<T> {
        if b.value < a.value || (b.value == a.value && b.index < a.index) {
            b
        } else {
            a
        }
    }
}

/// Arg-max of absolute values — partial pivoting's operator.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArgMaxAbs;

impl<T: Numeric> ReduceOp<Loc<T>> for ArgMaxAbs {
    fn identity(&self) -> Loc<T> {
        Loc::new(T::ZERO, usize::MAX)
    }
    fn combine(&self, a: Loc<T>, b: Loc<T>) -> Loc<T> {
        let (aa, bb) = (a.value.abs(), b.value.abs());
        if bb > aa || (bb == aa && b.index < a.index && b.index != usize::MAX) {
            b
        } else {
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold<T, O: ReduceOp<T>>(op: O, vals: impl IntoIterator<Item = T>) -> T {
        vals.into_iter().fold(op.identity(), |acc, v| op.combine(acc, v))
    }

    #[test]
    fn sum_and_prod_identities() {
        assert_eq!(fold(Sum, [1.0f64, 2.0, 3.5]), 6.5);
        assert_eq!(fold(Sum, Vec::<f64>::new()), 0.0);
        assert_eq!(fold(Prod, [2i64, 3, 4]), 24);
        assert_eq!(fold(Prod, Vec::<i64>::new()), 1);
    }

    #[test]
    fn max_min_handle_negatives_and_identity() {
        assert_eq!(fold(Max, [-5.0f64, -2.0, -9.0]), -2.0);
        assert_eq!(fold(Min, [-5i32, -2, -9]), -9);
        assert_eq!(fold(Max, Vec::<f64>::new()), f64::NEG_INFINITY);
        assert_eq!(fold(Min, Vec::<i32>::new()), i32::MAX);
    }

    #[test]
    fn argmax_prefers_smallest_index_on_ties() {
        let v = vec![Loc::new(3.0f64, 4), Loc::new(7.0, 2), Loc::new(7.0, 1), Loc::new(1.0, 0)];
        let r = fold(ArgMax, v);
        assert_eq!(r.index, 1);
        assert_eq!(r.value, 7.0);
    }

    #[test]
    fn argmin_basic() {
        let v = vec![Loc::new(3i64, 0), Loc::new(-7, 5), Loc::new(2, 1)];
        let r = fold(ArgMin, v);
        assert_eq!((r.value, r.index), (-7, 5));
    }

    #[test]
    fn argmaxabs_picks_largest_magnitude() {
        let v = vec![Loc::new(3.0f64, 0), Loc::new(-9.0, 2), Loc::new(8.0, 1)];
        let r = fold(ArgMaxAbs, v);
        assert_eq!((r.value, r.index), (-9.0, 2));
    }

    #[test]
    fn argmaxabs_identity_loses_to_any_real_entry() {
        let r = fold(ArgMaxAbs, vec![Loc::new(0.0f64, 3)]);
        assert_eq!(r.index, 3, "a real zero entry beats the identity");
    }

    #[test]
    fn ops_are_commutative_and_associative_spot_check() {
        let vals = [1.5f64, -2.25, 0.0, 8.0, -8.0];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(Sum.combine(a, b), Sum.combine(b, a));
                assert_eq!(Max.combine(a, b), Max.combine(b, a));
                assert_eq!(Min.combine(a, b), Min.combine(b, a));
                for &c in &vals {
                    assert_eq!(
                        Sum.combine(Sum.combine(a, b), c),
                        Sum.combine(a, Sum.combine(b, c))
                    );
                }
            }
        }
    }

    #[test]
    fn numeric_constants() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(i32::ONE, 1);
        assert_eq!(f32::MIN_VALUE, f32::NEG_INFINITY);
        assert_eq!((-3.5f64).abs(), 3.5);
        assert_eq!(i64::from_f64(4.9), 4);
        assert_eq!(2.5f64.to_f64(), 2.5);
    }
}
