//! NEWS-style matrix shifts on the Gray-coded embedding.
//!
//! The Connection Machine's other communication regime (besides the
//! router) was the NEWS grid: nearest-neighbour shifts on the embedded
//! mesh. Because the grid is Gray-coded, mesh neighbours are cube
//! neighbours (dilation 1), so shifting a **block-distributed** matrix
//! by one position moves only each block's boundary line to an adjacent
//! node — one cheap blocked superstep. (Cyclic layouts relocate every
//! element; the shift still works, it is just priced accordingly. This
//! is the block layout's counterpart to cyclic's elimination-balance
//! advantage.)
//!
//! Shifts compose with the elementwise combinators into stencil
//! relaxation — see `vmp_algos::stencil` for Jacobi/Poisson.

use vmp_hypercube::machine::Hypercube;
use vmp_layout::Axis;

use crate::elem::Scalar;
use crate::matrix::DistMatrix;
use crate::remap;

/// Boundary handling for a shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Boundary<T> {
    /// Torus: indices wrap modulo the matrix extent.
    Wrap,
    /// The vacated line is filled with a constant (Dirichlet-style).
    Fill(T),
}

/// Shift the matrix contents by `offset` positions along `axis`:
/// for `Axis::Col` (a shift *of rows*, i.e. vertically),
/// `out[i][j] = m[i - offset][j]`; for `Axis::Row` (horizontally),
/// `out[i][j] = m[i][j - offset]`. Out-of-range sources follow
/// `boundary`.
///
/// The axis convention matches the primitives: `Axis::Col` shifts move
/// data between *rows* (column vectors slide), `Axis::Row` between
/// columns.
pub fn shift<T: Scalar>(
    hc: &mut Hypercube,
    m: &DistMatrix<T>,
    axis: Axis,
    offset: isize,
    boundary: Boundary<T>,
) -> DistMatrix<T> {
    let shape = m.shape();
    let extent = match axis {
        Axis::Col => shape.rows,
        Axis::Row => shape.cols,
    } as isize;
    if extent == 0 || offset == 0 {
        return m.clone();
    }
    let off = offset.rem_euclid(extent);

    // Torus shift as a bijective remap (same layout).
    let fwd = move |i: usize, j: usize| -> (usize, usize) {
        match axis {
            Axis::Col => ((((i as isize + off) % extent) as usize), j),
            Axis::Row => (i, (((j as isize + off) % extent) as usize)),
        }
    };
    let inv = move |i: usize, j: usize| -> (usize, usize) {
        match axis {
            Axis::Col => ((((i as isize - off).rem_euclid(extent)) as usize), j),
            Axis::Row => (i, (((j as isize - off).rem_euclid(extent)) as usize)),
        }
    };
    let mut out = remap::remap_with(hc, m, m.layout().clone(), fwd, inv);

    // Fill boundary: overwrite the vacated lines with the constant.
    if let Boundary::Fill(v) = boundary {
        let vacated: Vec<usize> = if offset > 0 {
            (0..offset.unsigned_abs().min(extent as usize)).collect()
        } else {
            let k = offset.unsigned_abs().min(extent as usize);
            ((extent as usize - k)..extent as usize).collect()
        };
        // A masked elementwise pass writes the constant into the vacated
        // lines (local; one flop per element).
        // vmplint: allow(p1) — this branch runs only for offset != 0, so at least one line is vacated
        let first = *vacated.first().expect("nonzero offset");
        // vmplint: allow(p1) — same invariant as the line above
        let last = *vacated.last().expect("nonzero offset");
        out.map_inplace(hc, move |i, j, x| {
            let line = match axis {
                Axis::Col => i,
                Axis::Row => j,
            };
            if line >= first && line <= last {
                v
            } else {
                x
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::{Dist, MatShape, MatrixLayout, ProcGrid};

    fn setup(n: usize, kind: Dist) -> (Hypercube, DistMatrix<i64>) {
        let layout =
            MatrixLayout::new(MatShape::new(n, n), ProcGrid::new(Cube::new(4), 2), kind, kind);
        let m = DistMatrix::from_fn(layout, |i, j| (i * 100 + j) as i64);
        (Hypercube::new(4, CostModel::unit()), m)
    }

    #[test]
    fn wrap_shift_down_moves_rows() {
        let (mut hc, m) = setup(8, Dist::Block);
        let s = shift(&mut hc, &m, Axis::Col, 1, Boundary::Wrap);
        s.assert_consistent();
        for i in 0..8 {
            for j in 0..8 {
                let src = (i + 8 - 1) % 8;
                assert_eq!(s.get(i, j), (src * 100 + j) as i64, "({i},{j})");
            }
        }
    }

    #[test]
    fn wrap_shift_left_moves_cols() {
        let (mut hc, m) = setup(8, Dist::Block);
        let s = shift(&mut hc, &m, Axis::Row, -2, Boundary::Wrap);
        for i in 0..8 {
            for j in 0..8 {
                let src = (j + 2) % 8;
                assert_eq!(s.get(i, j), (i * 100 + src) as i64);
            }
        }
    }

    #[test]
    fn fill_shift_inserts_constant_boundary() {
        let (mut hc, m) = setup(6, Dist::Block);
        let down = shift(&mut hc, &m, Axis::Col, 1, Boundary::Fill(-7));
        for j in 0..6 {
            assert_eq!(down.get(0, j), -7, "vacated top row filled");
        }
        for i in 1..6 {
            for j in 0..6 {
                assert_eq!(down.get(i, j), ((i - 1) * 100 + j) as i64);
            }
        }
        let up = shift(&mut hc, &m, Axis::Col, -1, Boundary::Fill(0));
        for j in 0..6 {
            assert_eq!(up.get(5, j), 0, "vacated bottom row filled");
        }
        assert_eq!(up.get(0, 3), 103);
    }

    #[test]
    fn opposite_shifts_cancel_under_wrap() {
        let (mut hc, m) = setup(7, Dist::Cyclic);
        let there = shift(&mut hc, &m, Axis::Row, 3, Boundary::Wrap);
        let back = shift(&mut hc, &there, Axis::Row, -3, Boundary::Wrap);
        assert_eq!(back.to_dense(), m.to_dense());
    }

    #[test]
    fn full_extent_shift_is_identity_under_wrap() {
        let (mut hc, m) = setup(5, Dist::Block);
        let s = shift(&mut hc, &m, Axis::Col, 5, Boundary::Wrap);
        assert_eq!(s.to_dense(), m.to_dense());
        let s2 = shift(&mut hc, &m, Axis::Col, -10, Boundary::Wrap);
        assert_eq!(s2.to_dense(), m.to_dense());
    }

    #[test]
    fn zero_shift_is_free() {
        let (mut hc, m) = setup(6, Dist::Block);
        let s = shift(&mut hc, &m, Axis::Row, 0, Boundary::Wrap);
        assert_eq!(s.to_dense(), m.to_dense());
        assert_eq!(hc.elapsed_us(), 0.0);
    }

    #[test]
    fn block_layout_shifts_only_boundary_lines() {
        // On a block layout, a one-step shift crosses node boundaries
        // only at block edges: the per-channel load is one block line,
        // not a whole block.
        let n = 16usize;
        let (mut hc, m) = setup(n, Dist::Block);
        let _ = shift(&mut hc, &m, Axis::Col, 1, Boundary::Wrap);
        let (lr, lc) = m.layout().local_shape(0);
        assert!(
            hc.counters().max_channel_load <= (lc * 2) as u64,
            "boundary line only: load {} vs block {}x{}",
            hc.counters().max_channel_load,
            lr,
            lc
        );

        // Cyclic relocates everything: channel load is a whole block.
        let (mut hc2, m2) = setup(n, Dist::Cyclic);
        let _ = shift(&mut hc2, &m2, Axis::Col, 1, Boundary::Wrap);
        assert!(hc2.counters().max_channel_load > hc.counters().max_channel_load);
    }
}
