//! The distributed vector.

use vmp_hypercube::collective::allreduce_slab;
use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::slab::NodeSlab;
use vmp_layout::{Axis, Placement, VecEmbedding, VectorLayout};

use crate::elem::{ReduceOp, Scalar};

/// A vector distributed over the simulated machine according to a
/// [`VectorLayout`]. Replicated embeddings store every copy, and the
/// copies are maintained bit-identical by every operation (checked by
/// [`DistVector::assert_consistent`]).
///
/// Storage is a single arena-backed [`NodeSlab`] — all chunks in one
/// contiguous allocation; see DESIGN.md § Data plane.
#[derive(Debug, Clone, PartialEq)]
pub struct DistVector<T> {
    layout: VectorLayout,
    locals: NodeSlab<T>,
}

impl<T: Scalar> DistVector<T> {
    /// Materialise a vector from `f(i)` (host-side; no machine charge).
    #[must_use]
    pub fn from_fn(layout: VectorLayout, mut f: impl FnMut(usize) -> T) -> Self {
        let p = layout.grid().p();
        let mut locals = NodeSlab::with_capacity(p, layout.stored_elements());
        for node in 0..p {
            let len = layout.local_len(node);
            locals.push_seg_with(|buf| {
                if len > 0 {
                    let part = layout.part_of(node);
                    for slot in 0..len {
                        buf.push(f(layout.dist().global_index(part, slot)));
                    }
                }
            });
        }
        DistVector { layout, locals }
    }

    /// Materialise from a host slice.
    #[must_use]
    pub fn from_slice(layout: VectorLayout, data: &[T]) -> Self {
        assert_eq!(data.len(), layout.n(), "vector length mismatch");
        Self::from_fn(layout, |i| data[i])
    }

    /// A vector with every element `value`.
    #[must_use]
    pub fn constant(layout: VectorLayout, value: T) -> Self {
        Self::from_fn(layout, |_| value)
    }

    /// The embedding.
    #[must_use]
    pub fn layout(&self) -> &VectorLayout {
        &self.layout
    }

    /// Vector length.
    #[must_use]
    pub fn n(&self) -> usize {
        self.layout.n()
    }

    /// Host-side read of element `i` (tests / output only).
    #[must_use]
    pub fn get(&self, i: usize) -> T {
        let node = self.layout.primary_holder(i);
        self.locals[node][self.layout.dist().local_index(i)]
    }

    /// Host-side copy to a dense `Vec` (tests / output only).
    #[must_use]
    pub fn to_dense(&self) -> Vec<T> {
        (0..self.n()).map(|i| self.get(i)).collect()
    }

    /// Per-node local chunks (crate-internal). Node `n`'s chunk is the
    /// slice `locals()[n]`.
    pub(crate) fn locals(&self) -> &NodeSlab<T> {
        &self.locals
    }

    /// Assemble from nested per-node chunks (crate-internal).
    pub(crate) fn from_parts(layout: VectorLayout, locals: Vec<Vec<T>>) -> Self {
        debug_assert_eq!(locals.len(), layout.grid().p());
        DistVector { layout, locals: NodeSlab::from_nested_owned(locals) }
    }

    /// Assemble directly from an arena (crate-internal; the hot path).
    pub(crate) fn from_slab(layout: VectorLayout, locals: NodeSlab<T>) -> Self {
        debug_assert_eq!(locals.p(), layout.grid().p());
        DistVector { layout, locals }
    }

    /// Assemble from externally computed per-node chunks — the backend
    /// escape hatch for algorithms (e.g. the hypercube FFT) that run
    /// custom per-node kernels between primitive operations. Chunk
    /// lengths are validated against the layout.
    ///
    /// # Panics
    /// Panics if any node's chunk length disagrees with the layout.
    #[must_use]
    pub fn from_chunks(layout: VectorLayout, locals: Vec<Vec<T>>) -> Self {
        assert_eq!(locals.len(), layout.grid().p(), "one chunk per node");
        for (node, buf) in locals.iter().enumerate() {
            assert_eq!(buf.len(), layout.local_len(node), "node {node} chunk length");
        }
        DistVector { layout, locals: NodeSlab::from_nested_owned(locals) }
    }

    /// Read-only view of the per-node chunks (backend counterpart of
    /// [`DistVector::from_chunks`]): node `n`'s chunk is `chunks()[n]`,
    /// and `chunks().to_nested()` recovers the nested `Vec<Vec<T>>` form.
    #[must_use]
    pub fn chunks(&self) -> &NodeSlab<T> {
        &self.locals
    }

    /// Validate chunk lengths and (for replicated embeddings) that all
    /// replicas agree.
    pub fn assert_consistent(&self) {
        assert_eq!(self.locals.p(), self.layout.grid().p());
        for node in 0..self.locals.p() {
            assert_eq!(
                self.locals.len_of(node),
                self.layout.local_len(node),
                "node {node} chunk length"
            );
        }
        for i in 0..self.n() {
            let holders = self.layout.holders_of(i);
            let slot = self.layout.dist().local_index(i);
            let first = self.locals[holders[0]][slot];
            for &h in &holders[1..] {
                assert_eq!(self.locals[h][slot], first, "replica divergence at element {i}");
            }
        }
    }

    /// Reduce the whole vector to one scalar with `op`, lifting each
    /// element through `lift(global_index, value)` first. The result is
    /// replicated machine-wide (this is a collective and is charged).
    ///
    /// The `lift` hook makes masked reductions free of special cases:
    /// return `op.identity()` for indices outside the range of interest —
    /// exactly how the Gaussian-elimination pivot search restricts itself
    /// to rows `k..n`.
    pub fn reduce_lifted<U: Scalar, O: ReduceOp<U>>(
        &self,
        hc: &mut Hypercube,
        op: O,
        lift: impl Fn(usize, T) -> U,
    ) -> U {
        let grid = self.layout.grid().clone();
        let p = self.locals.p();
        // Local fold over the chunk: one scalar per node, in one arena.
        let mut partials: NodeSlab<U> = NodeSlab::with_capacity(p, p);
        let mut max_chunk = 0usize;
        for node in 0..p {
            let buf = &self.locals[node];
            if buf.is_empty() {
                partials.push_seg_with(|data| data.push(op.identity()));
                continue;
            }
            max_chunk = max_chunk.max(buf.len());
            let part = self.layout.part_of(node);
            let mut acc = op.identity();
            for (slot, &v) in buf.iter().enumerate() {
                let i = self.layout.dist().global_index(part, slot);
                acc = op.combine(acc, lift(i, v));
            }
            partials.push_seg_with(|data| data.push(acc));
        }
        hc.charge_flops(max_chunk);

        // Combine partials machine-wide. Replicated embeddings hold each
        // chunk `r` times; combining over ALL cube dims would fold each
        // chunk `r` times, which is wrong for non-idempotent ops (sum).
        // Instead: combine over the chunked direction, then broadcast-by-
        // allreduce over the orthogonal direction using a "first wins"
        // blend is unsound for identities... the clean way: zero out the
        // non-primary replicas first, then allreduce everywhere.
        match self.layout.embedding() {
            VecEmbedding::Linear => {
                let dims: Vec<u32> = grid.cube().iter_dims().collect();
                allreduce_slab(hc, &mut partials, &dims, |a, b| op.combine(a, b));
            }
            VecEmbedding::Aligned { axis, placement } => {
                let primary_line = match placement {
                    Placement::Replicated => None, // keep only grid line 0
                    Placement::Concentrated(line) => Some(*line),
                };
                for node in 0..p {
                    let (gr, gc) = grid.grid_coords(node);
                    let ortho = match axis {
                        Axis::Row => gr,
                        Axis::Col => gc,
                    };
                    let keep = match primary_line {
                        None => ortho == 0,
                        Some(line) => ortho == line,
                    };
                    if !keep {
                        partials[node][0] = op.identity();
                    }
                }
                let dims: Vec<u32> = grid.cube().iter_dims().collect();
                allreduce_slab(hc, &mut partials, &dims, |a, b| op.combine(a, b));
            }
        }
        partials[0][0]
    }

    /// Reduce to a scalar with `op` (replicated machine-wide; charged).
    pub fn reduce_all<O: ReduceOp<T>>(&self, hc: &mut Hypercube, op: O) -> T {
        self.reduce_lifted(hc, op, |_, v| v)
    }
}

impl<T: crate::elem::Numeric> DistVector<T> {
    /// Dot product with an identically laid-out vector: one elementwise
    /// pass plus a reduce-to-scalar (replicated result).
    pub fn dot(&self, hc: &mut Hypercube, other: &DistVector<T>) -> T {
        self.zip(hc, other, |_, a, b| a * b).reduce_all(hc, crate::elem::Sum)
    }

    /// Squared 2-norm.
    pub fn norm2_sq(&self, hc: &mut Hypercube) -> T {
        self.dot(hc, &self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elem::{ArgMaxAbs, Loc, Max, Sum};
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::{Dist, ProcGrid};

    fn grid(dim: u32, dr: u32) -> ProcGrid {
        ProcGrid::new(Cube::new(dim), dr)
    }

    fn machine(dim: u32) -> Hypercube {
        Hypercube::new(dim, CostModel::unit())
    }

    #[test]
    fn from_fn_get_roundtrip_all_embeddings() {
        let g = grid(4, 2);
        for layout in [
            VectorLayout::aligned(11, g.clone(), Axis::Row, Placement::Replicated, Dist::Cyclic),
            VectorLayout::aligned(
                11,
                g.clone(),
                Axis::Row,
                Placement::Concentrated(3),
                Dist::Block,
            ),
            VectorLayout::aligned(11, g.clone(), Axis::Col, Placement::Replicated, Dist::Block),
            VectorLayout::linear(11, g.clone(), Dist::Cyclic),
        ] {
            let v = DistVector::from_fn(layout, |i| i as i64 * 3 - 5);
            v.assert_consistent();
            for i in 0..11 {
                assert_eq!(v.get(i), i as i64 * 3 - 5);
            }
            assert_eq!(v.to_dense(), (0..11).map(|i| i as i64 * 3 - 5).collect::<Vec<_>>());
        }
    }

    #[test]
    fn reduce_all_sums_each_element_once_despite_replication() {
        let g = grid(4, 2);
        let mut hc = machine(4);
        let layout = VectorLayout::aligned(10, g, Axis::Row, Placement::Replicated, Dist::Block);
        let v = DistVector::from_fn(layout, |i| (i + 1) as f64);
        let s = v.reduce_all(&mut hc, Sum);
        assert_eq!(s, 55.0, "each element counted exactly once");
        assert!(hc.elapsed_us() > 0.0, "reduction is charged");
    }

    #[test]
    fn reduce_all_concentrated_and_linear() {
        let g = grid(3, 1);
        let mut hc = machine(3);
        let conc = VectorLayout::aligned(
            9,
            g.clone(),
            Axis::Col,
            Placement::Concentrated(2),
            Dist::Cyclic,
        );
        let v = DistVector::from_fn(conc, |i| i as f64);
        assert_eq!(v.reduce_all(&mut hc, Sum), 36.0);
        let lin = VectorLayout::linear(9, g, Dist::Block);
        let w = DistVector::from_fn(lin, |i| i as f64);
        assert_eq!(w.reduce_all(&mut hc, Max), 8.0);
    }

    #[test]
    fn lifted_reduce_supports_masks_and_argmax() {
        let g = grid(4, 2);
        let mut hc = machine(4);
        let layout = VectorLayout::aligned(12, g, Axis::Col, Placement::Replicated, Dist::Cyclic);
        let data = [3.0, -9.0, 4.0, 8.5, -2.0, 0.0, -8.5, 7.0, 1.0, -1.0, 5.0, 2.0];
        let v = DistVector::from_slice(layout, &data);
        // Unmasked arg-max-abs: index 1 (|-9|).
        let top = v.reduce_lifted(&mut hc, ArgMaxAbs, |i, x| Loc::new(x, i));
        assert_eq!(top.index, 1);
        // Masked to i >= 4 (the pivot-search pattern): |-8.5| at 6 wins
        // over 8.5 at 3 which is masked out; tie at |8.5|? index 6 only.
        let masked = v.reduce_lifted(&mut hc, ArgMaxAbs, |i, x| {
            if i >= 4 {
                Loc::new(x, i)
            } else {
                Loc::new(0.0, usize::MAX)
            }
        });
        assert_eq!(masked.index, 6);
    }

    #[test]
    fn empty_vector_reduces_to_identity() {
        let g = grid(2, 1);
        let mut hc = machine(2);
        let layout = VectorLayout::linear(0, g, Dist::Block);
        let v: DistVector<f64> = DistVector::from_fn(layout, |_| unreachable!());
        assert_eq!(v.reduce_all(&mut hc, Sum), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_slice_checks_length() {
        let g = grid(2, 1);
        let layout = VectorLayout::linear(5, g, Dist::Block);
        let _ = DistVector::from_slice(layout, &[1.0f64; 4]);
    }
}
