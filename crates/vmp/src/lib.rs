//! # vmp-core — the four vector-matrix primitives
//!
//! Reproduction of the core contribution of *Four Vector-Matrix
//! Primitives* (Agrawal, Blelloch, Krawitz & Phillips, SPAA 1989): four
//! APL-like operations — [`primitives::reduce`],
//! [`primitives::distribute`], [`primitives::extract`],
//! [`primitives::insert`] — connecting dense distributed matrices
//! ([`DistMatrix`]) and vectors ([`DistVector`]), specified independently
//! of machine size and implemented over load-balanced embeddings on a
//! (simulated) hypercube multiprocessor.
//!
//! Alongside the primitives:
//!
//! * [`elementwise`] — the communication-free local combinators
//!   (`map`, `zip`, `zip_axis`, `rank1_update`) that, together with the
//!   four primitives, form the whole programming model;
//! * [`remap`] — explicit embedding changes (replicate / concentrate /
//!   general vector remap / matrix transpose & redistribution);
//! * [`naive`] — element-per-router-message implementations of the same
//!   primitives, the baseline the paper beat by "almost an order of
//!   magnitude";
//! * [`analysis`] — the cost formulas and `m > p lg p` optimality
//!   predicates behind the paper's complexity claims;
//! * [`scan`] — vector scans, segmented scans, `enumerate`/`pack`
//!   (Blelloch's scan model on the same embeddings);
//! * [`shift`] — NEWS-style torus/Dirichlet matrix shifts on the
//!   Gray-coded grid;
//! * [`indexing`] — irregular indexed gather (`out[i] = v[idx[i]]`);
//! * [`degrade`] — graceful degradation: applying a
//!   [`vmp_layout::DegradedMap`] to a live machine so the primitives keep
//!   running (bit-identically) after node failures, at reduced capacity.
//!
//! ```
//! use vmp_core::prelude::*;
//!
//! // An 8x8 machine-independent program: y = colsum(A).
//! let hc = &mut Hypercube::cm2(4); // 16 processors
//! let layout = MatrixLayout::cyclic(MatShape::new(8, 8), ProcGrid::square(hc.cube()));
//! let a = DistMatrix::from_fn(layout, |i, j| (i * 8 + j) as f64);
//! let y = reduce(hc, &a, Axis::Row, Sum);
//! assert_eq!(y.get(0), (0..8).map(|i| (i * 8) as f64).sum());
//! println!("simulated time: {:.1} us", hc.elapsed_us());
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod degrade;
pub mod elem;
pub mod elementwise;
pub mod indexing;
pub mod matrix;
pub mod naive;
pub(crate) mod par;
pub mod primitives;
pub mod remap;
pub mod scan;
pub mod shift;
pub mod vector;

pub use elem::{ArgMax, ArgMaxAbs, ArgMin, Loc, Max, Min, Numeric, Prod, ReduceOp, Scalar, Sum};
pub use matrix::DistMatrix;
pub use vector::DistVector;

/// One-stop imports for applications built on the primitives.
pub mod prelude {
    pub use crate::degrade::apply_degradation;
    pub use crate::elem::{ArgMax, ArgMaxAbs, ArgMin, Loc, Max, Min, Numeric, Prod, ReduceOp, Sum};
    pub use crate::matrix::DistMatrix;
    pub use crate::primitives::{
        distribute, extract, extract_replicated, insert, reduce, reduce_to,
    };
    pub use crate::remap::{concentrate, redistribute, remap_vector, replicate, transpose};
    pub use crate::vector::DistVector;
    pub use vmp_hypercube::cost::CostModel;
    pub use vmp_hypercube::machine::Hypercube;
    pub use vmp_layout::{
        Axis, AxisDist, Dist, MatShape, MatrixLayout, Placement, ProcGrid, VecEmbedding,
        VectorLayout,
    };
}
