//! Indexed (irregular) gather — `out[i] = values[index[i]]`.
//!
//! The APL-style companion of the four primitives: where `extract` pulls
//! one *line* of a matrix, indexed gather pulls an arbitrary permutation
//! or many-to-one selection of vector elements. On the machine it is a
//! two-phase routed request/reply — the pattern behind pointer jumping
//! (`vmp_algos::listrank`), table lookups, and gather-type image
//! operations in the surrounding corpus.

use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::route::{route_blocks, Block};
use vmp_layout::VecEmbedding;

use crate::elem::Scalar;
use crate::vector::DistVector;

/// `out[i] = values[index[i]]` for arbitrary (possibly repeated)
/// indices. Two blocked routed phases: requests to the owners, replies
/// to the askers.
///
/// # Panics
/// Panics if the layouts differ, the embedding is not linear (indexed
/// gather addresses a flat vector), or an index is out of range.
pub fn gather_by_index<T: Scalar>(
    hc: &mut Hypercube,
    values: &DistVector<T>,
    index: &DistVector<usize>,
) -> DistVector<T> {
    let layout = values.layout().clone();
    assert_eq!(&layout, index.layout(), "values and index must share a layout");
    assert!(
        matches!(layout.embedding(), VecEmbedding::Linear),
        "indexed gather addresses the linear embedding"
    );
    let n = layout.n();
    let p = layout.grid().p();

    // Phase 1: requests. Each position i asks the owner of index[i].
    let mut requests: Vec<Vec<Block<usize>>> = vec![Vec::new(); p];
    for src in 0..p {
        let part = layout.part_of(src);
        for (slot, &t) in index.chunks()[src].iter().enumerate() {
            assert!(t < n, "index {t} out of range 0..{n}");
            let i = layout.dist().global_index(part, slot);
            let owner = layout.primary_holder(t);
            requests[src].push(Block::new(owner, i as u64, vec![t]));
        }
    }
    let arrived = route_blocks(hc, requests);

    // Phase 2: replies. Owners look up and send back to the asker's
    // owner, tagged with the asking index.
    let mut replies: Vec<Vec<Block<T>>> = vec![Vec::new(); p];
    let mut lookup_work = 0usize;
    for node in 0..p {
        lookup_work = lookup_work.max(arrived[node].len());
        for req in &arrived[node] {
            let t = req.data[0];
            let v = values.chunks()[node][layout.dist().local_index(t)];
            let asker = req.tag as usize;
            replies[node].push(Block::new(layout.primary_holder(asker), req.tag, vec![v]));
        }
    }
    hc.charge_flops(lookup_work);
    let answered = route_blocks(hc, replies);

    // Assemble.
    let mut locals: Vec<Vec<T>> = vec![Vec::new(); p];
    for node in 0..p {
        let len = layout.local_len(node);
        if len == 0 {
            continue;
        }
        let mut chunk: Vec<Option<T>> = vec![None; len];
        for b in &answered[node] {
            let i = b.tag as usize;
            chunk[layout.dist().local_index(i)] = Some(b.data[0]);
        }
        // vmplint: allow(p1) — the request phase sends exactly one tag per local slot, so every slot is answered
        locals[node] = chunk.into_iter().map(|s| s.expect("every request answered")).collect();
    }
    DistVector::from_parts(layout, locals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::{Dist, ProcGrid, VectorLayout};

    fn setup(n: usize, dim: u32) -> (Hypercube, VectorLayout) {
        let grid = ProcGrid::square(Cube::new(dim));
        (Hypercube::new(dim, CostModel::cm2()), VectorLayout::linear(n, grid, Dist::Block))
    }

    #[test]
    fn gathers_a_permutation() {
        let n = 20;
        let (mut hc, layout) = setup(n, 4);
        let values = DistVector::from_fn(layout.clone(), |i| (i * 11) as i64);
        let index = DistVector::from_fn(layout, |i| (i * 7) % n);
        let out = gather_by_index(&mut hc, &values, &index);
        out.assert_consistent();
        for i in 0..n {
            assert_eq!(out.get(i), ((i * 7) % n * 11) as i64);
        }
    }

    #[test]
    fn repeated_indices_fan_out() {
        let n = 16;
        let (mut hc, layout) = setup(n, 3);
        let values = DistVector::from_fn(layout.clone(), |i| i as i64);
        let index = DistVector::constant(layout, 5usize); // everyone reads 5
        let out = gather_by_index(&mut hc, &values, &index);
        assert!(out.to_dense().iter().all(|&v| v == 5));
    }

    #[test]
    fn identity_gather_is_identity() {
        let n = 13;
        let (mut hc, layout) = setup(n, 2);
        let values = DistVector::from_fn(layout.clone(), |i| (i as f64).sin());
        let index = DistVector::from_fn(layout, |i| i);
        let out = gather_by_index(&mut hc, &values, &index);
        assert_eq!(out.to_dense(), values.to_dense());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let (mut hc, layout) = setup(4, 1);
        let values = DistVector::from_fn(layout.clone(), |i| i as i64);
        let index = DistVector::constant(layout, 9usize);
        let _ = gather_by_index(&mut hc, &values, &index);
    }
}
