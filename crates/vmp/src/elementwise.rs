//! Local elementwise operations on distributed matrices and vectors.
//!
//! Everything in this module is communication-free: the operands are
//! aligned by construction (same matrix layout, or a replicated vector
//! whose chunking matches the matrix's axis distribution), so each node
//! combines purely local data. The machine is charged the critical-path
//! flop count, `ceil(n_r/p_r) * ceil(n_c/p_c)` per elementwise pass.
//!
//! Together with the four communication primitives these are the whole
//! programming model: the paper's applications are compositions of
//! {reduce, distribute, extract, insert} and local elementwise code.
//!
//! ## Kernel shape
//!
//! Every matrix kernel here is *tiled by local row*: a node's block is
//! stored row-major in one contiguous slab segment, so the drivers
//! precompute the global row/column index tables once per node and then
//! stream each local row with `chunks_exact` — a contiguous,
//! bounds-check-free inner loop the compiler can autovectorise. The
//! visit order (local offset order) and the combine expressions are
//! exactly those of the naive `local_elements` walk, so results are
//! bit-identical; only the host-side address arithmetic changed.

use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::slab::NodeSlab;
use vmp_layout::{Axis, MatrixLayout};

use crate::elem::Scalar;
use crate::matrix::DistMatrix;
use crate::vector::DistVector;

/// Global row / column index tables for one node's local block: the
/// tiled kernels look indices up instead of calling `global_index` per
/// element. `gi[li]` is the global row of local row `li`; `gj[lj]` the
/// global column of local column `lj`. `gj.len()` is the local column
/// count, i.e. the row stride of the block.
fn index_tables(layout: &MatrixLayout, node: usize) -> (Vec<usize>, Vec<usize>) {
    let (gr, gc) = layout.grid().grid_coords(node);
    let (lr, lc) = layout.local_shape(node);
    let gi = (0..lr).map(|li| layout.rows().global_index(gr, li)).collect();
    let gj = (0..lc).map(|lj| layout.cols().global_index(gc, lj)).collect();
    (gi, gj)
}

impl<T: Scalar> DistMatrix<T> {
    /// Elementwise map with access to global indices:
    /// `out[i][j] = f(i, j, self[i][j])`.
    #[must_use]
    pub fn map<U: Scalar>(
        &self,
        hc: &mut Hypercube,
        f: impl Fn(usize, usize, T) -> U + Sync,
    ) -> DistMatrix<U> {
        let layout = self.layout().clone();
        let p = layout.grid().p();
        let work = layout.max_local_len().saturating_mul(p);
        let locals = self.locals();
        let out = crate::par::build_nodes(p, work, locals.total_len(), |node, o| {
            let buf = &locals[node];
            if buf.is_empty() {
                return;
            }
            let (gi, gj) = index_tables(&layout, node);
            o.reserve(buf.len());
            for (li, row) in buf.chunks_exact(gj.len()).enumerate() {
                let i = gi[li];
                for (&j, &x) in gj.iter().zip(row) {
                    o.push(f(i, j, x));
                }
            }
        });
        hc.charge_flops(layout.max_local_len());
        DistMatrix::from_slab(layout, out)
    }

    /// In-place elementwise update: `self[i][j] = f(i, j, self[i][j])`.
    pub fn map_inplace(&mut self, hc: &mut Hypercube, f: impl Fn(usize, usize, T) -> T + Sync) {
        let layout = self.layout().clone();
        let work = layout.max_local_len().saturating_mul(layout.grid().p());
        crate::par::for_each_node(self.locals_mut(), work, |node, buf| {
            if buf.is_empty() {
                return;
            }
            let (gi, gj) = index_tables(&layout, node);
            for (li, row) in buf.chunks_exact_mut(gj.len()).enumerate() {
                let i = gi[li];
                for (&j, x) in gj.iter().zip(row.iter_mut()) {
                    *x = f(i, j, *x);
                }
            }
        });
        hc.charge_flops(layout.max_local_len());
    }

    /// Elementwise combination of two same-layout matrices:
    /// `out[i][j] = f(self[i][j], other[i][j])`.
    #[must_use]
    pub fn zip<U: Scalar, V: Scalar>(
        &self,
        hc: &mut Hypercube,
        other: &DistMatrix<U>,
        f: impl Fn(T, U) -> V + Sync,
    ) -> DistMatrix<V> {
        assert_eq!(self.layout(), other.layout(), "elementwise operands must share a layout");
        let layout = self.layout().clone();
        let p = layout.grid().p();
        let work = layout.max_local_len().saturating_mul(p);
        let lhs = self.locals();
        let rhs = other.locals();
        let out = crate::par::build_nodes(p, work, lhs.total_len(), |node, o| {
            o.extend(lhs[node].iter().zip(&rhs[node]).map(|(&x, &y)| f(x, y)));
        });
        hc.charge_flops(layout.max_local_len());
        DistMatrix::from_slab(layout, out)
    }

    /// Combine with an axis-aligned **replicated** vector:
    /// for `Axis::Row`, `out[i][j] = f(i, j, self[i][j], v[j])` (a row
    /// vector is indexed by column); for `Axis::Col`,
    /// `out[i][j] = f(i, j, self[i][j], v[i])`.
    ///
    /// # Panics
    /// Panics unless `v` is aligned along `axis`, replicated, and chunked
    /// exactly like the matrix's corresponding axis — the alignment that
    /// makes the operation local. (Use `replicate`/`remap` to get there.)
    #[must_use]
    pub fn zip_axis<U: Scalar, V: Scalar>(
        &self,
        hc: &mut Hypercube,
        axis: Axis,
        v: &DistVector<U>,
        f: impl Fn(usize, usize, T, U) -> V + Sync,
    ) -> DistMatrix<V> {
        self.check_axis_aligned(axis, v);
        let layout = self.layout().clone();
        let p = layout.grid().p();
        let work = layout.max_local_len().saturating_mul(p);
        let locals = self.locals();
        let v_locals = v.locals();
        let out = crate::par::build_nodes(p, work, locals.total_len(), |node, o| {
            let buf = &locals[node];
            if buf.is_empty() {
                return;
            }
            let chunk = &v_locals[node];
            let (gi, gj) = index_tables(&layout, node);
            o.reserve(buf.len());
            match axis {
                // A row vector is indexed by the column slot.
                Axis::Row => {
                    for (li, row) in buf.chunks_exact(gj.len()).enumerate() {
                        let i = gi[li];
                        for ((&j, &x), &u) in gj.iter().zip(row).zip(chunk) {
                            o.push(f(i, j, x, u));
                        }
                    }
                }
                // A column vector is constant across each local row.
                Axis::Col => {
                    for (li, row) in buf.chunks_exact(gj.len()).enumerate() {
                        let i = gi[li];
                        let u = chunk[li];
                        for (&j, &x) in gj.iter().zip(row) {
                            o.push(f(i, j, x, u));
                        }
                    }
                }
            }
        });
        hc.charge_flops(layout.max_local_len());
        DistMatrix::from_slab(layout, out)
    }

    /// In-place variant of [`DistMatrix::zip_axis`].
    pub fn zip_axis_inplace<U: Scalar>(
        &mut self,
        hc: &mut Hypercube,
        axis: Axis,
        v: &DistVector<U>,
        f: impl Fn(usize, usize, T, U) -> T + Sync,
    ) {
        self.check_axis_aligned(axis, v);
        let layout = self.layout().clone();
        let work = layout.max_local_len().saturating_mul(layout.grid().p());
        let v_locals = v.locals();
        crate::par::for_each_node(self.locals_mut(), work, |node, buf| {
            if buf.is_empty() {
                return;
            }
            let chunk = &v_locals[node];
            let (gi, gj) = index_tables(&layout, node);
            match axis {
                Axis::Row => {
                    for (li, row) in buf.chunks_exact_mut(gj.len()).enumerate() {
                        let i = gi[li];
                        for ((&j, &u), x) in gj.iter().zip(chunk).zip(row.iter_mut()) {
                            *x = f(i, j, *x, u);
                        }
                    }
                }
                Axis::Col => {
                    for (li, row) in buf.chunks_exact_mut(gj.len()).enumerate() {
                        let i = gi[li];
                        let u = chunk[li];
                        for (&j, x) in gj.iter().zip(row.iter_mut()) {
                            *x = f(i, j, *x, u);
                        }
                    }
                }
            }
        });
        hc.charge_flops(layout.max_local_len());
    }

    /// The rank-1 update kernel shared by Gaussian elimination and
    /// simplex pivoting: `self[i][j] = f(i, j, self[i][j], col[i], row[j])`
    /// with `col` a replicated column vector and `row` a replicated row
    /// vector. Two aligned reads per element, still purely local.
    pub fn rank1_update<U: Scalar, V: Scalar>(
        &mut self,
        hc: &mut Hypercube,
        col: &DistVector<U>,
        row: &DistVector<V>,
        f: impl Fn(usize, usize, T, U, V) -> T + Sync,
    ) {
        self.check_axis_aligned(Axis::Col, col);
        self.check_axis_aligned(Axis::Row, row);
        let layout = self.layout().clone();
        let work = layout.max_local_len().saturating_mul(layout.grid().p());
        let col_locals = col.locals();
        let row_locals = row.locals();
        crate::par::for_each_node(self.locals_mut(), work, |node, buf| {
            if buf.is_empty() {
                return;
            }
            let (gi, gj) = index_tables(&layout, node);
            let col_chunk = &col_locals[node];
            let row_chunk = &row_locals[node];
            for (li, mrow) in buf.chunks_exact_mut(gj.len()).enumerate() {
                let i = gi[li];
                let c = col_chunk[li];
                for ((&j, &r), a) in gj.iter().zip(row_chunk).zip(mrow.iter_mut()) {
                    *a = f(i, j, *a, c, r);
                }
            }
        });
        // Two flops (multiply + subtract) per element is the honest count
        // for the canonical a -= c*r; charge 2 per element.
        hc.charge_flops(2 * layout.max_local_len());
    }

    /// Range-restricted rank-1 update: apply
    /// `self[i][j] = f(i, j, self[i][j], col[i], row[j])` only for
    /// `i in rows`, `j in cols`, touching — and charging — only the local
    /// slots inside the ranges. This is the active-submatrix update of
    /// Gaussian elimination: with a cyclic layout the charged critical
    /// path shrinks with the active region, with a block layout it
    /// concentrates on the processors owning the trailing corner — the
    /// load-balance difference bench T4 measures.
    pub fn rank1_update_ranged<U: Scalar, V: Scalar>(
        &mut self,
        hc: &mut Hypercube,
        col: &DistVector<U>,
        row: &DistVector<V>,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
        f: impl Fn(usize, usize, T, U, V) -> T + Sync,
    ) {
        self.check_axis_aligned(Axis::Col, col);
        self.check_axis_aligned(Axis::Row, row);
        let layout = self.layout().clone();
        let grid = layout.grid().clone();
        let mut critical = 0usize;
        for node in 0..grid.p() {
            let (gr, gc) = grid.grid_coords(node);
            let li_range = layout.rows().local_slot_range(gr, rows.start, rows.end);
            let lj_range = layout.cols().local_slot_range(gc, cols.start, cols.end);
            critical = critical.max(li_range.len() * lj_range.len());
        }
        let col_locals = col.locals();
        let row_locals = row.locals();
        let work = critical.saturating_mul(grid.p());
        crate::par::for_each_node(self.locals_mut(), work, |node, buf| {
            let (gr, gc) = grid.grid_coords(node);
            let li_range = layout.rows().local_slot_range(gr, rows.start, rows.end);
            let lj_range = layout.cols().local_slot_range(gc, cols.start, cols.end);
            if li_range.is_empty() || lj_range.is_empty() {
                return;
            }
            let lc = layout.local_shape(node).1;
            let col_chunk = &col_locals[node];
            let row_window = &row_locals[node][lj_range.clone()];
            let gj: Vec<usize> =
                lj_range.clone().map(|lj| layout.cols().global_index(gc, lj)).collect();
            for li in li_range {
                let i = layout.rows().global_index(gr, li);
                let c = col_chunk[li];
                let base = li * lc;
                let window = &mut buf[base + lj_range.start..base + lj_range.end];
                for ((&j, &r), a) in gj.iter().zip(row_window).zip(window.iter_mut()) {
                    *a = f(i, j, *a, c, r);
                }
            }
        });
        hc.charge_flops(2 * critical);
    }

    fn check_axis_aligned<U: Scalar>(&self, axis: Axis, v: &DistVector<U>) {
        use vmp_layout::{Placement, VecEmbedding};
        let expected_dist = self.layout().vector_dist(axis);
        match v.layout().embedding() {
            VecEmbedding::Aligned { axis: va, placement: Placement::Replicated } if *va == axis => {
                assert_eq!(
                    v.layout().dist(),
                    expected_dist,
                    "vector chunking must match the matrix's {axis:?} distribution"
                );
            }
            other => panic!(
                "vector must be {axis:?}-aligned and replicated for local combination, got {other:?}"
            ),
        }
    }
}

impl<T: Scalar> DistVector<T> {
    /// Elementwise map with the global index: `out[i] = f(i, self[i])`.
    #[must_use]
    pub fn map<U: Scalar>(
        &self,
        hc: &mut Hypercube,
        f: impl Fn(usize, T) -> U + Sync,
    ) -> DistVector<U> {
        let layout = self.layout().clone();
        let locals = self.locals();
        let p = locals.p();
        let mut out = NodeSlab::with_capacity(p, locals.total_len());
        let mut max_chunk = 0usize;
        for node in 0..p {
            let buf = &locals[node];
            max_chunk = max_chunk.max(buf.len());
            out.push_seg_with(|o| {
                if buf.is_empty() {
                    return;
                }
                let part = layout.part_of(node);
                o.reserve(buf.len());
                o.extend(
                    buf.iter()
                        .enumerate()
                        .map(|(slot, &x)| f(layout.dist().global_index(part, slot), x)),
                );
            });
        }
        hc.charge_flops(max_chunk);
        DistVector::from_slab(layout, out)
    }

    /// Elementwise combination of two identically laid out vectors.
    #[must_use]
    pub fn zip<U: Scalar, V: Scalar>(
        &self,
        hc: &mut Hypercube,
        other: &DistVector<U>,
        f: impl Fn(usize, T, U) -> V + Sync,
    ) -> DistVector<V> {
        assert_eq!(self.layout(), other.layout(), "zip operands must share a layout");
        let layout = self.layout().clone();
        let locals = self.locals();
        let p = locals.p();
        let mut out = NodeSlab::with_capacity(p, locals.total_len());
        let mut max_chunk = 0usize;
        for node in 0..p {
            let a = &locals[node];
            let b = &other.locals()[node];
            max_chunk = max_chunk.max(a.len());
            out.push_seg_with(|o| {
                if a.is_empty() {
                    return;
                }
                let part = layout.part_of(node);
                o.reserve(a.len());
                o.extend(
                    a.iter()
                        .zip(b)
                        .enumerate()
                        .map(|(slot, (&x, &y))| f(layout.dist().global_index(part, slot), x, y)),
                );
            });
        }
        hc.charge_flops(max_chunk);
        DistVector::from_slab(layout, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;
    use vmp_layout::{Dist, MatShape, MatrixLayout, Placement, ProcGrid, VectorLayout};

    fn setup(rows: usize, cols: usize) -> (Hypercube, MatrixLayout) {
        let grid = ProcGrid::new(Cube::new(4), 2);
        let layout = MatrixLayout::new(MatShape::new(rows, cols), grid, Dist::Cyclic, Dist::Cyclic);
        (Hypercube::new(4, CostModel::unit()), layout)
    }

    #[test]
    fn map_applies_with_global_indices() {
        let (mut hc, layout) = setup(6, 7);
        let m = DistMatrix::from_fn(layout, |i, j| (i + j) as i64);
        let out = m.map(&mut hc, |i, j, v| v * 2 + (i == j) as i64);
        for i in 0..6 {
            for j in 0..7 {
                assert_eq!(out.get(i, j), 2 * (i + j) as i64 + (i == j) as i64);
            }
        }
        assert!(hc.counters().flops > 0);
    }

    #[test]
    fn zip_combines_same_layout_matrices() {
        let (mut hc, layout) = setup(5, 5);
        let a = DistMatrix::from_fn(layout.clone(), |i, j| (i * 5 + j) as f64);
        let b = DistMatrix::from_fn(layout, |i, j| (i as f64) - (j as f64));
        let c = a.zip(&mut hc, &b, |x, y| x * y);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(c.get(i, j), ((i * 5 + j) as f64) * (i as f64 - j as f64));
            }
        }
    }

    #[test]
    fn zip_axis_row_vector_indexes_by_column() {
        let (mut hc, layout) = setup(4, 6);
        let m = DistMatrix::from_fn(layout.clone(), |i, j| (i * 10 + j) as f64);
        let vl = VectorLayout::aligned(
            6,
            layout.grid().clone(),
            Axis::Row,
            Placement::Replicated,
            Dist::Cyclic,
        );
        let v = DistVector::from_fn(vl, |j| j as f64 + 100.0);
        let out = m.zip_axis(&mut hc, Axis::Row, &v, |_, j, a, x| {
            assert_eq!(x, j as f64 + 100.0);
            a + x
        });
        for i in 0..4 {
            for j in 0..6 {
                assert_eq!(out.get(i, j), (i * 10 + j) as f64 + j as f64 + 100.0);
            }
        }
    }

    #[test]
    fn zip_axis_col_vector_indexes_by_row() {
        let (mut hc, layout) = setup(8, 3);
        let m = DistMatrix::from_fn(layout.clone(), |i, j| (i * 10 + j) as f64);
        let vl = VectorLayout::aligned(
            8,
            layout.grid().clone(),
            Axis::Col,
            Placement::Replicated,
            Dist::Cyclic,
        );
        let v = DistVector::from_fn(vl, |i| (i * i) as f64);
        let out = m.zip_axis(&mut hc, Axis::Col, &v, |i, _, a, x| {
            assert_eq!(x, (i * i) as f64);
            a * x
        });
        for i in 0..8 {
            for j in 0..3 {
                assert_eq!(out.get(i, j), (i * 10 + j) as f64 * (i * i) as f64);
            }
        }
    }

    #[test]
    fn zip_axis_inplace_matches_zip_axis() {
        for axis in [Axis::Row, Axis::Col] {
            let (mut hc, layout) = setup(6, 6);
            let m = DistMatrix::from_fn(layout.clone(), |i, j| (i * 6 + j) as f64);
            let vl = VectorLayout::aligned(
                6,
                layout.grid().clone(),
                axis,
                Placement::Replicated,
                Dist::Cyclic,
            );
            let v = DistVector::from_fn(vl, |k| (k * 3 + 1) as f64);
            let pure = m.zip_axis(&mut hc, axis, &v, |i, j, a, x| a * x + (i + j) as f64);
            let mut inplace = m.clone();
            inplace.zip_axis_inplace(&mut hc, axis, &v, |i, j, a, x| a * x + (i + j) as f64);
            assert_eq!(inplace.to_dense(), pure.to_dense(), "{axis:?}");
        }
    }

    #[test]
    fn rank1_update_is_the_ge_kernel() {
        let (mut hc, layout) = setup(6, 6);
        let mut m = DistMatrix::from_fn(layout.clone(), |i, j| (i * 6 + j) as f64);
        let col_l = VectorLayout::aligned(
            6,
            layout.grid().clone(),
            Axis::Col,
            Placement::Replicated,
            Dist::Cyclic,
        );
        let row_l = VectorLayout::aligned(
            6,
            layout.grid().clone(),
            Axis::Row,
            Placement::Replicated,
            Dist::Cyclic,
        );
        let col = DistVector::from_fn(col_l, |i| (i + 1) as f64);
        let row = DistVector::from_fn(row_l, |j| (j + 2) as f64);
        m.rank1_update(&mut hc, &col, &row, |_, _, a, c, r| a - c * r);
        for i in 0..6 {
            for j in 0..6 {
                let expect = (i * 6 + j) as f64 - (i + 1) as f64 * (j + 2) as f64;
                assert_eq!(m.get(i, j), expect);
            }
        }
        assert_eq!(
            hc.counters().flops,
            2 * m.layout().max_local_len() as u64,
            "two flops per local element on the critical path"
        );
    }

    #[test]
    fn rank1_update_ranged_touches_only_the_window() {
        for kind in [Dist::Block, Dist::Cyclic] {
            let grid = ProcGrid::new(Cube::new(4), 2);
            let layout = MatrixLayout::new(MatShape::new(9, 9), grid, kind, kind);
            let mut hc = Hypercube::new(4, CostModel::unit());
            let mut m = DistMatrix::from_fn(layout.clone(), |i, j| (i * 9 + j) as f64);
            let mut expect = m.to_dense();
            let col_l = VectorLayout::aligned(
                9,
                layout.grid().clone(),
                Axis::Col,
                Placement::Replicated,
                kind,
            );
            let row_l = VectorLayout::aligned(
                9,
                layout.grid().clone(),
                Axis::Row,
                Placement::Replicated,
                kind,
            );
            let col = DistVector::from_fn(col_l, |i| (i + 1) as f64);
            let row = DistVector::from_fn(row_l, |j| (j + 2) as f64);
            m.rank1_update_ranged(&mut hc, &col, &row, 3..7, 2..9, |_, _, a, c, r| a - c * r);
            for (i, row_e) in expect.iter_mut().enumerate() {
                for (j, e) in row_e.iter_mut().enumerate() {
                    if (3..7).contains(&i) && (2..9).contains(&j) {
                        *e -= (i + 1) as f64 * (j + 2) as f64;
                    }
                }
            }
            assert_eq!(m.to_dense(), expect, "{kind:?}");
        }
    }

    #[test]
    fn ranged_update_charges_less_than_full() {
        let grid = ProcGrid::new(Cube::new(4), 2);
        let layout = MatrixLayout::new(MatShape::new(16, 16), grid, Dist::Cyclic, Dist::Cyclic);
        let col_l = VectorLayout::aligned(
            16,
            layout.grid().clone(),
            Axis::Col,
            Placement::Replicated,
            Dist::Cyclic,
        );
        let row_l = VectorLayout::aligned(
            16,
            layout.grid().clone(),
            Axis::Row,
            Placement::Replicated,
            Dist::Cyclic,
        );
        let col = DistVector::from_fn(col_l, |i| i as f64);
        let row = DistVector::from_fn(row_l, |j| j as f64);

        let mut hc_full = Hypercube::new(4, CostModel::unit());
        let mut m1 = DistMatrix::from_fn(layout.clone(), |_, _| 1.0f64);
        m1.rank1_update(&mut hc_full, &col, &row, |_, _, a, _, _| a);

        let mut hc_ranged = Hypercube::new(4, CostModel::unit());
        let mut m2 = DistMatrix::from_fn(layout, |_, _| 1.0f64);
        m2.rank1_update_ranged(&mut hc_ranged, &col, &row, 12..16, 12..16, |_, _, a, _, _| a);

        assert!(
            hc_ranged.counters().flops < hc_full.counters().flops / 4,
            "ranged {} vs full {}",
            hc_ranged.counters().flops,
            hc_full.counters().flops
        );
    }

    #[test]
    fn vector_map_and_zip() {
        let grid = ProcGrid::new(Cube::new(3), 1);
        let mut hc = Hypercube::new(3, CostModel::unit());
        let layout = VectorLayout::linear(10, grid, Dist::Block);
        let v = DistVector::from_fn(layout.clone(), |i| i as i64);
        let w = v.map(&mut hc, |i, x| x * 2 + i as i64);
        assert_eq!(w.to_dense(), (0..10).map(|i| 3 * i as i64).collect::<Vec<_>>());
        let z = v.zip(&mut hc, &w, |_, a, b| a + b);
        assert_eq!(z.to_dense(), (0..10).map(|i| 4 * i as i64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "aligned and replicated")]
    fn zip_axis_rejects_concentrated_vectors() {
        let (mut hc, layout) = setup(4, 4);
        let m = DistMatrix::from_fn(layout.clone(), |_, _| 0.0f64);
        let vl = VectorLayout::aligned(
            4,
            layout.grid().clone(),
            Axis::Row,
            Placement::Concentrated(0),
            Dist::Cyclic,
        );
        let v = DistVector::from_fn(vl, |_| 0.0f64);
        let _ = m.zip_axis(&mut hc, Axis::Row, &v, |_, _, a, _| a);
    }

    #[test]
    #[should_panic(expected = "chunking must match")]
    fn zip_axis_rejects_mismatched_chunking() {
        let (mut hc, layout) = setup(4, 4);
        let m = DistMatrix::from_fn(layout.clone(), |_, _| 0.0f64);
        let vl = VectorLayout::aligned(
            4,
            layout.grid().clone(),
            Axis::Row,
            Placement::Replicated,
            Dist::Block, // matrix is cyclic
        );
        let v = DistVector::from_fn(vl, |_| 0.0f64);
        let _ = m.zip_axis(&mut hc, Axis::Row, &v, |_, _, a, _| a);
    }
}
