//! Criterion wall-clock benches of the slab data plane against the
//! preserved seed nested-Vec path (the `reproduce -- wallclock`
//! experiment gives the same comparison in table + JSON form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vmp_bench::common::{cm2, hash_entry, random_aligned_vector, random_dist_matrix, square_grid};
use vmp_core::prelude::*;
use vmp_hypercube::collective::{self, reference};
use vmp_hypercube::slab::NodeSlab;

const DIM: u32 = 8;

fn bench_allreduce_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("wallclock_allreduce");
    g.sample_size(10);
    let p = 1usize << DIM;
    let dims: Vec<u32> = (0..DIM).collect();
    for len in [64usize, 1024] {
        let nested: Vec<Vec<f64>> =
            (0..p).map(|n| (0..len).map(|i| hash_entry(n, i)).collect()).collect();
        g.bench_with_input(BenchmarkId::new("seed_nested", len), &len, |b, _| {
            b.iter(|| {
                let mut hc = cm2(DIM);
                let mut locals = nested.clone();
                reference::allreduce(&mut hc, &mut locals, &dims, |a, b| a + b);
                std::hint::black_box(locals)
            });
        });
        let slab = NodeSlab::from_nested(&nested);
        g.bench_with_input(BenchmarkId::new("slab", len), &len, |b, _| {
            b.iter(|| {
                let mut hc = cm2(DIM);
                let mut s = slab.clone();
                collective::allreduce_slab(&mut hc, &mut s, &dims, |a, b| a + b);
                std::hint::black_box(s)
            });
        });
    }
    g.finish();
}

fn bench_rank1_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("wallclock_rank1");
    g.sample_size(10);
    for n in [64usize, 256] {
        let m = random_dist_matrix(n, square_grid(DIM));
        let col = random_aligned_vector(&m, Axis::Col);
        let row = random_aligned_vector(&m, Axis::Row);
        g.bench_with_input(BenchmarkId::new("slab_tiled", n), &n, |b, _| {
            b.iter(|| {
                let mut hc = cm2(DIM);
                let mut mm = m.clone();
                mm.rank1_update(&mut hc, &col, &row, |_, _, a, c, r| a - c * r);
                std::hint::black_box(mm)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_allreduce_paths, bench_rank1_update);
criterion_main!(benches);
