//! Criterion wall-clock benches of naive vs primitive implementations
//! (table T3 / figure F3). Note the *host* cost of simulating the
//! element-granular router is itself large — which mirrors why the real
//! machine was slow: per-element work that blocking eliminates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vmp_bench::common::{cm2, random_dist_matrix, square_grid};
use vmp_bench::experiments::naive_exp;
use vmp_core::elem::Sum;
use vmp_core::prelude::*;
use vmp_core::{naive, primitives};

const DIM: u32 = 6;

fn bench_reduce_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("t3_reduce");
    g.sample_size(10);
    for n in [64usize, 256] {
        let m = random_dist_matrix(n, square_grid(DIM));
        g.bench_with_input(BenchmarkId::new("naive", n), &m, |b, m| {
            b.iter(|| {
                let mut hc = cm2(DIM);
                std::hint::black_box(naive::naive_reduce(&mut hc, m, Axis::Row, Sum))
            });
        });
        g.bench_with_input(BenchmarkId::new("primitives", n), &m, |b, m| {
            b.iter(|| {
                let mut hc = cm2(DIM);
                std::hint::black_box(primitives::reduce(&mut hc, m, Axis::Row, Sum))
            });
        });
    }
    g.finish();
}

fn bench_extract_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("t3_extract_replicated");
    g.sample_size(10);
    for n in [64usize, 256] {
        let m = random_dist_matrix(n, square_grid(DIM));
        g.bench_with_input(BenchmarkId::new("naive", n), &m, |b, m| {
            b.iter(|| {
                let mut hc = cm2(DIM);
                std::hint::black_box(naive::naive_extract_replicated(&mut hc, m, Axis::Row, n / 2))
            });
        });
        g.bench_with_input(BenchmarkId::new("primitives", n), &m, |b, m| {
            b.iter(|| {
                let mut hc = cm2(DIM);
                std::hint::black_box(primitives::extract_replicated(&mut hc, m, Axis::Row, n / 2))
            });
        });
    }
    g.finish();
}

fn bench_application_kernels(c: &mut Criterion) {
    // The full T3 pairs as one measured driver each.
    let mut g = c.benchmark_group("t3_kernels");
    g.sample_size(10);
    g.bench_function("matvec_pair_128", |b| {
        b.iter(|| std::hint::black_box(naive_exp::matvec_pair(128, DIM)));
    });
    g.bench_function("ge_step_pair_128", |b| {
        b.iter(|| std::hint::black_box(naive_exp::ge_step_pair(128, DIM)));
    });
    g.bench_function("simplex_pivot_pair_128", |b| {
        b.iter(|| std::hint::black_box(naive_exp::simplex_pivot_pair(128, DIM)));
    });
    g.finish();
}

criterion_group!(benches, bench_reduce_pair, bench_extract_pair, bench_application_kernels);
criterion_main!(benches);
