//! Criterion wall-clock benches of the three applications (table T4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vmp_algos::{gauss, simplex, vecmat, workloads};
use vmp_bench::common::{cm2, random_aligned_vector, random_dist_matrix, square_grid};
use vmp_core::prelude::*;

fn bench_vecmat(c: &mut Criterion) {
    let mut g = c.benchmark_group("t4_vecmat");
    g.sample_size(10);
    for n in [128usize, 512] {
        let a = random_dist_matrix(n, square_grid(8));
        let x = random_aligned_vector(&a, Axis::Col);
        g.bench_with_input(BenchmarkId::from_parameter(n), &(a, x), |b, (a, x)| {
            b.iter(|| {
                let mut hc = cm2(8);
                std::hint::black_box(vecmat(&mut hc, x, a))
            });
        });
    }
    g.finish();
}

fn bench_ge_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("t4_gaussian_elimination");
    g.sample_size(10);
    for n in [32usize, 64, 128] {
        let (a, bvec, _) = workloads::diag_dominant_system(n, n as u64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &(a, bvec), |b, (a, bvec)| {
            b.iter(|| {
                let mut hc = cm2(6);
                std::hint::black_box(
                    gauss::ge_solve(&mut hc, a, bvec, square_grid(6)).expect("nonsingular"),
                )
            });
        });
    }
    g.finish();
}

fn bench_ge_serial_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("t4_ge_serial_baseline");
    g.sample_size(10);
    for n in [32usize, 64, 128] {
        let (a, bvec, _) = workloads::diag_dominant_system(n, n as u64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &(a, bvec), |b, (a, bvec)| {
            b.iter(|| {
                std::hint::black_box(vmp_algos::serial::lu_solve(a, bvec).expect("nonsingular"))
            });
        });
    }
    g.finish();
}

fn bench_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("t4_simplex");
    g.sample_size(10);
    for n in [16usize, 32, 64] {
        let lp = workloads::random_dense_lp(n, n, 5);
        g.bench_with_input(BenchmarkId::new("parallel", n), &lp, |b, lp| {
            b.iter(|| {
                let mut hc = cm2(6);
                std::hint::black_box(simplex::solve_parallel(&mut hc, lp, square_grid(6), 10_000))
            });
        });
        g.bench_with_input(BenchmarkId::new("serial", n), &lp, |b, lp| {
            b.iter(|| std::hint::black_box(vmp_algos::serial::simplex_solve(lp, 10_000)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_vecmat, bench_ge_solve, bench_ge_serial_baseline, bench_simplex);
criterion_main!(benches);
