//! Criterion wall-clock benches of the collective substrate (figure F4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vmp_bench::common::cm2;
use vmp_hypercube::collective;
use vmp_hypercube::spanning::{allreduce_rabenseifner, broadcast_with, BroadcastSchedule};

const DIM: u32 = 8;

fn bench_broadcast_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("f4_broadcast");
    g.sample_size(10);
    let dims: Vec<u32> = (0..DIM).collect();
    for len in [64usize, 4096] {
        for (name, sched) in [
            ("binomial", BroadcastSchedule::Binomial),
            ("scatter_allgather", BroadcastSchedule::ScatterAllgather),
            ("allport_esbt", BroadcastSchedule::AllPortEsbt),
        ] {
            g.bench_with_input(BenchmarkId::new(name, len), &len, |b, &len| {
                b.iter(|| {
                    let mut hc = cm2(DIM);
                    let mut locals =
                        hc.locals_from_fn(|n| if n == 0 { vec![1.0f64; len] } else { Vec::new() });
                    broadcast_with(&mut hc, &mut locals, &dims, 0, sched);
                    std::hint::black_box(locals)
                });
            });
        }
    }
    g.finish();
}

fn bench_allreduce_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("f4_allreduce");
    g.sample_size(10);
    let dims: Vec<u32> = (0..DIM).collect();
    for len in [64usize, 4096] {
        g.bench_with_input(BenchmarkId::new("butterfly", len), &len, |b, &len| {
            b.iter(|| {
                let mut hc = cm2(DIM);
                let mut locals = hc.locals_from_fn(|n| vec![n as f64; len]);
                collective::allreduce(&mut hc, &mut locals, &dims, |a, b| a + b);
                std::hint::black_box(locals)
            });
        });
        g.bench_with_input(BenchmarkId::new("rabenseifner", len), &len, |b, &len| {
            b.iter(|| {
                let mut hc = cm2(DIM);
                let mut locals = hc.locals_from_fn(|n| vec![n as f64; len]);
                allreduce_rabenseifner(&mut hc, &mut locals, &dims, |a, b| a + b);
                std::hint::black_box(locals)
            });
        });
    }
    g.finish();
}

fn bench_scan_and_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("f4_scan_alltoall");
    g.sample_size(10);
    let dims: Vec<u32> = (0..DIM).collect();
    g.bench_function("scan_inclusive_256", |b| {
        b.iter(|| {
            let mut hc = cm2(DIM);
            let mut locals = hc.locals_from_fn(|n| vec![n as u64; 256]);
            collective::scan_inclusive(&mut hc, &mut locals, &dims, |a, b| a.wrapping_add(b));
            std::hint::black_box(locals)
        });
    });
    g.bench_function("alltoall_16_per_pair", |b| {
        b.iter(|| {
            let mut hc = cm2(DIM);
            let p = hc.p();
            let send: Vec<Vec<Vec<u32>>> =
                (0..p).map(|s| (0..p).map(|c| vec![(s * p + c) as u32; 16]).collect()).collect();
            std::hint::black_box(collective::alltoall(&mut hc, send, &dims))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_broadcast_schedules,
    bench_allreduce_schedules,
    bench_scan_and_alltoall
);
criterion_main!(benches);
