//! Criterion wall-clock benches of the four primitives (tables T1/T2).
//!
//! The simulated clock in `reproduce` answers "what would the CM-2 do";
//! these benches measure what the *host* actually does executing the same
//! data movement — the real-machine series of the reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vmp_bench::common::{cm2, random_aligned_vector, random_dist_matrix, square_grid};
use vmp_core::elem::Sum;
use vmp_core::prelude::*;
use vmp_core::primitives;

fn bench_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_reduce");
    g.sample_size(10);
    for n in [64usize, 256, 1024] {
        let m = random_dist_matrix(n, square_grid(8));
        g.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| {
                let mut hc = cm2(8);
                std::hint::black_box(primitives::reduce(&mut hc, m, Axis::Row, Sum))
            });
        });
    }
    g.finish();
}

fn bench_distribute(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_distribute");
    g.sample_size(10);
    for n in [64usize, 256, 1024] {
        let m = random_dist_matrix(n, square_grid(8));
        let v = random_aligned_vector(&m, Axis::Row);
        g.bench_with_input(BenchmarkId::from_parameter(n), &v, |b, v| {
            b.iter(|| {
                let mut hc = cm2(8);
                std::hint::black_box(primitives::distribute(&mut hc, v, n, Dist::Cyclic))
            });
        });
    }
    g.finish();
}

fn bench_extract_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_extract_insert");
    g.sample_size(10);
    for n in [256usize, 1024] {
        let m = random_dist_matrix(n, square_grid(8));
        g.bench_with_input(BenchmarkId::new("extract_replicated", n), &m, |b, m| {
            b.iter(|| {
                let mut hc = cm2(8);
                std::hint::black_box(primitives::extract_replicated(&mut hc, m, Axis::Row, n / 2))
            });
        });
        let v = random_aligned_vector(&m, Axis::Row);
        g.bench_with_input(BenchmarkId::new("insert", n), &(m, v), |b, (m, v)| {
            b.iter(|| {
                let mut m2 = (*m).clone();
                let mut hc = cm2(8);
                primitives::insert(&mut hc, &mut m2, Axis::Row, n / 3, v);
                std::hint::black_box(m2)
            });
        });
    }
    g.finish();
}

fn bench_machine_scaling(c: &mut Criterion) {
    // T2's axis: same matrix, growing machine.
    let mut g = c.benchmark_group("t2_reduce_scaling");
    g.sample_size(10);
    for dim in [4u32, 8, 10] {
        let m = random_dist_matrix(512, square_grid(dim));
        g.bench_with_input(BenchmarkId::from_parameter(1usize << dim), &m, |b, m| {
            b.iter(|| {
                let mut hc = cm2(dim);
                std::hint::black_box(primitives::reduce(&mut hc, m, Axis::Row, Sum))
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_reduce,
    bench_distribute,
    bench_extract_insert,
    bench_machine_scaling
);
criterion_main!(benches);
