//! Criterion wall-clock benches of the extension applications
//! (experiments X1–X3) plus the scan/segmented machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vmp_algos::tridiag::{random_tridiag, DistTridiag};
use vmp_algos::{matmul, matmul_panelled, stencil, workloads};
use vmp_bench::common::{cm2, random_dist_matrix, square_grid};
use vmp_core::elem::Sum;
use vmp_core::prelude::*;
use vmp_core::scan::{scan_inclusive, segmented_reduce};

const DIM: u32 = 6;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("x1_matmul");
    g.sample_size(10);
    for n in [32usize, 64] {
        let a = random_dist_matrix(n, square_grid(DIM));
        let b = random_dist_matrix(n, square_grid(DIM));
        g.bench_with_input(BenchmarkId::new("rank1", n), &(&a, &b), |bench, (a, b)| {
            bench.iter(|| {
                let mut hc = cm2(DIM);
                std::hint::black_box(matmul(&mut hc, a, b))
            });
        });
        g.bench_with_input(BenchmarkId::new("panel8", n), &(&a, &b), |bench, (a, b)| {
            bench.iter(|| {
                let mut hc = cm2(DIM);
                std::hint::black_box(matmul_panelled(&mut hc, a, b, 8))
            });
        });
    }
    g.finish();
}

fn bench_stencil(c: &mut Criterion) {
    let mut g = c.benchmark_group("x3_stencil");
    g.sample_size(10);
    for n in [64usize, 128] {
        let layout = MatrixLayout::block(MatShape::new(n, n), square_grid(DIM));
        let f = DistMatrix::from_fn(layout, |i, j| f64::from(u8::from(i == n / 2 && j == n / 2)));
        g.bench_with_input(BenchmarkId::new("jacobi_5_sweeps", n), &f, |bench, f| {
            bench.iter(|| {
                let mut hc = cm2(DIM);
                std::hint::black_box(stencil::jacobi_poisson(&mut hc, f, 1.0, 5))
            });
        });
    }
    g.finish();
}

fn bench_tridiag(c: &mut Criterion) {
    let mut g = c.benchmark_group("tridiag_pcr");
    g.sample_size(10);
    for n in [256usize, 1024] {
        let (a, b, cc, d, _) = random_tridiag(n, 3);
        g.bench_with_input(BenchmarkId::new("pcr", n), &(a, b, cc, d), |bench, (a, b, cc, d)| {
            bench.iter(|| {
                let mut hc = cm2(DIM);
                let sys = DistTridiag::from_diagonals(square_grid(DIM), a, b, cc, d);
                std::hint::black_box(sys.solve_pcr(&mut hc))
            });
        });
        let (a, b, cc, d, _) = random_tridiag(n, 3);
        g.bench_function(BenchmarkId::new("thomas_serial", n), |bench| {
            bench.iter(|| std::hint::black_box(vmp_algos::tridiag::thomas_solve(&a, &b, &cc, &d)));
        });
    }
    g.finish();
}

fn bench_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan");
    g.sample_size(10);
    for n in [1024usize, 8192] {
        let layout = VectorLayout::linear(n, square_grid(DIM), Dist::Block);
        let v = DistVector::from_fn(layout.clone(), |i| i as i64);
        g.bench_with_input(BenchmarkId::new("inclusive_sum", n), &v, |bench, v| {
            bench.iter(|| {
                let mut hc = cm2(DIM);
                std::hint::black_box(scan_inclusive(&mut hc, v, Sum))
            });
        });
        let flags = DistVector::from_fn(layout, |i| i % 37 == 0);
        g.bench_with_input(
            BenchmarkId::new("segmented_reduce", n),
            &(&v, &flags),
            |bench, (v, f)| {
                bench.iter(|| {
                    let mut hc = cm2(DIM);
                    std::hint::black_box(segmented_reduce(&mut hc, v, f, Sum))
                });
            },
        );
    }
    g.finish();
}

fn bench_cg(c: &mut Criterion) {
    let mut g = c.benchmark_group("x2_cg");
    g.sample_size(10);
    let (a, b, _) = workloads::spd_system(64, 5);
    let am = DistMatrix::from_fn(
        MatrixLayout::cyclic(MatShape::new(64, 64), square_grid(DIM)),
        |i, j| a.get(i, j),
    );
    g.bench_function("cg_64", |bench| {
        bench.iter(|| {
            let mut hc = cm2(DIM);
            std::hint::black_box(vmp_algos::cg::cg_solve(
                &mut hc,
                &am,
                &b,
                vmp_algos::cg::CgOptions::default(),
            ))
        });
    });
    g.finish();
}

fn bench_fft_sort(c: &mut Criterion) {
    use vmp_algos::fft::{fft, Cplx};
    use vmp_algos::sort::sort_ascending;
    let mut g = c.benchmark_group("x4_fft_sort");
    g.sample_size(10);
    for n in [1024usize, 4096] {
        let layout = VectorLayout::linear(n, square_grid(DIM), Dist::Block);
        let x: Vec<Cplx> = (0..n).map(|i| Cplx::new((i % 17) as f64 - 8.0, 0.0)).collect();
        let v = DistVector::from_slice(layout.clone(), &x);
        g.bench_with_input(BenchmarkId::new("fft", n), &v, |bench, v| {
            bench.iter(|| {
                let mut hc = cm2(DIM);
                std::hint::black_box(fft(&mut hc, v))
            });
        });
        let keys: Vec<i64> = (0..n).map(|i| ((i * 7919) % (2 * n)) as i64).collect();
        let kv = DistVector::from_slice(layout, &keys);
        g.bench_with_input(BenchmarkId::new("bitonic_sort", n), &kv, |bench, kv| {
            bench.iter(|| {
                let mut hc = cm2(DIM);
                std::hint::black_box(sort_ascending(&mut hc, kv))
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_stencil,
    bench_tridiag,
    bench_scans,
    bench_cg,
    bench_fft_sort
);
criterion_main!(benches);
