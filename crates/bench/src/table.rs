//! Plain-text table rendering for the reproduction harness.

use serde::Serialize;

/// One reproduced table or figure series.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment identifier (`T1` … `F4`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The abstract sentence this experiment reproduces.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form observations appended under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    #[must_use]
    pub fn new(id: &str, title: &str, claim: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            claim: claim.to_string(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("   claim: {}\n", self.claim));
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format!("   {}\n", line(&self.headers)));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&format!("   {}\n", "-".repeat(total)));
        for row in &self.rows {
            out.push_str(&format!("   {}\n", line(row)));
        }
        for n in &self.notes {
            out.push_str(&format!("   note: {n}\n"));
        }
        out
    }
}

/// Format microseconds as a human-scaled duration.
#[must_use]
pub fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{us:.1}us")
    }
}

/// Format a dimensionless ratio.
#[must_use]
pub fn fmt_x(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T0", "demo", "none", &["n", "time"]);
        t.row(vec!["8".into(), "1.0us".into()]);
        t.row(vec!["1024".into(), "123.45ms".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("T0"));
        assert!(s.contains("claim: none"));
        assert!(s.contains("note: a note"));
        // All data lines equal length (alignment).
        let lines: Vec<&str> = s
            .lines()
            .filter(|l| l.starts_with("   ") && !l.contains("note:") && !l.contains("claim:"))
            .collect();
        let lens: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{lens:?}");
    }

    #[test]
    fn fmt_us_scales() {
        assert_eq!(fmt_us(12.34), "12.3us");
        assert_eq!(fmt_us(12345.0), "12.35ms");
        assert_eq!(fmt_us(2_500_000.0), "2.50s");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("T0", "demo", "none", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
