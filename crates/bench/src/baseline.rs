//! Guarded writes for the committed `BENCH_*.json` baselines.
//!
//! The wall-clock and all-port experiments emit JSON artifacts that are
//! committed as regression baselines. Two accidents can silently destroy
//! a good baseline: a `--smoke` CI run replacing a full-sized one, and a
//! re-run replacing an artifact that was already regenerated after the
//! current binary was built. [`guarded_write`] refuses both unless the
//! caller passes `--force`.

use std::path::Path;
use std::time::SystemTime;

use serde::Serialize;

/// Envelope every guarded artifact is wrapped in: the guard needs to
/// know whether an existing file came from a full or a smoke run.
#[derive(Debug, Clone, Serialize)]
pub struct Baseline<'a, T: Serialize> {
    /// Whether the run used CI-sized inputs.
    pub smoke: bool,
    /// The measurement rows.
    pub entries: &'a [T],
}

/// What a guarded write did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The artifact was (over)written.
    Written,
    /// A full-sized baseline exists and this is a smoke run — kept.
    KeptFullBaseline,
    /// The existing artifact is newer than the running binary (already
    /// regenerated since the last build) — kept.
    KeptNewer,
    /// The write failed; the error was reported on stderr.
    IoError,
}

impl WriteOutcome {
    /// One-line description for table notes.
    #[must_use]
    pub fn describe(self, path: &str) -> String {
        match self {
            WriteOutcome::Written => format!("wrote {path}"),
            WriteOutcome::KeptFullBaseline => {
                format!("kept {path}: full baseline present, smoke run refuses to replace it (--force overrides)")
            }
            WriteOutcome::KeptNewer => {
                format!("kept {path}: artifact is newer than this binary (--force overrides)")
            }
            WriteOutcome::IoError => format!("could not write {path} (see stderr)"),
        }
    }
}

/// Write `entries` to `path` wrapped in a [`Baseline`] envelope, unless
/// the existing artifact should be protected:
///
/// * an existing **full** baseline is never replaced by a `smoke` run;
/// * an existing artifact with a modification time **newer** than the
///   running binary was regenerated after the last build and is never
///   silently replaced.
///
/// `force` overrides both guards. Legacy artifacts without the envelope
/// (a bare JSON array) are treated as full baselines.
pub fn guarded_write<T: Serialize>(
    path: &str,
    entries: &[T],
    smoke: bool,
    force: bool,
) -> WriteOutcome {
    if !force {
        if let Some(outcome) = protect_existing(path, smoke) {
            return outcome;
        }
    }
    let wrapped = Baseline { smoke, entries };
    let json = serde_json::to_string_pretty(&wrapped).expect("serialisable baseline entries");
    match std::fs::write(path, json) {
        Ok(()) => WriteOutcome::Written,
        Err(e) => {
            eprintln!("warning: cannot write {path}: {e}");
            WriteOutcome::IoError
        }
    }
}

/// `Some(outcome)` when the existing artifact at `path` must be kept.
fn protect_existing(path: &str, smoke: bool) -> Option<WriteOutcome> {
    let meta = std::fs::metadata(path).ok()?;
    if smoke && existing_is_full(path) {
        return Some(WriteOutcome::KeptFullBaseline);
    }
    let artifact_mtime = meta.modified().ok()?;
    if artifact_mtime > binary_mtime()? {
        return Some(WriteOutcome::KeptNewer);
    }
    None
}

/// Whether the artifact at `path` records a full (non-smoke) run. The
/// vendored `serde_json` stand-in cannot parse, so this is a textual
/// check for the envelope's `"smoke": true` marker; files that predate
/// the envelope (or are unreadable) count as full — the safe default is
/// to protect them.
fn existing_is_full(path: &str) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        return true;
    };
    !text.contains("\"smoke\": true")
}

/// Modification time of the running binary — the "was this artifact
/// produced after the last build" reference point.
fn binary_mtime() -> Option<SystemTime> {
    let exe = std::env::current_exe().ok()?;
    Path::new(&exe).metadata().ok()?.modified().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("vmp-baseline-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn fresh_path_is_written_with_envelope() {
        let path = tmp("fresh.json");
        let _ = std::fs::remove_file(&path);
        assert_eq!(guarded_write(&path, &[1u32, 2, 3], true, false), WriteOutcome::Written);
        let text = std::fs::read_to_string(&path).expect("written");
        assert!(text.contains("\"smoke\": true"), "{text}");
        assert!(text.contains("\"entries\": ["), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn smoke_never_replaces_full_baseline_without_force() {
        let path = tmp("full.json");
        let _ = std::fs::remove_file(&path);
        assert_eq!(guarded_write(&path, &[10u32], false, false), WriteOutcome::Written);
        assert_eq!(
            guarded_write(&path, &[99u32], true, false),
            WriteOutcome::KeptFullBaseline,
            "smoke run must keep the full baseline"
        );
        let text = std::fs::read_to_string(&path).expect("kept");
        assert!(text.contains("10") && !text.contains("99"));
        assert_eq!(guarded_write(&path, &[99u32], true, true), WriteOutcome::Written);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn artifact_newer_than_binary_is_kept_without_force() {
        // Anything this test writes is newer than the test binary, so a
        // second same-mode write must refuse without --force.
        let path = tmp("newer.json");
        let _ = std::fs::remove_file(&path);
        assert_eq!(guarded_write(&path, &[1u32], true, false), WriteOutcome::Written);
        assert_eq!(guarded_write(&path, &[2u32], true, false), WriteOutcome::KeptNewer);
        assert_eq!(guarded_write(&path, &[2u32], true, true), WriteOutcome::Written);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_bare_array_counts_as_full() {
        let path = tmp("legacy.json");
        std::fs::write(&path, "[{\"bench\": \"x\"}]").expect("seeded");
        assert_eq!(guarded_write(&path, &[1u32], true, false), WriteOutcome::KeptFullBaseline);
        let _ = std::fs::remove_file(&path);
    }
}
