//! Shared setup for the reproduction experiments.

use vmp_core::prelude::*;
use vmp_hypercube::topology::Cube;

/// The CM-2-flavoured machine used throughout the reproduction.
#[must_use]
pub fn cm2(dim: u32) -> Hypercube {
    Hypercube::new(dim, CostModel::cm2())
}

/// The squarest grid on a `dim`-cube.
#[must_use]
pub fn square_grid(dim: u32) -> ProcGrid {
    ProcGrid::square(Cube::new(dim))
}

/// A deterministic pseudo-random `n x n` distributed matrix (cyclic
/// layout) — cheap hash-based entries, no RNG state.
#[must_use]
pub fn random_dist_matrix(n: usize, grid: ProcGrid) -> DistMatrix<f64> {
    let layout = MatrixLayout::cyclic(MatShape::new(n, n), grid);
    DistMatrix::from_fn(layout, hash_entry)
}

/// A deterministic replicated, axis-aligned vector matching `m`'s
/// distribution along `axis`.
#[must_use]
pub fn random_aligned_vector(m: &DistMatrix<f64>, axis: Axis) -> DistVector<f64> {
    let layout = VectorLayout::aligned(
        m.shape().vector_len(axis),
        m.layout().grid().clone(),
        axis,
        Placement::Replicated,
        m.layout().vector_dist(axis).kind(),
    );
    DistVector::from_fn(layout, |i| hash_entry(i, 17))
}

/// A cheap deterministic value in roughly `[-1, 1]`.
#[must_use]
pub fn hash_entry(i: usize, j: usize) -> f64 {
    let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h as f64 / u64::MAX as f64) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_entry_is_deterministic_and_bounded() {
        assert_eq!(hash_entry(3, 4), hash_entry(3, 4));
        assert_ne!(hash_entry(3, 4), hash_entry(4, 3));
        for i in 0..50 {
            for j in 0..50 {
                let v = hash_entry(i, j);
                assert!((-1.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn setup_helpers_compose() {
        let hc = cm2(4);
        let g = square_grid(4);
        let m = random_dist_matrix(8, g);
        m.assert_consistent();
        let v = random_aligned_vector(&m, Axis::Row);
        v.assert_consistent();
        assert_eq!(v.n(), 8);
        assert_eq!(hc.p(), 16);
    }
}
