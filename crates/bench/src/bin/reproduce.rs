//! Regenerate every table and figure of the reproduced evaluation.
//!
//! ```text
//! cargo run --release -p vmp-bench --bin reproduce            # everything
//! cargo run --release -p vmp-bench --bin reproduce -- t1 f4   # a subset
//! cargo run --release -p vmp-bench --bin reproduce -- r1      # fault sweep
//! cargo run --release -p vmp-bench --bin reproduce -- --list  # what exists
//! cargo run --release -p vmp-bench --bin reproduce -- --json out.json
//! cargo run --release -p vmp-bench --bin reproduce -- wallclock --smoke
//! cargo run --release -p vmp-bench --bin reproduce -- sched --smoke
//! cargo run --release -p vmp-bench --bin reproduce -- allport --smoke
//! cargo run --release -p vmp-bench --bin reproduce -- wallclock --json-path /tmp/wc.json
//! cargo run --release -p vmp-bench --bin reproduce -- wallclock --force
//! ```
//!
//! Exit codes: 0 on success, 2 for unknown flags/ids or bad usage, 1
//! for I/O failures while writing `--json` output.

use std::io::Write;

use vmp_bench::experiments::{self, RunOpts, ALL_IDS, DESCRIPTIONS};
use vmp_bench::table::Table;

fn usage() -> String {
    format!(
        "usage: reproduce [--list] [--smoke] [--force] [--json PATH] [--json-path PATH] [ID ...]\n\
         known experiment ids: {}\n\
         run with no ids to reproduce everything; --list describes each id;\n\
         --smoke shrinks the wallclock, allport and sched experiments to CI-sized inputs;\n\
         --json-path overrides where an experiment writes its BENCH_*.json artifact\n\
         (select one artifact-writing experiment when using it);\n\
         --force overwrites a BENCH_*.json baseline the guard would otherwise keep\n\
         (a full-sized baseline during a smoke run, or one newer than this binary)",
        ALL_IDS.join(" ")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut opts = RunOpts::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--smoke" {
            opts.smoke = true;
        } else if a == "--force" {
            opts.force = true;
        } else if a == "--json" {
            json_path = it.next();
            if json_path.is_none() {
                eprintln!("--json requires a path\n{}", usage());
                std::process::exit(2);
            }
        } else if a == "--json-path" {
            opts.json_path = it.next();
            if opts.json_path.is_none() {
                eprintln!("--json-path requires a path\n{}", usage());
                std::process::exit(2);
            }
        } else if a == "--list" {
            for (id, desc) in DESCRIPTIONS {
                println!("{id:4} {desc}");
            }
            // Not an experiment, but part of reproducing the repo's
            // claims: the invariant linter shares this binary's exit
            // conventions (0 clean, 2 violations/bad usage, 1 I/O).
            println!(
                "\ntooling (not runnable from this binary):\n  \
                 vmplint   cargo run --release -p vmplint -- [--json PATH]   \
                 determinism/aliasing/panic-surface lint over the library crates"
            );
            return;
        } else if a == "--help" || a == "-h" {
            eprintln!("{}", usage());
            return;
        } else if a.starts_with('-') {
            eprintln!("unknown flag: {a}\n{}", usage());
            std::process::exit(2);
        } else {
            ids.push(a);
        }
    }
    // Validate up front so a typo late in the list doesn't waste a run.
    for id in &ids {
        if !ALL_IDS.contains(&id.to_ascii_lowercase().as_str()) {
            eprintln!("unknown experiment id: {id}\n{}", usage());
            std::process::exit(2);
        }
    }
    if ids.is_empty() {
        ids = ALL_IDS.iter().map(ToString::to_string).collect();
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "Four Vector-Matrix Primitives (SPAA 1989) — evaluation reproduction\n\
         machine: simulated CM-2-model hypercube (see crates/hypercube/src/cost.rs)\n"
    )
    .expect("stdout");

    let mut tables: Vec<Table> = Vec::new();
    for id in &ids {
        match experiments::run_with(id, &opts) {
            Some(t) => {
                writeln!(out, "{}", t.render()).expect("stdout");
                tables.push(t);
            }
            None => {
                // Unreachable after up-front validation, but keep the
                // defence for direct library misuse.
                eprintln!("unknown experiment id: {id}\n{}", usage());
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&tables).expect("serialisable tables");
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        writeln!(out, "wrote {} tables to {path}", tables.len()).expect("stdout");
    }
}
