//! # vmp-bench — the evaluation reproduction harness
//!
//! One driver per table/figure of the paper's evaluation (as
//! reconstructed from the abstract; see `DESIGN.md` for the experiment
//! index and `EXPERIMENTS.md` for recorded outcomes):
//!
//! | id | what it reproduces |
//! |----|---|
//! | T1/T2 | primitive timings vs matrix and machine size |
//! | T3/F3 | naive (element router) vs primitive implementations |
//! | T4 | full-algorithm timings (GE, simplex) + layout ablation |
//! | T5 | embedding-change costs |
//! | F1/F2 | the `m > p lg p` optimality claims as curves |
//! | F4 | spanning-tree collective schedule ablation |
//! | SCHED | multi-tenant subcube scheduler vs whole-machine FCFS (`BENCH_sched.json`) |
//!
//! Run everything with `cargo run --release -p vmp-bench --bin reproduce`,
//! or a subset with e.g. `-- t1 f4`. Criterion wall-clock benches of the
//! same kernels live in `benches/`.

#![warn(missing_docs)]

pub mod baseline;
pub mod common;
pub mod experiments;
pub mod table;
