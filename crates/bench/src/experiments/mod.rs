//! The reproduction experiments — one driver per table/figure of
//! `DESIGN.md`'s experiment index.

pub mod algorithms_exp;
pub mod embedding_exp;
pub mod extensions_exp;
pub mod naive_exp;
pub mod optimality_exp;
pub mod primitives_exp;
pub mod spanning_exp;

use crate::table::Table;

/// All experiment ids in presentation order (T/F reproduce the paper's
/// evaluation; X are this library's extensions).
pub const ALL_IDS: [&str; 15] = [
    "t1", "t2", "t3", "t4", "t5", "f1", "f2", "f3", "f4", "x1", "x2", "x3", "x4", "x5", "x6",
];

/// Run one experiment by id (case-insensitive). `None` for unknown ids.
#[must_use]
pub fn run(id: &str) -> Option<Table> {
    match id.to_ascii_lowercase().as_str() {
        "t1" => Some(primitives_exp::t1()),
        "t2" => Some(primitives_exp::t2()),
        "t3" => Some(naive_exp::t3()),
        "t4" => Some(algorithms_exp::t4()),
        "t5" => Some(embedding_exp::t5()),
        "f1" => Some(optimality_exp::f1()),
        "f2" => Some(optimality_exp::f2()),
        "f3" => Some(naive_exp::f3()),
        "f4" => Some(spanning_exp::f4()),
        "x1" => Some(extensions_exp::x1()),
        "x2" => Some(extensions_exp::x2()),
        "x3" => Some(extensions_exp::x3()),
        "x4" => Some(extensions_exp::x4()),
        "x5" => Some(extensions_exp::x5()),
        "x6" => Some(extensions_exp::x6()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run("t99").is_none());
    }

    #[test]
    fn ids_are_exhaustive() {
        // Every listed id resolves (running the cheap ones only would
        // still construct all closures; here we just check dispatch keys
        // without executing the heavy drivers).
        for id in ALL_IDS {
            assert!(
                matches!(
                    id,
                    "t1" | "t2" | "t3" | "t4" | "t5" | "f1" | "f2" | "f3" | "f4" | "x1" | "x2" | "x3" | "x4" | "x5" | "x6"
                ),
                "{id} should be dispatchable"
            );
        }
    }
}
