//! The reproduction experiments — one driver per table/figure of
//! `DESIGN.md`'s experiment index.

pub mod algorithms_exp;
pub mod allport_exp;
pub mod embedding_exp;
pub mod extensions_exp;
pub mod fault_exp;
pub mod naive_exp;
pub mod optimality_exp;
pub mod primitives_exp;
pub mod sched_exp;
pub mod spanning_exp;
pub mod wallclock_exp;

use crate::table::Table;

/// All experiment ids in presentation order (T/F reproduce the paper's
/// evaluation; X are this library's extensions; R are robustness;
/// `sched` is the multi-tenant scheduler study; `allport` the all-port
/// collective engine; `wallclock` measures the simulator's own host
/// time).
pub const ALL_IDS: [&str; 19] = [
    "t1",
    "t2",
    "t3",
    "t4",
    "t5",
    "f1",
    "f2",
    "f3",
    "f4",
    "x1",
    "x2",
    "x3",
    "x4",
    "x5",
    "x6",
    "r1",
    "sched",
    "allport",
    "wallclock",
];

/// `(id, one-line description)` for every experiment, in [`ALL_IDS`]
/// order — what `reproduce --list` prints.
pub const DESCRIPTIONS: [(&str, &str); 19] = [
    ("t1", "primitive timings vs matrix size (p = 1024, CM-2 model)"),
    ("t2", "primitive timings vs machine size (n = 1024, CM-2 model)"),
    ("t3", "naive (general router) vs primitives, application kernels (p = 256)"),
    ("t4", "algorithm timings: matvec, elimination, simplex (p = 1024)"),
    ("t5", "embedding-change costs (n = 1024 vectors, 512x512 matrix, p = 1024)"),
    ("f1", "efficiency T_serial/(p*T_par) vs m/p at p = 1024"),
    ("f2", "T_par vs p at fixed n = 512, against Omega(m/p + lg p)"),
    ("f3", "per-primitive speedup of blocked over element-router implementations (p = 256)"),
    ("f4", "collective schedule ablation vs message length (p = 1024)"),
    ("x1", "matmul schedules: rank-1 (pure primitives) vs panel blocking (p = 256)"),
    ("x2", "conjugate gradient (SPD, n = 96) vs machine size"),
    ("x3", "Jacobi stencil (5 sweeps, n = 256): NEWS shifts on the Gray-coded embedding"),
    ("x4", "FFT and bitonic sort (n = 4096) vs machine size"),
    ("x5", "shape stability under different cost constants (p = 256, matvec)"),
    ("x6", "histogram: dense vs sparse all-to-all reduction (p = 256, B = 1024)"),
    ("r1", "fault-sweep: elimination under drops, dead links and degradation (p = 16)"),
    (
        "sched",
        "multi-tenant subcube scheduler vs whole-machine FCFS (p = 1024, + BENCH_sched.json)",
    ),
    (
        "allport",
        "all-port collectives vs single-port schedules (p up to 1024, + BENCH_allport.json)",
    ),
    (
        "wallclock",
        "host wall-clock: slab data plane vs seed nested-Vec path (+ BENCH_wallclock.json)",
    ),
];

/// Knobs shared by the experiment drivers. Only the artifact-emitting
/// experiments (`allport`, `wallclock`, `sched`) read them; the
/// simulated-time experiments' sizes are part of what they reproduce.
#[derive(Debug, Clone, Default)]
pub struct RunOpts {
    /// Shrink to CI-sized inputs.
    pub smoke: bool,
    /// Overwrite protected `BENCH_*.json` baselines (see
    /// [`crate::baseline`]).
    pub force: bool,
    /// Override the `BENCH_*.json` output path (`allport` and
    /// `wallclock`; select one experiment when setting this, or they
    /// will write to the same file).
    pub json_path: Option<String>,
}

/// Run one experiment by id (case-insensitive). `None` for unknown ids.
#[must_use]
pub fn run(id: &str) -> Option<Table> {
    run_with(id, &RunOpts::default())
}

/// As [`run`], shrinking the wall-clock, all-port and scheduler
/// experiments to CI-sized inputs when `smoke` is set.
#[must_use]
pub fn run_opts(id: &str, smoke: bool) -> Option<Table> {
    run_with(id, &RunOpts { smoke, ..RunOpts::default() })
}

/// As [`run`], with the full knob set.
#[must_use]
pub fn run_with(id: &str, opts: &RunOpts) -> Option<Table> {
    let smoke = opts.smoke;
    match id.to_ascii_lowercase().as_str() {
        "t1" => Some(primitives_exp::t1()),
        "t2" => Some(primitives_exp::t2()),
        "t3" => Some(naive_exp::t3()),
        "t4" => Some(algorithms_exp::t4()),
        "t5" => Some(embedding_exp::t5()),
        "f1" => Some(optimality_exp::f1()),
        "f2" => Some(optimality_exp::f2()),
        "f3" => Some(naive_exp::f3()),
        "f4" => Some(spanning_exp::f4()),
        "x1" => Some(extensions_exp::x1()),
        "x2" => Some(extensions_exp::x2()),
        "x3" => Some(extensions_exp::x3()),
        "x4" => Some(extensions_exp::x4()),
        "x5" => Some(extensions_exp::x5()),
        "x6" => Some(extensions_exp::x6()),
        "r1" => Some(fault_exp::r1()),
        "sched" => Some(sched_exp::sched(smoke)),
        "allport" => Some(allport_exp::allport(opts)),
        "wallclock" => Some(wallclock_exp::wallclock(opts)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run("t99").is_none());
    }

    #[test]
    fn ids_are_exhaustive() {
        // Every listed id resolves (running the cheap ones only would
        // still construct all closures; here we just check dispatch keys
        // without executing the heavy drivers).
        for id in ALL_IDS {
            assert!(
                matches!(
                    id,
                    "t1" | "t2"
                        | "t3"
                        | "t4"
                        | "t5"
                        | "f1"
                        | "f2"
                        | "f3"
                        | "f4"
                        | "x1"
                        | "x2"
                        | "x3"
                        | "x4"
                        | "x5"
                        | "x6"
                        | "r1"
                        | "sched"
                        | "allport"
                        | "wallclock"
                ),
                "{id} should be dispatchable"
            );
        }
    }

    #[test]
    fn descriptions_cover_every_id_in_order() {
        assert_eq!(DESCRIPTIONS.len(), ALL_IDS.len());
        for (&id, &(did, desc)) in ALL_IDS.iter().zip(DESCRIPTIONS.iter()) {
            assert_eq!(id, did, "DESCRIPTIONS must follow ALL_IDS order");
            assert!(!desc.is_empty());
        }
    }
}
