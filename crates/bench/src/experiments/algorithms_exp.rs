//! T4 — end-to-end algorithm timings (Gaussian elimination, simplex).

use vmp_algos::serial::SimplexStatus;
use vmp_algos::{gauss, simplex, workloads};
use vmp_core::prelude::*;

use crate::common::{cm2, square_grid};
use crate::table::{fmt_us, fmt_x, Table};

/// Simulated serial time of an `n^3/3`-flop elimination under the same
/// cost model (the "best serial algorithm" term).
#[must_use]
pub fn serial_ge_us(n: usize, cost: &CostModel) -> f64 {
    cost.gamma * (2.0 * (n as f64).powi(3) / 3.0)
}

/// `(simulated parallel us, row swaps)` for a full GE solve of a random
/// diagonally dominant system.
#[must_use]
pub fn ge_time(n: usize, dim: u32, cyclic: bool) -> (f64, usize) {
    let (a, b, _) = workloads::diag_dominant_system(n, n as u64);
    let grid = square_grid(dim);
    let mut hc = cm2(dim);
    let layout = if cyclic {
        MatrixLayout::cyclic(MatShape::new(n, n + 1), grid)
    } else {
        MatrixLayout::block(MatShape::new(n, n + 1), grid)
    };
    let mut aug = DistMatrix::from_fn(layout, |i, j| if j < n { a.get(i, j) } else { b[i] });
    let stats = gauss::ge_solve_dist(&mut hc, &mut aug).expect("diag dominant");
    (hc.elapsed_us(), stats.1.row_swaps)
}

/// `(simulated parallel us, pivots)` for a simplex solve to optimality.
#[must_use]
pub fn simplex_time(m: usize, n: usize, dim: u32, seed: u64) -> (f64, usize) {
    let lp = workloads::random_dense_lp(m, n, seed);
    let mut hc = cm2(dim);
    let r = simplex::solve_parallel(&mut hc, &lp, square_grid(dim), 10_000);
    assert_eq!(r.status, SimplexStatus::Optimal);
    (hc.elapsed_us(), r.iterations)
}

/// T4: full-algorithm timings on the CM-2 model.
#[must_use]
pub fn t4() -> Table {
    let dim = 10u32;
    let cost = CostModel::cm2();
    let mut t = Table::new(
        "T4",
        "algorithm timings (p = 1024, CM-2 model)",
        "\"We give Connection Machine timings for ... the algorithms\"",
        &["algorithm", "n", "parallel", "serial model", "speedup", "detail"],
    );
    for n in [32usize, 64, 128, 256] {
        let (t_par, swaps) = ge_time(n, dim, true);
        let t_ser = serial_ge_us(n, &cost);
        t.row(vec![
            "Gaussian elimination (cyclic)".into(),
            n.to_string(),
            fmt_us(t_par),
            fmt_us(t_ser),
            fmt_x(t_ser / t_par),
            format!("{swaps} row swaps"),
        ]);
    }
    // Layout ablation: block layout concentrates the shrinking active
    // submatrix (the motivation for cyclic embeddings). Run at p = 64,
    // where the per-step local work is large enough that load balance —
    // not communication start-up — is the visible term.
    for n in [256usize, 512] {
        let (t_cyc, _) = ge_time(n, 6, true);
        let (t_blk, _) = ge_time(n, 6, false);
        t.row(vec![
            "GE layout ablation (p=64)".into(),
            n.to_string(),
            fmt_us(t_cyc),
            fmt_us(t_blk),
            fmt_x(t_blk / t_cyc),
            "cyclic vs block".into(),
        ]);
    }
    for (m, n) in [(32usize, 32usize), (64, 64), (128, 128)] {
        let (t_par, pivots) = simplex_time(m, n, dim, 5);
        // Serial model: pivots * full tableau update flops.
        let width = (n + m + 1) as f64;
        let t_ser = pivots as f64 * cost.gamma * 2.0 * (m as f64 + 1.0) * width;
        t.row(vec![
            "simplex (random LP)".into(),
            n.to_string(),
            fmt_us(t_par),
            fmt_us(t_ser),
            fmt_x(t_ser / t_par),
            format!("{pivots} pivots"),
        ]);
    }
    t.note("speedup = serial model / simulated parallel; communication start-ups bound it well below p at these sizes");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_algos::serial::simplex_solve;

    #[test]
    fn ge_scales_and_cyclic_beats_block() {
        let (t64, _) = ge_time(64, 6, true);
        let (t128, _) = ge_time(128, 6, true);
        assert!(t128 > t64, "bigger systems cost more");
        let (t_cyc, _) = ge_time(96, 6, true);
        let (t_blk, _) = ge_time(96, 6, false);
        assert!(
            t_blk > t_cyc,
            "block layout idles processors as elimination shrinks: cyclic {t_cyc} vs block {t_blk}"
        );
    }

    #[test]
    fn simplex_time_is_positive_and_counts_pivots() {
        let (t, pivots) = simplex_time(16, 16, 4, 3);
        assert!(t > 0.0);
        assert!(pivots > 0);
    }

    #[test]
    fn serial_solver_agrees_with_parallel_objective() {
        let lp = workloads::random_dense_lp(20, 20, 8);
        let s = simplex_solve(&lp, 10_000);
        let mut hc = cm2(4);
        let r = simplex::solve_parallel(&mut hc, &lp, square_grid(4), 10_000);
        assert_eq!(r.objective, s.objective);
    }
}
