//! F4 — spanning-tree schedule ablation for broadcast and all-reduce.

use vmp_hypercube::collective;
use vmp_hypercube::spanning::{allreduce_rabenseifner, broadcast_with, BroadcastSchedule};

use crate::common::cm2;
use crate::table::{fmt_us, Table};

/// Simulated broadcast time of `len` elements on a `dim`-cube under each
/// schedule: `(binomial, scatter_allgather, allport_esbt)`.
#[must_use]
pub fn broadcast_times(len: usize, dim: u32) -> (f64, f64, f64) {
    let dims: Vec<u32> = (0..dim).collect();
    let run = |sched| {
        let mut hc = cm2(dim);
        let mut locals = hc.locals_from_fn(|n| if n == 0 { vec![1.0f64; len] } else { Vec::new() });
        broadcast_with(&mut hc, &mut locals, &dims, 0, sched);
        hc.elapsed_us()
    };
    (
        run(BroadcastSchedule::Binomial),
        run(BroadcastSchedule::ScatterAllgather),
        run(BroadcastSchedule::AllPortEsbt),
    )
}

/// Simulated all-reduce time: `(butterfly, rabenseifner)`.
#[must_use]
pub fn allreduce_times(len: usize, dim: u32) -> (f64, f64) {
    let dims: Vec<u32> = (0..dim).collect();
    let mut hc1 = cm2(dim);
    let mut a = hc1.locals_from_fn(|n| vec![n as f64; len]);
    collective::allreduce(&mut hc1, &mut a, &dims, |x, y| x + y);
    let mut hc2 = cm2(dim);
    let mut b = hc2.locals_from_fn(|n| vec![n as f64; len]);
    allreduce_rabenseifner(&mut hc2, &mut b, &dims, |x, y| x + y);
    (hc1.elapsed_us(), hc2.elapsed_us())
}

/// F4: broadcast/all-reduce schedules vs message size on `p = 1024`.
#[must_use]
pub fn f4() -> Table {
    let dim = 10u32;
    let mut t = Table::new(
        "F4",
        "collective schedule ablation vs message length (p = 1024)",
        "design ablation: the balanced/edge-disjoint spanning trees of Johnsson & Ho vs the binomial tree",
        &["L", "bcast binomial", "bcast scat+ag", "bcast all-port", "allred butterfly", "allred rabenseifner"],
    );
    for len in [8usize, 64, 512, 4096, 32768] {
        let (b, s, a) = broadcast_times(len, dim);
        let (bf, rb) = allreduce_times(len, dim);
        t.row(vec![len.to_string(), fmt_us(b), fmt_us(s), fmt_us(a), fmt_us(bf), fmt_us(rb)]);
    }
    t.note("crossover: binomial wins small L (fewer start-ups), balanced schedules win large L (factor ~d/2 bandwidth)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_exists() {
        let (b_small, s_small, _) = broadcast_times(4, 8);
        assert!(b_small < s_small, "small messages: binomial wins");
        let (b_big, s_big, a_big) = broadcast_times(16384, 8);
        assert!(s_big < b_big, "large messages: scatter+allgather wins");
        assert!(a_big < s_big, "all-port pipelining wins biggest");
    }

    #[test]
    fn rabenseifner_wins_large_allreduce() {
        let (bf, rb) = allreduce_times(16384, 8);
        assert!(rb < bf, "butterfly {bf} vs rabenseifner {rb}");
        let (bf_s, rb_s) = allreduce_times(2, 8);
        assert!(bf_s < rb_s, "small messages favour the butterfly");
    }
}
