//! R1 — robustness: fault-sweep overhead of the resilient machine.
//!
//! One workload (Gaussian elimination solve, the paper's second
//! application) runs under an escalating fault schedule: the plain
//! machine, the resilient machine with an empty fault plan (the
//! zero-fault overhead row — must be exactly 1.00x), transient message
//! drops at increasing rates, a permanently dead link, and a dead node
//! absorbed by graceful degradation. Every row's solution is compared
//! bit-for-bit against the fault-free run: recovery must never change
//! results, only the modeled cost.

use vmp_algos::{ge_solve, workloads};
use vmp_core::degrade::apply_degradation;
use vmp_core::prelude::*;
use vmp_hypercube::counters::Counters;
use vmp_hypercube::{FaultPlan, ResilientConfig};

use crate::common::{cm2, square_grid};
use crate::table::{fmt_us, fmt_x, Table};

const DIM: u32 = 4;
const N: usize = 20;
const SEED: u64 = 1989;

fn solve(hc: &mut Hypercube) -> Vec<f64> {
    let (a, b, _) = workloads::diag_dominant_system(N, SEED);
    let (x, _) = ge_solve(hc, &a, &b, square_grid(DIM)).expect("dominant system is nonsingular");
    x
}

/// R1: fault-sweep — overhead and recovery counters vs fault schedule.
#[must_use]
pub fn r1() -> Table {
    let mut t = Table::new(
        "R1",
        "fault-sweep: Gaussian elimination (n = 20, p = 16) under injected faults",
        "robustness extension: retries, detours and degradation keep every result bit-identical; faults cost only modeled time",
        &["fault schedule", "elapsed", "overhead", "retries", "drops", "reroutes", "bit-identical"],
    );

    // Fault-free reference (plain machine, no resilience layer).
    let mut hc0 = cm2(DIM);
    let x0 = solve(&mut hc0);
    let base_us = hc0.elapsed_us();

    let drops = |rate: f64| FaultPlan::none(SEED).with_drops(rate, 0, u64::MAX);
    let schedules: Vec<(&str, Option<FaultPlan>, Vec<usize>)> = vec![
        ("none (plain machine)", None, vec![]),
        ("none (resilient layer on)", Some(FaultPlan::none(SEED)), vec![]),
        ("1% transient drops", Some(drops(0.01)), vec![]),
        ("5% transient drops", Some(drops(0.05)), vec![]),
        ("20% transient drops", Some(drops(0.20)), vec![]),
        ("dead link 0-1", Some(FaultPlan::none(SEED).with_link_fault(0, 1, 0)), vec![]),
        ("dead node 5 (degraded)", None, vec![5]),
    ];

    for (label, plan, dead) in schedules {
        let mut hc = cm2(DIM);
        if let Some(plan) = plan {
            hc.install_faults(plan, ResilientConfig::default());
        }
        if !dead.is_empty() {
            // Resident volume: the augmented matrix each node will hold.
            let layout = MatrixLayout::cyclic(MatShape::new(N, N + 1), square_grid(DIM));
            let resident: Vec<usize> = (0..hc.p()).map(|n| layout.local_len(n)).collect();
            let _ = apply_degradation(&mut hc, &dead, &resident);
        }
        let (x, delta) = Counters::scoped(&mut hc, solve);
        t.row(vec![
            label.to_string(),
            fmt_us(hc.elapsed_us()),
            fmt_x(hc.elapsed_us() / base_us),
            delta.retries.to_string(),
            delta.transient_drops.to_string(),
            delta.reroutes.to_string(),
            if x == x0 { "yes".to_string() } else { "NO".to_string() },
        ]);
    }

    t.note("overhead is relative to the plain machine; the zero-fault resilient row prices the detection layer (identical cost path)");
    t.note("transient drops retry with bounded exponential backoff; persistent drops and dead links detour (2 extra hops)");
    t.note("the dead-node row concentrates node 5's block on a healthy neighbour; its host then simulates both nodes");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r1_sweep_recovers_bitwise_and_prices_faults() {
        let t = r1();
        assert_eq!(t.rows.len(), 7);
        for row in &t.rows {
            assert_eq!(row[6], "yes", "{}: faults must not change results", row[0]);
        }
        // Zero-fault resilient row is exactly 1.00x.
        assert_eq!(t.rows[1][2], t.rows[0][2], "resilient layer must be free without faults");
        // Fault rows really fired: counters are nonzero and overhead grows.
        assert_ne!(t.rows[4][3], "0", "20% drops must cause retries");
        assert_ne!(t.rows[5][5], "0", "dead link must cause reroutes");
    }
}
