//! X1 / X2 — extension experiments beyond the paper's evaluation:
//! matmul schedules and conjugate gradient, both composed from the
//! primitives.

use vmp_algos::cg::{cg_solve, CgOptions};
use vmp_algos::{matmul, matmul_panelled, workloads};
use vmp_core::prelude::*;

use crate::common::{cm2, random_dist_matrix, square_grid};
use crate::table::{fmt_us, fmt_x, Table};

/// X1: distributed matmul, rank-1 vs panel-blocked schedules.
#[must_use]
pub fn x1() -> Table {
    let dim = 8u32;
    let mut t = Table::new(
        "X1",
        "matmul schedules: rank-1 (pure primitives) vs panel blocking (p = 256)",
        "extension: the primitives compose into level-3 operations; panelling trades start-ups for bandwidth",
        &["n", "rank-1", "b=4", "b=16", "b=n", "best/b=n msg steps"],
    );
    for n in [32usize, 64, 128] {
        let run = |panel: Option<usize>| {
            let a = random_dist_matrix(n, square_grid(dim));
            let b = random_dist_matrix(n, square_grid(dim));
            let mut hc = cm2(dim);
            match panel {
                None => {
                    let _ = matmul(&mut hc, &a, &b);
                }
                Some(p) => {
                    let _ = matmul_panelled(&mut hc, &a, &b, p);
                }
            }
            (hc.elapsed_us(), hc.counters().message_steps)
        };
        let (t_r1, _) = run(None);
        let (t_b4, _) = run(Some(4));
        let (t_b16, _) = run(Some(16));
        let (t_bn, steps_bn) = run(Some(n));
        t.row(vec![
            n.to_string(),
            fmt_us(t_r1),
            fmt_us(t_b4),
            fmt_us(t_b16),
            fmt_us(t_bn),
            format!("{} steps", steps_bn),
        ]);
    }
    t.note("all schedules produce bit-identical results (same accumulation order); tested");
    t
}

/// X2: conjugate gradient on the primitives, vs machine size.
#[must_use]
pub fn x2() -> Table {
    let n = 96usize;
    let mut t = Table::new(
        "X2",
        "conjugate gradient (SPD, n = 96) vs machine size",
        "extension: iterative solvers compose from matvec + dots + embedding changes",
        &["p", "iterations", "time", "per-iteration", "speedup vs p=1"],
    );
    let (a, b, _) = workloads::spd_system(n, 5);
    let mut t_p1 = None;
    for dim in [0u32, 2, 4, 6, 8, 10] {
        let grid = square_grid(dim);
        let am = DistMatrix::from_fn(MatrixLayout::cyclic(MatShape::new(n, n), grid), |i, j| {
            a.get(i, j)
        });
        let mut hc = cm2(dim);
        let out = cg_solve(&mut hc, &am, &b, CgOptions::default());
        assert!(out.converged);
        let time = hc.elapsed_us();
        if t_p1.is_none() {
            t_p1 = Some(time);
        }
        t.row(vec![
            (1usize << dim).to_string(),
            out.iterations.to_string(),
            fmt_us(time),
            fmt_us(time / out.iterations as f64),
            fmt_x(t_p1.expect("set on first row") / time),
        ]);
    }
    t.note("iteration counts stay put (same arithmetic), time shrinks until the lg p collective term dominates");
    t
}

/// X3: Jacobi/Poisson stencil iteration cost — block vs cyclic layout
/// and machine-size scaling on the Gray-coded NEWS embedding.
#[must_use]
pub fn x3() -> Table {
    let n = 256usize;
    let iters = 5usize;
    let mut t = Table::new(
        "X3",
        "Jacobi stencil (5 sweeps, n = 256): NEWS shifts on the Gray-coded embedding",
        "extension: dilation-1 grid embedding makes nearest-neighbour shifts one blocked superstep",
        &["p", "block layout", "cyclic layout", "cyclic/block"],
    );
    for dim in [2u32, 4, 6, 8, 10] {
        let run = |cyclic: bool| {
            let grid = square_grid(dim);
            let layout = if cyclic {
                MatrixLayout::cyclic(MatShape::new(n, n), grid)
            } else {
                MatrixLayout::block(MatShape::new(n, n), grid)
            };
            let f = DistMatrix::from_fn(
                layout,
                |i, j| {
                    if i == n / 2 && j == n / 2 {
                        1.0
                    } else {
                        0.0
                    }
                },
            );
            let mut hc = cm2(dim);
            let _ = vmp_algos::stencil::jacobi_poisson(&mut hc, &f, 1.0, iters);
            hc.elapsed_us()
        };
        let block = run(false);
        let cyclic = run(true);
        t.row(vec![
            (1usize << dim).to_string(),
            fmt_us(block),
            fmt_us(cyclic),
            fmt_x(cyclic / block),
        ]);
    }
    t.note(
        "block embeddings move only block-boundary lines per shift; cyclic relocates every element",
    );
    t
}

/// X4: the hypercube FFT and bitonic sort vs machine size — the other
/// two booklet kernels built on the same neighbour-exchange stage
/// structure.
#[must_use]
pub fn x4() -> Table {
    use vmp_algos::fft::{fft, Cplx};
    use vmp_algos::sort::sort_ascending;
    let n = 4096usize;
    let mut t = Table::new(
        "X4",
        "FFT and bitonic sort (n = 4096) vs machine size",
        "extension: power-of-two-stride kernels map their node stages onto cube neighbours",
        &["p", "fft", "fft msg steps", "bitonic sort", "sort msg steps"],
    );
    for dim in [0u32, 2, 4, 6, 8] {
        let grid = square_grid(dim);
        let layout = VectorLayout::linear(n, grid.clone(), Dist::Block);
        let x: Vec<Cplx> = (0..n).map(|i| Cplx::new(((i * 37) % 11) as f64 - 5.0, 0.0)).collect();
        let v = DistVector::from_slice(layout.clone(), &x);
        let mut hc = cm2(dim);
        let _ = fft(&mut hc, &v);
        let (t_fft, steps_fft) = (hc.elapsed_us(), hc.counters().message_steps);

        let keys: Vec<i64> = (0..n).map(|i| ((i * 7919) % (2 * n)) as i64).collect();
        let kv = DistVector::from_slice(VectorLayout::linear(n, grid, Dist::Block), &keys);
        let mut hc2 = cm2(dim);
        let _ = sort_ascending(&mut hc2, &kv);
        let (t_sort, steps_sort) = (hc2.elapsed_us(), hc2.counters().message_steps);

        t.row(vec![
            (1usize << dim).to_string(),
            fmt_us(t_fft),
            steps_fft.to_string(),
            fmt_us(t_sort),
            steps_sort.to_string(),
        ]);
    }
    t.note(
        "FFT: d neighbour exchanges + bit-reversal route; sort: O(lg^2 n) compare-exchange stages",
    );
    t
}

/// X5: cost-model sensitivity — the reproduced shapes (here, T3's
/// naive/primitive gap and F1's efficiency climb) under three different
/// machine-constant presets.
#[must_use]
pub fn x5() -> Table {
    use crate::experiments::naive_exp::matvec_pair_with;
    use vmp_algos::vecmat;
    use vmp_core::analysis;
    let dim = 8u32;
    let p = 1usize << dim;
    let mut t = Table::new(
        "X5",
        "shape stability under different cost constants (p = 256, matvec)",
        "the reproduced claims are ratios/crossovers, insensitive to the exact machine constants",
        &["model", "naive/prim (n=256)", "naive/prim (n=512)", "eff @ m/p=64", "eff @ m/p=1024"],
    );
    for (name, cost) in
        [("CM-2", CostModel::cm2()), ("iPSC/1", CostModel::ipsc1()), ("unit", CostModel::unit())]
    {
        let (nv1, pv1) = matvec_pair_with(256, dim, cost);
        let (nv2, pv2) = matvec_pair_with(512, dim, cost);
        let eff = |n: usize| {
            let a = random_dist_matrix(n, square_grid(dim));
            let x = crate::common::random_aligned_vector(&a, Axis::Col);
            let mut hc = vmp_hypercube::Hypercube::new(dim, cost);
            let _ = vecmat(&mut hc, &x, &a);
            analysis::efficiency(cost.gamma * 2.0 * (n * n) as f64, p, hc.elapsed_us())
        };
        t.row(vec![
            name.to_string(),
            fmt_x(nv1 / pv1),
            fmt_x(nv2 / pv2),
            format!("{:.3}", eff(128)),
            format!("{:.3}", eff(512)),
        ]);
    }
    t.note("the gap and the efficiency climb survive every preset; only the constants move");
    t
}

/// X6: the histogram crossover (TR-682): dense (data-independent) vs
/// sparse (data-dependent) all-to-all reduction, sweeping elements per
/// processor at fixed bin count.
#[must_use]
pub fn x6() -> Table {
    use vmp_algos::histogram::{histogram_dense, histogram_sparse};
    let dim = 8u32;
    let p = 1usize << dim;
    let bins = 1024usize;
    let mut t = Table::new(
        "X6",
        "histogram: dense vs sparse all-to-all reduction (p = 256, B = 1024)",
        "TR-682 (same booklet): the data-dependent algorithm wins at low occupancy, loses as bins saturate",
        &["elems/proc", "distinct", "dense", "sparse", "sparse/dense"],
    );
    for (per_proc, spread) in
        [(1usize, 16usize), (4, 64), (16, 256), (64, 1024), (256, 1024), (1024, 1024)]
    {
        let n = per_proc * p;
        let vals: Vec<usize> = (0..n).map(|i| (i * 7919 + 13) % spread).collect();
        let grid = square_grid(dim);
        let layout = VectorLayout::linear(n, grid, Dist::Block);
        let v = DistVector::from_slice(layout, &vals);
        let mut hd = cm2(dim);
        let a = histogram_dense(&mut hd, &v, bins);
        let mut hs = cm2(dim);
        let b = histogram_sparse(&mut hs, &v, bins);
        assert_eq!(a, b, "identical histograms");
        t.row(vec![
            per_proc.to_string(),
            spread.to_string(),
            fmt_us(hd.elapsed_us()),
            fmt_us(hs.elapsed_us()),
            fmt_x(hs.elapsed_us() / hd.elapsed_us()),
        ]);
    }
    t.note("ratio < 1: sparse wins (few distinct bins in flight); the crossover moves with occupancy as TR-682 predicts");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panelled_matmul_is_faster_in_the_model() {
        let n = 24usize;
        let a = random_dist_matrix(n, square_grid(4));
        let b = random_dist_matrix(n, square_grid(4));
        let mut h1 = cm2(4);
        let _ = matmul(&mut h1, &a, &b);
        let mut h2 = cm2(4);
        let _ = matmul_panelled(&mut h2, &a, &b, 8);
        assert!(h2.elapsed_us() < h1.elapsed_us());
    }

    #[test]
    fn cg_speeds_up_with_processors() {
        let (a, b, _) = workloads::spd_system(48, 5);
        let time = |dim: u32| {
            let am = DistMatrix::from_fn(
                MatrixLayout::cyclic(MatShape::new(48, 48), square_grid(dim)),
                |i, j| a.get(i, j),
            );
            let mut hc = cm2(dim);
            let out = cg_solve(&mut hc, &am, &b, CgOptions::default());
            assert!(out.converged);
            hc.elapsed_us()
        };
        assert!(time(6) < time(0), "p = 64 should beat p = 1");
    }
}
