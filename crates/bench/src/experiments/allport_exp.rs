//! ALLPORT — the all-port collective engine vs the single-port
//! schedules, as simulated-time speedups plus host wall-clock deltas.
//!
//! Every collective runs twice over identical data: once on a machine
//! with the one-port CM-2 model (`CostModel::cm2()`) and once on the
//! all-port variant (`CostModel::cm2_allport()`), both under the default
//! `Auto` schedule selector. The payloads are asserted **bit-identical**
//! between the two runs before any number is reported — the port model
//! may only change the simulated clock, never the data plane (both arms
//! execute the same movement and combine order; see
//! `crates/hypercube/src/collective/allport.rs`).
//!
//! `len` is the per-node segment length, except for `allgather` where it
//! is the **gathered** result length per node (the input segment is
//! `len / p`); sweeping the raw segment length there would square the
//! working set with `p`. Host times include per-iteration buffer
//! construction, identical across arms.
//!
//! Results land in `BENCH_allport.json` (guarded; see
//! [`crate::baseline`]) for regression tracking.

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;
use vmp_hypercube::collective;
use vmp_hypercube::cost::{Algo, Collective, CostModel};
use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::slab::NodeSlab;
use vmp_hypercube::topology::Cube;

use crate::baseline::guarded_write;
use crate::common::hash_entry;
use crate::experiments::RunOpts;
use crate::table::{fmt_us, Table};

/// One measurement, as serialised into `BENCH_allport.json`.
#[derive(Debug, Clone, Serialize)]
pub struct AllportEntry {
    /// Collective name (`broadcast`, `reduce`, …).
    pub collective: String,
    /// Machine size.
    pub p: usize,
    /// Message length in elements (per node; gathered length for
    /// `allgather`).
    pub len: usize,
    /// Simulated microseconds under the one-port model.
    pub single_port_us: f64,
    /// Simulated microseconds under the all-port model.
    pub all_port_us: f64,
    /// `single_port_us / all_port_us`.
    pub sim_speedup: f64,
    /// Schedule the selector chose on the all-port machine.
    pub algo: String,
    /// Host nanoseconds per iteration, one-port arm (includes buffer
    /// setup).
    pub host_single_ns: f64,
    /// Host nanoseconds per iteration, all-port arm (same setup).
    pub host_all_ns: f64,
    /// Host iterations timed per arm.
    pub iters: usize,
}

/// The five ported collectives, in presentation order.
const KINDS: [Collective; 5] = [
    Collective::Broadcast,
    Collective::Reduce,
    Collective::Allreduce,
    Collective::Allgather,
    Collective::Scan,
];

fn kind_name(kind: Collective) -> &'static str {
    match kind {
        Collective::Broadcast => "broadcast",
        Collective::Reduce => "reduce",
        Collective::Allreduce => "allreduce",
        Collective::Allgather => "allgather",
        Collective::Scan => "scan",
    }
}

fn algo_name(algo: Algo) -> String {
    match algo {
        Algo::SinglePort => "single-port".into(),
        Algo::AllPort { chunks: 1 } => "all-port".into(),
        Algo::AllPort { chunks } => format!("all-port/{chunks} chunks"),
    }
}

struct Sizes {
    dims: Vec<u32>,
    lens: Vec<usize>,
    iters: usize,
}

fn sizes(smoke: bool) -> Sizes {
    if smoke {
        Sizes { dims: vec![4], lens: vec![64, 256], iters: 2 }
    } else {
        Sizes { dims: vec![6, 8, 10], lens: vec![256, 4096, 16384], iters: 3 }
    }
}

/// A fresh slab whose every segment holds `seg` deterministic entries.
fn fill_slab(p: usize, seg: usize) -> NodeSlab<f64> {
    let mut slab = NodeSlab::with_capacity(p, p * seg);
    let mut buf = Vec::with_capacity(seg);
    for node in 0..p {
        buf.clear();
        buf.extend((0..seg).map(|i| hash_entry(node, i)));
        slab.push_seg(&buf);
    }
    slab
}

/// Run `kind` once over a fresh slab on `hc`, returning the final data
/// for the payload-identity check.
fn run_collective(hc: &mut Hypercube, kind: Collective, dims: &[u32], seg: usize) -> Vec<f64> {
    let mut slab = fill_slab(hc.p(), seg);
    match kind {
        Collective::Broadcast => collective::broadcast_slab(hc, &mut slab, dims, 0),
        Collective::Reduce => collective::reduce_slab(hc, &mut slab, dims, 0, |a, b| a + b),
        Collective::Allreduce => collective::allreduce_slab(hc, &mut slab, dims, |a, b| a + b),
        Collective::Allgather => collective::allgather_slab(hc, &mut slab, dims),
        Collective::Scan => collective::scan_inclusive_slab(hc, &mut slab, dims, |a, b| a + b),
    }
    slab.data().to_vec()
}

fn time_ns<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    black_box(f()); // warm-up: page in buffers, stabilise the allocator
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// ALLPORT: simulated speedup of the all-port collective engine over the
/// single-port schedules, across machine sizes and message lengths.
#[must_use]
pub fn allport(opts: &RunOpts) -> Table {
    let s = sizes(opts.smoke);
    let mut entries: Vec<AllportEntry> = Vec::new();

    for &dim in &s.dims {
        let p = 1usize << dim;
        let dims: Vec<u32> = Cube::new(dim).iter_dims().collect();
        for &len in &s.lens {
            for kind in KINDS {
                // Allgather sweeps the gathered length; everyone else
                // the per-node segment.
                let seg = match kind {
                    Collective::Allgather => (len / p).max(1),
                    _ => len,
                };

                let mut hc_sp = Hypercube::new(dim, CostModel::cm2());
                let data_sp = run_collective(&mut hc_sp, kind, &dims, seg);
                let mut hc_ap = Hypercube::new(dim, CostModel::cm2_allport());
                let data_ap = run_collective(&mut hc_ap, kind, &dims, seg);
                assert_eq!(
                    data_sp,
                    data_ap,
                    "{} payload must be bit-identical across port models",
                    kind_name(kind)
                );
                let algo = hc_ap.choose_algo(kind, dims.len(), seg);

                let host_single_ns = time_ns(s.iters, || {
                    let mut hc = Hypercube::new(dim, CostModel::cm2());
                    run_collective(&mut hc, kind, &dims, seg)
                });
                let host_all_ns = time_ns(s.iters, || {
                    let mut hc = Hypercube::new(dim, CostModel::cm2_allport());
                    run_collective(&mut hc, kind, &dims, seg)
                });

                entries.push(AllportEntry {
                    collective: kind_name(kind).into(),
                    p,
                    len,
                    single_port_us: hc_sp.elapsed_us(),
                    all_port_us: hc_ap.elapsed_us(),
                    sim_speedup: hc_sp.elapsed_us() / hc_ap.elapsed_us(),
                    algo: algo_name(algo),
                    host_single_ns,
                    host_all_ns,
                    iters: s.iters,
                });
            }
        }
    }

    if !opts.smoke {
        // The PR's acceptance bar: broadcast and allgather at p = 1024,
        // largest message, must gain at least 2x simulated time.
        let max_len = *s.lens.iter().max().expect("non-empty sweep");
        for kind in ["broadcast", "allgather"] {
            let e = entries
                .iter()
                .find(|e| e.collective == kind && e.p == 1024 && e.len == max_len)
                .expect("acceptance point measured");
            assert!(
                e.sim_speedup >= 2.0,
                "{kind} at p=1024 len={max_len}: speedup {:.2} below the 2x bar",
                e.sim_speedup
            );
        }
    }

    let path = opts.json_path.as_deref().unwrap_or("BENCH_allport.json");
    let outcome = guarded_write(path, &entries, opts.smoke, opts.force);

    let mut t = Table::new(
        "ALLPORT",
        if opts.smoke {
            "all-port collective engine vs single-port schedules (smoke sizes)"
        } else {
            "all-port collective engine vs single-port schedules"
        },
        "lg p edge-disjoint spanning binomial trees; same data plane, ported clock",
        &["collective", "p", "len", "single-port", "all-port", "speedup", "schedule"],
    );
    for e in &entries {
        t.row(vec![
            e.collective.clone(),
            e.p.to_string(),
            e.len.to_string(),
            fmt_us(e.single_port_us),
            fmt_us(e.all_port_us),
            format!("{:.2}x", e.sim_speedup),
            e.algo.clone(),
        ]);
    }
    t.note(outcome.describe(path));
    t.note("payloads asserted bit-identical between the one-port and all-port machines");
    t.note("allgather's len column is the gathered length per node (input segment = len/p)");
    if opts.smoke {
        t.note("smoke sizes — speedups indicative only; run without --smoke for the baseline");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_opts() -> RunOpts {
        let mut p = std::env::temp_dir();
        p.push(format!("vmp-allport-test-{}.json", std::process::id()));
        RunOpts { smoke: true, force: true, json_path: Some(p.to_string_lossy().into_owned()) }
    }

    #[test]
    fn smoke_run_covers_every_collective_and_writes_json() {
        let opts = tmp_opts();
        let t = allport(&opts);
        assert_eq!(t.rows.len(), 2 * KINDS.len(), "2 lens x 5 collectives on one cube");
        let path = opts.json_path.expect("tmp path");
        let json = std::fs::read_to_string(&path).expect("bench json written");
        let _ = std::fs::remove_file(&path);
        assert!(json.contains("\"smoke\": true"), "{json}");
        for kind in KINDS {
            assert!(json.contains(kind_name(kind)), "missing {} rows", kind_name(kind));
        }
    }

    #[test]
    fn all_port_clock_never_loses_to_single_port() {
        // Auto falls back to the single-port schedule whenever the
        // ported one would be slower, so the all-port machine's clock is
        // bounded by the one-port machine's on every sweep point.
        let dims: Vec<u32> = Cube::new(4).iter_dims().collect();
        for kind in KINDS {
            for seg in [1usize, 7, 64, 500] {
                let mut sp = Hypercube::new(4, CostModel::cm2());
                let a = run_collective(&mut sp, kind, &dims, seg);
                let mut ap = Hypercube::new(4, CostModel::cm2_allport());
                let b = run_collective(&mut ap, kind, &dims, seg);
                assert_eq!(a, b, "{} seg={seg} payload", kind_name(kind));
                assert!(
                    ap.elapsed_us() <= sp.elapsed_us() + 1e-9,
                    "{} seg={seg}: all-port {} vs single-port {}",
                    kind_name(kind),
                    ap.elapsed_us(),
                    sp.elapsed_us()
                );
            }
        }
    }
}
