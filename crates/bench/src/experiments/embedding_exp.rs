//! T5 — the cost of embedding changes.

use vmp_core::prelude::*;
use vmp_core::{primitives, remap};

use crate::common::{cm2, hash_entry, random_dist_matrix, square_grid};
use crate::table::{fmt_us, Table};

/// T5: vector and matrix embedding changes on `p = 1024`.
#[must_use]
pub fn t5() -> Table {
    let dim = 10u32;
    let n = 1024usize;
    let grid = square_grid(dim);
    let mut t = Table::new(
        "T5",
        "embedding-change costs (n = 1024 vectors, 512x512 matrix, p = 1024)",
        "\"The primitives may indicate a change from one embedding to another\"",
        &["operation", "time", "msg steps", "elements moved"],
    );

    let mut add = |name: &str, hc: &vmp_hypercube::Hypercube| {
        t.row(vec![
            name.to_string(),
            fmt_us(hc.elapsed_us()),
            hc.counters().message_steps.to_string(),
            hc.counters().elements_transferred.to_string(),
        ]);
    };

    // Concentrated -> replicated (tree broadcast).
    let conc =
        VectorLayout::aligned(n, grid.clone(), Axis::Row, Placement::Concentrated(3), Dist::Cyclic);
    let v = DistVector::from_fn(conc, |i| hash_entry(i, 0));
    let mut hc = cm2(dim);
    let vr = remap::replicate(&mut hc, &v);
    add("replicate (concentrated -> replicated)", &hc);

    // Replicated -> concentrated (free).
    let mut hc = cm2(dim);
    let _ = remap::concentrate(&mut hc, &vr, 0);
    add("concentrate (replicated -> line 0, drop copies)", &hc);

    // Concentrated line A -> line B (routed move).
    let mut hc = cm2(dim);
    let _ = remap::concentrate(&mut hc, &v, 17);
    add("concentrate (line 3 -> line 17, routed)", &hc);

    // Aligned -> linear (balanced).
    let mut hc = cm2(dim);
    let lin = remap::remap_vector(&mut hc, &vr, VectorLayout::linear(n, grid.clone(), Dist::Block));
    add("aligned replicated -> linear", &hc);

    // Linear -> aligned replicated.
    let mut hc = cm2(dim);
    let _ = remap::remap_vector(
        &mut hc,
        &lin,
        VectorLayout::aligned(n, grid.clone(), Axis::Row, Placement::Replicated, Dist::Cyclic),
    );
    add("linear -> aligned replicated", &hc);

    // Axis flip: row-aligned -> col-aligned.
    let mut hc = cm2(dim);
    let _ = remap::remap_vector(
        &mut hc,
        &vr,
        VectorLayout::aligned(n, grid.clone(), Axis::Col, Placement::Replicated, Dist::Cyclic),
    );
    add("row-aligned -> col-aligned (axis flip)", &hc);

    // Matrix transpose and redistribution.
    let m = random_dist_matrix(512, grid.clone());
    let mut hc = cm2(dim);
    let _ = remap::transpose(&mut hc, &m);
    add("matrix transpose (512x512)", &hc);

    let mut hc = cm2(dim);
    let block = MatrixLayout::block(MatShape::new(512, 512), grid.clone());
    let _ = remap::redistribute(&mut hc, &m, block);
    add("matrix cyclic -> block redistribution (512x512)", &hc);

    // For scale: an extract that *induces* the embedding change.
    let mut hc = cm2(dim);
    let _ = primitives::extract_replicated(&mut hc, &m, Axis::Row, 100);
    add("extract + replicate (the induced change, 512 cols)", &hc);

    t.note(
        "replicated->concentrated is free (copies dropped); routed moves pay d blocked supersteps",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t5_builds_and_orders_sensibly() {
        // Tiny replica at dim 4 to keep CI fast: replicate must cost
        // more than concentrate-to-line-0 (free), transpose more than
        // a vector remap.
        let dim = 4u32;
        let grid = square_grid(dim);
        let conc = VectorLayout::aligned(
            64,
            grid.clone(),
            Axis::Row,
            Placement::Concentrated(1),
            Dist::Cyclic,
        );
        let v = DistVector::from_fn(conc, |i| i as f64);
        let mut hc1 = cm2(dim);
        let vr = remap::replicate(&mut hc1, &v);
        let mut hc2 = cm2(dim);
        let _ = remap::concentrate(&mut hc2, &vr, 0);
        assert!(hc1.elapsed_us() > 0.0);
        assert_eq!(hc2.elapsed_us(), 0.0, "dropping replicas is free");

        let m = random_dist_matrix(32, grid.clone());
        let mut hc3 = cm2(dim);
        let _ = remap::transpose(&mut hc3, &m);
        let mut hc4 = cm2(dim);
        let _ = remap::remap_vector(&mut hc4, &vr, VectorLayout::linear(64, grid, Dist::Block));
        assert!(hc3.elapsed_us() > hc4.elapsed_us(), "matrix moves dwarf vector moves");
    }
}
