//! F1 / F2 — the asymptotic-optimality claims as measured curves.

use vmp_algos::vecmat;
use vmp_core::analysis;
use vmp_core::elem::Sum;
use vmp_core::prelude::*;
use vmp_core::primitives;

use crate::common::{cm2, random_aligned_vector, random_dist_matrix, square_grid};
use crate::table::{fmt_us, Table};

/// F1: parallel efficiency vs virtual-processing ratio at fixed `p`.
#[must_use]
pub fn f1() -> Table {
    let dim = 10u32;
    let p = 1usize << dim;
    let cost = CostModel::cm2();
    let mut t = Table::new(
        "F1",
        "efficiency T_serial/(p*T_par) vs m/p at p = 1024",
        "\"if there are m > p lg p matrix elements ... asymptotically optimal (processor-time product)\"",
        &["n", "m", "m/p", "m > p lg p", "eff(reduce)", "eff(vecmat)"],
    );
    for n in [32usize, 64, 128, 256, 512, 1024, 2048] {
        let m = n * n;
        let grid = square_grid(dim);
        let a = random_dist_matrix(n, grid);

        let mut hc = cm2(dim);
        let _ = primitives::reduce(&mut hc, &a, Axis::Row, Sum);
        let eff_reduce =
            analysis::efficiency(analysis::serial_reduce_us(m, &cost), p, hc.elapsed_us());

        let x = random_aligned_vector(&a, Axis::Col);
        let mut hc2 = cm2(dim);
        let _ = vecmat(&mut hc2, &x, &a);
        // Serial vecmat: 2m flops (multiply + add).
        let eff_mv = analysis::efficiency(cost.gamma * 2.0 * m as f64, p, hc2.elapsed_us());

        t.row(vec![
            n.to_string(),
            m.to_string(),
            (m / p).to_string(),
            if analysis::in_optimal_regime(m, p) { "yes" } else { "no" }.to_string(),
            format!("{eff_reduce:.3}"),
            format!("{eff_mv:.3}"),
        ]);
    }
    t.note("p lg p = 10240 here (threshold between n = 64 and n = 128); efficiency climbs toward a constant beyond it");
    t
}

/// F2: parallel time vs machine size at fixed `m`, against the
/// `Omega(m/p + lg p)` lower bound.
#[must_use]
pub fn f2() -> Table {
    let n = 512usize;
    let cost = CostModel::cm2();
    let mut t = Table::new(
        "F2",
        "T_par vs p at fixed n = 512, against Omega(m/p + lg p)",
        "\"the parallel time required is optimal to within a constant factor\"",
        &["p", "reduce", "distribute", "lower bound", "reduce/bound"],
    );
    for dim in [0u32, 2, 4, 6, 8, 10, 12] {
        let p = 1usize << dim;
        let grid = square_grid(dim);
        let a = random_dist_matrix(n, grid);

        let mut hc = cm2(dim);
        let v = primitives::reduce(&mut hc, &a, Axis::Row, Sum);
        let t_reduce = hc.elapsed_us();

        hc.reset();
        let _ = primitives::distribute(&mut hc, &v, n, a.layout().rows().kind());
        let t_distribute = hc.elapsed_us();

        // A row-wise reduce combines across the 2^{d_r} grid rows only,
        // so its latency diameter is d_r.
        let lb = analysis::lower_bound_dims(n * n, p, a.layout().grid().dr(), &cost);
        t.row(vec![
            p.to_string(),
            fmt_us(t_reduce),
            fmt_us(t_distribute),
            fmt_us(lb),
            format!("{:.2}", t_reduce / lb),
        ]);
    }
    t.note("the ratio to the bound stays O(1) across four decades of p — claim 3's shape");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_grows_with_vp_ratio() {
        let dim = 6u32;
        let p = 1usize << dim;
        let cost = CostModel::cm2();
        let eff = |n: usize| {
            let a = random_dist_matrix(n, square_grid(dim));
            let mut hc = cm2(dim);
            let _ = primitives::reduce(&mut hc, &a, Axis::Row, Sum);
            analysis::efficiency(analysis::serial_reduce_us(n * n, &cost), p, hc.elapsed_us())
        };
        assert!(eff(256) > eff(32), "efficiency climbs with m/p");
    }

    #[test]
    fn reduce_stays_within_constant_of_lower_bound() {
        let n = 128usize;
        let cost = CostModel::cm2();
        for dim in [0u32, 4, 8] {
            let a = random_dist_matrix(n, square_grid(dim));
            let mut hc = cm2(dim);
            let _ = primitives::reduce(&mut hc, &a, Axis::Row, Sum);
            let lb = analysis::lower_bound(n * n, 1 << dim, &cost);
            assert!(hc.elapsed_us() / lb < 15.0, "dim {dim}: ratio {}", hc.elapsed_us() / lb);
        }
    }
}
