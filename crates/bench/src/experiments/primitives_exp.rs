//! T1 / T2 — Connection Machine timings for the four primitives.

use vmp_core::elem::Sum;
use vmp_core::prelude::*;
use vmp_core::primitives;

use crate::common::{cm2, random_dist_matrix, square_grid};
use crate::table::{fmt_us, Table};

/// Simulated time of each primitive on an `n x n` matrix on a `dim`-cube.
/// Returns `(reduce, distribute, extract, extract_replicated, insert)`.
#[must_use]
pub fn primitive_times(n: usize, dim: u32) -> (f64, f64, f64, f64, f64) {
    let grid = square_grid(dim);
    let m = random_dist_matrix(n, grid);
    let mut hc = cm2(dim);

    hc.reset();
    let v = primitives::reduce(&mut hc, &m, Axis::Row, Sum);
    let t_reduce = hc.elapsed_us();

    hc.reset();
    let _ = primitives::distribute(&mut hc, &v, n, m.layout().rows().kind());
    let t_distribute = hc.elapsed_us();

    hc.reset();
    let _ = primitives::extract(&mut hc, &m, Axis::Row, n / 2);
    let t_extract = hc.elapsed_us();

    hc.reset();
    let row = primitives::extract_replicated(&mut hc, &m, Axis::Row, n / 2);
    let t_extract_rep = hc.elapsed_us();

    let mut m2 = m.clone();
    hc.reset();
    primitives::insert(&mut hc, &mut m2, Axis::Row, n / 3, &row);
    let t_insert = hc.elapsed_us();

    (t_reduce, t_distribute, t_extract, t_extract_rep, t_insert)
}

/// T1: primitive timings vs matrix size at fixed machine size (`p = 2^10`).
#[must_use]
pub fn t1() -> Table {
    let dim = 10u32;
    let mut t = Table::new(
        "T1",
        "primitive timings vs matrix size (p = 1024, CM-2 model)",
        "\"We give Connection Machine timings for the primitives\"",
        &["n", "m", "m/p", "reduce", "distribute", "extract", "extract+rep", "insert"],
    );
    for n in [64usize, 128, 256, 512, 1024, 2048] {
        let (r, d, e, er, i) = primitive_times(n, dim);
        t.row(vec![
            n.to_string(),
            (n * n).to_string(),
            (n * n / (1 << dim)).to_string(),
            fmt_us(r),
            fmt_us(d),
            fmt_us(e),
            fmt_us(er),
            fmt_us(i),
        ]);
    }
    t.note("reduce/distribute grow with m/p (local term); extract stays O(n/p_c): embedding-local");
    t
}

/// T2: primitive timings vs machine size at fixed matrix size (`n = 1024`).
#[must_use]
pub fn t2() -> Table {
    let n = 1024usize;
    let mut t = Table::new(
        "T2",
        "primitive timings vs machine size (n = 1024, CM-2 model)",
        "\"specifying parallel matrix algorithms independently of machine size\"",
        &["p", "m/p", "reduce", "distribute", "extract", "extract+rep", "insert"],
    );
    for dim in [6u32, 8, 10, 12] {
        let (r, d, e, er, i) = primitive_times(n, dim);
        t.row(vec![
            (1usize << dim).to_string(),
            (n * n / (1 << dim)).to_string(),
            fmt_us(r),
            fmt_us(d),
            fmt_us(e),
            fmt_us(er),
            fmt_us(i),
        ]);
    }
    t.note("the m/p local term shrinks with p until the lg p start-up term dominates");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_shapes_hold() {
        // Small replica of T1's shape claims to keep the test quick.
        let (r64, d64, e64, _, _) = primitive_times(64, 6);
        let (r256, d256, e256, _, _) = primitive_times(256, 6);
        assert!(r256 > r64, "reduce grows with m/p");
        assert!(d256 > d64, "distribute grows with m/p");
        assert!(e256 >= e64, "extract grows (slowly) with n/p_c");
        // Extract is far cheaper than reduce at the same size.
        assert!(e256 < r256 / 4.0, "extract {e256} vs reduce {r256}");
    }

    #[test]
    fn t2_machine_scaling_holds() {
        let (r_small, ..) = primitive_times(256, 4);
        let (r_big, ..) = primitive_times(256, 8);
        assert!(r_big < r_small, "more processors shrink the local term");
    }

    #[test]
    fn tables_render() {
        // Smoke-render with tiny sizes via the private helpers.
        let (r, d, e, er, i) = primitive_times(32, 4);
        assert!(r > 0.0 && d > 0.0 && e > 0.0 && er > e && i > 0.0);
    }
}
