//! SCHED — multi-tenant subcube scheduling vs whole-machine FCFS.
//!
//! Replays one seeded arrival trace of the paper's three applications
//! (vector-matrix multiplies, Gaussian eliminations, simplex solves)
//! through three schedulers on the same `p = 1024` machine:
//!
//! * **fcfs-whole-machine** — the status quo before this crate: one job
//!   at a time, holding all `p` nodes exclusively;
//! * **subcube-fifo** — buddy-allocated disjoint subcubes, arrival
//!   order;
//! * **subcube-spjf** — subcubes plus shortest-predicted-job-first
//!   admission ranked by the `vmp::analysis` cost forms.
//!
//! The trace injects permanent node failures mid-run (tenants abort and
//! re-plan onto healthy subcubes) and gives ~10% of jobs a recoverable
//! transient-drop fault plan. Before any number is reported, **every**
//! scheduled job's result words are asserted bit-identical to a
//! standalone run of the same job — space-sharing may change when a job
//! runs, never what it computes. Results also land in
//! `BENCH_sched.json` for regression tracking.

use serde::Serialize;
use vmp_hypercube::cost::CostModel;
use vmp_sched::{run_fcfs, run_trace, Metrics, Policy, SimConfig, SimOutcome, Trace, TraceParams};

use crate::table::{fmt_us, Table};

/// What `BENCH_sched.json` holds: the trace shape plus one metrics
/// block per scheduler.
#[derive(Debug, Clone, Serialize)]
pub struct SchedBench {
    /// Machine size.
    pub p: usize,
    /// Trace seed.
    pub seed: u64,
    /// Jobs in the trace.
    pub jobs: usize,
    /// Injected permanent node failures.
    pub failures: usize,
    /// One entry per scheduler.
    pub schedulers: Vec<Metrics>,
}

/// Assert the bit-identity contract for one scheduler run.
fn assert_bit_identical(trace: &Trace, out: &SimOutcome, cost: CostModel, label: &str) {
    for r in &out.records {
        let standalone = trace.jobs[r.id].run_standalone(cost);
        assert_eq!(
            r.words, standalone.words,
            "job {} ({}) under {label} diverged from its standalone run",
            r.id, r.kind
        );
    }
}

/// SCHED: subcube space-sharing vs exclusive FCFS on one seeded trace.
/// `smoke` shrinks the machine to 64 nodes and the trace to 12 jobs.
#[must_use]
pub fn sched(smoke: bool) -> Table {
    let params = if smoke { TraceParams::smoke() } else { TraceParams::full() };
    let seed = 1989u64;
    let cost = CostModel::cm2();
    let trace = Trace::generate(params, seed);

    let base = run_fcfs(&trace, params.dim, cost);
    let fifo = run_trace(&trace, SimConfig { dim: params.dim, cost, policy: Policy::Fifo });
    let spjf = run_trace(&trace, SimConfig { dim: params.dim, cost, policy: Policy::Spjf });

    for out in [&base, &fifo, &spjf] {
        assert_bit_identical(&trace, out, cost, &out.metrics.scheduler);
    }
    for out in [&fifo, &spjf] {
        assert!(
            out.metrics.throughput_jobs_per_s > base.metrics.throughput_jobs_per_s,
            "{} must beat FCFS throughput ({} vs {})",
            out.metrics.scheduler,
            out.metrics.throughput_jobs_per_s,
            base.metrics.throughput_jobs_per_s
        );
        assert!(
            out.metrics.p99_wait_us < base.metrics.p99_wait_us,
            "{} must beat FCFS p99 queueing latency ({} vs {})",
            out.metrics.scheduler,
            out.metrics.p99_wait_us,
            base.metrics.p99_wait_us
        );
    }

    let bench = SchedBench {
        p: 1usize << params.dim,
        seed,
        jobs: trace.jobs.len(),
        failures: trace.failures.len(),
        schedulers: vec![base.metrics.clone(), fifo.metrics.clone(), spjf.metrics.clone()],
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialisable bench");
    let path = "BENCH_sched.json";
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: cannot write {path}: {e}");
    }

    let mut t = Table::new(
        "SCHED",
        if smoke {
            "multi-tenant subcube scheduling vs whole-machine FCFS (smoke trace, p = 64)"
        } else {
            "multi-tenant subcube scheduling vs whole-machine FCFS (p = 1024)"
        },
        "load-balanced subcube embeddings let one machine serve many jobs: \
         space-sharing wins throughput and tail latency at identical result bits",
        &["scheduler", "done", "thru (jobs/s)", "p50 wait", "p99 wait", "util", "aborts", "degr"],
    );
    for m in &bench.schedulers {
        t.row(vec![
            m.scheduler.clone(),
            format!("{}/{}", m.completed, bench.jobs),
            format!("{:.1}", m.throughput_jobs_per_s),
            fmt_us(m.p50_wait_us),
            fmt_us(m.p99_wait_us),
            format!("{:.0}%", 100.0 * m.utilization),
            m.aborts.to_string(),
            m.degraded_runs.to_string(),
        ]);
    }
    t.note(format!(
        "trace: {} jobs, {} node failures, seed {seed}; every scheduled result \
         asserted bit-identical to its standalone run",
        bench.jobs, bench.failures
    ));
    t.note(format!("wrote {path}"));
    if smoke {
        t.note("smoke trace — run without --smoke for the p = 1024 claim");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_reports_three_schedulers_and_writes_json() {
        let t = sched(true);
        assert_eq!(t.rows.len(), 3, "baseline + two policies");
        let json = std::fs::read_to_string("BENCH_sched.json").expect("bench json written");
        let _ = std::fs::remove_file("BENCH_sched.json");
        assert!(json.contains("subcube-spjf"));
        assert!(json.contains("fcfs-whole-machine"));
    }
}
