//! WC — wall-clock benchmark of the slab data plane against the seed
//! nested-`Vec` path.
//!
//! Every other experiment in this harness reports **simulated** time;
//! this one reports **host** time, establishing the perf trajectory the
//! ROADMAP asks for. Each primitive is timed twice over the same data:
//!
//! * **seed**: the pre-slab implementation — per-node `Vec<Vec<T>>`
//!   buffers, hop-by-hop collectives from [`reference`], per-element
//!   `off / lc` address arithmetic — reproduced verbatim here;
//! * **slab**: the current arena-backed path (one contiguous allocation
//!   per container, analytic collective schedules, tiled kernels).
//!
//! Both paths run on identical fresh machines and their simulated
//! `elapsed_us` is asserted **bit-identical** before any wall-clock
//! number is reported: the data plane may only change how fast the host
//! simulates, never what the simulation says.
//!
//! Results are also written to `BENCH_wallclock.json` (or the
//! `--json-path` override) so future PRs have a baseline to regress
//! against; the write is guarded (see [`crate::baseline`]) so a smoke
//! run or a stale re-run never silently replaces a good baseline
//! without `--force`.

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;
use vmp_algos::serial::SimplexStatus;
use vmp_algos::{gauss, matvec, simplex, workloads};
use vmp_core::prelude::*;
use vmp_core::primitives;
use vmp_hypercube::collective::{self, reference};
use vmp_hypercube::slab::{NodeSlab, SegSlab};
use vmp_hypercube::topology::Cube;

use crate::baseline::guarded_write;
use crate::common::{cm2, hash_entry, random_aligned_vector, random_dist_matrix, square_grid};
use crate::experiments::RunOpts;
use crate::table::Table;

/// One benchmark measurement, as serialised into `BENCH_wallclock.json`.
#[derive(Debug, Clone, Serialize)]
pub struct WallclockEntry {
    /// Benchmark name (`collective/allreduce`, `primitive/reduce-row`, …).
    pub bench: String,
    /// Machine size.
    pub p: usize,
    /// Problem-size descriptor (matrix side, per-node elements, …).
    pub size: String,
    /// Mean nanoseconds per iteration, seed nested-Vec path (`None` for
    /// application rows, which have no preserved seed twin).
    pub seed_ns: Option<f64>,
    /// Mean nanoseconds per iteration, slab path.
    pub slab_ns: f64,
    /// `seed_ns / slab_ns` where both exist.
    pub speedup: Option<f64>,
    /// Simulated time charged per iteration (identical across paths).
    pub sim_us: f64,
    /// Host iterations timed.
    pub iters: usize,
}

fn time_ns<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    black_box(f()); // warm-up: page in buffers, stabilise the allocator
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Nested per-node blocks for `layout` — the seed storage representation,
/// filled exactly like [`random_dist_matrix`].
fn nested_matrix(layout: &MatrixLayout) -> Vec<Vec<f64>> {
    (0..layout.grid().p())
        .map(|node| layout.local_elements(node).map(|(i, j, _)| hash_entry(i, j)).collect())
        .collect()
}

/// Seed `reduce` along `Axis::Row`: per-node `Vec` partials + hop-by-hop
/// butterfly. Charges exactly what the slab path charges.
fn seed_reduce_row(
    hc: &mut Hypercube,
    locals: &[Vec<f64>],
    layout: &MatrixLayout,
) -> Vec<Vec<f64>> {
    let p = layout.grid().p();
    let mut partials: Vec<Vec<f64>> = Vec::with_capacity(p);
    for node in 0..p {
        let (lr, lc) = layout.local_shape(node);
        let buf = &locals[node];
        let mut acc = vec![0.0f64; lc];
        for li in 0..lr {
            let row = &buf[li * lc..(li + 1) * lc];
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += v;
            }
        }
        partials.push(acc);
    }
    hc.charge_flops(layout.max_local_len());
    reference::allreduce(hc, &mut partials, layout.grid().row_dims(), |a, b| a + b);
    partials
}

/// Seed `distribute` of a replicated row vector into `out_layout`
/// (communication-free: local replication from per-node chunk copies).
fn seed_distribute_row(
    hc: &mut Hypercube,
    chunks: &[Vec<f64>],
    out_layout: &MatrixLayout,
) -> Vec<Vec<f64>> {
    let chunks: Vec<Vec<f64>> = chunks.to_vec();
    let p = out_layout.grid().p();
    let mut locals: Vec<Vec<f64>> = Vec::with_capacity(p);
    for node in 0..p {
        let (lr, _lc) = out_layout.local_shape(node);
        let chunk = &chunks[node];
        let mut buf = Vec::with_capacity(out_layout.local_len(node));
        for _ in 0..lr {
            buf.extend_from_slice(chunk);
        }
        locals.push(buf);
    }
    hc.charge_moves(out_layout.max_local_len());
    locals
}

/// Seed `rank1_update` (`a -= c * r`): per-element `off / lc`, `off % lc`
/// address arithmetic over nested buffers.
fn seed_rank1(
    hc: &mut Hypercube,
    locals: &mut [Vec<f64>],
    layout: &MatrixLayout,
    col_chunks: &[Vec<f64>],
    row_chunks: &[Vec<f64>],
) {
    for node in 0..layout.grid().p() {
        let lc = layout.local_shape(node).1;
        let buf = &mut locals[node];
        let col_chunk = &col_chunks[node];
        let row_chunk = &row_chunks[node];
        for (_i, _j, off) in layout.local_elements(node) {
            let li = off / lc.max(1);
            let lj = off % lc.max(1);
            buf[off] -= col_chunk[li] * row_chunk[lj];
        }
    }
    hc.charge_flops(2 * layout.max_local_len());
}

struct Sizes {
    dims: Vec<u32>,
    n: usize,        // matrix side for primitive benches
    coll_len: usize, // per-node elements for collective benches
    app_n: usize,    // matrix side for application benches
    iters: usize,
}

fn sizes(smoke: bool) -> Sizes {
    if smoke {
        Sizes { dims: vec![4], n: 32, coll_len: 64, app_n: 16, iters: 2 }
    } else {
        Sizes { dims: vec![6, 8, 10], n: 256, coll_len: 1024, app_n: 64, iters: 30 }
    }
}

/// WC: wall-clock of the slab data plane vs the seed nested-Vec path.
/// `opts.smoke` shrinks everything to a CI-sized run; `opts.json_path`
/// and `opts.force` steer the guarded baseline write.
#[must_use]
pub fn wallclock(opts: &RunOpts) -> Table {
    let smoke = opts.smoke;
    let s = sizes(smoke);
    let mut entries: Vec<WallclockEntry> = Vec::new();

    for &dim in &s.dims {
        let p = 1usize << dim;
        let all_dims: Vec<u32> = Cube::new(dim).iter_dims().collect();

        // --- collective: allreduce over the whole cube -------------------
        {
            let make_nested = || -> Vec<Vec<f64>> {
                (0..p).map(|n| (0..s.coll_len).map(|i| hash_entry(n, i)).collect()).collect()
            };
            let mut hc_seed = cm2(dim);
            let mut nested = make_nested();
            let seed_ns = time_ns(s.iters, || {
                reference::allreduce(&mut hc_seed, &mut nested, &all_dims, |a, b| a + b);
            });
            let mut hc_slab = cm2(dim);
            let mut slab = NodeSlab::from_nested(&make_nested());
            let slab_ns = time_ns(s.iters, || {
                collective::allreduce_slab(&mut hc_slab, &mut slab, &all_dims, |a, b| a + b);
            });
            assert_eq!(
                hc_seed.elapsed_us(),
                hc_slab.elapsed_us(),
                "allreduce simulated time must be bit-identical"
            );
            entries.push(WallclockEntry {
                bench: "collective/allreduce".into(),
                p,
                size: format!("{} elems/node", s.coll_len),
                seed_ns: Some(seed_ns),
                slab_ns,
                speedup: Some(seed_ns / slab_ns),
                sim_us: hc_slab.elapsed_us() / (s.iters + 1) as f64, // +1: warm-up run
                iters: s.iters,
            });
        }

        // --- collective: all-to-all over the whole cube ------------------
        {
            let block = (s.coll_len / p).max(1);
            let send: Vec<Vec<Vec<f64>>> = (0..p)
                .map(|src| (0..p).map(|c| vec![hash_entry(src, c); block]).collect())
                .collect();
            let mut hc_seed = cm2(dim);
            let seed_ns =
                time_ns(s.iters, || reference::alltoall(&mut hc_seed, send.clone(), &all_dims));
            let send_slab = SegSlab::from_nested(&send, p);
            let mut hc_slab = cm2(dim);
            let slab_ns =
                time_ns(s.iters, || collective::alltoall_slab(&mut hc_slab, &send_slab, &all_dims));
            assert_eq!(
                hc_seed.elapsed_us(),
                hc_slab.elapsed_us(),
                "alltoall simulated time must be bit-identical"
            );
            entries.push(WallclockEntry {
                bench: "collective/alltoall".into(),
                p,
                size: format!("{block} elems/block"),
                seed_ns: Some(seed_ns),
                slab_ns,
                speedup: Some(seed_ns / slab_ns),
                sim_us: hc_slab.elapsed_us() / (s.iters + 1) as f64, // +1: warm-up run
                iters: s.iters,
            });
        }

        // --- primitives on an n x n cyclic matrix ------------------------
        let grid = square_grid(dim);
        let m = random_dist_matrix(s.n, grid.clone());
        let layout = m.layout().clone();
        let nested = nested_matrix(&layout);

        // reduce along rows
        {
            let mut hc_seed = cm2(dim);
            let seed_ns = time_ns(s.iters, || seed_reduce_row(&mut hc_seed, &nested, &layout));
            let mut hc_slab = cm2(dim);
            let slab_ns = time_ns(s.iters, || primitives::reduce(&mut hc_slab, &m, Axis::Row, Sum));
            assert_eq!(
                hc_seed.elapsed_us(),
                hc_slab.elapsed_us(),
                "reduce simulated time must be bit-identical"
            );
            entries.push(WallclockEntry {
                bench: "primitive/reduce-row".into(),
                p,
                size: format!("{0}x{0}", s.n),
                seed_ns: Some(seed_ns),
                slab_ns,
                speedup: Some(seed_ns / slab_ns),
                sim_us: hc_slab.elapsed_us() / (s.iters + 1) as f64, // +1: warm-up run
                iters: s.iters,
            });
        }

        // distribute a replicated row vector into an n x n matrix
        {
            let v = random_aligned_vector(&m, Axis::Row);
            let chunks = v.chunks().to_nested();
            let mut hc_seed = cm2(dim);
            let seed_ns = time_ns(s.iters, || seed_distribute_row(&mut hc_seed, &chunks, &layout));
            let mut hc_slab = cm2(dim);
            let slab_ns =
                time_ns(s.iters, || primitives::distribute(&mut hc_slab, &v, s.n, Dist::Cyclic));
            assert_eq!(
                hc_seed.elapsed_us(),
                hc_slab.elapsed_us(),
                "distribute simulated time must be bit-identical"
            );
            entries.push(WallclockEntry {
                bench: "primitive/distribute".into(),
                p,
                size: format!("{0}x{0}", s.n),
                seed_ns: Some(seed_ns),
                slab_ns,
                speedup: Some(seed_ns / slab_ns),
                sim_us: hc_slab.elapsed_us() / (s.iters + 1) as f64, // +1: warm-up run
                iters: s.iters,
            });
        }

        // rank-1 update (the GE / simplex inner kernel)
        {
            let col = random_aligned_vector(&m, Axis::Col);
            let row = random_aligned_vector(&m, Axis::Row);
            let col_chunks = col.chunks().to_nested();
            let row_chunks = row.chunks().to_nested();
            let mut nested_m = nested.clone();
            let mut hc_seed = cm2(dim);
            let seed_ns = time_ns(s.iters, || {
                seed_rank1(&mut hc_seed, &mut nested_m, &layout, &col_chunks, &row_chunks);
            });
            let mut slab_m = m.clone();
            let mut hc_slab = cm2(dim);
            let slab_ns = time_ns(s.iters, || {
                slab_m.rank1_update(&mut hc_slab, &col, &row, |_, _, a, c, r| a - c * r);
            });
            assert_eq!(
                hc_seed.elapsed_us(),
                hc_slab.elapsed_us(),
                "rank1_update simulated time must be bit-identical"
            );
            // Same arithmetic in the same order: both copies drift
            // identically through the repeated updates.
            let dense = slab_m.to_dense();
            for (i, drow) in dense.iter().enumerate() {
                for (j, &d) in drow.iter().enumerate() {
                    let node = layout.owner(i, j);
                    let off = layout.local_offset(i, j);
                    assert_eq!(d, nested_m[node][off], "rank1 payload divergence at ({i},{j})");
                }
            }
            entries.push(WallclockEntry {
                bench: "primitive/rank1-update".into(),
                p,
                size: format!("{0}x{0}", s.n),
                seed_ns: Some(seed_ns),
                slab_ns,
                speedup: Some(seed_ns / slab_ns),
                sim_us: hc_slab.elapsed_us() / (s.iters + 1) as f64, // +1: warm-up run
                iters: s.iters,
            });
        }

        // --- applications (slab path only: the perf trajectory) ----------
        {
            let x = random_aligned_vector(&m, Axis::Row);
            let mut hc = cm2(dim);
            let ns = time_ns(s.iters, || matvec(&mut hc, &m, &x));
            entries.push(WallclockEntry {
                bench: "app/matvec".into(),
                p,
                size: format!("{0}x{0}", s.n),
                seed_ns: None,
                slab_ns: ns,
                speedup: None,
                sim_us: hc.elapsed_us() / (s.iters + 1) as f64, // +1: warm-up run
                iters: s.iters,
            });
        }
        {
            let (a, b, _) = workloads::diag_dominant_system(s.app_n, s.app_n as u64);
            let ge_layout = MatrixLayout::cyclic(MatShape::new(s.app_n, s.app_n + 1), grid.clone());
            let mut sim_us = 0.0;
            let ns = time_ns(1, || {
                let mut hc = cm2(dim);
                let mut aug = DistMatrix::from_fn(ge_layout.clone(), |i, j| {
                    if j < s.app_n {
                        a.get(i, j)
                    } else {
                        b[i]
                    }
                });
                let r = gauss::ge_solve_dist(&mut hc, &mut aug).expect("diag dominant");
                sim_us = hc.elapsed_us();
                r
            });
            entries.push(WallclockEntry {
                bench: "app/gauss".into(),
                p,
                size: format!("n={}", s.app_n),
                seed_ns: None,
                slab_ns: ns,
                speedup: None,
                sim_us,
                iters: 1,
            });
        }
        {
            let lp = workloads::random_dense_lp(s.app_n, s.app_n, 7);
            let mut sim_us = 0.0;
            let ns = time_ns(1, || {
                let mut hc = cm2(dim);
                let r = simplex::solve_parallel(&mut hc, &lp, grid.clone(), 10_000);
                assert_eq!(r.status, SimplexStatus::Optimal);
                sim_us = hc.elapsed_us();
                r
            });
            entries.push(WallclockEntry {
                bench: "app/simplex".into(),
                p,
                size: format!("{0}x{0}", s.app_n),
                seed_ns: None,
                slab_ns: ns,
                speedup: None,
                sim_us,
                iters: 1,
            });
        }
    }

    if !smoke {
        // The slab data plane must never lose to the seed path at full
        // sizes — the committed baseline is also a regression gate.
        // (Smoke runs are too noisy at 2 iterations to enforce this.)
        for e in &entries {
            if e.bench == "primitive/reduce-row" {
                let speedup = e.speedup.expect("comparison row");
                assert!(
                    speedup >= 1.0,
                    "primitive/reduce-row regressed at p={}: {speedup:.2}x (slab slower than seed)",
                    e.p
                );
            }
        }
    }

    // Emit the JSON baseline wherever the harness runs (guarded: a
    // smoke run or a stale re-run never replaces a good baseline).
    let path = opts.json_path.as_deref().unwrap_or("BENCH_wallclock.json");
    let outcome = guarded_write(path, &entries, smoke, opts.force);

    let mut t = Table::new(
        "WC",
        if smoke {
            "wall-clock: slab data plane vs seed nested-Vec path (smoke sizes)"
        } else {
            "wall-clock: slab data plane vs seed nested-Vec path"
        },
        "host time of the simulator itself — not a paper claim; the repo's own perf baseline",
        &["bench", "p", "size", "seed/iter", "slab/iter", "speedup", "sim time"],
    );
    for e in &entries {
        t.row(vec![
            e.bench.clone(),
            e.p.to_string(),
            e.size.clone(),
            e.seed_ns.map_or_else(|| "-".into(), fmt_ns),
            fmt_ns(e.slab_ns),
            e.speedup.map_or_else(|| "-".into(), |x| format!("{x:.2}x")),
            crate::table::fmt_us(e.sim_us),
        ]);
    }
    t.note(format!("{} ({} entries)", outcome.describe(path), entries.len()));
    t.note("simulated elapsed_us asserted bit-identical between seed and slab paths");
    if smoke {
        t.note("smoke sizes — timings indicative only; run without --smoke for the baseline");
    }
    t
}

/// Format nanoseconds human-scaled.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else {
        format!("{:.2}ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_and_slab_reduce_agree_on_payload_and_clock() {
        let dim = 4u32;
        let grid = square_grid(dim);
        let m = random_dist_matrix(24, grid);
        let layout = m.layout().clone();
        let nested = nested_matrix(&layout);
        let mut hc_seed = cm2(dim);
        let partials = seed_reduce_row(&mut hc_seed, &nested, &layout);
        let mut hc_slab = cm2(dim);
        let v = primitives::reduce(&mut hc_slab, &m, Axis::Row, Sum);
        assert_eq!(hc_seed.elapsed_us(), hc_slab.elapsed_us());
        assert_eq!(hc_seed.counters(), hc_slab.counters());
        assert_eq!(v.chunks().to_nested(), partials);
    }

    #[test]
    fn smoke_run_produces_rows_for_every_bench() {
        let mut path = std::env::temp_dir();
        path.push(format!("vmp-wallclock-test-{}.json", std::process::id()));
        let path = path.to_string_lossy().into_owned();
        let opts = RunOpts { smoke: true, force: true, json_path: Some(path.clone()) };
        let t = wallclock(&opts);
        assert_eq!(t.rows.len(), 8, "5 comparisons + 3 applications on one cube");
        let json = std::fs::read_to_string(&path).expect("bench json written");
        let _ = std::fs::remove_file(&path);
        assert!(json.contains("\"smoke\": true"), "envelope records the run mode: {json}");
        assert!(json.contains("primitive/reduce-row"), "{json}");
    }
}
