//! T3 / F3 — naive (general-router, element-per-message) vs
//! primitive-based implementations.

use vmp_algos::vecmat;
use vmp_core::elem::Sum;
use vmp_core::naive;
use vmp_core::prelude::*;
use vmp_core::primitives;

use crate::common::{cm2, random_aligned_vector, random_dist_matrix, square_grid};
use crate::table::{fmt_us, fmt_x, Table};

/// Simulated times `(naive_us, primitive_us)` for a full vector-matrix
/// multiply (`y = x A`) with the communication done each way.
#[must_use]
pub fn matvec_pair(n: usize, dim: u32) -> (f64, f64) {
    matvec_pair_with(n, dim, CostModel::cm2())
}

/// As [`matvec_pair`] under an explicit cost model (the X5 sensitivity
/// sweep).
#[must_use]
pub fn matvec_pair_with(n: usize, dim: u32, cost: CostModel) -> (f64, f64) {
    let grid = square_grid(dim);
    let a = random_dist_matrix(n, grid);
    let x = random_aligned_vector(&a, Axis::Col);

    let mut hc = vmp_hypercube::Hypercube::new(dim, cost);
    let prod = a.zip_axis(&mut hc, Axis::Col, &x, |_, _, aij, xi| aij * xi);
    hc.reset();
    let _ = naive::naive_reduce(&mut hc, &prod, Axis::Row, Sum);
    let t_naive_comm = hc.elapsed_us();

    let mut hc2 = vmp_hypercube::Hypercube::new(dim, cost);
    let _ = vecmat(&mut hc2, &x, &a);
    let t_prim = hc2.elapsed_us();

    // Charge the naive path the same local multiply the primitive path
    // includes (zip_axis), then its naive reduce.
    let mut hc3 = vmp_hypercube::Hypercube::new(dim, cost);
    let _ = a.zip_axis(&mut hc3, Axis::Col, &x, |_, _, aij, xi| aij * xi);
    (hc3.elapsed_us() + t_naive_comm, t_prim)
}

/// Simulated times `(naive_us, primitive_us)` for one Gaussian
/// elimination step (pivot row + multiplier column fan-out + rank-1
/// update) at step `k = 0`.
#[must_use]
pub fn ge_step_pair(n: usize, dim: u32) -> (f64, f64) {
    let grid = square_grid(dim);
    let run = |use_naive: bool| {
        let mut m = random_dist_matrix(n, square_grid(dim));
        let mut hc = cm2(dim);
        let (row, col) = if use_naive {
            (
                naive::naive_extract_replicated(&mut hc, &m, Axis::Row, 0),
                naive::naive_extract_replicated(&mut hc, &m, Axis::Col, 0),
            )
        } else {
            (
                primitives::extract_replicated(&mut hc, &m, Axis::Row, 0),
                primitives::extract_replicated(&mut hc, &m, Axis::Col, 0),
            )
        };
        let akk = row.get(0);
        m.rank1_update(
            &mut hc,
            &col,
            &row,
            move |i, j, a, c, r| {
                if i > 0 && j > 0 {
                    a - (c / akk) * r
                } else {
                    a
                }
            },
        );
        hc.elapsed_us()
    };
    let _ = grid;
    (run(true), run(false))
}

/// Simulated times `(naive_us, primitive_us)` for one simplex pivot
/// (entering/leaving selection + row normalisation + elimination).
#[must_use]
pub fn simplex_pivot_pair(n: usize, dim: u32) -> (f64, f64) {
    use vmp_core::elem::{ArgMin, Loc};
    let run = |use_naive: bool| {
        let mut t = random_dist_matrix(n, square_grid(dim));
        let mut hc = cm2(dim);
        let mrow = n - 1;
        let obj = primitives::extract(&mut hc, &t, Axis::Row, mrow);
        let entering = obj.reduce_lifted(&mut hc, ArgMin, |j, v| Loc::new(v, j));
        let q = entering.index.min(n - 1);
        let (col_q, rhs) = if use_naive {
            (
                naive::naive_extract_replicated(&mut hc, &t, Axis::Col, q),
                naive::naive_extract_replicated(&mut hc, &t, Axis::Col, n - 1),
            )
        } else {
            (
                primitives::extract_replicated(&mut hc, &t, Axis::Col, q),
                primitives::extract_replicated(&mut hc, &t, Axis::Col, n - 1),
            )
        };
        let ratios = col_q.zip(&mut hc, &rhs, |i, c, b| {
            if c.abs() > 1e-9 {
                Loc::new(b / c, i)
            } else {
                Loc::new(f64::MAX, usize::MAX)
            }
        });
        let leaving = ratios.reduce_all(&mut hc, ArgMin);
        let r = leaving.index.min(n - 2);
        let arq = col_q.reduce_lifted(&mut hc, Sum, move |i, v| if i == r { v } else { 0.0 });
        let row_r = if use_naive {
            naive::naive_extract_replicated(&mut hc, &t, Axis::Row, r)
        } else {
            primitives::extract_replicated(&mut hc, &t, Axis::Row, r)
        };
        let scaled = row_r.map(&mut hc, move |_, v| v / arq);
        if use_naive {
            naive::naive_insert(&mut hc, &mut t, Axis::Row, r, &scaled);
        } else {
            primitives::insert(&mut hc, &mut t, Axis::Row, r, &scaled);
        }
        t.rank1_update(
            &mut hc,
            &col_q,
            &scaled,
            move |i, _, a, c, s| {
                if i == r {
                    a
                } else {
                    a - c * s
                }
            },
        );
        hc.elapsed_us()
    };
    (run(true), run(false))
}

/// T3: application-level naive vs primitive comparison.
#[must_use]
pub fn t3() -> Table {
    let dim = 8u32;
    let mut t = Table::new(
        "T3",
        "naive (general router) vs primitives, application kernels (p = 256)",
        "\"improved the running time of some of our applications by almost an order of magnitude over a naive implementation\"",
        &["kernel", "n", "naive", "primitives", "speedup"],
    );
    for n in [256usize, 512] {
        let (nv, pv) = matvec_pair(n, dim);
        t.row(vec![
            "vector-matrix multiply".into(),
            n.to_string(),
            fmt_us(nv),
            fmt_us(pv),
            fmt_x(nv / pv),
        ]);
    }
    for n in [256usize, 512] {
        let (nv, pv) = ge_step_pair(n, dim);
        t.row(vec![
            "GE elimination step".into(),
            n.to_string(),
            fmt_us(nv),
            fmt_us(pv),
            fmt_x(nv / pv),
        ]);
    }
    for n in [256usize, 512] {
        let (nv, pv) = simplex_pivot_pair(n, dim);
        t.row(vec!["simplex pivot".into(), n.to_string(), fmt_us(nv), fmt_us(pv), fmt_x(nv / pv)]);
    }
    t.note("speedup = naive / primitives; the router pays per-element overhead plus hot-spot serialisation");
    t
}

/// F3: per-primitive speedup (naive / optimized) as a function of size.
#[must_use]
pub fn f3() -> Table {
    let dim = 8u32;
    let mut t = Table::new(
        "F3",
        "per-primitive speedup of blocked over element-router implementations (p = 256)",
        "extends T3: where the order of magnitude comes from, per primitive",
        &["n", "m/p", "reduce", "distribute", "extract+rep", "insert"],
    );
    for n in [64usize, 128, 256, 512] {
        let grid = square_grid(dim);
        let m = random_dist_matrix(n, grid);

        let speed = |naive_t: f64, opt_t: f64| fmt_x(naive_t / opt_t);

        let mut hn = cm2(dim);
        let _ = naive::naive_reduce(&mut hn, &m, Axis::Row, Sum);
        let mut ho = cm2(dim);
        let _ = primitives::reduce(&mut ho, &m, Axis::Row, Sum);
        let s_reduce = speed(hn.elapsed_us(), ho.elapsed_us());

        let mut hc = cm2(dim);
        let vc = primitives::extract(&mut hc, &m, Axis::Row, 0); // concentrated source
        let mut hn = cm2(dim);
        let _ = naive::naive_distribute(&mut hn, &vc, n, m.layout().rows().kind());
        let mut ho = cm2(dim);
        let _ = primitives::distribute(&mut ho, &vc, n, m.layout().rows().kind());
        let s_distribute = speed(hn.elapsed_us(), ho.elapsed_us());

        let mut hn = cm2(dim);
        let _ = naive::naive_extract_replicated(&mut hn, &m, Axis::Row, n / 2);
        let mut ho = cm2(dim);
        let _ = primitives::extract_replicated(&mut ho, &m, Axis::Row, n / 2);
        let s_extract = speed(hn.elapsed_us(), ho.elapsed_us());

        let vr = random_aligned_vector(&m, Axis::Row);
        let mut m1 = m.clone();
        let mut hn = cm2(dim);
        naive::naive_insert(&mut hn, &mut m1, Axis::Row, n / 3, &vr);
        let mut m2 = m.clone();
        let mut ho = cm2(dim);
        primitives::insert(&mut ho, &mut m2, Axis::Row, n / 3, &vr);
        let s_insert = speed(hn.elapsed_us(), ho.elapsed_us().max(1e-9));

        t.row(vec![
            n.to_string(),
            (n * n / (1 << dim)).to_string(),
            s_reduce,
            s_distribute,
            s_extract,
            s_insert,
        ]);
    }
    t.note("insert from a replicated vector is local for the primitives, so its ratio is effectively the whole router cost");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_loses_on_every_kernel() {
        let (nv, pv) = matvec_pair(64, 4);
        assert!(nv > pv, "matvec: naive {nv} vs primitives {pv}");
        let (nv, pv) = ge_step_pair(64, 4);
        assert!(nv > pv, "ge step: naive {nv} vs primitives {pv}");
        let (nv, pv) = simplex_pivot_pair(64, 4);
        assert!(nv > pv, "simplex pivot: naive {nv} vs primitives {pv}");
    }

    #[test]
    fn gap_reaches_order_of_magnitude_at_scale() {
        // The abstract's "almost an order of magnitude" at a realistic
        // m/p on a mid-size machine.
        let (nv, pv) = ge_step_pair(256, 6);
        let ratio = nv / pv;
        assert!(ratio > 5.0, "expected a near-10x gap, got {ratio:.1}x");
    }
}
