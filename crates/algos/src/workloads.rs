//! Workload generators for tests, examples and the benchmark harness.
//!
//! Deterministic (seeded) generators for the three applications: random
//! diagonally dominant linear systems for Gaussian elimination, bounded
//! random LPs and the Klee–Minty cube for simplex, and dense
//! matrix/vector data for the multiply.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::serial::{Dense, StandardLp};

/// Seeded RNG used by all generators.
#[must_use]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A dense `rows x cols` matrix with entries uniform in `[-1, 1)`.
#[must_use]
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Dense {
    let mut r = rng(seed);
    Dense::from_fn(rows, cols, |_, _| r.gen_range(-1.0..1.0))
}

/// A vector with entries uniform in `[-1, 1)`.
#[must_use]
pub fn random_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(-1.0..1.0)).collect()
}

/// A random diagonally dominant system `(A, b, x_true)` with known
/// solution: entries uniform, diagonal boosted above the row sum, and
/// `b = A x_true`. Diagonal dominance makes the system well conditioned,
/// so solves recover `x_true` to tight tolerance.
#[must_use]
pub fn diag_dominant_system(n: usize, seed: u64) -> (Dense, Vec<f64>, Vec<f64>) {
    let mut r = rng(seed);
    let mut a = Dense::from_fn(n, n, |_, _| r.gen_range(-1.0..1.0));
    for i in 0..n {
        let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
        let sign = if a.get(i, i) >= 0.0 { 1.0 } else { -1.0 };
        a.set(i, i, sign * (row_sum + 1.0 + r.gen_range(0.0..1.0)));
    }
    let x_true: Vec<f64> = (0..n).map(|_| r.gen_range(-2.0..2.0)).collect();
    let b = a.matvec(&x_true);
    (a, b, x_true)
}

/// A random symmetric positive-definite system `(A, b, x_true)` with a
/// known solution: `A = M^T M + n I` for random `M`, `b = A x_true`.
/// Well conditioned thanks to the diagonal shift, so CG converges fast.
#[must_use]
pub fn spd_system(n: usize, seed: u64) -> (Dense, Vec<f64>, Vec<f64>) {
    let mut r = rng(seed);
    let m = Dense::from_fn(n, n, |_, _| r.gen_range(-1.0..1.0));
    let mut a = Dense::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += m.get(k, i) * m.get(k, j);
            }
            a.set(i, j, s + if i == j { n as f64 } else { 0.0 });
        }
    }
    let x_true: Vec<f64> = (0..n).map(|_| r.gen_range(-2.0..2.0)).collect();
    let b = a.matvec(&x_true);
    (a, b, x_true)
}

/// A matrix requiring genuine partial pivoting (tiny leading entries on
/// even steps), still well conditioned.
#[must_use]
pub fn pivot_stress_matrix(n: usize, seed: u64) -> Dense {
    let mut r = rng(seed);
    Dense::from_fn(n, n, |i, j| {
        if i == j {
            if i % 2 == 0 {
                1e-11 // forces a row swap at every even step
            } else {
                2.0 + r.gen_range(0.0..1.0)
            }
        } else if j == (i + 1) % n {
            3.0 + r.gen_range(0.0..1.0) // large off-diagonal pivot target
        } else {
            r.gen_range(-0.5..0.5)
        }
    })
}

/// A bounded, feasible random LP: `A` entries in `[0.1, 1.1)` (so every
/// column is bounded by every constraint), `b` in `[m/2, m)` and `c` in
/// `[0.1, 1.1)`. The origin is feasible and the optimum is finite.
#[must_use]
pub fn random_dense_lp(m: usize, n: usize, seed: u64) -> StandardLp {
    let mut r = rng(seed);
    let a = Dense::from_fn(m, n, |_, _| r.gen_range(0.1..1.1));
    let b: Vec<f64> = (0..m).map(|_| r.gen_range(m as f64 / 2.0..m as f64)).collect();
    let c: Vec<f64> = (0..n).map(|_| r.gen_range(0.1..1.1)).collect();
    StandardLp::new(a, b, c)
}

/// The Klee–Minty cube in `d` dimensions: the classic worst case that
/// forces Dantzig-rule simplex through `2^d - 1` pivots.
///
/// max `sum_j 2^{d-1-j} x_j`
/// s.t. `2 sum_{j<i} 2^{i-1-j} x_j + x_i <= 5^{i+1}` for `i = 0..d`.
#[must_use]
pub fn klee_minty(d: usize) -> StandardLp {
    let a = Dense::from_fn(d, d, |i, j| {
        if j < i {
            2f64.powi((i - j + 1) as i32)
        } else if j == i {
            1.0
        } else {
            0.0
        }
    });
    let b: Vec<f64> = (0..d).map(|i| 5f64.powi(i as i32 + 1)).collect();
    let c: Vec<f64> = (0..d).map(|j| 2f64.powi((d - 1 - j) as i32)).collect();
    StandardLp::new(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{lu_solve, simplex_solve, SimplexStatus};

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_matrix(4, 4, 7).to_rows(), random_matrix(4, 4, 7).to_rows());
        assert_ne!(random_matrix(4, 4, 7).to_rows(), random_matrix(4, 4, 8).to_rows());
        assert_eq!(random_vector(5, 1), random_vector(5, 1));
    }

    #[test]
    fn diag_dominant_solves_to_truth() {
        for n in [2usize, 5, 16, 33] {
            let (a, b, x_true) = diag_dominant_system(n, 42);
            let x = lu_solve(&a, &b).expect("diag dominant is nonsingular");
            for (xs, xt) in x.iter().zip(&x_true) {
                assert!((xs - xt).abs() < 1e-8, "n = {n}");
            }
        }
    }

    #[test]
    fn pivot_stress_matrix_requires_pivoting_but_solves() {
        let n = 12;
        let a = pivot_stress_matrix(n, 3);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 2.0).collect();
        let b = a.matvec(&x_true);
        let x = lu_solve(&a, &b).expect("nonsingular");
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-6);
        }
    }

    #[test]
    fn random_lp_is_feasible_and_bounded() {
        for seed in 0..5u64 {
            let lp = random_dense_lp(6, 4, seed);
            assert!(lp.is_feasible(&[0.0; 4], 0.0), "origin feasible");
            let r = simplex_solve(&lp, 1000);
            assert_eq!(r.status, SimplexStatus::Optimal, "seed {seed}");
            assert!(r.objective > 0.0);
            assert!(lp.is_feasible(&r.x, 1e-7));
        }
    }

    #[test]
    fn klee_minty_takes_exponentially_many_pivots() {
        for d in 2..=6usize {
            let lp = klee_minty(d);
            let r = simplex_solve(&lp, 1 << (d + 2));
            assert_eq!(r.status, SimplexStatus::Optimal, "d = {d}");
            assert_eq!(r.iterations, (1 << d) - 1, "Dantzig visits 2^d - 1 vertices at d = {d}");
            // Known optimum: x = (0, ..., 0, 5^d), objective 5^d.
            assert!((r.objective - 5f64.powi(d as i32)).abs() < 1e-6 * 5f64.powi(d as i32));
        }
    }
}
