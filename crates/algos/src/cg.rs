//! Conjugate gradient on the primitives — an extension application.
//!
//! The booklet surrounding the paper (the finite-element reports of
//! Johnsson & Mathur) solves its sparse systems with conjugate gradient
//! on the same machine; here CG over a dense SPD operator demonstrates
//! that the primitive vocabulary supports *iterative* solvers too: each
//! iteration is one `matvec` (elementwise + reduce), two dot products
//! (zip + reduce-to-scalar), three vector updates (zip), and one
//! embedding change (the matvec output is column-aligned, the iteration
//! vectors are row-aligned — an axis flip per step, priced like any
//! other remap).

use vmp_core::elem::Numeric;
use vmp_core::prelude::*;
use vmp_core::remap;
use vmp_hypercube::machine::Hypercube;

use crate::matvec::matvec;
use crate::serial::Dense;

/// Options for [`cg_solve`].
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Stop when the residual 2-norm falls below this.
    pub tol: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions { tol: 1e-10, max_iterations: 1000 }
    }
}

/// Result of a CG run.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The solution estimate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual_norm: f64,
    /// Whether `tol` was reached.
    pub converged: bool,
}

/// Dot product of two identically laid-out vectors (replicated scalar).
fn dot<T: Numeric>(hc: &mut Hypercube, u: &DistVector<T>, v: &DistVector<T>) -> T {
    u.dot(hc, v)
}

/// Solve `A x = b` for symmetric positive-definite `A` by conjugate
/// gradient, entirely on the machine.
///
/// `a` must be square; `b` is given host-side (loaded once). Returns the
/// solution host-side, like [`crate::gauss::ge_solve`].
pub fn cg_solve(hc: &mut Hypercube, a: &DistMatrix<f64>, b: &[f64], opts: CgOptions) -> CgOutcome {
    let n = a.shape().rows;
    assert_eq!(a.shape().cols, n, "CG requires a square (SPD) matrix");
    assert_eq!(b.len(), n, "rhs length");
    let grid = a.layout().grid().clone();
    let row_layout =
        VectorLayout::aligned(n, grid, Axis::Row, Placement::Replicated, a.layout().cols().kind());

    let bv = DistVector::from_slice(row_layout.clone(), b);
    let mut x = DistVector::constant(row_layout.clone(), 0.0f64);
    let mut r = bv.clone(); // r = b - A*0
    let mut p = r.clone();
    let mut rs_old = dot(hc, &r, &r);

    if rs_old.sqrt() <= opts.tol {
        return CgOutcome {
            x: x.to_dense(),
            iterations: 0,
            residual_norm: rs_old.sqrt(),
            converged: true,
        };
    }

    for iter in 1..=opts.max_iterations {
        // Ap: matvec produces a column-aligned vector; flip it back to
        // the iteration vectors' embedding (charged remap).
        let ap_col = matvec(hc, a, &p);
        let ap = remap::remap_vector(hc, &ap_col, row_layout.clone());

        let p_ap = dot(hc, &p, &ap);
        let alpha = rs_old / p_ap;
        x = x.zip(hc, &p, move |_, xi, pi| xi + alpha * pi);
        r = r.zip(hc, &ap, move |_, ri, api| ri - alpha * api);

        let rs_new = dot(hc, &r, &r);
        if rs_new.sqrt() <= opts.tol {
            return CgOutcome {
                x: x.to_dense(),
                iterations: iter,
                residual_norm: rs_new.sqrt(),
                converged: true,
            };
        }
        let beta = rs_new / rs_old;
        p = r.zip(hc, &p, move |_, ri, pi| ri + beta * pi);
        rs_old = rs_new;
    }

    CgOutcome {
        x: x.to_dense(),
        iterations: opts.max_iterations,
        residual_norm: rs_old.sqrt(),
        converged: false,
    }
}

/// Serial CG oracle on a dense host matrix, same formulae.
#[must_use]
pub fn cg_solve_serial(a: &Dense, b: &[f64], opts: CgOptions) -> CgOutcome {
    let n = a.rows();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let sdot = |u: &[f64], v: &[f64]| u.iter().zip(v).map(|(a, b)| a * b).sum::<f64>();
    let mut rs_old = sdot(&r, &r);
    if rs_old.sqrt() <= opts.tol {
        return CgOutcome { x, iterations: 0, residual_norm: rs_old.sqrt(), converged: true };
    }
    for iter in 1..=opts.max_iterations {
        let ap = a.matvec(&p);
        let alpha = rs_old / sdot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = sdot(&r, &r);
        if rs_new.sqrt() <= opts.tol {
            return CgOutcome {
                x,
                iterations: iter,
                residual_norm: rs_new.sqrt(),
                converged: true,
            };
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    CgOutcome { x, iterations: opts.max_iterations, residual_norm: rs_old.sqrt(), converged: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn dist(d: &Dense, dim: u32) -> (Hypercube, DistMatrix<f64>) {
        let grid = ProcGrid::square(Cube::new(dim));
        let m = DistMatrix::from_fn(
            MatrixLayout::cyclic(MatShape::new(d.rows(), d.cols()), grid),
            |i, j| d.get(i, j),
        );
        (Hypercube::new(dim, CostModel::cm2()), m)
    }

    #[test]
    fn solves_spd_systems_to_truth() {
        for (n, dim) in [(8usize, 2u32), (16, 4), (24, 4)] {
            let (a, b, x_true) = workloads::spd_system(n, n as u64 + 1);
            let (mut hc, am) = dist(&a, dim);
            let out = cg_solve(&mut hc, &am, &b, CgOptions::default());
            assert!(out.converged, "n = {n}: residual {}", out.residual_norm);
            assert!(
                out.iterations <= n + 2,
                "CG converges in <= n steps exactly, {} taken",
                out.iterations
            );
            for (xs, xt) in out.x.iter().zip(&x_true) {
                assert!((xs - xt).abs() < 1e-6, "n = {n}");
            }
            assert!(hc.elapsed_us() > 0.0);
        }
    }

    #[test]
    fn parallel_iteration_count_matches_serial() {
        let (a, b, _) = workloads::spd_system(20, 9);
        let serial = cg_solve_serial(&a, &b, CgOptions::default());
        let (mut hc, am) = dist(&a, 4);
        let par = cg_solve(&mut hc, &am, &b, CgOptions::default());
        assert!(par.converged && serial.converged);
        // Dot products are tree-summed in parallel, so allow +-1 step.
        assert!(
            par.iterations.abs_diff(serial.iterations) <= 1,
            "parallel {} vs serial {}",
            par.iterations,
            serial.iterations
        );
        for (xs, xt) in par.x.iter().zip(&serial.x) {
            assert!((xs - xt).abs() < 1e-7);
        }
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let (a, _, _) = workloads::spd_system(8, 3);
        let (mut hc, am) = dist(&a, 2);
        let out = cg_solve(&mut hc, &am, &[0.0; 8], CgOptions::default());
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert!(out.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iteration_cap_reports_nonconvergence() {
        let (a, b, _) = workloads::spd_system(24, 4);
        let (mut hc, am) = dist(&a, 2);
        let out = cg_solve(&mut hc, &am, &b, CgOptions { tol: 1e-14, max_iterations: 2 });
        assert!(!out.converged);
        assert_eq!(out.iterations, 2);
        assert!(out.residual_norm > 0.0);
    }
}
