//! Checkpoint/restart for the long-running solvers.
//!
//! A checkpoint is a host-side snapshot of everything a solver's next
//! step depends on: the exact distributed-matrix contents (bit-for-bit
//! `f64`s, serialised via [`f64::to_bits`]) plus the scalar progress
//! state (next column / basis / iteration count). Because both solvers
//! advance by steps that depend only on that state —
//! [`crate::gauss::forward_eliminate_range`] per column,
//! [`crate::simplex::pivot_once`] per pivot — a run that is interrupted
//! and resumed from a checkpoint produces **bit-identical** results to
//! an uninterrupted run (asserted by the tests here and by the chaos
//! suite).
//!
//! Snapshots serialise to a self-describing little-endian byte format
//! (`to_bytes`/`from_bytes`) so they can cross a process boundary; no
//! serialisation framework is involved.

use vmp_core::prelude::*;
use vmp_hypercube::machine::Hypercube;

use crate::gauss::{forward_eliminate_range, GeError, GeStats};
use crate::serial::simplex::{PivotRule, SimplexResult, SimplexStatus, StandardLp};
use crate::simplex::{assemble, pivot_once, PivotOutcome};

const MAGIC: u32 = 0x564d_5043; // "VMPC"
const VERSION: u16 = 1;
const KIND_GE: u8 = 1;
const KIND_SIMPLEX: u8 = 2;

/// Why a checkpoint byte string failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// Bad magic number or unsupported version.
    BadHeader,
    /// Header announces a different snapshot kind.
    WrongKind,
    /// Byte string too short or internally inconsistent.
    Truncated,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadHeader => write!(f, "bad checkpoint header"),
            CheckpointError::WrongKind => write!(f, "checkpoint is of a different kind"),
            CheckpointError::Truncated => write!(f, "checkpoint bytes truncated or inconsistent"),
        }
    }
}

impl std::error::Error for CheckpointError {}

// --- little-endian codec helpers -------------------------------------

struct Writer(Vec<u8>);

impl Writer {
    fn new(kind: u8) -> Self {
        let mut w = Writer(Vec::new());
        w.u32(MAGIC);
        w.u16(VERSION);
        w.0.push(kind);
        w
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn usize_(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.usize_(vs.len());
        for &v in vs {
            self.u64(v.to_bits());
        }
    }
    fn usizes(&mut self, vs: &[usize]) {
        self.usize_(vs.len());
        for &v in vs {
            self.usize_(v);
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], kind: u8) -> Result<Self, CheckpointError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.u32()? != MAGIC || r.u16()? != VERSION {
            return Err(CheckpointError::BadHeader);
        }
        if r.u8()? != kind {
            return Err(CheckpointError::WrongKind);
        }
        Ok(r)
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    /// A fixed-size little-endian field; `take` already bounds-checked,
    /// so a length mismatch decodes as a truncation error rather than a
    /// panic (vmplint rule P1 keeps this path unwrap-free).
    fn array<const N: usize>(&mut self) -> Result<[u8; N], CheckpointError> {
        self.take(N)?.try_into().map_err(|_| CheckpointError::Truncated)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn usize_(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?).map_err(|_| CheckpointError::Truncated)
    }
    fn f64s(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let n = self.usize_()?;
        if n > self.bytes.len() / 8 {
            return Err(CheckpointError::Truncated);
        }
        (0..n).map(|_| Ok(f64::from_bits(self.u64()?))).collect()
    }
    fn usizes(&mut self) -> Result<Vec<usize>, CheckpointError> {
        let n = self.usize_()?;
        if n > self.bytes.len() / 8 {
            return Err(CheckpointError::Truncated);
        }
        (0..n).map(|_| self.usize_()).collect()
    }
    fn finish(self) -> Result<(), CheckpointError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(CheckpointError::Truncated)
        }
    }
}

// --- Gaussian elimination --------------------------------------------

/// A forward-elimination snapshot: the augmented matrix after columns
/// `0..next_col` are eliminated, plus the statistics so far.
#[derive(Debug, Clone, PartialEq)]
pub struct GeCheckpoint {
    /// Next column to eliminate.
    pub next_col: usize,
    /// Row interchanges performed so far.
    pub row_swaps: usize,
    /// Augmented-matrix row count `n`.
    pub rows: usize,
    /// Augmented-matrix column count (`> n`).
    pub cols: usize,
    /// Row-major dense snapshot (`rows * cols` exact `f64`s).
    pub data: Vec<f64>,
}

impl GeCheckpoint {
    /// Snapshot `aug` with `next_col` columns still to eliminate.
    #[must_use]
    pub fn capture(aug: &DistMatrix<f64>, next_col: usize, stats: GeStats) -> Self {
        let shape = aug.shape();
        let data = aug.to_dense().into_iter().flatten().collect();
        GeCheckpoint {
            next_col,
            row_swaps: stats.row_swaps,
            rows: shape.rows,
            cols: shape.cols,
            data,
        }
    }

    /// Rebuild the distributed matrix (cyclic on `grid`, as the GE
    /// drivers lay it out) and the statistics accumulated so far.
    #[must_use]
    pub fn restore(&self, grid: ProcGrid) -> (DistMatrix<f64>, GeStats) {
        let layout = MatrixLayout::cyclic(MatShape::new(self.rows, self.cols), grid);
        let cols = self.cols;
        let aug = DistMatrix::from_fn(layout, |i, j| self.data[i * cols + j]);
        (aug, GeStats { row_swaps: self.row_swaps })
    }

    /// Serialise to the self-describing byte format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_GE);
        w.usize_(self.next_col);
        w.usize_(self.row_swaps);
        w.usize_(self.rows);
        w.usize_(self.cols);
        w.f64s(&self.data);
        w.0
    }

    /// Decode from bytes produced by [`GeCheckpoint::to_bytes`].
    ///
    /// # Errors
    /// [`CheckpointError`] on a malformed or non-GE byte string.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::new(bytes, KIND_GE)?;
        let ck = GeCheckpoint {
            next_col: r.usize_()?,
            row_swaps: r.usize_()?,
            rows: r.usize_()?,
            cols: r.usize_()?,
            data: r.f64s()?,
        };
        if ck.data.len() != ck.rows * ck.cols || ck.next_col > ck.rows {
            return Err(CheckpointError::Truncated);
        }
        r.finish()?;
        Ok(ck)
    }
}

/// Forward elimination that emits a checkpoint every `every` columns.
/// The final state is *not* emitted as a checkpoint (the caller has the
/// finished matrix); `sink` sees snapshots strictly mid-run.
///
/// The emitted snapshots are host-side copies and charge nothing — the
/// cost model prices the machine, not the host's stable store.
///
/// # Errors
/// [`GeError::Singular`] if a pivot column is numerically zero.
///
/// # Panics
/// Panics if `every` is zero.
pub fn forward_eliminate_checkpointed(
    hc: &mut Hypercube,
    aug: &mut DistMatrix<f64>,
    every: usize,
    mut sink: impl FnMut(&GeCheckpoint),
) -> Result<GeStats, GeError> {
    assert!(every > 0, "checkpoint interval must be positive");
    let n = aug.shape().rows;
    let mut stats = GeStats::default();
    let mut k = 0;
    while k < n {
        let end = (k + every).min(n);
        forward_eliminate_range(hc, aug, k, end, &mut stats)?;
        if end < n {
            sink(&GeCheckpoint::capture(aug, end, stats));
        }
        k = end;
    }
    Ok(stats)
}

/// Resume forward elimination from a checkpoint on a fresh machine:
/// rebuild the distributed matrix and eliminate the remaining columns.
/// The result is bit-identical to the uninterrupted run's.
///
/// # Errors
/// [`GeError::Singular`] if a remaining pivot column is numerically zero.
pub fn resume_forward_eliminate(
    hc: &mut Hypercube,
    ck: &GeCheckpoint,
    grid: ProcGrid,
) -> Result<(DistMatrix<f64>, GeStats), GeError> {
    let (mut aug, mut stats) = ck.restore(grid);
    forward_eliminate_range(hc, &mut aug, ck.next_col, ck.rows, &mut stats)?;
    Ok((aug, stats))
}

// --- simplex ---------------------------------------------------------

/// A simplex snapshot taken between pivots: the tableau, the basis, and
/// the pivot count so far.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexCheckpoint {
    /// Pivots performed so far.
    pub iterations: usize,
    /// Entering-variable rule the run uses (a resumed run must keep it).
    pub rule: PivotRule,
    /// Basic variable per constraint row.
    pub basis: Vec<usize>,
    /// Tableau row count (`m + 1`).
    pub rows: usize,
    /// Tableau column count (`n + m + 1`).
    pub cols: usize,
    /// Row-major dense tableau snapshot (exact `f64`s).
    pub data: Vec<f64>,
}

impl SimplexCheckpoint {
    /// Snapshot tableau `t` after `iterations` pivots.
    #[must_use]
    pub fn capture(
        t: &DistMatrix<f64>,
        basis: &[usize],
        iterations: usize,
        rule: PivotRule,
    ) -> Self {
        let shape = t.shape();
        SimplexCheckpoint {
            iterations,
            rule,
            basis: basis.to_vec(),
            rows: shape.rows,
            cols: shape.cols,
            data: t.to_dense().into_iter().flatten().collect(),
        }
    }

    /// Rebuild the distributed tableau (cyclic on `grid`).
    #[must_use]
    pub fn restore(&self, grid: ProcGrid) -> DistMatrix<f64> {
        let layout = MatrixLayout::cyclic(MatShape::new(self.rows, self.cols), grid);
        let cols = self.cols;
        DistMatrix::from_fn(layout, |i, j| self.data[i * cols + j])
    }

    /// Serialise to the self-describing byte format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_SIMPLEX);
        w.usize_(self.iterations);
        w.0.push(match self.rule {
            PivotRule::Dantzig => 0,
            PivotRule::Bland => 1,
        });
        w.usizes(&self.basis);
        w.usize_(self.rows);
        w.usize_(self.cols);
        w.f64s(&self.data);
        w.0
    }

    /// Decode from bytes produced by [`SimplexCheckpoint::to_bytes`].
    ///
    /// # Errors
    /// [`CheckpointError`] on a malformed or non-simplex byte string.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader::new(bytes, KIND_SIMPLEX)?;
        let iterations = r.usize_()?;
        let rule = match r.u8()? {
            0 => PivotRule::Dantzig,
            1 => PivotRule::Bland,
            _ => return Err(CheckpointError::Truncated),
        };
        let ck = SimplexCheckpoint {
            iterations,
            rule,
            basis: r.usizes()?,
            rows: r.usize_()?,
            cols: r.usize_()?,
            data: r.f64s()?,
        };
        if ck.data.len() != ck.rows * ck.cols || ck.basis.len() + 1 != ck.rows {
            return Err(CheckpointError::Truncated);
        }
        r.finish()?;
        Ok(ck)
    }
}

/// The shared single-phase pivot loop: pivots until optimal, unbounded,
/// or out of budget, emitting a checkpoint to `sink` after every pivot
/// that leaves the run still in progress.
#[allow(clippy::too_many_arguments)]
fn pivot_to_end(
    hc: &mut Hypercube,
    t: &mut DistMatrix<f64>,
    basis: &mut [usize],
    m: usize,
    rhs_col: usize,
    start_iteration: usize,
    max_iterations: usize,
    rule: PivotRule,
    sink: &mut impl FnMut(&SimplexCheckpoint),
) -> (SimplexStatus, usize) {
    let mut done = start_iteration;
    while done < max_iterations {
        match pivot_once(hc, t, basis, m, m, move |j| j < rhs_col, rule) {
            PivotOutcome::Optimal => return (SimplexStatus::Optimal, done),
            PivotOutcome::Unbounded => return (SimplexStatus::Unbounded, done),
            PivotOutcome::Pivoted(..) => {
                done += 1;
                if done < max_iterations {
                    sink(&SimplexCheckpoint::capture(t, basis, done, rule));
                }
            }
        }
    }
    (SimplexStatus::MaxIterations, max_iterations)
}

/// As [`crate::simplex::solve_parallel_with`], emitting a checkpoint to
/// `sink` after every pivot. Checkpoints are host-side copies and charge
/// nothing. The returned result is bit-identical to the plain solver's.
#[must_use]
pub fn solve_parallel_checkpointed(
    hc: &mut Hypercube,
    lp: &StandardLp,
    grid: ProcGrid,
    max_iterations: usize,
    rule: PivotRule,
    mut sink: impl FnMut(&SimplexCheckpoint),
) -> SimplexResult {
    let mut t = crate::simplex::build_tableau(lp, grid);
    let (m, n) = (lp.m(), lp.n());
    let mut basis: Vec<usize> = (n..n + m).collect();
    let (status, iterations) =
        pivot_to_end(hc, &mut t, &mut basis, m, n + m, 0, max_iterations, rule, &mut sink);
    assemble(status, &t, &basis, lp, iterations)
}

/// Resume a simplex run from a checkpoint on a fresh machine. The final
/// result (status, objective, solution, total pivot count) is
/// bit-identical to the uninterrupted run's.
#[must_use]
pub fn resume_solve_parallel(
    hc: &mut Hypercube,
    lp: &StandardLp,
    grid: ProcGrid,
    ck: &SimplexCheckpoint,
    max_iterations: usize,
) -> SimplexResult {
    let (m, n) = (lp.m(), lp.n());
    assert_eq!(ck.basis.len(), m, "checkpoint is for a different LP shape");
    assert_eq!(ck.cols, n + m + 1, "checkpoint is for a different LP shape");
    let mut t = ck.restore(grid);
    let mut basis = ck.basis.clone();
    let mut sink = |_: &SimplexCheckpoint| {};
    let (status, iterations) = pivot_to_end(
        hc,
        &mut t,
        &mut basis,
        m,
        n + m,
        ck.iterations,
        max_iterations,
        ck.rule,
        &mut sink,
    );
    assemble(status, &t, &basis, lp, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss::{build_augmented, forward_eliminate};
    use crate::simplex::solve_parallel_with;
    use crate::workloads;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn machine_and_grid(dim: u32) -> (Hypercube, ProcGrid) {
        (Hypercube::new(dim, CostModel::cm2()), ProcGrid::square(Cube::new(dim)))
    }

    #[test]
    fn ge_restart_is_bit_identical_from_every_checkpoint() {
        let n = 13;
        let a = workloads::pivot_stress_matrix(n, 3);
        let b = workloads::random_vector(n, 4);

        // Uninterrupted reference.
        let (mut hc_ref, grid_ref) = machine_and_grid(4);
        let mut aug_ref = build_augmented(&a, &b, grid_ref);
        let stats_ref = forward_eliminate(&mut hc_ref, &mut aug_ref).expect("nonsingular");
        let dense_ref = aug_ref.to_dense();

        // Checkpointed run, every 3 columns.
        let mut cks: Vec<Vec<u8>> = Vec::new();
        let (mut hc, grid) = machine_and_grid(4);
        let mut aug = build_augmented(&a, &b, grid);
        let stats =
            forward_eliminate_checkpointed(&mut hc, &mut aug, 3, |ck| cks.push(ck.to_bytes()))
                .expect("nonsingular");
        assert_eq!(aug.to_dense(), dense_ref, "checkpointing must not perturb the run");
        assert_eq!(stats, stats_ref);
        assert_eq!(cks.len(), (n - 1) / 3, "mid-run snapshots only");

        // Restart from every snapshot, through the byte codec, on a
        // fresh machine — all must land on the reference bits.
        for bytes in &cks {
            let ck = GeCheckpoint::from_bytes(bytes).expect("round trip");
            let (mut hc2, grid2) = machine_and_grid(4);
            let (aug2, stats2) =
                resume_forward_eliminate(&mut hc2, &ck, grid2).expect("nonsingular");
            assert_eq!(aug2.to_dense(), dense_ref, "restart from col {}", ck.next_col);
            assert_eq!(stats2, stats_ref, "restart from col {}", ck.next_col);
        }
    }

    #[test]
    fn ge_restart_works_on_a_different_machine_size() {
        // The snapshot is machine-independent: resume on a smaller cube.
        let n = 10;
        let (a, b, _) = workloads::diag_dominant_system(n, 5);
        let (mut hc_ref, grid_ref) = machine_and_grid(4);
        let mut aug_ref = build_augmented(&a, &b, grid_ref);
        forward_eliminate(&mut hc_ref, &mut aug_ref).expect("nonsingular");

        let mut cks = Vec::new();
        let (mut hc, grid) = machine_and_grid(4);
        let mut aug = build_augmented(&a, &b, grid);
        forward_eliminate_checkpointed(&mut hc, &mut aug, 4, |ck| cks.push(ck.clone()))
            .expect("nonsingular");
        let (mut hc2, grid2) = machine_and_grid(2);
        let (aug2, _) = resume_forward_eliminate(&mut hc2, &cks[0], grid2).expect("nonsingular");
        assert_eq!(aug2.to_dense(), aug_ref.to_dense());
    }

    #[test]
    fn simplex_restart_is_bit_identical_from_every_pivot() {
        let lp = workloads::random_dense_lp(7, 5, 2);
        let (mut hc_ref, grid_ref) = machine_and_grid(4);
        let reference = solve_parallel_with(&mut hc_ref, &lp, grid_ref, 500, PivotRule::Dantzig);
        assert_eq!(reference.status, SimplexStatus::Optimal);

        let mut cks: Vec<Vec<u8>> = Vec::new();
        let (mut hc, grid) = machine_and_grid(4);
        let checkpointed =
            solve_parallel_checkpointed(&mut hc, &lp, grid, 500, PivotRule::Dantzig, |ck| {
                cks.push(ck.to_bytes())
            });
        assert_eq!(checkpointed.x, reference.x, "checkpointing must not perturb the run");
        assert_eq!(checkpointed.objective, reference.objective);
        assert_eq!(checkpointed.iterations, reference.iterations);
        // One snapshot per completed pivot (the last one resumes to an
        // immediate optimality detection).
        assert_eq!(cks.len(), reference.iterations);

        for bytes in &cks {
            let ck = SimplexCheckpoint::from_bytes(bytes).expect("round trip");
            let (mut hc2, grid2) = machine_and_grid(4);
            let resumed = resume_solve_parallel(&mut hc2, &lp, grid2, &ck, 500);
            assert_eq!(resumed.status, reference.status, "pivot {}", ck.iterations);
            assert_eq!(resumed.objective, reference.objective, "pivot {}", ck.iterations);
            assert_eq!(resumed.x, reference.x, "pivot {}", ck.iterations);
            assert_eq!(resumed.iterations, reference.iterations, "pivot {}", ck.iterations);
        }
    }

    #[test]
    fn codec_rejects_garbage_and_cross_kind_bytes() {
        let lp = workloads::random_dense_lp(4, 3, 1);
        let (mut hc, grid) = machine_and_grid(2);
        let mut simplex_bytes = Vec::new();
        let _ = solve_parallel_checkpointed(&mut hc, &lp, grid, 100, PivotRule::Dantzig, |ck| {
            simplex_bytes.push(ck.to_bytes());
        });
        assert!(!simplex_bytes.is_empty(), "LP must take at least two pivots");

        // Cross-kind: simplex bytes are not a GE checkpoint.
        assert_eq!(GeCheckpoint::from_bytes(&simplex_bytes[0]), Err(CheckpointError::WrongKind));
        // Garbage and truncation.
        assert_eq!(SimplexCheckpoint::from_bytes(b"no"), Err(CheckpointError::Truncated));
        assert_eq!(SimplexCheckpoint::from_bytes(b"nope"), Err(CheckpointError::BadHeader));
        assert_eq!(SimplexCheckpoint::from_bytes(&[0u8; 32]), Err(CheckpointError::BadHeader));
        let cut = &simplex_bytes[0][..simplex_bytes[0].len() - 3];
        assert_eq!(SimplexCheckpoint::from_bytes(cut), Err(CheckpointError::Truncated));

        // Round trip is the identity.
        let ck = SimplexCheckpoint::from_bytes(&simplex_bytes[0]).unwrap();
        assert_eq!(SimplexCheckpoint::from_bytes(&ck.to_bytes()).unwrap(), ck);
    }
}
