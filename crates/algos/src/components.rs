//! Connected-component labelling of 2-D images.
//!
//! Agrawal (one of the paper's authors), Nekludova & Lim's
//! connected-components reports are in the same booklet ("A Parallel
//! O(log N) Algorithm for Finding Connected Components in Planar
//! Images", "A Fast Parallel Algorithm for Labeling Connected
//! Components"). This module implements the data-parallel label
//! propagation formulation on the machine: every pixel starts with a
//! unique label (its index) and repeatedly takes the minimum label among
//! itself and its same-colour 4-neighbours — four NEWS shifts and an
//! elementwise min per sweep — until a machine-wide reduction reports no
//! change. Convergence takes at most the component diameter; each sweep
//! is `O(m/p + lg p)`.

use vmp_core::elem::Max;
use vmp_core::prelude::*;
use vmp_core::shift::{shift, Boundary};
use vmp_hypercube::machine::Hypercube;

/// Sentinel carried by out-of-image shift boundaries.
const BORDER: i64 = -1;

/// Label the connected components (4-connectivity, equal colours) of an
/// image given as a distributed matrix of colour values. Returns a
/// matrix of labels: every pixel of a component gets the smallest pixel
/// index (`i * cols + j`) in that component. Also returns the number of
/// sweeps.
pub fn label_components(hc: &mut Hypercube, image: &DistMatrix<i64>) -> (DistMatrix<i64>, usize) {
    let shape = image.shape();
    let cols = shape.cols;
    // labels[i][j] = pixel index, paired with the colour for the
    // neighbour comparison: (label, colour).
    let mut state: DistMatrix<(i64, i64)> =
        image.map(hc, |i, j, colour| ((i * cols + j) as i64, colour));

    let mut sweeps = 0usize;
    loop {
        sweeps += 1;
        let up = shift(hc, &state, Axis::Col, 1, Boundary::Fill((BORDER, BORDER)));
        let down = shift(hc, &state, Axis::Col, -1, Boundary::Fill((BORDER, BORDER)));
        let left = shift(hc, &state, Axis::Row, 1, Boundary::Fill((BORDER, BORDER)));
        let right = shift(hc, &state, Axis::Row, -1, Boundary::Fill((BORDER, BORDER)));

        let take = |acc: (i64, i64), nb: (i64, i64)| -> (i64, i64) {
            // Adopt the neighbour's label when colours match and it is
            // smaller. BORDER never matches a real colour.
            if nb.1 == acc.1 && nb.0 >= 0 && nb.0 < acc.0 {
                (nb.0, acc.1)
            } else {
                acc
            }
        };
        let s1 = state.zip(hc, &up, take);
        let s2 = s1.zip(hc, &down, take);
        let s3 = s2.zip(hc, &left, take);
        let new_state = s3.zip(hc, &right, take);

        // Converged? One machine-wide OR-reduction of "changed" bits.
        let changed = new_state.zip(hc, &state, |a, b| i64::from(a.0 != b.0)).map(hc, |_, _, c| c);
        let any = vmp_core::primitives::reduce(hc, &changed, Axis::Row, Max).reduce_all(hc, Max);
        state = new_state;
        if any == 0 {
            break;
        }
    }
    (state.map(hc, |_, _, (label, _)| label), sweeps)
}

/// Serial oracle: breadth-first labelling with the same smallest-index
/// convention.
#[must_use]
pub fn label_components_serial(image: &[Vec<i64>]) -> Vec<Vec<i64>> {
    let rows = image.len();
    let cols = image.first().map_or(0, Vec::len);
    let mut labels = vec![vec![-1i64; cols]; rows];
    for si in 0..rows {
        for sj in 0..cols {
            if labels[si][sj] >= 0 {
                continue;
            }
            let root = (si * cols + sj) as i64;
            let colour = image[si][sj];
            let mut queue = std::collections::VecDeque::from([(si, sj)]);
            labels[si][sj] = root;
            while let Some((i, j)) = queue.pop_front() {
                let push =
                    |ni: usize,
                     nj: usize,
                     labels: &mut Vec<Vec<i64>>,
                     queue: &mut std::collections::VecDeque<(usize, usize)>| {
                        if image[ni][nj] == colour && labels[ni][nj] < 0 {
                            labels[ni][nj] = root;
                            queue.push_back((ni, nj));
                        }
                    };
                if i > 0 {
                    push(i - 1, j, &mut labels, &mut queue);
                }
                if i + 1 < rows {
                    push(i + 1, j, &mut labels, &mut queue);
                }
                if j > 0 {
                    push(i, j - 1, &mut labels, &mut queue);
                }
                if j + 1 < cols {
                    push(i, j + 1, &mut labels, &mut queue);
                }
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn dist(image: &[Vec<i64>], dim: u32) -> (Hypercube, DistMatrix<i64>) {
        let rows = image.len();
        let cols = image[0].len();
        let grid = ProcGrid::square(Cube::new(dim));
        let m =
            DistMatrix::from_fn(MatrixLayout::block(MatShape::new(rows, cols), grid), |i, j| {
                image[i][j]
            });
        (Hypercube::new(dim, CostModel::cm2()), m)
    }

    fn stripes(n: usize) -> Vec<Vec<i64>> {
        (0..n).map(|i| (0..n).map(|_| (i / 2) as i64 % 2).collect()).collect()
    }

    fn checkerboard(n: usize) -> Vec<Vec<i64>> {
        (0..n).map(|i| (0..n).map(|j| ((i + j) % 2) as i64).collect()).collect()
    }

    #[test]
    fn uniform_image_is_one_component() {
        let img = vec![vec![7i64; 8]; 8];
        let (mut hc, m) = dist(&img, 4);
        let (labels, _) = label_components(&mut hc, &m);
        assert!(labels.to_dense().iter().flatten().all(|&l| l == 0), "all join pixel 0");
    }

    #[test]
    fn checkerboard_has_a_component_per_pixel() {
        let n = 6;
        let img = checkerboard(n);
        let (mut hc, m) = dist(&img, 2);
        let (labels, sweeps) = label_components(&mut hc, &m);
        let d = labels.to_dense();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(d[i][j], (i * n + j) as i64, "isolated pixel keeps its own label");
            }
        }
        assert_eq!(sweeps, 1, "nothing to propagate");
    }

    #[test]
    fn matches_serial_on_structured_images() {
        for (img, dim) in [
            (stripes(8), 2u32),
            (checkerboard(9), 4),
            // A spiral-ish pattern with long thin components.
            (
                (0..12)
                    .map(|i: usize| {
                        (0..12).map(|j: usize| i64::from((i / 3 + j / 4) % 2 == 0)).collect()
                    })
                    .collect::<Vec<Vec<i64>>>(),
                4,
            ),
        ] {
            let serial = label_components_serial(&img);
            let (mut hc, m) = dist(&img, dim);
            let (labels, _) = label_components(&mut hc, &m);
            assert_eq!(labels.to_dense(), serial);
        }
    }

    #[test]
    fn component_count_is_right() {
        // Two L-shaped regions of colour 1 separated by a 0 river.
        let img = vec![
            vec![1, 1, 0, 1, 1],
            vec![1, 0, 0, 0, 1],
            vec![1, 0, 1, 0, 1],
            vec![1, 0, 1, 0, 1],
            vec![1, 0, 1, 1, 1],
        ];
        let serial = label_components_serial(&img);
        let mut distinct: Vec<i64> = serial.iter().flatten().copied().collect();
        distinct.sort_unstable();
        distinct.dedup();
        let (mut hc, m) = dist(&img, 2);
        let (labels, _) = label_components(&mut hc, &m);
        let mut got: Vec<i64> = labels.to_dense().into_iter().flatten().collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got, distinct);
        // The river (colour 0) plus 2 or 3 colour-1 regions.
        assert!(distinct.len() >= 3);
    }

    #[test]
    fn results_identical_across_machine_sizes() {
        let img = stripes(10);
        let mut all = Vec::new();
        for dim in [0u32, 2, 4] {
            let (mut hc, m) = dist(&img, dim);
            let (labels, _) = label_components(&mut hc, &m);
            all.push(labels.to_dense());
        }
        assert_eq!(all[0], all[1]);
        assert_eq!(all[0], all[2]);
    }
}
