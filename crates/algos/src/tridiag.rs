//! Tridiagonal systems by parallel cyclic reduction (PCR).
//!
//! The technical-report corpus around the paper devotes half a dozen
//! reports to tridiagonal systems on Boolean cubes (Johnsson's *Solving
//! Tridiagonal Systems on Ensemble Architectures*, the ADI and fast
//! Poisson solver papers — all abstracted in the source booklet). PCR is
//! the fully data-parallel member of that family: `ceil(lg n)` steps,
//! each combining every equation with its neighbours at stride `2^s`,
//! until the system is diagonal. In the primitive vocabulary a step is
//! two vector shifts (blocked routed moves) and one elementwise pass
//! over `(a, b, c, d)` coefficient tuples.
//!
//! For equation `i`: `a_i x_{i-1} + b_i x_i + c_i x_{i+1} = d_i`
//! (`a_0 = c_{n-1} = 0`). Out-of-range neighbours are identity rows
//! `(0, 1, 0, 0)`, which make the update formulas total.

use vmp_core::prelude::*;
use vmp_core::scan::route_permutation;
use vmp_hypercube::machine::Hypercube;

/// One equation's coefficients `(a, b, c, d)`.
pub type Row4 = (f64, f64, f64, f64);

/// The identity row used for out-of-range neighbours.
pub const IDENTITY_ROW: Row4 = (0.0, 1.0, 0.0, 0.0);

/// A tridiagonal system distributed as a linear block vector of
/// coefficient tuples.
#[derive(Debug, Clone)]
pub struct DistTridiag {
    rows: DistVector<Row4>,
}

impl DistTridiag {
    /// Build from host-side diagonals (`a[0]` and `c[n-1]` must be 0).
    ///
    /// # Panics
    /// Panics on length mismatches or nonzero out-of-band entries.
    #[must_use]
    pub fn from_diagonals(grid: ProcGrid, a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> Self {
        let n = b.len();
        assert!(n > 0, "empty system");
        assert_eq!(a.len(), n, "subdiagonal length");
        assert_eq!(c.len(), n, "superdiagonal length");
        assert_eq!(d.len(), n, "rhs length");
        assert_eq!(a[0], 0.0, "a[0] must be zero");
        assert_eq!(c[n - 1], 0.0, "c[n-1] must be zero");
        let layout = VectorLayout::linear(n, grid, Dist::Block);
        let rows = DistVector::from_fn(layout, |i| (a[i], b[i], c[i], d[i]));
        DistTridiag { rows }
    }

    /// System size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.rows.n()
    }

    /// Solve by parallel cyclic reduction: `ceil(lg n)` elimination
    /// steps, then the diagonal divide. Returns the solution vector.
    #[must_use]
    pub fn solve_pcr(&self, hc: &mut Hypercube) -> DistVector<f64> {
        let n = self.n();
        let mut rows = self.rows.clone();
        let mut stride = 1usize;
        while stride < n {
            let s = stride;
            // below[i] = rows[i - s], above[i] = rows[i + s].
            let below = route_permutation(
                hc,
                &rows,
                move |i| if i + s < n { Some(i + s) } else { None },
                Some(IDENTITY_ROW),
            );
            let above = route_permutation(hc, &rows, move |i| i.checked_sub(s), Some(IDENTITY_ROW));
            let paired = rows.zip(hc, &below, |_, cur, lo| (cur, lo));
            rows = paired.zip(hc, &above, |_, (cur, lo), hi| {
                let (a, b, c, d) = cur;
                let (la, lb, lc, ld) = lo;
                let (ha, hb, hc_, hd) = hi;
                let alpha = -a / lb;
                let gamma = -c / hb;
                (alpha * la, b + alpha * lc + gamma * ha, gamma * hc_, d + alpha * ld + gamma * hd)
            });
            // Charge the extra arithmetic beyond the zip's 1 flop/elem:
            // the update is ~12 flops per equation.
            hc.charge_flops(10 * rows.layout().dist().max_count());
            stride <<= 1;
        }
        rows.map(hc, |_, (_, b, _, d)| d / b)
    }
}

/// Serial Thomas-algorithm oracle.
///
/// # Panics
/// Panics if a pivot vanishes (the solver assumes diagonal dominance).
#[must_use]
pub fn thomas_solve(a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut cp = vec![0.0; n];
    let mut dp = vec![0.0; n];
    cp[0] = c[0] / b[0];
    dp[0] = d[0] / b[0];
    for i in 1..n {
        let m = b[i] - a[i] * cp[i - 1];
        assert!(m.abs() > 1e-14, "Thomas pivot vanished at {i}");
        cp[i] = c[i] / m;
        dp[i] = (d[i] - a[i] * dp[i - 1]) / m;
    }
    let mut x = vec![0.0; n];
    x[n - 1] = dp[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = dp[i] - cp[i] * x[i + 1];
    }
    x
}

/// A generated tridiagonal system `(a, b, c, d, x_true)`.
pub type TridiagSystem = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

/// A random diagonally dominant tridiagonal system with known solution:
/// `(a, b, c, d, x_true)`.
#[must_use]
pub fn random_tridiag(n: usize, seed: u64) -> TridiagSystem {
    use rand::Rng;
    let mut r = crate::workloads::rng(seed);
    let mut a = vec![0.0; n];
    let mut b = vec![0.0; n];
    let mut c = vec![0.0; n];
    for i in 0..n {
        if i > 0 {
            a[i] = r.gen_range(-1.0..1.0);
        }
        if i + 1 < n {
            c[i] = r.gen_range(-1.0..1.0);
        }
        b[i] = a[i].abs() + c[i].abs() + 1.0 + r.gen_range(0.0..1.0);
    }
    let x_true: Vec<f64> = (0..n).map(|_| r.gen_range(-2.0..2.0)).collect();
    let mut d = vec![0.0; n];
    for i in 0..n {
        d[i] = b[i] * x_true[i];
        if i > 0 {
            d[i] += a[i] * x_true[i - 1];
        }
        if i + 1 < n {
            d[i] += c[i] * x_true[i + 1];
        }
    }
    (a, b, c, d, x_true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn grid(dim: u32) -> ProcGrid {
        ProcGrid::square(Cube::new(dim))
    }

    #[test]
    fn pcr_solves_known_small_system() {
        // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1, 2, 3].
        let a = vec![0.0, 1.0, 1.0];
        let b = vec![2.0, 2.0, 2.0];
        let c = vec![1.0, 1.0, 0.0];
        let d = vec![4.0, 8.0, 8.0];
        let mut hc = Hypercube::new(2, CostModel::cm2());
        let sys = DistTridiag::from_diagonals(grid(2), &a, &b, &c, &d);
        let x = sys.solve_pcr(&mut hc).to_dense();
        for (got, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn pcr_matches_thomas_on_random_systems() {
        for n in [1usize, 2, 5, 16, 33, 100] {
            for dim in [0u32, 3, 5] {
                let (a, b, c, d, x_true) = random_tridiag(n, n as u64 * 7 + dim as u64);
                let serial = thomas_solve(&a, &b, &c, &d);
                let mut hc = Hypercube::new(dim, CostModel::cm2());
                let sys = DistTridiag::from_diagonals(grid(dim), &a, &b, &c, &d);
                let x = sys.solve_pcr(&mut hc).to_dense();
                for i in 0..n {
                    assert!((x[i] - serial[i]).abs() < 1e-9, "n={n} dim={dim} i={i}");
                    assert!((x[i] - x_true[i]).abs() < 1e-8, "truth n={n} dim={dim} i={i}");
                }
            }
        }
    }

    #[test]
    fn pcr_is_bit_identical_across_machine_sizes() {
        let (a, b, c, d, _) = random_tridiag(40, 99);
        let mut answers = Vec::new();
        for dim in [0u32, 2, 4, 6] {
            let mut hc = Hypercube::new(dim, CostModel::cm2());
            let sys = DistTridiag::from_diagonals(grid(dim), &a, &b, &c, &d);
            answers.push(sys.solve_pcr(&mut hc).to_dense());
        }
        for ans in &answers[1..] {
            assert_eq!(ans, &answers[0], "same elementwise arithmetic for every p");
        }
    }

    #[test]
    fn pcr_takes_log_steps_of_communication() {
        let n = 64usize;
        let (a, b, c, d, _) = random_tridiag(n, 5);
        let mut hc = Hypercube::new(6, CostModel::cm2());
        let sys = DistTridiag::from_diagonals(grid(6), &a, &b, &c, &d);
        let _ = sys.solve_pcr(&mut hc);
        // 6 strides, 2 routed shifts each, <= d supersteps per shift.
        assert!(
            hc.counters().message_steps <= 6 * 2 * 6 + 6,
            "{} supersteps",
            hc.counters().message_steps
        );
    }

    #[test]
    fn single_equation_system() {
        let mut hc = Hypercube::new(2, CostModel::cm2());
        let sys = DistTridiag::from_diagonals(grid(2), &[0.0], &[4.0], &[0.0], &[12.0]);
        assert_eq!(sys.solve_pcr(&mut hc).to_dense(), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "a[0] must be zero")]
    fn rejects_nonzero_corner() {
        let _ = DistTridiag::from_diagonals(
            grid(1),
            &[1.0, 1.0],
            &[2.0, 2.0],
            &[1.0, 0.0],
            &[1.0, 1.0],
        );
    }
}
