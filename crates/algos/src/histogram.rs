//! Histogram computation — data-independent vs data-dependent
//! all-to-all reduction.
//!
//! Reproduces the algorithmic comparison of Gerogiannis, Orphanoudakis &
//! Johnsson, *Histogram Computation on Distributed Memory Architectures*
//! (TR-682, abstracted in the source booklet): both algorithms perform an
//! all-to-all reduction of per-node bin counts through a butterfly, but
//! the **data-independent** (dense) variant ships all `B` bins at every
//! stage while the **data-dependent** (sparse) variant ships only the
//! non-zero bins. With few elements per processor the sparse variant
//! moves `O(sqrt(B))`-ish data per stage and wins; as occupancy grows it
//! degenerates to the dense cost — the crossover experiment X6 measures
//! exactly this.

use vmp_core::prelude::*;
use vmp_hypercube::collective::exchange;
use vmp_hypercube::machine::Hypercube;

/// Serial oracle.
#[must_use]
pub fn histogram_serial(values: &[usize], bins: usize) -> Vec<u64> {
    let mut h = vec![0u64; bins];
    for &v in values {
        assert!(v < bins, "value {v} out of range 0..{bins}");
        h[v] += 1;
    }
    h
}

/// Dense (data-independent) histogram: local count into a full `B`-bin
/// array, then a butterfly all-reduce shipping all `B` bins per stage.
/// Returns the machine-wide histogram (replicated; returned host-side).
#[must_use]
pub fn histogram_dense(hc: &mut Hypercube, v: &DistVector<usize>, bins: usize) -> Vec<u64> {
    let p = v.layout().grid().p();
    // Local counting.
    let mut locals: Vec<Vec<u64>> = Vec::with_capacity(p);
    let mut max_chunk = 0usize;
    for node in 0..p {
        let mut h = vec![0u64; bins];
        for &x in &v.chunks()[node] {
            assert!(x < bins, "value {x} out of range 0..{bins}");
            h[x] += 1;
        }
        max_chunk = max_chunk.max(v.chunks()[node].len());
        locals.push(h);
    }
    hc.charge_flops(max_chunk);

    // Butterfly: all B bins per stage.
    let dims: Vec<u32> = hc.cube().iter_dims().collect();
    vmp_hypercube::collective::allreduce(hc, &mut locals, &dims, |a, b| a + b);
    locals.swap_remove(0)
}

/// Sparse (data-dependent) histogram: local counts kept as sorted
/// `(bin, count)` pairs; each butterfly stage exchanges only the
/// **non-zero** bins and merges. Same result, traffic proportional to
/// occupancy instead of `B`.
#[must_use]
pub fn histogram_sparse(hc: &mut Hypercube, v: &DistVector<usize>, bins: usize) -> Vec<u64> {
    let p = v.layout().grid().p();
    // Local sparse counting (sorted by bin).
    let mut sparse: Vec<Vec<(u32, u64)>> = Vec::with_capacity(p);
    let mut max_chunk = 0usize;
    for node in 0..p {
        let chunk = &v.chunks()[node];
        max_chunk = max_chunk.max(chunk.len());
        let mut dense = vec![0u64; bins];
        for &x in chunk {
            assert!(x < bins, "value {x} out of range 0..{bins}");
            dense[x] += 1;
        }
        sparse.push(
            dense
                .into_iter()
                .enumerate()
                .filter(|&(_, c)| c > 0)
                .map(|(b, c)| (b as u32, c))
                .collect(),
        );
    }
    hc.charge_flops(max_chunk);

    // Butterfly with sparse merge: per stage, exchange the non-zero
    // lists (2 machine words per entry, charged as 2 elements) and merge.
    for d in hc.cube().iter_dims().collect::<Vec<_>>() {
        let partners = exchange(hc, &sparse, d);
        // The exchange charged 1 element per (bin, count) pair; charge
        // the second word of each pair explicitly.
        let extra = partners.iter().map(Vec::len).max().unwrap_or(0);
        hc.charge_raw_us(hc.cost().beta * extra as f64);
        let mut merge_work = 0usize;
        for node in 0..p {
            let merged = merge_sparse(&sparse[node], &partners[node]);
            merge_work = merge_work.max(merged.len());
            sparse[node] = merged;
        }
        hc.charge_flops(merge_work);
    }

    let mut out = vec![0u64; bins];
    for &(b, c) in &sparse[0] {
        out[b as usize] = c;
    }
    out
}

/// Merge two bin-sorted sparse histograms.
fn merge_sparse(a: &[(u32, u64)], b: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn dist(values: &[usize], dim: u32) -> (Hypercube, DistVector<usize>) {
        let grid = ProcGrid::square(Cube::new(dim));
        let layout = VectorLayout::linear(values.len(), grid, Dist::Block);
        (Hypercube::new(dim, CostModel::cm2()), DistVector::from_slice(layout, values))
    }

    fn values(n: usize, bins: usize, spread: usize) -> Vec<usize> {
        (0..n).map(|i| (i * 7919 + 13) % spread.min(bins)).collect()
    }

    #[test]
    fn both_algorithms_match_the_serial_oracle() {
        for (n, bins, spread, dim) in
            [(100usize, 32usize, 32usize, 3u32), (57, 64, 5, 4), (256, 16, 16, 0), (33, 128, 3, 5)]
        {
            let vals = values(n, bins, spread);
            let expect = histogram_serial(&vals, bins);
            let (mut hc1, v1) = dist(&vals, dim);
            assert_eq!(histogram_dense(&mut hc1, &v1, bins), expect, "dense n={n} bins={bins}");
            let (mut hc2, v2) = dist(&vals, dim);
            assert_eq!(histogram_sparse(&mut hc2, &v2, bins), expect, "sparse n={n} bins={bins}");
        }
    }

    #[test]
    fn sparse_wins_with_few_elements_and_many_bins() {
        // Few pixels per processor, large B: the data-dependent variant
        // ships far less. (TR-682's headline regime.)
        let bins = 4096;
        let vals = values(64, bins, 7); // 7 distinct values machine-wide
        let (mut hd, v1) = dist(&vals, 6);
        let _ = histogram_dense(&mut hd, &v1, bins);
        let (mut hs, v2) = dist(&vals, 6);
        let _ = histogram_sparse(&mut hs, &v2, bins);
        assert!(
            hs.elapsed_us() < hd.elapsed_us() / 4.0,
            "sparse {} vs dense {}",
            hs.elapsed_us(),
            hd.elapsed_us()
        );
    }

    #[test]
    fn dense_wins_when_bins_saturate() {
        // Many elements per processor, small B: every node's sparse list
        // is full anyway, and the dense variant has no per-entry tax.
        let bins = 64;
        let vals = values(64 * 256, bins, bins);
        let (mut hd, v1) = dist(&vals, 4);
        let _ = histogram_dense(&mut hd, &v1, bins);
        let (mut hs, v2) = dist(&vals, 4);
        let _ = histogram_sparse(&mut hs, &v2, bins);
        assert!(
            hd.elapsed_us() < hs.elapsed_us(),
            "dense {} vs sparse {}",
            hd.elapsed_us(),
            hs.elapsed_us()
        );
    }

    #[test]
    fn merge_sparse_merges() {
        let a = vec![(1u32, 2u64), (5, 1)];
        let b = vec![(0u32, 3u64), (5, 4), (9, 1)];
        assert_eq!(merge_sparse(&a, &b), vec![(0, 3), (1, 2), (5, 5), (9, 1)]);
        assert_eq!(merge_sparse(&[], &b), b);
        assert_eq!(merge_sparse(&a, &[]), a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_value_panics() {
        let (mut hc, v) = dist(&[3, 99], 1);
        let _ = histogram_dense(&mut hc, &v, 10);
    }
}
