//! Jacobi stencil relaxation — a fourth application domain.
//!
//! The technical-report corpus around the paper is full of grid PDE
//! solvers (ADI, Poisson, Navier–Stokes) on the same machine; the
//! primitive vocabulary plus NEWS shifts ([`vmp_core::shift`]) covers
//! their core kernel: Jacobi relaxation of the 2-D Poisson equation
//! `-laplace(u) = f` on the unit square with homogeneous Dirichlet
//! boundary,
//!
//! ```text
//! u'[i][j] = (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1] + h^2 f[i][j]) / 4
//! ```
//!
//! Each iteration is four shifts (boundary lines only, on the block
//! layout) and one five-operand elementwise pass. The parallel iteration
//! is bit-identical to the serial oracle (same association order).

use vmp_core::prelude::*;
use vmp_core::shift::{shift, Boundary};
use vmp_hypercube::machine::Hypercube;

use crate::serial::Dense;

/// One Jacobi sweep on the machine: returns the relaxed field.
/// `u` and `f` are `n x n` interior grids (boundary handled as `u = 0`
/// via `Fill(0.0)` shifts); `h2` is the squared mesh width.
#[must_use]
pub fn jacobi_step(
    hc: &mut Hypercube,
    u: &DistMatrix<f64>,
    f: &DistMatrix<f64>,
    h2: f64,
) -> DistMatrix<f64> {
    assert_eq!(u.shape(), f.shape(), "field and rhs shapes must match");
    assert_eq!(u.layout(), f.layout(), "field and rhs must share a layout");
    // Neighbour fields (u[i-1][j] arrives by shifting rows down, etc.).
    let up = shift(hc, u, Axis::Col, 1, Boundary::Fill(0.0)); // up[i][j] = u[i-1][j]
    let down = shift(hc, u, Axis::Col, -1, Boundary::Fill(0.0)); // u[i+1][j]
    let left = shift(hc, u, Axis::Row, 1, Boundary::Fill(0.0)); // u[i][j-1]
    let right = shift(hc, u, Axis::Row, -1, Boundary::Fill(0.0)); // u[i][j+1]

    // Fused five-operand elementwise combine, fixed association order so
    // the serial oracle can reproduce it bitwise.
    let s1 = up.zip(hc, &down, |a, b| a + b);
    let s2 = left.zip(hc, &right, |a, b| a + b);
    let s3 = s1.zip(hc, &s2, |a, b| a + b);
    s3.zip(hc, f, move |s, fv| (s + h2 * fv) / 4.0)
}

/// Run `iterations` Jacobi sweeps from `u = 0`.
#[must_use]
pub fn jacobi_poisson(
    hc: &mut Hypercube,
    f: &DistMatrix<f64>,
    h2: f64,
    iterations: usize,
) -> DistMatrix<f64> {
    let mut u = DistMatrix::constant(f.layout().clone(), 0.0f64);
    for _ in 0..iterations {
        u = jacobi_step(hc, &u, f, h2);
    }
    u
}

/// Serial oracle for one sweep, same association order.
#[must_use]
pub fn jacobi_step_serial(u: &Dense, f: &Dense, h2: f64) -> Dense {
    let n = u.rows();
    let at = |i: isize, j: isize| -> f64 {
        if i < 0 || j < 0 || i >= n as isize || j >= n as isize {
            0.0
        } else {
            u.get(i as usize, j as usize)
        }
    };
    Dense::from_fn(n, n, |i, j| {
        let (i, j) = (i as isize, j as isize);
        let s1 = at(i - 1, j) + at(i + 1, j);
        let s2 = at(i, j - 1) + at(i, j + 1);
        ((s1 + s2) + h2 * f.get(i as usize, j as usize)) / 4.0
    })
}

/// Serial oracle for the full relaxation.
#[must_use]
pub fn jacobi_poisson_serial(f: &Dense, h2: f64, iterations: usize) -> Dense {
    let n = f.rows();
    let mut u = Dense::zeros(n, n);
    for _ in 0..iterations {
        u = jacobi_step_serial(&u, f, h2);
    }
    u
}

/// Max-norm residual `|| -laplace(u)/h2 - f ||_inf` of a candidate field
/// (host-side diagnostic).
#[must_use]
pub fn poisson_residual(u: &Dense, f: &Dense, h2: f64) -> f64 {
    let n = u.rows();
    let at = |i: isize, j: isize| -> f64 {
        if i < 0 || j < 0 || i >= n as isize || j >= n as isize {
            0.0
        } else {
            u.get(i as usize, j as usize)
        }
    };
    let mut worst = 0.0f64;
    for i in 0..n as isize {
        for j in 0..n as isize {
            let lap = 4.0 * at(i, j) - at(i - 1, j) - at(i + 1, j) - at(i, j - 1) - at(i, j + 1);
            let r = (lap / h2 - f.get(i as usize, j as usize)).abs();
            worst = worst.max(r);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn setup(n: usize, dim: u32) -> (Hypercube, MatrixLayout) {
        let grid = ProcGrid::square(Cube::new(dim));
        (Hypercube::new(dim, CostModel::cm2()), MatrixLayout::block(MatShape::new(n, n), grid))
    }

    fn point_source(n: usize) -> Dense {
        Dense::from_fn(n, n, |i, j| if i == n / 2 && j == n / 2 { 1.0 } else { 0.0 })
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let n = 12;
        let (mut hc, layout) = setup(n, 4);
        let fd = point_source(n);
        let f = DistMatrix::from_fn(layout, |i, j| fd.get(i, j));
        let h2 = 1.0 / ((n + 1) as f64 * (n + 1) as f64);
        let u_par = jacobi_poisson(&mut hc, &f, h2, 25);
        let u_ser = jacobi_poisson_serial(&fd, h2, 25);
        let dense = u_par.to_dense();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(dense[i][j], u_ser.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn relaxation_reduces_the_residual() {
        let n = 16;
        let fd = point_source(n);
        let h2 = 1.0;
        let early = jacobi_poisson_serial(&fd, h2, 5);
        let late = jacobi_poisson_serial(&fd, h2, 200);
        let r_early = poisson_residual(&early, &fd, h2);
        let r_late = poisson_residual(&late, &fd, h2);
        assert!(r_late < r_early / 5.0, "residual {r_early} -> {r_late}");
    }

    #[test]
    fn solution_is_symmetric_for_centered_source() {
        let n = 9; // odd: exact centre
        let (mut hc, layout) = setup(n, 2);
        let fd = point_source(n);
        let f = DistMatrix::from_fn(layout, |i, j| fd.get(i, j));
        let u = jacobi_poisson(&mut hc, &f, 1.0, 60);
        let d = u.to_dense();
        for i in 0..n {
            for j in 0..n {
                assert!((d[i][j] - d[j][i]).abs() < 1e-12, "transpose symmetry");
                assert!((d[i][j] - d[n - 1 - i][j]).abs() < 1e-12, "mirror symmetry");
            }
        }
        assert!(d[n / 2][n / 2] > 0.0, "positive response at the source");
    }

    #[test]
    fn machine_size_does_not_change_the_floats() {
        let n = 10;
        let fd = point_source(n);
        let mut fields = Vec::new();
        for dim in [0u32, 2, 4] {
            let (mut hc, layout) = setup(n, dim);
            let f = DistMatrix::from_fn(layout, |i, j| fd.get(i, j));
            fields.push(jacobi_poisson(&mut hc, &f, 0.5, 15).to_dense());
        }
        assert_eq!(fields[0], fields[1]);
        assert_eq!(fields[0], fields[2]);
    }

    #[test]
    fn block_layout_iteration_is_cheaper_than_cyclic() {
        // The stencil counterpart of T4's layout ablation, in reverse:
        // shifts love block layouts.
        let n = 32;
        let fd = point_source(n);
        let run = |cyclic: bool| {
            let grid = ProcGrid::square(Cube::new(6));
            let layout = if cyclic {
                MatrixLayout::cyclic(MatShape::new(n, n), grid)
            } else {
                MatrixLayout::block(MatShape::new(n, n), grid)
            };
            let f = DistMatrix::from_fn(layout, |i, j| fd.get(i, j));
            let mut hc = Hypercube::new(6, CostModel::cm2());
            let _ = jacobi_poisson(&mut hc, &f, 1.0, 3);
            hc.elapsed_us()
        };
        let block = run(false);
        let cyclic = run(true);
        assert!(block < cyclic, "block {block} vs cyclic {cyclic}");
    }
}
