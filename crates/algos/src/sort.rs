//! Bitonic sort on the hypercube.
//!
//! Johnsson's *Combining Parallel and Sequential Sorting on a Boolean
//! n-cube* (abstracted in the source booklet) builds its sorters from
//! Batcher's bitonic network, whose compare-exchange strides are powers
//! of two — so, exactly as with the FFT, stage strides at or above the
//! chunk size pair **cube neighbours** (one pairwise chunk exchange per
//! stage) and smaller strides are purely local. `q(q+1)/2` stages sort
//! `n = 2^q` elements in `O(lg^2 n)` exchange steps.
//!
//! Elements are compared with a caller-supplied key so the sorter is
//! usable for any `Scalar` payload.

use vmp_core::elem::Scalar;
use vmp_core::prelude::*;
use vmp_hypercube::collective::exchange;
use vmp_hypercube::machine::Hypercube;

/// Sort a block-distributed vector ascending by `key` (`n` a power of
/// two, `n >= p`). Stable ordering is **not** guaranteed (bitonic
/// networks are not stable).
///
/// # Panics
/// Panics unless the vector is linear, block-chunked, with power-of-two
/// length at least `p`.
#[must_use]
pub fn bitonic_sort<T: Scalar, K: PartialOrd>(
    hc: &mut Hypercube,
    v: &DistVector<T>,
    key: impl Fn(&T) -> K + Sync,
) -> DistVector<T> {
    let layout = v.layout().clone();
    assert!(
        matches!(layout.embedding(), VecEmbedding::Linear),
        "bitonic sort expects the linear embedding"
    );
    assert_eq!(layout.dist().kind(), Dist::Block, "bitonic sort expects block chunking");
    let n = layout.n();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let p = layout.grid().p();
    assert!(n >= p, "need at least one element per node");
    let m = n / p;
    let q = n.trailing_zeros() as usize;
    let local_bits = m.trailing_zeros() as usize;

    let mut chunks: Vec<Vec<T>> = v.chunks().to_nested();

    for k in 1..=q {
        for j in (0..k).rev() {
            let stride = 1usize << j;
            if stride >= m {
                // Node-level compare-exchange: one pairwise chunk
                // exchange along the stride's cube bit.
                let cube_dim = (j - local_bits) as u32;
                let node_bit = stride >> local_bits;
                let mut partners = exchange(hc, &chunks, cube_dim);
                for node in 0..p {
                    let partner = std::mem::take(&mut partners[node]);
                    let lower = node & node_bit == 0;
                    let chunk = &mut chunks[node];
                    for (local, x) in chunk.iter_mut().enumerate() {
                        let g = node * m + local;
                        let ascending = (g >> k) & 1 == 0;
                        let o = partner[local];
                        // Both sides must decide the swap identically,
                        // including on ties, or elements duplicate:
                        // compare (a, b) in POSITION order (a = lower
                        // side's element) on both sides.
                        let a_gt_b = if lower { key(x) > key(&o) } else { key(&o) > key(x) };
                        let a_lt_b = if lower { key(x) < key(&o) } else { key(&o) < key(x) };
                        let swap = if ascending { a_gt_b } else { a_lt_b };
                        if swap {
                            *x = o;
                        }
                    }
                }
                hc.charge_flops(m);
            } else {
                // Local compare-exchange.
                for (node, chunk) in chunks.iter_mut().enumerate() {
                    let base = node * m;
                    for ia in 0..m {
                        let g = base + ia;
                        if g & stride != 0 {
                            continue;
                        }
                        let ib = ia + stride;
                        let ascending = (g >> k) & 1 == 0;
                        let out_of_order = if ascending {
                            key(&chunk[ia]) > key(&chunk[ib])
                        } else {
                            key(&chunk[ia]) < key(&chunk[ib])
                        };
                        if out_of_order {
                            chunk.swap(ia, ib);
                        }
                    }
                }
                hc.charge_flops(m / 2);
            }
        }
    }

    DistVector::from_chunks(layout, chunks)
}

/// Convenience: ascending sort of a numeric vector by value.
#[must_use]
pub fn sort_ascending<T: Scalar + PartialOrd>(
    hc: &mut Hypercube,
    v: &DistVector<T>,
) -> DistVector<T> {
    bitonic_sort(hc, v, |x| *x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn dist<T: Scalar>(x: &[T], dim: u32) -> (Hypercube, DistVector<T>) {
        let grid = ProcGrid::square(Cube::new(dim));
        let layout = VectorLayout::linear(x.len(), grid, Dist::Block);
        (Hypercube::new(dim, CostModel::cm2()), DistVector::from_slice(layout, x))
    }

    fn scrambled(n: usize) -> Vec<i64> {
        (0..n).map(|i| ((i * 7919 + 13) % (2 * n)) as i64 - n as i64).collect()
    }

    #[test]
    fn sorts_random_data() {
        for (n, dim) in [(8usize, 0u32), (32, 2), (128, 4), (256, 5)] {
            let x = scrambled(n);
            let mut expect = x.clone();
            expect.sort_unstable();
            let (mut hc, v) = dist(&x, dim);
            let sorted = sort_ascending(&mut hc, &v).to_dense();
            assert_eq!(sorted, expect, "n = {n}, dim = {dim}");
        }
    }

    #[test]
    fn sorts_already_sorted_and_reversed() {
        let n = 64;
        let asc: Vec<i64> = (0..n as i64).collect();
        let desc: Vec<i64> = (0..n as i64).rev().collect();
        let (mut hc, v) = dist(&asc, 3);
        assert_eq!(sort_ascending(&mut hc, &v).to_dense(), asc);
        let (mut hc2, w) = dist(&desc, 3);
        assert_eq!(sort_ascending(&mut hc2, &w).to_dense(), asc);
    }

    #[test]
    fn handles_duplicates() {
        let n = 64;
        let x: Vec<i64> = (0..n).map(|i| (i % 5) as i64).collect();
        let mut expect = x.clone();
        expect.sort_unstable();
        let (mut hc, v) = dist(&x, 4);
        assert_eq!(sort_ascending(&mut hc, &v).to_dense(), expect);
    }

    #[test]
    fn sorts_by_custom_key() {
        // Sort (id, weight) pairs by weight descending via negated key.
        let n = 32;
        let x: Vec<(i64, i64)> = (0..n).map(|i| (i as i64, ((i * 11) % 17) as i64)).collect();
        let (mut hc, v) = dist(&x, 2);
        let sorted = bitonic_sort(&mut hc, &v, |&(_, w)| -w).to_dense();
        for pair in sorted.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "descending by weight");
        }
        // Same multiset of ids.
        let mut ids: Vec<i64> = sorted.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..n as i64).collect::<Vec<_>>());
    }

    #[test]
    fn result_is_identical_across_machine_sizes() {
        let x = scrambled(128);
        let mut results = Vec::new();
        for dim in [0u32, 2, 4, 6] {
            let (mut hc, v) = dist(&x, dim);
            results.push(sort_ascending(&mut hc, &v).to_dense());
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn communication_scales_as_lg_squared() {
        // All node-level stages are neighbour exchanges: for n = 256 on
        // p = 16, strides >= m occur in a bounded number of stages.
        let x = scrambled(256);
        let (mut hc, v) = dist(&x, 4);
        let _ = sort_ascending(&mut hc, &v);
        let q = 8u64; // lg 256
        assert!(
            hc.counters().message_steps <= q * (q + 1) / 2,
            "{} exchange steps",
            hc.counters().message_steps
        );
    }

    #[test]
    fn floats_sort_too() {
        let n = 64;
        let x: Vec<f64> = (0..n).map(|i| (((i * 31) % 47) as f64) - 23.5).collect();
        let mut expect = x.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let (mut hc, v) = dist(&x, 3);
        assert_eq!(sort_ascending(&mut hc, &v).to_dense(), expect);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let x = scrambled(12);
        let (mut hc, v) = dist(&x, 1);
        let _ = sort_ascending(&mut hc, &v);
    }
}
