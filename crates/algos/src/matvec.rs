//! Vector-matrix multiply — the paper's first application.
//!
//! `y = x A` in the primitive vocabulary is exactly two operations:
//! combine each matrix element with the aligned vector element (local),
//! then `reduce` along the rows:
//!
//! ```text
//! y  =  reduce(+, Row,  A .* distribute(x))      -- conceptually
//!    =  reduce(+, Row,  zip_axis(A, Col, x, *))  -- fused, no temporary
//! ```
//!
//! Both the distribute-then-multiply spelling and the fused spelling are
//! provided; they are semantically identical, and the pair shows what the
//! elementwise combinators buy (one less `m`-element temporary).

use vmp_core::elem::{Numeric, Sum};
use vmp_core::prelude::*;
use vmp_core::{primitives, remap};
use vmp_hypercube::machine::Hypercube;

/// `y = x^T A`: `x` is a column-aligned vector of length `rows`, the
/// result is a row-aligned replicated vector of length `cols`.
///
/// A concentrated `x` is replicated first (one broadcast — the embedding
/// change the primitives "indicate").
pub fn vecmat<T: Numeric>(
    hc: &mut Hypercube,
    x: &DistVector<T>,
    a: &DistMatrix<T>,
) -> DistVector<T> {
    let x = align(hc, x, a, Axis::Col);
    let prod = a.zip_axis(hc, Axis::Col, &x, |_, _, aij, xi| aij * xi);
    primitives::reduce(hc, &prod, Axis::Row, Sum)
}

/// `y = A x`: `x` is a row-aligned vector of length `cols`, the result a
/// column-aligned replicated vector of length `rows`.
pub fn matvec<T: Numeric>(
    hc: &mut Hypercube,
    a: &DistMatrix<T>,
    x: &DistVector<T>,
) -> DistVector<T> {
    let x = align(hc, x, a, Axis::Row);
    let prod = a.zip_axis(hc, Axis::Row, &x, |_, _, aij, xj| aij * xj);
    primitives::reduce(hc, &prod, Axis::Col, Sum)
}

/// The unfused spelling of [`vecmat`] through `distribute`: materialises
/// the `rows x cols` replication of `x`, multiplies elementwise, reduces.
/// Same result; one extra `m`-element temporary and elementwise pass —
/// used by the ablation bench.
pub fn vecmat_via_distribute<T: Numeric>(
    hc: &mut Hypercube,
    x: &DistVector<T>,
    a: &DistMatrix<T>,
) -> DistVector<T> {
    let x = align(hc, x, a, Axis::Col);
    let xm = primitives::distribute(hc, &x, a.shape().cols, a.layout().cols().kind());
    // xm is cols-stacked: xm[i][j] = x[i]; transposed orientation w.r.t. a.
    let prod = a.zip(hc, &xm, |aij, xi| aij * xi);
    primitives::reduce(hc, &prod, Axis::Row, Sum)
}

/// Bring `x` into the replicated `axis`-aligned embedding matching `a`.
fn align<T: Numeric>(
    hc: &mut Hypercube,
    x: &DistVector<T>,
    a: &DistMatrix<T>,
    axis: Axis,
) -> DistVector<T> {
    let want = VectorLayout::aligned(
        a.shape().vector_len(axis),
        a.layout().grid().clone(),
        axis,
        Placement::Replicated,
        a.layout().vector_dist(axis).kind(),
    );
    assert_eq!(x.n(), want.n(), "vector length must match the matrix {axis:?} extent");
    match x.layout().embedding() {
        VecEmbedding::Aligned { axis: xa, placement }
            if *xa == axis && x.layout().dist() == want.dist() =>
        {
            match placement {
                Placement::Replicated => x.clone(),
                Placement::Concentrated(_) => remap::replicate(hc, x),
            }
        }
        _ => remap::remap_vector(hc, x, want),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::Dense;
    use crate::workloads;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn dist_matrix(d: &Dense, dim: u32) -> (Hypercube, DistMatrix<f64>) {
        let grid = ProcGrid::square(Cube::new(dim));
        let layout = MatrixLayout::cyclic(MatShape::new(d.rows(), d.cols()), grid);
        let m = DistMatrix::from_fn(layout, |i, j| d.get(i, j));
        (Hypercube::new(dim, CostModel::cm2()), m)
    }

    fn close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn vecmat_matches_serial() {
        for (rows, cols, dim) in [(8usize, 8usize, 4u32), (13, 7, 4), (5, 20, 3), (32, 32, 6)] {
            let d = workloads::random_matrix(rows, cols, 1);
            let xh = workloads::random_vector(rows, 2);
            let (mut hc, a) = dist_matrix(&d, dim);
            let xl = VectorLayout::aligned(
                rows,
                a.layout().grid().clone(),
                Axis::Col,
                Placement::Replicated,
                Dist::Cyclic,
            );
            let x = DistVector::from_slice(xl, &xh);
            let y = vecmat(&mut hc, &x, &a);
            y.assert_consistent();
            close(&y.to_dense(), &d.vecmat(&xh), 1e-10);
        }
    }

    #[test]
    fn matvec_matches_serial() {
        let d = workloads::random_matrix(9, 14, 3);
        let xh = workloads::random_vector(14, 4);
        let (mut hc, a) = dist_matrix(&d, 4);
        let xl = VectorLayout::aligned(
            14,
            a.layout().grid().clone(),
            Axis::Row,
            Placement::Replicated,
            Dist::Cyclic,
        );
        let x = DistVector::from_slice(xl, &xh);
        let y = matvec(&mut hc, &a, &x);
        close(&y.to_dense(), &d.matvec(&xh), 1e-10);
    }

    #[test]
    fn vecmat_accepts_concentrated_and_linear_inputs() {
        let d = workloads::random_matrix(12, 6, 5);
        let xh = workloads::random_vector(12, 6);
        let expect = d.vecmat(&xh);
        // Concentrated input.
        let (mut hc, a) = dist_matrix(&d, 4);
        let xl = VectorLayout::aligned(
            12,
            a.layout().grid().clone(),
            Axis::Col,
            Placement::Concentrated(1),
            Dist::Cyclic,
        );
        let x = DistVector::from_slice(xl, &xh);
        close(&vecmat(&mut hc, &x, &a).to_dense(), &expect, 1e-10);
        // Linear input: remapped automatically (embedding change).
        let (mut hc2, a2) = dist_matrix(&d, 4);
        let ll = VectorLayout::linear(12, a2.layout().grid().clone(), Dist::Block);
        let xlin = DistVector::from_slice(ll, &xh);
        close(&vecmat(&mut hc2, &xlin, &a2).to_dense(), &expect, 1e-10);
    }

    #[test]
    fn fused_and_distribute_spellings_agree() {
        let d = workloads::random_matrix(10, 10, 7);
        let xh = workloads::random_vector(10, 8);
        let (mut hc1, a1) = dist_matrix(&d, 4);
        let xl1 = VectorLayout::aligned(
            10,
            a1.layout().grid().clone(),
            Axis::Col,
            Placement::Replicated,
            Dist::Cyclic,
        );
        let x1 = DistVector::from_slice(xl1, &xh);
        let fused = vecmat(&mut hc1, &x1, &a1);
        let (mut hc2, a2) = dist_matrix(&d, 4);
        let xl2 = VectorLayout::aligned(
            10,
            a2.layout().grid().clone(),
            Axis::Col,
            Placement::Replicated,
            Dist::Cyclic,
        );
        let x2 = DistVector::from_slice(xl2, &xh);
        let unfused = vecmat_via_distribute(&mut hc2, &x2, &a2);
        assert_eq!(fused.to_dense(), unfused.to_dense(), "same floats, different spelling");
        assert!(hc2.elapsed_us() > hc1.elapsed_us(), "fusion saves the temporary pass");
    }

    #[test]
    fn vecmat_on_single_processor() {
        let d = workloads::random_matrix(6, 4, 9);
        let xh = workloads::random_vector(6, 10);
        let (mut hc, a) = dist_matrix(&d, 0);
        let xl = VectorLayout::aligned(
            6,
            a.layout().grid().clone(),
            Axis::Col,
            Placement::Replicated,
            Dist::Cyclic,
        );
        let x = DistVector::from_slice(xl, &xh);
        close(&vecmat(&mut hc, &x, &a).to_dense(), &d.vecmat(&xh), 1e-12);
        assert_eq!(hc.counters().message_steps, 0);
    }
}
