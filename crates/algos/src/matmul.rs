//! Distributed matrix-matrix multiply — expressed in the four
//! primitives.
//!
//! `C = A B` decomposes into `k` rank-1 updates
//! `C += A[:, t] * B[t, :]`, each of which is exactly one
//! `extract_replicated` column, one `extract_replicated` row, and one
//! local `rank1_update` — the same three operations as a Gaussian
//! elimination step without the pivoting. This is the outer-product
//! (SUMMA-style) schedule of Johnsson & Ho's Boolean-cube matrix
//! multiplication expressed in shared-memory-style primitives, and it
//! shows the primitives compose into level-3 computations, not just the
//! paper's three applications.
//!
//! A panel-blocked variant trades `k/b`-fold fewer broadcast start-ups
//! for `b`-row panels of bandwidth, the classical start-up/bandwidth
//! trade the contemporaneous reports analyse.

use vmp_core::elem::Numeric;
use vmp_core::prelude::*;
use vmp_core::primitives;
use vmp_hypercube::machine::Hypercube;

/// `C = A B` on a shared grid: `A` is `m x k`, `B` is `k x n`, the
/// result is `m x n` with `A`'s row distribution and `B`'s column
/// distribution.
///
/// # Panics
/// Panics if the inner dimensions differ, or the operands do not share a
/// grid.
pub fn matmul<T: Numeric>(
    hc: &mut Hypercube,
    a: &DistMatrix<T>,
    b: &DistMatrix<T>,
) -> DistMatrix<T> {
    let (m, k) = (a.shape().rows, a.shape().cols);
    let (k2, n) = (b.shape().rows, b.shape().cols);
    assert_eq!(k, k2, "inner dimensions must agree: {k} vs {k2}");
    assert_eq!(
        a.layout().grid(),
        b.layout().grid(),
        "operands must live on the same processor grid"
    );
    let grid = a.layout().grid().clone();
    let c_layout = MatrixLayout::new(
        MatShape::new(m, n),
        grid,
        a.layout().rows().kind(),
        b.layout().cols().kind(),
    );
    let mut c = DistMatrix::constant(c_layout, T::ZERO);

    for t in 0..k {
        let col_t = primitives::extract_replicated(hc, a, Axis::Col, t);
        let row_t = primitives::extract_replicated(hc, b, Axis::Row, t);
        // col_t is chunked by A's row distribution == C's row
        // distribution; row_t by B's column distribution == C's column
        // distribution: the rank-1 update is purely local.
        c.rank1_update(hc, &col_t, &row_t, |_, _, acc, ci, rj| acc + ci * rj);
    }
    c
}

/// Panel-blocked `C = A B`: broadcasts `panel`-column slabs of `A` and
/// `panel`-row slabs of `B` per step instead of single lines. Fewer
/// start-ups (`k/panel` tree broadcasts), same arithmetic; identical
/// floats to [`matmul`] because each `c_ij` accumulates in the same `t`
/// order.
pub fn matmul_panelled<T: Numeric>(
    hc: &mut Hypercube,
    a: &DistMatrix<T>,
    b: &DistMatrix<T>,
    panel: usize,
) -> DistMatrix<T> {
    assert!(panel > 0, "panel width must be positive");
    let (m, k) = (a.shape().rows, a.shape().cols);
    let (k2, n) = (b.shape().rows, b.shape().cols);
    assert_eq!(k, k2, "inner dimensions must agree");
    assert_eq!(a.layout().grid(), b.layout().grid(), "operands must share a grid");
    let grid = a.layout().grid().clone();
    let c_layout = MatrixLayout::new(
        MatShape::new(m, n),
        grid,
        a.layout().rows().kind(),
        b.layout().cols().kind(),
    );
    let mut c = DistMatrix::constant(c_layout, T::ZERO);

    let mut t0 = 0usize;
    while t0 < k {
        let width = panel.min(k - t0);
        let a_panel = primitives::extract_col_panel_replicated(hc, a, t0, width);
        let b_panel = primitives::extract_row_panel_replicated(hc, b, t0, width);
        // Local GEMM over the panel: every node multiplies its
        // (local_rows x width) slab by the (width x local_cols) slab.
        primitives::panel_gemm(hc, &mut c, &a_panel, &b_panel);
        t0 += width;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::Dense;
    use crate::workloads;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn dist(d: &Dense, grid: ProcGrid) -> DistMatrix<f64> {
        DistMatrix::from_fn(
            MatrixLayout::cyclic(MatShape::new(d.rows(), d.cols()), grid),
            |i, j| d.get(i, j),
        )
    }

    fn close(a: &DistMatrix<f64>, b: &Dense, tol: f64) {
        let da = a.to_dense();
        for i in 0..b.rows() {
            for j in 0..b.cols() {
                assert!(
                    (da[i][j] - b.get(i, j)).abs() < tol,
                    "({i},{j}): {} vs {}",
                    da[i][j],
                    b.get(i, j)
                );
            }
        }
    }

    #[test]
    fn matmul_matches_serial() {
        for (m, k, n, dim) in
            [(6usize, 8usize, 10usize, 4u32), (16, 16, 16, 4), (5, 3, 7, 2), (12, 9, 4, 0)]
        {
            let da = workloads::random_matrix(m, k, 1);
            let db = workloads::random_matrix(k, n, 2);
            let grid = ProcGrid::square(Cube::new(dim));
            let a = dist(&da, grid.clone());
            let b = dist(&db, grid);
            let mut hc = Hypercube::new(dim, CostModel::cm2());
            let c = matmul(&mut hc, &a, &b);
            c.assert_consistent();
            close(&c, &da.matmul(&db), 1e-10);
        }
    }

    #[test]
    fn panelled_matches_rank1_bitwise() {
        let (m, k, n) = (12usize, 10usize, 8usize);
        let da = workloads::random_matrix(m, k, 3);
        let db = workloads::random_matrix(k, n, 4);
        let grid = ProcGrid::square(Cube::new(4));
        let a = dist(&da, grid.clone());
        let b = dist(&db, grid);
        let mut h1 = Hypercube::new(4, CostModel::cm2());
        let c1 = matmul(&mut h1, &a, &b);
        for panel in [1usize, 2, 3, 10, 64] {
            let mut h2 = Hypercube::new(4, CostModel::cm2());
            let c2 = matmul_panelled(&mut h2, &a, &b, panel);
            assert_eq!(c1.to_dense(), c2.to_dense(), "panel {panel}: identical accumulation order");
        }
    }

    #[test]
    fn panelling_saves_startups() {
        let nsize = 32usize;
        let da = workloads::random_matrix(nsize, nsize, 5);
        let db = workloads::random_matrix(nsize, nsize, 6);
        let grid = ProcGrid::square(Cube::new(6));
        let a = dist(&da, grid.clone());
        let b = dist(&db, grid);
        let mut h1 = Hypercube::new(6, CostModel::cm2());
        let _ = matmul(&mut h1, &a, &b);
        let mut h2 = Hypercube::new(6, CostModel::cm2());
        let _ = matmul_panelled(&mut h2, &a, &b, 8);
        assert!(
            h2.elapsed_us() < h1.elapsed_us(),
            "panelled {} should beat rank-1 {}",
            h2.elapsed_us(),
            h1.elapsed_us()
        );
        assert!(h2.counters().message_steps < h1.counters().message_steps);
    }

    #[test]
    fn identity_is_neutral() {
        let n = 9usize;
        let d = workloads::random_matrix(n, n, 7);
        let grid = ProcGrid::square(Cube::new(4));
        let a = dist(&d, grid.clone());
        let i_dense = Dense::identity(n);
        let id = dist(&i_dense, grid);
        let mut hc = Hypercube::new(4, CostModel::cm2());
        let left = matmul(&mut hc, &id, &a);
        close(&left, &d, 1e-12);
        let right = matmul(&mut hc, &a, &id);
        close(&right, &d, 1e-12);
    }

    #[test]
    fn rectangular_chains_associate() {
        // (A B) C == A (B C) numerically (tolerance) on small sizes.
        let da = workloads::random_matrix(4, 6, 8);
        let db = workloads::random_matrix(6, 5, 9);
        let dc = workloads::random_matrix(5, 3, 10);
        let grid = ProcGrid::square(Cube::new(2));
        let a = dist(&da, grid.clone());
        let b = dist(&db, grid.clone());
        let c = dist(&dc, grid);
        let mut hc = Hypercube::new(2, CostModel::cm2());
        let ab = matmul(&mut hc, &a, &b);
        let ab_c = matmul(&mut hc, &ab, &c);
        let bc = matmul(&mut hc, &b, &c);
        let a_bc = matmul(&mut hc, &a, &bc);
        let x = ab_c.to_dense();
        let y = a_bc.to_dense();
        for i in 0..4 {
            for j in 0..3 {
                assert!((x[i][j] - y[i][j]).abs() < 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let grid = ProcGrid::square(Cube::new(2));
        let a = dist(&workloads::random_matrix(3, 4, 1), grid.clone());
        let b = dist(&workloads::random_matrix(5, 3, 2), grid);
        let mut hc = Hypercube::new(2, CostModel::cm2());
        let _ = matmul(&mut hc, &a, &b);
    }
}
