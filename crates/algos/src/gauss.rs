//! Parallel Gaussian elimination — the paper's second application.
//!
//! Forward elimination with partial pivoting on an augmented matrix
//! `[A | b]`, written entirely in the primitive vocabulary. Each
//! elimination step `k` is:
//!
//! 1. `extract(Col, k)` + an arg-max-abs reduction over rows `k..n` —
//!    the pivot search;
//! 2. a row swap when needed — two `extract`s and two `insert`s;
//! 3. `extract_replicated(Row, k)` and `extract_replicated(Col, k)` —
//!    the pivot row and multiplier column fan-out (the step the naive
//!    element-at-a-time router made an order of magnitude slower);
//! 4. a local rank-1 update of the trailing submatrix.
//!
//! With a **cyclic** layout the active submatrix stays spread over all
//! processors as it shrinks, keeping every step's local work at
//! `O(ceil(n/p_r) * ceil(n/p_c))` — this is why the default layout for
//! elimination is cyclic (bench T4 includes the block-layout ablation).

use vmp_core::elem::{ArgMaxAbs, Loc, ReduceOp, Sum};
use vmp_core::prelude::*;
use vmp_core::primitives;
use vmp_hypercube::machine::Hypercube;

use crate::serial::Dense;

/// Numerical tolerance for singularity detection.
pub const GE_EPS: f64 = 1e-12;

/// Gaussian elimination failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeError {
    /// No acceptable pivot at some elimination step.
    Singular,
}

/// Statistics of an elimination run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeStats {
    /// Number of row interchanges performed.
    pub row_swaps: usize,
}

/// Componentwise sum on `(f64, f64, f64)` — folds the three back-
/// substitution quantities (dot product, rhs, diagonal) in one butterfly.
#[derive(Debug, Clone, Copy, Default)]
struct Sum3;

impl ReduceOp<(f64, f64, f64)> for Sum3 {
    fn identity(&self) -> (f64, f64, f64) {
        (0.0, 0.0, 0.0)
    }
    fn combine(&self, a: (f64, f64, f64), b: (f64, f64, f64)) -> (f64, f64, f64) {
        (a.0 + b.0, a.1 + b.1, a.2 + b.2)
    }
}

/// Build the distributed augmented matrix `[A | b]` (`n x (n+1)`) from
/// host data, cyclically laid out on `grid`.
#[must_use]
pub fn build_augmented(a: &Dense, b: &[f64], grid: ProcGrid) -> DistMatrix<f64> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "square system expected");
    assert_eq!(b.len(), n, "rhs length");
    let layout = MatrixLayout::cyclic(MatShape::new(n, n + 1), grid);
    DistMatrix::from_fn(layout, |i, j| if j < n { a.get(i, j) } else { b[i] })
}

/// Forward elimination with partial pivoting, in place. On success the
/// first `n` columns are upper triangular (below-diagonal entries are
/// exact zeros from the rank-1 updates).
///
/// # Errors
/// [`GeError::Singular`] if a pivot column is numerically zero.
pub fn forward_eliminate(
    hc: &mut Hypercube,
    aug: &mut DistMatrix<f64>,
) -> Result<GeStats, GeError> {
    let mut stats = GeStats::default();
    forward_eliminate_range(hc, aug, 0, aug.shape().rows, &mut stats)?;
    Ok(stats)
}

/// Forward elimination restricted to columns `from..to` — the resumable
/// core of [`forward_eliminate`]. Column `k`'s step depends only on the
/// matrix contents, so eliminating `0..n` in one call or in several
/// ranges (as [`crate::checkpoint`] does across a restart) produces
/// bit-identical results.
///
/// # Errors
/// [`GeError::Singular`] if a pivot column is numerically zero.
pub fn forward_eliminate_range(
    hc: &mut Hypercube,
    aug: &mut DistMatrix<f64>,
    from: usize,
    to: usize,
    stats: &mut GeStats,
) -> Result<(), GeError> {
    let n = aug.shape().rows;
    let width = aug.shape().cols;
    assert!(width > n, "augmented matrix expected (at least one rhs column)");
    assert!(from <= to && to <= n, "column range {from}..{to} out of 0..{n}");
    for k in from..to {
        eliminate_column(hc, aug, k, stats)?;
    }
    Ok(())
}

/// One elimination step: pivot search, row interchange, fan-out, rank-1
/// trailing update for column `k`.
fn eliminate_column(
    hc: &mut Hypercube,
    aug: &mut DistMatrix<f64>,
    k: usize,
    stats: &mut GeStats,
) -> Result<(), GeError> {
    let n = aug.shape().rows;
    let width = aug.shape().cols;

    // Pivot search: arg-max |a_ik| over i >= k.
    let col = primitives::extract(hc, aug, Axis::Col, k);
    let piv = col.reduce_lifted(hc, ArgMaxAbs, |i, v| {
        if i >= k {
            Loc::new(v, i)
        } else {
            Loc::new(0.0, usize::MAX)
        }
    });
    if piv.index == usize::MAX || piv.value.abs() < GE_EPS {
        return Err(GeError::Singular);
    }

    // Row interchange via extract/insert.
    if piv.index != k {
        let rk = primitives::extract(hc, aug, Axis::Row, k);
        let rp = primitives::extract(hc, aug, Axis::Row, piv.index);
        primitives::insert(hc, aug, Axis::Row, k, &rp);
        primitives::insert(hc, aug, Axis::Row, piv.index, &rk);
        stats.row_swaps += 1;
    }

    // Fan out the pivot row and the multiplier column.
    let row_k = primitives::extract_replicated(hc, aug, Axis::Row, k);
    let col_k = primitives::extract_replicated(hc, aug, Axis::Col, k);
    let akk = piv.value;

    // Trailing update on the active submatrix only — with a cyclic
    // layout the charged critical path shrinks as elimination
    // proceeds. Column k is set to exact zero (eliminated, not left
    // to roundoff).
    aug.rank1_update_ranged(hc, &col_k, &row_k, k + 1..n, k + 1..width, move |_, _, a, c, r| {
        a - (c / akk) * r
    });
    aug.rank1_update_ranged(hc, &col_k, &row_k, k + 1..n, k..k + 1, |_, _, _, _, _| 0.0);
    Ok(())
}

/// Back substitution on a forward-eliminated augmented matrix, using the
/// right-hand side stored in `rhs_col`. The solution is maintained as a
/// replicated row-aligned vector and filled from the bottom up; each
/// step needs one row extraction and one fused three-way reduction.
#[must_use]
pub fn back_substitute_col(hc: &mut Hypercube, aug: &DistMatrix<f64>, rhs_col: usize) -> Vec<f64> {
    let n = aug.shape().rows;
    let width = aug.shape().cols;
    assert!(rhs_col >= n && rhs_col < width, "rhs column out of range");
    let layout = VectorLayout::aligned(
        width,
        aug.layout().grid().clone(),
        Axis::Row,
        Placement::Replicated,
        aug.layout().cols().kind(),
    );
    // x lives in slots 0..n; slots >= n (the rhs columns) stay 0.
    let mut x = DistVector::constant(layout, 0.0f64);

    for k in (0..n).rev() {
        let row = primitives::extract_replicated(hc, aug, Axis::Row, k);
        let triple = row.zip(hc, &x, move |j, r, xj| {
            (
                if j > k && j < n { r * xj } else { 0.0 }, // dot with known part
                if j == rhs_col { r } else { 0.0 },        // rhs_k
                if j == k { r } else { 0.0 },              // a_kk
            )
        });
        let (dot, rhs, akk) = triple.reduce_all(hc, Sum3);
        let xk = (rhs - dot) / akk;
        x = x.map(hc, move |j, v| if j == k { xk } else { v });
    }
    x.to_dense()[..n].to_vec()
}

/// Back substitution for the single-rhs augmented form `[A | b]`.
#[must_use]
pub fn back_substitute(hc: &mut Hypercube, aug: &DistMatrix<f64>) -> Vec<f64> {
    back_substitute_col(hc, aug, aug.shape().rows)
}

/// Solve `A X = B` for `k` right-hand sides at once: one forward
/// elimination over the `n x (n+k)` augmented matrix, then one back
/// substitution per column — the multiple-rhs amortisation the banded
/// solver reports in the surrounding corpus rely on.
///
/// # Errors
/// [`GeError::Singular`] for singular systems.
pub fn ge_solve_multi(
    hc: &mut Hypercube,
    a: &Dense,
    bs: &[Vec<f64>],
    grid: ProcGrid,
) -> Result<Vec<Vec<f64>>, GeError> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "square system expected");
    let k = bs.len();
    assert!(k > 0, "need at least one right-hand side");
    for b in bs {
        assert_eq!(b.len(), n, "rhs length");
    }
    let layout = MatrixLayout::cyclic(MatShape::new(n, n + k), grid);
    let mut aug =
        DistMatrix::from_fn(layout, |i, j| if j < n { a.get(i, j) } else { bs[j - n][i] });
    forward_eliminate(hc, &mut aug)?;
    Ok((0..k).map(|c| back_substitute_col(hc, &aug, n + c)).collect())
}

/// Solve `A x = b` end to end on the machine: build the augmented
/// matrix, eliminate, back-substitute.
///
/// # Errors
/// [`GeError::Singular`] for singular systems.
pub fn ge_solve(
    hc: &mut Hypercube,
    a: &Dense,
    b: &[f64],
    grid: ProcGrid,
) -> Result<(Vec<f64>, GeStats), GeError> {
    let mut aug = build_augmented(a, b, grid);
    let stats = forward_eliminate(hc, &mut aug)?;
    Ok((back_substitute(hc, &aug), stats))
}

/// Solve on an already-distributed augmented matrix (consumed in place).
///
/// # Errors
/// [`GeError::Singular`] for singular systems.
pub fn ge_solve_dist(
    hc: &mut Hypercube,
    aug: &mut DistMatrix<f64>,
) -> Result<(Vec<f64>, GeStats), GeError> {
    let stats = forward_eliminate(hc, aug)?;
    Ok((back_substitute(hc, aug), stats))
}

/// A no-pivoting variant (ablation; only safe for diagonally dominant
/// systems): skips the arg-max search and the row swaps. Used by bench
/// T4 to price what pivoting costs in primitive operations.
///
/// # Errors
/// [`GeError::Singular`] if a diagonal entry is numerically zero.
pub fn forward_eliminate_no_pivot(
    hc: &mut Hypercube,
    aug: &mut DistMatrix<f64>,
) -> Result<(), GeError> {
    let n = aug.shape().rows;
    let width = aug.shape().cols;
    assert!(width > n, "augmented matrix expected");
    for k in 0..n {
        let row_k = primitives::extract_replicated(hc, aug, Axis::Row, k);
        let col_k = primitives::extract_replicated(hc, aug, Axis::Col, k);
        let akk = row_k.reduce_lifted(hc, Sum, |j, v| if j == k { v } else { 0.0 });
        if akk.abs() < GE_EPS {
            return Err(GeError::Singular);
        }
        aug.rank1_update_ranged(hc, &col_k, &row_k, k + 1..n, k..width, move |_, j, a, c, r| {
            if j == k {
                0.0
            } else {
                a - (c / akk) * r
            }
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use crate::workloads;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn machine_and_grid(dim: u32) -> (Hypercube, ProcGrid) {
        (Hypercube::new(dim, CostModel::cm2()), ProcGrid::square(Cube::new(dim)))
    }

    #[test]
    fn solves_diag_dominant_to_truth() {
        for (n, dim) in [(4usize, 2u32), (9, 4), (16, 4), (25, 6)] {
            let (a, b, x_true) = workloads::diag_dominant_system(n, n as u64);
            let (mut hc, grid) = machine_and_grid(dim);
            let (x, _) = ge_solve(&mut hc, &a, &b, grid).expect("nonsingular");
            for (xs, xt) in x.iter().zip(&x_true) {
                assert!((xs - xt).abs() < 1e-8, "n = {n}, dim = {dim}");
            }
        }
    }

    #[test]
    fn matches_serial_lu_solution() {
        let n = 18;
        let a = workloads::random_matrix(n, n, 11);
        let b = workloads::random_vector(n, 12);
        let serial_x = serial::lu_solve(&a, &b).expect("random square is a.s. nonsingular");
        let (mut hc, grid) = machine_and_grid(4);
        let (x, _) = ge_solve(&mut hc, &a, &b, grid).expect("nonsingular");
        for (xs, xt) in x.iter().zip(&serial_x) {
            assert!((xs - xt).abs() < 1e-7);
        }
    }

    #[test]
    fn pivoting_engages_on_stress_matrix() {
        let n = 12;
        let a = workloads::pivot_stress_matrix(n, 5);
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.25).collect();
        let b = a.matvec(&x_true);
        let (mut hc, grid) = machine_and_grid(4);
        let (x, stats) = ge_solve(&mut hc, &a, &b, grid).expect("nonsingular");
        assert!(stats.row_swaps > 0, "tiny diagonals must force swaps");
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-6);
        }
    }

    #[test]
    fn elimination_produces_exact_zeros_below_diagonal() {
        let n = 10;
        let (a, b, _) = workloads::diag_dominant_system(n, 77);
        let (mut hc, grid) = machine_and_grid(4);
        let mut aug = build_augmented(&a, &b, grid);
        forward_eliminate(&mut hc, &mut aug).expect("nonsingular");
        let d = aug.to_dense();
        for i in 0..n {
            for j in 0..i {
                assert_eq!(d[i][j], 0.0, "exact zero at ({i},{j})");
            }
        }
    }

    #[test]
    fn multi_rhs_solves_match_single_solves() {
        let n = 12;
        let a = workloads::random_matrix(n, n, 31);
        let bs: Vec<Vec<f64>> = (0..3).map(|k| workloads::random_vector(n, 40 + k)).collect();
        let (mut hc, grid) = machine_and_grid(4);
        let xs = ge_solve_multi(&mut hc, &a, &bs, grid).expect("nonsingular");
        assert_eq!(xs.len(), 3);
        for (b, x) in bs.iter().zip(&xs) {
            let (mut hc1, grid1) = machine_and_grid(4);
            let (x1, _) = ge_solve(&mut hc1, &a, b, grid1).expect("nonsingular");
            for (u, v) in x.iter().zip(&x1) {
                assert!((u - v).abs() < 1e-9, "multi-rhs column agrees with single solve");
            }
            // Residual check against the original system.
            let ax = a.matvec(x);
            for (lhs, rhs) in ax.iter().zip(b) {
                assert!((lhs - rhs).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn multi_rhs_amortises_elimination() {
        // k solves via one elimination should be much cheaper than k
        // separate eliminations.
        let n = 24;
        let a = workloads::random_matrix(n, n, 8);
        let bs: Vec<Vec<f64>> = (0..4).map(|k| workloads::random_vector(n, k)).collect();
        let (mut hc_multi, grid) = machine_and_grid(4);
        let _ = ge_solve_multi(&mut hc_multi, &a, &bs, grid).expect("nonsingular");
        let mut separate = 0.0;
        for b in &bs {
            let (mut hc1, grid1) = machine_and_grid(4);
            let _ = ge_solve(&mut hc1, &a, b, grid1).expect("nonsingular");
            separate += hc1.elapsed_us();
        }
        assert!(
            hc_multi.elapsed_us() < 0.6 * separate,
            "multi {} vs separate {}",
            hc_multi.elapsed_us(),
            separate
        );
    }

    #[test]
    fn singular_system_reports_error() {
        let a = serial::Dense::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![0.5, 1.0, 1.5],
        ]);
        let (mut hc, grid) = machine_and_grid(2);
        assert_eq!(ge_solve(&mut hc, &a, &[1.0, 2.0, 0.5], grid).unwrap_err(), GeError::Singular);
    }

    #[test]
    fn no_pivot_variant_agrees_on_dominant_systems() {
        let n = 12;
        let (a, b, _) = workloads::diag_dominant_system(n, 9);
        let (mut hc1, grid1) = machine_and_grid(4);
        let mut aug1 = build_augmented(&a, &b, grid1);
        forward_eliminate_no_pivot(&mut hc1, &mut aug1).expect("dominant");
        let x1 = back_substitute(&mut hc1, &aug1);
        let (mut hc2, grid2) = machine_and_grid(4);
        let (x2, stats) = ge_solve(&mut hc2, &a, &b, grid2).expect("dominant");
        assert_eq!(stats.row_swaps, 0, "dominant diagonal needs no swaps");
        for (a1, a2) in x1.iter().zip(&x2) {
            assert_eq!(a1, a2, "identical pivot sequence, identical floats");
        }
    }

    #[test]
    fn result_is_identical_across_machine_sizes() {
        // Machine-size independence: forward elimination is pivot
        // selection (exact) plus elementwise arithmetic (identical
        // expressions), so the eliminated matrix is bit-identical across
        // cube dimensions. Back substitution reduces true sums, whose
        // tree order depends on p, so solutions agree to roundoff only.
        let n = 14;
        let a = workloads::random_matrix(n, n, 21);
        let b = workloads::random_vector(n, 22);
        let mut eliminated = Vec::new();
        let mut solutions = Vec::new();
        for dim in [0u32, 2, 4, 6] {
            let (mut hc, grid) = machine_and_grid(dim);
            let mut aug = build_augmented(&a, &b, grid);
            forward_eliminate(&mut hc, &mut aug).expect("nonsingular");
            eliminated.push(aug.to_dense());
            solutions.push(back_substitute(&mut hc, &aug));
        }
        for e in &eliminated[1..] {
            assert_eq!(e, &eliminated[0], "bit-identical elimination across p");
        }
        for s in &solutions[1..] {
            for (x, x0) in s.iter().zip(&solutions[0]) {
                assert!((x - x0).abs() < 1e-10 * (1.0 + x0.abs()), "solution to roundoff");
            }
        }
    }
}
