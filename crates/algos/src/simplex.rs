//! Parallel simplex — the paper's third application.
//!
//! The dense-tableau primal simplex, written in the primitive
//! vocabulary. Each pivot is:
//!
//! 1. `extract(Row, objective)` + an arg-min reduction — the entering
//!    column (Dantzig rule);
//! 2. `extract_replicated(Col, q)` and `extract_replicated(Col, rhs)` +
//!    an elementwise ratio and an arg-min reduction — the leaving row;
//! 3. `extract_replicated(Row, r)`, a scalar scale, `insert` — the pivot
//!    row normalisation;
//! 4. a local rank-1 update — the elimination.
//!
//! The pivot rule and the update arithmetic are shared with
//! [`crate::serial::simplex`]; both produce **bit-identical** iterates
//! (asserted by tests), so correctness of the parallel version reduces to
//! the serial oracle's.

use vmp_core::elem::{ArgMin, Loc, Sum};
use vmp_core::prelude::*;
use vmp_core::primitives;
use vmp_hypercube::machine::Hypercube;

use crate::serial::simplex::{GeneralLp, PivotRule, SimplexResult, SimplexStatus, StandardLp, EPS};

/// Build the distributed initial tableau for `lp`, cyclically laid out.
#[must_use]
pub fn build_tableau(lp: &StandardLp, grid: ProcGrid) -> DistMatrix<f64> {
    let t = lp.initial_tableau();
    let layout = MatrixLayout::cyclic(MatShape::new(t.rows(), t.cols()), grid);
    DistMatrix::from_fn(layout, |i, j| t.get(i, j))
}

/// Run the primal simplex on the machine (Dantzig rule).
#[must_use]
pub fn solve_parallel(
    hc: &mut Hypercube,
    lp: &StandardLp,
    grid: ProcGrid,
    max_iterations: usize,
) -> SimplexResult {
    solve_parallel_with(hc, lp, grid, max_iterations, PivotRule::Dantzig)
}

/// As [`solve_parallel`] with an explicit entering rule (Bland
/// guarantees termination on degenerate problems).
#[must_use]
pub fn solve_parallel_with(
    hc: &mut Hypercube,
    lp: &StandardLp,
    grid: ProcGrid,
    max_iterations: usize,
    rule: PivotRule,
) -> SimplexResult {
    let mut t = build_tableau(lp, grid);
    let (m, n) = (lp.m(), lp.n());
    let rhs_col = n + m;
    let mut basis: Vec<usize> = (n..n + m).collect();
    let (status, iterations) = match run_phase_parallel_with(
        hc,
        &mut t,
        &mut basis,
        m,
        m,
        move |j| j < rhs_col,
        max_iterations,
        rule,
    ) {
        PhaseEnd::Optimal(i) => (SimplexStatus::Optimal, i),
        PhaseEnd::Unbounded(i) => (SimplexStatus::Unbounded, i),
        PhaseEnd::MaxIterations => (SimplexStatus::MaxIterations, max_iterations),
    };
    assemble(status, &t, &basis, lp, iterations)
}

/// The pivot loop on an already-distributed tableau; returns the final
/// status, basis, and iteration count. Exposed for benches that want to
/// time a fixed number of pivots.
pub fn pivot_loop(
    hc: &mut Hypercube,
    t: &mut DistMatrix<f64>,
    m: usize,
    n: usize,
    max_iterations: usize,
) -> (SimplexStatus, Vec<usize>, usize) {
    debug_assert_eq!(t.shape(), MatShape::new(m + 1, n + m + 1));
    let mut basis: Vec<usize> = (n..n + m).collect();
    let rhs_col = n + m;
    match run_phase_parallel(hc, t, &mut basis, m, m, move |j| j < rhs_col, max_iterations) {
        PhaseEnd::Optimal(iters) => (SimplexStatus::Optimal, basis, iters),
        PhaseEnd::Unbounded(iters) => (SimplexStatus::Unbounded, basis, iters),
        PhaseEnd::MaxIterations => (SimplexStatus::MaxIterations, basis, max_iterations),
    }
}

enum PhaseEnd {
    Optimal(usize),
    Unbounded(usize),
    MaxIterations,
}

/// Outcome of a single simplex pivot attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotOutcome {
    /// No eligible entering column — the current basis is optimal.
    Optimal,
    /// An entering column exists but no row limits it — unbounded.
    Unbounded,
    /// One pivot `(entering, leaving-row)` was performed.
    Pivoted(usize, usize),
}

/// One simplex phase on a distributed tableau: objective row `obj_row`,
/// entering columns restricted by `allowed`, ratio test over rows
/// `0..m_constraints`, every tableau row updated per pivot. Mirrors the
/// serial `run_phase` arithmetic exactly (bit-identical iterates).
fn run_phase_parallel(
    hc: &mut Hypercube,
    t: &mut DistMatrix<f64>,
    basis: &mut [usize],
    m_constraints: usize,
    obj_row: usize,
    allowed: impl Fn(usize) -> bool + Copy + Sync,
    max_iterations: usize,
) -> PhaseEnd {
    run_phase_parallel_with(
        hc,
        t,
        basis,
        m_constraints,
        obj_row,
        allowed,
        max_iterations,
        PivotRule::Dantzig,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_phase_parallel_with(
    hc: &mut Hypercube,
    t: &mut DistMatrix<f64>,
    basis: &mut [usize],
    m_constraints: usize,
    obj_row: usize,
    allowed: impl Fn(usize) -> bool + Copy + Sync,
    max_iterations: usize,
    rule: PivotRule,
) -> PhaseEnd {
    for iterations in 0..max_iterations {
        match pivot_once(hc, t, basis, m_constraints, obj_row, allowed, rule) {
            PivotOutcome::Optimal => return PhaseEnd::Optimal(iterations),
            PivotOutcome::Unbounded => return PhaseEnd::Unbounded(iterations),
            PivotOutcome::Pivoted(..) => {}
        }
    }
    PhaseEnd::MaxIterations
}

/// Perform at most one simplex pivot on a distributed tableau — the
/// resumable unit of the solver. One run of `k` pivots and two runs of
/// `j` then `k - j` pivots over the same tableau produce bit-identical
/// iterates (each pivot depends only on the tableau and basis), which is
/// what [`crate::checkpoint`] relies on.
pub fn pivot_once(
    hc: &mut Hypercube,
    t: &mut DistMatrix<f64>,
    basis: &mut [usize],
    m_constraints: usize,
    obj_row: usize,
    allowed: impl Fn(usize) -> bool + Copy + Sync,
    rule: PivotRule,
) -> PivotOutcome {
    let width = t.shape().cols;
    let rhs_col = width - 1;

    // 1. Entering column under the configured rule, masked to
    //    `allowed` (and never rhs).
    let objective = primitives::extract(hc, t, Axis::Row, obj_row);
    let chosen: Option<usize> = match rule {
        PivotRule::Dantzig => {
            let entering = objective.reduce_lifted(hc, ArgMin, move |j, v| {
                if j < rhs_col && allowed(j) {
                    Loc::new(v, j)
                } else {
                    Loc::new(f64::INFINITY, usize::MAX)
                }
            });
            if entering.index == usize::MAX || entering.value >= -EPS {
                None
            } else {
                Some(entering.index)
            }
        }
        PivotRule::Bland => {
            // Smallest eligible index: arg-min over the index itself.
            let entering = objective.reduce_lifted(hc, ArgMin, move |j, v| {
                if j < rhs_col && allowed(j) && v < -EPS {
                    Loc::new(j as f64, j)
                } else {
                    Loc::new(f64::INFINITY, usize::MAX)
                }
            });
            if entering.index == usize::MAX {
                None
            } else {
                Some(entering.index)
            }
        }
    };
    let Some(q) = chosen else {
        return PivotOutcome::Optimal;
    };

    // 2. Leaving row: minimum ratio over constraint rows with
    //    a_iq > EPS.
    let col_q = primitives::extract_replicated(hc, t, Axis::Col, q);
    let rhs = primitives::extract_replicated(hc, t, Axis::Col, rhs_col);
    let ratios = col_q.zip(hc, &rhs, move |i, c, b| {
        if i < m_constraints && c > EPS {
            Loc::new(b / c, i)
        } else {
            Loc::new(f64::MAX, usize::MAX)
        }
    });
    let leaving = ratios.reduce_all(hc, ArgMin);
    if leaving.index == usize::MAX {
        return PivotOutcome::Unbounded;
    }
    let r = leaving.index;

    // 3. Normalise the pivot row: a_rq as a masked-sum scalar, then
    //    scale and insert (the inserted row is replicated => local).
    let arq = col_q.reduce_lifted(hc, Sum, move |i, v| if i == r { v } else { 0.0 });
    let row_r = primitives::extract_replicated(hc, t, Axis::Row, r);
    let scaled = row_r.map(hc, move |_, v| v / arq);
    primitives::insert(hc, t, Axis::Row, r, &scaled);

    // 4. Eliminate column q from every other row. col_q still holds
    //    the pre-normalisation multipliers for rows != r.
    t.rank1_update(hc, &col_q, &scaled, move |i, _, a, c, s| if i == r { a } else { a - c * s });
    basis[r] = q;
    PivotOutcome::Pivoted(q, r)
}

/// Solve a general-form LP (`b` of any sign) with the two-phase method
/// on the machine. Bit-identical to
/// [`crate::serial::simplex::solve_general`].
#[must_use]
pub fn solve_general_parallel(
    hc: &mut Hypercube,
    lp: &GeneralLp,
    grid: ProcGrid,
    max_iterations: usize,
) -> SimplexResult {
    let (m, n) = (lp.m(), lp.n());
    let n_art = lp.negative_rows().len();
    let width = n + m + n_art + 1;
    let rhs_col = width - 1;

    let (host_t, mut basis) = lp.two_phase_tableau();
    let layout = MatrixLayout::cyclic(MatShape::new(m + 2, width), grid);
    let mut t = DistMatrix::from_fn(layout, |i, j| host_t.get(i, j));

    let mut used = 0usize;

    // Phase 1.
    if n_art > 0 {
        match run_phase_parallel(
            hc,
            &mut t,
            &mut basis,
            m,
            m + 1,
            move |j| j < rhs_col,
            max_iterations,
        ) {
            PhaseEnd::Optimal(iters) => used += iters,
            PhaseEnd::Unbounded(_) => unreachable!("phase-1 objective is bounded above by 0"),
            PhaseEnd::MaxIterations => {
                return assemble_general(
                    SimplexStatus::MaxIterations,
                    &t,
                    &basis,
                    lp,
                    max_iterations,
                )
            }
        }
        // Infeasibility check: the w-row rhs (a single element read
        // through the primitive path).
        let w_row = primitives::extract(hc, &t, Axis::Row, m + 1);
        let w_value = w_row.reduce_lifted(hc, Sum, move |j, v| if j == rhs_col { v } else { 0.0 });
        if w_value < -EPS {
            return assemble_general(SimplexStatus::Infeasible, &t, &basis, lp, used);
        }
    }

    // Phase 2: artificials barred from entering.
    let budget = max_iterations.saturating_sub(used);
    let nm = n + m;
    match run_phase_parallel(hc, &mut t, &mut basis, m, m, move |j| j < nm, budget) {
        PhaseEnd::Optimal(iters) => {
            assemble_general(SimplexStatus::Optimal, &t, &basis, lp, used + iters)
        }
        PhaseEnd::Unbounded(iters) => {
            assemble_general(SimplexStatus::Unbounded, &t, &basis, lp, used + iters)
        }
        PhaseEnd::MaxIterations => {
            assemble_general(SimplexStatus::MaxIterations, &t, &basis, lp, max_iterations)
        }
    }
}

fn assemble_general(
    status: SimplexStatus,
    t: &DistMatrix<f64>,
    basis: &[usize],
    lp: &GeneralLp,
    iterations: usize,
) -> SimplexResult {
    let n = lp.n();
    let rhs_col = t.shape().cols - 1;
    let mut x = vec![0.0; n];
    for (i, &var) in basis.iter().enumerate() {
        if var < n {
            x[var] = t.get(i, rhs_col); // host-side output read
        }
    }
    SimplexResult { status, objective: t.get(lp.m(), rhs_col), x, iterations }
}

pub(crate) fn assemble(
    status: SimplexStatus,
    t: &DistMatrix<f64>,
    basis: &[usize],
    lp: &StandardLp,
    iterations: usize,
) -> SimplexResult {
    let (m, n) = (lp.m(), lp.n());
    let rhs_col = n + m;
    let mut x = vec![0.0; n];
    for (i, &var) in basis.iter().enumerate() {
        if var < n {
            x[var] = t.get(i, rhs_col); // host-side output read
        }
    }
    SimplexResult { status, objective: t.get(m, rhs_col), x, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{simplex_solve, Dense};
    use crate::workloads;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn machine_and_grid(dim: u32) -> (Hypercube, ProcGrid) {
        (Hypercube::new(dim, CostModel::cm2()), ProcGrid::square(Cube::new(dim)))
    }

    #[test]
    fn textbook_lp_matches_serial_exactly() {
        let lp = StandardLp::new(
            Dense::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]]),
            vec![4.0, 12.0, 18.0],
            vec![3.0, 5.0],
        );
        let serial = simplex_solve(&lp, 100);
        let (mut hc, grid) = machine_and_grid(4);
        let parallel = solve_parallel(&mut hc, &lp, grid, 100);
        assert_eq!(parallel.status, SimplexStatus::Optimal);
        assert_eq!(parallel.iterations, serial.iterations);
        assert_eq!(parallel.objective, serial.objective, "bit-identical objective");
        assert_eq!(parallel.x, serial.x, "bit-identical solution");
    }

    #[test]
    fn random_lps_match_serial_bitwise() {
        for seed in 0..8u64 {
            let lp = workloads::random_dense_lp(7, 5, seed);
            let serial = simplex_solve(&lp, 500);
            let (mut hc, grid) = machine_and_grid(4);
            let parallel = solve_parallel(&mut hc, &lp, grid, 500);
            assert_eq!(parallel.status, serial.status, "seed {seed}");
            assert_eq!(parallel.iterations, serial.iterations, "seed {seed}");
            assert_eq!(parallel.objective, serial.objective, "seed {seed}");
            assert_eq!(parallel.x, serial.x, "seed {seed}");
        }
    }

    #[test]
    fn unbounded_detected_in_parallel() {
        let lp = StandardLp::new(Dense::from_rows(&[vec![-1.0, 1.0]]), vec![1.0], vec![1.0, 0.0]);
        let (mut hc, grid) = machine_and_grid(2);
        let r = solve_parallel(&mut hc, &lp, grid, 100);
        assert_eq!(r.status, SimplexStatus::Unbounded);
    }

    #[test]
    fn klee_minty_pivot_count_preserved() {
        let d = 5;
        let lp = workloads::klee_minty(d);
        let (mut hc, grid) = machine_and_grid(4);
        let r = solve_parallel(&mut hc, &lp, grid, 1 << (d + 2));
        assert_eq!(r.status, SimplexStatus::Optimal);
        assert_eq!(r.iterations, (1 << d) - 1, "Dantzig worst case survives parallelisation");
    }

    #[test]
    fn solution_is_identical_across_machine_sizes() {
        let lp = workloads::random_dense_lp(6, 6, 99);
        let mut results = Vec::new();
        for dim in [0u32, 2, 4, 5] {
            let (mut hc, grid) = machine_and_grid(dim);
            results.push(solve_parallel(&mut hc, &lp, grid, 500));
        }
        for r in &results[1..] {
            assert_eq!(r.x, results[0].x);
            assert_eq!(r.objective, results[0].objective);
            assert_eq!(r.iterations, results[0].iterations);
        }
    }

    #[test]
    fn bland_rule_reaches_the_same_optimum() {
        use crate::serial::simplex::solve_with_rule;
        for seed in 0..5u64 {
            let lp = workloads::random_dense_lp(8, 6, seed);
            let dantzig = simplex_solve(&lp, 2000);
            let bland_serial = solve_with_rule(&lp, 2000, PivotRule::Bland);
            let (mut hc, grid) = machine_and_grid(4);
            let bland_par = solve_parallel_with(&mut hc, &lp, grid, 2000, PivotRule::Bland);
            assert_eq!(bland_serial.status, SimplexStatus::Optimal, "seed {seed}");
            assert!(
                (bland_serial.objective - dantzig.objective).abs() < 1e-8,
                "seed {seed}: same optimum by either rule"
            );
            assert_eq!(bland_par.objective, bland_serial.objective, "seed {seed}: bitwise");
            assert_eq!(bland_par.x, bland_serial.x, "seed {seed}");
            assert_eq!(bland_par.iterations, bland_serial.iterations, "seed {seed}");
            assert!(
                bland_serial.iterations >= dantzig.iterations,
                "Bland typically takes more pivots"
            );
        }
    }

    #[test]
    fn two_phase_parallel_matches_serial_bitwise() {
        use crate::serial::simplex::{solve_general, GeneralLp};
        let cases: Vec<GeneralLp> = vec![
            // Feasible with negative rhs.
            GeneralLp::new(
                Dense::from_rows(&[vec![1.0, 1.0], vec![-1.0, -1.0], vec![1.0, 0.0]]),
                vec![8.0, -3.0, 5.0],
                vec![1.0, 1.0],
            ),
            // Equality-like band.
            GeneralLp::new(
                Dense::from_rows(&[vec![1.0, 2.0], vec![-1.0, -2.0]]),
                vec![2.0, -2.0],
                vec![3.0, 1.0],
            ),
            // Infeasible.
            GeneralLp::new(Dense::from_rows(&[vec![1.0], vec![-1.0]]), vec![1.0, -3.0], vec![1.0]),
            // Feasible then unbounded.
            GeneralLp::new(Dense::from_rows(&[vec![-1.0]]), vec![-2.0], vec![1.0]),
        ];
        for (k, lp) in cases.iter().enumerate() {
            let serial = solve_general(lp, 300);
            let (mut hc, grid) = machine_and_grid(4);
            let par = solve_general_parallel(&mut hc, lp, grid, 300);
            assert_eq!(par.status, serial.status, "case {k}");
            assert_eq!(par.iterations, serial.iterations, "case {k}");
            if par.status == SimplexStatus::Optimal {
                assert_eq!(par.objective, serial.objective, "case {k}");
                assert_eq!(par.x, serial.x, "case {k}");
                assert!(lp.is_feasible(&par.x, 1e-8), "case {k}");
            }
        }
    }

    #[test]
    fn two_phase_random_mixed_sign_lps() {
        use crate::serial::simplex::{solve_general, GeneralLp};
        for seed in 0..6u64 {
            // Random LP made general: flip some constraints to >= form by
            // negating rows and rhs (keeps the same feasible set).
            let base = workloads::random_dense_lp(6, 5, seed);
            let mut rows = Vec::new();
            let mut b = Vec::new();
            for i in 0..base.m() {
                let flip = i % 3 == 1;
                let row: Vec<f64> = (0..base.n())
                    .map(|j| if flip { -base.a.get(i, j) } else { base.a.get(i, j) })
                    .collect();
                rows.push(row);
                b.push(if flip { -0.5 } else { base.b[i] }); // some >= 0.5 lower bounds
            }
            let g = GeneralLp::new(Dense::from_rows(&rows), b, base.c.clone());
            let serial = solve_general(&g, 1000);
            let (mut hc, grid) = machine_and_grid(3);
            let par = solve_general_parallel(&mut hc, &g, grid, 1000);
            assert_eq!(par.status, serial.status, "seed {seed}");
            assert_eq!(par.objective, serial.objective, "seed {seed}");
            assert_eq!(par.x, serial.x, "seed {seed}");
        }
    }

    #[test]
    fn feasibility_of_parallel_solutions() {
        for seed in [3u64, 14, 15] {
            let lp = workloads::random_dense_lp(9, 6, seed);
            let (mut hc, grid) = machine_and_grid(4);
            let r = solve_parallel(&mut hc, &lp, grid, 1000);
            assert_eq!(r.status, SimplexStatus::Optimal);
            assert!(lp.is_feasible(&r.x, 1e-7), "seed {seed}");
        }
    }
}
