//! # vmp-algos — the paper's three applications, on the primitives
//!
//! *"We illustrate their use in three numerical algorithms: a
//! vector-matrix multiply, a Gaussian-elimination routine and a simplex
//! algorithm."*
//!
//! * [`mod@matvec`] — `y = x A` / `y = A x` as one elementwise pass plus one
//!   `reduce`;
//! * [`gauss`] — Gaussian elimination with partial pivoting on an
//!   augmented matrix, plus distributed back substitution;
//! * [`simplex`] — dense-tableau primal simplex, bit-identical to the
//!   serial oracle;
//! * [`serial`] — host-side dense linear algebra: the oracles the
//!   parallel algorithms are validated against and the serial baselines
//!   of the processor-time-product claim;
//! * [`workloads`] — seeded generators (diagonally dominant systems,
//!   pivot-stress matrices, bounded random LPs, Klee–Minty cubes).
//!
//! Extensions beyond the paper's three applications, showing the
//! primitives compose further:
//!
//! * [`mod@matmul`] — distributed matrix-matrix multiply (rank-1/SUMMA and
//!   panel-blocked schedules);
//! * [`cg`] — conjugate gradient on the primitives' matvec;
//! * [`stencil`] — Jacobi/Poisson relaxation via NEWS shifts on the
//!   Gray-coded embedding;
//! * [`tridiag`] — tridiagonal systems by parallel cyclic reduction;
//! * [`fft`] — the hypercube FFT (node stages are neighbour exchanges);
//! * [`sort`] — Batcher bitonic sort on the same stage structure;
//! * [`histogram`] — dense vs sparse all-to-all histogram reduction
//!   (TR-682's comparison);
//! * [`lu`] — distributed LU factorisation with reusable factors;
//! * [`listrank`] — pointer-jumping list ranking on indexed gathers;
//! * [`checkpoint`] — checkpoint/restart for the elimination and simplex
//!   solvers: interrupted runs resume bit-identically from host-side
//!   snapshots.

#![warn(missing_docs)]

pub mod cg;
pub mod checkpoint;
pub mod components;
pub mod fft;
pub mod gauss;
pub mod histogram;
pub mod listrank;
pub mod lu;
pub mod matmul;
pub mod matvec;
pub mod serial;
pub mod simplex;
pub mod sort;
pub mod stencil;
pub mod tridiag;
pub mod workloads;

pub use cg::{cg_solve, CgOptions, CgOutcome};
pub use checkpoint::{
    forward_eliminate_checkpointed, resume_forward_eliminate, resume_solve_parallel,
    solve_parallel_checkpointed, CheckpointError, GeCheckpoint, SimplexCheckpoint,
};
pub use gauss::{
    back_substitute, back_substitute_col, build_augmented, forward_eliminate,
    forward_eliminate_range, ge_solve, ge_solve_dist, ge_solve_multi, GeError, GeStats,
};
pub use matmul::{matmul, matmul_panelled};
pub use matvec::{matvec, vecmat, vecmat_via_distribute};
pub use simplex::{build_tableau, solve_general_parallel, solve_parallel};
