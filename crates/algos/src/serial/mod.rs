//! Serial dense linear algebra — oracles and baselines.
//!
//! Everything the parallel algorithms are validated against, and the
//! "best serial algorithm" running times the paper's processor-time
//! product claim references.

pub mod dense;
pub mod lu;
pub mod simplex;

pub use dense::Dense;
pub use lu::{lu_factor, solve as lu_solve, Lu, LuError};
pub use simplex::{
    entering_column, leaving_row, solve as simplex_solve, SimplexResult, SimplexStatus, StandardLp,
    EPS,
};
