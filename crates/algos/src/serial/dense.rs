//! Host-side dense matrices — the serial substrate.
//!
//! These are the "best serial algorithm" baselines the paper's
//! processor-time-product claim compares against, and the oracles the
//! parallel algorithms are tested to agree with.

/// A dense row-major host matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// A `rows x cols` zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from `f(i, j)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Dense { rows, cols, data }
    }

    /// Build from nested `Vec`s.
    ///
    /// # Panics
    /// Panics on ragged input.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Dense::from_fn(r, c, |i, j| rows[i][j])
    }

    /// The `n x n` identity.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Dense::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i` as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Swap two rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// `y = x^T A` (row-vector result of length `cols`).
    ///
    /// # Panics
    /// Panics if `x.len() != rows`.
    #[must_use]
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "x length must equal row count");
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            for (yj, &aij) in y.iter_mut().zip(self.row(i)) {
                *yj += xi * aij;
            }
        }
        y
    }

    /// `y = A x` (column-vector result of length `rows`).
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "x length must equal column count");
        (0..self.rows).map(|i| self.row(i).iter().zip(x).map(|(&a, &b)| a * b).sum()).collect()
    }

    /// Dense matrix product `A * B`.
    #[must_use]
    pub fn matmul(&self, b: &Dense) -> Dense {
        assert_eq!(self.cols, b.rows, "inner dimensions must agree");
        let mut out = Dense::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    let v = out.get(i, j) + aik * b.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Max-abs difference to another matrix.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Dense) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Copy out as nested `Vec`s.
    #[must_use]
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.rows).map(|i| self.row(i).to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Dense::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.to_rows(), vec![vec![0.0, 1.0, 2.0], vec![3.0, 4.0, 5.0]]);
    }

    #[test]
    fn identity_matmul_is_identity_map() {
        let a = Dense::from_fn(3, 3, |i, j| (i + 2 * j) as f64);
        let i3 = Dense::identity(3);
        assert_eq!(a.matmul(&i3), a);
        assert_eq!(i3.matmul(&a), a);
    }

    #[test]
    fn vecmat_and_matvec() {
        let a = Dense::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(a.vecmat(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
        assert_eq!(a.matvec(&[1.0, -1.0]), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn swap_rows_swaps() {
        let mut a = Dense::from_fn(3, 2, |i, _| i as f64);
        a.swap_rows(0, 2);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(2, 1), 0.0);
        a.swap_rows(1, 1);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn matmul_matches_hand_example() {
        let a = Dense::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Dense::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.to_rows(), vec![vec![19.0, 22.0], vec![43.0, 50.0]]);
    }

    #[test]
    fn max_abs_diff_measures_distance() {
        let a = Dense::identity(2);
        let mut b = Dense::identity(2);
        b.set(0, 1, -0.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
