//! Serial dense-tableau simplex — the oracle for the parallel simplex.
//!
//! Standard form: maximise `c x` subject to `A x <= b`, `x >= 0`, with
//! `b >= 0` so the slack basis is feasible. The pivot rule (Dantzig
//! entering column, minimum-ratio leaving row, smallest-index
//! tie-breaks) and the exact arithmetic of the pivot update are shared
//! verbatim with the parallel implementation, so the two produce
//! **bit-identical** tableaus — the strongest possible correctness check
//! for the primitive-based version.

use super::dense::Dense;

/// A linear program in standard inequality form:
/// maximise `c x` s.t. `A x <= b`, `x >= 0`.
#[derive(Debug, Clone)]
pub struct StandardLp {
    /// Constraint matrix (`m x n`).
    pub a: Dense,
    /// Right-hand sides (`m`, must be nonnegative).
    pub b: Vec<f64>,
    /// Objective coefficients (`n`).
    pub c: Vec<f64>,
}

impl StandardLp {
    /// Build and validate a standard-form LP.
    ///
    /// # Panics
    /// Panics on dimension mismatches or negative right-hand sides.
    #[must_use]
    pub fn new(a: Dense, b: Vec<f64>, c: Vec<f64>) -> Self {
        assert_eq!(a.rows(), b.len(), "one rhs per constraint");
        assert_eq!(a.cols(), c.len(), "one objective coefficient per variable");
        assert!(b.iter().all(|&v| v >= 0.0), "standard form requires b >= 0");
        StandardLp { a, b, c }
    }

    /// Number of constraints `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.a.rows()
    }

    /// Number of structural variables `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.a.cols()
    }

    /// The initial simplex tableau `(m+1) x (n+m+1)`:
    /// rows `0..m` are `[A | I | b]`, row `m` is `[-c | 0 | 0]`.
    #[must_use]
    pub fn initial_tableau(&self) -> Dense {
        let (m, n) = (self.m(), self.n());
        Dense::from_fn(m + 1, n + m + 1, |i, j| {
            if i < m {
                if j < n {
                    self.a.get(i, j)
                } else if j < n + m {
                    f64::from(u8::from(j - n == i))
                } else {
                    self.b[i]
                }
            } else if j < n {
                -self.c[j]
            } else {
                0.0
            }
        })
    }

    /// Is `x` feasible to tolerance `tol`?
    #[must_use]
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.n()
            && x.iter().all(|&v| v >= -tol)
            && self.a.matvec(x).iter().zip(&self.b).all(|(lhs, rhs)| *lhs <= rhs + tol)
    }

    /// Objective value `c x`.
    #[must_use]
    pub fn objective(&self, x: &[f64]) -> f64 {
        self.c.iter().zip(x).map(|(a, b)| a * b).sum()
    }
}

/// Termination status of a simplex run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimplexStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The objective is unbounded above.
    Unbounded,
    /// No feasible point exists (two-phase runs only).
    Infeasible,
    /// The iteration cap was hit (degenerate cycling guard).
    MaxIterations,
}

/// Result of a simplex run.
#[derive(Debug, Clone)]
pub struct SimplexResult {
    /// Why the run stopped.
    pub status: SimplexStatus,
    /// Objective value at termination.
    pub objective: f64,
    /// Structural variable values (`n`).
    pub x: Vec<f64>,
    /// Pivot count.
    pub iterations: usize,
}

/// Numerical tolerance shared by serial and parallel implementations.
pub const EPS: f64 = 1e-9;

/// The entering-variable selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PivotRule {
    /// Most negative reduced cost (fast in practice; can cycle on
    /// degenerate problems in principle).
    #[default]
    Dantzig,
    /// Smallest eligible index (Bland): guaranteed termination.
    Bland,
}

/// Choose the entering column: the most negative reduced cost (Dantzig),
/// smallest index on ties; `None` at optimality. Shared rule.
#[must_use]
pub fn entering_column(reduced_costs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (j, &rc) in reduced_costs.iter().enumerate() {
        if rc < -EPS && best.is_none_or(|(_, b)| rc < b) {
            best = Some((j, rc));
        }
    }
    best.map(|(j, _)| j)
}

/// Bland's entering rule: the smallest index with a negative reduced
/// cost; `None` at optimality.
#[must_use]
pub fn entering_column_bland(reduced_costs: &[f64]) -> Option<usize> {
    reduced_costs.iter().position(|&rc| rc < -EPS)
}

/// Dispatch on the configured rule.
#[must_use]
pub fn entering_column_with(rule: PivotRule, reduced_costs: &[f64]) -> Option<usize> {
    match rule {
        PivotRule::Dantzig => entering_column(reduced_costs),
        PivotRule::Bland => entering_column_bland(reduced_costs),
    }
}

/// Choose the leaving row by minimum ratio `b_i / a_iq` over `a_iq > EPS`,
/// smallest index on ties; `None` means unbounded. Shared rule.
#[must_use]
pub fn leaving_row(col: &[f64], rhs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for i in 0..col.len() {
        if col[i] > EPS {
            let ratio = rhs[i] / col[i];
            if best.is_none_or(|(_, b)| ratio < b) {
                best = Some((i, ratio));
            }
        }
    }
    best.map(|(i, _)| i)
}

/// Solve by the primal simplex method on the dense tableau (Dantzig
/// rule).
#[must_use]
pub fn solve(lp: &StandardLp, max_iterations: usize) -> SimplexResult {
    solve_with_rule(lp, max_iterations, PivotRule::Dantzig)
}

/// As [`solve`] with an explicit entering rule.
#[must_use]
pub fn solve_with_rule(lp: &StandardLp, max_iterations: usize, rule: PivotRule) -> SimplexResult {
    let (m, n) = (lp.m(), lp.n());
    let width = n + m + 1;
    let rhs_col = width - 1;
    let mut t = lp.initial_tableau();
    let mut basis: Vec<usize> = (n..n + m).collect();

    for iterations in 0..max_iterations {
        // Entering variable from the objective row (excluding rhs).
        let reduced: Vec<f64> = (0..width - 1).map(|j| t.get(m, j)).collect();
        let Some(q) = entering_column_with(rule, &reduced) else {
            return finish(SimplexStatus::Optimal, &t, &basis, lp, iterations);
        };

        // Ratio test on column q.
        let col: Vec<f64> = (0..m).map(|i| t.get(i, q)).collect();
        let rhs: Vec<f64> = (0..m).map(|i| t.get(i, rhs_col)).collect();
        let Some(r) = leaving_row(&col, &rhs) else {
            return finish(SimplexStatus::Unbounded, &t, &basis, lp, iterations);
        };

        // Pivot on (r, q) — the exact update order the parallel version
        // mirrors: scale the pivot row, then eliminate the column.
        let arq = t.get(r, q);
        for j in 0..width {
            let v = t.get(r, j) / arq;
            t.set(r, j, v);
        }
        for i in 0..=m {
            if i == r {
                continue;
            }
            let aiq = t.get(i, q);
            if aiq == 0.0 {
                continue;
            }
            for j in 0..width {
                let v = t.get(i, j) - aiq * t.get(r, j);
                t.set(i, j, v);
            }
        }
        basis[r] = q;
    }
    finish(SimplexStatus::MaxIterations, &t, &basis, lp, max_iterations)
}

fn finish(
    status: SimplexStatus,
    t: &Dense,
    basis: &[usize],
    lp: &StandardLp,
    iterations: usize,
) -> SimplexResult {
    let (m, n) = (lp.m(), lp.n());
    let rhs_col = n + m;
    let mut x = vec![0.0; n];
    for (i, &var) in basis.iter().enumerate() {
        if var < n {
            x[var] = t.get(i, rhs_col);
        }
    }
    SimplexResult { status, objective: t.get(m, rhs_col), x, iterations }
}

/// A linear program in general inequality form: maximise `c x` s.t.
/// `A x <= b` with `b` of **any sign**, `x >= 0`. Negative right-hand
/// sides make the slack basis infeasible, so solving needs the two-phase
/// method ([`solve_general`]).
#[derive(Debug, Clone)]
pub struct GeneralLp {
    /// Constraint matrix (`m x n`).
    pub a: Dense,
    /// Right-hand sides (`m`, any sign).
    pub b: Vec<f64>,
    /// Objective coefficients (`n`).
    pub c: Vec<f64>,
}

impl GeneralLp {
    /// Build and validate a general-form LP.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    #[must_use]
    pub fn new(a: Dense, b: Vec<f64>, c: Vec<f64>) -> Self {
        assert_eq!(a.rows(), b.len(), "one rhs per constraint");
        assert_eq!(a.cols(), c.len(), "one objective coefficient per variable");
        GeneralLp { a, b, c }
    }

    /// Number of constraints.
    #[must_use]
    pub fn m(&self) -> usize {
        self.a.rows()
    }

    /// Number of structural variables.
    #[must_use]
    pub fn n(&self) -> usize {
        self.a.cols()
    }

    /// Rows whose right-hand side is negative (these get artificials).
    #[must_use]
    pub fn negative_rows(&self) -> Vec<usize> {
        (0..self.m()).filter(|&i| self.b[i] < 0.0).collect()
    }

    /// Is `x` feasible to tolerance `tol`?
    #[must_use]
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.n()
            && x.iter().all(|&v| v >= -tol)
            && self.a.matvec(x).iter().zip(&self.b).all(|(lhs, rhs)| *lhs <= rhs + tol)
    }

    /// Objective value `c x`.
    #[must_use]
    pub fn objective(&self, x: &[f64]) -> f64 {
        self.c.iter().zip(x).map(|(a, b)| a * b).sum()
    }

    /// The two-phase tableau: `(m+2) x (n + m + a + 1)` where `a` is the
    /// number of negative-rhs rows. Constraint rows are sign-flipped
    /// where `b_i < 0` (their slack enters with `-1` and an artificial
    /// with `+1`); row `m` is the phase-2 objective (`-c`), row `m+1`
    /// the phase-1 objective (`w = -sum of artificials`, expressed in
    /// the nonbasic columns). Also returns the initial basis.
    #[must_use]
    pub fn two_phase_tableau(&self) -> (Dense, Vec<usize>) {
        let (m, n) = (self.m(), self.n());
        let neg = self.negative_rows();
        let n_art = neg.len();
        let art_index = |i: usize| neg.iter().position(|&r| r == i);
        let width = n + m + n_art + 1;
        let rhs_col = width - 1;

        let mut t = Dense::zeros(m + 2, width);
        let mut basis = Vec::with_capacity(m);
        for i in 0..m {
            let flip = if self.b[i] < 0.0 { -1.0 } else { 1.0 };
            for j in 0..n {
                t.set(i, j, flip * self.a.get(i, j));
            }
            t.set(i, n + i, flip); // slack (negated on flipped rows)
            t.set(i, rhs_col, flip * self.b[i]);
            if let Some(k) = art_index(i) {
                t.set(i, n + m + k, 1.0);
                basis.push(n + m + k);
            } else {
                basis.push(n + i);
            }
        }
        // Phase-2 objective row (maximise c x -> store -c).
        for j in 0..n {
            t.set(m, j, -self.c[j]);
        }
        // Phase-1 objective row: maximise -sum(artificials): store +1 on
        // artificial columns, then eliminate the basic artificials by
        // subtracting their rows.
        for k in 0..n_art {
            t.set(m + 1, n + m + k, 1.0);
        }
        for &i in &neg {
            for j in 0..width {
                let v = t.get(m + 1, j) - t.get(i, j);
                t.set(m + 1, j, v);
            }
        }
        (t, basis)
    }
}

/// Solve a general-form LP with the two-phase primal simplex.
#[must_use]
pub fn solve_general(lp: &GeneralLp, max_iterations: usize) -> SimplexResult {
    let (m, n) = (lp.m(), lp.n());
    let n_art = lp.negative_rows().len();
    let width = n + m + n_art + 1;
    let rhs_col = width - 1;
    let (mut t, mut basis) = lp.two_phase_tableau();

    let mut used = 0usize;

    // Phase 1: drive the artificials to zero using the w row (m+1).
    if n_art > 0 {
        match run_phase(&mut t, &mut basis, m, m + 1, |j| j < rhs_col, max_iterations) {
            PhaseEnd::Optimal(iters) => used += iters,
            PhaseEnd::Unbounded(_) => unreachable!("phase-1 objective is bounded above by 0"),
            PhaseEnd::MaxIterations => {
                return finish_general(SimplexStatus::MaxIterations, &t, &basis, lp, max_iterations)
            }
        }
        if t.get(m + 1, rhs_col) < -EPS {
            return finish_general(SimplexStatus::Infeasible, &t, &basis, lp, used);
        }
    }

    // Phase 2: optimise the real objective, artificials barred.
    let budget = max_iterations.saturating_sub(used);
    match run_phase(&mut t, &mut basis, m, m, |j| j < n + m, budget) {
        PhaseEnd::Optimal(iters) => {
            finish_general(SimplexStatus::Optimal, &t, &basis, lp, used + iters)
        }
        PhaseEnd::Unbounded(iters) => {
            finish_general(SimplexStatus::Unbounded, &t, &basis, lp, used + iters)
        }
        PhaseEnd::MaxIterations => {
            finish_general(SimplexStatus::MaxIterations, &t, &basis, lp, max_iterations)
        }
    }
}

enum PhaseEnd {
    Optimal(usize),
    Unbounded(usize),
    MaxIterations,
}

/// Pivot with objective row `obj_row` and entering columns restricted by
/// `allowed`, updating **every** row of the tableau (both objectives).
fn run_phase(
    t: &mut Dense,
    basis: &mut [usize],
    m: usize,
    obj_row: usize,
    allowed: impl Fn(usize) -> bool,
    max_iterations: usize,
) -> PhaseEnd {
    let width = t.cols();
    let rhs_col = width - 1;
    for iterations in 0..max_iterations {
        let reduced: Vec<f64> = (0..rhs_col)
            .map(|j| if allowed(j) { t.get(obj_row, j) } else { f64::INFINITY })
            .collect();
        let Some(q) = entering_column(&reduced) else {
            return PhaseEnd::Optimal(iterations);
        };
        let col: Vec<f64> = (0..m).map(|i| t.get(i, q)).collect();
        let rhs: Vec<f64> = (0..m).map(|i| t.get(i, rhs_col)).collect();
        let Some(r) = leaving_row(&col, &rhs) else {
            return PhaseEnd::Unbounded(iterations);
        };
        let arq = t.get(r, q);
        for j in 0..width {
            let v = t.get(r, j) / arq;
            t.set(r, j, v);
        }
        for i in 0..t.rows() {
            if i == r {
                continue;
            }
            let aiq = t.get(i, q);
            if aiq == 0.0 {
                continue;
            }
            for j in 0..width {
                let v = t.get(i, j) - aiq * t.get(r, j);
                t.set(i, j, v);
            }
        }
        basis[r] = q;
    }
    PhaseEnd::MaxIterations
}

fn finish_general(
    status: SimplexStatus,
    t: &Dense,
    basis: &[usize],
    lp: &GeneralLp,
    iterations: usize,
) -> SimplexResult {
    let n = lp.n();
    let rhs_col = t.cols() - 1;
    let mut x = vec![0.0; n];
    for (i, &var) in basis.iter().enumerate() {
        if var < n {
            x[var] = t.get(i, rhs_col);
        }
    }
    SimplexResult { status, objective: t.get(lp.m(), rhs_col), x, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> StandardLp {
        StandardLp::new(Dense::from_rows(a), b.to_vec(), c.to_vec())
    }

    #[test]
    fn textbook_two_variable_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), z = 36.
        let p =
            lp(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]], &[4.0, 12.0, 18.0], &[3.0, 5.0]);
        let r = solve(&p, 100);
        assert_eq!(r.status, SimplexStatus::Optimal);
        assert!((r.objective - 36.0).abs() < 1e-9);
        assert!((r.x[0] - 2.0).abs() < 1e-9);
        assert!((r.x[1] - 6.0).abs() < 1e-9);
        assert!(p.is_feasible(&r.x, 1e-9));
    }

    #[test]
    fn degenerate_start_still_solves() {
        // A constraint with b = 0 makes the initial basis degenerate.
        let p = lp(&[vec![1.0, -1.0], vec![1.0, 1.0]], &[0.0, 4.0], &[1.0, 0.5]);
        let r = solve(&p, 100);
        assert_eq!(r.status, SimplexStatus::Optimal);
        assert!(p.is_feasible(&r.x, 1e-9));
        assert!((r.objective - 3.0).abs() < 1e-9, "optimum at x = (2, 2): {r:?}");
    }

    #[test]
    fn unbounded_lp_detected() {
        // max x with only  -x + y <= 1: x can grow without bound.
        let p = lp(&[vec![-1.0, 1.0]], &[1.0], &[1.0, 0.0]);
        let r = solve(&p, 100);
        assert_eq!(r.status, SimplexStatus::Unbounded);
    }

    #[test]
    fn origin_optimal_when_c_nonpositive() {
        let p = lp(&[vec![1.0, 1.0]], &[10.0], &[-1.0, -2.0]);
        let r = solve(&p, 100);
        assert_eq!(r.status, SimplexStatus::Optimal);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.objective, 0.0);
        assert_eq!(r.x, vec![0.0, 0.0]);
    }

    #[test]
    fn matches_brute_force_on_small_random_lps() {
        // Enumerate all basic solutions of tiny LPs and compare optima.
        // 2 vars, 3 constraints: vertices are intersections of pairs of
        // active constraints (including axes).
        let p =
            lp(&[vec![2.0, 1.0], vec![1.0, 3.0], vec![1.0, 0.0]], &[8.0, 9.0, 3.0], &[2.0, 3.0]);
        let r = solve(&p, 100);
        assert_eq!(r.status, SimplexStatus::Optimal);
        // Brute force over a fine grid (coarse certificate).
        let mut best = 0.0f64;
        let steps = 300;
        for xi in 0..=steps {
            for yi in 0..=steps {
                let x = 4.0 * xi as f64 / steps as f64;
                let y = 4.0 * yi as f64 / steps as f64;
                if p.is_feasible(&[x, y], 1e-12) {
                    best = best.max(p.objective(&[x, y]));
                }
            }
        }
        assert!(r.objective >= best - 0.05, "simplex {} vs grid {}", r.objective, best);
        assert!(p.is_feasible(&r.x, 1e-9));
    }

    fn glp(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> GeneralLp {
        GeneralLp::new(Dense::from_rows(a), b.to_vec(), c.to_vec())
    }

    #[test]
    fn general_solver_reduces_to_standard_when_b_nonnegative() {
        let std_lp =
            lp(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]], &[4.0, 12.0, 18.0], &[3.0, 5.0]);
        let gen_lp =
            glp(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]], &[4.0, 12.0, 18.0], &[3.0, 5.0]);
        let rs = solve(&std_lp, 100);
        let rg = solve_general(&gen_lp, 100);
        assert_eq!(rg.status, SimplexStatus::Optimal);
        assert_eq!(rg.objective, rs.objective, "no artificials => same pivots");
        assert_eq!(rg.x, rs.x);
    }

    #[test]
    fn two_phase_handles_negative_rhs() {
        // max x + y s.t. x + y <= 8, -x - y <= -3 (i.e. x + y >= 3),
        // x <= 5: optimum 8 on the first face; origin is NOT feasible.
        let g = glp(
            &[vec![1.0, 1.0], vec![-1.0, -1.0], vec![1.0, 0.0]],
            &[8.0, -3.0, 5.0],
            &[1.0, 1.0],
        );
        assert!(!g.is_feasible(&[0.0, 0.0], 1e-9), "origin violates x+y >= 3");
        let r = solve_general(&g, 200);
        assert_eq!(r.status, SimplexStatus::Optimal);
        assert!((r.objective - 8.0).abs() < 1e-9, "{r:?}");
        assert!(g.is_feasible(&r.x, 1e-8));
    }

    #[test]
    fn two_phase_detects_infeasibility() {
        // x <= 1 and -x <= -3 (x >= 3): empty.
        let g = glp(&[vec![1.0], vec![-1.0]], &[1.0, -3.0], &[1.0]);
        let r = solve_general(&g, 200);
        assert_eq!(r.status, SimplexStatus::Infeasible);
    }

    #[test]
    fn two_phase_equality_like_band() {
        // 2 <= x + 2y <= 2 expressed as a pair of inequalities: the
        // feasible set is the segment x + 2y = 2, x,y >= 0.
        let g = glp(&[vec![1.0, 2.0], vec![-1.0, -2.0]], &[2.0, -2.0], &[3.0, 1.0]);
        let r = solve_general(&g, 200);
        assert_eq!(r.status, SimplexStatus::Optimal);
        // max 3x + y on the segment: best at x = 2, y = 0 -> 6.
        assert!((r.objective - 6.0).abs() < 1e-9, "{r:?}");
        assert!(g.is_feasible(&r.x, 1e-8));
    }

    #[test]
    fn two_phase_unbounded_after_feasibility() {
        // x >= 2 only: feasible, and max x unbounded.
        let g = glp(&[vec![-1.0]], &[-2.0], &[1.0]);
        let r = solve_general(&g, 200);
        assert_eq!(r.status, SimplexStatus::Unbounded);
    }

    #[test]
    fn tableau_structure_is_consistent() {
        let g = glp(&[vec![1.0, 1.0], vec![-1.0, 0.0]], &[4.0, -1.0], &[1.0, 2.0]);
        let (t, basis) = g.two_phase_tableau();
        assert_eq!(t.rows(), 4); // 2 constraints + z + w
        assert_eq!(t.cols(), 2 + 2 + 1 + 1); // n + m + one artificial + rhs
        assert_eq!(basis, vec![2, 4], "slack for row 0, artificial for row 1");
        // Flipped row 1: -(-1, 0) = (1, 0), slack -1, artificial +1, rhs 1.
        assert_eq!(t.get(1, 0), 1.0);
        assert_eq!(t.get(1, 3), -1.0);
        assert_eq!(t.get(1, 4), 1.0);
        assert_eq!(t.get(1, 5), 1.0);
        // w row has zero reduced cost on the basic artificial.
        assert_eq!(t.get(3, 4), 0.0);
    }

    #[test]
    fn entering_and_leaving_rules_tie_break_by_index() {
        assert_eq!(entering_column(&[-1.0, -1.0, 0.0]), Some(0));
        assert_eq!(entering_column(&[0.0, -2.0, -2.0]), Some(1));
        assert_eq!(entering_column(&[0.0, 1.0]), None);
        assert_eq!(leaving_row(&[1.0, 1.0], &[3.0, 3.0]), Some(0));
        assert_eq!(leaving_row(&[0.0, -1.0], &[1.0, 1.0]), None);
        assert_eq!(leaving_row(&[2.0, 1.0], &[4.0, 1.0]), Some(1));
    }
}
