//! Serial Gaussian elimination: LU factorisation with partial pivoting.
//!
//! The serial oracle for the parallel Gaussian-elimination routine and
//! the "best serial algorithm" term of the processor-time-product claim.

use super::dense::Dense;

/// An LU factorisation with partial pivoting: `P A = L U`, stored
/// compactly (`L` strictly below the diagonal with implicit unit
/// diagonal, `U` on and above).
#[derive(Debug, Clone)]
pub struct Lu {
    /// Compact LU storage.
    pub lu: Dense,
    /// Row permutation: `perm[k]` is the original index of pivot row `k`.
    pub perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    pub sign: f64,
}

/// Why a factorisation or solve failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuError {
    /// A pivot column was numerically zero — the matrix is singular to
    /// working precision.
    Singular,
}

/// Factor `a` (square) with partial pivoting.
///
/// # Errors
/// [`LuError::Singular`] if no acceptable pivot exists at some step.
pub fn lu_factor(a: &Dense) -> Result<Lu, LuError> {
    assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
    let n = a.rows();
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;

    for k in 0..n {
        // Partial pivot: largest |a_ik| for i >= k.
        let (piv_row, piv_val) = (k..n)
            .map(|i| (i, lu.get(i, k)))
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("no NaN pivots"))
            .expect("non-empty pivot range");
        if piv_val.abs() < 1e-12 {
            return Err(LuError::Singular);
        }
        if piv_row != k {
            lu.swap_rows(k, piv_row);
            perm.swap(k, piv_row);
            sign = -sign;
        }
        let pivot = lu.get(k, k);
        for i in k + 1..n {
            let l = lu.get(i, k) / pivot;
            lu.set(i, k, l);
            for j in k + 1..n {
                let v = lu.get(i, j) - l * lu.get(k, j);
                lu.set(i, j, v);
            }
        }
    }
    Ok(Lu { lu, perm, sign })
}

impl Lu {
    /// Solve `A x = b` using the factorisation.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n);
        // Forward substitution on permuted b (L has unit diagonal).
        let mut y: Vec<f64> = self.perm.iter().map(|&pi| b[pi]).collect();
        for i in 1..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.lu.get(i, j) * y[j];
            }
            y[i] = s;
        }
        // Back substitution with U.
        let mut x = y;
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s -= self.lu.get(i, j) * x[j];
            }
            x[i] = s / self.lu.get(i, i);
        }
        x
    }

    /// Determinant of the original matrix.
    #[must_use]
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).map(|i| self.lu.get(i, i)).product::<f64>() * self.sign
    }

    /// Reconstruct `P A` as `L * U` (test helper).
    #[must_use]
    pub fn reconstruct(&self) -> Dense {
        let n = self.lu.rows();
        let l = Dense::from_fn(n, n, |i, j| match i.cmp(&j) {
            std::cmp::Ordering::Greater => self.lu.get(i, j),
            std::cmp::Ordering::Equal => 1.0,
            std::cmp::Ordering::Less => 0.0,
        });
        let u = Dense::from_fn(n, n, |i, j| if j >= i { self.lu.get(i, j) } else { 0.0 });
        l.matmul(&u)
    }

    /// The permuted original rows `P A` for comparison with
    /// [`Lu::reconstruct`] (test helper; takes the original matrix).
    #[must_use]
    pub fn permuted(&self, a: &Dense) -> Dense {
        Dense::from_fn(a.rows(), a.cols(), |i, j| a.get(self.perm[i], j))
    }
}

/// Convenience: factor and solve in one call.
///
/// # Errors
/// [`LuError::Singular`] for singular systems.
pub fn solve(a: &Dense, b: &[f64]) -> Result<Vec<f64>, LuError> {
    Ok(lu_factor(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wilkinsonish(n: usize) -> Dense {
        // A well-conditioned but pivot-requiring test matrix.
        Dense::from_fn(n, n, |i, j| {
            if i == j {
                0.1 + (i as f64) * 0.01
            } else {
                1.0 / ((i + 2 * j + 2) as f64)
            }
        })
    }

    #[test]
    fn factor_reconstructs_pa() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            let a = wilkinsonish(n);
            let f = lu_factor(&a).expect("nonsingular");
            let pa = f.permuted(&a);
            let lu = f.reconstruct();
            assert!(pa.max_abs_diff(&lu) < 1e-10, "n = {n}: residual {}", pa.max_abs_diff(&lu));
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        for n in [1usize, 3, 7, 16] {
            let a = Dense::from_fn(n, n, |i, j| {
                if i == j {
                    (n as f64) + 1.0
                } else {
                    ((i * 7 + j * 3) % 5) as f64 * 0.25
                }
            });
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let b = a.matvec(&x_true);
            let x = solve(&a, &b).expect("diag dominant");
            for (xs, xt) in x.iter().zip(&x_true) {
                assert!((xs - xt).abs() < 1e-9, "n = {n}");
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Dense::from_rows(&[vec![0.0, 1.0], vec![2.0, 0.0]]);
        let x = solve(&a, &[3.0, 4.0]).expect("nonsingular despite zero pivot position");
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Dense::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(lu_factor(&a).unwrap_err(), LuError::Singular);
    }

    #[test]
    fn determinant_of_permutation_heavy_matrix() {
        // Anti-diagonal identity: det = sign of the reversal permutation.
        let n = 4;
        let a = Dense::from_fn(n, n, |i, j| if i + j == n - 1 { 1.0 } else { 0.0 });
        let f = lu_factor(&a).expect("nonsingular");
        assert!((f.det() - 1.0).abs() < 1e-12, "reversal of 4 has sign +1");
        let det2 = lu_factor(&Dense::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0]])).unwrap().det();
        assert!((det2 - 6.0).abs() < 1e-12);
    }
}
