//! Fast Fourier Transform on the hypercube.
//!
//! The corpus around the paper devotes two reports to cube FFTs
//! (Johnsson, Ho, Jacquemin & Ruttenberg, *Computing Fast Fourier
//! Transforms on Boolean Cubes and Related Networks* and the systolic
//! follow-up, both abstracted in the source booklet): with `n = 2^q`
//! elements block-distributed over `p = 2^d` nodes, the first `d`
//! butterfly stages pair elements on cube **neighbours** (the stage's
//! stride selects one address bit — high bits are node bits, low bits
//! local), so each of them is one pairwise chunk exchange; the remaining
//! `q - d` stages are purely local. One blocked routed phase at the end
//! undoes the bit-reversal.
//!
//! Decimation-in-frequency with natural input; `fft` returns natural
//! order (the bit-reversal is part of the cost). The butterfly
//! arithmetic is identical for every machine size, so results are
//! bit-identical across `p` (tested).

use vmp_core::prelude::*;
use vmp_core::scan::route_permutation;
use vmp_hypercube::collective::exchange;
use vmp_hypercube::machine::Hypercube;

/// A complex number (re, im). Deliberately minimal — just what the FFT
/// butterflies need.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

#[allow(clippy::should_implement_trait)]
impl Cplx {
    /// Construct from parts.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        Cplx { re, im }
    }

    /// Zero.
    #[must_use]
    pub fn zero() -> Self {
        Cplx::new(0.0, 0.0)
    }

    /// `e^{i theta}`.
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Cplx::new(theta.cos(), theta.sin())
    }

    /// Complex addition.
    #[must_use]
    pub fn add(self, o: Cplx) -> Cplx {
        Cplx::new(self.re + o.re, self.im + o.im)
    }

    /// Complex subtraction.
    #[must_use]
    pub fn sub(self, o: Cplx) -> Cplx {
        Cplx::new(self.re - o.re, self.im - o.im)
    }

    /// Complex multiplication.
    #[must_use]
    pub fn mul(self, o: Cplx) -> Cplx {
        Cplx::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }

    /// Conjugate.
    #[must_use]
    pub fn conj(self) -> Cplx {
        Cplx::new(self.re, -self.im)
    }

    /// Scale by a real.
    #[must_use]
    pub fn scale(self, s: f64) -> Cplx {
        Cplx::new(self.re * s, self.im * s)
    }

    /// Magnitude.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

/// Forward FFT of a block-distributed complex vector (`n` a power of
/// two, `n >= p`). Returns the spectrum in natural order.
///
/// # Panics
/// Panics unless the vector is linear, block-chunked, with power-of-two
/// length at least `p`.
#[must_use]
pub fn fft(hc: &mut Hypercube, v: &DistVector<Cplx>) -> DistVector<Cplx> {
    fft_impl(hc, v, false)
}

/// Inverse FFT (normalised by `1/n`).
#[must_use]
pub fn ifft(hc: &mut Hypercube, v: &DistVector<Cplx>) -> DistVector<Cplx> {
    fft_impl(hc, v, true)
}

fn fft_impl(hc: &mut Hypercube, v: &DistVector<Cplx>, inverse: bool) -> DistVector<Cplx> {
    let layout = v.layout().clone();
    assert!(matches!(layout.embedding(), VecEmbedding::Linear), "FFT expects the linear embedding");
    assert_eq!(layout.dist().kind(), Dist::Block, "FFT expects block chunking");
    let n = layout.n();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let p = layout.grid().p();
    assert!(n >= p, "need at least one element per node");
    let m = n / p; // local chunk (block distribution divides exactly)
    for node in 0..p {
        debug_assert_eq!(layout.local_len(node), m);
    }
    let q = n.trailing_zeros() as usize;
    let local_bits = m.trailing_zeros() as usize;
    let sign = if inverse { 1.0 } else { -1.0 };

    let mut chunks: Vec<Vec<Cplx>> = v.chunks().to_nested();

    // DIF stages, stride t = 2^s from n/2 down to 1.
    for s in (0..q).rev() {
        let t = 1usize << s;
        if t >= m {
            // Node-level stage: the stride selects one node bit; the
            // partner is a cube neighbour, so the whole stage is one
            // pairwise chunk exchange.
            let cube_dim = (s - local_bits) as u32;
            let node_bit = 1usize << cube_dim;
            let mut partners = exchange(hc, &chunks, cube_dim);
            for node in 0..p {
                let partner_chunk = std::mem::take(&mut partners[node]);
                let lower = node & node_bit == 0;
                let chunk = &mut chunks[node];
                for (local, x) in chunk.iter_mut().enumerate() {
                    let g = node * m + local; // my global index
                    let other = partner_chunk[local];
                    if lower {
                        *x = x.add(other);
                    } else {
                        // I hold the "b" side: partner's a, my b.
                        let j = (g & (t - 1)) as f64;
                        let w = Cplx::cis(sign * std::f64::consts::PI * j / t as f64);
                        *x = other.sub(*x).mul(w);
                    }
                }
            }
            hc.charge_flops(10 * m);
        } else {
            // Local stage.
            for (node, chunk) in chunks.iter_mut().enumerate() {
                let base = node * m;
                let mut blk = 0usize;
                while blk < m {
                    for off in 0..t {
                        let ia = blk + off;
                        let ib = ia + t;
                        let a = chunk[ia];
                        let b = chunk[ib];
                        let g = base + ia;
                        let j = (g & (t - 1)) as f64;
                        let w = Cplx::cis(sign * std::f64::consts::PI * j / t as f64);
                        chunk[ia] = a.add(b);
                        chunk[ib] = a.sub(b).mul(w);
                    }
                    blk += 2 * t;
                }
            }
            hc.charge_flops(10 * m);
        }
    }

    // Undo the bit-reversal with one blocked routed permutation.
    let scrambled = DistVector::from_chunks(layout.clone(), chunks);
    let reversed = route_permutation(hc, &scrambled, move |i| Some(bit_reverse(i, q)), None);

    if inverse {
        reversed.map(hc, move |_, x| x.scale(1.0 / n as f64))
    } else {
        reversed
    }
}

/// Reverse the low `bits` bits of `i`.
#[must_use]
pub fn bit_reverse(i: usize, bits: usize) -> usize {
    let mut out = 0usize;
    for b in 0..bits {
        out |= ((i >> b) & 1) << (bits - 1 - b);
    }
    out
}

/// Naive `O(n^2)` DFT oracle.
#[must_use]
pub fn dft_serial(x: &[Cplx], inverse: bool) -> Vec<Cplx> {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Cplx::zero();
        for (j, &xj) in x.iter().enumerate() {
            let w = Cplx::cis(sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64);
            acc = acc.add(xj.mul(w));
        }
        if inverse {
            acc = acc.scale(1.0 / n as f64);
        }
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn dist(x: &[Cplx], dim: u32) -> (Hypercube, DistVector<Cplx>) {
        let grid = ProcGrid::square(Cube::new(dim));
        let layout = VectorLayout::linear(x.len(), grid, Dist::Block);
        (Hypercube::new(dim, CostModel::cm2()), DistVector::from_slice(layout, x))
    }

    fn signal(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|i| Cplx::new(((i * 37) % 11) as f64 - 5.0, ((i * 13) % 7) as f64 - 3.0))
            .collect()
    }

    fn close(a: &[Cplx], b: &[Cplx], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(x.sub(*y).abs() < tol, "element {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn bit_reverse_reverses() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        for i in 0..64 {
            assert_eq!(bit_reverse(bit_reverse(i, 6), 6), i);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        for (n, dim) in [(8usize, 0u32), (16, 2), (64, 3), (128, 4), (256, 5)] {
            let x = signal(n);
            let expect = dft_serial(&x, false);
            let (mut hc, v) = dist(&x, dim);
            let got = fft(&mut hc, &v).to_dense();
            close(&got, &expect, 1e-8 * n as f64);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 128;
        let x = signal(n);
        let (mut hc, v) = dist(&x, 3);
        let spectrum = fft(&mut hc, &v);
        let back = ifft(&mut hc, &spectrum).to_dense();
        close(&back, &x, 1e-10);
    }

    #[test]
    fn delta_transforms_to_constant() {
        let n = 32;
        let mut x = vec![Cplx::zero(); n];
        x[0] = Cplx::new(1.0, 0.0);
        let (mut hc, v) = dist(&x, 2);
        let spec = fft(&mut hc, &v).to_dense();
        for s in &spec {
            assert!(s.sub(Cplx::new(1.0, 0.0)).abs() < 1e-12, "flat spectrum");
        }
    }

    #[test]
    fn pure_tone_transforms_to_spike() {
        let n = 64;
        let k0 = 5usize;
        let x: Vec<Cplx> = (0..n)
            .map(|i| Cplx::cis(2.0 * std::f64::consts::PI * (k0 * i) as f64 / n as f64))
            .collect();
        let (mut hc, v) = dist(&x, 3);
        let spec = fft(&mut hc, &v).to_dense();
        for (k, s) in spec.iter().enumerate() {
            if k == k0 {
                assert!((s.abs() - n as f64).abs() < 1e-8, "spike at {k0}");
            } else {
                assert!(s.abs() < 1e-8, "silence at {k}: {}", s.abs());
            }
        }
    }

    #[test]
    fn results_are_bit_identical_across_machine_sizes() {
        let n = 64;
        let x = signal(n);
        let mut results = Vec::new();
        for dim in [0u32, 1, 3, 5, 6] {
            let (mut hc, v) = dist(&x, dim);
            results.push(fft(&mut hc, &v).to_dense());
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0], "same butterflies, same floats");
        }
    }

    #[test]
    fn linearity() {
        let n = 32;
        let x = signal(n);
        let y: Vec<Cplx> = signal(n).iter().map(|c| c.mul(Cplx::new(0.0, 1.0))).collect();
        let sum: Vec<Cplx> = x.iter().zip(&y).map(|(a, b)| a.add(*b)).collect();
        let (mut hc, vx) = dist(&x, 2);
        let (_, vy) = dist(&y, 2);
        let (_, vs) = dist(&sum, 2);
        let fx = fft(&mut hc, &vx).to_dense();
        let fy = fft(&mut hc, &vy).to_dense();
        let fs = fft(&mut hc, &vs).to_dense();
        for i in 0..n {
            assert!(fs[i].sub(fx[i].add(fy[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn node_stages_use_one_exchange_each() {
        // n = 256 on p = 16: 4 node stages (one chunk exchange each,
        // distance-1 partners) + the bit-reversal route.
        let n = 256;
        let x = signal(n);
        let (mut hc, v) = dist(&x, 4);
        let _ = fft(&mut hc, &v);
        // 4 exchanges (1 superstep each: partners are neighbours) plus
        // <= 4 supersteps of bit-reversal routing.
        assert!(hc.counters().message_steps <= 4 + 4, "{} supersteps", hc.counters().message_steps);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let x = signal(12);
        let (mut hc, v) = dist(&x, 1);
        let _ = fft(&mut hc, &v);
    }
}
