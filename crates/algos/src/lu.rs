//! Distributed LU factorisation — Gaussian elimination that keeps its
//! multipliers.
//!
//! [`crate::gauss`] eliminates an augmented system and discards the
//! multipliers; factoring `P A = L U` once and reusing the factors is
//! what a library user wants when many right-hand sides arrive over
//! time. The elimination loop is the same primitive sequence (pivot
//! search reduce, row-swap extract/inserts, pivot row/column fan-out,
//! ranged rank-1 update) — the only change is that column `k` stores the
//! multipliers instead of being zeroed.

use vmp_core::elem::{ArgMaxAbs, Loc, Sum};
use vmp_core::prelude::*;
use vmp_core::primitives;
use vmp_hypercube::machine::Hypercube;

use crate::gauss::{GeError, GE_EPS};
use crate::serial::Dense;

/// Componentwise 3-sum (shared with back substitution).
#[derive(Debug, Clone, Copy, Default)]
struct Sum3;

impl vmp_core::elem::ReduceOp<(f64, f64, f64)> for Sum3 {
    fn identity(&self) -> (f64, f64, f64) {
        (0.0, 0.0, 0.0)
    }
    fn combine(&self, a: (f64, f64, f64), b: (f64, f64, f64)) -> (f64, f64, f64) {
        (a.0 + b.0, a.1 + b.1, a.2 + b.2)
    }
}

/// A distributed LU factorisation with partial pivoting: `P A = L U`,
/// stored compactly (unit-diagonal `L` strictly below, `U` on and
/// above), plus the host-side permutation record.
#[derive(Debug, Clone)]
pub struct DistLu {
    /// Compact factors, distributed like the input.
    pub lu: DistMatrix<f64>,
    /// `perm[k]` = original index of pivot row `k`.
    pub perm: Vec<usize>,
    /// Permutation sign.
    pub sign: f64,
    /// Product of pivots times `sign` — the determinant.
    pub det: f64,
}

/// Factor a square distributed matrix with partial pivoting.
///
/// # Errors
/// [`GeError::Singular`] if no acceptable pivot exists at some step.
pub fn lu_factor_dist(hc: &mut Hypercube, a: &DistMatrix<f64>) -> Result<DistLu, GeError> {
    let n = a.shape().rows;
    assert_eq!(a.shape().cols, n, "LU requires a square matrix");
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0f64;
    let mut det = 1.0f64;

    for k in 0..n {
        // Pivot search over rows k..n of column k.
        let col = primitives::extract(hc, &lu, Axis::Col, k);
        let piv = col.reduce_lifted(hc, ArgMaxAbs, |i, v| {
            if i >= k {
                Loc::new(v, i)
            } else {
                Loc::new(0.0, usize::MAX)
            }
        });
        if piv.index == usize::MAX || piv.value.abs() < GE_EPS {
            return Err(GeError::Singular);
        }
        if piv.index != k {
            let rk = primitives::extract(hc, &lu, Axis::Row, k);
            let rp = primitives::extract(hc, &lu, Axis::Row, piv.index);
            primitives::insert(hc, &mut lu, Axis::Row, k, &rp);
            primitives::insert(hc, &mut lu, Axis::Row, piv.index, &rk);
            perm.swap(k, piv.index);
            sign = -sign;
        }
        let akk = piv.value;
        det *= akk;

        // Multipliers into column k (rows below the diagonal).
        let col_k = primitives::extract_replicated(hc, &lu, Axis::Col, k);
        let multipliers = col_k.map(hc, move |i, v| if i > k { v / akk } else { v });
        primitives::insert(hc, &mut lu, Axis::Col, k, &multipliers);

        // Trailing update with the stored multipliers.
        let row_k = primitives::extract_replicated(hc, &lu, Axis::Row, k);
        lu.rank1_update_ranged(hc, &multipliers, &row_k, k + 1..n, k + 1..n, |_, _, a, m, u| {
            a - m * u
        });
    }
    Ok(DistLu { lu, perm, sign, det: det * sign })
}

impl DistLu {
    /// Solve `A x = b` with the stored factors: permute, forward-, then
    /// back-substitute — `2n` row extractions and fused reductions, no
    /// re-elimination.
    #[must_use]
    pub fn solve(&self, hc: &mut Hypercube, b: &[f64]) -> Vec<f64> {
        let n = self.lu.shape().rows;
        assert_eq!(b.len(), n, "rhs length");
        let pb: Vec<f64> = self.perm.iter().map(|&pi| b[pi]).collect();

        let layout = VectorLayout::aligned(
            n,
            self.lu.layout().grid().clone(),
            Axis::Row,
            Placement::Replicated,
            self.lu.layout().cols().kind(),
        );
        // Forward substitution: y_k = pb_k - sum_{j<k} L_kj y_j.
        let mut y = DistVector::constant(layout.clone(), 0.0f64);
        for k in 0..n {
            let row = primitives::extract_replicated(hc, &self.lu, Axis::Row, k);
            let dot = row
                .zip(hc, &y, move |j, l, yj| if j < k { l * yj } else { 0.0 })
                .reduce_all(hc, Sum);
            let yk = pb[k] - dot;
            y = y.map(hc, move |j, v| if j == k { yk } else { v });
        }
        // Back substitution: x_k = (y_k - sum_{j>k} U_kj x_j) / U_kk.
        let mut x = DistVector::constant(layout, 0.0f64);
        for k in (0..n).rev() {
            let row = primitives::extract_replicated(hc, &self.lu, Axis::Row, k);
            let yk = y.reduce_lifted(hc, Sum, move |j, v| if j == k { v } else { 0.0 });
            let triple = row.zip(hc, &x, move |j, u, xj| {
                (if j > k { u * xj } else { 0.0 }, 0.0, if j == k { u } else { 0.0 })
            });
            let (dot, _, ukk) = triple.reduce_all(hc, Sum3);
            let xk = (yk - dot) / ukk;
            x = x.map(hc, move |j, v| if j == k { xk } else { v });
        }
        x.to_dense()
    }

    /// Host-side reconstruction `L * U` (test/diagnostic helper).
    #[must_use]
    pub fn reconstruct(&self) -> Dense {
        let n = self.lu.shape().rows;
        let lu = self.lu.to_dense();
        let l = Dense::from_fn(n, n, |i, j| match i.cmp(&j) {
            std::cmp::Ordering::Greater => lu[i][j],
            std::cmp::Ordering::Equal => 1.0,
            std::cmp::Ordering::Less => 0.0,
        });
        let u = Dense::from_fn(n, n, |i, j| if j >= i { lu[i][j] } else { 0.0 });
        l.matmul(&u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use crate::workloads;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn dist(a: &Dense, dim: u32) -> (Hypercube, DistMatrix<f64>) {
        let grid = ProcGrid::square(Cube::new(dim));
        let m = DistMatrix::from_fn(
            MatrixLayout::cyclic(MatShape::new(a.rows(), a.cols()), grid),
            |i, j| a.get(i, j),
        );
        (Hypercube::new(dim, CostModel::cm2()), m)
    }

    #[test]
    fn factorisation_reconstructs_pa() {
        for (n, dim) in [(4usize, 0u32), (9, 2), (16, 4), (21, 4)] {
            let a = workloads::random_matrix(n, n, n as u64);
            let (mut hc, am) = dist(&a, dim);
            let f = lu_factor_dist(&mut hc, &am).expect("a.s. nonsingular");
            let pa = Dense::from_fn(n, n, |i, j| a.get(f.perm[i], j));
            let rec = f.reconstruct();
            assert!(
                pa.max_abs_diff(&rec) < 1e-9,
                "n = {n} dim = {dim}: residual {}",
                pa.max_abs_diff(&rec)
            );
        }
    }

    #[test]
    fn solve_reuses_factors_for_many_rhs() {
        let n = 14;
        let a = workloads::random_matrix(n, n, 3);
        let (mut hc, am) = dist(&a, 4);
        let f = lu_factor_dist(&mut hc, &am).expect("nonsingular");
        let t_factor = hc.elapsed_us();
        for seed in 0..4u64 {
            let b = workloads::random_vector(n, 50 + seed);
            let x = f.solve(&mut hc, &b);
            let ax = a.matvec(&x);
            for (lhs, rhs) in ax.iter().zip(&b) {
                assert!((lhs - rhs).abs() < 1e-8, "seed {seed}");
            }
        }
        // At small n both phases are start-up dominated, so don't assert
        // a wall ratio here; just check the factor phase was non-trivial
        // and every solve reused it (no re-elimination => no row swaps
        // can have occurred after factoring).
        assert!(t_factor > 0.0);
        assert!(hc.elapsed_us() > t_factor);
    }

    #[test]
    fn solves_amortise_at_scale() {
        // In the flop-dominated regime the triangular solves are O(n^2)
        // against the factorisation's O(n^3): re-factoring for each of
        // 4 rhs must cost clearly more than factoring once + 4 solves.
        let n = 96;
        let a = workloads::random_matrix(n, n, 4);
        let bs: Vec<Vec<f64>> = (0..4).map(|k| workloads::random_vector(n, k)).collect();

        let (mut hc_once, am) = dist(&a, 2);
        let f = lu_factor_dist(&mut hc_once, &am).expect("nonsingular");
        for b in &bs {
            let _ = f.solve(&mut hc_once, b);
        }

        let mut refactor_total = 0.0;
        for b in &bs {
            let (mut hc_re, am2) = dist(&a, 2);
            let f2 = lu_factor_dist(&mut hc_re, &am2).expect("nonsingular");
            let _ = f2.solve(&mut hc_re, b);
            refactor_total += hc_re.elapsed_us();
        }
        assert!(
            hc_once.elapsed_us() < 0.7 * refactor_total,
            "factor-once {} vs refactor-each {}",
            hc_once.elapsed_us(),
            refactor_total
        );
    }

    #[test]
    fn determinant_matches_serial() {
        for n in [2usize, 5, 10] {
            let a = workloads::random_matrix(n, n, 17 + n as u64);
            let (mut hc, am) = dist(&a, 2);
            let f = lu_factor_dist(&mut hc, &am).expect("nonsingular");
            let serial = serial::lu_factor(&a).expect("nonsingular");
            let sd = serial.det();
            assert!((f.det - sd).abs() < 1e-9 * (1.0 + sd.abs()), "n = {n}: {} vs {}", f.det, sd);
        }
    }

    #[test]
    fn pivoting_engages_and_stays_accurate() {
        let n = 10;
        let a = workloads::pivot_stress_matrix(n, 2);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let b = a.matvec(&x_true);
        let (mut hc, am) = dist(&a, 3);
        let f = lu_factor_dist(&mut hc, &am).expect("nonsingular");
        assert!(f.sign != 0.0);
        assert!(f.perm != (0..n).collect::<Vec<_>>(), "swaps happened");
        let x = f.solve(&mut hc, &b);
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn singular_detected() {
        let a = Dense::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let (mut hc, am) = dist(&a, 1);
        assert_eq!(lu_factor_dist(&mut hc, &am).unwrap_err(), GeError::Singular);
    }
}
