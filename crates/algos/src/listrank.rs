//! List ranking by pointer jumping.
//!
//! The image-analysis reports in the booklet (Lim, Agrawal & Nekludova's
//! `O(log N)` connected-components labelling) are built on pointer
//! jumping: every element of a linked list learns its distance to the
//! tail in `ceil(lg n)` rounds of "follow your successor's pointer".
//! Each round is two indexed gathers ([`vmp_core::indexing`]) and an
//! elementwise combine — a pure exercise of the irregular-communication
//! machinery on top of the same machine.

use vmp_core::indexing::gather_by_index;
use vmp_core::prelude::*;
use vmp_hypercube::machine::Hypercube;

/// Rank every element of a linked list: `next[i]` is the successor of
/// `i`, and the tail points to itself. Returns the number of hops from
/// each element to the tail (tail = 0).
///
/// # Panics
/// Panics if `next` is not a linear block-distributed vector or contains
/// out-of-range successors.
#[must_use]
pub fn list_rank(hc: &mut Hypercube, next: &DistVector<usize>) -> DistVector<usize> {
    let n = next.n();
    let mut rank = next.map(hc, |i, succ| usize::from(succ != i));
    let mut jump = next.clone();
    let mut span = 1usize;
    while span < n {
        // rank[i] += rank[jump[i]]; jump[i] = jump[jump[i]].
        let r_at = gather_by_index(hc, &rank, &jump);
        let j_at = gather_by_index(hc, &jump, &jump);
        rank = rank.zip(hc, &r_at, |_, a, b| a + b);
        jump = j_at;
        span <<= 1;
    }
    rank
}

/// Serial oracle.
///
/// # Panics
/// Panics on malformed lists (no tail reachable within `n` hops).
#[must_use]
pub fn list_rank_serial(next: &[usize]) -> Vec<usize> {
    let n = next.len();
    let mut rank = vec![0usize; n];
    for i in 0..n {
        let mut cur = i;
        let mut hops = 0usize;
        while next[cur] != cur {
            cur = next[cur];
            hops += 1;
            assert!(hops <= n, "no tail reachable from {i}");
        }
        rank[i] = hops;
    }
    rank
}

/// A random list over `0..n` as a `next` array (single chain), plus the
/// element order from head to tail.
#[must_use]
pub fn random_list(n: usize, seed: u64) -> Vec<usize> {
    // A pseudo-random permutation of 0..n defines the chain order.
    let mut order: Vec<usize> = (0..n).collect();
    let mut s = seed;
    for i in (1..n).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    let mut next = vec![0usize; n];
    for w in order.windows(2) {
        next[w[0]] = w[1];
    }
    let tail = *order.last().expect("nonempty");
    next[tail] = tail;
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_hypercube::cost::CostModel;
    use vmp_hypercube::topology::Cube;

    fn dist(next: &[usize], dim: u32) -> (Hypercube, DistVector<usize>) {
        let grid = ProcGrid::square(Cube::new(dim));
        let layout = VectorLayout::linear(next.len(), grid, Dist::Block);
        (Hypercube::new(dim, CostModel::cm2()), DistVector::from_slice(layout, next))
    }

    #[test]
    fn ranks_a_straight_chain() {
        // 0 -> 1 -> 2 -> 3 (tail).
        let next = vec![1usize, 2, 3, 3];
        let (mut hc, v) = dist(&next, 2);
        let ranks = list_rank(&mut hc, &v).to_dense();
        assert_eq!(ranks, vec![3, 2, 1, 0]);
    }

    #[test]
    fn matches_serial_on_random_lists() {
        for (n, dim) in [(1usize, 0u32), (7, 2), (32, 4), (100, 4), (257, 5)] {
            let next = random_list(n, n as u64);
            let serial = list_rank_serial(&next);
            let (mut hc, v) = dist(&next, dim);
            let par = list_rank(&mut hc, &v).to_dense();
            assert_eq!(par, serial, "n = {n} dim = {dim}");
        }
    }

    #[test]
    fn takes_logarithmically_many_rounds() {
        let n = 512usize;
        let next = random_list(n, 3);
        let (mut hc, v) = dist(&next, 4);
        let _ = list_rank(&mut hc, &v);
        // 10 pointer-jump rounds (lg 512 = 9, loop runs while span < n),
        // each 2 gathers x 2 routed phases x <= 4 dims, plus assembly.
        assert!(
            hc.counters().message_steps <= 10 * 2 * 2 * 4,
            "{} supersteps",
            hc.counters().message_steps
        );
    }

    #[test]
    fn every_element_of_a_cycle_free_list_is_ranked_once() {
        let n = 64;
        let next = random_list(n, 9);
        let (mut hc, v) = dist(&next, 3);
        let ranks = list_rank(&mut hc, &v).to_dense();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "ranks are a permutation of 0..n");
    }
}
