//! Property-based tests of the machine substrate: random traffic through
//! the routers, random subcube collectives against serial folds.

// Proptest sweeps are far too slow under Miri's interpreter; the
// dedicated Miri CI job covers the library's unsafe/aliasing surface
// via the unit tests instead (see .github/workflows/ci.yml).
#![cfg(not(miri))]

use proptest::prelude::*;

use vmp_hypercube::collective::{
    allgather, allreduce, alltoall, broadcast, gather, reduce, scan_inclusive, scatter,
};
use vmp_hypercube::cost::CostModel;
use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::route::{route_blocks, Block};
use vmp_hypercube::router::{route_elements, ElemMsg};

fn machine(dim: u32) -> Hypercube {
    Hypercube::new(dim, CostModel::unit())
}

/// A strategy for a dimension subset of a `dim`-cube, as a bitmask.
fn dims_strategy(dim: u32) -> impl Strategy<Value = Vec<u32>> {
    (0u32..(1 << dim.max(1)))
        .prop_map(move |mask| (0..dim).filter(|&d| (mask >> d) & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_router_delivers_all_traffic(
        dim in 0u32..=6,
        seed in 0u64..10_000,
    ) {
        let mut hc = machine(dim);
        let p = hc.p();
        // Pseudo-random traffic: each node posts 0..4 blocks.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        let mut expected: Vec<Vec<(u64, Vec<u64>)>> = vec![Vec::new(); p];
        let mut outgoing: Vec<Vec<Block<u64>>> = vec![Vec::new(); p];
        let mut tag = 0u64;
        for src in 0..p {
            for _ in 0..(next() % 4) {
                let dst = next() % p;
                let len = next() % 5;
                let data: Vec<u64> = (0..len).map(|_| next() as u64).collect();
                expected[dst].push((tag, data.clone()));
                outgoing[src].push(Block::new(dst, tag, data));
                tag += 1;
            }
        }
        let arrived = route_blocks(&mut hc, outgoing);
        for node in 0..p {
            expected[node].sort_by_key(|(t, _)| *t);
            let got: Vec<(u64, Vec<u64>)> =
                arrived[node].iter().map(|b| (b.tag, b.data.clone())).collect();
            prop_assert_eq!(got, expected[node].clone(), "node {}", node);
        }
    }

    #[test]
    fn element_router_agrees_with_blocked_router(
        dim in 1u32..=5,
        seed in 0u64..10_000,
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (s >> 33) as usize
        };
        let p = 1usize << dim;
        let traffic: Vec<(usize, usize, u64)> = (0..p * 2)
            .map(|k| (next() % p, next() % p, k as u64))
            .collect();

        let mut hc1 = machine(dim);
        let out1: Vec<Vec<ElemMsg<u64>>> = (0..p)
            .map(|n| {
                traffic
                    .iter()
                    .filter(|(src, _, _)| *src == n)
                    .map(|&(_, dst, v)| ElemMsg::new(dst, v, v))
                    .collect()
            })
            .collect();
        let (arr1, _) = route_elements(&mut hc1, out1);

        let mut hc2 = machine(dim);
        let out2: Vec<Vec<Block<u64>>> = (0..p)
            .map(|n| {
                traffic
                    .iter()
                    .filter(|(src, _, _)| *src == n)
                    .map(|&(_, dst, v)| Block::new(dst, v, vec![v]))
                    .collect()
            })
            .collect();
        let arr2 = route_blocks(&mut hc2, out2);

        for node in 0..p {
            let a: Vec<u64> = arr1[node].iter().map(|m| m.val).collect();
            let b: Vec<u64> = arr2[node].iter().map(|bl| bl.data[0]).collect();
            prop_assert_eq!(a, b, "node {}", node);
        }
    }

    #[test]
    fn collectives_match_serial_folds_on_random_subcubes(
        dim in 0u32..=5,
        mask_seed in 0u32..1024,
        len in 0usize..6,
    ) {
        let dims: Vec<u32> = (0..dim).filter(|&d| (mask_seed >> d) & 1 == 1).collect();
        let mut hc = machine(dim);
        let cube = hc.cube();
        let p = cube.nodes();
        let base: Vec<Vec<i64>> =
            (0..p).map(|n| (0..len).map(|i| (n * 31 + i * 7) as i64 - 40).collect()).collect();
        let submask = cube.dims_mask(&dims);

        // allreduce: every node gets the subcube-wide elementwise sum.
        let mut data = base.clone();
        allreduce(&mut hc, &mut data, &dims, |a, b| a + b);
        for node in 0..p {
            for i in 0..len {
                let expect: i64 = cube
                    .subcube_nodes(node, &dims)
                    .map(|m| base[m][i])
                    .sum();
                prop_assert_eq!(data[node][i], expect, "allreduce node {} elem {}", node, i);
            }
        }

        // reduce to coordinate 0 within each subcube.
        let mut data = base.clone();
        reduce(&mut hc, &mut data, &dims, 0, |a, b| a + b);
        for node in 0..p {
            if node & submask == 0 {
                for i in 0..len {
                    let expect: i64 = cube.subcube_nodes(node, &dims).map(|m| base[m][i]).sum();
                    prop_assert_eq!(data[node][i], expect);
                }
            } else {
                prop_assert!(data[node].is_empty());
            }
        }

        // broadcast from coordinate 0.
        let mut data = base.clone();
        broadcast(&mut hc, &mut data, &dims, 0);
        for node in 0..p {
            let root = node & !submask;
            prop_assert_eq!(&data[node], &base[root], "broadcast node {}", node);
        }

        // scan (inclusive) in coordinate order.
        let mut data = base.clone();
        scan_inclusive(&mut hc, &mut data, &dims, |a, b| a + b);
        for node in 0..p {
            let my_coord = cube.extract_coords(node, &dims);
            for i in 0..len {
                let expect: i64 = cube
                    .subcube_nodes(node, &dims)
                    .filter(|&m| cube.extract_coords(m, &dims) <= my_coord)
                    .map(|m| base[m][i])
                    .sum();
                prop_assert_eq!(data[node][i], expect, "scan node {} elem {}", node, i);
            }
        }
    }

    #[test]
    fn gather_scatter_allgather_roundtrip(
        dim in 0u32..=5,
        mask_seed in 0u32..1024,
        len in 0usize..5,
    ) {
        let dims: Vec<u32> = (0..dim).filter(|&d| (mask_seed >> d) & 1 == 1).collect();
        let mut hc = machine(dim);
        let cube = hc.cube();
        let p = cube.nodes();
        let base: Vec<Vec<u32>> =
            (0..p).map(|n| (0..len).map(|i| (n * 100 + i) as u32).collect()).collect();

        // allgather: concatenation in coordinate order, identical within
        // a subcube.
        let mut data = base.clone();
        allgather(&mut hc, &mut data, &dims);
        for node in 0..p {
            let mut members: Vec<usize> = cube.subcube_nodes(node, &dims).collect();
            members.sort_by_key(|&m| cube.extract_coords(m, &dims));
            let expect: Vec<u32> = members.iter().flat_map(|&m| base[m].clone()).collect();
            prop_assert_eq!(&data[node], &expect, "allgather node {}", node);
        }

        // gather then scatter returns everyone's chunk.
        let mut data = base.clone();
        gather(&mut hc, &mut data, &dims);
        let k = dims.len();
        let segments: Vec<Vec<Vec<u32>>> = (0..p)
            .map(|node| {
                if cube.extract_coords(node, &dims) == 0 {
                    // Split the gathered buffer back into per-coordinate
                    // chunks of length `len`.
                    (0..(1usize << k))
                        .map(|c| data[node][c * len..(c + 1) * len].to_vec())
                        .collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let spread = scatter(&mut hc, segments, &dims);
        for node in 0..p {
            prop_assert_eq!(&spread[node], &base[node], "roundtrip node {}", node);
        }
    }

    #[test]
    fn alltoall_is_a_block_transpose(
        dim in 0u32..=4,
        mask_seed in 0u32..256,
        blk in 0usize..4,
    ) {
        let dims: Vec<u32> = (0..dim).filter(|&d| (mask_seed >> d) & 1 == 1).collect();
        let k = dims.len();
        let mut hc = machine(dim);
        let cube = hc.cube();
        let p = cube.nodes();
        let send: Vec<Vec<Vec<u32>>> = (0..p)
            .map(|s| {
                (0..(1usize << k))
                    .map(|c| (0..blk).map(|e| (s * 1000 + c * 10 + e) as u32).collect())
                    .collect()
            })
            .collect();
        let recv = alltoall(&mut hc, send, &dims);
        for node in 0..p {
            let my_c = cube.extract_coords(node, &dims);
            for src_c in 0..(1usize << k) {
                let src_node = cube.with_coords(node, src_c, &dims);
                let expect: Vec<u32> =
                    (0..blk).map(|e| (src_node * 1000 + my_c * 10 + e) as u32).collect();
                prop_assert_eq!(&recv[node][src_c], &expect, "node {} src {}", node, src_c);
            }
        }
    }
}

#[test]
fn dims_strategy_is_well_formed() {
    // Not a proptest: sanity-check the helper itself once.
    let s = dims_strategy(4);
    let _ = s; // strategies are lazily evaluated; construction suffices
}
