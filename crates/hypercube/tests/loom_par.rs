//! Loom model test for the shared host-parallelism module
//! (`vmp_hypercube::par`).
//!
//! Two invariants are modelled:
//!
//! 1. **Threshold gating is a pure function of its inputs.** However
//!    threads race to read it, `should_parallelise` must return the same
//!    answer for the same work hint for the whole process lifetime —
//!    the `OnceLock` behind `threshold()` initialises exactly once even
//!    under concurrent first use.
//!
//! 2. **Fan-in combine order is by node index, not completion order.**
//!    `build_nodes` / `for_each_node` stitch per-node results into the
//!    arena by node id; a scheduler that finishes node 3 before node 0
//!    must produce a bit-identical slab. The closure here records the
//!    order nodes were *executed* in, perturbs it with `yield_now`, and
//!    the test asserts the *output* is invariant while allowing the
//!    execution order to vary freely.
//!
//! Under plain `cargo test` the vendored loom stand-in re-runs each
//! model closure 8 times on real OS threads; the dedicated CI job
//! compiles with `--cfg loom` for a 256-iteration sweep. Restoring the
//! registry `loom` crate upgrades this file to exhaustive interleaving
//! exploration with no source changes.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

use vmp_hypercube::par::{build_nodes, for_each_node, should_parallelise, threshold};
use vmp_hypercube::slab::NodeSlab;

/// Invariant 1: concurrent first readers of the threshold all observe
/// the same value, and the gate stays consistent with it.
#[test]
fn threshold_gate_is_stable_under_concurrent_first_use() {
    loom::model(|| {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let seen = Arc::clone(&seen);
                thread::spawn(move || {
                    let t = threshold();
                    // The gate must agree with the value this thread read.
                    let gate_hi = should_parallelise(usize::MAX);
                    let gate_lo = t > 0 && should_parallelise(t - 1);
                    seen.lock().unwrap().push((t, gate_hi, gate_lo));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 4);
        // Every thread saw the same threshold and the same gate answers.
        assert!(seen.windows(2).all(|w| w[0] == w[1]), "threshold raced: {seen:?}");
        // Below-threshold work never fans out, whatever the pool size.
        assert!(seen.iter().all(|&(_, _, gate_lo)| !gate_lo));
    });
}

/// Invariant 2a: `build_nodes` output is identical whichever order the
/// scheduler runs the per-node closures in.
#[test]
fn build_nodes_fan_in_is_ordered_by_node_index() {
    const P: usize = 8;
    // Reference result from the guaranteed-serial path (work hint 0).
    let reference = build_nodes(P, 0, 0, fill_node);
    loom::model(move || {
        let started = Arc::new(AtomicUsize::new(0));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (started2, order2) = (Arc::clone(&started), Arc::clone(&order));
        // Work hint above any plausible threshold: exercises the
        // parallel stitch path whenever the host pool allows it.
        let slab = build_nodes(P, usize::MAX, 0, move |node, buf| {
            // Perturb scheduling: even nodes yield before producing
            // output so odd nodes tend to finish first.
            if node % 2 == 0 {
                thread::yield_now();
            }
            started2.fetch_add(1, Ordering::SeqCst);
            order2.lock().unwrap().push(node);
            fill_node(node, buf);
        });
        assert_eq!(started.load(Ordering::SeqCst), P);
        assert_eq!(order.lock().unwrap().len(), P);
        // Execution order is free; the stitched arena is not.
        assert_eq!(slab, reference, "fan-in combine order leaked into the output");
        for node in 0..P {
            assert_eq!(slab.seg(node).first(), Some(&(node as u64 * 1000)));
        }
    });
}

/// Invariant 2b: same property for the in-place driver `for_each_node`,
/// which is what `machine::local_compute_slab` runs under every
/// collective's local phase.
#[test]
fn for_each_node_result_is_schedule_invariant() {
    const P: usize = 8;
    let mut reference = labelled(P);
    for_each_node(&mut reference, 0, bump_seg); // serial path
    loom::model(move || {
        let mut slab = labelled(P);
        for_each_node(&mut slab, usize::MAX, |node, seg| {
            if node % 3 == 0 {
                thread::yield_now();
            }
            bump_seg(node, seg);
        });
        assert_eq!(slab, reference);
    });
}

fn fill_node(node: usize, buf: &mut Vec<u64>) {
    // Variable-length segments make any stitch-order bug change the
    // offset table, not just the payload.
    buf.extend((0..node + 1).map(|i| node as u64 * 1000 + i as u64));
}

fn labelled(p: usize) -> NodeSlab<u64> {
    NodeSlab::from_nested_owned((0..p).map(|n| vec![n as u64; 4]).collect::<Vec<_>>())
}

fn bump_seg(node: usize, seg: &mut [u64]) {
    for v in seg.iter_mut() {
        *v = v.wrapping_mul(31).wrapping_add(node as u64);
    }
}
