//! Integration tests of the all-port collective engine: the rotated
//! spanning-binomial-tree forest partitions the directed hypercube
//! edges, and every ported collective stays bit-identical to the
//! single-port reference under zero-fault and recoverable-fault plans.

// Proptest sweeps are far too slow under Miri's interpreter; the
// dedicated Miri CI job covers the library's unsafe/aliasing surface
// via the unit tests instead (see .github/workflows/ci.yml).
#![cfg(not(miri))]

use std::collections::HashSet;

use proptest::prelude::*;

use vmp_hypercube::collective::{
    self, allgather, allreduce, broadcast, reduce, reference, scan_inclusive,
};
use vmp_hypercube::cost::CostModel;
use vmp_hypercube::fault::{FaultPlan, ResilientConfig};
use vmp_hypercube::machine::Hypercube;
use vmp_hypercube::spanning::EsbtForest;

/// Deterministic pseudo-random payloads; fp addition over these is
/// order-sensitive, so payload equality pins the combine order.
fn payloads(p: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..p)
        .map(|n| {
            (0..len)
                .map(|i| {
                    let mut h = (n as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((i as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
                        .wrapping_add(seed);
                    h ^= h >> 31;
                    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                    (h as f64 / u64::MAX as f64) * 2.0 - 1.0
                })
                .collect()
        })
        .collect()
}

/// A strategy for a dimension subset of a `dim`-cube.
fn dims_strategy(dim: u32) -> impl Strategy<Value = Vec<u32>> {
    (0u32..(1 << dim.max(1)))
        .prop_map(move |mask| (0..dim).filter(|&d| (mask >> d) & 1 == 1).collect())
}

fn rol(x: usize, j: u32, k: u32) -> usize {
    let mask = (1usize << k) - 1;
    if j == 0 {
        return x & mask;
    }
    ((x << j) | (x >> (k - j))) & mask
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The `k` rotated spanning binomial trees partition the directed
    /// hypercube edges: every non-source node appears as a child exactly
    /// once per tree, every directed edge not entering node 0 is used by
    /// exactly one tree, and tree `j` is the `j`-bit rotation of tree 0.
    #[test]
    fn rotated_trees_partition_directed_edges(k in 1u32..=9) {
        let forest = EsbtForest::new(k);
        let nodes = forest.nodes();
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        for tree in 0..k {
            let mut children = 0usize;
            for (parent, child) in forest.edges(tree) {
                prop_assert_eq!(
                    (parent ^ child).count_ones(), 1,
                    "tree {} edge {}->{} must be a cube edge", tree, parent, child
                );
                prop_assert_ne!(child, 0, "node 0 is every tree's source");
                prop_assert!(
                    seen.insert((parent, child)),
                    "edge {}->{} reused across trees", parent, child
                );
                children += 1;
            }
            prop_assert_eq!(children, nodes - 1, "tree {} must span", tree);
        }
        // k trees x (2^k - 1) edges = all k*2^k directed edges except
        // the k entering the source.
        prop_assert_eq!(seen.len(), k as usize * nodes - k as usize);
    }

    /// Tree `j`'s parent function is the rotation conjugate of tree 0's.
    #[test]
    fn tree_j_is_a_rotation_of_tree_zero(k in 1u32..=9, node in 1usize..512, tree in 0u32..9) {
        let forest = EsbtForest::new(k);
        let node = (node - 1) % (forest.nodes() - 1) + 1; // any non-source node
        let tree = tree % k;
        let p0 = forest.parent(0, node).expect("non-source node has a parent");
        prop_assert_eq!(
            forest.parent(tree, rol(node, tree, k)),
            Some(rol(p0, tree, k))
        );
    }

    /// Every ported collective's payload is bit-identical to the seed
    /// reference implementation, for every subcube and message length.
    #[test]
    fn allport_collectives_match_reference_payloads(
        dim in 1u32..=6,
        mask in 0usize..64,
        len in 0usize..24,
        seed in 0u64..1000,
        root_sel in 0usize..64,
    ) {
        let dims: Vec<u32> = (0..dim).filter(|&d| (mask >> d) & 1 == 1).collect();
        let k = dims.len();
        let root = if k == 0 { 0 } else { root_sel % (1 << k) };
        let p = 1usize << dim;

        let run = |f: &dyn Fn(&mut Hypercube, &mut Vec<Vec<f64>>)| {
            let mut reference_data = payloads(p, len, seed);
            let mut hc_ref = Hypercube::new(dim, CostModel::cm2());
            f(&mut hc_ref, &mut reference_data);
            reference_data
        };

        // broadcast
        let want = run(&|hc, d| reference::broadcast(hc, d, &dims, root));
        let mut got = payloads(p, len, seed);
        let mut hc = Hypercube::new(dim, CostModel::cm2_allport());
        broadcast(&mut hc, &mut got, &dims, root);
        prop_assert_eq!(&want, &got, "broadcast payload");

        // reduce
        let want = run(&|hc, d| reference::reduce(hc, d, &dims, root, |a, b| a + b));
        let mut got = payloads(p, len, seed);
        let mut hc = Hypercube::new(dim, CostModel::cm2_allport());
        reduce(&mut hc, &mut got, &dims, root, |a, b| a + b);
        prop_assert_eq!(&want, &got, "reduce payload");

        // allreduce
        let want = run(&|hc, d| reference::allreduce(hc, d, &dims, |a, b| a + b));
        let mut got = payloads(p, len, seed);
        let mut hc = Hypercube::new(dim, CostModel::cm2_allport());
        allreduce(&mut hc, &mut got, &dims, |a, b| a + b);
        prop_assert_eq!(&want, &got, "allreduce payload");

        // allgather
        let want = run(&|hc, d| reference::allgather(hc, d, &dims));
        let mut got = payloads(p, len, seed);
        let mut hc = Hypercube::new(dim, CostModel::cm2_allport());
        allgather(&mut hc, &mut got, &dims);
        prop_assert_eq!(&want, &got, "allgather payload");

        // scan
        let want = run(&|hc, d| reference::scan_inclusive(hc, d, &dims, |a, b| a + b));
        let mut got = payloads(p, len, seed);
        let mut hc = Hypercube::new(dim, CostModel::cm2_allport());
        scan_inclusive(&mut hc, &mut got, &dims, |a, b| a + b);
        prop_assert_eq!(&want, &got, "scan payload");
    }

    /// Ragged (per-node different) buffers through broadcast and
    /// allgather — the collectives that accept them — still match.
    #[test]
    fn ragged_broadcast_and_allgather_match_reference(
        dim in 1u32..=5,
        dims in dims_strategy(5),
        seed in 0u64..1000,
    ) {
        let dims: Vec<u32> = dims.into_iter().filter(|&d| d < dim).collect();
        let p = 1usize << dim;
        let ragged = |seed: u64| -> Vec<Vec<f64>> {
            (0..p).map(|n| payloads(1, n % 5 + 1, seed ^ n as u64)[0].clone()).collect()
        };

        let mut want = ragged(seed);
        let mut hc_ref = Hypercube::new(dim, CostModel::cm2());
        reference::broadcast(&mut hc_ref, &mut want, &dims, 0);
        let mut got = ragged(seed);
        let mut hc = Hypercube::new(dim, CostModel::cm2_allport());
        broadcast(&mut hc, &mut got, &dims, 0);
        prop_assert_eq!(&want, &got, "ragged broadcast payload");

        let mut want = ragged(seed);
        let mut hc_ref = Hypercube::new(dim, CostModel::cm2());
        reference::allgather(&mut hc_ref, &mut want, &dims);
        let mut got = ragged(seed);
        let mut hc = Hypercube::new(dim, CostModel::cm2_allport());
        allgather(&mut hc, &mut got, &dims);
        prop_assert_eq!(&want, &got, "ragged allgather payload");
    }
}

/// Under a recoverable fault plan the selector falls back to the
/// single-port schedule, so the all-port machine is indistinguishable
/// from the one-port machine: same payload, same clock, same counters —
/// and the result still matches the zero-fault run bit for bit.
#[test]
fn recoverable_faults_force_exact_single_port_fallback() {
    let dim = 4u32;
    let dims: Vec<u32> = (0..dim).collect();
    let p = 1usize << dim;
    let len = 32usize;
    let plans: [FaultPlan; 2] = [
        FaultPlan::none(7).with_drops(0.08, 0, u64::MAX),
        FaultPlan::none(9).with_link_fault(0, 1, 0),
    ];
    for plan in plans {
        let mut clean = payloads(p, len, 3);
        let mut hc_clean = Hypercube::new(dim, CostModel::cm2_allport());
        allreduce(&mut hc_clean, &mut clean, &dims, |a, b| a + b);

        let run = |cost: CostModel| {
            let mut data = payloads(p, len, 3);
            let mut hc = Hypercube::new(dim, cost);
            hc.install_faults(plan.clone(), ResilientConfig::default());
            allreduce(&mut hc, &mut data, &dims, |a, b| a + b);
            hc.clear_faults();
            (data, hc.elapsed_us(), *hc.counters())
        };
        let (data_sp, us_sp, counters_sp) = run(CostModel::cm2());
        let (data_ap, us_ap, counters_ap) = run(CostModel::cm2_allport());
        assert_eq!(data_sp, data_ap, "faulted payloads must match across port models");
        assert_eq!(us_sp, us_ap, "faulted clocks must match bitwise");
        assert_eq!(counters_sp, counters_ap, "faulted counters must match");
        assert_eq!(counters_ap.allport_steps, 0, "no ported steps under live faults");
        assert_eq!(data_ap, clean, "recoverable faults must not change result bits");
    }
}

/// The ported schedules actually run (and are counted) on a healthy
/// all-port machine, and deliver the acceptance-bar speedup.
#[test]
fn healthy_allport_runs_counted_steps_and_beats_single_port() {
    let dim = 8u32;
    let dims: Vec<u32> = (0..dim).collect();
    let p = 1usize << dim;
    let len = 4096usize;

    let mut data_sp = payloads(p, len, 1);
    let mut hc_sp = Hypercube::new(dim, CostModel::cm2());
    broadcast(&mut hc_sp, &mut data_sp, &dims, 0);
    assert_eq!(hc_sp.counters().allport_steps, 0, "one-port model never runs ported steps");

    let mut data_ap = payloads(p, len, 1);
    let mut hc_ap = Hypercube::new(dim, CostModel::cm2_allport());
    broadcast(&mut hc_ap, &mut data_ap, &dims, 0);
    assert_eq!(data_sp, data_ap);
    let counters = hc_ap.counters();
    assert!(counters.allport_steps > 0, "large broadcast must take the ported schedule");
    assert_eq!(
        counters.allport_steps, counters.message_steps,
        "every step of this collective was a ported superstep"
    );
    let speedup = hc_sp.elapsed_us() / hc_ap.elapsed_us();
    assert!(speedup >= 2.0, "broadcast at p={p} len={len}: {speedup:.2}x below the bar");
}

/// Slab entry points agree with the Vec adapters under the all-port
/// model (the adapters are thin wrappers, but the slab path is what the
/// experiments drive).
#[test]
fn slab_and_vec_paths_agree_under_allport() {
    let dim = 5u32;
    let dims: Vec<u32> = (0..dim).collect();
    let p = 1usize << dim;
    let mut via_vec = payloads(p, 16, 11);
    let mut hc1 = Hypercube::new(dim, CostModel::cm2_allport());
    allreduce(&mut hc1, &mut via_vec, &dims, |a, b| a + b);

    let mut slab = vmp_hypercube::slab::NodeSlab::from_nested(&payloads(p, 16, 11));
    let mut hc2 = Hypercube::new(dim, CostModel::cm2_allport());
    collective::allreduce_slab(&mut hc2, &mut slab, &dims, |a, b| a + b);
    assert_eq!(hc1.elapsed_us(), hc2.elapsed_us());
    assert_eq!(hc1.counters(), hc2.counters());
    let flat: Vec<f64> = via_vec.into_iter().flatten().collect();
    assert_eq!(flat, slab.data().to_vec());
}
