//! # vmp-hypercube — a simulated hypercube multiprocessor
//!
//! This crate is the machine substrate for the reproduction of *Four
//! Vector-Matrix Primitives* (Agrawal, Blelloch, Krawitz & Phillips,
//! SPAA 1989). The paper implements its primitives on the Connection
//! Machine, a Boolean-cube (hypercube) multiprocessor; this crate
//! provides that machine in simulation:
//!
//! * [`topology`] — Boolean-cube address arithmetic and subcubes;
//! * [`gray`] — binary-reflected Gray codes for grid embeddings;
//! * [`cost`] — the `alpha + n*beta` channel cost model (with CM-2 and
//!   iPSC/1 presets) used throughout the contemporaneous literature;
//! * [`machine`] — the [`machine::Hypercube`] simulator: a BSP-style
//!   clock and event counters over caller-owned per-processor buffers;
//! * [`fault`] — seeded deterministic fault plans (link/node failures,
//!   transient drops) and the bounded-retry/reroute recovery policy the
//!   machine applies when one is installed;
//! * [`collective`] — broadcast / reduce / allreduce / scan / gather /
//!   scatter / allgather / all-to-all on arbitrary subcube dimension
//!   subsets (rows and columns of a processor grid);
//! * [`slab`] — the flat arena data plane ([`slab::NodeSlab`] /
//!   [`slab::SegSlab`]) the collectives operate on;
//! * [`par`] — the shared, `VMP_PAR_THRESHOLD`-tunable host-parallelism
//!   threshold;
//! * [`route`] — blocked dimension-ordered routing for irregular moves;
//! * [`router`] — the cycle-accurate element-granular general router
//!   that models the paper's **naive** baseline;
//! * [`spanning`] — alternative (balanced / all-port) broadcast and
//!   reduction schedules for the spanning-tree ablation.
//!
//! Everything really moves the data — results are bit-exact and checked
//! against serial oracles — while the simulated clock and counters follow
//! the standard cost model, so the reproduced evaluation compares *time
//! shapes*, not just operation counts.

#![warn(missing_docs)]

pub mod collective;
pub mod cost;
pub mod counters;
pub mod dimperm;
pub mod fault;
pub mod gray;
pub mod machine;
pub mod par;
pub mod route;
pub mod router;
pub mod slab;
pub mod spanning;
pub mod topology;

pub use cost::{CostModel, PortModel};
pub use counters::Counters;
pub use fault::{Detect, FaultPlan, LinkFault, NodeFault, ResilientConfig};
pub use machine::Hypercube;
pub use slab::{NodeSlab, SegSlab};
pub use topology::{Cube, NodeId};
