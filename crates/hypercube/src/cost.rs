//! Communication/arithmetic cost model.
//!
//! The whole TMC/Yale corpus the paper sits in (Johnsson & Ho's collective
//! communication reports, the tridiagonal and banded solver papers) uses
//! the same two-parameter channel model: sending `n` elements between
//! neighbours costs `alpha + n * beta` — a start-up (latency) term plus a
//! per-element transfer term — and an arithmetic operation costs `gamma`.
//! We add `delta` for local memory moves (block copies during packing and
//! embedding changes) and an element-granular router model for the *naive*
//! baseline, where every element is injected into the general router as
//! its own message.
//!
//! All times are in microseconds; they are *simulated* times. The presets
//! are in the right regime for the machines of the era (CM-2, iPSC/1) so
//! the reproduced tables have plausible magnitudes, but the claims we
//! verify are about *shape* (ratios, crossovers), which are insensitive to
//! the exact constants — see `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

/// Whether a node can use one channel at a time or all `d` channels
/// concurrently. The CM-2 NEWS/hypercube hardware supported concurrent
/// channel use; one-port is the conservative model most algorithms are
/// analysed under. Only the spanning-tree ablation routines consult this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortModel {
    /// One channel per node active per step.
    OnePort,
    /// All `d` channels of a node may be active concurrently.
    AllPort,
}

/// Which collective a schedule is selected or priced for. The five
/// kinds the slab data plane implements all-port schedules for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Collective {
    /// One-to-all within each subcube.
    Broadcast,
    /// All-to-one combine within each subcube.
    Reduce,
    /// Butterfly combine, result replicated.
    Allreduce,
    /// Concatenation, result replicated.
    Allgather,
    /// Parallel prefix in coordinate order.
    Scan,
}

/// A concrete schedule choice for one collective call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// One dimension per superstep — the conservative seed schedules.
    SinglePort,
    /// All `k` ports concurrent over the `k` edge-disjoint spanning
    /// binomial trees (see [`crate::spanning::EsbtForest`]); each tree
    /// carries `ceil(L/k)` elements, pipelined as `chunks` cells.
    AllPort {
        /// Pipeline depth per tree (1 = unpipelined).
        chunks: usize,
    },
}

/// Schedule-selection policy threaded through the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlgoPolicy {
    /// Pick the cheaper of single-port and all-port under the cost
    /// model (single-port whenever `ports` is [`PortModel::OnePort`]).
    Auto,
    /// Always the one-dimension-per-superstep schedules.
    ForceSinglePort,
    /// Always all-port, unpipelined (`chunks = 1`).
    ForceAllPort,
    /// Always all-port with pipelined chunking (`chunks >= 2`).
    ForcePipelined,
}

/// Default pipeline cell: chunks are sized so one cell rides each tree
/// edge per superstep once a tree's share exceeds this many elements.
pub const DEFAULT_PIPELINE_CELL: usize = 256;

/// The all-port schedule selector: policy plus the pipeline cell size.
/// Live fault state always overrides the policy — degraded or faulty
/// machines fall back to the single-port schedules, whose exchange
/// steps carry the detour/retry machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlgoSelect {
    /// Which schedules are eligible.
    pub policy: AlgoPolicy,
    /// Pipeline cell size in elements (see [`DEFAULT_PIPELINE_CELL`]).
    pub cell: usize,
}

impl Default for AlgoSelect {
    fn default() -> Self {
        AlgoSelect { policy: AlgoPolicy::Auto, cell: DEFAULT_PIPELINE_CELL }
    }
}

impl AlgoSelect {
    /// Pipeline depth for a length-`len` payload split over `k` trees:
    /// `ceil(ceil(len/k) / cell)` cells per tree, at least 1.
    #[must_use]
    pub fn pipeline_chunks(&self, k: usize, len: usize) -> usize {
        if k == 0 {
            return 1;
        }
        len.div_ceil(k).div_ceil(self.cell.max(1)).max(1)
    }

    /// Choose the schedule for one collective call: `k = |dims|`, `len`
    /// the critical-path segment length, `live_faults` whether the
    /// machine currently has a non-empty fault plan or degradation
    /// remaps installed (which force the single-port fallback).
    #[must_use]
    pub fn choose(
        &self,
        cost: &CostModel,
        kind: Collective,
        k: usize,
        len: usize,
        live_faults: bool,
    ) -> Algo {
        if k == 0 || len == 0 || live_faults {
            return Algo::SinglePort;
        }
        match self.policy {
            AlgoPolicy::ForceSinglePort => Algo::SinglePort,
            AlgoPolicy::ForceAllPort => Algo::AllPort { chunks: 1 },
            AlgoPolicy::ForcePipelined => {
                Algo::AllPort { chunks: self.pipeline_chunks(k, len).max(2) }
            }
            AlgoPolicy::Auto => {
                if cost.ports == PortModel::OnePort {
                    return Algo::SinglePort;
                }
                let ap = Algo::AllPort { chunks: self.pipeline_chunks(k, len) };
                if cost.collective_time(kind, k, len, ap)
                    < cost.collective_time(kind, k, len, Algo::SinglePort)
                {
                    ap
                } else {
                    Algo::SinglePort
                }
            }
        }
    }
}

/// Height (edge depth) of one edge-disjoint spanning binomial tree of a
/// `k`-cube, source edge included: `k + 1` for `k >= 2`, else `k`. The
/// pipelined tree schedules take `height + chunks - 1` supersteps.
#[must_use]
pub fn esbt_height(k: usize) -> usize {
    if k <= 1 {
        k
    } else {
        k + 1
    }
}

/// One all-port schedule, normalised to `steps` identical supersteps in
/// which every node drives at most `per_port` elements per port and
/// combines at most `per_step_flops` elements locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSchedule {
    /// Concurrent supersteps.
    pub steps: usize,
    /// Elements per port per superstep (the message length charged).
    pub per_port: usize,
    /// Critical-path combines per superstep.
    pub per_step_flops: usize,
}

/// The all-port schedule for `kind` over `k` dimensions with
/// critical-path segment length `len`, pipelined as `chunks` cells per
/// tree. This is the single source of the ported cost model: the
/// machine charges exactly this schedule and `vmp::analysis` prices it,
/// so predictions cannot drift from charges.
///
/// * `Broadcast`: each of the `k` trees carries `ceil(len/k)` elements
///   in `chunks` cells; a cell descends one tree level per superstep,
///   so the last cell arrives after `esbt_height(k) + chunks - 1`
///   steps of `message(cell)`.
/// * `Reduce`: the same trees reversed; a node can receive one cell on
///   each of its `k` ports per step, combining them serially.
/// * `Allreduce`/`Scan`: `k` dimension-staggered butterflies, one per
///   payload piece, so every step exchanges `ceil(len/k)` per port but
///   still combines the full payload locally — the bandwidth term
///   drops by `k`, the flop term does not.
/// * `Allgather`: every node absorbs `2^k - 1` remote segments over
///   `k` ports: `ceil((2^k - 1)/k)` steps of `message(len)` (chunking
///   cannot reduce the start-up count further, so `chunks` is unused).
#[must_use]
pub fn allport_schedule(kind: Collective, k: usize, len: usize, chunks: usize) -> PortSchedule {
    let k = k.max(1);
    let piece = len.div_ceil(k);
    let c = chunks.max(1);
    match kind {
        Collective::Broadcast => PortSchedule {
            steps: esbt_height(k) + c - 1,
            per_port: piece.div_ceil(c),
            per_step_flops: 0,
        },
        Collective::Reduce => {
            let cell = piece.div_ceil(c);
            PortSchedule { steps: esbt_height(k) + c - 1, per_port: cell, per_step_flops: k * cell }
        }
        Collective::Allreduce => PortSchedule { steps: k, per_port: piece, per_step_flops: len },
        Collective::Scan => PortSchedule { steps: k, per_port: piece, per_step_flops: 2 * len },
        Collective::Allgather => PortSchedule {
            steps: ((1usize << k.min(usize::BITS as usize - 1)) - 1).div_ceil(k),
            per_port: len,
            per_step_flops: 0,
        },
    }
}

/// The machine cost parameters (all in microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Communication start-up per (blocked) neighbour message.
    pub alpha: f64,
    /// Per-element transfer time on a channel.
    pub beta: f64,
    /// Per floating-point operation.
    pub gamma: f64,
    /// Per-element local memory move (packing / copying).
    pub delta: f64,
    /// Overhead charged per *individually injected* router element — the
    /// cost that makes the naive element-per-message implementation slow.
    /// On the CM this is the Paris general-router send overhead.
    pub router_alpha: f64,
    /// Time per router petit cycle: in one cycle every cube channel can
    /// forward one element.
    pub router_cycle: f64,
    /// Channel concurrency model.
    pub ports: PortModel,
}

impl CostModel {
    /// Connection Machine CM-2-like constants. High start-up relative to
    /// per-element cost on blocked transfers; an expensive general router.
    #[must_use]
    pub fn cm2() -> Self {
        CostModel {
            alpha: 30.0,
            beta: 1.0,
            gamma: 0.35,
            delta: 0.12,
            router_alpha: 12.0,
            router_cycle: 3.0,
            ports: PortModel::OnePort,
        }
    }

    /// Intel iPSC/1-like constants: very large message start-up, the
    /// regime where minimising the number of start-ups dominates.
    #[must_use]
    pub fn ipsc1() -> Self {
        CostModel {
            alpha: 1000.0,
            beta: 2.5,
            gamma: 0.25,
            delta: 0.1,
            router_alpha: 900.0,
            router_cycle: 10.0,
            ports: PortModel::OnePort,
        }
    }

    /// Unit-cost model: `alpha = beta = gamma = 1`, `delta = 0`. Used by
    /// tests that check the analytic formulas exactly.
    #[must_use]
    pub fn unit() -> Self {
        CostModel {
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
            delta: 0.0,
            router_alpha: 1.0,
            router_cycle: 1.0,
            ports: PortModel::OnePort,
        }
    }

    /// Zero-latency model (`alpha = 0`): isolates bandwidth terms.
    #[must_use]
    pub fn zero_latency() -> Self {
        CostModel { alpha: 0.0, ..Self::unit() }
    }

    /// CM-2 constants with concurrent channel use enabled — the preset
    /// under which [`AlgoPolicy::Auto`] considers all-port schedules.
    #[must_use]
    pub fn cm2_allport() -> Self {
        CostModel { ports: PortModel::AllPort, ..Self::cm2() }
    }

    /// Predicted time of one collective over `k` dimensions with
    /// critical-path segment length `len` under schedule `algo`.
    ///
    /// The single-port forms reproduce the per-superstep charges of the
    /// slab collectives exactly (`k` exchange steps, allgather's
    /// doubling lengths summed step by step), so `vmp::analysis` keeps
    /// its exact-match property; the all-port form prices
    /// [`allport_schedule`], which the machine charges verbatim.
    #[must_use]
    pub fn collective_time(&self, kind: Collective, k: usize, len: usize, algo: Algo) -> f64 {
        match algo {
            Algo::SinglePort => {
                let kf = k as f64;
                match kind {
                    Collective::Broadcast => kf * self.message(len),
                    Collective::Reduce | Collective::Allreduce => {
                        kf * (self.message(len) + self.flops(len))
                    }
                    Collective::Scan => kf * (self.message(len) + self.flops(2 * len)),
                    Collective::Allgather => {
                        let mut t = 0.0;
                        let mut l = len;
                        for _ in 0..k {
                            t += self.message(l);
                            l *= 2;
                        }
                        t
                    }
                }
            }
            Algo::AllPort { chunks } => {
                let s = allport_schedule(kind, k, len, chunks);
                s.steps as f64 * (self.message(s.per_port) + self.flops(s.per_step_flops))
            }
        }
    }

    /// Time for one blocked neighbour message of `n` elements.
    #[inline]
    #[must_use]
    pub fn message(&self, n: usize) -> f64 {
        self.alpha + self.beta * n as f64
    }

    /// Time for `n` local arithmetic operations.
    #[inline]
    #[must_use]
    pub fn flops(&self, n: usize) -> f64 {
        self.gamma * n as f64
    }

    /// Time for `n` local element moves.
    #[inline]
    #[must_use]
    pub fn moves(&self, n: usize) -> f64 {
        self.delta * n as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::cm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_is_affine_in_length() {
        let c = CostModel::unit();
        assert_eq!(c.message(0), 1.0);
        assert_eq!(c.message(10), 11.0);
        let z = CostModel::zero_latency();
        assert_eq!(z.message(10), 10.0);
    }

    #[test]
    fn presets_are_sane() {
        for m in [CostModel::cm2(), CostModel::ipsc1(), CostModel::unit(), CostModel::cm2_allport()]
        {
            assert!(m.alpha >= 0.0 && m.beta > 0.0 && m.gamma > 0.0);
            assert!(m.router_alpha >= 0.0 && m.router_cycle > 0.0);
            // Start-up should dominate a single-element transfer on real
            // presets — this is what makes blocking worthwhile.
            if m.alpha > 1.0 {
                assert!(m.alpha > m.beta);
            }
        }
    }

    #[test]
    fn flops_and_moves_scale_linearly() {
        let c = CostModel::cm2();
        assert!((c.flops(100) - 100.0 * c.gamma).abs() < 1e-12);
        assert!((c.moves(100) - 100.0 * c.delta).abs() < 1e-12);
        assert_eq!(c.flops(0), 0.0);
    }

    #[test]
    fn copy_semantics() {
        let c = CostModel::cm2();
        let d = c; // Copy
        assert_eq!(c, d);
    }

    #[test]
    fn single_port_times_match_per_step_charges() {
        let c = CostModel::unit();
        let (k, l) = (4usize, 10usize);
        assert_eq!(c.collective_time(Collective::Broadcast, k, l, Algo::SinglePort), 4.0 * 11.0);
        assert_eq!(
            c.collective_time(Collective::Allreduce, k, l, Algo::SinglePort),
            4.0 * (11.0 + 10.0)
        );
        assert_eq!(
            c.collective_time(Collective::Scan, k, l, Algo::SinglePort),
            4.0 * (11.0 + 20.0)
        );
        // Allgather sums doubling message lengths: l, 2l, 4l, 8l.
        assert_eq!(
            c.collective_time(Collective::Allgather, k, l, Algo::SinglePort),
            4.0 + (10 + 20 + 40 + 80) as f64
        );
    }

    #[test]
    fn allport_schedule_shapes() {
        // Unpipelined broadcast: one cell per tree, esbt_height(k) steps.
        let s = allport_schedule(Collective::Broadcast, 4, 100, 1);
        assert_eq!((s.steps, s.per_port, s.per_step_flops), (5, 25, 0));
        // Pipelining adds chunks-1 steps and shrinks the cell.
        let s = allport_schedule(Collective::Broadcast, 4, 100, 5);
        assert_eq!((s.steps, s.per_port), (9, 5));
        // Reduce combines up to one cell per port per step.
        let s = allport_schedule(Collective::Reduce, 4, 100, 1);
        assert_eq!((s.steps, s.per_port, s.per_step_flops), (5, 25, 100));
        // Staggered butterflies: k steps on pieces, full-payload flops.
        let s = allport_schedule(Collective::Allreduce, 4, 100, 3);
        assert_eq!((s.steps, s.per_port, s.per_step_flops), (4, 25, 100));
        let s = allport_schedule(Collective::Scan, 4, 100, 1);
        assert_eq!((s.steps, s.per_port, s.per_step_flops), (4, 25, 200));
        // Allgather: ceil((2^k - 1)/k) full-segment steps.
        let s = allport_schedule(Collective::Allgather, 4, 100, 7);
        assert_eq!((s.steps, s.per_port, s.per_step_flops), (4, 100, 0));
    }

    #[test]
    fn auto_policy_is_single_port_on_one_port_presets() {
        let sel = AlgoSelect::default();
        for kind in [
            Collective::Broadcast,
            Collective::Reduce,
            Collective::Allreduce,
            Collective::Allgather,
            Collective::Scan,
        ] {
            assert_eq!(sel.choose(&CostModel::cm2(), kind, 10, 1 << 14, false), Algo::SinglePort);
        }
    }

    #[test]
    fn auto_policy_picks_all_port_for_large_broadcasts() {
        let sel = AlgoSelect::default();
        let c = CostModel::cm2_allport();
        let algo = sel.choose(&c, Collective::Broadcast, 10, 1 << 14, false);
        let Algo::AllPort { chunks } = algo else {
            panic!("expected all-port for a large broadcast, got {algo:?}");
        };
        assert!(chunks > 1, "large payload should pipeline");
        let sp = c.collective_time(Collective::Broadcast, 10, 1 << 14, Algo::SinglePort);
        let ap = c.collective_time(Collective::Broadcast, 10, 1 << 14, algo);
        assert!(
            sp / ap >= 2.0,
            "acceptance regime: expected >= 2x at p=1024 large messages, got {:.2}x",
            sp / ap
        );
    }

    #[test]
    fn live_faults_force_single_port() {
        let sel = AlgoSelect { policy: AlgoPolicy::ForceAllPort, cell: 64 };
        let c = CostModel::cm2_allport();
        assert_eq!(sel.choose(&c, Collective::Broadcast, 8, 4096, true), Algo::SinglePort);
        assert_eq!(sel.choose(&c, Collective::Broadcast, 0, 4096, false), Algo::SinglePort);
        assert_eq!(sel.choose(&c, Collective::Broadcast, 8, 0, false), Algo::SinglePort);
    }

    #[test]
    fn forced_policies_respected_when_healthy() {
        let sel = AlgoSelect { policy: AlgoPolicy::ForcePipelined, cell: 8 };
        let c = CostModel::cm2(); // even one-port presets obey a force
        match sel.choose(&c, Collective::Allgather, 6, 4096, false) {
            Algo::AllPort { chunks } => assert!(chunks >= 2),
            other => panic!("expected pipelined all-port, got {other:?}"),
        }
        let sp = AlgoSelect { policy: AlgoPolicy::ForceSinglePort, cell: 8 };
        assert_eq!(
            sp.choose(&CostModel::cm2_allport(), Collective::Broadcast, 10, 1 << 14, false),
            Algo::SinglePort
        );
    }
}
