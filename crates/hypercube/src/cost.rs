//! Communication/arithmetic cost model.
//!
//! The whole TMC/Yale corpus the paper sits in (Johnsson & Ho's collective
//! communication reports, the tridiagonal and banded solver papers) uses
//! the same two-parameter channel model: sending `n` elements between
//! neighbours costs `alpha + n * beta` — a start-up (latency) term plus a
//! per-element transfer term — and an arithmetic operation costs `gamma`.
//! We add `delta` for local memory moves (block copies during packing and
//! embedding changes) and an element-granular router model for the *naive*
//! baseline, where every element is injected into the general router as
//! its own message.
//!
//! All times are in microseconds; they are *simulated* times. The presets
//! are in the right regime for the machines of the era (CM-2, iPSC/1) so
//! the reproduced tables have plausible magnitudes, but the claims we
//! verify are about *shape* (ratios, crossovers), which are insensitive to
//! the exact constants — see `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

/// Whether a node can use one channel at a time or all `d` channels
/// concurrently. The CM-2 NEWS/hypercube hardware supported concurrent
/// channel use; one-port is the conservative model most algorithms are
/// analysed under. Only the spanning-tree ablation routines consult this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortModel {
    /// One channel per node active per step.
    OnePort,
    /// All `d` channels of a node may be active concurrently.
    AllPort,
}

/// The machine cost parameters (all in microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Communication start-up per (blocked) neighbour message.
    pub alpha: f64,
    /// Per-element transfer time on a channel.
    pub beta: f64,
    /// Per floating-point operation.
    pub gamma: f64,
    /// Per-element local memory move (packing / copying).
    pub delta: f64,
    /// Overhead charged per *individually injected* router element — the
    /// cost that makes the naive element-per-message implementation slow.
    /// On the CM this is the Paris general-router send overhead.
    pub router_alpha: f64,
    /// Time per router petit cycle: in one cycle every cube channel can
    /// forward one element.
    pub router_cycle: f64,
    /// Channel concurrency model.
    pub ports: PortModel,
}

impl CostModel {
    /// Connection Machine CM-2-like constants. High start-up relative to
    /// per-element cost on blocked transfers; an expensive general router.
    #[must_use]
    pub fn cm2() -> Self {
        CostModel {
            alpha: 30.0,
            beta: 1.0,
            gamma: 0.35,
            delta: 0.12,
            router_alpha: 12.0,
            router_cycle: 3.0,
            ports: PortModel::OnePort,
        }
    }

    /// Intel iPSC/1-like constants: very large message start-up, the
    /// regime where minimising the number of start-ups dominates.
    #[must_use]
    pub fn ipsc1() -> Self {
        CostModel {
            alpha: 1000.0,
            beta: 2.5,
            gamma: 0.25,
            delta: 0.1,
            router_alpha: 900.0,
            router_cycle: 10.0,
            ports: PortModel::OnePort,
        }
    }

    /// Unit-cost model: `alpha = beta = gamma = 1`, `delta = 0`. Used by
    /// tests that check the analytic formulas exactly.
    #[must_use]
    pub fn unit() -> Self {
        CostModel {
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
            delta: 0.0,
            router_alpha: 1.0,
            router_cycle: 1.0,
            ports: PortModel::OnePort,
        }
    }

    /// Zero-latency model (`alpha = 0`): isolates bandwidth terms.
    #[must_use]
    pub fn zero_latency() -> Self {
        CostModel { alpha: 0.0, ..Self::unit() }
    }

    /// Time for one blocked neighbour message of `n` elements.
    #[inline]
    #[must_use]
    pub fn message(&self, n: usize) -> f64 {
        self.alpha + self.beta * n as f64
    }

    /// Time for `n` local arithmetic operations.
    #[inline]
    #[must_use]
    pub fn flops(&self, n: usize) -> f64 {
        self.gamma * n as f64
    }

    /// Time for `n` local element moves.
    #[inline]
    #[must_use]
    pub fn moves(&self, n: usize) -> f64 {
        self.delta * n as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::cm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_is_affine_in_length() {
        let c = CostModel::unit();
        assert_eq!(c.message(0), 1.0);
        assert_eq!(c.message(10), 11.0);
        let z = CostModel::zero_latency();
        assert_eq!(z.message(10), 10.0);
    }

    #[test]
    fn presets_are_sane() {
        for m in [CostModel::cm2(), CostModel::ipsc1(), CostModel::unit()] {
            assert!(m.alpha >= 0.0 && m.beta > 0.0 && m.gamma > 0.0);
            assert!(m.router_alpha >= 0.0 && m.router_cycle > 0.0);
            // Start-up should dominate a single-element transfer on real
            // presets — this is what makes blocking worthwhile.
            if m.alpha > 1.0 {
                assert!(m.alpha > m.beta);
            }
        }
    }

    #[test]
    fn flops_and_moves_scale_linearly() {
        let c = CostModel::cm2();
        assert!((c.flops(100) - 100.0 * c.gamma).abs() < 1e-12);
        assert!((c.moves(100) - 100.0 * c.delta).abs() < 1e-12);
        assert_eq!(c.flops(0), 0.0);
    }

    #[test]
    fn copy_semantics() {
        let c = CostModel::cm2();
        let d = c; // Copy
        assert_eq!(c, d);
    }
}
