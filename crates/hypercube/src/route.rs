//! Blocked dimension-ordered (e-cube) routing.
//!
//! [`route_blocks`] is the workhorse for every irregular data movement in
//! the library (embedding changes, transposes, extract/insert traffic):
//! each node posts *blocks* addressed to arbitrary destination nodes, and
//! the router delivers them in `d` store-and-forward supersteps, resolving
//! dimension 0 first, then 1, and so on. In each superstep a node bundles
//! everything it holds that still differs from its destination in the
//! current dimension into **one** message to the corresponding neighbour,
//! so the start-up cost is at most `d * alpha` regardless of how many
//! blocks are in flight — this blocking is precisely what the paper's
//! primitives buy over the naive element-per-message router (see
//! [`crate::router`] for that baseline).
//!
//! Delivery is deterministic: arrivals at each node are sorted by the
//! caller-supplied `tag`, so downstream code can reassemble rows and
//! columns in global index order without caring about routing order.

use crate::machine::Hypercube;
use crate::topology::NodeId;

/// A routable unit: a contiguous run of elements bound for `dst`.
///
/// `tag` orders arrivals at the destination; callers use global indices
/// (e.g. the first global element index of the run) so reassembly is
/// order-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block<T> {
    /// Destination node.
    pub dst: NodeId,
    /// Arrival-ordering key (unique per destination for determinism).
    pub tag: u64,
    /// Payload elements.
    pub data: Vec<T>,
}

impl<T> Block<T> {
    /// Convenience constructor.
    pub fn new(dst: NodeId, tag: u64, data: Vec<T>) -> Self {
        Block { dst, tag, data }
    }
}

/// Deliver every posted block to its destination via dimension-ordered
/// store-and-forward routing, charging the machine one blocked message
/// superstep per cube dimension that carries any traffic.
///
/// When fault state is installed on the machine the router runs its
/// fault-tolerant variant: transiently dropped blocks genuinely stay at
/// the sender and retransmit on a later pass (with backoff), traffic
/// facing a permanently dead link genuinely detours through a healthy
/// perpendicular dimension, and the e-cube sweep repeats until every
/// block is home — so delivery under any recoverable plan is
/// bit-identical to the fault-free run, at a higher modeled cost.
///
/// Returns the per-node arrival lists, each sorted by `Block::tag`.
///
/// # Panics
/// Panics if `outgoing.len() != hc.p()` or any block's `dst` is out of
/// range, or if the installed fault plan leaves some block with no
/// usable route.
pub fn route_blocks<T>(hc: &mut Hypercube, outgoing: Vec<Vec<Block<T>>>) -> Vec<Vec<Block<T>>> {
    let cube = hc.cube();
    let p = cube.nodes();
    assert_eq!(outgoing.len(), p, "one outgoing list per node expected");

    // `in_flight[n]` = blocks currently held at node n (en route or home).
    let mut in_flight = outgoing;
    for lists in &in_flight {
        for b in lists {
            assert!(cube.contains(b.dst), "block destination {} out of range", b.dst);
        }
    }

    if hc.fault_active() {
        resilient_sweeps(hc, &mut in_flight);
    } else {
        plain_sweep(hc, &mut in_flight);
    }

    for (node, lists) in in_flight.iter_mut().enumerate() {
        debug_assert!(lists.iter().all(|b| b.dst == node), "all blocks delivered");
        lists.sort_by_key(|b| b.tag);
    }
    in_flight
}

/// One fault-free e-cube sweep: resolves every block in `d` supersteps.
fn plain_sweep<T>(hc: &mut Hypercube, in_flight: &mut [Vec<Block<T>>]) {
    let cube = hc.cube();
    let p = cube.nodes();
    for d in cube.iter_dims() {
        let bit = 1usize << d;
        // Split each node's holdings into (stay, forward-along-d).
        let mut max_fwd_elems = 0usize;
        let mut total_fwd_elems: u64 = 0;
        let mut any = false;
        let mut forwarded: Vec<Vec<Block<T>>> = (0..p).map(|_| Vec::new()).collect();
        for node in 0..p {
            let held = std::mem::take(&mut in_flight[node]);
            let mut stay = Vec::with_capacity(held.len());
            let mut fwd_elems = 0usize;
            for b in held {
                if (b.dst ^ node) & bit != 0 {
                    fwd_elems += b.data.len();
                    forwarded[node ^ bit].push(b);
                } else {
                    stay.push(b);
                }
            }
            in_flight[node] = stay;
            if fwd_elems > 0 {
                any = true;
                max_fwd_elems = max_fwd_elems.max(fwd_elems);
                total_fwd_elems += fwd_elems as u64;
            }
        }
        for (node, mut arr) in forwarded.into_iter().enumerate() {
            in_flight[node].append(&mut arr);
        }
        if any {
            hc.charge_message_step(max_fwd_elems, total_fwd_elems);
        }
    }
}

/// Repeated fault-aware e-cube sweeps until every block is delivered.
///
/// Pass `k` is retransmission round `k` for any block dropped in pass
/// `k-1` (the block really stayed put); once the retry budget is spent,
/// drop decisions stop applying — the escalation path — so delivery is
/// guaranteed for any plan that leaves the cube connected. Blocks whose
/// next e-cube hop crosses a dead link take a two-hop bypass through a
/// healthy perpendicular dimension (`u -> u^d2 -> u^d2^d`), which
/// *completes* the dead dimension — crucial, because a sidestep that
/// left dimension `d` unresolved would be undone by the next pass's
/// ascending sweep whenever `d2 < d`, ping-ponging forever. The bypass
/// perturbs only dimension `d2`, which a later pass re-resolves over a
/// different physical link.
fn resilient_sweeps<T>(hc: &mut Hypercube, in_flight: &mut [Vec<Block<T>>]) {
    let cube = hc.cube();
    let p = cube.nodes();
    // vmplint: allow(p1) — only reachable from route_blocks after fault state is confirmed installed
    let plan = hc.fault_plan().expect("fault state present").clone();
    // vmplint: allow(p1) — same invariant as the line above
    let config = *hc.resilient_config().expect("fault state present");
    let hosts: Vec<NodeId> = (0..p).map(|n| hc.host_of(n)).collect();

    let mut pass: u32 = 0;
    loop {
        let undelivered = in_flight
            .iter()
            .enumerate()
            .flat_map(|(n, lists)| lists.iter().filter(move |b| b.dst != n))
            .count();
        if undelivered == 0 {
            break;
        }
        assert!(
            pass <= config.max_retries + 4 * (cube.dim() + 2),
            "fault plan leaves {undelivered} block(s) unroutable"
        );
        if pass > 0 {
            // A retransmission round: detection latency plus bounded
            // exponential backoff before the re-sweep.
            hc.counters_mut().retries += 1;
            hc.charge_raw_us(config.detect_latency_us());
            hc.charge_raw_us(config.backoff_us * f64::from(1u32 << (pass - 1).min(20)));
        }

        // Blocks that took a bypass this pass rest until the next pass,
        // which re-resolves the perturbed perpendicular dimension.
        let mut parked: Vec<Vec<Block<T>>> = (0..p).map(|_| Vec::new()).collect();

        for d in cube.iter_dims() {
            let bit = 1usize << d;
            let step = hc.fault_step();
            let mut max_fwd_elems = 0usize;
            let mut total_fwd_elems: u64 = 0;
            let mut any = false;
            let mut max_detour_elems = 0usize;
            let mut total_detour_elems: u64 = 0;
            let mut drops = 0u64;
            let mut detours = 0u64;
            let mut forwarded: Vec<Vec<Block<T>>> = (0..p).map(|_| Vec::new()).collect();
            for node in 0..p {
                let held = std::mem::take(&mut in_flight[node]);
                let mut stay = Vec::with_capacity(held.len());
                let mut fwd_elems = 0usize;
                let mut detour_elems = 0usize;
                for b in held {
                    if (b.dst ^ node) & bit == 0 {
                        stay.push(b);
                        continue;
                    }
                    let target = node ^ bit;
                    let (pa, pb) = (hosts[node], hosts[target]);
                    let local = pa == pb;
                    if !local && plan.link_dead(pa, pb, step) {
                        if let Some(d2) = detour_dim(&cube, &hosts, &plan, node, d, step) {
                            // Two healthy hops around the dead link land
                            // the block with dimension d resolved.
                            detour_elems += b.data.len();
                            parked[node ^ (1usize << d2) ^ bit].push(b);
                            detours += 1;
                        } else {
                            stay.push(b); // no healthy way out this step
                        }
                    } else if !local
                        && pass <= config.max_retries
                        && plan.transient_drop(pa, pb, step, pass)
                    {
                        // The block really stays: retransmitted next pass.
                        drops += 1;
                        stay.push(b);
                    } else {
                        fwd_elems += b.data.len();
                        forwarded[target].push(b);
                    }
                }
                in_flight[node] = stay;
                if fwd_elems > 0 {
                    any = true;
                    max_fwd_elems = max_fwd_elems.max(fwd_elems);
                    total_fwd_elems += fwd_elems as u64;
                }
                if detour_elems > 0 {
                    max_detour_elems = max_detour_elems.max(detour_elems);
                    total_detour_elems += detour_elems as u64;
                }
            }
            for (node, mut arr) in forwarded.into_iter().enumerate() {
                in_flight[node].append(&mut arr);
            }
            if any {
                hc.charge_message_step(max_fwd_elems, total_fwd_elems);
            }
            if total_detour_elems > 0 {
                // The bypass is two store-and-forward hops.
                hc.charge_message_step(max_detour_elems, total_detour_elems);
                hc.charge_message_step(max_detour_elems, total_detour_elems);
            }
            let counters = hc.counters_mut();
            counters.transient_drops += drops;
            counters.reroutes += detours;
            counters.detour_hops += 2 * detours;
        }
        for (node, mut arr) in parked.into_iter().enumerate() {
            in_flight[node].append(&mut arr);
        }
        pass += 1;
    }
}

/// First dimension `d2 != avoid` giving a fully healthy two-hop bypass
/// `node -> node^d2 -> node^d2^avoid` around the dead `avoid` link.
fn detour_dim(
    cube: &crate::topology::Cube,
    hosts: &[NodeId],
    plan: &crate::fault::FaultPlan,
    node: NodeId,
    avoid: u32,
    step: u64,
) -> Option<u32> {
    let healthy = |a: NodeId, b: NodeId| {
        let (pa, pb) = (hosts[a], hosts[b]);
        pa == pb || !plan.link_dead(pa, pb, step)
    };
    cube.iter_dims().find(|&d2| {
        if d2 == avoid {
            return false;
        }
        let via = node ^ (1usize << d2);
        healthy(node, via) && healthy(via, via ^ (1usize << avoid))
    })
}

/// Route single elements as one-element blocks, returning per-node values
/// sorted by tag. A convenience wrapper used for small amounts of control
/// data (pivot indices, scalars).
pub fn route_values<T>(
    hc: &mut Hypercube,
    outgoing: Vec<Vec<(NodeId, u64, T)>>,
) -> Vec<Vec<(u64, T)>> {
    let blocks = outgoing
        .into_iter()
        .map(|list| list.into_iter().map(|(dst, tag, v)| Block::new(dst, tag, vec![v])).collect())
        .collect();
    route_blocks(hc, blocks)
        .into_iter()
        .map(|arr| {
            // vmplint: allow(p1) — every block was built with vec![v] four lines up
            arr.into_iter().map(|mut b| (b.tag, b.data.pop().expect("one-element block"))).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn machine(dim: u32) -> Hypercube {
        Hypercube::new(dim, CostModel::unit())
    }

    #[test]
    fn empty_routing_is_free() {
        let mut hc = machine(4);
        let out: Vec<Vec<Block<u32>>> = hc.empty_locals();
        let arrived = route_blocks(&mut hc, out);
        assert!(arrived.iter().all(Vec::is_empty));
        assert_eq!(hc.elapsed_us(), 0.0, "no traffic, no charge");
        assert_eq!(hc.counters().message_steps, 0);
    }

    #[test]
    fn local_block_is_not_charged() {
        let mut hc = machine(3);
        let mut out = hc.empty_locals();
        out[5].push(Block::new(5, 0, vec![1.0f64, 2.0]));
        let arrived = route_blocks(&mut hc, out);
        assert_eq!(arrived[5].len(), 1);
        assert_eq!(arrived[5][0].data, vec![1.0, 2.0]);
        assert_eq!(hc.counters().message_steps, 0);
    }

    #[test]
    fn single_block_crosses_hamming_distance_steps() {
        let mut hc = machine(4);
        let mut out = hc.empty_locals();
        // 0b0000 -> 0b1011: distance 3, so 3 charged supersteps.
        out[0b0000].push(Block::new(0b1011, 7, vec![42u32; 10]));
        let arrived = route_blocks(&mut hc, out);
        assert_eq!(arrived[0b1011].len(), 1);
        assert_eq!(arrived[0b1011][0].data, vec![42u32; 10]);
        assert_eq!(hc.counters().message_steps, 3);
        // Each step carries the full 10 elements on the critical channel.
        assert_eq!(hc.elapsed_us(), 3.0 * (1.0 + 10.0));
    }

    #[test]
    fn all_to_one_concentrates_and_sorts_by_tag() {
        let mut hc = machine(3);
        let p = hc.p();
        let out: Vec<Vec<Block<usize>>> =
            (0..p).map(|n| vec![Block::new(0, (p - n) as u64, vec![n])]).collect();
        let arrived = route_blocks(&mut hc, out);
        assert_eq!(arrived[0].len(), p);
        let tags: Vec<u64> = arrived[0].iter().map(|b| b.tag).collect();
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_eq!(tags, sorted, "arrivals sorted by tag");
        // Everyone except node 0 posted one block.
        let values: Vec<usize> = arrived[0].iter().map(|b| b.data[0]).collect();
        assert_eq!(values, (0..p).rev().collect::<Vec<_>>());
    }

    #[test]
    fn permutation_routing_touches_each_dimension_once() {
        // Bit-complement permutation: node n sends to !n. Every block must
        // cross every dimension, but blocking keeps it to d supersteps.
        let mut hc = machine(5);
        let p = hc.p();
        let mask = p - 1;
        let out: Vec<Vec<Block<usize>>> =
            (0..p).map(|n| vec![Block::new(n ^ mask, n as u64, vec![n; 4])]).collect();
        let arrived = route_blocks(&mut hc, out);
        for n in 0..p {
            assert_eq!(arrived[n].len(), 1);
            assert_eq!(arrived[n][0].data, vec![n ^ mask; 4]);
        }
        assert_eq!(hc.counters().message_steps, 5, "exactly d supersteps");
        // Each node forwards exactly its one 4-element block per step.
        assert_eq!(hc.elapsed_us(), 5.0 * (1.0 + 4.0));
    }

    #[test]
    fn congestion_shows_up_as_channel_load() {
        // All nodes send 8 elements to node 0: the last dimension's channel
        // into 0 carries half the machine's data in one superstep under
        // dimension-ordered routing... actually dimension 0 concentrates
        // first; check max_channel_load grows beyond a single block.
        let mut hc = machine(4);
        let p = hc.p();
        let out: Vec<Vec<Block<u8>>> = (0..p)
            .map(|n| if n == 0 { vec![] } else { vec![Block::new(0, n as u64, vec![0u8; 8])] })
            .collect();
        route_blocks(&mut hc, out);
        assert!(
            hc.counters().max_channel_load >= 8 * 8 / 2,
            "tree concentration loads late channels"
        );
    }

    #[test]
    fn route_values_delivers_scalars() {
        let mut hc = machine(3);
        let p = hc.p();
        let out: Vec<Vec<(NodeId, u64, f64)>> =
            (0..p).map(|n| vec![((n + 1) % p, n as u64, n as f64)]).collect();
        let arrived = route_values(&mut hc, out);
        for n in 0..p {
            let src = (n + p - 1) % p;
            assert_eq!(arrived[n], vec![(src as u64, src as f64)]);
        }
    }

    #[test]
    fn resilient_route_with_empty_plan_matches_plain_cost() {
        use crate::fault::{FaultPlan, ResilientConfig};
        let mk_out = |hc: &Hypercube| -> Vec<Vec<Block<u32>>> {
            let p = hc.p();
            (0..p).map(|n| vec![Block::new((n * 5 + 3) % p, n as u64, vec![n as u32; 6])]).collect()
        };
        let mut plain = machine(4);
        let out = mk_out(&plain);
        let plain_arr = route_blocks(&mut plain, out);
        let mut resil = machine(4);
        resil.install_faults(FaultPlan::none(3), ResilientConfig::default());
        let out = mk_out(&resil);
        let resil_arr = route_blocks(&mut resil, out);
        assert_eq!(plain_arr, resil_arr, "identical delivery");
        assert_eq!(plain.elapsed_us(), resil.elapsed_us(), "identical modeled cost");
        assert_eq!(plain.counters(), resil.counters());
    }

    #[test]
    fn dropped_blocks_really_retry_and_still_deliver() {
        use crate::fault::{FaultPlan, ResilientConfig};
        let mut hc = machine(3);
        hc.install_faults(
            FaultPlan::none(11).with_drops(0.6, 0, u64::MAX),
            ResilientConfig::default(),
        );
        let p = hc.p();
        let out: Vec<Vec<Block<usize>>> =
            (0..p).map(|n| vec![Block::new(p - 1 - n, n as u64, vec![n; 4])]).collect();
        let arrived = route_blocks(&mut hc, out);
        for n in 0..p {
            assert_eq!(arrived[n].len(), 1, "node {n}");
            assert_eq!(arrived[n][0].data, vec![p - 1 - n; 4]);
        }
        assert!(hc.counters().transient_drops > 0, "plan actually fired");
        assert!(hc.counters().retries > 0, "recovery actually retried");
    }

    #[test]
    fn dead_link_blocks_really_detour_and_still_deliver() {
        use crate::fault::{FaultPlan, ResilientConfig};
        let mut hc = machine(3);
        // Kill the dim-0 link 0-1 from the start; 0 -> 1 must detour.
        hc.install_faults(FaultPlan::none(1).with_link_fault(0, 1, 0), ResilientConfig::default());
        let mut out = hc.empty_locals();
        out[0].push(Block::new(1, 0, vec![7u8; 3]));
        let arrived = route_blocks(&mut hc, out);
        assert_eq!(arrived[1].len(), 1);
        assert_eq!(arrived[1][0].data, vec![7u8; 3]);
        assert!(hc.counters().reroutes > 0, "detour actually taken");
        assert!(hc.counters().detour_hops > 0);
        // Direct route is 1 hop; the detour path is longer.
        assert!(hc.counters().message_steps > 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_destination_panics() {
        let mut hc = machine(2);
        let mut out = hc.empty_locals();
        out[0].push(Block::new(99, 0, vec![1u8]));
        let _ = route_blocks(&mut hc, out);
    }
}
