//! Event counters for the simulated machine.
//!
//! Beyond the simulated clock, the machine tallies raw communication and
//! arithmetic events. The counters let tests assert *structural* claims
//! (e.g. "a reduce over `d_r` dimensions issues exactly `d_r` message
//! supersteps") independent of the cost constants, and let the benchmark
//! harness report traffic alongside time.

use serde::{Deserialize, Serialize};

/// Raw event tallies accumulated by a [`crate::machine::Hypercube`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Blocked neighbour-message supersteps executed (one per exchange
    /// phase, regardless of how many node pairs exchange in parallel).
    pub message_steps: u64,
    /// Supersteps in which all ports of a node were driven concurrently
    /// (the all-port collective schedules; also counted in
    /// `message_steps`).
    pub allport_steps: u64,
    /// Total elements crossing channels, summed over all channels.
    pub elements_transferred: u64,
    /// Maximum elements crossing any single channel in any step (a
    /// congestion proxy).
    pub max_channel_load: u64,
    /// Arithmetic operations charged (max over processors, summed over
    /// steps — i.e. the critical-path flop count).
    pub flops: u64,
    /// Local element moves charged (critical path).
    pub local_moves: u64,
    /// Individually-injected router elements (naive baseline only).
    pub router_elements: u64,
    /// Router petit cycles consumed (naive baseline only).
    pub router_cycles: u64,
    /// Transient message drops injected by the fault plan (one per
    /// affected link per failed transmission round).
    pub transient_drops: u64,
    /// Retransmission rounds performed by the resilient path.
    pub retries: u64,
    /// Link traversals redirected around a failed (or retry-exhausted)
    /// link via a detour.
    pub reroutes: u64,
    /// Extra store-and-forward hops charged for detours.
    pub detour_hops: u64,
    /// Dead-node remaps applied to the machine's host map.
    pub node_remaps: u64,
    /// Elements migrated off dead nodes during degradation remaps.
    pub migrated_elements: u64,
}

impl Counters {
    /// Reset all tallies to zero.
    pub fn reset(&mut self) {
        *self = Counters::default();
    }

    /// A copy of the current tallies, for bracketing a measured region
    /// (pair with [`Counters::since`]). Never panics.
    #[must_use]
    pub fn snapshot(&self) -> Counters {
        *self
    }

    /// Run `f` on the machine and return its result together with the
    /// counter deltas the run produced — the snapshot/since bracket as
    /// one call, so callers cannot pair a snapshot with the wrong
    /// machine or forget the diff. This is how the multi-tenant
    /// scheduler scopes counters per job.
    pub fn scoped<R>(
        hc: &mut crate::machine::Hypercube,
        f: impl FnOnce(&mut crate::machine::Hypercube) -> R,
    ) -> (R, Counters) {
        let before = hc.counters().snapshot();
        let result = f(hc);
        let delta = hc.counters().since(&before);
        (result, delta)
    }

    /// Difference `self - earlier`, for bracketing a measured region.
    /// Saturates instead of panicking if `earlier` is not actually
    /// earlier (e.g. snapshots taken across a [`Counters::reset`]).
    #[must_use]
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            message_steps: self.message_steps.saturating_sub(earlier.message_steps),
            allport_steps: self.allport_steps.saturating_sub(earlier.allport_steps),
            elements_transferred: self
                .elements_transferred
                .saturating_sub(earlier.elements_transferred),
            max_channel_load: self.max_channel_load.max(earlier.max_channel_load),
            flops: self.flops.saturating_sub(earlier.flops),
            local_moves: self.local_moves.saturating_sub(earlier.local_moves),
            router_elements: self.router_elements.saturating_sub(earlier.router_elements),
            router_cycles: self.router_cycles.saturating_sub(earlier.router_cycles),
            transient_drops: self.transient_drops.saturating_sub(earlier.transient_drops),
            retries: self.retries.saturating_sub(earlier.retries),
            reroutes: self.reroutes.saturating_sub(earlier.reroutes),
            detour_hops: self.detour_hops.saturating_sub(earlier.detour_hops),
            node_remaps: self.node_remaps.saturating_sub(earlier.node_remaps),
            migrated_elements: self.migrated_elements.saturating_sub(earlier.migrated_elements),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let c = Counters::default();
        assert_eq!(c.message_steps, 0);
        assert_eq!(c.elements_transferred, 0);
        assert_eq!(c.flops, 0);
    }

    #[test]
    fn since_subtracts_monotone_fields() {
        let early =
            Counters { message_steps: 2, elements_transferred: 10, flops: 5, ..Default::default() };
        let late =
            Counters { message_steps: 7, elements_transferred: 30, flops: 9, ..Default::default() };
        let d = late.since(&early);
        assert_eq!(d.message_steps, 5);
        assert_eq!(d.elements_transferred, 20);
        assert_eq!(d.flops, 4);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c =
            Counters { message_steps: 3, router_cycles: 9, retries: 4, ..Default::default() };
        c.reset();
        assert_eq!(c, Counters::default());
    }

    #[test]
    fn scoped_brackets_a_measured_region() {
        use crate::cost::CostModel;
        use crate::machine::Hypercube;
        let mut hc = Hypercube::new(3, CostModel::unit());
        hc.charge_message_step(4, 8); // pre-existing activity outside the scope
        let (value, delta) = Counters::scoped(&mut hc, |hc| {
            hc.charge_message_step(2, 2);
            hc.charge_flops(5);
            42usize
        });
        assert_eq!(value, 42);
        assert_eq!(delta.message_steps, 1, "only the scoped superstep is counted");
        assert_eq!(delta.elements_transferred, 2);
        assert_eq!(delta.flops, 5);
        assert_eq!(hc.counters().message_steps, 2, "the live tallies keep everything");
    }

    #[test]
    fn snapshot_copies_and_since_saturates() {
        let c = Counters { message_steps: 3, transient_drops: 2, ..Default::default() };
        let snap = c.snapshot();
        assert_eq!(snap, c);
        // A snapshot taken before a reset is "later" than the live
        // counters; since() must not panic on the underflow.
        let fresh = Counters::default();
        let d = fresh.since(&snap);
        assert_eq!(d.message_steps, 0);
        assert_eq!(d.transient_drops, 0);
    }
}
