//! Flat arena-backed per-node buffers — the machine's data plane.
//!
//! The seed implementation carried per-node payloads as `Vec<Vec<T>>`
//! (and per-node/per-destination payloads as `Vec<Vec<Vec<T>>>`): one
//! heap allocation per node per collective round, cloned at every
//! superstep. This module replaces that with two CSR-style flat views:
//!
//! * [`NodeSlab<T>`] — **one** contiguous `data` allocation plus a
//!   `p + 1` entry `offsets` table; node `i`'s buffer is the slice
//!   `data[offsets[i]..offsets[i + 1]]`.
//! * [`SegSlab<T>`] — the same idea with `nseg` segments per node
//!   (per-destination blocks for all-to-all and scatter).
//!
//! ### Aliasing rules
//!
//! Segments never overlap and are stored in node order, so two distinct
//! nodes' buffers can be borrowed mutably at once through
//! [`NodeSlab::pair_mut`] (a `split_at_mut` under the hood) — this is
//! what lets butterfly combines run in place with zero copies. The
//! simulated-clock charging of the collectives is computed from segment
//! *lengths* only and is therefore unchanged by the representation; see
//! DESIGN.md § Data plane.

use std::ops::{Index, IndexMut};

/// Per-node flat buffer arena: `p` variable-length segments backed by a
/// single contiguous allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSlab<T> {
    /// `p + 1` monotone offsets into `data`; segment `i` is
    /// `data[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<usize>,
    data: Vec<T>,
}

impl<T> NodeSlab<T> {
    /// A slab with `p` empty segments.
    #[must_use]
    pub fn new(p: usize) -> Self {
        NodeSlab { offsets: vec![0; p + 1], data: Vec::new() }
    }

    /// An empty builder that will hold `p` segments and roughly
    /// `data_capacity` elements without reallocating. Push segments in
    /// node order with [`NodeSlab::push_seg`] / [`NodeSlab::push_seg_with`].
    #[must_use]
    pub fn with_capacity(p: usize, data_capacity: usize) -> Self {
        let mut offsets = Vec::with_capacity(p + 1);
        offsets.push(0);
        NodeSlab { offsets, data: Vec::with_capacity(data_capacity) }
    }

    /// Number of segments (nodes).
    #[must_use]
    pub fn p(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total elements across all segments.
    #[must_use]
    pub fn total_len(&self) -> usize {
        // vmplint: allow(p1) — offsets holds at least the leading 0 by construction in every constructor
        *self.offsets.last().expect("offsets never empty")
    }

    /// Length of node `i`'s segment.
    #[must_use]
    pub fn len_of(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Longest segment length.
    #[must_use]
    pub fn max_seg_len(&self) -> usize {
        (0..self.p()).map(|i| self.len_of(i)).max().unwrap_or(0)
    }

    /// The `p + 1` offsets table.
    #[must_use]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Node `i`'s segment.
    #[must_use]
    pub fn seg(&self, i: usize) -> &[T] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Node `i`'s segment, mutably.
    pub fn seg_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Two distinct nodes' segments, both mutable (butterfly partners).
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn pair_mut(&mut self, a: usize, b: usize) -> (&mut [T], &mut [T]) {
        assert_ne!(a, b, "pair_mut needs two distinct segments");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (lo_s, lo_e) = (self.offsets[lo], self.offsets[lo + 1]);
        let (hi_s, hi_e) = (self.offsets[hi], self.offsets[hi + 1]);
        let (left, right) = self.data.split_at_mut(hi_s);
        let lo_slice = &mut left[lo_s..lo_e];
        let hi_slice = &mut right[..hi_e - hi_s];
        if a < b {
            (lo_slice, hi_slice)
        } else {
            (hi_slice, lo_slice)
        }
    }

    /// `Some(l)` when every segment has the same length `l` (the common
    /// case after a balanced distribute), else `None`.
    #[must_use]
    pub fn uniform_seg_len(&self) -> Option<usize> {
        let p = self.p();
        if p == 0 {
            return None;
        }
        let l = self.len_of(0);
        (1..p).all(|i| self.len_of(i) == l).then_some(l)
    }

    /// The raw backing storage (all segments, in node order).
    #[must_use]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// The raw backing storage, mutably.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterate over the segments in node order.
    pub fn iter_segs(&self) -> impl Iterator<Item = &[T]> {
        (0..self.p()).map(move |i| self.seg(i))
    }

    /// All segments as disjoint mutable slices (for per-node parallel
    /// kernels).
    pub fn segs_mut(&mut self) -> Vec<&mut [T]> {
        let mut out = Vec::with_capacity(self.p());
        let mut rest: &mut [T] = &mut self.data;
        let mut consumed = 0usize;
        for i in 0..self.offsets.len() - 1 {
            let len = self.offsets[i + 1] - self.offsets[i];
            debug_assert_eq!(self.offsets[i], consumed);
            let (head, tail) = rest.split_at_mut(len);
            out.push(head);
            rest = tail;
            consumed += len;
        }
        out
    }

    /// Append a segment built by `f` directly into the arena (builder
    /// API; segments must be pushed in node order).
    pub fn push_seg_with(&mut self, f: impl FnOnce(&mut Vec<T>)) {
        f(&mut self.data);
        self.offsets.push(self.data.len());
    }

    /// Reset to zero segments, keeping both allocations for reuse.
    pub fn clear(&mut self) {
        self.offsets.truncate(1);
        self.data.clear();
    }

    /// Exchange contents with `other` without copying element data.
    pub fn swap(&mut self, other: &mut Self) {
        std::mem::swap(&mut self.offsets, &mut other.offsets);
        std::mem::swap(&mut self.data, &mut other.data);
    }

    /// Move the nested representation into a slab (one copy per
    /// element, no per-node clones needed afterwards).
    #[must_use]
    pub fn from_nested_owned(nested: Vec<Vec<T>>) -> Self {
        let total: usize = nested.iter().map(Vec::len).sum();
        let mut slab = NodeSlab::with_capacity(nested.len(), total);
        for mut buf in nested {
            slab.data.append(&mut buf);
            slab.offsets.push(slab.data.len());
        }
        slab
    }
}

impl<T: Copy> NodeSlab<T> {
    /// Combine every butterfly partner pair `(node, node | chan_bit)`
    /// elementwise in one pass, writing the combined value to **both**
    /// partners: `lo[i] = hi[i] = op(lo[i], hi[i])`.
    ///
    /// Requires uniform segment lengths. Because node ids ascend in
    /// storage order, the nodes with `chan_bit` clear/set alternate as
    /// runs of `chan_bit` consecutive segments, so each partner pair is
    /// a `lo`/`hi` half of one contiguous `2 * chan_bit * l` block —
    /// the whole exchange is `p/2` straight-line slice combines with no
    /// per-pair offset lookups. Combine order and results are identical
    /// to looping [`NodeSlab::pair_mut`] with `op(lo, hi)` per element
    /// (the op is applied elementwise either way).
    ///
    /// # Panics
    /// Panics when segment lengths are not uniform, or `chan_bit` is not
    /// a power of two below `p`.
    pub fn butterfly_combine(&mut self, chan_bit: usize, op: impl Fn(T, T) -> T) {
        let p = self.p();
        assert!(
            chan_bit.is_power_of_two() && chan_bit < p,
            "chan_bit {chan_bit} is not a channel of a {p}-node slab"
        );
        let Some(l) = self.uniform_seg_len() else {
            panic!("butterfly_combine requires uniform segment lengths");
        };
        if l == 0 {
            return;
        }
        let half = chan_bit * l;
        for block in self.data.chunks_exact_mut(2 * half) {
            let (lo, hi) = block.split_at_mut(half);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let combined = op(*a, *b);
                *a = combined;
                *b = combined;
            }
        }
    }
}

impl<T: Clone> NodeSlab<T> {
    /// A slab with the given per-node lengths, filled with `fill`.
    #[must_use]
    pub fn filled(lens: &[usize], fill: T) -> Self {
        let total: usize = lens.iter().sum();
        let mut offsets = Vec::with_capacity(lens.len() + 1);
        offsets.push(0);
        let mut acc = 0usize;
        for &l in lens {
            acc += l;
            offsets.push(acc);
        }
        NodeSlab { offsets, data: vec![fill; total] }
    }

    /// Append a segment copied from a slice (builder API).
    pub fn push_seg(&mut self, seg: &[T]) {
        self.data.extend_from_slice(seg);
        self.offsets.push(self.data.len());
    }

    /// Copy a nested `Vec<Vec<T>>` into a slab.
    #[must_use]
    pub fn from_nested(nested: &[Vec<T>]) -> Self {
        let total: usize = nested.iter().map(Vec::len).sum();
        let mut slab = NodeSlab::with_capacity(nested.len(), total);
        for buf in nested {
            slab.push_seg(buf);
        }
        slab
    }

    /// Copy out to the nested representation (adapter shims; tests).
    #[must_use]
    pub fn to_nested(&self) -> Vec<Vec<T>> {
        (0..self.p()).map(|i| self.seg(i).to_vec()).collect()
    }

    /// Overwrite `out` (one `Vec` per node, reusing their allocations)
    /// with this slab's segments.
    ///
    /// # Panics
    /// Panics if `out.len() != self.p()`.
    pub fn write_nested(&self, out: &mut [Vec<T>]) {
        assert_eq!(out.len(), self.p(), "one Vec per node");
        for (i, buf) in out.iter_mut().enumerate() {
            buf.clear();
            buf.extend_from_slice(self.seg(i));
        }
    }
}

impl<T> Index<usize> for NodeSlab<T> {
    type Output = [T];
    fn index(&self, i: usize) -> &[T] {
        self.seg(i)
    }
}

impl<T> IndexMut<usize> for NodeSlab<T> {
    fn index_mut(&mut self, i: usize) -> &mut [T] {
        self.seg_mut(i)
    }
}

/// Per-node, per-destination segmented arena: `p * nseg` variable-length
/// segments in one allocation, laid out node-major (`node * nseg + s`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegSlab<T> {
    nseg: usize,
    /// `p * nseg + 1` monotone offsets into `data`.
    offsets: Vec<usize>,
    data: Vec<T>,
}

impl<T> SegSlab<T> {
    /// A slab with `p * nseg` empty segments.
    #[must_use]
    pub fn new(p: usize, nseg: usize) -> Self {
        SegSlab { nseg, offsets: vec![0; p * nseg + 1], data: Vec::new() }
    }

    /// An empty builder for `p` nodes of `nseg` segments each; push
    /// `p * nseg` segments in `(node, seg)` lexicographic order.
    #[must_use]
    pub fn with_capacity(nseg: usize, p: usize, data_capacity: usize) -> Self {
        let mut offsets = Vec::with_capacity(p * nseg + 1);
        offsets.push(0);
        SegSlab { nseg, offsets, data: Vec::with_capacity(data_capacity) }
    }

    /// Segments per node.
    #[must_use]
    pub fn nseg(&self) -> usize {
        self.nseg
    }

    /// Number of nodes.
    #[must_use]
    pub fn p(&self) -> usize {
        (self.offsets.len() - 1).checked_div(self.nseg).unwrap_or(0)
    }

    /// Total elements across all segments.
    #[must_use]
    pub fn total_len(&self) -> usize {
        // vmplint: allow(p1) — offsets holds at least the leading 0 by construction in every constructor
        *self.offsets.last().expect("offsets never empty")
    }

    fn slot(&self, node: usize, s: usize) -> usize {
        debug_assert!(s < self.nseg);
        node * self.nseg + s
    }

    /// Length of segment `s` on `node`.
    #[must_use]
    pub fn seg_len(&self, node: usize, s: usize) -> usize {
        let k = self.slot(node, s);
        self.offsets[k + 1] - self.offsets[k]
    }

    /// Segment `s` on `node`.
    #[must_use]
    pub fn seg(&self, node: usize, s: usize) -> &[T] {
        let k = self.slot(node, s);
        &self.data[self.offsets[k]..self.offsets[k + 1]]
    }

    /// Segment `s` on `node`, mutably.
    pub fn seg_mut(&mut self, node: usize, s: usize) -> &mut [T] {
        let k = self.slot(node, s);
        &mut self.data[self.offsets[k]..self.offsets[k + 1]]
    }

    /// Append the next segment built by `f` (builder API; `(node, seg)`
    /// order).
    pub fn push_seg_with(&mut self, f: impl FnOnce(&mut Vec<T>)) {
        f(&mut self.data);
        self.offsets.push(self.data.len());
    }
}

impl<T: Clone> SegSlab<T> {
    /// Append the next segment copied from a slice (builder API).
    pub fn push_seg(&mut self, seg: &[T]) {
        self.data.extend_from_slice(seg);
        self.offsets.push(self.data.len());
    }

    /// Copy a nested `Vec<Vec<Vec<T>>>` (node → seg → elements) into a
    /// slab. All nodes must carry the same number of segments; nodes
    /// with no segments at all are treated as `nseg` empty ones.
    #[must_use]
    pub fn from_nested(nested: &[Vec<Vec<T>>], nseg: usize) -> Self {
        let total: usize = nested.iter().flat_map(|n| n.iter().map(Vec::len)).sum();
        let mut slab = SegSlab::with_capacity(nseg, nested.len(), total);
        for node in nested {
            if node.is_empty() {
                for _ in 0..nseg {
                    slab.offsets.push(slab.data.len());
                }
            } else {
                assert_eq!(node.len(), nseg, "uniform segment count per node");
                for seg in node {
                    slab.push_seg(seg);
                }
            }
        }
        slab
    }

    /// Copy out to the nested representation.
    #[must_use]
    pub fn to_nested(&self) -> Vec<Vec<Vec<T>>> {
        (0..self.p())
            .map(|node| (0..self.nseg).map(|s| self.seg(node, s).to_vec()).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_slab_roundtrip_and_views() {
        let nested = vec![vec![1, 2, 3], vec![], vec![4], vec![5, 6]];
        let slab = NodeSlab::from_nested(&nested);
        assert_eq!(slab.p(), 4);
        assert_eq!(slab.total_len(), 6);
        assert_eq!(slab.max_seg_len(), 3);
        assert_eq!(slab.len_of(1), 0);
        assert_eq!(&slab[0], &[1, 2, 3][..]);
        assert_eq!(&slab[2], &[4][..]);
        assert_eq!(slab.to_nested(), nested);
        assert_eq!(slab.offsets(), &[0, 3, 3, 4, 6]);
    }

    #[test]
    fn pair_mut_gives_disjoint_slices_in_order() {
        let mut slab = NodeSlab::from_nested(&[vec![1, 2], vec![10], vec![20, 21]]);
        {
            let (a, b) = slab.pair_mut(2, 0);
            assert_eq!(a, &[20, 21][..]);
            assert_eq!(b, &[1, 2][..]);
            a[0] = 99;
            b[1] = 88;
        }
        assert_eq!(&slab[2], &[99, 21][..]);
        assert_eq!(&slab[0], &[1, 88][..]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn pair_mut_rejects_same_segment() {
        let mut slab: NodeSlab<u8> = NodeSlab::new(3);
        let _ = slab.pair_mut(1, 1);
    }

    #[test]
    fn builder_and_clear_reuse() {
        let mut slab = NodeSlab::with_capacity(2, 8);
        slab.push_seg(&[7u32, 8]);
        slab.push_seg_with(|data| data.extend([9, 10, 11]));
        assert_eq!(slab.p(), 2);
        assert_eq!(slab.to_nested(), vec![vec![7, 8], vec![9, 10, 11]]);
        slab.clear();
        assert_eq!(slab.p(), 0);
        assert_eq!(slab.total_len(), 0);
        slab.push_seg(&[1]);
        assert_eq!(slab.to_nested(), vec![vec![1]]);
    }

    #[test]
    fn segs_mut_covers_all_nodes_disjointly() {
        let mut slab = NodeSlab::from_nested(&[vec![1, 2], vec![], vec![3]]);
        let segs = slab.segs_mut();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], &[1, 2][..]);
        assert_eq!(segs[1], &[][..]);
        assert_eq!(segs[2], &[3][..]);
    }

    #[test]
    fn write_nested_reuses_allocations() {
        let slab = NodeSlab::from_nested(&[vec![1, 2], vec![3]]);
        let mut out = vec![Vec::with_capacity(4), Vec::with_capacity(4)];
        slab.write_nested(&mut out);
        assert_eq!(out, vec![vec![1, 2], vec![3]]);
    }

    #[test]
    fn seg_slab_roundtrip() {
        let nested =
            vec![vec![vec![1], vec![2, 3]], vec![vec![], vec![4]], vec![vec![5, 6], vec![]]];
        let slab = SegSlab::from_nested(&nested, 2);
        assert_eq!(slab.p(), 3);
        assert_eq!(slab.nseg(), 2);
        assert_eq!(slab.total_len(), 6);
        assert_eq!(slab.seg(0, 1), &[2, 3][..]);
        assert_eq!(slab.seg_len(1, 0), 0);
        assert_eq!(slab.to_nested(), nested);
    }

    #[test]
    fn seg_slab_accepts_empty_nodes() {
        let nested = vec![vec![vec![1u8], vec![2]], vec![]];
        let slab = SegSlab::from_nested(&nested, 2);
        assert_eq!(slab.seg_len(1, 0), 0);
        assert_eq!(slab.seg_len(1, 1), 0);
    }

    #[test]
    fn from_nested_owned_moves_data() {
        let slab = NodeSlab::from_nested_owned(vec![vec![1i64, 2], vec![3]]);
        assert_eq!(slab.to_nested(), vec![vec![1, 2], vec![3]]);
    }

    #[test]
    fn filled_matches_lengths() {
        let slab = NodeSlab::filled(&[2, 0, 3], 7u16);
        assert_eq!(slab.to_nested(), vec![vec![7, 7], vec![], vec![7, 7, 7]]);
    }

    #[test]
    fn uniform_seg_len_detects_uniformity() {
        assert_eq!(NodeSlab::filled(&[3, 3, 3, 3], 0u8).uniform_seg_len(), Some(3));
        assert_eq!(NodeSlab::filled(&[3, 3, 2, 3], 0u8).uniform_seg_len(), None);
        assert_eq!(NodeSlab::filled(&[0, 0], 0u8).uniform_seg_len(), Some(0));
        assert_eq!(NodeSlab::<u8>::new(0).uniform_seg_len(), None);
    }

    #[test]
    fn butterfly_combine_matches_pair_mut_loop() {
        let p = 8usize;
        let l = 5usize;
        let mk = || {
            NodeSlab::from_nested(
                &(0..p)
                    .map(|n| (0..l).map(|i| (n * 31 + i) as f64 * 0.25 - 3.0).collect())
                    .collect::<Vec<Vec<f64>>>(),
            )
        };
        let op = |a: f64, b: f64| a + b * 0.5;
        for d in 0..3u32 {
            let bit = 1usize << d;
            let mut fast = mk();
            fast.butterfly_combine(bit, op);
            let mut slow = mk();
            for node in 0..p {
                if node & bit == 0 {
                    let (lo, hi) = slow.pair_mut(node, node | bit);
                    for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                        let combined = op(*a, *b);
                        *a = combined;
                        *b = combined;
                    }
                }
            }
            assert_eq!(fast.data(), slow.data(), "bit {bit}");
        }
    }
}
