//! Binary-reflected Gray codes.
//!
//! Grids and rings are embedded into Boolean cubes with binary-reflected
//! Gray codes (BRGC): consecutive Gray codes differ in exactly one bit, so
//! mesh neighbours land on cube neighbours (dilation 1). This is the
//! standard CM/iPSC embedding used by the paper and analysed at length in
//! Ho & Johnsson's mesh-embedding reports.

/// The binary-reflected Gray code of `i`.
#[inline]
#[must_use]
pub fn gray(i: usize) -> usize {
    i ^ (i >> 1)
}

/// Inverse Gray code: `gray_inverse(gray(i)) == i`.
///
/// Uses the standard prefix-XOR fold, `O(lg lg p)` word operations.
#[inline]
#[must_use]
pub fn gray_inverse(mut g: usize) -> usize {
    g ^= g >> 32;
    g ^= g >> 16;
    g ^= g >> 8;
    g ^= g >> 4;
    g ^= g >> 2;
    g ^= g >> 1;
    g
}

/// The cube dimension in which `gray(i)` and `gray(i + 1)` differ.
///
/// Equal to the number of trailing ones of `i`, i.e. the ruler sequence.
/// Useful for walking a Gray-coded ring one channel at a time.
#[inline]
#[must_use]
pub fn gray_step_dim(i: usize) -> u32 {
    (i + 1).trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_is_bijective_on_small_ranges() {
        for d in 0..12u32 {
            let n = 1usize << d;
            let mut seen = vec![false; n];
            for i in 0..n {
                let g = gray(i);
                assert!(g < n, "gray stays in range");
                assert!(!seen[g], "gray is injective");
                seen[g] = true;
            }
        }
    }

    #[test]
    fn gray_inverse_roundtrip() {
        for i in 0..(1usize << 14) {
            assert_eq!(gray_inverse(gray(i)), i);
            assert_eq!(gray(gray_inverse(i)), i);
        }
        // A few large values exercising the high-word folds.
        for &i in &[usize::MAX >> 1, 0xDEAD_BEEF_usize, 1usize << 40] {
            assert_eq!(gray_inverse(gray(i)), i);
        }
    }

    #[test]
    fn consecutive_grays_differ_in_one_bit() {
        for i in 0..(1usize << 12) {
            let diff = gray(i) ^ gray(i + 1);
            assert_eq!(diff.count_ones(), 1, "i = {i}");
        }
    }

    #[test]
    fn gray_step_dim_matches_actual_difference() {
        for i in 0..(1usize << 12) {
            let diff = gray(i) ^ gray(i + 1);
            assert_eq!(1usize << gray_step_dim(i), diff, "i = {i}");
        }
    }

    #[test]
    fn gray_ring_wraparound_power_of_two() {
        // For a ring of 2^d nodes the wrap edge gray(2^d - 1) -> gray(0)
        // also has Hamming distance 1 (it differs in the top bit only).
        for d in 1..12u32 {
            let n = 1usize << d;
            let diff = gray(n - 1) ^ gray(0);
            assert_eq!(diff.count_ones(), 1, "d = {d}");
        }
    }
}
