//! Element-granular general-router simulation — the **naive baseline**.
//!
//! The abstract's headline engineering claim is that the primitive-based
//! implementation beat "a naive implementation" by almost an order of
//! magnitude. The naive implementation on the Connection Machine is the
//! obvious one: give every matrix element to a virtual processor and let
//! the *general router* move elements one at a time — each element is an
//! individually addressed message paying the router's per-message
//! overhead, and hot spots (everyone fetching the same pivot row) serialise
//! on the channels into the destination.
//!
//! This module simulates that router at petit-cycle granularity: each
//! directed channel `(node, dim)` forwards at most one element per cycle,
//! elements follow e-cube (lowest-differing-dimension-first) paths, and
//! the machine is charged `router_alpha` per injected element on the
//! busiest node plus `router_cycle` per cycle until the network drains.
//! The contrast with [`crate::route::route_blocks`] — same traffic, `d`
//! start-ups total instead of one per element, no per-element cycling —
//! is exactly the paper's optimisation.

use std::collections::VecDeque;

use crate::machine::Hypercube;
use crate::topology::NodeId;

/// An individually routed element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElemMsg<T> {
    /// Destination node.
    pub dst: NodeId,
    /// Arrival-ordering key.
    pub tag: u64,
    /// Payload.
    pub val: T,
}

impl<T> ElemMsg<T> {
    /// Convenience constructor.
    pub fn new(dst: NodeId, tag: u64, val: T) -> Self {
        ElemMsg { dst, tag, val }
    }
}

/// Statistics of one router session, returned alongside the arrivals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Petit cycles until the network drained.
    pub cycles: u64,
    /// Total elements injected.
    pub injected: u64,
    /// Maximum elements injected by a single node.
    pub max_injected_per_node: u64,
    /// Total hops travelled by all elements.
    pub hops: u64,
}

/// Route every element to its destination through the cycle-accurate
/// general router, charging the machine, and return per-node arrivals
/// sorted by tag plus the session statistics.
pub fn route_elements<T: Copy>(
    hc: &mut Hypercube,
    outgoing: Vec<Vec<ElemMsg<T>>>,
) -> (Vec<Vec<ElemMsg<T>>>, RouterStats) {
    let cube = hc.cube();
    let p = cube.nodes();
    let d = cube.dim() as usize;
    assert_eq!(outgoing.len(), p, "one outgoing list per node expected");

    let mut stats = RouterStats::default();

    // Per-node queue of elements awaiting their next hop, plus arrivals.
    let mut queues: Vec<VecDeque<ElemMsg<T>>> = Vec::with_capacity(p);
    let mut arrived: Vec<Vec<ElemMsg<T>>> = (0..p).map(|_| Vec::new()).collect();
    for (node, list) in outgoing.into_iter().enumerate() {
        stats.injected += list.len() as u64;
        stats.max_injected_per_node = stats.max_injected_per_node.max(list.len() as u64);
        let mut q = VecDeque::with_capacity(list.len());
        for m in list {
            assert!(cube.contains(m.dst), "element destination {} out of range", m.dst);
            if m.dst == node {
                arrived[node].push(m);
            } else {
                q.push_back(m);
            }
        }
        queues.push(q);
    }

    let mut in_network: u64 = queues.iter().map(|q| q.len() as u64).sum();
    // Under the ForceSinglePort policy a node drives at most one of its
    // channels per cycle — the one-port counterpart to the all-port
    // collective schedules, so the router honours the same AlgoSelect
    // knob the collectives consult. Every other policy keeps the
    // hardware behaviour: all d channels concurrent.
    let ports_per_node =
        if hc.algo_select().policy == crate::cost::AlgoPolicy::ForceSinglePort { 1 } else { d };
    // Reusable per-cycle staging: (dest_node, element).
    let mut moved: Vec<(NodeId, ElemMsg<T>)> = Vec::new();

    while in_network > 0 {
        stats.cycles += 1;
        moved.clear();
        for node in 0..p {
            if queues[node].is_empty() {
                continue;
            }
            // Each directed channel (node, dim) carries at most one element
            // this cycle. Scan the queue once, picking the first element
            // for each still-free channel; e-cube: an element uses its
            // lowest differing dimension.
            let mut used = vec![false; d];
            let mut sent = 0usize;
            let qlen = queues[node].len();
            let mut kept = 0usize;
            for _ in 0..qlen {
                // vmplint: allow(p1) — loop bound is the queue length captured two lines up
                let m = queues[node].pop_front().expect("queue length checked");
                let diff = m.dst ^ node;
                debug_assert!(diff != 0);
                let dim = diff.trailing_zeros() as usize;
                if sent < ports_per_node && !used[dim] {
                    used[dim] = true;
                    sent += 1;
                    moved.push((node ^ (1usize << dim), m));
                    stats.hops += 1;
                } else {
                    queues[node].push_back(m);
                    kept += 1;
                }
            }
            debug_assert_eq!(queues[node].len(), kept);
        }
        debug_assert!(!moved.is_empty(), "router deadlock: nothing moved");
        for &(dest, m) in &moved {
            if m.dst == dest {
                arrived[dest].push(m);
                in_network -= 1;
            } else {
                queues[dest].push_back(m);
            }
        }
    }

    for list in &mut arrived {
        list.sort_by_key(|m| m.tag);
    }

    hc.charge_router_injection(stats.max_injected_per_node as usize, stats.injected);
    hc.charge_router_cycles(stats.cycles);
    (arrived, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn machine(dim: u32) -> Hypercube {
        Hypercube::new(dim, CostModel::unit())
    }

    #[test]
    fn empty_session_is_free() {
        let mut hc = machine(4);
        let out: Vec<Vec<ElemMsg<u32>>> = hc.empty_locals();
        let (arrived, stats) = route_elements(&mut hc, out);
        assert!(arrived.iter().all(Vec::is_empty));
        assert_eq!(stats.cycles, 0);
        assert_eq!(hc.elapsed_us(), 0.0);
    }

    #[test]
    fn self_addressed_elements_arrive_without_cycles() {
        let mut hc = machine(3);
        let mut out = hc.empty_locals();
        out[2].push(ElemMsg::new(2, 0, 7u32));
        let (arrived, stats) = route_elements(&mut hc, out);
        assert_eq!(arrived[2], vec![ElemMsg::new(2, 0, 7)]);
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.hops, 0);
    }

    #[test]
    fn single_element_takes_hamming_distance_cycles() {
        let mut hc = machine(4);
        let mut out = hc.empty_locals();
        out[0b0000].push(ElemMsg::new(0b0111, 0, 1.5f64));
        let (arrived, stats) = route_elements(&mut hc, out);
        assert_eq!(arrived[0b0111].len(), 1);
        assert_eq!(stats.cycles, 3);
        assert_eq!(stats.hops, 3);
    }

    #[test]
    fn permutation_delivers_everything() {
        let mut hc = machine(5);
        let p = hc.p();
        let mask = p - 1;
        let out: Vec<Vec<ElemMsg<usize>>> =
            (0..p).map(|n| vec![ElemMsg::new(n ^ mask, 0, n)]).collect();
        let (arrived, stats) = route_elements(&mut hc, out);
        for n in 0..p {
            assert_eq!(arrived[n].len(), 1);
            assert_eq!(arrived[n][0].val, n ^ mask);
        }
        assert_eq!(stats.injected, p as u64);
        assert_eq!(stats.hops, (p * 5) as u64, "every element crosses all 5 dims");
    }

    #[test]
    fn hotspot_serialises_on_destination_channels() {
        // Everyone sends k elements to node 0. Node 0 has only d incoming
        // channels, so draining takes at least total/(d) cycles.
        let mut hc = machine(4);
        let p = hc.p();
        let k = 4usize;
        let out: Vec<Vec<ElemMsg<u32>>> = (0..p)
            .map(|n| {
                if n == 0 {
                    vec![]
                } else {
                    (0..k).map(|j| ElemMsg::new(0, (n * k + j) as u64, n as u32)).collect()
                }
            })
            .collect();
        let (arrived, stats) = route_elements(&mut hc, out);
        assert_eq!(arrived[0].len(), (p - 1) * k);
        let total = ((p - 1) * k) as u64;
        assert!(
            stats.cycles >= total / 4,
            "hotspot must serialise: {} cycles for {} elements",
            stats.cycles,
            total
        );
    }

    #[test]
    fn arrivals_are_tag_sorted() {
        let mut hc = machine(3);
        let p = hc.p();
        let out: Vec<Vec<ElemMsg<usize>>> =
            (0..p).map(|n| vec![ElemMsg::new(3, (p - n) as u64, n)]).collect();
        let (arrived, _) = route_elements(&mut hc, out);
        let tags: Vec<u64> = arrived[3].iter().map(|m| m.tag).collect();
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_eq!(tags, sorted);
    }

    #[test]
    fn single_port_policy_throttles_router_fanout() {
        use crate::cost::{AlgoPolicy, AlgoSelect};
        // One node fans out to d distinct neighbours: all-port drains in
        // one cycle, a single-port node needs d cycles.
        let fanout = |policy: AlgoPolicy| {
            let mut hc = machine(4);
            hc.set_algo_select(AlgoSelect { policy, ..AlgoSelect::default() });
            let mut out = hc.empty_locals();
            for dim in 0..4u64 {
                out[0].push(ElemMsg::new(1usize << dim, dim, dim));
            }
            let (arrived, stats) = route_elements(&mut hc, out);
            for dim in 0..4usize {
                assert_eq!(arrived[1 << dim].len(), 1);
            }
            stats.cycles
        };
        assert_eq!(fanout(AlgoPolicy::Auto), 1, "default keeps concurrent channels");
        assert_eq!(fanout(AlgoPolicy::ForceSinglePort), 4, "one element per node per cycle");
    }

    #[test]
    fn charges_injection_and_cycles() {
        let mut hc = machine(3);
        let mut out = hc.empty_locals();
        out[0].push(ElemMsg::new(7, 0, 1u8));
        out[0].push(ElemMsg::new(7, 1, 2u8));
        let (_, stats) = route_elements(&mut hc, out);
        // unit model: router_alpha = 1 per injected element on busiest
        // node (2), router_cycle = 1 per cycle.
        assert_eq!(hc.elapsed_us(), 2.0 + stats.cycles as f64);
        assert_eq!(hc.counters().router_elements, 2);
        assert_eq!(hc.counters().router_cycles, stats.cycles);
    }

    #[test]
    fn blocked_router_beats_element_router_on_bulk_traffic() {
        // The whole point of the paper: same permutation traffic, the
        // blocked e-cube router pays d start-ups; the element router pays
        // one overhead per element and cycles per element-hop.
        use crate::route::{route_blocks, Block};
        let k = 64usize; // elements per node
                         // Use the CM-2 preset: the naive penalty is the per-element router
                         // overhead, which the unit model deliberately understates.
        let mut hc_blocked = Hypercube::new(5, CostModel::cm2());
        let p = hc_blocked.p();
        let mask = p - 1;
        let out_blocks: Vec<Vec<Block<u32>>> =
            (0..p).map(|n| vec![Block::new(n ^ mask, 0, vec![n as u32; k])]).collect();
        route_blocks(&mut hc_blocked, out_blocks);

        let mut hc_naive = Hypercube::new(5, CostModel::cm2());
        let out_elems: Vec<Vec<ElemMsg<u32>>> = (0..p)
            .map(|n| (0..k).map(|j| ElemMsg::new(n ^ mask, j as u64, n as u32)).collect())
            .collect();
        route_elements(&mut hc_naive, out_elems);

        assert!(
            hc_naive.elapsed_us() > 2.0 * hc_blocked.elapsed_us(),
            "naive {} vs blocked {}",
            hc_naive.elapsed_us(),
            hc_blocked.elapsed_us()
        );
    }
}
