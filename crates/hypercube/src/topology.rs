//! Boolean *d*-cube topology: node identifiers, neighbours, subcubes.
//!
//! A Boolean cube (hypercube) of dimension `d` has `p = 2^d` nodes. Node
//! identifiers are the integers `0..p`, and two nodes are neighbours iff
//! their identifiers differ in exactly one bit. The bit position is called
//! the *dimension* of the connecting channel.
//!
//! This module is pure address arithmetic: no data, no cost accounting.
//! It mirrors the machine model of the Connection Machine and the Intel
//! iPSC used throughout the TMC/Yale technical-report corpus the paper
//! builds on.

/// A node identifier in a Boolean cube. Plain `usize` so it can index
/// per-processor storage directly.
pub type NodeId = usize;

/// The static shape of a Boolean cube: its dimension `d` (so `p = 2^d`).
///
/// `Cube` is deliberately tiny and `Copy`; it is threaded through every
/// collective and routing routine as the source of truth for addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cube {
    dim: u32,
}

impl Cube {
    /// Maximum supported cube dimension. 24 dimensions = 16Mi nodes, far
    /// beyond anything the simulator can hold in memory; the bound exists
    /// only to keep `1 << dim` well-defined on 32-bit `usize` targets.
    pub const MAX_DIM: u32 = 24;

    /// Create a cube of dimension `dim` (`2^dim` nodes).
    ///
    /// # Panics
    /// Panics if `dim > Self::MAX_DIM`.
    #[must_use]
    pub fn new(dim: u32) -> Self {
        assert!(dim <= Self::MAX_DIM, "cube dimension {dim} exceeds maximum {}", Self::MAX_DIM);
        Cube { dim }
    }

    /// The smallest cube with at least `n` nodes.
    #[must_use]
    pub fn with_at_least(n: usize) -> Self {
        let mut dim = 0;
        while (1usize << dim) < n {
            dim += 1;
        }
        Cube::new(dim)
    }

    /// Cube dimension `d`.
    #[inline]
    #[must_use]
    pub fn dim(self) -> u32 {
        self.dim
    }

    /// Number of nodes `p = 2^d`.
    #[inline]
    #[must_use]
    pub fn nodes(self) -> usize {
        1usize << self.dim
    }

    /// `lg p = d`, as used in the paper's `m > p lg p` optimality bound.
    #[inline]
    #[must_use]
    pub fn lg_p(self) -> u32 {
        self.dim
    }

    /// True iff `node` is a valid identifier in this cube.
    #[inline]
    #[must_use]
    pub fn contains(self, node: NodeId) -> bool {
        node < self.nodes()
    }

    /// The neighbour of `node` across cube dimension `d`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `d >= self.dim()` or `node` is out of
    /// range.
    #[inline]
    #[must_use]
    pub fn neighbor(self, node: NodeId, d: u32) -> NodeId {
        debug_assert!(d < self.dim, "dimension {d} out of range for {self:?}");
        debug_assert!(self.contains(node));
        node ^ (1usize << d)
    }

    /// Iterator over all node identifiers.
    pub fn iter_nodes(self) -> impl Iterator<Item = NodeId> {
        0..self.nodes()
    }

    /// Iterator over the cube's dimensions `0..d`.
    pub fn iter_dims(self) -> impl Iterator<Item = u32> {
        0..self.dim
    }

    /// Hamming distance between two nodes — the routing distance in the
    /// cube (each differing bit costs one hop under e-cube routing).
    #[inline]
    #[must_use]
    pub fn distance(self, a: NodeId, b: NodeId) -> u32 {
        debug_assert!(self.contains(a) && self.contains(b));
        ((a ^ b) as u64).count_ones()
    }

    /// Split off the subcube coordinates of `node` selected by the bit
    /// positions in `dims`: returns the packed value of those bits, in the
    /// order given (first dim = least-significant packed bit).
    ///
    /// This is how a 2-D processor grid addresses a node: the row dims and
    /// column dims of the grid are disjoint subsets of the cube dims.
    #[must_use]
    pub fn extract_coords(self, node: NodeId, dims: &[u32]) -> usize {
        let mut packed = 0usize;
        for (i, &d) in dims.iter().enumerate() {
            debug_assert!(d < self.dim);
            packed |= ((node >> d) & 1) << i;
        }
        packed
    }

    /// Inverse of [`Cube::extract_coords`]: scatter the low bits of
    /// `packed` into the bit positions `dims` (other bits zero).
    #[must_use]
    pub fn deposit_coords(self, packed: usize, dims: &[u32]) -> usize {
        let mut node = 0usize;
        for (i, &d) in dims.iter().enumerate() {
            debug_assert!(d < self.dim);
            node |= ((packed >> i) & 1) << d;
        }
        node
    }

    /// Replace the bits of `node` at positions `dims` with the low bits of
    /// `packed`, leaving every other bit untouched.
    #[must_use]
    pub fn with_coords(self, node: NodeId, packed: usize, dims: &[u32]) -> NodeId {
        let mut out = node;
        for (i, &d) in dims.iter().enumerate() {
            debug_assert!(d < self.dim);
            let bit = (packed >> i) & 1;
            out = (out & !(1usize << d)) | (bit << d);
        }
        out
    }

    /// Iterate over the nodes of the subcube spanned by `dims` that
    /// contains `anchor` (i.e. vary exactly the bits in `dims`, keep the
    /// rest as in `anchor`). Yields `2^{|dims|}` nodes, `anchor`'s
    /// subcube-local coordinate order.
    pub fn subcube_nodes<'a>(
        self,
        anchor: NodeId,
        dims: &'a [u32],
    ) -> impl Iterator<Item = NodeId> + 'a {
        let base = {
            let mut b = anchor;
            for &d in dims {
                b &= !(1usize << d);
            }
            b
        };
        (0..(1usize << dims.len())).map(move |packed| base | self.deposit_coords(packed, dims))
    }

    /// The mask with a one in each position listed in `dims`.
    #[must_use]
    pub fn dims_mask(self, dims: &[u32]) -> usize {
        let mut m = 0usize;
        for &d in dims {
            debug_assert!(d < self.dim);
            m |= 1usize << d;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_basic_shape() {
        let c = Cube::new(4);
        assert_eq!(c.dim(), 4);
        assert_eq!(c.nodes(), 16);
        assert_eq!(c.lg_p(), 4);
        assert!(c.contains(15));
        assert!(!c.contains(16));
    }

    #[test]
    fn cube_zero_dim_is_single_node() {
        let c = Cube::new(0);
        assert_eq!(c.nodes(), 1);
        assert!(c.contains(0));
        assert_eq!(c.iter_dims().count(), 0);
    }

    #[test]
    fn with_at_least_rounds_up() {
        assert_eq!(Cube::with_at_least(1).nodes(), 1);
        assert_eq!(Cube::with_at_least(2).nodes(), 2);
        assert_eq!(Cube::with_at_least(3).nodes(), 4);
        assert_eq!(Cube::with_at_least(1024).nodes(), 1024);
        assert_eq!(Cube::with_at_least(1025).nodes(), 2048);
    }

    #[test]
    fn neighbors_differ_in_one_bit() {
        let c = Cube::new(5);
        for node in c.iter_nodes() {
            for d in c.iter_dims() {
                let n = c.neighbor(node, d);
                assert_eq!(c.distance(node, n), 1);
                assert_eq!(c.neighbor(n, d), node, "neighbour is an involution");
            }
        }
    }

    #[test]
    fn distance_is_hamming() {
        let c = Cube::new(6);
        assert_eq!(c.distance(0b101010, 0b010101), 6);
        assert_eq!(c.distance(0, 0), 0);
        assert_eq!(c.distance(0b111, 0b110), 1);
    }

    #[test]
    fn extract_deposit_roundtrip() {
        let c = Cube::new(6);
        let dims = [1u32, 3, 4];
        for node in c.iter_nodes() {
            let coords = c.extract_coords(node, &dims);
            let rebuilt = c.with_coords(node, coords, &dims);
            assert_eq!(rebuilt, node);
            assert_eq!(c.extract_coords(c.deposit_coords(coords, &dims), &dims), coords);
        }
    }

    #[test]
    fn with_coords_changes_only_selected_dims() {
        let c = Cube::new(6);
        let dims = [0u32, 2];
        let node = 0b101010;
        let out = c.with_coords(node, 0b11, &dims);
        assert_eq!(out & !c.dims_mask(&dims), node & !c.dims_mask(&dims));
        assert_eq!(c.extract_coords(out, &dims), 0b11);
    }

    #[test]
    fn subcube_nodes_spans_exactly_the_subcube() {
        let c = Cube::new(5);
        let dims = [1u32, 4];
        let anchor = 0b10101;
        let nodes: Vec<_> = c.subcube_nodes(anchor, &dims).collect();
        assert_eq!(nodes.len(), 4);
        // All nodes agree with anchor outside `dims`.
        let keep = !c.dims_mask(&dims);
        for &n in &nodes {
            assert_eq!(n & keep, anchor & keep);
        }
        // And all 4 coordinate assignments appear.
        let mut coords: Vec<_> = nodes.iter().map(|&n| c.extract_coords(n, &dims)).collect();
        coords.sort_unstable();
        assert_eq!(coords, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dims_mask_collects_bits() {
        let c = Cube::new(8);
        assert_eq!(c.dims_mask(&[0, 3, 7]), 0b1000_1001);
        assert_eq!(c.dims_mask(&[]), 0);
    }
}
