//! The simulated hypercube multiprocessor.
//!
//! [`Hypercube`] bundles the cube topology, the cost model, a simulated
//! clock and event counters. It does **not** own application data:
//! distributed data lives in per-processor buffers (`Vec<Vec<T>>`, indexed
//! by [`NodeId`]) held by the caller, and the communication routines in
//! [`crate::collective`] and [`crate::route`] transform those buffers
//! while charging the machine for the time the operation would take.
//!
//! The accounting discipline is BSP-like and matches the analyses in the
//! Johnsson/Ho reports: execution is a sequence of *supersteps*; a
//! communication superstep in which every node exchanges at most `n`
//! elements with a neighbour costs `alpha + n * beta`; a local compute
//! superstep costs `gamma * f` where `f` is the critical-path (maximum
//! per-processor) operation count. Because the simulator really moves the
//! data, results are bit-exact and independently testable against serial
//! oracles; only the *clock* is modelled.

use crate::cost::CostModel;
use crate::counters::Counters;
use crate::topology::{Cube, NodeId};

/// A simulated Boolean-cube multiprocessor: topology + cost accounting.
#[derive(Debug, Clone)]
pub struct Hypercube {
    cube: Cube,
    cost: CostModel,
    clock_us: f64,
    counters: Counters,
}

impl Hypercube {
    /// A machine with `2^dim` processors under the given cost model.
    #[must_use]
    pub fn new(dim: u32, cost: CostModel) -> Self {
        Hypercube { cube: Cube::new(dim), cost, clock_us: 0.0, counters: Counters::default() }
    }

    /// A CM-2-flavoured machine (the paper's target) with `2^dim` nodes.
    #[must_use]
    pub fn cm2(dim: u32) -> Self {
        Self::new(dim, CostModel::cm2())
    }

    /// The cube topology.
    #[inline]
    #[must_use]
    pub fn cube(&self) -> Cube {
        self.cube
    }

    /// Number of processors `p`.
    #[inline]
    #[must_use]
    pub fn p(&self) -> usize {
        self.cube.nodes()
    }

    /// Cube dimension `d = lg p`.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> u32 {
        self.cube.dim()
    }

    /// The cost model in force.
    #[inline]
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Simulated time elapsed since construction or the last
    /// [`Hypercube::reset`], in microseconds.
    #[inline]
    #[must_use]
    pub fn elapsed_us(&self) -> f64 {
        self.clock_us
    }

    /// Event counters accumulated so far.
    #[inline]
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Zero the clock and counters (topology and cost model stay).
    pub fn reset(&mut self) {
        self.clock_us = 0.0;
        self.counters.reset();
    }

    // ----- charging primitives (called by communication/compute code) ---

    /// Charge one blocked message superstep: every active node exchanges
    /// at most `max_per_channel` elements with one neighbour.
    /// `total_elements` is the machine-wide element count, for counters.
    pub fn charge_message_step(&mut self, max_per_channel: usize, total_elements: u64) {
        self.clock_us += self.cost.message(max_per_channel);
        self.counters.message_steps += 1;
        self.counters.elements_transferred += total_elements;
        self.counters.max_channel_load = self.counters.max_channel_load.max(max_per_channel as u64);
    }

    /// Charge a local compute superstep of `critical_flops` operations on
    /// the busiest processor.
    pub fn charge_flops(&mut self, critical_flops: usize) {
        self.clock_us += self.cost.flops(critical_flops);
        self.counters.flops += critical_flops as u64;
    }

    /// Charge a local data-movement superstep of `critical_moves` element
    /// copies on the busiest processor.
    pub fn charge_moves(&mut self, critical_moves: usize) {
        self.clock_us += self.cost.moves(critical_moves);
        self.counters.local_moves += critical_moves as u64;
    }

    /// Charge the per-element injection overhead of the general router
    /// (naive baseline): the busiest processor injects
    /// `max_injected_per_node` individually addressed elements.
    pub fn charge_router_injection(&mut self, max_injected_per_node: usize, total_elements: u64) {
        self.clock_us += self.cost.router_alpha * max_injected_per_node as f64;
        self.counters.router_elements += total_elements;
    }

    /// Charge `cycles` router petit cycles (naive baseline).
    pub fn charge_router_cycles(&mut self, cycles: u64) {
        self.clock_us += self.cost.router_cycle * cycles as f64;
        self.counters.router_cycles += cycles;
    }

    /// Add raw time (used by ablation schedules that price themselves).
    pub fn charge_raw_us(&mut self, us: f64) {
        debug_assert!(us >= 0.0);
        self.clock_us += us;
    }

    /// Allocate an empty per-processor buffer set: one `Vec<T>` per node.
    #[must_use]
    pub fn empty_locals<T>(&self) -> Vec<Vec<T>> {
        (0..self.p()).map(|_| Vec::new()).collect()
    }

    /// Build per-processor buffers by calling `f(node)` for each node.
    #[must_use]
    pub fn locals_from_fn<T>(&self, f: impl FnMut(NodeId) -> Vec<T>) -> Vec<Vec<T>> {
        (0..self.p()).map(f).collect()
    }
}

/// Run a local compute step on every processor's buffer, in parallel on
/// the host with rayon when the machine-wide work is large enough to pay
/// for the fork/join, and charge `critical_flops` on `hc`.
///
/// `f(node, buf)` must be independent across nodes — the usual SPMD local
/// phase. `critical_flops` is the max per-processor operation count, which
/// the caller knows from its load-balance guarantees.
pub fn local_compute<T: Send, F>(hc: &mut Hypercube, locals: &mut [Vec<T>], critical_flops: usize, f: F)
where
    F: Fn(NodeId, &mut Vec<T>) + Sync,
{
    use rayon::prelude::*;
    // Rough machine-wide work estimate decides host-parallel execution.
    let total_work = critical_flops.saturating_mul(locals.len());
    if total_work >= 1 << 15 {
        locals.par_iter_mut().enumerate().for_each(|(node, buf)| f(node, buf));
    } else {
        for (node, buf) in locals.iter_mut().enumerate() {
            f(node, buf);
        }
    }
    hc.charge_flops(critical_flops);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_machine_has_zero_clock() {
        let hc = Hypercube::new(5, CostModel::unit());
        assert_eq!(hc.p(), 32);
        assert_eq!(hc.dim(), 5);
        assert_eq!(hc.elapsed_us(), 0.0);
        assert_eq!(*hc.counters(), Counters::default());
    }

    #[test]
    fn message_step_charges_affine_cost() {
        let mut hc = Hypercube::new(3, CostModel::unit());
        hc.charge_message_step(10, 80);
        assert_eq!(hc.elapsed_us(), 11.0); // alpha + 10*beta
        assert_eq!(hc.counters().message_steps, 1);
        assert_eq!(hc.counters().elements_transferred, 80);
        assert_eq!(hc.counters().max_channel_load, 10);
    }

    #[test]
    fn flops_and_moves_accumulate() {
        let mut hc = Hypercube::new(2, CostModel::unit());
        hc.charge_flops(7);
        hc.charge_moves(3);
        assert_eq!(hc.counters().flops, 7);
        assert_eq!(hc.counters().local_moves, 3);
        assert_eq!(hc.elapsed_us(), 7.0); // delta = 0 in unit model
    }

    #[test]
    fn reset_zeroes_clock_and_counters() {
        let mut hc = Hypercube::new(2, CostModel::unit());
        hc.charge_message_step(1, 2);
        hc.reset();
        assert_eq!(hc.elapsed_us(), 0.0);
        assert_eq!(*hc.counters(), Counters::default());
        assert_eq!(hc.p(), 4, "topology survives reset");
    }

    #[test]
    fn local_compute_runs_every_node_and_charges() {
        let mut hc = Hypercube::new(4, CostModel::unit());
        let mut locals: Vec<Vec<u64>> = hc.locals_from_fn(|n| vec![n as u64]);
        local_compute(&mut hc, &mut locals, 5, |node, buf| {
            buf[0] += 100 + node as u64;
        });
        for (node, buf) in locals.iter().enumerate() {
            assert_eq!(buf[0], 100 + 2 * node as u64);
        }
        assert_eq!(hc.counters().flops, 5);
        assert_eq!(hc.elapsed_us(), 5.0);
    }

    #[test]
    fn local_compute_parallel_path_matches_serial() {
        // Force the rayon path by a large critical_flops value.
        let mut hc = Hypercube::new(6, CostModel::unit());
        let mut locals: Vec<Vec<u64>> = hc.locals_from_fn(|n| vec![n as u64; 16]);
        local_compute(&mut hc, &mut locals, 1 << 16, |node, buf| {
            for v in buf.iter_mut() {
                *v = v.wrapping_mul(3).wrapping_add(node as u64);
            }
        });
        for (node, buf) in locals.iter().enumerate() {
            for v in buf {
                assert_eq!(*v, (node as u64).wrapping_mul(3).wrapping_add(node as u64));
            }
        }
    }
}
