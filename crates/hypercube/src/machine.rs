//! The simulated hypercube multiprocessor.
//!
//! [`Hypercube`] bundles the cube topology, the cost model, a simulated
//! clock and event counters. It does **not** own application data:
//! distributed data lives in per-processor buffers (`Vec<Vec<T>>`, indexed
//! by [`NodeId`]) held by the caller, and the communication routines in
//! [`crate::collective`] and [`crate::route`] transform those buffers
//! while charging the machine for the time the operation would take.
//!
//! The accounting discipline is BSP-like and matches the analyses in the
//! Johnsson/Ho reports: execution is a sequence of *supersteps*; a
//! communication superstep in which every node exchanges at most `n`
//! elements with a neighbour costs `alpha + n * beta`; a local compute
//! superstep costs `gamma * f` where `f` is the critical-path (maximum
//! per-processor) operation count. Because the simulator really moves the
//! data, results are bit-exact and independently testable against serial
//! oracles; only the *clock* is modelled.

use crate::cost::{allport_schedule, Algo, AlgoSelect, Collective, CostModel};
use crate::counters::Counters;
use crate::fault::{FaultPlan, ResilientConfig};
use crate::topology::{Cube, NodeId};

/// Fault-injection state installed on a machine: the plan, the recovery
/// policy, and the logical→physical host map used for graceful
/// degradation after node failures.
#[derive(Debug, Clone)]
struct FaultCtx {
    plan: FaultPlan,
    config: ResilientConfig,
    /// `host_map[logical] = physical` — which healthy node actually
    /// hosts each logical node's block after degradation remaps.
    host_map: Vec<NodeId>,
    /// Max logical nodes per physical host (1 = no degradation); local
    /// compute supersteps serialize by this factor.
    load_factor: usize,
}

/// A simulated Boolean-cube multiprocessor: topology + cost accounting.
#[derive(Debug, Clone)]
pub struct Hypercube {
    cube: Cube,
    cost: CostModel,
    algo: AlgoSelect,
    clock_us: f64,
    counters: Counters,
    fault: Option<Box<FaultCtx>>,
}

impl Hypercube {
    /// A machine with `2^dim` processors under the given cost model.
    #[must_use]
    pub fn new(dim: u32, cost: CostModel) -> Self {
        Hypercube {
            cube: Cube::new(dim),
            cost,
            algo: AlgoSelect::default(),
            clock_us: 0.0,
            counters: Counters::default(),
            fault: None,
        }
    }

    /// A CM-2-flavoured machine (the paper's target) with `2^dim` nodes.
    #[must_use]
    pub fn cm2(dim: u32) -> Self {
        Self::new(dim, CostModel::cm2())
    }

    /// The cube topology.
    #[inline]
    #[must_use]
    pub fn cube(&self) -> Cube {
        self.cube
    }

    /// Number of processors `p`.
    #[inline]
    #[must_use]
    pub fn p(&self) -> usize {
        self.cube.nodes()
    }

    /// Cube dimension `d = lg p`.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> u32 {
        self.cube.dim()
    }

    /// The cost model in force.
    #[inline]
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The collective schedule selector in force.
    #[inline]
    #[must_use]
    pub fn algo_select(&self) -> AlgoSelect {
        self.algo
    }

    /// Replace the collective schedule selector (policy + pipeline cell).
    pub fn set_algo_select(&mut self, algo: AlgoSelect) {
        self.algo = algo;
    }

    /// Whether the machine currently has live fault state: a non-empty
    /// fault plan, or degradation remaps doubling up hosts. The
    /// collectives fall back to single-port schedules (whose exchange
    /// steps carry the detour/retry/remap machinery) whenever this is
    /// true; an *empty* installed plan stays on the fast paths, keeping
    /// the zero-overhead invariant.
    #[inline]
    #[must_use]
    pub fn live_faults(&self) -> bool {
        self.fault.as_deref().is_some_and(|ctx| !ctx.plan.is_empty() || ctx.load_factor > 1)
    }

    /// Choose the schedule for one collective call over `k` dimensions
    /// with critical-path segment length `max_len`, consulting the
    /// machine's selector, cost model, and live fault state.
    #[must_use]
    pub fn choose_algo(&self, kind: Collective, k: usize, max_len: usize) -> Algo {
        self.algo.choose(&self.cost, kind, k, max_len, self.live_faults())
    }

    /// Charge the all-port schedule for one collective: `steps`
    /// concurrent supersteps of `message(per_port)` plus the per-step
    /// critical-path combines. Each superstep advances the fault clock
    /// like any other message step (all-port schedules only run when
    /// [`Hypercube::live_faults`] is false, so there is no detour
    /// machinery to consult). `total_elements` is the machine-wide
    /// element count for the whole collective, booked on the first step.
    pub fn charge_allport(
        &mut self,
        kind: Collective,
        k: usize,
        max_len: usize,
        chunks: usize,
        total_elements: u64,
    ) {
        let s = allport_schedule(kind, k, max_len, chunks);
        for step in 0..s.steps {
            self.charge_message_step(s.per_port, if step == 0 { total_elements } else { 0 });
            self.counters.allport_steps += 1;
            if s.per_step_flops > 0 {
                self.charge_flops(s.per_step_flops);
            }
        }
    }

    /// Simulated time elapsed since construction or the last
    /// [`Hypercube::reset`], in microseconds.
    #[inline]
    #[must_use]
    pub fn elapsed_us(&self) -> f64 {
        self.clock_us
    }

    /// Event counters accumulated so far.
    #[inline]
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Mutable counters for in-crate communication code that tallies
    /// fault events it simulates itself (e.g. the resilient router).
    #[inline]
    pub(crate) fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// Zero the clock and counters (topology and cost model stay, as
    /// does any installed fault state).
    pub fn reset(&mut self) {
        self.clock_us = 0.0;
        self.counters.reset();
    }

    // ----- fault injection & graceful degradation ----------------------

    /// Install a fault plan and recovery policy. Until this is called
    /// (or after [`Hypercube::clear_faults`]) the machine takes the
    /// plain communication paths with zero overhead.
    pub fn install_faults(&mut self, plan: FaultPlan, config: ResilientConfig) {
        let host_map = (0..self.p()).collect();
        self.fault = Some(Box::new(FaultCtx { plan, config, host_map, load_factor: 1 }));
    }

    /// Remove any installed fault state (host map included).
    pub fn clear_faults(&mut self) {
        self.fault = None;
    }

    /// Whether a fault plan is installed.
    #[inline]
    #[must_use]
    pub fn fault_active(&self) -> bool {
        self.fault.is_some()
    }

    /// The installed fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_deref().map(|ctx| &ctx.plan)
    }

    /// The installed recovery policy, if any.
    #[must_use]
    pub fn resilient_config(&self) -> Option<&ResilientConfig> {
        self.fault.as_deref().map(|ctx| &ctx.config)
    }

    /// The current fault clock: message supersteps executed so far.
    /// [`FaultPlan`] activation schedules are expressed on this clock.
    #[inline]
    #[must_use]
    pub fn fault_step(&self) -> u64 {
        self.counters.message_steps
    }

    /// Physical host of `logical` under the degradation host map
    /// (identity when no fault state or no remap has been applied).
    #[must_use]
    pub fn host_of(&self, logical: NodeId) -> NodeId {
        match &self.fault {
            Some(ctx) => ctx.host_map[logical],
            None => logical,
        }
    }

    /// Max logical nodes hosted by one physical node (1 = healthy).
    #[must_use]
    pub fn load_factor(&self) -> usize {
        self.fault.as_deref().map_or(1, |ctx| ctx.load_factor)
    }

    /// Remap the dead node `dead` (and anything it was hosting) onto the
    /// healthy node `host`: graceful degradation after a node failure.
    /// Subsequent traffic between co-hosted logical nodes is local, and
    /// local compute supersteps serialize by the resulting load factor.
    ///
    /// Installs an empty fault plan if none is present, so degradation
    /// can be exercised without injected communication faults.
    ///
    /// # Panics
    /// Panics if `dead == host` or either node is out of range.
    pub fn remap_node(&mut self, dead: NodeId, host: NodeId) {
        assert!(dead != host, "cannot host a dead node on itself");
        assert!(self.cube.contains(dead) && self.cube.contains(host), "remap node out of range");
        if self.fault.is_none() {
            self.install_faults(FaultPlan::none(0), ResilientConfig::default());
        }
        let ctx = self.fault.as_deref_mut().expect("fault ctx just installed");
        assert!(ctx.host_map[host] == host, "target host {host} is itself remapped away");
        for h in ctx.host_map.iter_mut() {
            if *h == dead {
                *h = host;
            }
        }
        let p = ctx.host_map.len();
        let mut mult = vec![0usize; p];
        for &h in &ctx.host_map {
            mult[h] += 1;
        }
        ctx.load_factor = mult.into_iter().max().unwrap_or(1);
        self.counters.node_remaps += 1;
    }

    /// Record `elements` migrated off a dead node during a degradation
    /// remap (the traffic itself is charged by the routing that moves it).
    pub fn note_migration(&mut self, elements: u64) {
        self.counters.migrated_elements += elements;
    }

    // ----- charging primitives (called by communication/compute code) ---

    /// Charge one blocked message superstep: every active node exchanges
    /// at most `max_per_channel` elements with one neighbour.
    /// `total_elements` is the machine-wide element count, for counters.
    pub fn charge_message_step(&mut self, max_per_channel: usize, total_elements: u64) {
        self.clock_us += self.cost.message(max_per_channel);
        self.counters.message_steps += 1;
        self.counters.elements_transferred += total_elements;
        self.counters.max_channel_load = self.counters.max_channel_load.max(max_per_channel as u64);
    }

    /// Charge one blocked message superstep over the explicit set of
    /// `(src, dst)` transfer `pairs` — the fault-aware variant of
    /// [`Hypercube::charge_message_step`] used by every collective.
    ///
    /// Without installed fault state this delegates to the plain charge
    /// (identical clock and counters — zero overhead). With fault state:
    ///
    /// * pairs mapped to the same physical host by degradation are
    ///   local copies, not channel traffic;
    /// * traffic over permanently dead links detours around the link
    ///   (two extra hops charged on the critical path, counted under
    ///   `reroutes`/`detour_hops`);
    /// * transient drops are detected per [`ResilientConfig::detect`]
    ///   and retransmitted with bounded exponential backoff (counted
    ///   under `transient_drops`/`retries`); links still dropping after
    ///   `max_retries` rounds escalate to a detour, so the superstep
    ///   always completes.
    ///
    /// All fault decisions are keyed to the fault-clock value at entry,
    /// so a given program and plan replay identically.
    pub fn charge_exchange_step(
        &mut self,
        pairs: &[(NodeId, NodeId)],
        max_per_channel: usize,
        total_elements: u64,
    ) {
        let Some(ctx) = self.fault.take() else {
            self.charge_message_step(max_per_channel, total_elements);
            return;
        };
        let step = self.counters.message_steps;

        // Physical channels in use after the degradation host map,
        // canonicalized and deduplicated.
        let mut links: Vec<(NodeId, NodeId)> = pairs
            .iter()
            .map(|&(a, b)| {
                let (pa, pb) = (ctx.host_map[a], ctx.host_map[b]);
                (pa.min(pb), pa.max(pb))
            })
            .filter(|&(pa, pb)| pa != pb)
            .collect();
        links.sort_unstable();
        links.dedup();

        if !pairs.is_empty() && links.is_empty() {
            // Degradation made every transfer intra-host: local copies.
            self.charge_moves(max_per_channel);
            self.fault = Some(ctx);
            return;
        }

        // The superstep itself (this also advances the fault clock).
        self.charge_message_step(max_per_channel, total_elements);

        let n_dead = links.iter().filter(|&&(a, b)| ctx.plan.link_dead(a, b, step)).count();
        if n_dead > 0 {
            self.charge_detour(n_dead as u64, max_per_channel);
        }

        let mut pending: Vec<(NodeId, NodeId)> =
            links.into_iter().filter(|&(a, b)| !ctx.plan.link_dead(a, b, step)).collect();
        let mut attempt = 0u32;
        loop {
            pending.retain(|&(a, b)| ctx.plan.transient_drop(a, b, step, attempt));
            if pending.is_empty() {
                break;
            }
            self.counters.transient_drops += pending.len() as u64;
            self.charge_raw_us(ctx.config.detect_latency_us());
            if attempt >= ctx.config.max_retries {
                // Retries exhausted: route the stuck traffic around.
                self.charge_detour(pending.len() as u64, max_per_channel);
                break;
            }
            self.counters.retries += 1;
            self.charge_raw_us(ctx.config.backoff_us * f64::from(1u32 << attempt.min(20)));
            self.charge_message_step(
                max_per_channel,
                pending.len() as u64 * max_per_channel as u64,
            );
            attempt += 1;
        }

        self.fault = Some(ctx);
    }

    /// Charge a two-hop detour for `n_links` channels' payloads.
    fn charge_detour(&mut self, n_links: u64, max_per_channel: usize) {
        self.counters.reroutes += n_links;
        self.counters.detour_hops += 2 * n_links;
        let per_hop = n_links * max_per_channel as u64;
        self.charge_message_step(max_per_channel, per_hop);
        self.charge_message_step(max_per_channel, per_hop);
    }

    /// Charge a local compute superstep of `critical_flops` operations on
    /// the busiest processor. Under graceful degradation a host running
    /// `load_factor` logical nodes serializes their work, so the
    /// critical path scales by that factor.
    pub fn charge_flops(&mut self, critical_flops: usize) {
        let effective = critical_flops * self.load_factor();
        self.clock_us += self.cost.flops(effective);
        self.counters.flops += effective as u64;
    }

    /// Charge a local data-movement superstep of `critical_moves` element
    /// copies on the busiest processor.
    pub fn charge_moves(&mut self, critical_moves: usize) {
        self.clock_us += self.cost.moves(critical_moves);
        self.counters.local_moves += critical_moves as u64;
    }

    /// Charge the per-element injection overhead of the general router
    /// (naive baseline): the busiest processor injects
    /// `max_injected_per_node` individually addressed elements.
    pub fn charge_router_injection(&mut self, max_injected_per_node: usize, total_elements: u64) {
        self.clock_us += self.cost.router_alpha * max_injected_per_node as f64;
        self.counters.router_elements += total_elements;
    }

    /// Charge `cycles` router petit cycles (naive baseline).
    pub fn charge_router_cycles(&mut self, cycles: u64) {
        self.clock_us += self.cost.router_cycle * cycles as f64;
        self.counters.router_cycles += cycles;
    }

    /// Add raw time (used by ablation schedules that price themselves).
    pub fn charge_raw_us(&mut self, us: f64) {
        debug_assert!(us >= 0.0);
        self.clock_us += us;
    }

    /// Allocate an empty per-processor buffer set: one `Vec<T>` per node.
    #[must_use]
    pub fn empty_locals<T>(&self) -> Vec<Vec<T>> {
        (0..self.p()).map(|_| Vec::new()).collect()
    }

    /// Build per-processor buffers by calling `f(node)` for each node.
    #[must_use]
    pub fn locals_from_fn<T>(&self, f: impl FnMut(NodeId) -> Vec<T>) -> Vec<Vec<T>> {
        (0..self.p()).map(f).collect()
    }
}

/// Run a local compute step on every processor's buffer, in parallel on
/// the host with rayon when the machine-wide work is large enough to pay
/// for the fork/join, and charge `critical_flops` on `hc`.
///
/// `f(node, buf)` must be independent across nodes — the usual SPMD local
/// phase. `critical_flops` is the max per-processor operation count, which
/// the caller knows from its load-balance guarantees.
pub fn local_compute<T: Send, F>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    critical_flops: usize,
    f: F,
) where
    F: Fn(NodeId, &mut Vec<T>) + Sync,
{
    use rayon::prelude::*;
    // Rough machine-wide work estimate decides host-parallel execution
    // (shared tunable; see crate::par).
    let total_work = critical_flops.saturating_mul(locals.len());
    if crate::par::should_parallelise(total_work) {
        locals.par_iter_mut().enumerate().for_each(|(node, buf)| f(node, buf));
    } else {
        for (node, buf) in locals.iter_mut().enumerate() {
            f(node, buf);
        }
    }
    hc.charge_flops(critical_flops);
}

/// As [`local_compute`], but over a flat [`crate::slab::NodeSlab`]: each
/// node's kernel gets its contiguous segment slice. The fan-out decision
/// and execution are [`crate::par::for_each_node`] — the same shared
/// helper the vmp kernel drivers use, so gating semantics cannot drift.
pub fn local_compute_slab<T: Send, F>(
    hc: &mut Hypercube,
    slab: &mut crate::slab::NodeSlab<T>,
    critical_flops: usize,
    f: F,
) where
    F: Fn(NodeId, &mut [T]) + Sync,
{
    let total_work = critical_flops.saturating_mul(slab.p());
    crate::par::for_each_node(slab, total_work, f);
    hc.charge_flops(critical_flops);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_machine_has_zero_clock() {
        let hc = Hypercube::new(5, CostModel::unit());
        assert_eq!(hc.p(), 32);
        assert_eq!(hc.dim(), 5);
        assert_eq!(hc.elapsed_us(), 0.0);
        assert_eq!(*hc.counters(), Counters::default());
    }

    #[test]
    fn message_step_charges_affine_cost() {
        let mut hc = Hypercube::new(3, CostModel::unit());
        hc.charge_message_step(10, 80);
        assert_eq!(hc.elapsed_us(), 11.0); // alpha + 10*beta
        assert_eq!(hc.counters().message_steps, 1);
        assert_eq!(hc.counters().elements_transferred, 80);
        assert_eq!(hc.counters().max_channel_load, 10);
    }

    #[test]
    fn flops_and_moves_accumulate() {
        let mut hc = Hypercube::new(2, CostModel::unit());
        hc.charge_flops(7);
        hc.charge_moves(3);
        assert_eq!(hc.counters().flops, 7);
        assert_eq!(hc.counters().local_moves, 3);
        assert_eq!(hc.elapsed_us(), 7.0); // delta = 0 in unit model
    }

    #[test]
    fn reset_zeroes_clock_and_counters() {
        let mut hc = Hypercube::new(2, CostModel::unit());
        hc.charge_message_step(1, 2);
        hc.reset();
        assert_eq!(hc.elapsed_us(), 0.0);
        assert_eq!(*hc.counters(), Counters::default());
        assert_eq!(hc.p(), 4, "topology survives reset");
    }

    #[test]
    fn local_compute_runs_every_node_and_charges() {
        let mut hc = Hypercube::new(4, CostModel::unit());
        let mut locals: Vec<Vec<u64>> = hc.locals_from_fn(|n| vec![n as u64]);
        local_compute(&mut hc, &mut locals, 5, |node, buf| {
            buf[0] += 100 + node as u64;
        });
        for (node, buf) in locals.iter().enumerate() {
            assert_eq!(buf[0], 100 + 2 * node as u64);
        }
        assert_eq!(hc.counters().flops, 5);
        assert_eq!(hc.elapsed_us(), 5.0);
    }

    #[test]
    fn exchange_step_without_faults_matches_message_step() {
        let mut plain = Hypercube::new(3, CostModel::unit());
        let mut resil = Hypercube::new(3, CostModel::unit());
        let pairs = [(0usize, 1usize), (2, 3)];
        plain.charge_message_step(6, 12);
        resil.charge_exchange_step(&pairs, 6, 12);
        assert_eq!(plain.elapsed_us(), resil.elapsed_us());
        assert_eq!(plain.counters(), resil.counters());
    }

    #[test]
    fn exchange_step_with_empty_plan_is_zero_overhead() {
        use crate::fault::{FaultPlan, ResilientConfig};
        let mut plain = Hypercube::new(3, CostModel::unit());
        let mut resil = Hypercube::new(3, CostModel::unit());
        resil.install_faults(FaultPlan::none(17), ResilientConfig::default());
        for i in 0..10usize {
            let pairs = [(i % 8, (i % 8) ^ 1)];
            plain.charge_exchange_step(&pairs, 4, 4);
            resil.charge_exchange_step(&pairs, 4, 4);
        }
        assert_eq!(plain.elapsed_us(), resil.elapsed_us());
        assert_eq!(plain.counters(), resil.counters());
    }

    #[test]
    fn dead_link_charges_detour_and_counts_reroute() {
        use crate::fault::{FaultPlan, ResilientConfig};
        let mut hc = Hypercube::new(3, CostModel::unit());
        hc.install_faults(FaultPlan::none(1).with_link_fault(0, 1, 0), ResilientConfig::default());
        hc.charge_exchange_step(&[(0, 1)], 5, 5);
        assert_eq!(hc.counters().reroutes, 1);
        assert_eq!(hc.counters().detour_hops, 2);
        // Base superstep + two detour hops, each alpha + 5*beta.
        assert_eq!(hc.elapsed_us(), 3.0 * (1.0 + 5.0));
        assert_eq!(hc.counters().message_steps, 3);
    }

    #[test]
    fn certain_drop_retries_until_escalation() {
        use crate::fault::{FaultPlan, ResilientConfig};
        let mut hc = Hypercube::new(3, CostModel::unit());
        let cfg = ResilientConfig { max_retries: 2, backoff_us: 1.0, ..Default::default() };
        hc.install_faults(FaultPlan::none(1).with_drops(1.0, 0, u64::MAX), cfg);
        hc.charge_exchange_step(&[(0, 1)], 2, 2);
        // rate 1.0 drops every attempt: 2 retries then detour escalation.
        assert_eq!(hc.counters().retries, 2);
        assert_eq!(hc.counters().transient_drops, 3, "initial try + 2 retries all dropped");
        assert_eq!(hc.counters().reroutes, 1, "escalated after retry budget");
        // backoff 1*2^0 + 1*2^1 = 3us on top of message charges.
        let msg = 1.0 + 2.0;
        assert_eq!(hc.elapsed_us(), 5.0 * msg + 3.0);
    }

    #[test]
    fn remap_makes_traffic_local_and_scales_flops() {
        use crate::fault::FaultPlan;
        let mut hc = Hypercube::new(2, CostModel::unit());
        assert_eq!(hc.host_of(3), 3);
        hc.remap_node(3, 1);
        assert!(hc.fault_active(), "remap auto-installs an empty plan");
        assert!(hc.fault_plan().expect("plan installed").is_empty());
        assert_eq!(hc.host_of(3), 1);
        assert_eq!(hc.load_factor(), 2);
        assert_eq!(hc.counters().node_remaps, 1);
        // Traffic 1<->3 is now co-hosted: a local-move superstep.
        hc.charge_exchange_step(&[(1, 3)], 4, 4);
        assert_eq!(hc.counters().message_steps, 0);
        assert_eq!(hc.counters().local_moves, 4);
        // Compute serializes 2x on the doubled-up host.
        let before = hc.counters().flops;
        hc.charge_flops(10);
        assert_eq!(hc.counters().flops - before, 20);
        // Remapping the already-moved host's guest chains onto a new host.
        hc.remap_node(1, 0);
        assert_eq!(hc.host_of(3), 0);
        assert_eq!(hc.host_of(1), 0);
        assert_eq!(hc.load_factor(), 3);
        let _ = FaultPlan::none(0);
    }

    #[test]
    fn live_faults_tracks_plan_and_degradation() {
        use crate::fault::{FaultPlan, ResilientConfig};
        let mut hc = Hypercube::new(3, CostModel::unit());
        assert!(!hc.live_faults());
        hc.install_faults(FaultPlan::none(7), ResilientConfig::default());
        assert!(hc.fault_active());
        assert!(!hc.live_faults(), "an empty installed plan is not live");
        hc.install_faults(FaultPlan::none(7).with_link_fault(0, 1, 0), ResilientConfig::default());
        assert!(hc.live_faults());
        hc.clear_faults();
        hc.remap_node(3, 1);
        assert!(hc.live_faults(), "degradation remaps count as live faults");
    }

    #[test]
    fn choose_algo_falls_back_under_live_faults() {
        use crate::cost::{Algo, AlgoPolicy, AlgoSelect, Collective};
        use crate::fault::{FaultPlan, ResilientConfig};
        let mut hc = Hypercube::new(8, CostModel::cm2_allport());
        hc.set_algo_select(AlgoSelect { policy: AlgoPolicy::ForceAllPort, cell: 64 });
        assert_eq!(hc.choose_algo(Collective::Broadcast, 8, 4096), Algo::AllPort { chunks: 1 });
        hc.install_faults(FaultPlan::none(1).with_drops(0.5, 0, 100), ResilientConfig::default());
        assert_eq!(
            hc.choose_algo(Collective::Broadcast, 8, 4096),
            Algo::SinglePort,
            "live faults force the single-port detour-capable path"
        );
    }

    #[test]
    fn charge_allport_matches_collective_time_and_counts_steps() {
        use crate::cost::{Algo, Collective};
        let kinds = [
            Collective::Broadcast,
            Collective::Reduce,
            Collective::Allreduce,
            Collective::Allgather,
            Collective::Scan,
        ];
        for kind in kinds {
            let mut hc = Hypercube::new(6, CostModel::cm2_allport());
            hc.charge_allport(kind, 6, 1000, 3, 5000);
            let want = CostModel::cm2_allport().collective_time(
                kind,
                6,
                1000,
                Algo::AllPort { chunks: 3 },
            );
            assert!(
                (hc.elapsed_us() - want).abs() < 1e-9,
                "{kind:?}: charged {} vs priced {want}",
                hc.elapsed_us()
            );
            let s = allport_schedule(kind, 6, 1000, 3);
            assert_eq!(hc.counters().allport_steps, s.steps as u64);
            assert_eq!(hc.counters().message_steps, s.steps as u64, "fault clock advances");
            assert_eq!(hc.counters().elements_transferred, 5000);
        }
    }

    #[test]
    fn local_compute_parallel_path_matches_serial() {
        // Force the rayon path by a large critical_flops value.
        let mut hc = Hypercube::new(6, CostModel::unit());
        let mut locals: Vec<Vec<u64>> = hc.locals_from_fn(|n| vec![n as u64; 16]);
        local_compute(&mut hc, &mut locals, 1 << 16, |node, buf| {
            for v in buf.iter_mut() {
                *v = v.wrapping_mul(3).wrapping_add(node as u64);
            }
        });
        for (node, buf) in locals.iter().enumerate() {
            for v in buf {
                assert_eq!(*v, (node as u64).wrapping_mul(3).wrapping_add(node as u64));
            }
        }
    }
}
