//! Alternative broadcast/reduce schedules — the spanning-tree ablation.
//!
//! The binomial-tree schedules in [`crate::collective`] minimise start-ups
//! (`k` of them) but transfer the whole buffer at every level, costing
//! `k * (alpha + beta * L)`. Johnsson & Ho's *Optimum Broadcasting and
//! Personalized Communication in Hypercubes* (TR-610, abstract in the
//! source booklet) shows large-message broadcasts can shed the factor `k`
//! on the bandwidth term with balanced / edge-disjoint spanning trees.
//! This module implements the two classical remedies in data-correct form:
//!
//! * **scatter + allgather** broadcast (`2k` start-ups,
//!   `~2 * beta * L` transfer) — the "balanced tree" one-port schedule;
//! * **reduce-scatter + gather/allgather** reductions (Rabenseifner) with
//!   the same trade;
//! * **all-port pipelined broadcast** over `k` edge-disjoint spanning
//!   binomial trees (nESBT): data movement is modelled (the clone is
//!   performed directly) but the charge follows the nESBT schedule,
//!   `k * (alpha + beta * ceil(L/k))` — the factor-`n` bandwidth win the
//!   TR-610 abstract states.
//!
//! Benchmark F4 sweeps message size against these schedules to reproduce
//! the crossover: binomial wins small messages (fewer start-ups),
//! balanced schedules win large ones.

use crate::collective::{allgather, broadcast, gather, scatter};
use crate::machine::Hypercube;
use crate::topology::NodeId;

/// Which broadcast schedule to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastSchedule {
    /// Spanning binomial tree: `k * (alpha + beta * L)`.
    Binomial,
    /// Scatter then allgather: `2k * alpha + ~2 * beta * L`.
    ScatterAllgather,
    /// All-port pipelining over `k` edge-disjoint spanning binomial trees:
    /// `k * (alpha + beta * ceil(L/k))`.
    AllPortEsbt,
}

/// Broadcast the buffer at subcube coordinate `root_coord` to all subcube
/// members using the chosen schedule. Semantics identical to
/// [`crate::collective::broadcast`]; only the schedule (and hence the
/// charged time) differs.
pub fn broadcast_with<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    root_coord: usize,
    schedule: BroadcastSchedule,
) {
    match schedule {
        BroadcastSchedule::Binomial => broadcast(hc, locals, dims, root_coord),
        BroadcastSchedule::ScatterAllgather => {
            let cube = hc.cube();
            let k = dims.len();
            if k == 0 {
                return;
            }
            // Move the payload to the coordinate-0 node of each subcube if
            // the root is elsewhere (coordinate relabelling: the scatter
            // and gather trees here are rooted at coordinate 0).
            if root_coord != 0 {
                let mut moves: Vec<(NodeId, NodeId)> = Vec::new();
                let mut max_len = 0usize;
                let mut total = 0u64;
                for node in cube.iter_nodes() {
                    if cube.extract_coords(node, dims) == root_coord {
                        let dst = cube.with_coords(node, 0, dims);
                        max_len = max_len.max(locals[node].len());
                        total += locals[node].len() as u64;
                        moves.push((node, dst));
                    }
                }
                for (src, dst) in moves {
                    locals[dst] = std::mem::take(&mut locals[src]);
                }
                // Distance can be up to k, but the payload moves as one
                // blocked message along each differing dimension.
                let hops = (root_coord as u64).count_ones() as usize;
                for _ in 0..hops {
                    hc.charge_message_step(max_len, total);
                }
            }
            // Scatter root's buffer as 2^k near-equal segments...
            let pieces = 1usize << k;
            let segments: Vec<Vec<Vec<T>>> = (0..cube.nodes())
                .map(|node| {
                    if cube.extract_coords(node, dims) == 0 {
                        split_even(&locals[node], pieces)
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let mut scattered = scatter(hc, segments, dims);
            // ...then allgather: every node ends with the concatenation,
            // which equals the original buffer.
            allgather(hc, &mut scattered, dims);
            for (node, buf) in scattered.into_iter().enumerate() {
                locals[node] = buf;
            }
        }
        BroadcastSchedule::AllPortEsbt => {
            let cube = hc.cube();
            let k = dims.len();
            if k == 0 {
                return;
            }
            // Perform the data movement directly (semantically a clone of
            // the root buffer everywhere), charging the nESBT schedule.
            let mut max_len = 0usize;
            let mut clones: Vec<(NodeId, NodeId)> = Vec::new();
            for node in cube.iter_nodes() {
                if cube.extract_coords(node, dims) == root_coord {
                    max_len = max_len.max(locals[node].len());
                    for member in cube.subcube_nodes(node, dims) {
                        if member != node {
                            clones.push((node, member));
                        }
                    }
                }
            }
            let total: u64 = clones.len() as u64 * max_len as u64;
            for (src, dst) in clones {
                locals[dst] = locals[src].clone();
            }
            let piece = max_len.div_ceil(k);
            for _ in 0..k {
                hc.charge_message_step(piece, total / k as u64);
            }
        }
    }
}

/// Reduce to subcube coordinate 0 via recursive-halving reduce-scatter
/// followed by a gather — `2k` start-ups but only `~(beta + gamma) * L`
/// on the bandwidth/compute terms (vs `k * L` for the binomial tree).
/// Non-root buffers are cleared, as in [`crate::collective::reduce`].
pub fn reduce_scatter_gather<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    op: impl Fn(T, T) -> T + Copy,
) {
    reduce_scatter(hc, locals, dims, op);
    gather(hc, locals, dims);
}

/// All-reduce via reduce-scatter + allgather (Rabenseifner's algorithm):
/// every member ends with the full elementwise reduction.
pub fn allreduce_rabenseifner<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    op: impl Fn(T, T) -> T + Copy,
) {
    reduce_scatter(hc, locals, dims, op);
    allgather(hc, locals, dims);
}

/// Recursive-halving reduce-scatter: member at coordinate `c` ends with
/// the fully reduced segment `c` (coordinate-order split) of the buffer.
fn reduce_scatter<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    op: impl Fn(T, T) -> T + Copy,
) {
    let cube = hc.cube();
    crate::collective::check_dims(cube, dims);
    assert_eq!(locals.len(), cube.nodes());
    let k = dims.len();
    if k == 0 {
        return;
    }

    // Every node tracks the global [lo, hi) range its buffer covers; the
    // split points are the coordinate-order segment boundaries, so both
    // partners always agree on the current range.
    let p = cube.nodes();
    let mut range: Vec<(usize, usize)> = Vec::with_capacity(p);
    let full_len = {
        let mut len = None;
        for node in cube.iter_nodes() {
            match len {
                None => len = Some(locals[node].len()),
                Some(l) => assert_eq!(
                    l,
                    locals[node].len(),
                    "reduce-scatter requires equal buffer lengths"
                ),
            }
        }
        len.unwrap_or(0)
    };
    range.resize(p, (0, full_len));

    for j in (0..k).rev() {
        let chan = 1usize << dims[j];
        let bit = 1usize << j;
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        for node in cube.iter_nodes() {
            if node & chan != 0 {
                continue;
            }
            let partner = node | chan;
            let (lo, hi) = range[node];
            debug_assert_eq!(range[partner], (lo, hi));
            let mid = lo + (hi - lo) / 2;
            // Lower-coordinate node keeps [lo, mid); the partner (whose
            // coordinate bit j is 1) keeps [mid, hi).
            // vmplint: allow(s1) — splits the host-side nested-Vec view, not slab storage
            let (lo_part, hi_part) = locals.split_at_mut(partner);
            let a = &mut lo_part[node]; // covers [lo, hi) locally
            let b = &mut hi_part[0];
            let seg =
                |v: &Vec<T>, from: usize, to: usize| -> Vec<T> { v[from - lo..to - lo].to_vec() };
            let a_low = seg(a, lo, mid);
            let a_high = seg(a, mid, hi);
            let b_low = seg(b, lo, mid);
            let b_high = seg(b, mid, hi);
            let xfer = a_high.len().max(b_low.len());
            max_len = max_len.max(xfer);
            total += (a_high.len() + b_low.len()) as u64;
            *a = a_low.iter().zip(&b_low).map(|(&x, &y)| op(x, y)).collect();
            *b = a_high.iter().zip(&b_high).map(|(&x, &y)| op(x, y)).collect();
            range[node] = (lo, mid);
            range[partner] = (mid, hi);
            // Which physical node is "lower coordinate" depends on the
            // coordinate packing; with dims[j] mapped to coord bit j and
            // node having that cube bit clear, node IS the lower one.
            debug_assert_eq!(cube.extract_coords(node, dims) & bit, 0);
        }
        hc.charge_message_step(max_len, total);
        hc.charge_flops(max_len);
    }
}

/// Split `buf` into `pieces` contiguous segments of near-equal length
/// (the first `len % pieces` segments are one element longer).
fn split_even<T: Clone>(buf: &[T], pieces: usize) -> Vec<Vec<T>> {
    let len = buf.len();
    let base = len / pieces;
    let extra = len % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut at = 0usize;
    for i in 0..pieces {
        let take = base + usize::from(i < extra);
        out.push(buf[at..at + take].to_vec());
        at += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn machine(dim: u32) -> Hypercube {
        Hypercube::new(dim, CostModel::unit())
    }

    #[test]
    fn split_even_covers_everything() {
        let v: Vec<u32> = (0..10).collect();
        let parts = split_even(&v, 4);
        assert_eq!(parts.iter().map(Vec::len).collect::<Vec<_>>(), vec![3, 3, 2, 2]);
        let flat: Vec<u32> = parts.into_iter().flatten().collect();
        assert_eq!(flat, v);
    }

    #[test]
    fn scatter_allgather_broadcast_is_semantically_a_broadcast() {
        let mut hc = machine(4);
        let dims: Vec<u32> = hc.cube().iter_dims().collect();
        let payload: Vec<u64> = (0..37).collect();
        let mut locals = hc.locals_from_fn(|n| if n == 0 { payload.clone() } else { vec![] });
        broadcast_with(&mut hc, &mut locals, &dims, 0, BroadcastSchedule::ScatterAllgather);
        for (n, buf) in locals.iter().enumerate() {
            assert_eq!(buf, &payload, "node {n}");
        }
    }

    #[test]
    fn scatter_allgather_with_nonzero_root() {
        let mut hc = machine(3);
        let dims = [0u32, 1, 2];
        let payload: Vec<u64> = (0..16).collect();
        let mut locals = hc.locals_from_fn(|n| if n == 5 { payload.clone() } else { vec![] });
        broadcast_with(&mut hc, &mut locals, &dims, 5, BroadcastSchedule::ScatterAllgather);
        for buf in &locals {
            assert_eq!(buf, &payload);
        }
    }

    #[test]
    fn allport_esbt_broadcast_is_semantically_a_broadcast() {
        let mut hc = machine(3);
        let dims = [0u32, 1, 2];
        let payload: Vec<u64> = (0..24).collect();
        let mut locals = hc.locals_from_fn(|n| if n == 2 { payload.clone() } else { vec![] });
        broadcast_with(&mut hc, &mut locals, &dims, 2, BroadcastSchedule::AllPortEsbt);
        for buf in &locals {
            assert_eq!(buf, &payload);
        }
    }

    #[test]
    fn large_messages_favour_scatter_allgather() {
        let len = 4096usize;
        let dims: Vec<u32> = (0..6).collect();
        let run = |sched| {
            let mut hc = machine(6);
            let mut locals = hc.locals_from_fn(|n| if n == 0 { vec![1.0f64; len] } else { vec![] });
            broadcast_with(&mut hc, &mut locals, &dims, 0, sched);
            hc.elapsed_us()
        };
        let binomial = run(BroadcastSchedule::Binomial);
        let balanced = run(BroadcastSchedule::ScatterAllgather);
        let allport = run(BroadcastSchedule::AllPortEsbt);
        assert!(balanced < binomial, "balanced {balanced} vs binomial {binomial}");
        assert!(allport < balanced, "allport {allport} vs balanced {balanced}");
    }

    #[test]
    fn small_messages_favour_binomial() {
        // With alpha big relative to beta*L, fewer start-ups win.
        let dims: Vec<u32> = (0..6).collect();
        let run = |sched| {
            let mut hc = Hypercube::new(6, CostModel { alpha: 100.0, ..CostModel::unit() });
            let mut locals = hc.locals_from_fn(|n| if n == 0 { vec![1.0f64; 4] } else { vec![] });
            broadcast_with(&mut hc, &mut locals, &dims, 0, sched);
            hc.elapsed_us()
        };
        let binomial = run(BroadcastSchedule::Binomial);
        let balanced = run(BroadcastSchedule::ScatterAllgather);
        assert!(binomial < balanced, "binomial {binomial} vs balanced {balanced}");
    }

    #[test]
    fn reduce_scatter_gather_matches_binomial_reduce() {
        let mut hc1 = machine(4);
        let dims: Vec<u32> = hc1.cube().iter_dims().collect();
        let make =
            |hc: &Hypercube| hc.locals_from_fn(|n| (0..33).map(|i| (n * 100 + i) as f64).collect());
        let mut a = make(&hc1);
        reduce_scatter_gather(&mut hc1, &mut a, &dims, |x, y| x + y);

        let mut hc2 = machine(4);
        let mut b = make(&hc2);
        crate::collective::reduce(&mut hc2, &mut b, &dims, 0, |x, y| x + y);

        assert_eq!(a[0].len(), 33);
        for (x, y) in a[0].iter().zip(&b[0]) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn rabenseifner_allreduce_matches_butterfly() {
        let mut hc1 = machine(3);
        let dims: Vec<u32> = hc1.cube().iter_dims().collect();
        let make = |hc: &Hypercube| {
            hc.locals_from_fn(|n| (0..17).map(|i| ((n + 1) * (i + 1)) as f64).collect())
        };
        let mut a = make(&hc1);
        allreduce_rabenseifner(&mut hc1, &mut a, &dims, |x, y| x + y);

        let mut hc2 = machine(3);
        let mut b = make(&hc2);
        crate::collective::allreduce(&mut hc2, &mut b, &dims, |x, y| x + y);

        for n in 0..8 {
            assert_eq!(a[n].len(), 17, "node {n}");
            for (x, y) in a[n].iter().zip(&b[n]) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rabenseifner_saves_bandwidth_on_large_buffers() {
        let dims: Vec<u32> = (0..6).collect();
        let len = 8192usize;
        let mut hc1 = Hypercube::new(6, CostModel::zero_latency());
        let mut a = hc1.locals_from_fn(|_| vec![1.0f64; len]);
        allreduce_rabenseifner(&mut hc1, &mut a, &dims, |x, y| x + y);
        let mut hc2 = Hypercube::new(6, CostModel::zero_latency());
        let mut b = hc2.locals_from_fn(|_| vec![1.0f64; len]);
        crate::collective::allreduce(&mut hc2, &mut b, &dims, |x, y| x + y);
        assert!(hc1.elapsed_us() < 0.7 * hc2.elapsed_us());
    }
}
