//! Alternative broadcast/reduce schedules — the spanning-tree ablation.
//!
//! The binomial-tree schedules in [`crate::collective`] minimise start-ups
//! (`k` of them) but transfer the whole buffer at every level, costing
//! `k * (alpha + beta * L)`. Johnsson & Ho's *Optimum Broadcasting and
//! Personalized Communication in Hypercubes* (TR-610, abstract in the
//! source booklet) shows large-message broadcasts can shed the factor `k`
//! on the bandwidth term with balanced / edge-disjoint spanning trees.
//! This module implements the two classical remedies in data-correct form:
//!
//! * **scatter + allgather** broadcast (`2k` start-ups,
//!   `~2 * beta * L` transfer) — the "balanced tree" one-port schedule;
//! * **reduce-scatter + gather/allgather** reductions (Rabenseifner) with
//!   the same trade;
//! * **all-port pipelined broadcast** over `k` edge-disjoint spanning
//!   binomial trees (nESBT): data movement is modelled (the clone is
//!   performed directly) but the charge follows the nESBT schedule,
//!   `k * (alpha + beta * ceil(L/k))` — the factor-`n` bandwidth win the
//!   TR-610 abstract states.
//!
//! Benchmark F4 sweeps message size against these schedules to reproduce
//! the crossover: binomial wins small messages (fewer start-ups),
//! balanced schedules win large ones.

use crate::collective::{allgather, broadcast, gather, scatter};
use crate::machine::Hypercube;
use crate::topology::NodeId;

/// Which broadcast schedule to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastSchedule {
    /// Spanning binomial tree: `k * (alpha + beta * L)`.
    Binomial,
    /// Scatter then allgather: `2k * alpha + ~2 * beta * L`.
    ScatterAllgather,
    /// All-port pipelining over `k` edge-disjoint spanning binomial trees:
    /// `k * (alpha + beta * ceil(L/k))`.
    AllPortEsbt,
}

/// Broadcast the buffer at subcube coordinate `root_coord` to all subcube
/// members using the chosen schedule. Semantics identical to
/// [`crate::collective::broadcast`]; only the schedule (and hence the
/// charged time) differs.
pub fn broadcast_with<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    root_coord: usize,
    schedule: BroadcastSchedule,
) {
    match schedule {
        BroadcastSchedule::Binomial => broadcast(hc, locals, dims, root_coord),
        BroadcastSchedule::ScatterAllgather => {
            let cube = hc.cube();
            let k = dims.len();
            if k == 0 {
                return;
            }
            // Move the payload to the coordinate-0 node of each subcube if
            // the root is elsewhere (coordinate relabelling: the scatter
            // and gather trees here are rooted at coordinate 0).
            if root_coord != 0 {
                let mut moves: Vec<(NodeId, NodeId)> = Vec::new();
                let mut max_len = 0usize;
                let mut total = 0u64;
                for node in cube.iter_nodes() {
                    if cube.extract_coords(node, dims) == root_coord {
                        let dst = cube.with_coords(node, 0, dims);
                        max_len = max_len.max(locals[node].len());
                        total += locals[node].len() as u64;
                        moves.push((node, dst));
                    }
                }
                for (src, dst) in moves {
                    locals[dst] = std::mem::take(&mut locals[src]);
                }
                // Distance can be up to k, but the payload moves as one
                // blocked message along each differing dimension.
                let hops = (root_coord as u64).count_ones() as usize;
                for _ in 0..hops {
                    hc.charge_message_step(max_len, total);
                }
            }
            // Scatter root's buffer as 2^k near-equal segments...
            let pieces = 1usize << k;
            let segments: Vec<Vec<Vec<T>>> = (0..cube.nodes())
                .map(|node| {
                    if cube.extract_coords(node, dims) == 0 {
                        split_even(&locals[node], pieces)
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let mut scattered = scatter(hc, segments, dims);
            // ...then allgather: every node ends with the concatenation,
            // which equals the original buffer.
            allgather(hc, &mut scattered, dims);
            for (node, buf) in scattered.into_iter().enumerate() {
                locals[node] = buf;
            }
        }
        BroadcastSchedule::AllPortEsbt => {
            let cube = hc.cube();
            let k = dims.len();
            if k == 0 {
                return;
            }
            // Perform the data movement directly (semantically a clone of
            // the root buffer everywhere), charging the nESBT schedule.
            let mut max_len = 0usize;
            let mut clones: Vec<(NodeId, NodeId)> = Vec::new();
            for node in cube.iter_nodes() {
                if cube.extract_coords(node, dims) == root_coord {
                    max_len = max_len.max(locals[node].len());
                    for member in cube.subcube_nodes(node, dims) {
                        if member != node {
                            clones.push((node, member));
                        }
                    }
                }
            }
            let total: u64 = clones.len() as u64 * max_len as u64;
            for (src, dst) in clones {
                locals[dst] = locals[src].clone();
            }
            let piece = max_len.div_ceil(k);
            for _ in 0..k {
                hc.charge_message_step(piece, total / k as u64);
            }
        }
    }
}

/// Reduce to subcube coordinate 0 via recursive-halving reduce-scatter
/// followed by a gather — `2k` start-ups but only `~(beta + gamma) * L`
/// on the bandwidth/compute terms (vs `k * L` for the binomial tree).
/// Non-root buffers are cleared, as in [`crate::collective::reduce`].
pub fn reduce_scatter_gather<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    op: impl Fn(T, T) -> T + Copy,
) {
    reduce_scatter(hc, locals, dims, op);
    gather(hc, locals, dims);
}

/// All-reduce via reduce-scatter + allgather (Rabenseifner's algorithm):
/// every member ends with the full elementwise reduction.
pub fn allreduce_rabenseifner<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    op: impl Fn(T, T) -> T + Copy,
) {
    reduce_scatter(hc, locals, dims, op);
    allgather(hc, locals, dims);
}

/// Recursive-halving reduce-scatter: member at coordinate `c` ends with
/// the fully reduced segment `c` (coordinate-order split) of the buffer.
fn reduce_scatter<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    op: impl Fn(T, T) -> T + Copy,
) {
    let cube = hc.cube();
    crate::collective::check_dims(cube, dims);
    assert_eq!(locals.len(), cube.nodes());
    let k = dims.len();
    if k == 0 {
        return;
    }

    // Every node tracks the global [lo, hi) range its buffer covers; the
    // split points are the coordinate-order segment boundaries, so both
    // partners always agree on the current range.
    let p = cube.nodes();
    let mut range: Vec<(usize, usize)> = Vec::with_capacity(p);
    let full_len = {
        let mut len = None;
        for node in cube.iter_nodes() {
            match len {
                None => len = Some(locals[node].len()),
                Some(l) => assert_eq!(
                    l,
                    locals[node].len(),
                    "reduce-scatter requires equal buffer lengths"
                ),
            }
        }
        len.unwrap_or(0)
    };
    range.resize(p, (0, full_len));

    for j in (0..k).rev() {
        let chan = 1usize << dims[j];
        let bit = 1usize << j;
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        for node in cube.iter_nodes() {
            if node & chan != 0 {
                continue;
            }
            let partner = node | chan;
            let (lo, hi) = range[node];
            debug_assert_eq!(range[partner], (lo, hi));
            let mid = lo + (hi - lo) / 2;
            // Lower-coordinate node keeps [lo, mid); the partner (whose
            // coordinate bit j is 1) keeps [mid, hi).
            // vmplint: allow(s1) — splits the host-side nested-Vec view, not slab storage
            let (lo_part, hi_part) = locals.split_at_mut(partner);
            let a = &mut lo_part[node]; // covers [lo, hi) locally
            let b = &mut hi_part[0];
            let seg =
                |v: &Vec<T>, from: usize, to: usize| -> Vec<T> { v[from - lo..to - lo].to_vec() };
            let a_low = seg(a, lo, mid);
            let a_high = seg(a, mid, hi);
            let b_low = seg(b, lo, mid);
            let b_high = seg(b, mid, hi);
            let xfer = a_high.len().max(b_low.len());
            max_len = max_len.max(xfer);
            total += (a_high.len() + b_low.len()) as u64;
            *a = a_low.iter().zip(&b_low).map(|(&x, &y)| op(x, y)).collect();
            *b = a_high.iter().zip(&b_high).map(|(&x, &y)| op(x, y)).collect();
            range[node] = (lo, mid);
            range[partner] = (mid, hi);
            // Which physical node is "lower coordinate" depends on the
            // coordinate packing; with dims[j] mapped to coord bit j and
            // node having that cube bit clear, node IS the lower one.
            debug_assert_eq!(cube.extract_coords(node, dims) & bit, 0);
        }
        hc.charge_message_step(max_len, total);
        hc.charge_flops(max_len);
    }
}

/// The `k` edge-disjoint spanning binomial trees (ESBTs) of a `k`-cube,
/// source node 0 — the structure underlying the all-port collective
/// schedules in [`crate::collective`] and the ported cost model in
/// [`crate::cost::allport_schedule`].
///
/// Tree 0 spans the nonzero nodes with a binomial-tree shape given by
/// the parent rule (for `z != 0`):
///
/// * `z` odd  → parent is `z` with its most significant bit cleared
///   (so node 1's parent is 0 — the source edge `0 → 1`);
/// * `z` even → parent is `z | 1` (flip bit 0 up).
///
/// Tree `j` is tree 0 with every node label rotated left by `j` within
/// the `k` coordinate bits: `parent_j(y) = rol_j(parent_0(ror_j(y)))`,
/// so its source edge is `0 → 2^j`. For any node `y != 0`, the map
/// `j ↦ dimension of y's parent edge in tree j` is a bijection on
/// `{0..k}`; hence the `k` trees' directed parent edges are pairwise
/// disjoint and together cover every directed cube edge except the `k`
/// edges *into* node 0 (verified exhaustively in the crate tests).
/// Every chain `even → odd (+1) → clear-msb` strictly descends every
/// two steps, so each tree is acyclic with height
/// [`crate::cost::esbt_height`]`(k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EsbtForest {
    k: u32,
}

impl EsbtForest {
    /// The forest for a `k`-dimensional cube (`1 <= k <= 60`).
    ///
    /// # Panics
    /// Panics when `k` is outside `1..=60`.
    #[must_use]
    pub fn new(k: u32) -> Self {
        assert!((1..=60).contains(&k), "EsbtForest dimension {k} out of range 1..=60");
        EsbtForest { k }
    }

    /// Cube dimension `k` = number of trees.
    #[inline]
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of cube nodes `2^k`.
    #[inline]
    #[must_use]
    pub fn nodes(&self) -> usize {
        1usize << self.k
    }

    #[inline]
    fn ror(&self, x: usize, j: u32) -> usize {
        let mask = self.nodes() - 1;
        ((x >> j) | (x << (self.k - j))) & mask
    }

    #[inline]
    fn rol(&self, x: usize, j: u32) -> usize {
        self.ror(x, self.k - j)
    }

    /// Parent of `z != 0` in tree 0 (see the type docs for the rule).
    fn parent0(z: usize) -> usize {
        debug_assert!(z != 0);
        if z & 1 == 1 {
            let msb = 1usize << (usize::BITS - 1 - z.leading_zeros());
            z ^ msb
        } else {
            z | 1
        }
    }

    /// Parent of `node` in tree `j` (`None` for the source node 0).
    ///
    /// # Panics
    /// Panics when `tree >= k` or `node` is out of range.
    #[must_use]
    pub fn parent(&self, tree: u32, node: NodeId) -> Option<NodeId> {
        assert!(tree < self.k, "tree {tree} out of range for k={}", self.k);
        assert!(node < self.nodes(), "node {node} out of range");
        if node == 0 {
            return None;
        }
        let j = tree % self.k;
        if j == 0 {
            Some(Self::parent0(node))
        } else {
            Some(self.rol(Self::parent0(self.ror(node, j)), j))
        }
    }

    /// Edge depth of `node` below the source in tree `tree` (0 for the
    /// source node itself).
    #[must_use]
    pub fn depth(&self, tree: u32, node: NodeId) -> usize {
        let mut d = 0usize;
        let mut at = node;
        while let Some(p) = self.parent(tree, at) {
            at = p;
            d += 1;
        }
        d
    }

    /// Maximum edge depth over all nodes of tree `tree`; equals
    /// [`crate::cost::esbt_height`]`(k)` for every tree.
    #[must_use]
    pub fn height(&self, tree: u32) -> usize {
        (0..self.nodes()).map(|n| self.depth(tree, n)).max().unwrap_or(0)
    }

    /// Children of `node` in tree `tree`, ascending — the fixed tree-rank
    /// order that makes all-port combine order deterministic.
    #[must_use]
    pub fn children(&self, tree: u32, node: NodeId) -> Vec<NodeId> {
        (0..self.nodes()).filter(|&c| self.parent(tree, c) == Some(node)).collect()
    }

    /// All `2^k - 1` directed parent edges `(parent, child)` of tree
    /// `tree`, in ascending child order.
    pub fn edges(&self, tree: u32) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (1..self.nodes()).map(move |c| {
            let p = self.parent(tree, c).unwrap_or(0);
            (p, c)
        })
    }
}

/// Split `buf` into `pieces` contiguous segments of near-equal length
/// (the first `len % pieces` segments are one element longer).
fn split_even<T: Clone>(buf: &[T], pieces: usize) -> Vec<Vec<T>> {
    let len = buf.len();
    let base = len / pieces;
    let extra = len % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut at = 0usize;
    for i in 0..pieces {
        let take = base + usize::from(i < extra);
        out.push(buf[at..at + take].to_vec());
        at += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn machine(dim: u32) -> Hypercube {
        Hypercube::new(dim, CostModel::unit())
    }

    #[test]
    fn esbt_small_tree_matches_hand_derivation() {
        // k = 3, tree 0: 0→1; 1→{3,5}; 3→{2,7}; 5→{4}; 7→{6}.
        let f = EsbtForest::new(3);
        assert_eq!(f.parent(0, 1), Some(0));
        assert_eq!(f.parent(0, 3), Some(1));
        assert_eq!(f.parent(0, 5), Some(1));
        assert_eq!(f.parent(0, 2), Some(3));
        assert_eq!(f.parent(0, 7), Some(3));
        assert_eq!(f.parent(0, 4), Some(5));
        assert_eq!(f.parent(0, 6), Some(7));
        assert_eq!(f.children(0, 1), vec![3, 5]);
        // Tree j's source edge is 0 → 2^j.
        for j in 0..3 {
            assert_eq!(f.parent(j, 1 << j), Some(0));
        }
    }

    #[test]
    fn esbt_trees_are_spanning_and_bounded_by_height() {
        use crate::cost::esbt_height;
        for k in 1..=8u32 {
            let f = EsbtForest::new(k);
            for tree in 0..k {
                for node in 0..f.nodes() {
                    let d = f.depth(tree, node); // terminates => reaches 0
                    assert!(d <= esbt_height(k as usize), "k={k} tree={tree} node={node}");
                }
                assert_eq!(f.height(tree), esbt_height(k as usize), "k={k} tree={tree}");
                assert_eq!(f.edges(tree).count(), f.nodes() - 1);
            }
        }
    }

    #[test]
    fn esbt_forest_partitions_directed_edges() {
        use std::collections::HashSet;
        for k in 1..=8u32 {
            let f = EsbtForest::new(k);
            let mut seen: HashSet<(usize, usize)> = HashSet::new();
            for tree in 0..k {
                for (p, c) in f.edges(tree) {
                    assert_eq!((p ^ c).count_ones(), 1, "k={k} tree={tree}: {p}->{c} not an edge");
                    assert!(seen.insert((p, c)), "k={k}: duplicate directed edge {p}->{c}");
                }
            }
            // Every directed cube edge is used exactly once, except the k
            // edges into node 0.
            let expected = (k as usize) * f.nodes() - k as usize;
            assert_eq!(seen.len(), expected, "k={k}");
            for (_, c) in &seen {
                assert_ne!(*c, 0, "no tree edge points into the source");
            }
        }
    }

    #[test]
    fn split_even_covers_everything() {
        let v: Vec<u32> = (0..10).collect();
        let parts = split_even(&v, 4);
        assert_eq!(parts.iter().map(Vec::len).collect::<Vec<_>>(), vec![3, 3, 2, 2]);
        let flat: Vec<u32> = parts.into_iter().flatten().collect();
        assert_eq!(flat, v);
    }

    #[test]
    fn scatter_allgather_broadcast_is_semantically_a_broadcast() {
        let mut hc = machine(4);
        let dims: Vec<u32> = hc.cube().iter_dims().collect();
        let payload: Vec<u64> = (0..37).collect();
        let mut locals = hc.locals_from_fn(|n| if n == 0 { payload.clone() } else { vec![] });
        broadcast_with(&mut hc, &mut locals, &dims, 0, BroadcastSchedule::ScatterAllgather);
        for (n, buf) in locals.iter().enumerate() {
            assert_eq!(buf, &payload, "node {n}");
        }
    }

    #[test]
    fn scatter_allgather_with_nonzero_root() {
        let mut hc = machine(3);
        let dims = [0u32, 1, 2];
        let payload: Vec<u64> = (0..16).collect();
        let mut locals = hc.locals_from_fn(|n| if n == 5 { payload.clone() } else { vec![] });
        broadcast_with(&mut hc, &mut locals, &dims, 5, BroadcastSchedule::ScatterAllgather);
        for buf in &locals {
            assert_eq!(buf, &payload);
        }
    }

    #[test]
    fn allport_esbt_broadcast_is_semantically_a_broadcast() {
        let mut hc = machine(3);
        let dims = [0u32, 1, 2];
        let payload: Vec<u64> = (0..24).collect();
        let mut locals = hc.locals_from_fn(|n| if n == 2 { payload.clone() } else { vec![] });
        broadcast_with(&mut hc, &mut locals, &dims, 2, BroadcastSchedule::AllPortEsbt);
        for buf in &locals {
            assert_eq!(buf, &payload);
        }
    }

    #[test]
    fn large_messages_favour_scatter_allgather() {
        let len = 4096usize;
        let dims: Vec<u32> = (0..6).collect();
        let run = |sched| {
            let mut hc = machine(6);
            let mut locals = hc.locals_from_fn(|n| if n == 0 { vec![1.0f64; len] } else { vec![] });
            broadcast_with(&mut hc, &mut locals, &dims, 0, sched);
            hc.elapsed_us()
        };
        let binomial = run(BroadcastSchedule::Binomial);
        let balanced = run(BroadcastSchedule::ScatterAllgather);
        let allport = run(BroadcastSchedule::AllPortEsbt);
        assert!(balanced < binomial, "balanced {balanced} vs binomial {binomial}");
        assert!(allport < balanced, "allport {allport} vs balanced {balanced}");
    }

    #[test]
    fn small_messages_favour_binomial() {
        // With alpha big relative to beta*L, fewer start-ups win.
        let dims: Vec<u32> = (0..6).collect();
        let run = |sched| {
            let mut hc = Hypercube::new(6, CostModel { alpha: 100.0, ..CostModel::unit() });
            let mut locals = hc.locals_from_fn(|n| if n == 0 { vec![1.0f64; 4] } else { vec![] });
            broadcast_with(&mut hc, &mut locals, &dims, 0, sched);
            hc.elapsed_us()
        };
        let binomial = run(BroadcastSchedule::Binomial);
        let balanced = run(BroadcastSchedule::ScatterAllgather);
        assert!(binomial < balanced, "binomial {binomial} vs balanced {balanced}");
    }

    #[test]
    fn reduce_scatter_gather_matches_binomial_reduce() {
        let mut hc1 = machine(4);
        let dims: Vec<u32> = hc1.cube().iter_dims().collect();
        let make =
            |hc: &Hypercube| hc.locals_from_fn(|n| (0..33).map(|i| (n * 100 + i) as f64).collect());
        let mut a = make(&hc1);
        reduce_scatter_gather(&mut hc1, &mut a, &dims, |x, y| x + y);

        let mut hc2 = machine(4);
        let mut b = make(&hc2);
        crate::collective::reduce(&mut hc2, &mut b, &dims, 0, |x, y| x + y);

        assert_eq!(a[0].len(), 33);
        for (x, y) in a[0].iter().zip(&b[0]) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn rabenseifner_allreduce_matches_butterfly() {
        let mut hc1 = machine(3);
        let dims: Vec<u32> = hc1.cube().iter_dims().collect();
        let make = |hc: &Hypercube| {
            hc.locals_from_fn(|n| (0..17).map(|i| ((n + 1) * (i + 1)) as f64).collect())
        };
        let mut a = make(&hc1);
        allreduce_rabenseifner(&mut hc1, &mut a, &dims, |x, y| x + y);

        let mut hc2 = machine(3);
        let mut b = make(&hc2);
        crate::collective::allreduce(&mut hc2, &mut b, &dims, |x, y| x + y);

        for n in 0..8 {
            assert_eq!(a[n].len(), 17, "node {n}");
            for (x, y) in a[n].iter().zip(&b[n]) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rabenseifner_saves_bandwidth_on_large_buffers() {
        let dims: Vec<u32> = (0..6).collect();
        let len = 8192usize;
        let mut hc1 = Hypercube::new(6, CostModel::zero_latency());
        let mut a = hc1.locals_from_fn(|_| vec![1.0f64; len]);
        allreduce_rabenseifner(&mut hc1, &mut a, &dims, |x, y| x + y);
        let mut hc2 = Hypercube::new(6, CostModel::zero_latency());
        let mut b = hc2.locals_from_fn(|_| vec![1.0f64; len]);
        crate::collective::allreduce(&mut hc2, &mut b, &dims, |x, y| x + y);
        assert!(hc1.elapsed_us() < 0.7 * hc2.elapsed_us());
    }
}
