//! Shared host-parallelism tunables.
//!
//! Both the machine's [`crate::machine::local_compute`] helper and the
//! higher-level crates (vmp's per-node kernel drivers) gate rayon
//! fan-out on the same question: *is there enough total work to amortise
//! the thread-pool hand-off?* Historically each site hard-coded its own
//! `1 << 15` constant; this module is the single source of truth.
//!
//! The default threshold is **`1 << 15` (32 768) elements of total
//! work** across all nodes — small enough that a 64-node machine with a
//! few thousand elements per node fans out, large enough that unit-test
//! sized problems stay on one thread. Override it with the
//! `VMP_PAR_THRESHOLD` environment variable (a plain integer element
//! count; `0` means "always parallel"). The variable is read once per
//! process and cached.

use std::sync::OnceLock;

/// Default minimum total work (elements touched across all nodes)
/// before per-node loops fan out to rayon.
pub const DEFAULT_PAR_THRESHOLD: usize = 1 << 15;

static THRESHOLD: OnceLock<usize> = OnceLock::new();

fn parse_env() -> Option<usize> {
    let raw = std::env::var("VMP_PAR_THRESHOLD").ok()?;
    raw.trim().parse::<usize>().ok()
}

/// The process-wide parallelism threshold: total units of work at or
/// above which per-node loops should use the rayon pool.
///
/// Honours `VMP_PAR_THRESHOLD` (read once, then cached); falls back to
/// [`DEFAULT_PAR_THRESHOLD`]. Unparseable values are ignored.
#[must_use]
pub fn threshold() -> usize {
    *THRESHOLD.get_or_init(|| parse_env().unwrap_or(DEFAULT_PAR_THRESHOLD))
}

/// `true` when `total_work` is large enough to justify rayon fan-out
/// **and** the host pool actually has more than one thread. With a
/// single-thread pool (notably the vendored sequential rayon stand-in)
/// the fan-out path's extra bookkeeping — per-node `Vec` collection and
/// arena re-stitching — can never pay for itself, so the serial in-arena
/// path is used unconditionally.
#[must_use]
pub fn should_parallelise(total_work: usize) -> bool {
    rayon::current_num_threads() > 1 && total_work >= threshold()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_matches_historic_constant() {
        assert_eq!(DEFAULT_PAR_THRESHOLD, 1 << 15);
        // The cached value is either the default or whatever the test
        // environment set; both must be internally consistent.
        let t = threshold();
        if rayon::current_num_threads() > 1 {
            assert!(should_parallelise(t));
        } else {
            // Single-thread pool (e.g. the vendored sequential stand-in):
            // fan-out is never worth it, whatever the work size.
            assert!(!should_parallelise(t));
            assert!(!should_parallelise(usize::MAX));
        }
        if t > 0 {
            assert!(!should_parallelise(t - 1));
        }
    }
}
