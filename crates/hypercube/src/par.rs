//! Shared host-parallelism tunables.
//!
//! Both the machine's [`crate::machine::local_compute`] helper and the
//! higher-level crates (vmp's per-node kernel drivers) gate rayon
//! fan-out on the same question: *is there enough total work to amortise
//! the thread-pool hand-off?* Historically each site hard-coded its own
//! `1 << 15` constant; this module is the single source of truth.
//!
//! The default threshold is **`1 << 15` (32 768) elements of total
//! work** across all nodes — small enough that a 64-node machine with a
//! few thousand elements per node fans out, large enough that unit-test
//! sized problems stay on one thread. Override it with the
//! `VMP_PAR_THRESHOLD` environment variable (a plain integer element
//! count; `0` means "always parallel"). The variable is read once per
//! process and cached.

//!
//! The slab fan-out helpers ([`for_each_node`], [`build_nodes`]) live
//! here too, so the gating decision and the code that acts on it cannot
//! drift apart: `vmp-core`'s kernel drivers and the machine's own
//! [`crate::machine::local_compute_slab`] all call the same two
//! functions (vmplint's DESIGN.md section documents the invariant).

use std::sync::OnceLock;

use rayon::prelude::*;

use crate::slab::NodeSlab;

/// Default minimum total work (elements touched across all nodes)
/// before per-node loops fan out to rayon.
pub const DEFAULT_PAR_THRESHOLD: usize = 1 << 15;

static THRESHOLD: OnceLock<usize> = OnceLock::new();

fn parse_env() -> Option<usize> {
    let raw = std::env::var("VMP_PAR_THRESHOLD").ok()?;
    raw.trim().parse::<usize>().ok()
}

/// The process-wide parallelism threshold: total units of work at or
/// above which per-node loops should use the rayon pool.
///
/// Honours `VMP_PAR_THRESHOLD` (read once, then cached); falls back to
/// [`DEFAULT_PAR_THRESHOLD`]. Unparseable values are ignored.
#[must_use]
pub fn threshold() -> usize {
    *THRESHOLD.get_or_init(|| parse_env().unwrap_or(DEFAULT_PAR_THRESHOLD))
}

/// `true` when `total_work` is large enough to justify rayon fan-out
/// **and** the host pool actually has more than one thread. With a
/// single-thread pool (notably the vendored sequential rayon stand-in)
/// the fan-out path's extra bookkeeping — per-node `Vec` collection and
/// arena re-stitching — can never pay for itself, so the serial in-arena
/// path is used unconditionally.
#[must_use]
pub fn should_parallelise(total_work: usize) -> bool {
    rayon::current_num_threads() > 1 && total_work >= threshold()
}

/// Run `f(node, segment)` for every node's slab segment, in parallel
/// when the estimated machine-wide work is large enough to amortise the
/// fork/join.
pub fn for_each_node<T: Send>(
    slab: &mut NodeSlab<T>,
    work_hint: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    if should_parallelise(work_hint) && slab.p() > 1 {
        slab.segs_mut().into_par_iter().enumerate().for_each(|(node, seg)| f(node, seg));
    } else {
        for node in 0..slab.p() {
            f(node, slab.seg_mut(node));
        }
    }
}

/// Build one output segment per node into a fresh arena.
///
/// `f(node, buf)` appends node `node`'s output to `buf`. On the serial
/// path the slab is built directly — one allocation for the whole
/// machine, zero intermediate copies. On the parallel path (work at or
/// above the threshold) each node's buffer is produced independently and
/// the results are stitched into the arena afterwards.
///
/// **Contract:** `buf` may already contain earlier nodes' segments
/// (it is the arena's shared backing store on the serial path), so `f`
/// must only append; any in-place fix-up must be confined to the suffix
/// `buf[start..]` where `start` is `buf.len()` at entry.
pub fn build_nodes<U: Send>(
    p: usize,
    work_hint: usize,
    total_hint: usize,
    f: impl Fn(usize, &mut Vec<U>) + Sync,
) -> NodeSlab<U> {
    if should_parallelise(work_hint) && p > 1 {
        let nested: Vec<Vec<U>> = (0..p)
            .into_par_iter()
            .map(|node| {
                let mut buf = Vec::new();
                f(node, &mut buf);
                buf
            })
            .collect();
        NodeSlab::from_nested_owned(nested)
    } else {
        let mut slab = NodeSlab::with_capacity(p, total_hint);
        for node in 0..p {
            slab.push_seg_with(|buf| f(node, buf));
        }
        slab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labelled(p: usize, len: usize) -> NodeSlab<u64> {
        NodeSlab::from_nested_owned((0..p).map(|n| vec![n as u64; len]).collect::<Vec<_>>())
    }

    #[test]
    fn serial_and_parallel_paths_agree() {
        let mut small = labelled(8, 4);
        let mut large = labelled(8, 4);
        let f = |node: usize, seg: &mut [u64]| {
            for v in seg.iter_mut() {
                *v = v.wrapping_mul(7).wrapping_add(node as u64);
            }
        };
        for_each_node(&mut small, 1, f); // serial path
        for_each_node(&mut large, 1 << 20, f); // parallel path
        assert_eq!(small, large);
    }

    #[test]
    fn build_nodes_produces_per_node_segments_on_both_paths() {
        let f = |n: usize, buf: &mut Vec<usize>| buf.extend(std::iter::repeat_n(n, n));
        let serial = build_nodes(5, 1, 0, f);
        let parallel = build_nodes(5, 1 << 20, 0, f);
        assert_eq!(serial, parallel);
        for n in 0..5 {
            assert_eq!(serial.seg(n), vec![n; n].as_slice());
        }
        assert_eq!(serial.total_len(), 10);
    }

    #[test]
    fn default_threshold_matches_historic_constant() {
        assert_eq!(DEFAULT_PAR_THRESHOLD, 1 << 15);
        // The cached value is either the default or whatever the test
        // environment set; both must be internally consistent.
        let t = threshold();
        if rayon::current_num_threads() > 1 {
            assert!(should_parallelise(t));
        } else {
            // Single-thread pool (e.g. the vendored sequential stand-in):
            // fan-out is never worth it, whatever the work size.
            assert!(!should_parallelise(t));
            assert!(!should_parallelise(usize::MAX));
        }
        if t > 0 {
            assert!(!should_parallelise(t - 1));
        }
    }
}
