//! All-to-one reduction and all-reduce within subcubes.

use super::{allport, check_dims};
use crate::cost::{Algo, Collective};
use crate::machine::Hypercube;
use crate::slab::NodeSlab;

/// Reduce over a flat [`NodeSlab`]: within every subcube spanned by
/// `dims`, the equal-length segments of all members are combined
/// elementwise with the **commutative associative** operator `op`,
/// leaving the result in the segment of the node at subcube coordinate
/// `root_coord` and emptying every other member's segment.
///
/// Reverse spanning-binomial-tree: `|dims|` supersteps, each costing
/// `alpha + (beta + gamma) * L`. Combines run in place through
/// [`NodeSlab::pair_mut`] — no buffer is taken, cloned, or reallocated
/// until one final compaction pass.
///
/// # Panics
/// Panics if the segments within a subcube have different lengths, or on
/// an invalid `dims`/`root_coord`.
pub fn reduce_slab<T: Copy>(
    hc: &mut Hypercube,
    slab: &mut NodeSlab<T>,
    dims: &[u32],
    root_coord: usize,
    op: impl Fn(T, T) -> T,
) {
    let cube = hc.cube();
    check_dims(cube, dims);
    let k = dims.len();
    assert!(root_coord < (1usize << k), "root coordinate out of range");
    assert_eq!(slab.p(), cube.nodes());
    if k == 0 {
        return;
    }

    let algo = hc.choose_algo(Collective::Reduce, k, slab.max_seg_len());
    let mut allport_total: u64 = 0;

    // Live lengths: a sender's segment is logically consumed (the slab
    // keeps its stale bytes until the final compaction).
    let mut lens: Vec<usize> = (0..slab.p()).map(|n| slab.len_of(n)).collect();
    for j in (0..k).rev() {
        let bit = 1usize << j;
        // Senders: relative coordinate x in [2^j, 2^{j+1}).
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        for node in cube.iter_nodes() {
            let x = cube.extract_coords(node, dims) ^ root_coord;
            if x >= bit && x < bit << 1 {
                let partner = cube.neighbor(node, dims[j]);
                let len = lens[node];
                max_len = max_len.max(len);
                total += len as u64;
                pairs.push((node, partner));
            }
        }
        for &(src, dst) in &pairs {
            let sent_len = lens[src];
            assert_eq!(
                sent_len, lens[dst],
                "reduce requires equal buffer lengths within a subcube"
            );
            lens[src] = 0;
            let (s, d) = slab.pair_mut(src, dst);
            for (acc, &v) in d[..sent_len].iter_mut().zip(&s[..sent_len]) {
                *acc = op(*acc, v);
            }
        }
        match algo {
            Algo::SinglePort => {
                hc.charge_exchange_step(&pairs, max_len, total);
                hc.charge_flops(max_len);
            }
            Algo::AllPort { .. } => allport_total += total,
        }
    }
    if let Algo::AllPort { chunks } = algo {
        allport::charge(hc, Collective::Reduce, k, slab.max_seg_len(), chunks, allport_total);
    }

    // Compact: roots keep their combined segment, everyone else empties.
    let mut out = NodeSlab::with_capacity(slab.p(), lens.iter().sum());
    for node in 0..slab.p() {
        out.push_seg(&slab[node][..lens[node]]);
    }
    slab.swap(&mut out);
}

/// Reduce, within every subcube spanned by `dims`, the equal-length
/// buffers of all members elementwise with the **commutative associative**
/// operator `op`, leaving the result in the buffer of the node at subcube
/// coordinate `root_coord` and **clearing** every other member's buffer
/// (their partial contents are meaningless after the exchange). Thin
/// adapter over [`reduce_slab`].
///
/// # Panics
/// Panics if the buffers within a subcube have different lengths, or on an
/// invalid `dims`/`root_coord`.
pub fn reduce<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    root_coord: usize,
    op: impl Fn(T, T) -> T,
) {
    assert_eq!(locals.len(), hc.cube().nodes());
    let mut slab = NodeSlab::from_nested(locals);
    reduce_slab(hc, &mut slab, dims, root_coord, op);
    slab.write_nested(locals);
}

/// All-reduce over a flat [`NodeSlab`]: after the call every segment in
/// a subcube holds the elementwise `op`-combination of all of them.
///
/// Butterfly exchange: `|dims|` supersteps of pairwise exchange+combine,
/// `alpha + (beta + gamma) * L` each — same time as [`reduce_slab`] but
/// the result is replicated, which is how a row/column reduction keeps a
/// vector aligned with the grid (no separate broadcast needed). Fully in
/// place: the only writes are the combines themselves.
pub fn allreduce_slab<T: Copy>(
    hc: &mut Hypercube,
    slab: &mut NodeSlab<T>,
    dims: &[u32],
    op: impl Fn(T, T) -> T,
) {
    let cube = hc.cube();
    check_dims(cube, dims);
    assert_eq!(slab.p(), cube.nodes());

    let algo = hc.choose_algo(Collective::Allreduce, dims.len(), slab.max_seg_len());
    let mut allport_total: u64 = 0;
    // Uniform segment lengths (the common balanced-layout case) take the
    // block-combine fast path: one straight-line pass per dimension via
    // [`NodeSlab::butterfly_combine`], bit-identical to the per-pair
    // loop but without per-pair offset lookups.
    let uniform = slab.uniform_seg_len().filter(|&l| l > 0);

    for &d in dims {
        let bit = 1usize << d;
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        // Process each pair once: the node with the d-bit clear drives.
        for node in cube.iter_nodes() {
            if node & bit != 0 {
                continue;
            }
            let partner = node | bit;
            pairs.push((node, partner));
            assert_eq!(
                slab.len_of(node),
                slab.len_of(partner),
                "allreduce requires equal buffer lengths within a subcube"
            );
            let len = slab.len_of(node);
            max_len = max_len.max(len);
            total += 2 * len as u64;
            if uniform.is_none() {
                let (lo, hi) = slab.pair_mut(node, partner);
                for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                    let combined = op(*a, *b);
                    *a = combined;
                    *b = combined;
                }
            }
        }
        if uniform.is_some() {
            slab.butterfly_combine(bit, &op);
        }
        match algo {
            Algo::SinglePort => {
                hc.charge_exchange_step(&pairs, max_len, total);
                hc.charge_flops(max_len);
            }
            Algo::AllPort { .. } => allport_total += total,
        }
    }
    if let Algo::AllPort { chunks } = algo {
        allport::charge(
            hc,
            Collective::Allreduce,
            dims.len(),
            slab.max_seg_len(),
            chunks,
            allport_total,
        );
    }
}

/// All-reduce within every subcube spanned by `dims`: after the call every
/// member holds the elementwise `op`-combination of all members' buffers.
/// Thin adapter over [`allreduce_slab`].
pub fn allreduce<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    op: impl Fn(T, T) -> T,
) {
    assert_eq!(locals.len(), hc.cube().nodes());
    let mut slab = NodeSlab::from_nested(locals);
    allreduce_slab(hc, &mut slab, dims, op);
    slab.write_nested(locals);
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{labelled_locals, unit_machine};
    use super::*;

    #[test]
    fn reduce_whole_cube_sums() {
        let mut hc = unit_machine(4);
        let dims: Vec<u32> = hc.cube().iter_dims().collect();
        let mut locals = labelled_locals(&hc, 3);
        let expected: Vec<f64> =
            (0..3).map(|i| (0..16).map(|n| (n * 1000 + i) as f64).sum()).collect();
        reduce(&mut hc, &mut locals, &dims, 0, |a, b| a + b);
        assert_eq!(locals[0], expected);
        for n in 1..16 {
            assert!(locals[n].is_empty(), "non-root buffers cleared");
        }
        assert_eq!(hc.counters().message_steps, 4);
    }

    #[test]
    fn reduce_to_nonzero_root() {
        let mut hc = unit_machine(3);
        let mut locals = hc.locals_from_fn(|n| vec![n as u64]);
        reduce(&mut hc, &mut locals, &[0, 1, 2], 6, |a, b| a + b);
        assert_eq!(locals[6], vec![(0..8).sum::<u64>()]);
    }

    #[test]
    fn reduce_min_within_columns() {
        // dims {2,3} reduce over rows of a 4x4 grid: per column minimum.
        let mut hc = unit_machine(4);
        let col_dims = [2u32, 3];
        let mut locals = hc.locals_from_fn(|n| vec![((n * 7919) % 97) as i64]);
        let expected: Vec<i64> = (0..4)
            .map(|col| (0..4).map(|row| (((row << 2 | col) * 7919) % 97) as i64).min().unwrap())
            .collect();
        reduce(&mut hc, &mut locals, &col_dims, 0, i64::min);
        for col in 0..4usize {
            assert_eq!(locals[col], vec![expected[col]], "column {col}");
        }
    }

    #[test]
    fn allreduce_replicates_result_everywhere() {
        let mut hc = unit_machine(4);
        let dims: Vec<u32> = hc.cube().iter_dims().collect();
        let mut locals = labelled_locals(&hc, 2);
        let expected: Vec<f64> =
            (0..2).map(|i| (0..16).map(|n| (n * 1000 + i) as f64).sum()).collect();
        allreduce(&mut hc, &mut locals, &dims, |a, b| a + b);
        for n in 0..16 {
            assert_eq!(locals[n], expected, "node {n}");
        }
        assert_eq!(hc.counters().message_steps, 4);
    }

    #[test]
    fn allreduce_subcube_independence() {
        // allreduce along dim {0} only: pairs (2k, 2k+1) sum privately.
        let mut hc = unit_machine(3);
        let mut locals = hc.locals_from_fn(|n| vec![n as u64]);
        allreduce(&mut hc, &mut locals, &[0], |a, b| a + b);
        for n in 0..8usize {
            let pair_sum = ((n & !1) + (n | 1)) as u64;
            assert_eq!(locals[n], vec![pair_sum]);
        }
    }

    #[test]
    fn reduce_and_allreduce_agree() {
        let mut hc1 = unit_machine(5);
        let dims: Vec<u32> = hc1.cube().iter_dims().collect();
        let mut a = hc1.locals_from_fn(|n| vec![(n as f64).sin(); 4]);
        let mut b = a.clone();
        reduce(&mut hc1, &mut a, &dims, 0, |x, y| x + y);
        let mut hc2 = unit_machine(5);
        allreduce(&mut hc2, &mut b, &dims, |x, y| x + y);
        for (x, y) in a[0].iter().zip(&b[0]) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn reduce_empty_dims_is_noop() {
        let mut hc = unit_machine(3);
        let mut locals = hc.locals_from_fn(|n| vec![n as u64]);
        let before = locals.clone();
        reduce(&mut hc, &mut locals, &[], 0, |a, b| a + b);
        assert_eq!(locals, before);
    }

    #[test]
    fn slab_reduce_bitwise_matches_reference() {
        use super::super::reference;
        let dims = [0u32, 1, 3];
        let mut hc1 = unit_machine(4);
        let mut a = hc1.locals_from_fn(|n| vec![(n as f64).sin(); 5]);
        let mut b = a.clone();
        reference::reduce(&mut hc1, &mut a, &dims, 2, |x, y| x + y);
        let mut hc2 = unit_machine(4);
        reduce(&mut hc2, &mut b, &dims, 2, |x, y| x + y);
        assert_eq!(a, b, "payload bit-identical (same combine order)");
        assert_eq!(hc1.elapsed_us(), hc2.elapsed_us());
        assert_eq!(hc1.counters(), hc2.counters());
    }

    #[test]
    #[should_panic(expected = "equal buffer lengths")]
    fn ragged_buffers_panic() {
        let mut hc = unit_machine(2);
        let mut locals = hc.locals_from_fn(|n| vec![0u8; n]);
        reduce(&mut hc, &mut locals, &[0, 1], 0, |a, b| a + b);
    }
}
