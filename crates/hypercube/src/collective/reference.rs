//! The seed nested-`Vec` collective implementations, kept verbatim.
//!
//! These are the original, straightforward `Vec<Vec<T>>` data-plane
//! versions of every collective. They exist for two reasons:
//!
//! 1. **Differential testing** — the slab-backed canonical collectives
//!    (see the sibling modules) must produce bit-identical payloads,
//!    simulated clocks, and counters; `tests/slab_equiv.rs` checks that
//!    property against these on random shapes, machine sizes, and fault
//!    plans.
//! 2. **Wall-clock baselining** — `reproduce -- wallclock` times the
//!    slab data plane against this one to quantify the host-side win.
//!
//! Do not "optimise" this module: its value is being the known-good
//! seed semantics.

use super::check_dims;
use crate::machine::Hypercube;
use crate::topology::NodeId;

/// Seed [`super::exchange`]: every node receives a copy of its
/// `dim`-neighbour's buffer, cloning one `Vec` per node.
pub fn exchange<T: Clone>(hc: &mut Hypercube, locals: &[Vec<T>], dim: u32) -> Vec<Vec<T>> {
    let cube = hc.cube();
    assert!(dim < cube.dim(), "dimension {dim} out of range for cube of dim {}", cube.dim());
    assert_eq!(locals.len(), cube.nodes());
    let bit = 1usize << dim;
    let mut max_len = 0usize;
    let mut total: u64 = 0;
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let out: Vec<Vec<T>> = (0..cube.nodes())
        .map(|node| {
            let buf = &locals[node ^ bit];
            max_len = max_len.max(buf.len());
            total += buf.len() as u64;
            if node & bit == 0 {
                pairs.push((node, node | bit));
            }
            buf.clone()
        })
        .collect();
    hc.charge_exchange_step(&pairs, max_len, total);
    out
}

/// Seed [`super::allgather`]: recursive doubling with a merged
/// allocation and a clone per pair per step.
pub fn allgather<T: Clone>(hc: &mut Hypercube, locals: &mut [Vec<T>], dims: &[u32]) {
    let cube = hc.cube();
    check_dims(cube, dims);
    assert_eq!(locals.len(), cube.nodes());

    for (j, &d) in dims.iter().enumerate() {
        let chan = 1usize << d;
        let _ = j;
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for node in cube.iter_nodes() {
            if node & chan != 0 {
                continue;
            }
            let partner = node | chan;
            pairs.push((node, partner));
            let lo_len = locals[node].len();
            let hi_len = locals[partner].len();
            max_len = max_len.max(lo_len.max(hi_len));
            total += (lo_len + hi_len) as u64;
            // vmplint: allow(s1) — seed reference body preserved verbatim; splits the host-side nested-Vec view, not slab storage
            let (lo_part, hi_part) = locals.split_at_mut(partner);
            let lo = &mut lo_part[node];
            let hi = &mut hi_part[0];
            let mut merged = Vec::with_capacity(lo.len() + hi.len());
            merged.extend_from_slice(lo);
            merged.extend_from_slice(hi);
            *lo = merged.clone();
            *hi = merged;
        }
        hc.charge_exchange_step(&pairs, max_len, total);
    }
}

/// Seed [`super::gather`]: reverse binomial tree with `mem::take` +
/// `append` per hop.
pub fn gather<T>(hc: &mut Hypercube, locals: &mut [Vec<T>], dims: &[u32]) {
    let cube = hc.cube();
    check_dims(cube, dims);
    assert_eq!(locals.len(), cube.nodes());

    for (j, &d) in dims.iter().enumerate() {
        let bit = 1usize << j;
        let chan = 1usize << d;
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        let mut sends: Vec<(usize, usize)> = Vec::new();
        for node in cube.iter_nodes() {
            let c = cube.extract_coords(node, dims);
            if c & bit != 0 && c & (bit - 1) == 0 {
                let dst = node ^ chan;
                let len = locals[node].len();
                max_len = max_len.max(len);
                total += len as u64;
                sends.push((node, dst));
            }
        }
        for &(src, dst) in &sends {
            let mut sent = std::mem::take(&mut locals[src]);
            locals[dst].append(&mut sent);
        }
        hc.charge_exchange_step(&sends, max_len, total);
    }
}

/// Seed [`super::scatter`]: binomial tree carrying nested segment lists.
pub fn scatter<T>(hc: &mut Hypercube, segments: Vec<Vec<Vec<T>>>, dims: &[u32]) -> Vec<Vec<T>> {
    let cube = hc.cube();
    check_dims(cube, dims);
    let k = dims.len();
    assert_eq!(segments.len(), cube.nodes());

    let mut holdings: Vec<Vec<Vec<T>>> = Vec::with_capacity(cube.nodes());
    for (node, segs) in segments.into_iter().enumerate() {
        let c = cube.extract_coords(node, dims);
        if c == 0 {
            assert_eq!(segs.len(), 1usize << k, "root must supply 2^k segments");
            holdings.push(segs);
        } else {
            assert!(segs.is_empty(), "non-root nodes must not supply segments");
            holdings.push(Vec::new());
        }
    }

    for j in (0..k).rev() {
        let bit = 1usize << j;
        let chan = 1usize << dims[j];
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        let mut sends: Vec<(usize, usize, Vec<Vec<T>>)> = Vec::new();
        for node in cube.iter_nodes() {
            let c = cube.extract_coords(node, dims);
            if c & ((bit << 1) - 1) == 0 && !holdings[node].is_empty() {
                let upper = holdings[node].split_off(bit);
                let len: usize = upper.iter().map(Vec::len).sum();
                max_len = max_len.max(len);
                total += len as u64;
                sends.push((node, node ^ chan, upper));
            }
        }
        let pairs: Vec<(usize, usize)> = sends.iter().map(|&(src, dst, _)| (src, dst)).collect();
        for (_src, dst, segs) in sends {
            holdings[dst] = segs;
        }
        hc.charge_exchange_step(&pairs, max_len, total);
    }

    holdings
        .into_iter()
        .map(|mut segs| if segs.is_empty() { Vec::new() } else { segs.swap_remove(0) })
        .collect()
}

/// An in-flight item: `(src_coord, dst_coord, payload)`.
type InFlightItem<T> = (usize, usize, Vec<T>);

/// Seed [`super::alltoall`]: forwards owned block `Vec`s through `k`
/// supersteps and reassembles by source coordinate.
pub fn alltoall<T>(hc: &mut Hypercube, send: Vec<Vec<Vec<T>>>, dims: &[u32]) -> Vec<Vec<Vec<T>>> {
    let cube = hc.cube();
    check_dims(cube, dims);
    let k = dims.len();
    let blocks_per_node = 1usize << k;
    assert_eq!(send.len(), cube.nodes());

    let mut in_flight: Vec<Vec<InFlightItem<T>>> = Vec::with_capacity(cube.nodes());
    for (node, blocks) in send.into_iter().enumerate() {
        assert_eq!(
            blocks.len(),
            blocks_per_node,
            "node {node}: need one block per destination coordinate"
        );
        let src = cube.extract_coords(node, dims);
        in_flight
            .push(blocks.into_iter().enumerate().map(|(dst, data)| (src, dst, data)).collect());
    }

    for j in 0..k {
        let bit = 1usize << j;
        let chan = 1usize << dims[j];
        let mut max_fwd = 0usize;
        let mut total: u64 = 0;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut moved: Vec<(usize, InFlightItem<T>)> = Vec::new();
        for node in cube.iter_nodes() {
            let my_c = cube.extract_coords(node, dims);
            let held = std::mem::take(&mut in_flight[node]);
            let mut stay = Vec::with_capacity(held.len());
            let mut fwd_elems = 0usize;
            for item in held {
                if (item.1 ^ my_c) & bit != 0 {
                    fwd_elems += item.2.len();
                    moved.push((node ^ chan, item));
                } else {
                    stay.push(item);
                }
            }
            in_flight[node] = stay;
            if fwd_elems > 0 {
                pairs.push((node, node ^ chan));
            }
            max_fwd = max_fwd.max(fwd_elems);
            total += fwd_elems as u64;
        }
        for (dst_node, item) in moved {
            in_flight[dst_node].push(item);
        }
        hc.charge_exchange_step(&pairs, max_fwd, total);
    }

    in_flight
        .into_iter()
        .map(|items| {
            let mut slots: Vec<Option<Vec<T>>> = (0..blocks_per_node).map(|_| None).collect();
            for (src, _dst, data) in items {
                debug_assert!(slots[src].is_none(), "duplicate block from source {src}");
                slots[src] = Some(data);
            }
            // vmplint: allow(p1) — seed reference body preserved verbatim; the all-to-all schedule delivers exactly one block per source (debug_assert above)
            slots.into_iter().map(|s| s.expect("one block from every source")).collect()
        })
        .collect()
}

/// Seed [`super::reduce`]: reverse binomial tree taking and folding
/// whole `Vec`s.
pub fn reduce<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    root_coord: usize,
    op: impl Fn(T, T) -> T,
) {
    let cube = hc.cube();
    check_dims(cube, dims);
    let k = dims.len();
    assert!(root_coord < (1usize << k), "root coordinate out of range");
    assert_eq!(locals.len(), cube.nodes());
    if k == 0 {
        return;
    }

    for j in (0..k).rev() {
        let bit = 1usize << j;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        for node in cube.iter_nodes() {
            let x = cube.extract_coords(node, dims) ^ root_coord;
            if x >= bit && x < bit << 1 {
                let partner = cube.neighbor(node, dims[j]);
                let len = locals[node].len();
                max_len = max_len.max(len);
                total += len as u64;
                pairs.push((node, partner));
            }
        }
        for &(src, dst) in &pairs {
            let sent = std::mem::take(&mut locals[src]);
            assert_eq!(
                sent.len(),
                locals[dst].len(),
                "reduce requires equal buffer lengths within a subcube"
            );
            for (acc, v) in locals[dst].iter_mut().zip(sent) {
                *acc = op(*acc, v);
            }
        }
        hc.charge_exchange_step(&pairs, max_len, total);
        hc.charge_flops(max_len);
    }
}

/// Seed [`super::allreduce`]: butterfly combine via `split_at_mut`.
pub fn allreduce<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    op: impl Fn(T, T) -> T,
) {
    let cube = hc.cube();
    check_dims(cube, dims);
    assert_eq!(locals.len(), cube.nodes());

    for &d in dims {
        let bit = 1usize << d;
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for node in cube.iter_nodes() {
            if node & bit != 0 {
                continue;
            }
            let partner = node | bit;
            pairs.push((node, partner));
            assert_eq!(
                locals[node].len(),
                locals[partner].len(),
                "allreduce requires equal buffer lengths within a subcube"
            );
            let len = locals[node].len();
            max_len = max_len.max(len);
            total += 2 * len as u64;
            // vmplint: allow(s1) — seed reference body preserved verbatim; splits the host-side nested-Vec view, not slab storage
            let (lo_part, hi_part) = locals.split_at_mut(partner);
            let lo = &mut lo_part[node];
            let hi = &mut hi_part[0];
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let combined = op(*a, *b);
                *a = combined;
                *b = combined;
            }
        }
        hc.charge_exchange_step(&pairs, max_len, total);
        hc.charge_flops(max_len);
    }
}

/// Seed [`super::scan_inclusive`]: butterfly over a full cloned
/// `totals` copy of the inputs.
pub fn scan_inclusive<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    op: impl Fn(T, T) -> T,
) {
    let cube = hc.cube();
    check_dims(cube, dims);
    assert_eq!(locals.len(), cube.nodes());
    if dims.is_empty() {
        return;
    }

    let mut totals: Vec<Vec<T>> = locals.to_vec();

    for (j, &d) in dims.iter().enumerate() {
        let bit_in_coord = 1usize << j;
        let chan = 1usize << d;
        let mut max_len = 0usize;
        let mut total_elems: u64 = 0;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for node in cube.iter_nodes() {
            if node & chan != 0 {
                continue;
            }
            let partner = node | chan;
            pairs.push((node, partner));
            let len = totals[node].len();
            assert_eq!(len, totals[partner].len(), "scan requires equal buffer lengths");
            max_len = max_len.max(len);
            total_elems += 2 * len as u64;

            // vmplint: allow(s1) — seed reference body preserved verbatim; splits the host-side nested-Vec view, not slab storage
            let (lo_part, hi_part) = totals.split_at_mut(partner);
            let lo_total = &mut lo_part[node];
            let hi_total = &mut hi_part[0];

            let node_coord = cube.extract_coords(node, dims);
            debug_assert_eq!(node_coord & bit_in_coord, 0);
            for i in 0..len {
                let lo_v = lo_total[i];
                let hi_v = hi_total[i];
                let combined = op(lo_v, hi_v);
                lo_total[i] = combined;
                hi_total[i] = combined;
                locals[partner][i] = op(lo_v, locals[partner][i]);
            }
        }
        hc.charge_exchange_step(&pairs, max_len, total_elems);
        hc.charge_flops(2 * max_len);
    }
}

/// Seed [`super::scan_exclusive`]: saves a full input copy, seeds the
/// prefixes with the identity, then runs the same butterfly.
pub fn scan_exclusive<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    identity: T,
    op: impl Fn(T, T) -> T,
) {
    let cube = hc.cube();
    check_dims(cube, dims);
    let inputs: Vec<Vec<T>> = locals.to_vec();
    for buf in locals.iter_mut() {
        for v in buf.iter_mut() {
            *v = identity;
        }
    }
    let mut totals = inputs;
    for (j, &d) in dims.iter().enumerate() {
        let bit_in_coord = 1usize << j;
        let chan = 1usize << d;
        let mut max_len = 0usize;
        let mut total_elems: u64 = 0;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for node in cube.iter_nodes() {
            if node & chan != 0 {
                continue;
            }
            let partner = node | chan;
            pairs.push((node, partner));
            let len = totals[node].len();
            assert_eq!(len, totals[partner].len(), "scan requires equal buffer lengths");
            max_len = max_len.max(len);
            total_elems += 2 * len as u64;
            // vmplint: allow(s1) — seed reference body preserved verbatim; splits the host-side nested-Vec view, not slab storage
            let (lo_part, hi_part) = totals.split_at_mut(partner);
            let lo_total = &mut lo_part[node];
            let hi_total = &mut hi_part[0];
            let node_coord = cube.extract_coords(node, dims);
            debug_assert_eq!(node_coord & bit_in_coord, 0);
            for i in 0..len {
                let lo_v = lo_total[i];
                let hi_v = hi_total[i];
                let combined = op(lo_v, hi_v);
                lo_total[i] = combined;
                hi_total[i] = combined;
                locals[partner][i] = op(lo_v, locals[partner][i]);
            }
        }
        hc.charge_exchange_step(&pairs, max_len, total_elems);
        hc.charge_flops(2 * max_len);
    }
}

/// Seed [`super::broadcast`]: spanning binomial tree cloning the full
/// buffer at every hop.
pub fn broadcast<T: Clone>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    root_coord: usize,
) {
    let cube = hc.cube();
    check_dims(cube, dims);
    let k = dims.len();
    assert!(root_coord < (1usize << k), "root coordinate out of range");
    assert_eq!(locals.len(), cube.nodes());
    if k == 0 {
        return;
    }

    for j in 0..k {
        let bit = 1usize << j;
        let mut transfers: Vec<(NodeId, NodeId)> = Vec::new();
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        for node in cube.iter_nodes() {
            let c = cube.extract_coords(node, dims);
            let x = c ^ root_coord;
            if x < bit {
                let partner = cube.neighbor(node, dims[j]);
                let len = locals[node].len();
                max_len = max_len.max(len);
                total += len as u64;
                transfers.push((node, partner));
            }
        }
        for &(src, dst) in &transfers {
            locals[dst] = locals[src].clone();
        }
        hc.charge_exchange_step(&transfers, max_len, total);
    }
}
