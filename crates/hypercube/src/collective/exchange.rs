//! Pairwise exchange along one cube dimension.

use crate::machine::Hypercube;
use crate::slab::NodeSlab;

/// Compute the exchange schedule: `(pairs, max_len, total)` from the
/// per-node lengths, exactly as the seed implementation charged it.
fn exchange_schedule(
    p: usize,
    bit: usize,
    len_of: impl Fn(usize) -> usize,
) -> (Vec<(usize, usize)>, usize, u64) {
    let mut max_len = 0usize;
    let mut total: u64 = 0;
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(p / 2);
    for node in 0..p {
        let len = len_of(node ^ bit);
        max_len = max_len.max(len);
        total += len as u64;
        if node & bit == 0 {
            pairs.push((node, node | bit));
        }
    }
    (pairs, max_len, total)
}

/// Every node receives a copy of its `dim`-neighbour's buffer (keeping
/// its own): the primitive step of butterfly algorithms (FFT stages,
/// bitonic compare-exchange, all-reduce). One superstep,
/// `alpha + beta * L` on full-duplex channels.
///
/// `T: Copy` so the per-node copies compile to `memcpy`; callers that
/// don't need to keep their own buffer should use
/// [`exchange_in_place`] (zero-copy) or [`exchange_slab`].
///
/// # Panics
/// Panics if `dim` is out of range.
pub fn exchange<T: Copy>(hc: &mut Hypercube, locals: &[Vec<T>], dim: u32) -> Vec<Vec<T>> {
    let cube = hc.cube();
    assert!(dim < cube.dim(), "dimension {dim} out of range for cube of dim {}", cube.dim());
    assert_eq!(locals.len(), cube.nodes());
    let bit = 1usize << dim;
    let (pairs, max_len, total) = exchange_schedule(cube.nodes(), bit, |n| locals[n].len());
    let out: Vec<Vec<T>> = (0..cube.nodes()).map(|node| locals[node ^ bit].to_vec()).collect();
    hc.charge_exchange_step(&pairs, max_len, total);
    out
}

/// As [`exchange`], but **swapping** the per-node buffers in place: node
/// `n` ends holding what `n ^ 2^dim` held (its own buffer is given
/// away). Zero element copies — the `Vec` handles are swapped — and no
/// trait bounds. Same charge as [`exchange`].
pub fn exchange_in_place<T>(hc: &mut Hypercube, locals: &mut [Vec<T>], dim: u32) {
    let cube = hc.cube();
    assert!(dim < cube.dim(), "dimension {dim} out of range for cube of dim {}", cube.dim());
    assert_eq!(locals.len(), cube.nodes());
    let bit = 1usize << dim;
    let (pairs, max_len, total) = exchange_schedule(cube.nodes(), bit, |n| locals[n].len());
    for &(lo, hi) in &pairs {
        locals.swap(lo, hi);
    }
    hc.charge_exchange_step(&pairs, max_len, total);
}

/// As [`exchange_in_place`], over a flat [`NodeSlab`]: each segment ends
/// holding its `dim`-neighbour's previous content. When partner
/// segments have equal lengths (the common, load-balanced case) this is
/// an in-arena `swap_with_slice`; otherwise one rebuild pass.
pub fn exchange_slab<T: Copy>(hc: &mut Hypercube, slab: &mut NodeSlab<T>, dim: u32) {
    let cube = hc.cube();
    assert!(dim < cube.dim(), "dimension {dim} out of range for cube of dim {}", cube.dim());
    assert_eq!(slab.p(), cube.nodes());
    let bit = 1usize << dim;
    let (pairs, max_len, total) = exchange_schedule(cube.nodes(), bit, |n| slab.len_of(n));
    if pairs.iter().all(|&(lo, hi)| slab.len_of(lo) == slab.len_of(hi)) {
        for &(lo, hi) in &pairs {
            let (a, b) = slab.pair_mut(lo, hi);
            a.swap_with_slice(b);
        }
    } else {
        let mut out = NodeSlab::with_capacity(slab.p(), slab.total_len());
        for node in 0..slab.p() {
            out.push_seg(&slab[node ^ bit]);
        }
        slab.swap(&mut out);
    }
    hc.charge_exchange_step(&pairs, max_len, total);
}

#[cfg(test)]
mod tests {
    use super::super::testutil::unit_machine;
    use super::*;

    #[test]
    fn exchange_swaps_buffers() {
        let mut hc = unit_machine(3);
        let locals = hc.locals_from_fn(|n| vec![n as u64; n % 3]);
        let got = exchange(&mut hc, &locals, 1);
        for node in 0..8 {
            assert_eq!(got[node], locals[node ^ 2], "node {node}");
        }
        assert_eq!(hc.counters().message_steps, 1);
    }

    #[test]
    fn exchange_cost_is_one_superstep_of_the_longest_buffer() {
        let mut hc = unit_machine(2);
        let locals = hc.locals_from_fn(|n| vec![0u8; if n == 0 { 7 } else { 2 }]);
        let _ = exchange(&mut hc, &locals, 0);
        assert_eq!(hc.elapsed_us(), 1.0 + 7.0, "alpha + beta * max_len");
    }

    #[test]
    fn double_exchange_restores() {
        let mut hc = unit_machine(4);
        let locals = hc.locals_from_fn(|n| vec![n]);
        let once = exchange(&mut hc, &locals, 3);
        let twice = exchange(&mut hc, &once, 3);
        assert_eq!(twice, locals);
    }

    #[test]
    fn in_place_exchange_matches_copying_exchange() {
        let mut hc1 = unit_machine(3);
        let locals = hc1.locals_from_fn(|n| vec![n as u32; (n % 4) + 1]);
        let copied = exchange(&mut hc1, &locals, 2);
        let mut hc2 = unit_machine(3);
        let mut moved = locals.clone();
        exchange_in_place(&mut hc2, &mut moved, 2);
        assert_eq!(moved, copied);
        assert_eq!(hc1.elapsed_us(), hc2.elapsed_us());
        assert_eq!(hc1.counters(), hc2.counters());
    }

    #[test]
    fn slab_exchange_matches_for_equal_and_ragged_lengths() {
        for ragged in [false, true] {
            let mut hc1 = unit_machine(3);
            let locals = hc1.locals_from_fn(|n| vec![n as u16; if ragged { n % 3 } else { 2 }]);
            let copied = exchange(&mut hc1, &locals, 0);
            let mut hc2 = unit_machine(3);
            let mut slab = NodeSlab::from_nested(&locals);
            exchange_slab(&mut hc2, &mut slab, 0);
            assert_eq!(slab.to_nested(), copied, "ragged={ragged}");
            assert_eq!(hc1.elapsed_us(), hc2.elapsed_us());
            assert_eq!(hc1.counters(), hc2.counters());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_dim_panics() {
        let mut hc = unit_machine(2);
        let locals: Vec<Vec<u8>> = hc.empty_locals();
        let _ = exchange(&mut hc, &locals, 2);
    }
}
