//! Pairwise exchange along one cube dimension.

use crate::machine::Hypercube;

/// Every node receives a copy of its `dim`-neighbour's buffer (keeping
/// its own): the primitive step of butterfly algorithms (FFT stages,
/// bitonic compare-exchange, all-reduce). One superstep,
/// `alpha + beta * L` on full-duplex channels.
///
/// # Panics
/// Panics if `dim` is out of range.
pub fn exchange<T: Clone>(hc: &mut Hypercube, locals: &[Vec<T>], dim: u32) -> Vec<Vec<T>> {
    let cube = hc.cube();
    assert!(dim < cube.dim(), "dimension {dim} out of range for cube of dim {}", cube.dim());
    assert_eq!(locals.len(), cube.nodes());
    let bit = 1usize << dim;
    let mut max_len = 0usize;
    let mut total: u64 = 0;
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let out: Vec<Vec<T>> = (0..cube.nodes())
        .map(|node| {
            let buf = &locals[node ^ bit];
            max_len = max_len.max(buf.len());
            total += buf.len() as u64;
            if node & bit == 0 {
                pairs.push((node, node | bit));
            }
            buf.clone()
        })
        .collect();
    hc.charge_exchange_step(&pairs, max_len, total);
    out
}

#[cfg(test)]
mod tests {
    use super::super::testutil::unit_machine;
    use super::*;

    #[test]
    fn exchange_swaps_buffers() {
        let mut hc = unit_machine(3);
        let locals = hc.locals_from_fn(|n| vec![n as u64; n % 3]);
        let got = exchange(&mut hc, &locals, 1);
        for node in 0..8 {
            assert_eq!(got[node], locals[node ^ 2], "node {node}");
        }
        assert_eq!(hc.counters().message_steps, 1);
    }

    #[test]
    fn exchange_cost_is_one_superstep_of_the_longest_buffer() {
        let mut hc = unit_machine(2);
        let locals = hc.locals_from_fn(|n| vec![0u8; if n == 0 { 7 } else { 2 }]);
        let _ = exchange(&mut hc, &locals, 0);
        assert_eq!(hc.elapsed_us(), 1.0 + 7.0, "alpha + beta * max_len");
    }

    #[test]
    fn double_exchange_restores() {
        let mut hc = unit_machine(4);
        let locals = hc.locals_from_fn(|n| vec![n]);
        let once = exchange(&mut hc, &locals, 3);
        let twice = exchange(&mut hc, &once, 3);
        assert_eq!(twice, locals);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_dim_panics() {
        let mut hc = unit_machine(2);
        let locals: Vec<Vec<u8>> = hc.empty_locals();
        let _ = exchange(&mut hc, &locals, 2);
    }
}
