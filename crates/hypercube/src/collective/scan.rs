//! Parallel prefix (scan) within subcubes.
//!
//! Scans are the signature Connection Machine operation (Blelloch's scan
//! model); the Gaussian-elimination and simplex applications use them for
//! index arithmetic and the benchmark harness uses them as a collective
//! baseline. Order is subcube **coordinate order** (the packed value of
//! the node's bits at `dims`).
//!
//! The slab versions avoid the seed's up-front full copy of the inputs:
//! the inclusive scan *fuses* the first butterfly step into the
//! construction of the running-totals slab (after step 0 both partners'
//! totals are `op(lo, hi)`, so totals can be built fresh instead of
//! copied then overwritten), and the exclusive scan *moves* the input
//! slab into the totals role, allocating only the identity-filled prefix
//! buffer the seed allocated anyway. Combine order is unchanged, so
//! results are bit-identical.

use super::{allport, check_dims};
use crate::cost::{Algo, Collective};
use crate::machine::Hypercube;
use crate::slab::NodeSlab;

/// The classic `(prefix, totals)` butterfly, steps `start..`, exactly as
/// the seed runs it (same pair order, same combine expressions). Charges
/// per superstep under [`Algo::SinglePort`]; under [`Algo::AllPort`]
/// nothing is charged here and the machine-wide element total of the
/// walked steps is returned for the caller's schedule charge.
fn butterfly_steps<T: Copy>(
    hc: &mut Hypercube,
    prefix: &mut NodeSlab<T>,
    totals: &mut NodeSlab<T>,
    dims: &[u32],
    start: usize,
    op: &impl Fn(T, T) -> T,
    algo: Algo,
) -> u64 {
    let mut skipped_total: u64 = 0;
    let cube = hc.cube();
    for (j, &d) in dims.iter().enumerate().skip(start) {
        let bit_in_coord = 1usize << j;
        let chan = 1usize << d;
        let mut max_len = 0usize;
        let mut total_elems: u64 = 0;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for node in cube.iter_nodes() {
            if node & chan != 0 {
                continue;
            }
            let partner = node | chan;
            pairs.push((node, partner));
            let len = totals.len_of(node);
            assert_eq!(len, totals.len_of(partner), "scan requires equal buffer lengths");
            max_len = max_len.max(len);
            total_elems += 2 * len as u64;

            let (lo_total, hi_total) = totals.pair_mut(node, partner);
            let hi_prefix = prefix.seg_mut(partner);

            // The node whose coordinate bit j is 1 is "upper": the lower
            // node's total is a prefix for it.
            let node_coord = cube.extract_coords(node, dims);
            debug_assert_eq!(node_coord & bit_in_coord, 0);
            for i in 0..len {
                let lo_v = lo_total[i];
                let hi_v = hi_total[i];
                let combined = op(lo_v, hi_v);
                lo_total[i] = combined;
                hi_total[i] = combined;
                // Upper node folds the lower subcube's total into its prefix.
                hi_prefix[i] = op(lo_v, hi_prefix[i]);
            }
        }
        match algo {
            Algo::SinglePort => {
                hc.charge_exchange_step(&pairs, max_len, total_elems);
                hc.charge_flops(2 * max_len);
            }
            Algo::AllPort { .. } => skipped_total += total_elems,
        }
    }
    skipped_total
}

/// Inclusive scan over a flat [`NodeSlab`]: after the call, the segment
/// at coordinate `c` holds the elementwise `op`-combination of the
/// segments of coordinates `0..=c`.
///
/// Classic hypercube scan maintaining `(prefix, total)`: `|dims|`
/// supersteps, each `alpha + (beta + 2*gamma) * L`.
///
/// `op` must be associative; it need not be commutative (combination
/// order follows coordinate order).
pub fn scan_inclusive_slab<T: Copy>(
    hc: &mut Hypercube,
    slab: &mut NodeSlab<T>,
    dims: &[u32],
    op: impl Fn(T, T) -> T,
) {
    let cube = hc.cube();
    check_dims(cube, dims);
    assert_eq!(slab.p(), cube.nodes());
    if dims.is_empty() {
        return;
    }
    let algo = hc.choose_algo(Collective::Scan, dims.len(), slab.max_seg_len());
    let seg_len = slab.max_seg_len();

    // Fused step 0: after it, both partners' totals are op(lo, hi) and
    // the upper prefix is op(lo, hi) too — so the totals slab is built
    // fresh (no input copy), then the upper prefixes are combined in
    // place.
    let chan0 = 1usize << dims[0];
    let mut max_len = 0usize;
    let mut total_elems: u64 = 0;
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for node in cube.iter_nodes() {
        if node & chan0 != 0 {
            continue;
        }
        let partner = node | chan0;
        pairs.push((node, partner));
        let len = slab.len_of(node);
        assert_eq!(len, slab.len_of(partner), "scan requires equal buffer lengths");
        max_len = max_len.max(len);
        total_elems += 2 * len as u64;
    }
    let mut totals = NodeSlab::with_capacity(slab.p(), slab.total_len());
    for node in 0..slab.p() {
        let lo = &slab[node & !chan0];
        let hi = &slab[node | chan0];
        totals.push_seg_with(|data| {
            data.extend(lo.iter().zip(hi).map(|(&x, &y)| op(x, y)));
        });
    }
    for &(lo, hi) in &pairs {
        let (lo_s, hi_s) = slab.pair_mut(lo, hi);
        for (x, y) in lo_s.iter().zip(hi_s.iter_mut()) {
            *y = op(*x, *y);
        }
    }
    let mut skipped_total: u64 = 0;
    match algo {
        Algo::SinglePort => {
            hc.charge_exchange_step(&pairs, max_len, total_elems);
            hc.charge_flops(2 * max_len);
        }
        Algo::AllPort { .. } => skipped_total += total_elems,
    }

    skipped_total += butterfly_steps(hc, slab, &mut totals, dims, 1, &op, algo);
    if let Algo::AllPort { chunks } = algo {
        allport::charge(hc, Collective::Scan, dims.len(), seg_len, chunks, skipped_total);
    }
}

/// Exclusive scan over a flat [`NodeSlab`] with `identity`: coordinate
/// `c` ends with the combination of coordinates `0..c` (coordinate 0
/// gets `identity`).
pub fn scan_exclusive_slab<T: Copy>(
    hc: &mut Hypercube,
    slab: &mut NodeSlab<T>,
    dims: &[u32],
    identity: T,
    op: impl Fn(T, T) -> T,
) {
    let cube = hc.cube();
    check_dims(cube, dims);
    assert_eq!(slab.p(), cube.nodes());
    // The inputs become the running totals wholesale (no copy); the
    // prefix buffer starts as the identity everywhere.
    let algo = hc.choose_algo(Collective::Scan, dims.len(), slab.max_seg_len());
    let seg_len = slab.max_seg_len();
    let lens: Vec<usize> = (0..slab.p()).map(|n| slab.len_of(n)).collect();
    let mut totals = std::mem::replace(slab, NodeSlab::filled(&lens, identity));
    let skipped_total = butterfly_steps(hc, slab, &mut totals, dims, 0, &op, algo);
    if let Algo::AllPort { chunks } = algo {
        allport::charge(hc, Collective::Scan, dims.len(), seg_len, chunks, skipped_total);
    }
}

/// Inclusive scan: after the call, the node at coordinate `c` holds the
/// elementwise `op`-combination of the buffers of coordinates `0..=c`.
/// Thin adapter over [`scan_inclusive_slab`].
pub fn scan_inclusive<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    op: impl Fn(T, T) -> T,
) {
    assert_eq!(locals.len(), hc.cube().nodes());
    let mut slab = NodeSlab::from_nested(locals);
    scan_inclusive_slab(hc, &mut slab, dims, op);
    slab.write_nested(locals);
}

/// Exclusive scan with `identity`: coordinate `c` ends with the
/// combination of coordinates `0..c` (coordinate 0 gets `identity`).
/// Thin adapter over [`scan_exclusive_slab`].
pub fn scan_exclusive<T: Copy>(
    hc: &mut Hypercube,
    locals: &mut [Vec<T>],
    dims: &[u32],
    identity: T,
    op: impl Fn(T, T) -> T,
) {
    assert_eq!(locals.len(), hc.cube().nodes());
    let mut slab = NodeSlab::from_nested(locals);
    scan_exclusive_slab(hc, &mut slab, dims, identity, op);
    slab.write_nested(locals);
}

#[cfg(test)]
mod tests {
    use super::super::testutil::unit_machine;
    use super::*;

    #[test]
    fn inclusive_scan_whole_cube_matches_serial_prefix() {
        let mut hc = unit_machine(4);
        let dims: Vec<u32> = hc.cube().iter_dims().collect();
        let mut locals = hc.locals_from_fn(|n| vec![n as u64, (n * n) as u64]);
        scan_inclusive(&mut hc, &mut locals, &dims, |a, b| a + b);
        let mut run0 = 0u64;
        let mut run1 = 0u64;
        for n in 0..16u64 {
            run0 += n;
            run1 += n * n;
            assert_eq!(locals[n as usize], vec![run0, run1], "node {n}");
        }
        assert_eq!(hc.counters().message_steps, 4);
    }

    #[test]
    fn exclusive_scan_matches_shifted_inclusive() {
        let mut hc = unit_machine(3);
        let dims: Vec<u32> = hc.cube().iter_dims().collect();
        let mut locals = hc.locals_from_fn(|n| vec![(n + 1) as i64]);
        scan_exclusive(&mut hc, &mut locals, &dims, 0, |a, b| a + b);
        let mut run = 0i64;
        for n in 0..8usize {
            assert_eq!(locals[n], vec![run], "node {n}");
            run += (n + 1) as i64;
        }
    }

    #[test]
    fn scan_respects_subcube_boundaries() {
        // Scan along dims {1,2} within each pair-of-dims subcube; dim 0
        // distinguishes two independent scans.
        let mut hc = unit_machine(3);
        let dims = [1u32, 2];
        let mut locals = hc.locals_from_fn(|n| vec![n as u64]);
        scan_inclusive(&mut hc, &mut locals, &dims, |a, b| a + b);
        for low_bit in 0..2usize {
            let mut run = 0u64;
            for c in 0..4usize {
                let node = low_bit | (c << 1);
                run += node as u64;
                assert_eq!(locals[node], vec![run], "node {node}");
            }
        }
    }

    #[test]
    fn scan_with_noncommutative_op_follows_coordinate_order() {
        // Affine-map composition: (a, b) represents x -> a*x + b, and
        // op(f, g) = "f then g" — associative but NOT commutative, so this
        // detects any ordering mistake in the butterfly.
        let compose = |f: (i64, i64), g: (i64, i64)| (f.0 * g.0, f.1 * g.0 + g.1);
        let maps: Vec<(i64, i64)> = (0..8).map(|n| (n % 3 + 1, n - 4)).collect();
        let mut hc = unit_machine(3);
        let dims = [0u32, 1, 2];
        let mut locals = hc.locals_from_fn(|n| vec![maps[n]]);
        scan_inclusive(&mut hc, &mut locals, &dims, compose);
        let mut run = (1i64, 0i64); // identity map
        for n in 0..8usize {
            run = compose(run, maps[n]);
            assert_eq!(locals[n], vec![run], "node {n}");
        }
    }

    #[test]
    fn scan_max_gives_running_maximum() {
        let mut hc = unit_machine(4);
        let dims: Vec<u32> = hc.cube().iter_dims().collect();
        let vals: Vec<i64> = (0..16).map(|n| ((n * 7919) % 31) as i64 - 15).collect();
        let mut locals = hc.locals_from_fn(|n| vec![vals[n]]);
        scan_inclusive(&mut hc, &mut locals, &dims, i64::max);
        let mut run = i64::MIN;
        for n in 0..16 {
            run = run.max(vals[n]);
            assert_eq!(locals[n], vec![run]);
        }
    }

    #[test]
    fn empty_dims_scan_is_noop() {
        let mut hc = unit_machine(2);
        let mut locals = hc.locals_from_fn(|n| vec![n as u64]);
        let before = locals.clone();
        scan_inclusive(&mut hc, &mut locals, &[], |a, b| a + b);
        assert_eq!(locals, before);
        assert_eq!(hc.elapsed_us(), 0.0);
    }

    #[test]
    fn slab_scans_bitwise_match_reference() {
        use super::super::reference;
        let dims = [2u32, 0];
        // Inclusive, on floats (combine-order sensitive).
        let mut hc1 = unit_machine(3);
        let mut a = hc1.locals_from_fn(|n| vec![(n as f64).sin(), (n as f64).cos()]);
        let mut b = a.clone();
        reference::scan_inclusive(&mut hc1, &mut a, &dims, |x, y| x + y);
        let mut hc2 = unit_machine(3);
        scan_inclusive(&mut hc2, &mut b, &dims, |x, y| x + y);
        assert_eq!(a, b);
        assert_eq!(hc1.elapsed_us(), hc2.elapsed_us());
        assert_eq!(hc1.counters(), hc2.counters());
        // Exclusive.
        let mut hc3 = unit_machine(3);
        let mut c = hc3.locals_from_fn(|n| vec![(n as f64).sin(); 3]);
        let mut d = c.clone();
        reference::scan_exclusive(&mut hc3, &mut c, &dims, 0.0, |x, y| x + y);
        let mut hc4 = unit_machine(3);
        scan_exclusive(&mut hc4, &mut d, &dims, 0.0, |x, y| x + y);
        assert_eq!(c, d);
        assert_eq!(hc3.elapsed_us(), hc4.elapsed_us());
        assert_eq!(hc3.counters(), hc4.counters());
    }
}
