//! Collective communication on subcubes.
//!
//! Every routine here operates on a *set of cube dimensions* `dims`: the
//! machine decomposes into `p / 2^{|dims|}` disjoint subcubes (one per
//! assignment of the remaining address bits), and the collective runs in
//! **all subcubes simultaneously** — the natural SPMD shape for row- and
//! column-wise matrix operations on a 2-D processor grid whose row dims
//! and column dims are disjoint subsets of the cube dims.
//!
//! Within a subcube, a node is identified by its *coordinate*: the packed
//! value of its address bits at `dims` (see [`Cube::extract_coords`]).
//! Orderings (scan order, gather concatenation order) are coordinate
//! order.
//!
//! Cost accounting: each routine issues `O(|dims|)` blocked message
//! supersteps, charging `alpha + beta * L` for the busiest channel plus
//! `gamma` per critical-path combine, exactly as analysed in Johnsson &
//! Ho, *Optimum Broadcasting and Personalized Communication in
//! Hypercubes* (TR-610, reproduced in the source booklet). Machines
//! whose [`crate::cost::AlgoSelect`] policy admits all-port schedules
//! charge the ported model instead (see [`allport`]); payload movement
//! and combine order are identical under every schedule.

pub mod allport;
mod alltoall;
mod broadcast;
mod exchange;
mod gather;
mod reduce;
pub mod reference;
mod scan;

pub use alltoall::{alltoall, alltoall_slab};
pub use broadcast::{broadcast, broadcast_slab};
pub use exchange::{exchange, exchange_in_place, exchange_slab};
pub use gather::{allgather, allgather_slab, gather, gather_slab, scatter, scatter_slab};
pub use reduce::{allreduce, allreduce_slab, reduce, reduce_slab};
pub use scan::{scan_exclusive, scan_exclusive_slab, scan_inclusive, scan_inclusive_slab};

use crate::topology::Cube;

/// Validate a dimension subset: all in range and pairwise distinct.
pub(crate) fn check_dims(cube: Cube, dims: &[u32]) {
    let mut mask = 0usize;
    for &d in dims {
        assert!(d < cube.dim(), "dimension {d} out of range for cube of dim {}", cube.dim());
        let bit = 1usize << d;
        assert_eq!(mask & bit, 0, "dimension {d} listed twice");
        mask |= bit;
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::cost::CostModel;
    use crate::machine::Hypercube;

    pub fn unit_machine(dim: u32) -> Hypercube {
        Hypercube::new(dim, CostModel::unit())
    }

    /// Per-node buffers where node `n` holds `len` copies of `n as f64`
    /// offset by the element index — distinguishable contents.
    pub fn labelled_locals(hc: &Hypercube, len: usize) -> Vec<Vec<f64>> {
        hc.locals_from_fn(|n| (0..len).map(|i| (n * 1000 + i) as f64).collect())
    }
}
