//! Gather, scatter and all-gather within subcubes.
//!
//! Concatenation/segmentation order is subcube **coordinate order**. The
//! gather/scatter roots are at subcube coordinate 0 (callers needing a
//! different root compose with a routed move — none of the primitives do).
//!
//! All three run **charge-then-place** over the flat slab: the per-step
//! loads of the binomial/recursive-doubling schedules are computed
//! analytically from segment lengths (each step is charged exactly as
//! the hop-by-hop seed implementation in [`super::reference`] charges
//! it), and the final buffer contents — which are deterministic — are
//! materialised in a single pass. This removes the `O(total * steps)`
//! host copying of the nested-`Vec` data plane.

use super::{allport, check_dims};
use crate::cost::{Algo, Collective};
use crate::machine::Hypercube;
use crate::slab::{NodeSlab, SegSlab};

/// All-gather over a flat [`NodeSlab`]: every segment ends holding the
/// concatenation of its subcube's segments in coordinate order.
///
/// Recursive doubling: step `j` exchanges the current accumulation along
/// `dims[j]`, so time is `sum_j (alpha + beta * L_j)` with `L_j`
/// doubling — `|dims| * alpha + beta * (total - own)` overall, the
/// one-port lower bound to within a constant.
pub fn allgather_slab<T: Copy>(hc: &mut Hypercube, slab: &mut NodeSlab<T>, dims: &[u32]) {
    let cube = hc.cube();
    check_dims(cube, dims);
    assert_eq!(slab.p(), cube.nodes());
    let k = dims.len();

    let seg_len = slab.max_seg_len();
    let algo = hc.choose_algo(Collective::Allgather, k, seg_len);
    let mut allport_total: u64 = 0;

    // Walk the recursive-doubling schedule from lengths alone (the
    // merged lengths are needed for the totals under every schedule);
    // charge per step only on the single-port path.
    let mut lens: Vec<usize> = (0..slab.p()).map(|n| slab.len_of(n)).collect();
    for &d in dims {
        let chan = 1usize << d;
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for node in cube.iter_nodes() {
            if node & chan != 0 {
                continue;
            }
            let partner = node | chan;
            pairs.push((node, partner));
            let (lo_len, hi_len) = (lens[node], lens[partner]);
            max_len = max_len.max(lo_len.max(hi_len));
            total += (lo_len + hi_len) as u64;
            let merged = lo_len + hi_len;
            lens[node] = merged;
            lens[partner] = merged;
        }
        match algo {
            Algo::SinglePort => hc.charge_exchange_step(&pairs, max_len, total),
            Algo::AllPort { .. } => allport_total += total,
        }
    }
    if let Algo::AllPort { chunks } = algo {
        allport::charge(hc, Collective::Allgather, k, seg_len, chunks, allport_total);
    }
    if k == 0 {
        return;
    }

    // One placement pass: node <- concat of its subcube, coordinate order.
    let total_out: usize = lens.iter().sum();
    let mut out = NodeSlab::with_capacity(slab.p(), total_out);
    for node in 0..slab.p() {
        out.push_seg_with(|data| {
            for c in 0..(1usize << k) {
                data.extend_from_slice(&slab[cube.with_coords(node, c, dims)]);
            }
        });
    }
    slab.swap(&mut out);
}

/// All-gather within every subcube spanned by `dims`: every member ends
/// holding the concatenation of all members' buffers in coordinate order.
/// Thin adapter over [`allgather_slab`].
pub fn allgather<T: Copy>(hc: &mut Hypercube, locals: &mut [Vec<T>], dims: &[u32]) {
    assert_eq!(locals.len(), hc.cube().nodes());
    let mut slab = NodeSlab::from_nested(locals);
    allgather_slab(hc, &mut slab, dims);
    slab.write_nested(locals);
}

/// Gather over a flat [`NodeSlab`]: the node at subcube coordinate 0
/// ends holding the concatenation of all members' segments in
/// coordinate order; every other member's segment becomes empty.
///
/// Reverse binomial tree: at step `j` the nodes whose coordinate is an
/// odd multiple of `2^j` forward their accumulation down `dims[j]`.
pub fn gather_slab<T: Copy>(hc: &mut Hypercube, slab: &mut NodeSlab<T>, dims: &[u32]) {
    let cube = hc.cube();
    check_dims(cube, dims);
    assert_eq!(slab.p(), cube.nodes());
    let k = dims.len();

    let mut lens: Vec<usize> = (0..slab.p()).map(|n| slab.len_of(n)).collect();
    for (j, &d) in dims.iter().enumerate() {
        let bit = 1usize << j;
        let chan = 1usize << d;
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        let mut sends: Vec<(usize, usize)> = Vec::new();
        for node in cube.iter_nodes() {
            let c = cube.extract_coords(node, dims);
            // Senders this step: coordinate has bit j set, bits < j clear.
            if c & bit != 0 && c & (bit - 1) == 0 {
                let dst = node ^ chan;
                let len = lens[node];
                max_len = max_len.max(len);
                total += len as u64;
                sends.push((node, dst));
            }
        }
        for &(src, dst) in &sends {
            lens[dst] += lens[src];
            lens[src] = 0;
        }
        hc.charge_exchange_step(&sends, max_len, total);
    }
    if k == 0 {
        return;
    }

    let mut out = NodeSlab::with_capacity(slab.p(), slab.total_len());
    for node in 0..slab.p() {
        let c = cube.extract_coords(node, dims);
        out.push_seg_with(|data| {
            if c == 0 {
                for cc in 0..(1usize << k) {
                    data.extend_from_slice(&slab[cube.with_coords(node, cc, dims)]);
                }
            }
        });
    }
    slab.swap(&mut out);
}

/// Gather to subcube coordinate 0: the root ends holding the
/// concatenation of all members' buffers in coordinate order; every other
/// member's buffer is consumed (left empty). Thin adapter over
/// [`gather_slab`].
pub fn gather<T: Copy>(hc: &mut Hypercube, locals: &mut [Vec<T>], dims: &[u32]) {
    assert_eq!(locals.len(), hc.cube().nodes());
    let mut slab = NodeSlab::from_nested(locals);
    gather_slab(hc, &mut slab, dims);
    slab.write_nested(locals);
}

/// Scatter over a flat [`SegSlab`]: each subcube root's `2^{|dims|}`
/// segments (coordinate order) are distributed so the member at
/// coordinate `c` ends holding segment `c`. Non-root nodes must carry
/// only empty segments.
///
/// # Panics
/// Panics unless `segments.nseg() == 2^{|dims|}` and every non-root
/// node's segments are empty.
pub fn scatter_slab<T: Copy>(
    hc: &mut Hypercube,
    segments: &SegSlab<T>,
    dims: &[u32],
) -> NodeSlab<T> {
    let cube = hc.cube();
    check_dims(cube, dims);
    let k = dims.len();
    let nseg = 1usize << k;
    assert_eq!(segments.p(), cube.nodes());
    assert_eq!(segments.nseg(), nseg, "root must supply 2^k segments");

    // Per-root prefix sums over segment lengths; non-root nodes must be
    // empty.
    let mut prefix: Vec<Vec<usize>> = vec![Vec::new(); cube.nodes()];
    for node in cube.iter_nodes() {
        let c = cube.extract_coords(node, dims);
        if c == 0 {
            let mut ps = Vec::with_capacity(nseg + 1);
            ps.push(0usize);
            for s in 0..nseg {
                ps.push(ps[s] + segments.seg_len(node, s));
            }
            prefix[node] = ps;
        } else {
            let held: usize = (0..nseg).map(|s| segments.seg_len(node, s)).sum();
            assert_eq!(held, 0, "non-root nodes must not supply segments");
        }
    }

    // Charge the binomial-tree schedule: before step j (descending), the
    // holders are the coordinates that are multiples of 2^{j+1}, each
    // holding its root's segments [c, c + 2^{j+1}); step j sends the
    // upper half [c + 2^j, c + 2^{j+1}) along dims[j].
    for j in (0..k).rev() {
        let bit = 1usize << j;
        let chan = 1usize << dims[j];
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        let mut sends: Vec<(usize, usize)> = Vec::new();
        for node in cube.iter_nodes() {
            let c = cube.extract_coords(node, dims);
            if c & ((bit << 1) - 1) == 0 {
                let root = cube.with_coords(node, 0, dims);
                let ps = &prefix[root];
                let len = ps[c + (bit << 1)] - ps[c + bit];
                max_len = max_len.max(len);
                total += len as u64;
                sends.push((node, node ^ chan));
            }
        }
        hc.charge_exchange_step(&sends, max_len, total);
    }

    // One placement pass: coordinate c receives its root's segment c.
    let mut out = NodeSlab::with_capacity(cube.nodes(), segments.total_len());
    for node in cube.iter_nodes() {
        let c = cube.extract_coords(node, dims);
        let root = cube.with_coords(node, 0, dims);
        out.push_seg(segments.seg(root, c));
    }
    out
}

/// Scatter from subcube coordinate 0: the root's `segments` (one per
/// coordinate, in coordinate order) are distributed so that the member at
/// coordinate `c` ends holding `segments[c]` as its buffer. Non-root
/// buffers are overwritten; the root keeps `segments[0]`. Thin adapter
/// over [`scatter_slab`].
///
/// # Panics
/// Panics unless `segments.len() == 2^{|dims|}` at every subcube root
/// (roots are identified by coordinate 0; pass `segments[node]` empty
/// `Vec`s elsewhere — they are ignored).
pub fn scatter<T: Copy>(
    hc: &mut Hypercube,
    segments: Vec<Vec<Vec<T>>>,
    dims: &[u32],
) -> Vec<Vec<T>> {
    let cube = hc.cube();
    check_dims(cube, dims);
    let k = dims.len();
    assert_eq!(segments.len(), cube.nodes());
    for (node, segs) in segments.iter().enumerate() {
        let c = cube.extract_coords(node, dims);
        if c == 0 {
            assert_eq!(segs.len(), 1usize << k, "root must supply 2^k segments");
        } else {
            assert!(segs.is_empty(), "non-root nodes must not supply segments");
        }
    }
    let slab = SegSlab::from_nested(&segments, 1usize << k);
    scatter_slab(hc, &slab, dims).to_nested()
}

#[cfg(test)]
mod tests {
    use super::super::testutil::unit_machine;
    use super::*;

    #[test]
    fn allgather_concatenates_in_coordinate_order() {
        let mut hc = unit_machine(3);
        let dims = [0u32, 1, 2];
        let mut locals = hc.locals_from_fn(|n| vec![n as u32, 100 + n as u32]);
        allgather(&mut hc, &mut locals, &dims);
        let expected: Vec<u32> = (0..8).flat_map(|n| [n, 100 + n]).collect();
        for n in 0..8 {
            assert_eq!(locals[n], expected, "node {n}");
        }
        assert_eq!(hc.counters().message_steps, 3);
    }

    #[test]
    fn allgather_ragged_buffers() {
        let mut hc = unit_machine(2);
        let dims = [0u32, 1];
        let mut locals = hc.locals_from_fn(|n| vec![n as u8; n]);
        allgather(&mut hc, &mut locals, &dims);
        let expected: Vec<u8> = (0..4).flat_map(|n| vec![n as u8; n]).collect();
        for n in 0..4 {
            assert_eq!(locals[n], expected);
        }
    }

    #[test]
    fn allgather_within_rows() {
        // dim-4 cube as 4x4 grid, row dims {0,1}: each row gathers its own.
        let mut hc = unit_machine(4);
        let dims = [0u32, 1];
        let mut locals = hc.locals_from_fn(|n| vec![n]);
        allgather(&mut hc, &mut locals, &dims);
        for n in 0..16usize {
            let row = n >> 2 << 2;
            assert_eq!(locals[n], vec![row, row + 1, row + 2, row + 3]);
        }
    }

    #[test]
    fn gather_concentrates_at_coordinate_zero() {
        let mut hc = unit_machine(3);
        let dims = [0u32, 1, 2];
        let mut locals = hc.locals_from_fn(|n| vec![n as u16]);
        gather(&mut hc, &mut locals, &dims);
        assert_eq!(locals[0], (0..8).collect::<Vec<u16>>());
        for n in 1..8 {
            assert!(locals[n].is_empty(), "node {n} consumed");
        }
        assert_eq!(hc.counters().message_steps, 3);
    }

    #[test]
    fn gather_subset_dims_keeps_other_subcubes_separate() {
        let mut hc = unit_machine(3);
        let dims = [1u32, 2]; // gather within each {bit0}-indexed subcube
        let mut locals = hc.locals_from_fn(|n| vec![n as u16]);
        gather(&mut hc, &mut locals, &dims);
        assert_eq!(locals[0], vec![0, 2, 4, 6]);
        assert_eq!(locals[1], vec![1, 3, 5, 7]);
        for n in 2..8 {
            assert!(locals[n].is_empty());
        }
    }

    #[test]
    fn scatter_delivers_segments_in_coordinate_order() {
        let mut hc = unit_machine(3);
        let dims = [0u32, 1, 2];
        let segments: Vec<Vec<Vec<u32>>> = (0..8)
            .map(|n| {
                if n == 0 {
                    (0..8).map(|c| vec![c * 10, c * 10 + 1]).collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let locals = scatter(&mut hc, segments, &dims);
        for c in 0..8u32 {
            assert_eq!(locals[c as usize], vec![c * 10, c * 10 + 1], "coord {c}");
        }
        assert_eq!(hc.counters().message_steps, 3);
    }

    #[test]
    fn scatter_then_gather_roundtrips() {
        let mut hc = unit_machine(4);
        let dims = [0u32, 1, 2, 3];
        let original: Vec<Vec<u64>> = (0..16).map(|c| vec![c as u64; (c % 3) + 1]).collect();
        let segments: Vec<Vec<Vec<u64>>> =
            (0..16).map(|n| if n == 0 { original.clone() } else { Vec::new() }).collect();
        let mut locals = scatter(&mut hc, segments, &dims);
        for c in 0..16usize {
            assert_eq!(locals[c], original[c]);
        }
        gather(&mut hc, &mut locals, &dims);
        let flat: Vec<u64> = original.into_iter().flatten().collect();
        assert_eq!(locals[0], flat);
    }

    #[test]
    fn scatter_within_columns() {
        // 4x4 grid, column dims {2,3}: each column root (nodes 0..4)
        // scatters 4 segments down its column.
        let mut hc = unit_machine(4);
        let dims = [2u32, 3];
        let segments: Vec<Vec<Vec<usize>>> = (0..16)
            .map(|n| if n < 4 { (0..4).map(|c| vec![n * 100 + c]).collect() } else { Vec::new() })
            .collect();
        let locals = scatter(&mut hc, segments, &dims);
        for n in 0..16usize {
            let col = n & 0b11;
            let row = n >> 2;
            assert_eq!(locals[n], vec![col * 100 + row], "node {n}");
        }
    }

    #[test]
    fn allgather_empty_dims_is_noop() {
        let mut hc = unit_machine(2);
        let mut locals = hc.locals_from_fn(|n| vec![n]);
        let before = locals.clone();
        allgather(&mut hc, &mut locals, &[]);
        assert_eq!(locals, before);
    }

    #[test]
    fn slab_paths_match_reference_clocks_on_ragged_inputs() {
        use super::super::reference;
        let dims = [1u32, 2];
        // allgather
        let mut hc1 = unit_machine(3);
        let mut a = hc1.locals_from_fn(|n| vec![n as u64; n % 4]);
        let mut b = a.clone();
        reference::allgather(&mut hc1, &mut a, &dims);
        let mut hc2 = unit_machine(3);
        allgather(&mut hc2, &mut b, &dims);
        assert_eq!(a, b);
        assert_eq!(hc1.elapsed_us(), hc2.elapsed_us());
        assert_eq!(hc1.counters(), hc2.counters());
        // gather
        let mut hc3 = unit_machine(3);
        let mut c = hc3.locals_from_fn(|n| vec![n as u64; n % 4]);
        let mut d = c.clone();
        reference::gather(&mut hc3, &mut c, &dims);
        let mut hc4 = unit_machine(3);
        gather(&mut hc4, &mut d, &dims);
        assert_eq!(c, d);
        assert_eq!(hc3.elapsed_us(), hc4.elapsed_us());
        assert_eq!(hc3.counters(), hc4.counters());
    }

    #[test]
    fn slab_scatter_matches_reference_clock() {
        use super::super::reference;
        let dims = [0u32, 2];
        let segs: Vec<Vec<Vec<u32>>> = (0..8)
            .map(|n| {
                if n == 0 || n == 2 {
                    (0..4).map(|c| vec![(n * 100 + c) as u32; c + 1]).collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let mut hc1 = unit_machine(3);
        let a = reference::scatter(&mut hc1, segs.clone(), &dims);
        let mut hc2 = unit_machine(3);
        let b = scatter(&mut hc2, segs, &dims);
        assert_eq!(a, b);
        assert_eq!(hc1.elapsed_us(), hc2.elapsed_us());
        assert_eq!(hc1.counters(), hc2.counters());
    }
}
