//! Gather, scatter and all-gather within subcubes.
//!
//! Concatenation/segmentation order is subcube **coordinate order**. The
//! gather/scatter roots are at subcube coordinate 0 (callers needing a
//! different root compose with a routed move — none of the primitives do).

use super::check_dims;
use crate::machine::Hypercube;

/// All-gather within every subcube spanned by `dims`: every member ends
/// holding the concatenation of all members' buffers in coordinate order.
///
/// Recursive doubling: step `j` exchanges the current accumulation along
/// `dims[j]`, so time is `sum_j (alpha + beta * L_j)` with `L_j`
/// doubling — `|dims| * alpha + beta * (total - own)` overall, the
/// one-port lower bound to within a constant.
pub fn allgather<T: Clone>(hc: &mut Hypercube, locals: &mut [Vec<T>], dims: &[u32]) {
    let cube = hc.cube();
    check_dims(cube, dims);
    assert_eq!(locals.len(), cube.nodes());

    for (j, &d) in dims.iter().enumerate() {
        let chan = 1usize << d;
        let _ = j;
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for node in cube.iter_nodes() {
            if node & chan != 0 {
                continue;
            }
            let partner = node | chan;
            pairs.push((node, partner));
            let lo_len = locals[node].len();
            let hi_len = locals[partner].len();
            max_len = max_len.max(lo_len.max(hi_len));
            total += (lo_len + hi_len) as u64;
            // Lower node appends upper's buffer; upper node prepends
            // lower's — both end with coordinate order.
            let (lo_part, hi_part) = locals.split_at_mut(partner);
            let lo = &mut lo_part[node];
            let hi = &mut hi_part[0];
            let mut merged = Vec::with_capacity(lo.len() + hi.len());
            merged.extend_from_slice(lo);
            merged.extend_from_slice(hi);
            *lo = merged.clone();
            *hi = merged;
        }
        hc.charge_exchange_step(&pairs, max_len, total);
    }
}

/// Gather to subcube coordinate 0: the root ends holding the
/// concatenation of all members' buffers in coordinate order; every other
/// member's buffer is consumed (left empty).
///
/// Reverse binomial tree: at step `j` the nodes whose coordinate is an odd
/// multiple of `2^j` forward their accumulation down dimension `dims[j]`.
pub fn gather<T>(hc: &mut Hypercube, locals: &mut [Vec<T>], dims: &[u32]) {
    let cube = hc.cube();
    check_dims(cube, dims);
    assert_eq!(locals.len(), cube.nodes());

    for (j, &d) in dims.iter().enumerate() {
        let bit = 1usize << j;
        let chan = 1usize << d;
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        let mut sends: Vec<(usize, usize)> = Vec::new();
        for node in cube.iter_nodes() {
            let c = cube.extract_coords(node, dims);
            // Senders this step: coordinate has bit j set, bits < j clear.
            if c & bit != 0 && c & (bit - 1) == 0 {
                let dst = node ^ chan;
                let len = locals[node].len();
                max_len = max_len.max(len);
                total += len as u64;
                sends.push((node, dst));
            }
        }
        for &(src, dst) in &sends {
            let mut sent = std::mem::take(&mut locals[src]);
            locals[dst].append(&mut sent);
        }
        hc.charge_exchange_step(&sends, max_len, total);
    }
}

/// Scatter from subcube coordinate 0: the root's `segments` (one per
/// coordinate, in coordinate order) are distributed so that the member at
/// coordinate `c` ends holding `segments[c]` as its buffer. Non-root
/// buffers are overwritten; the root keeps `segments[0]`.
///
/// # Panics
/// Panics unless `segments.len() == 2^{|dims|}` at every subcube root
/// (roots are identified by coordinate 0; pass `segments[node]` empty
/// `Vec`s elsewhere — they are ignored).
pub fn scatter<T>(hc: &mut Hypercube, segments: Vec<Vec<Vec<T>>>, dims: &[u32]) -> Vec<Vec<T>> {
    let cube = hc.cube();
    check_dims(cube, dims);
    let k = dims.len();
    assert_eq!(segments.len(), cube.nodes());

    // holdings[node] = (first_coord, segments for coords [first, first + len))
    let mut holdings: Vec<Vec<Vec<T>>> = Vec::with_capacity(cube.nodes());
    for (node, segs) in segments.into_iter().enumerate() {
        let c = cube.extract_coords(node, dims);
        if c == 0 {
            assert_eq!(segs.len(), 1usize << k, "root must supply 2^k segments");
            holdings.push(segs);
        } else {
            assert!(segs.is_empty(), "non-root nodes must not supply segments");
            holdings.push(Vec::new());
        }
    }

    for j in (0..k).rev() {
        let bit = 1usize << j;
        let chan = 1usize << dims[j];
        let mut max_len = 0usize;
        let mut total: u64 = 0;
        let mut sends: Vec<(usize, usize, Vec<Vec<T>>)> = Vec::new();
        for node in cube.iter_nodes() {
            let c = cube.extract_coords(node, dims);
            // Holders this step: bits <= j of the coordinate all clear.
            if c & ((bit << 1) - 1) == 0 && !holdings[node].is_empty() {
                // Send the upper half of held segments to the neighbour.
                let upper = holdings[node].split_off(bit);
                let len: usize = upper.iter().map(Vec::len).sum();
                max_len = max_len.max(len);
                total += len as u64;
                sends.push((node, node ^ chan, upper));
            }
        }
        let pairs: Vec<(usize, usize)> = sends.iter().map(|&(src, dst, _)| (src, dst)).collect();
        for (_src, dst, segs) in sends {
            holdings[dst] = segs;
        }
        hc.charge_exchange_step(&pairs, max_len, total);
    }

    holdings
        .into_iter()
        .map(|mut segs| if segs.is_empty() { Vec::new() } else { segs.swap_remove(0) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::testutil::unit_machine;
    use super::*;

    #[test]
    fn allgather_concatenates_in_coordinate_order() {
        let mut hc = unit_machine(3);
        let dims = [0u32, 1, 2];
        let mut locals = hc.locals_from_fn(|n| vec![n as u32, 100 + n as u32]);
        allgather(&mut hc, &mut locals, &dims);
        let expected: Vec<u32> = (0..8).flat_map(|n| [n, 100 + n]).collect();
        for n in 0..8 {
            assert_eq!(locals[n], expected, "node {n}");
        }
        assert_eq!(hc.counters().message_steps, 3);
    }

    #[test]
    fn allgather_ragged_buffers() {
        let mut hc = unit_machine(2);
        let dims = [0u32, 1];
        let mut locals = hc.locals_from_fn(|n| vec![n as u8; n]);
        allgather(&mut hc, &mut locals, &dims);
        let expected: Vec<u8> = (0..4).flat_map(|n| vec![n as u8; n]).collect();
        for n in 0..4 {
            assert_eq!(locals[n], expected);
        }
    }

    #[test]
    fn allgather_within_rows() {
        // dim-4 cube as 4x4 grid, row dims {0,1}: each row gathers its own.
        let mut hc = unit_machine(4);
        let dims = [0u32, 1];
        let mut locals = hc.locals_from_fn(|n| vec![n]);
        allgather(&mut hc, &mut locals, &dims);
        for n in 0..16usize {
            let row = n >> 2 << 2;
            assert_eq!(locals[n], vec![row, row + 1, row + 2, row + 3]);
        }
    }

    #[test]
    fn gather_concentrates_at_coordinate_zero() {
        let mut hc = unit_machine(3);
        let dims = [0u32, 1, 2];
        let mut locals = hc.locals_from_fn(|n| vec![n as u16]);
        gather(&mut hc, &mut locals, &dims);
        assert_eq!(locals[0], (0..8).collect::<Vec<u16>>());
        for n in 1..8 {
            assert!(locals[n].is_empty(), "node {n} consumed");
        }
        assert_eq!(hc.counters().message_steps, 3);
    }

    #[test]
    fn gather_subset_dims_keeps_other_subcubes_separate() {
        let mut hc = unit_machine(3);
        let dims = [1u32, 2]; // gather within each {bit0}-indexed subcube
        let mut locals = hc.locals_from_fn(|n| vec![n as u16]);
        gather(&mut hc, &mut locals, &dims);
        assert_eq!(locals[0], vec![0, 2, 4, 6]);
        assert_eq!(locals[1], vec![1, 3, 5, 7]);
        for n in 2..8 {
            assert!(locals[n].is_empty());
        }
    }

    #[test]
    fn scatter_delivers_segments_in_coordinate_order() {
        let mut hc = unit_machine(3);
        let dims = [0u32, 1, 2];
        let segments: Vec<Vec<Vec<u32>>> = (0..8)
            .map(|n| {
                if n == 0 {
                    (0..8).map(|c| vec![c * 10, c * 10 + 1]).collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let locals = scatter(&mut hc, segments, &dims);
        for c in 0..8u32 {
            assert_eq!(locals[c as usize], vec![c * 10, c * 10 + 1], "coord {c}");
        }
        assert_eq!(hc.counters().message_steps, 3);
    }

    #[test]
    fn scatter_then_gather_roundtrips() {
        let mut hc = unit_machine(4);
        let dims = [0u32, 1, 2, 3];
        let original: Vec<Vec<u64>> = (0..16).map(|c| vec![c as u64; (c % 3) + 1]).collect();
        let segments: Vec<Vec<Vec<u64>>> =
            (0..16).map(|n| if n == 0 { original.clone() } else { Vec::new() }).collect();
        let mut locals = scatter(&mut hc, segments, &dims);
        for c in 0..16usize {
            assert_eq!(locals[c], original[c]);
        }
        gather(&mut hc, &mut locals, &dims);
        let flat: Vec<u64> = original.into_iter().flatten().collect();
        assert_eq!(locals[0], flat);
    }

    #[test]
    fn scatter_within_columns() {
        // 4x4 grid, column dims {2,3}: each column root (nodes 0..4)
        // scatters 4 segments down its column.
        let mut hc = unit_machine(4);
        let dims = [2u32, 3];
        let segments: Vec<Vec<Vec<usize>>> = (0..16)
            .map(|n| if n < 4 { (0..4).map(|c| vec![n * 100 + c]).collect() } else { Vec::new() })
            .collect();
        let locals = scatter(&mut hc, segments, &dims);
        for n in 0..16usize {
            let col = n & 0b11;
            let row = n >> 2;
            assert_eq!(locals[n], vec![col * 100 + row], "node {n}");
        }
    }

    #[test]
    fn allgather_empty_dims_is_noop() {
        let mut hc = unit_machine(2);
        let mut locals = hc.locals_from_fn(|n| vec![n]);
        let before = locals.clone();
        allgather(&mut hc, &mut locals, &[]);
        assert_eq!(locals, before);
    }
}
